// ccsched — from schedule to code: prologue/epilogue emission, Gantt
// inspection, and artifact persistence.
//
// A compiler back end consuming cyclo-compaction's output needs three
// artifacts: the retimed graph (what each instruction computes), the
// steady-state table (when and where it runs), and the prologue/epilogue
// (how the pipeline fills and drains).  This example produces all three
// for the paper's walkthrough graph, verifies the flattened instruction
// sequence against the ORIGINAL loop semantics, and shows the executed
// pipeline as a Gantt chart.
//
// Build & run:   ./examples/codegen_pipeline
#include <iostream>

#include "ccsched.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace ccs;

  const Csdfg original = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);

  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(original, mesh, comm, opt);

  std::cout << "steady-state table (" << res.best_length() << " steps):\n"
            << render_schedule(res.retimed_graph, res.best) << '\n';

  // --- prologue / epilogue -------------------------------------------------
  const LoopRealization real(original, res.retiming);
  std::cout << "pipeline depth " << real.depth() << "; prologue:";
  for (const TaskInstance& inst : real.prologue())
    std::cout << "  " << original.node(inst.node).name << "[i="
              << inst.iteration << "]";
  std::cout << '\n';

  constexpr long long kRun = 8;
  std::cout << "epilogue for a " << kRun << "-iteration run:";
  for (const TaskInstance& inst : real.epilogue(kRun))
    std::cout << "  " << original.node(inst.node).name << "[i="
              << inst.iteration << "]";
  std::cout << '\n';

  const auto sequence = real.flatten(original, res.best, kRun);
  const std::string verdict = check_flattening(original, sequence, kRun);
  std::cout << "flattened " << sequence.size()
            << " instructions; semantic check: "
            << (verdict.empty() ? "OK" : verdict) << "\n\n";

  // --- persisted artifacts -------------------------------------------------
  std::cout << "retimed graph (text format):\n"
            << serialize_csdfg(res.retimed_graph) << '\n';
  std::cout << "schedule (text format):\n"
            << serialize_schedule(res.retimed_graph, res.best) << '\n';
  // Round-trip to prove the artifacts are complete.
  const Csdfg g2 = parse_csdfg(serialize_csdfg(res.retimed_graph));
  const ScheduleTable t2 =
      parse_schedule(g2, serialize_schedule(res.retimed_graph, res.best));
  std::cout << "round-trip: " << summarize_schedule(t2) << "\n\n";

  // --- executed pipeline, visually ----------------------------------------
  ExecutorOptions sim;
  sim.iterations = 5;
  sim.warmup = 0;
  sim.record_trace = true;
  const ExecutionStats stats =
      execute_static(res.retimed_graph, res.best, mesh, sim);
  std::cout << "first three periods of the executed pipeline (note how "
               "instances of different iterations interleave):\n"
            << render_gantt(res.retimed_graph, stats.trace, mesh.size(), 1,
                            3 * res.best_length());
  return verdict.empty() ? 0 : 1;
}
