// ccsched — a small command-line scheduler driving the Solver facade.
//
// Usage:
//   architecture_explorer [graph-file] [arch-spec...]
//
// Reads a CSDFG in the ccsched text format (see io/text_format.hpp) and
// schedules it on each architecture given as a quoted spec ("mesh 4 2",
// "ring 8 uni", ...).  With no arguments it runs a built-in demonstration
// graph on the paper's five machines, so the example is runnable bare.
//
// Each machine is one SolveRequest: the arch spec goes in as a string, the
// response comes back certified or with diagnostics explaining why not —
// a malformed spec on the command line prints a CCS-E001 finding instead
// of a stack trace.
//
// Build & run:   ./examples/architecture_explorer
//                ./examples/architecture_explorer my_loop.csdfg "mesh 4 4"
#include <fstream>
#include <iostream>
#include <sstream>

#include "ccsched.hpp"

namespace {

constexpr const char* kDemoGraph = R"(# A video macroblock loop: fetch,
# transform, quantize, entropy-code, reconstruct; the reconstruction feeds
# the next iteration's prediction.
graph macroblock
node fetch 1
node predict 1
node dct 2
node quant 1
node code 2
node idct 2
node recon 1
edge fetch predict 0 2
edge predict dct 0 2
edge dct quant 0 1
edge quant code 0 1
edge quant idct 0 1
edge idct recon 0 2
edge recon predict 1 2   # previous frame's reconstruction
edge code fetch 2 1      # rate-control feedback, two iterations back
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace ccs;
  try {
    Csdfg g = [&] {
      if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) throw Error(std::string("cannot open ") + argv[1]);
        return parse_csdfg(in);
      }
      return parse_csdfg(std::string(kDemoGraph));
    }();

    std::vector<std::string> specs;
    for (int i = 2; i < argc; ++i) specs.emplace_back(argv[i]);
    if (specs.empty())
      specs = {"complete 8", "linear_array 8", "ring 8", "mesh 4 2",
               "hypercube 3"};

    std::cout << "graph '" << g.name() << "': " << g.node_count()
              << " tasks, " << g.edge_count() << " dependences, iteration "
              << "bound " << iteration_bound(g).to_string() << "\n";

    const Solver solver;
    for (const std::string& spec : specs) {
      SolveRequest req;
      req.graph = g;
      req.arch = spec;
      const SolveResponse res = solver.solve(req);
      if (!res.ok()) {
        std::cerr << "--- " << spec << " ---\n"
                  << render_text(res.diagnostics);
        return 1;
      }
      std::cout << "\n--- " << res.machine->name() << " (diameter "
                << res.machine->diameter() << ") ---\n"
                << render_schedule(res.graph, *res.schedule)
                << "start-up " << res.startup_length << " -> compacted "
                << res.best_length << "  [certified]\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
