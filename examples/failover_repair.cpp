// ccsched failover walkthrough — surviving a fail-stop processor.
//
// The paper's schedules are static: every task is pinned to a processor and
// a control step, forever.  This example shows what the resilience subsystem
// does when "forever" ends — a processor of the 2x2 mesh fail-stops — in
// four movements:
//
//   1. schedule the Figure 1(b) loop with cyclo-compaction (the baseline);
//   2. inject the fault plan from examples/data/failover.faults into the
//      cycle-accurate executor and watch the schedule break;
//   3. repair through the Solver facade: one request with the fault-spec
//      text walks the degradation ladder (remap -> recompaction ->
//      list-schedule -> serial) on the reduced machine;
//   4. the response is already certified — every accepted rung is verified
//      by the independent certifier before the ladder returns it.
//
// Build & run:   ./examples/failover_repair
// CLI twin:      ccsched stress examples/data/paper_fig1b.csdfg
//                    --arch "mesh 2 2"
//                    --faults examples/data/failover.faults --repair
#include <iostream>

#include "ccsched.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace ccs;

  // 1. Baseline: the six-task walkthrough graph on a 2x2 mesh.
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
  std::cout << "baseline on " << mesh.name() << " (length "
            << base.best_length() << "):\n"
            << render_schedule(base.retimed_graph, base.best);

  // 2. The fault plan: p1 fail-stops at iteration 4, and task E jitters one
  //    step long (the same plan as examples/data/failover.faults).
  const std::string faults = "fail p1 @iter 4\njitter E +1\n";
  FaultPlan plan;
  plan.pe_faults.push_back({/*pe=*/1, /*iteration=*/4});
  plan.jitters.push_back({g.node_by_name("E"), +1});
  std::cout << "\nfault plan:\n" << describe_fault_plan(plan, g);

  ExecutorOptions sim;
  sim.iterations = 16;
  sim.warmup = 0;
  sim.faults = &plan;
  const ExecutionStats stats =
      execute_static(base.retimed_graph, base.best, mesh, sim);
  std::cout << "\ninjected over " << sim.iterations << " iterations: "
            << stats.failed_instances << " instances failed, "
            << stats.starved_instances << " starved, " << stats.late_arrivals
            << " late arrivals (first failure @iter "
            << stats.first_failure_iteration << ")\n";

  // 3. Repair: one Solver request rebuilds a certified schedule for the
  //    surviving machine.  The ladder tries the cheap rung first (keep
  //    survivors, re-place only p1's tasks) and escalates only as needed;
  //    an unrepairable plan would come back kInfeasible with a CCS-E002
  //    finding, not an exception.
  Solver solver;
  SolveRequest req;
  req.graph = g;
  req.topology = mesh;
  req.mode = SolveMode::kRepair;
  req.faults = faults;
  const SolveResponse res = solver.solve(req);
  if (!res.ok()) {
    std::cout << "\nrepair failed (" << solve_status_name(res.status)
              << "):\n"
              << render_text(res.diagnostics);
    return 1;
  }

  // 4. The response carries the winning rung, the reduced machine, and the
  //    PE mapping back to the original mesh; certified is always true on
  //    kOk because the ladder only accepts certified rungs.
  std::cout << "\nwinning rung: " << res.repair_rung << " (length "
            << res.schedule->length() << " on " << res.machine->name()
            << ")\npe map: ";
  for (std::size_t p = 0; p < res.pe_map.size(); ++p)
    std::cout << (p ? ", " : "") << 'p' << p << "->p" << res.pe_map[p];
  std::cout << '\n'
            << render_schedule(res.graph, *res.schedule)
            << "\ncertifier verdict: "
            << (res.certified ? "certified" : "REJECTED") << '\n';
  return res.certified ? 0 : 1;
}
