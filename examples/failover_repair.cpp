// ccsched failover walkthrough — surviving a fail-stop processor.
//
// The paper's schedules are static: every task is pinned to a processor and
// a control step, forever.  This example shows what the resilience subsystem
// does when "forever" ends — a processor of the 2x2 mesh fail-stops — in
// four movements:
//
//   1. schedule the Figure 1(b) loop with cyclo-compaction (the baseline);
//   2. inject the fault plan from examples/data/failover.faults into the
//      cycle-accurate executor and watch the schedule break;
//   3. repair: walk the degradation ladder (remap -> recompaction ->
//      list-schedule -> serial) on the reduced machine;
//   4. verify the repaired table with the independent certifier.
//
// Build & run:   ./examples/failover_repair
// CLI twin:      ccsched stress examples/data/paper_fig1b.csdfg
//                    --arch "mesh 2 2"
//                    --faults examples/data/failover.faults --repair
#include <iostream>

#include "analysis/certify.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "io/table_printer.hpp"
#include "robust/fault_plan.hpp"
#include "robust/repair.hpp"
#include "sim/executor.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace ccs;

  // 1. Baseline: the six-task walkthrough graph on a 2x2 mesh.
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
  std::cout << "baseline on " << mesh.name() << " (length "
            << base.best_length() << "):\n"
            << render_schedule(base.retimed_graph, base.best);

  // 2. The fault plan: p1 fail-stops at iteration 4, and task E jitters one
  //    step long (the same plan as examples/data/failover.faults).
  FaultPlan plan;
  plan.pe_faults.push_back({/*pe=*/1, /*iteration=*/4});
  plan.jitters.push_back({g.node_by_name("E"), +1});
  std::cout << "\nfault plan:\n" << describe_fault_plan(plan, g);

  ExecutorOptions sim;
  sim.iterations = 16;
  sim.warmup = 0;
  sim.faults = &plan;
  const ExecutionStats stats =
      execute_static(base.retimed_graph, base.best, mesh, sim);
  std::cout << "\ninjected over " << sim.iterations << " iterations: "
            << stats.failed_instances << " instances failed, "
            << stats.starved_instances << " starved, " << stats.late_arrivals
            << " late arrivals (first failure @iter "
            << stats.first_failure_iteration << ")\n";

  // 3. Repair: rebuild a certified schedule for the surviving machine.  The
  //    ladder tries the cheap rung first (keep survivors, re-place only
  //    p1's tasks) and escalates only as needed.
  const RepairOutcome outcome = repair_schedule(g, base, mesh, plan);
  std::cout << "\nrepair ladder:\n";
  for (const std::string& attempt : outcome.attempts)
    std::cout << "  " << attempt << '\n';
  if (!outcome.success) {
    std::cout << "repair infeasible: " << outcome.detail << '\n';
    return 1;
  }
  std::cout << "winning rung: " << repair_rung_name(outcome.rung)
            << " (length " << outcome.schedule->length() << " on "
            << outcome.machine->name() << ")\npe map: ";
  for (std::size_t p = 0; p < outcome.to_original.size(); ++p)
    std::cout << (p ? ", " : "") << 'p' << p << "->p"
              << outcome.to_original[p];
  std::cout << '\n' << render_schedule(outcome.graph, *outcome.schedule);

  // 4. Trust, then verify: the certifier re-derives every constraint from
  //    first principles on the reduced machine.
  const StoreAndForwardModel reduced_comm(*outcome.machine);
  DiagnosticBag bag;
  const bool certified = certify_table(outcome.graph, *outcome.schedule,
                                       reduced_comm, "repaired", bag);
  bag.finalize();
  std::cout << "\ncertifier verdict: "
            << (certified ? "certified" : "REJECTED") << '\n';
  return certified ? 0 : 1;
}
