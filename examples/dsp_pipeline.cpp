// ccsched — scheduling real DSP loop bodies across parallel machines.
//
// The scenario the paper's introduction motivates: a signal-processing
// kernel (IIR lattice / elliptic wave filter / biquad cascade) must sustain
// one sample per schedule period on a small multiprocessor.  For each
// kernel this example reports, per machine, the compacted period against
// the kernel's iteration bound, and cross-checks the winner on the
// cycle-accurate simulator.
//
// Build & run:   ./examples/dsp_pipeline
#include <iomanip>
#include <iostream>

#include "ccsched.hpp"
#include "util/text_table.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

int main() {
  using namespace ccs;

  struct Kernel {
    const char* label;
    Csdfg graph;
  };
  const Kernel kernels[] = {
      {"lattice filter", lattice_filter()},
      {"elliptic wave filter (2-slowed)", slowdown(elliptic_filter(), 2)},
      {"biquad cascade x4", iir_biquad_cascade(4)},
      {"differential-equation solver", diffeq_solver()},
  };

  for (const Kernel& k : kernels) {
    const Rational bound = iteration_bound(k.graph);
    std::cout << "\n## " << k.label << "  (" << k.graph.node_count()
              << " tasks, iteration bound " << bound.to_string() << ")\n";
    TextTable t;
    t.set_header({"machine", "period", "vs bound", "simulated II"});

    int best_period = 0;
    for (const Topology& machine :
         {make_linear_array(4), make_ring(6), make_mesh(2, 4),
          make_hypercube(3), make_complete(8)}) {
      const StoreAndForwardModel comm(machine);
      CycloCompactionOptions opt;
      opt.policy = RemapPolicy::kWithRelaxation;
      const auto res = cyclo_compact(k.graph, machine, comm, opt);

      ExecutorOptions sim;
      sim.iterations = 64;
      sim.warmup = 16;
      const double ii =
          execute_static(res.retimed_graph, res.best, machine, sim)
              .steady_initiation_interval;

      std::ostringstream ratio;
      ratio << std::fixed << std::setprecision(2)
            << res.best_length() / bound.value() << "x";
      std::ostringstream iis;
      iis << std::fixed << std::setprecision(2) << ii;
      t.add_row({machine.name(), std::to_string(res.best_length()),
                 ratio.str(), iis.str()});
      if (best_period == 0 || res.best_length() < best_period)
        best_period = res.best_length();
    }
    std::cout << t.to_string();
    std::cout << "best sustained period: " << best_period
              << " steps/sample\n";
  }
  return 0;
}
