// ccsched — design-space exploration over synthetic workloads.
//
// A system architect's question: given a family of loop bodies, which
// interconnect should the next chip use, and how much does the paper's
// no-congestion assumption hide?  This example sweeps seeded random CSDFGs
// over candidate 8-PE machines, compacts each, and prices the winner with
// and without link contention on the cycle-accurate simulator.
//
// Build & run:   ./examples/random_design_space
#include <iomanip>
#include <iostream>
#include <map>

#include "ccsched.hpp"
#include "util/text_table.hpp"
#include "workloads/generator.hpp"

int main() {
  using namespace ccs;

  RandomDfgConfig cfg;
  cfg.num_nodes = 26;
  cfg.num_layers = 5;
  cfg.num_back_edges = 5;
  cfg.max_time = 3;
  cfg.max_volume = 4;

  const std::uint64_t seeds[] = {7, 77, 777, 7777};

  std::map<std::string, long long> total_period;
  for (const std::uint64_t seed : seeds) {
    const Csdfg g = random_csdfg(cfg, seed);
    std::cout << "\n## workload seed " << seed << " (" << g.node_count()
              << " tasks, " << g.edge_count() << " dependences)\n";
    TextTable t;
    t.set_header({"machine", "compacted", "II (free links)",
                  "II (contended)", "traffic/iter"});
    for (const Topology& machine :
         {make_complete(8), make_mesh(4, 2), make_ring(8), make_hypercube(3),
          make_star(8), make_binary_tree(8)}) {
      const StoreAndForwardModel comm(machine);
      CycloCompactionOptions opt;
      opt.policy = RemapPolicy::kWithRelaxation;
      const auto res = cyclo_compact(g, machine, comm, opt);

      ExecutorOptions free_links;
      free_links.iterations = 48;
      free_links.warmup = 12;
      ExecutorOptions contended = free_links;
      contended.link_contention = true;

      const auto a = execute_self_timed(res.retimed_graph, res.best, machine,
                                        free_links);
      const auto b = execute_self_timed(res.retimed_graph, res.best, machine,
                                        contended);
      auto fmt = [](double x) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(2) << x;
        return os.str();
      };
      t.add_row({machine.name(), std::to_string(res.best_length()),
                 fmt(a.steady_initiation_interval),
                 fmt(b.steady_initiation_interval),
                 std::to_string(a.total_traffic / free_links.iterations)});
      total_period[machine.name()] += res.best_length();
    }
    std::cout << t.to_string();
  }

  std::cout << "\n## aggregate compacted period over all seeds\n";
  for (const auto& [name, total] : total_period)
    std::cout << "  " << name << ": " << total << '\n';
  std::cout << "Reading: contention inflates II most on hub-like machines "
               "(star) and least on the completely connected one — the "
               "paper's no-congestion assumption is architecture-sensitive.\n";
  return 0;
}
