// ccsched — from a multi-rate SDF specification to a running schedule.
//
// DSP systems are specified as synchronous dataflow: actors with fixed
// production/consumption rates and channels holding initial tokens.  This
// example takes a two-stage sample-rate converter, computes its repetition
// vector, expands it to the single-rate CSDFG the paper's algorithms
// operate on, cyclo-compacts it onto a 2x2 mesh, and verifies the result
// on the cycle-accurate simulator.
//
// Build & run:   ./examples/multirate_sdf
#include <iostream>

#include "ccsched.hpp"
#include "sdf/sdf.hpp"

int main() {
  using namespace ccs;

  // A 2:3 / 3:4 rate-conversion pipeline with a rate-control feedback
  // channel carrying two iterations of slack.
  SdfGraph sdf("resampler");
  const ActorId src = sdf.add_actor("src", 1);
  const ActorId up = sdf.add_actor("up", 2);     // interpolation filter
  const ActorId down = sdf.add_actor("down", 1); // decimation filter
  sdf.add_channel(src, up, 2, 1, 0, 1);
  sdf.add_channel(up, down, 3, 4, 0, 2);
  sdf.add_channel(down, src, 2, 3, /*initial_tokens=*/12, 1);

  const auto q = repetition_vector(sdf);
  std::cout << "repetition vector:";
  for (ActorId a = 0; a < sdf.actor_count(); ++a)
    std::cout << "  " << sdf.actor(a).name << "=" << q[a];
  std::cout << '\n';

  const SdfExpansion x = expand_sdf(sdf);
  std::cout << "single-rate expansion: " << x.graph.node_count()
            << " firings, " << x.graph.edge_count()
            << " dependence bundles, iteration bound "
            << iteration_bound(x.graph).to_string() << "\n\n";

  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(x.graph, mesh, comm, opt);

  std::cout << "compacted schedule (one table period = one full SDF "
               "iteration, i.e. "
            << q[src] << " src / " << q[up] << " up / " << q[down]
            << " down firings):\n"
            << render_schedule(res.retimed_graph, res.best);
  std::cout << "startup " << res.startup_length() << " -> "
            << res.best_length() << " control steps\n";

  const auto report = validate_schedule(res.retimed_graph, res.best, comm);
  ExecutorOptions sim;
  sim.iterations = 32;
  sim.warmup = 8;
  const double ii = execute_static(res.retimed_graph, res.best, mesh, sim)
                        .steady_initiation_interval;
  std::cout << "validator: " << (report.ok() ? "OK" : "BROKEN")
            << "; simulated steady interval " << ii << " steps/iteration\n";
  return report.ok() ? 0 : 1;
}
