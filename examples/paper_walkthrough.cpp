// ccsched — a narrated replay of the paper's running example (Sections 1-4).
//
// Follows Figures 1-4 of "Architecture-Dependent Loop Scheduling via
// Communication-Sensitive Remapping" step by step: the 6-task CSDFG of
// Figure 1(b) on the 2x2 mesh of Figure 1(a), the start-up schedule of
// Figure 2(a), and one manually-narrated rotate-remap pass before letting
// the driver finish the compaction.
//
// Build & run:   ./examples/paper_walkthrough
#include <iostream>

#include "ccsched.hpp"
#include "core/rotation.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace ccs;

  Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);

  std::cout << "The CSDFG of Figure 1(b), as Graphviz DOT:\n"
            << to_dot(g) << '\n';

  // --- Section 3: start-up scheduling -------------------------------------
  ScheduleTable table = start_up_schedule(g, mesh, comm);
  std::cout << "Start-up schedule (Figure 2(a)); note C lands on pe2 at step "
               "3 because the A->C transfer costs one hop:\n"
            << render_schedule(g, table) << '\n';

  // --- Section 4: one rotate-remap pass, narrated --------------------------
  const int previous_length = table.length();
  Retiming total(g.node_count());
  const auto rotated = rotate_first_row(g, table, &total);
  std::cout << "Rotation extracts the first row {";
  for (std::size_t i = 0; i < rotated.size(); ++i)
    std::cout << (i ? "," : "") << g.node(rotated[i]).name;
  std::cout << "} and retimes it: one delay drains from each incoming edge "
               "and lands on each outgoing edge (Figure 1(c)).\n";
  std::cout << "Shifted table (renumbered control steps):\n"
            << render_schedule(g, table) << '\n';

  for (const NodeId v : rotated) {
    std::cout << "Anticipation function for " << g.node(v).name
              << " at target length " << previous_length - 1 << ":";
    for (PeId pe = 0; pe < mesh.size(); ++pe)
      std::cout << "  pe" << pe + 1 << "->"
                << RemapEngine::anticipation(g, table, comm, v, pe,
                                             previous_length - 1);
    std::cout << '\n';
  }

  auto remapped = RemapEngine::remap_rotated(
      g, table, comm, rotated, previous_length,
      RemapPolicy::kWithoutRelaxation);
  if (!remapped) {
    std::cerr << "remap unexpectedly failed\n";
    return 1;
  }
  std::cout << "After remapping (pass 1, length " << remapped->length()
            << "):\n"
            << render_schedule(g, *remapped) << '\n';

  // --- Let the driver finish ----------------------------------------------
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithoutRelaxation;
  const auto res = cyclo_compact(paper_example6(), mesh, comm, opt);
  std::cout << "Full driver, without relaxation (paper reaches 5):\n"
            << render_schedule(res.retimed_graph, res.best);
  std::cout << "length trace:";
  for (int l : res.length_trace) std::cout << ' ' << l;
  std::cout << "\nfinal length " << res.best_length() << " vs start-up "
            << res.startup_length() << '\n';

  const auto report = validate_schedule(res.retimed_graph, res.best, comm);
  return report.ok() ? 0 : 1;
}
