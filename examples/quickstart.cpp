// ccsched quickstart — the smallest end-to-end use of the library.
//
// One include, one facade: build a graph, name a machine, call solve().
// The Solver runs the communication-aware start-up scheduler, compacts the
// table with rotate-remap passes, and certifies the result from first
// principles before handing it back; any failure comes back as diagnostics
// in the response, never as an exception (docs/API.md).
//
// Build & run:   ./examples/quickstart
#include <iostream>

#include "ccsched.hpp"

int main() {
  using namespace ccs;

  // 1. The loop body.  Each node is a task with a computation time; each
  //    edge is a dependence.  `delay` counts loop-carried iterations (the
  //    "z^-1" registers of a DSP diagram); `volume` is the data shipped when
  //    producer and consumer run on different processors.
  Csdfg loop("quickstart");
  const NodeId load = loop.add_node("load", 1);
  const NodeId mul = loop.add_node("mul", 2);
  const NodeId acc = loop.add_node("acc", 1);
  const NodeId store = loop.add_node("store", 1);
  loop.add_edge(load, mul, /*delay=*/0, /*volume=*/2);
  loop.add_edge(mul, acc, 0, 1);
  loop.add_edge(acc, store, 0, 1);
  loop.add_edge(acc, acc, 1, 1);    // accumulator: depends on last iteration
  loop.add_edge(store, load, 2, 1); // double-buffered memory hand-back

  // 2. Solve: four processors in a 2x2 mesh with store-and-forward links
  //    (a transfer costs hops x volume control steps).  This is the whole
  //    hello-world — the ten lines the README quotes.
  Solver solver;
  SolveRequest req;
  req.graph = loop;
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  if (!res.ok()) {
    std::cerr << render_text(res.diagnostics);
    return 1;
  }

  // 3. Inspect.  The schedule repeats every best_length control steps on
  //    the retimed graph; the iteration bound is the theoretical floor for
  //    any machine.
  std::cout << "start-up schedule: " << res.startup_length << " steps\n"
            << "after cyclo-compaction (" << res.best_length << " steps):\n"
            << render_schedule(res.graph, *res.schedule) << '\n'
            << "iteration bound: " << iteration_bound(loop).to_string()
            << " steps/iteration\n"
            << "certified: " << (res.certified ? "yes" : "no") << '\n';

  // 4. The portfolio engine is one field away: explore the whole
  //    configuration grid on a worker pool and keep the best certified
  //    schedule (bit-deterministic for a fixed seed and jobs).
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 4;
  const SolveResponse folio = solver.solve(req);
  if (folio.ok()) {
    std::cout << "portfolio: " << folio.attempts.size() << " attempts, best "
              << folio.best_length << " steps (attempt #"
              << folio.winner_attempt << ", " << folio.winner_label << ")\n";
  }
  return 0;
}
