// ccsched quickstart — the smallest end-to-end use of the library.
//
// We describe a loop body as a communication-sensitive data-flow graph
// (CSDFG), pick a target machine, run cyclo-compaction scheduling, and print
// the resulting static schedule table.
//
// Build & run:   ./examples/quickstart
#include <iostream>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/iteration_bound.hpp"
#include "core/validator.hpp"
#include "io/table_printer.hpp"

int main() {
  using namespace ccs;

  // 1. The loop body.  Each node is a task with a computation time; each
  //    edge is a dependence.  `delay` counts loop-carried iterations (the
  //    "z^-1" registers of a DSP diagram); `volume` is the data shipped when
  //    producer and consumer run on different processors.
  Csdfg loop("quickstart");
  const NodeId load = loop.add_node("load", 1);
  const NodeId mul = loop.add_node("mul", 2);
  const NodeId acc = loop.add_node("acc", 1);
  const NodeId store = loop.add_node("store", 1);
  loop.add_edge(load, mul, /*delay=*/0, /*volume=*/2);
  loop.add_edge(mul, acc, 0, 1);
  loop.add_edge(acc, store, 0, 1);
  loop.add_edge(acc, acc, 1, 1);    // accumulator: depends on last iteration
  loop.add_edge(store, load, 2, 1); // double-buffered memory hand-back

  // 2. The machine: four processors in a 2x2 mesh, store-and-forward links
  //    (a transfer costs hops x volume control steps).
  const Topology machine = make_mesh(2, 2);
  const StoreAndForwardModel comm(machine);

  // 3. Schedule.  cyclo_compact runs the communication-aware start-up list
  //    scheduler and then iteratively rotates (retimes) and remaps tasks to
  //    shrink the table.
  CycloCompactionOptions options;
  options.policy = RemapPolicy::kWithRelaxation;  // the paper's best setting
  const CycloCompactionResult result =
      cyclo_compact(loop, machine, comm, options);

  // 4. Inspect.  The schedule repeats every `length` control steps; the
  //    iteration bound is the theoretical floor for any machine.
  std::cout << "start-up schedule (" << result.startup_length()
            << " steps):\n"
            << render_schedule(loop, result.startup) << '\n';
  std::cout << "after cyclo-compaction (" << result.best_length()
            << " steps):\n"
            << render_schedule(result.retimed_graph, result.best) << '\n';
  std::cout << "iteration bound: " << iteration_bound(loop).to_string()
            << " steps/iteration\n";

  // 5. Trust, but verify: every claim above is checkable.
  const auto report =
      validate_schedule(result.retimed_graph, result.best, comm);
  std::cout << "validator: " << (report.ok() ? "OK" : report.to_string())
            << '\n';
  return report.ok() ? 0 : 1;
}
