// Unit tests for the priority functions (Definitions 3.4 and 3.6).
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "core/priority.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class PriorityTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  DagTiming timing_ = compute_dag_timing(g_);
  NodeId A_ = g_.node_by_name("A"), B_ = g_.node_by_name("B"),
         C_ = g_.node_by_name("C");
};

TEST_F(PriorityTest, PaperWorkedValuesAtStepTwo) {
  // After A is placed at (pe0, 1), the ready list at cs 2 holds B and C.
  // PF(B) = c(A->B) - (2 - (CE(A)+1)) - MB(B) = 1 - 0 - 0 = 1.
  // PF(C) = 1 - 0 - 1 = 0 (C has mobility 1).
  // The paper schedules B first accordingly.
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  EXPECT_EQ(priority_pf(g_, t, timing_, B_, 2), 1);
  EXPECT_EQ(priority_pf(g_, t, timing_, C_, 2), 0);
}

TEST_F(PriorityTest, DeferringANodeDiscountsItsCommTerm) {
  // The (cs - (CE+1)) term erodes the volume's weight as cs advances, but
  // mobility shrinks too (MB = ALAP - cs), so PF for C stays level: at cs 3
  // PF(C) = 1 - 1 - (3-3) = 0.
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  EXPECT_EQ(priority_pf(g_, t, timing_, C_, 3), 0);
}

TEST_F(PriorityTest, VolumeRaisesPriority) {
  // B->E ships volume 2, C->E volume 1: with B and C just finished, E's
  // comm term is dominated by the bulkier producer.
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  t.place(B_, 0, 2);
  t.place(C_, 1, 3);
  const NodeId E = g_.node_by_name("E");
  // cs 4: max(2 - (4 - (3+1)), 1 - (4 - (3+1)), 1 - (4 - (1+1))) - MB(E)
  //      = max(2, 1, -1) - (4 - 4) = 2.
  EXPECT_EQ(priority_pf(g_, t, timing_, E, 4), 2);
}

TEST_F(PriorityTest, RootsHaveZeroCommTerm) {
  ScheduleTable t(g_, 4);
  // A has no zero-delay predecessors: PF = -MB(A) = -(1 - cs)... at cs 1,
  // MB(A) = ALAP(A) - 1 = 0.
  EXPECT_EQ(priority_pf(g_, t, timing_, A_, 1), 0);
  EXPECT_EQ(priority_pf(g_, t, timing_, A_, 3), 2);  // overdue root urgency
}

TEST_F(PriorityTest, UnplacedPredecessorsDoNotContribute) {
  ScheduleTable t(g_, 4);
  const NodeId E = g_.node_by_name("E");
  // None of E's producers are placed: comm term 0, PF = -MB(E).
  EXPECT_EQ(priority_pf(g_, t, timing_, E, 4), 0);
}

TEST_F(PriorityTest, RuleDispatch) {
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  EXPECT_EQ(priority_value(PriorityRule::kCommunicationSensitive, g_, t,
                           timing_, B_, 2),
            priority_pf(g_, t, timing_, B_, 2));
  EXPECT_EQ(
      priority_value(PriorityRule::kMobilityOnly, g_, t, timing_, C_, 2),
      -1);
  EXPECT_EQ(priority_value(PriorityRule::kFifo, g_, t, timing_, C_, 2),
            -static_cast<long long>(C_));
}

TEST_F(PriorityTest, MobilityOnlyPrefersCriticalPathNodes) {
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  const auto pb =
      priority_value(PriorityRule::kMobilityOnly, g_, t, timing_, B_, 2);
  const auto pc =
      priority_value(PriorityRule::kMobilityOnly, g_, t, timing_, C_, 2);
  EXPECT_GT(pb, pc);  // B is critical (mobility 0), C has slack
}

}  // namespace
}  // namespace ccs
