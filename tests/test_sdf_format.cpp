// Unit tests for the SDF text format and the CLI expand command.
#include <gtest/gtest.h>

#include <sstream>

#include "cli/cli.hpp"
#include "io/text_format.hpp"
#include "sdf/sdf_format.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

const char* kConverter =
    "sdf conv\n"
    "actor A 1\n"
    "actor B 2\n"
    "channel A B 3 2\n"
    "channel B A 2 3 6\n";

TEST(SdfFormat, ParsesTheConverter) {
  const SdfGraph sdf = parse_sdf(std::string(kConverter));
  EXPECT_EQ(sdf.name(), "conv");
  EXPECT_EQ(sdf.actor_count(), 2u);
  EXPECT_EQ(sdf.channel_count(), 2u);
  EXPECT_EQ(sdf.channel(1).initial_tokens, 6);
  EXPECT_EQ(sdf.channel(0).token_volume, 1u);
}

TEST(SdfFormat, VolumeAndTokensDefault) {
  const SdfGraph sdf = parse_sdf(
      "actor a 1\nactor b 1\nchannel a b 1 1\nchannel b a 1 1 2 5\n");
  EXPECT_EQ(sdf.channel(0).initial_tokens, 0);
  EXPECT_EQ(sdf.channel(1).token_volume, 5u);
}

TEST(SdfFormat, RoundTrips) {
  const SdfGraph sdf = parse_sdf(std::string(kConverter));
  const SdfGraph back = parse_sdf(serialize_sdf(sdf));
  EXPECT_EQ(back.name(), sdf.name());
  ASSERT_EQ(back.channel_count(), sdf.channel_count());
  for (std::size_t c = 0; c < sdf.channel_count(); ++c) {
    EXPECT_EQ(back.channel(c).from, sdf.channel(c).from);
    EXPECT_EQ(back.channel(c).produce, sdf.channel(c).produce);
    EXPECT_EQ(back.channel(c).consume, sdf.channel(c).consume);
    EXPECT_EQ(back.channel(c).initial_tokens, sdf.channel(c).initial_tokens);
    EXPECT_EQ(back.channel(c).token_volume, sdf.channel(c).token_volume);
  }
}

TEST(SdfFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_sdf("actor a 0\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("actor a 1\nactor a 1\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("channel a b 1 1\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("actor a 1\nchannel a z 1 1\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("actor a 1\nsdf late\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("warp 9\n"), ParseError);
  EXPECT_THROW((void)parse_sdf("actor a 1\nchannel a a 1 1 0 0\n"),
               ParseError);
}

TEST(SdfFormat, ErrorsCarryLineNumbers) {
  try {
    (void)parse_sdf("actor a 1\nchannel a b 1 1\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args,
              const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  const int code = run_cli(args, in, out, err);
  return {code, out.str(), err.str()};
}

TEST(SdfFormat, CliExpandEmitsAParsableCsdfg) {
  const CliResult r = cli({"expand", "-", "--info"}, kConverter);
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("# repetition vector: A=2 B=3"), std::string::npos);
  const Csdfg g = parse_csdfg(r.out);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_TRUE(g.is_legal());
}

TEST(SdfFormat, CliExpandReportsDeadlocks) {
  const CliResult r = cli({"expand", "-"},
                          "actor a 1\nactor b 1\n"
                          "channel a b 1 1\nchannel b a 1 1\n");
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("deadlock"), std::string::npos);
}

TEST(SdfFormat, CliExpandPipesIntoSchedule) {
  // The expand | schedule composition, done in-process.
  const CliResult expand = cli({"expand", "-"}, kConverter);
  ASSERT_EQ(expand.code, 0);
  const CliResult sched = cli(
      {"schedule", "-", "--arch", "ring 4", "--quiet"}, expand.out);
  EXPECT_EQ(sched.code, 0) << sched.err;
  EXPECT_NE(sched.out.find("[valid]"), std::string::npos);
}

}  // namespace
}  // namespace ccs
