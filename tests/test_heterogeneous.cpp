// Tests for the heterogeneous-processor extension: per-PE speed factors
// thread through the table, the schedulers, the validator, the formats,
// and the simulator.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"
#include "sim/executor.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class HeterogeneousTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology pair_ = make_linear_array(2);
  StoreAndForwardModel comm_{pair_};
};

TEST_F(HeterogeneousTest, TableScalesSpansBySpeed) {
  ScheduleTable t(g_, {1, 3});
  const NodeId B = g_.node_by_name("B");  // base time 2
  EXPECT_EQ(t.pe_speed(0), 1);
  EXPECT_EQ(t.pe_speed(1), 3);
  EXPECT_EQ(t.time_on(B, 0), 2);
  EXPECT_EQ(t.time_on(B, 1), 6);
  t.place(B, 1, 2);
  EXPECT_EQ(t.ce(B), 7);  // 2 + 6 - 1
  EXPECT_FALSE(t.is_free(1, 7, 7));
  EXPECT_TRUE(t.is_free(1, 8, 8));
  EXPECT_EQ(t.length(), 7);
  // first_free accounts for the scaled span.
  EXPECT_EQ(t.first_free(1, 1, 2), 8);  // 1..6 would collide at 2..7
}

TEST_F(HeterogeneousTest, SpeedsMustBePositive) {
  EXPECT_THROW(ScheduleTable(g_, std::vector<int>{1, 0}), ContractViolation);
  EXPECT_THROW(ScheduleTable(g_, std::vector<int>{}), ContractViolation);
}

TEST_F(HeterogeneousTest, StartupPrefersTheFastProcessor) {
  StartUpOptions opt;
  opt.pe_speeds = {3, 1};  // pe1 is the slow one here
  const ScheduleTable t = start_up_schedule(g_, pair_, comm_, opt);
  EXPECT_TRUE(validate_schedule(g_, t, comm_).ok());
  // The root lands on the fast processor (index 1) despite the lowest-id
  // tie-break, because completion there is earlier.
  EXPECT_EQ(t.pe(g_.node_by_name("A")), 1u);
}

TEST_F(HeterogeneousTest, MismatchedSpeedVectorIsRejected) {
  StartUpOptions opt;
  opt.pe_speeds = {1, 2, 3};
  EXPECT_THROW((void)start_up_schedule(g_, pair_, comm_, opt),
               ContractViolation);
}

TEST_F(HeterogeneousTest, CompactionStaysValidAndMonotone) {
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  opt.startup.pe_speeds = {1, 2};
  const auto res = cyclo_compact(g_, pair_, comm_, opt);
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm_).ok());
  EXPECT_LE(res.best_length(), res.startup_length());
  // Speeds survive rotation/remap copies.
  EXPECT_EQ(res.best.pe_speed(1), 2);
}

TEST_F(HeterogeneousTest, UniformSlowdownScalesTheScheduleExactly) {
  // All PEs twice as slow and no communication change: the start-up list
  // schedule's structure is speed-invariant, its length roughly doubles.
  StartUpOptions fast;
  StartUpOptions slow;
  slow.pe_speeds = {2, 2};
  const int lf = start_up_schedule(g_, pair_, comm_, fast).length();
  const int ls = start_up_schedule(g_, pair_, comm_, slow).length();
  EXPECT_GE(ls, 2 * lf - 2);  // comm terms don't scale, allow slack
  EXPECT_LE(ls, 2 * lf + 2);
}

TEST_F(HeterogeneousTest, ValidatorUsesEffectiveTimes) {
  // The table cannot be fooled directly (it books effective spans), so
  // smuggle the mismatch in through a graph whose B takes 1 step while the
  // validating graph's B takes 2: on a speed-2 PE the real span is 4 steps
  // (1..4), colliding with D placed at step 3 on the same processor.
  Csdfg shrunk("paper6_shortB");
  for (NodeId v = 0; v < g_.node_count(); ++v)
    shrunk.add_node(g_.node(v).name,
                    g_.node(v).name == "B" ? 1 : g_.node(v).time);
  for (EdgeId e = 0; e < g_.edge_count(); ++e)
    shrunk.add_edge(g_.edge(e).from, g_.edge(e).to, g_.edge(e).delay,
                    g_.edge(e).volume);
  ScheduleTable t(shrunk, {1, 2});
  t.place(shrunk.node_by_name("B"), 1, 1);  // span 2 in the table's eyes
  t.place(shrunk.node_by_name("D"), 1, 3);
  t.place(shrunk.node_by_name("A"), 0, 1);
  t.place(shrunk.node_by_name("C"), 0, 2);
  t.place(shrunk.node_by_name("E"), 0, 4);
  t.place(shrunk.node_by_name("F"), 0, 6);
  const auto report = validate_schedule(g_, t, comm_);
  bool conflict = false;
  for (const auto& v : report.violations)
    conflict |= v.kind == Violation::Kind::kResourceConflict &&
                v.message.find("step 3") != std::string::npos;
  EXPECT_TRUE(conflict) << report.to_string();
}

TEST_F(HeterogeneousTest, ExecutorUsesEffectiveTimes) {
  StartUpOptions opt;
  opt.pe_speeds = {1, 2};
  const ScheduleTable t = start_up_schedule(g_, pair_, comm_, opt);
  ExecutorOptions sim;
  sim.iterations = 8;
  sim.warmup = 2;
  const ExecutionStats s = execute_static(g_, t, pair_, sim);
  EXPECT_EQ(s.late_arrivals, 0);
  EXPECT_DOUBLE_EQ(s.steady_initiation_interval,
                   static_cast<double>(t.length()));
}

TEST_F(HeterogeneousTest, ScheduleFormatRoundTripsSpeeds) {
  StartUpOptions opt;
  opt.pe_speeds = {1, 2};
  const ScheduleTable t = start_up_schedule(g_, pair_, comm_, opt);
  const std::string text = serialize_schedule(g_, t);
  EXPECT_NE(text.find("speeds 1 2"), std::string::npos);
  const ScheduleTable back = parse_schedule(g_, text);
  EXPECT_EQ(back.pe_speed(1), 2);
  EXPECT_EQ(back.length(), t.length());
  EXPECT_TRUE(validate_schedule(g_, back, comm_).ok());
  // Homogeneous tables stay clean of the directive.
  const ScheduleTable hom = start_up_schedule(g_, pair_, comm_);
  EXPECT_EQ(serialize_schedule(g_, hom).find("speeds"), std::string::npos);
}

TEST_F(HeterogeneousTest, FasterMachineNeverLosesOnStartup) {
  // Point-wise dominance holds for the deterministic start-up scheduler:
  // speeding a processor up cannot delay any completion it chooses.
  StartUpOptions mixed;
  mixed.pe_speeds = {1, 2};
  StartUpOptions uniform;
  uniform.pe_speeds = {1, 1};
  const int lm = start_up_schedule(g_, pair_, comm_, mixed).length();
  const int lu = start_up_schedule(g_, pair_, comm_, uniform).length();
  EXPECT_LE(lu, lm);
}

}  // namespace
}  // namespace ccs
