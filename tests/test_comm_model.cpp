// Unit tests for the communication cost models (Definition 3.5).
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "util/contracts.hpp"

namespace ccs {
namespace {

TEST(StoreAndForward, CostIsHopsTimesVolume) {
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel m(mesh);
  // The paper's example under Def. 3.5: B on PE1, E on PE3 (2 hops on their
  // 2x2 mesh), volume 2 -> cost 4... their worked number is hops(2) x m(3) =
  // 6 for a volume-3 transfer.
  EXPECT_EQ(m.cost(0, 3, 3), 6);
  EXPECT_EQ(m.cost(0, 1, 2), 2);
  EXPECT_EQ(m.cost(2, 2, 5), 0);  // same PE is free
  EXPECT_EQ(m.name(), "store_and_forward");
}

TEST(StoreAndForward, ScalesLinearlyInDistance) {
  const Topology line = make_linear_array(8);
  const StoreAndForwardModel m(line);
  for (std::size_t d = 1; d < 8; ++d) EXPECT_EQ(m.cost(0, d, 1), static_cast<CommCost>(d));
  EXPECT_EQ(m.cost(0, 7, 4), 28);
}

TEST(StoreAndForward, CompleteTopologyChargesOneHop) {
  const Topology cc = make_complete(5);
  const StoreAndForwardModel m(cc);
  EXPECT_EQ(m.cost(0, 4, 7), 7);
  EXPECT_EQ(m.cost(3, 1, 1), 1);
}

TEST(ZeroCommModel, AlwaysFree) {
  const ZeroCommModel z;
  EXPECT_EQ(z.cost(0, 5, 100), 0);
  EXPECT_EQ(z.name(), "zero");
}

TEST(FixedLatency, FlatInterPeCost) {
  const Topology line = make_linear_array(4);
  const FixedLatencyModel m(line, 3);
  EXPECT_EQ(m.cost(0, 3, 99), 3);
  EXPECT_EQ(m.cost(0, 1, 1), 3);
  EXPECT_EQ(m.cost(2, 2, 1), 0);
}

TEST(CutThrough, DistanceAdditiveVolumeOnce) {
  const Topology line = make_linear_array(5);
  const CutThroughModel m(line, 2);
  EXPECT_EQ(m.cost(0, 4, 3), 2 * 4 + 3);
  EXPECT_EQ(m.cost(0, 0, 3), 0);
  // Weaker distance dependence than store-and-forward for large volumes.
  const StoreAndForwardModel sf(line);
  EXPECT_LT(m.cost(0, 4, 10), sf.cost(0, 4, 10));
}

TEST(CommModels, OutOfRangePeIsContractChecked) {
  const Topology line = make_linear_array(3);
  const StoreAndForwardModel m(line);
  EXPECT_THROW((void)m.cost(0, 7, 1), ContractViolation);
}

}  // namespace
}  // namespace ccs
