// Unit tests for the exhaustive optimal scheduler — ground truth for the
// heuristic's optimality gap.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/exhaustive.hpp"
#include "core/iteration_bound.hpp"
#include "core/validator.hpp"
#include "workloads/generator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ExhaustiveTest : public ::testing::Test {
protected:
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(ExhaustiveTest, TrivialGraphOptimum) {
  Csdfg g;
  const NodeId a = g.add_node("a", 2);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 0, 1);
  g.add_edge(b, a, 1, 1);
  const auto opt = optimal_schedule(g, mesh_, comm_);
  ASSERT_TRUE(opt.has_value());
  // Serial on one PE: a at 1-2, b at 3 -> L = 3; no shorter table exists
  // (the cycle a->b->a has t=3 over d=1).
  EXPECT_EQ(opt->length(), 3);
  EXPECT_TRUE(validate_schedule(g, *opt, comm_).ok());
}

TEST_F(ExhaustiveTest, OptimumOfThePaperExampleGraphAsGiven) {
  // With the ORIGINAL delays (no retiming), the zero-delay critical path
  // A,B,E,F = 6 floors any placement; communication cannot beat it, and a
  // serial 8-step table always exists.  The optimum is the critical path
  // only if communication permits — verify the search result is valid,
  // minimal >= 6, and at most the serial 8.
  const Csdfg g = paper_example6();
  const auto opt = optimal_schedule(g, mesh_, comm_);
  ASSERT_TRUE(opt.has_value());
  EXPECT_TRUE(validate_schedule(g, *opt, comm_).ok());
  EXPECT_GE(opt->length(), 6);
  EXPECT_LE(opt->length(), 8);
}

TEST_F(ExhaustiveTest, MatchesTheIterationBoundAfterCompactionRetiming) {
  // Schedule the RETIMED graph the compactor produced: the optimum at that
  // retiming can be no worse than the heuristic's table.
  const Csdfg g = paper_example6();
  CycloCompactionOptions copt;
  copt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g, mesh_, comm_, copt);
  const auto opt = optimal_schedule(res.retimed_graph, mesh_, comm_);
  ASSERT_TRUE(opt.has_value());
  EXPECT_LE(opt->length(), res.best_length());
  // And never below the iteration bound.
  const Rational b = iteration_bound(g);
  EXPECT_GE(static_cast<double>(opt->length()) + 1e-9, b.value());
}

TEST_F(ExhaustiveTest, HeuristicGapOnRandomMicroGraphs) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_layers = 3;
  cfg.num_back_edges = 2;
  cfg.max_time = 2;
  cfg.max_volume = 2;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Csdfg g = random_csdfg(cfg, seed);
    CycloCompactionOptions copt;
    copt.policy = RemapPolicy::kWithRelaxation;
    const auto res = cyclo_compact(g, mesh_, comm_, copt);
    const auto opt = optimal_schedule(res.retimed_graph, mesh_, comm_);
    ASSERT_TRUE(opt.has_value()) << seed;
    EXPECT_TRUE(validate_schedule(res.retimed_graph, *opt, comm_).ok())
        << seed;
    EXPECT_LE(opt->length(), res.best_length()) << seed;
  }
}

TEST_F(ExhaustiveTest, RespectsTheLengthCap) {
  const Csdfg g = paper_example6();
  ExhaustiveOptions opt;
  opt.max_length = 3;  // below the zero-delay critical path: infeasible
  EXPECT_FALSE(optimal_schedule(g, mesh_, comm_, opt).has_value());
}

TEST_F(ExhaustiveTest, BudgetExhaustionReturnsNullopt) {
  const Csdfg g = paper_example19();
  ExhaustiveOptions opt;
  opt.max_search_nodes = 50;  // absurdly small
  EXPECT_FALSE(optimal_schedule(g, mesh_, comm_, opt).has_value());
}

}  // namespace
}  // namespace ccs
