// Referee-agreement fuzzing: the algebraic validator and the cycle-accurate
// static executor are independent implementations of the same contract, so
// on ANY table — valid or randomly perturbed — they must agree.  This is
// the strongest correctness net in the suite: a bug in either referee (or a
// divergence between the master constraint and the simulation semantics)
// surfaces as a disagreement.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "sim/executor.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

/// Moves one random task to a random free slot (possibly the same one),
/// keeping the table complete.  Length is re-padded to cover occupancy so
/// only dependence violations (not bookkeeping artifacts) are introduced.
void perturb(ScheduleTable& table, const Csdfg& g, Rng& rng) {
  const NodeId v = rng.uniform_size(0, g.node_count() - 1);
  const int old_length = table.length();
  table.remove(v);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const PeId pe = rng.uniform_size(0, table.num_pes() - 1);
    const int cb = rng.uniform_int(1, old_length + 2);
    const int span = table.pipelined_pes() ? 1 : g.node(v).time;
    if (table.is_free(pe, cb, cb + span - 1)) {
      table.place(v, pe, cb);
      table.set_length(std::max(table.length(), table.occupied_length()));
      return;
    }
  }
  // Fallback: first fit far beyond the table.
  const int cb = table.first_free(0, old_length + 1, g.node(v).time);
  table.place(v, 0, cb);
}

/// True iff the executor's static run sees any timing problem.  The
/// executor checks arrivals; resource conflicts cannot arise from perturb
/// (it only uses free slots), and out-of-table placements were re-padded,
/// so "late arrival" is exactly the violation class both referees can see.
bool executor_flags(const Csdfg& g, const ScheduleTable& t,
                    const Topology& topo) {
  ExecutorOptions opt;
  opt.iterations = 16;
  opt.warmup = 0;
  return execute_static(g, t, topo, opt).late_arrivals > 0;
}

bool validator_flags(const Csdfg& g, const ScheduleTable& t,
                     const CommModel& comm) {
  return !validate_schedule(g, t, comm).ok();
}

class RefereeAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefereeAgreement, ValidatorAndExecutorAgreeUnderPerturbation) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_layers = 4;
  cfg.num_back_edges = 4;
  cfg.max_time = 3;
  cfg.max_volume = 3;
  const Csdfg g = random_csdfg(cfg, GetParam());
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);

  CycloCompactionOptions copt;
  copt.policy = RemapPolicy::kWithRelaxation;
  auto res = cyclo_compact(g, topo, comm, copt);

  // Agreement on the valid table.
  ASSERT_FALSE(validator_flags(res.retimed_graph, res.best, comm));
  ASSERT_FALSE(executor_flags(res.retimed_graph, res.best, topo));

  // Agreement across a chain of random perturbations.
  Rng rng(GetParam() * 7919 + 13);
  ScheduleTable table = res.best;
  for (int step = 0; step < 25; ++step) {
    perturb(table, res.retimed_graph, rng);
    const bool v = validator_flags(res.retimed_graph, table, comm);
    const bool e = executor_flags(res.retimed_graph, table, topo);
    EXPECT_EQ(v, e) << "disagreement at perturbation " << step << ":\n"
                    << validate_schedule(res.retimed_graph, table, comm)
                           .to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefereeAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

TEST(RefereeAgreementEdge, DeliberateSingleStepViolations) {
  // Hand-crafted borderline cases: exactly-on-time is valid, one step
  // early is flagged by both referees.
  const Topology line = make_linear_array(3);
  const StoreAndForwardModel comm(line);
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 2);   // 2 hops x 2 volume when split to the far end
  g.add_edge(v, u, 2, 1);
  for (int cb_v = 2; cb_v <= 7; ++cb_v) {
    ScheduleTable t(g, 3);
    t.place(u, 0, 1);
    t.place(v, 2, cb_v);  // dist 2, volume 2 -> M = 4 -> earliest start 6
    t.set_length(std::max(8, t.occupied_length()));
    const bool valid = validate_schedule(g, t, comm).ok();
    ExecutorOptions opt;
    opt.iterations = 8;
    opt.warmup = 0;
    const bool sim_ok = execute_static(g, t, line, opt).late_arrivals == 0;
    EXPECT_EQ(valid, sim_ok) << "cb_v=" << cb_v;
    EXPECT_EQ(valid, cb_v >= 6) << "cb_v=" << cb_v;
  }
}

}  // namespace
}  // namespace ccs
