// In-process tests of the command-line driver (src/cli).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "io/text_format.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args,
              const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  const int code = run_cli(args, in, out, err);
  return {code, out.str(), err.str()};
}

/// Writes `text` under the test temp dir and returns the path.
std::string temp_file(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream f(path);
  f << text;
  return path;
}

const char* kDemo =
    "graph demo\nnode a 1\nnode b 2\nedge a b 0 2\nedge b a 2 1\n";

TEST(Cli, NoArgsIsUsageError) {
  const CliResult r = cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandIsUsageError) {
  const CliResult r = cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, InfoReportsStructureAndCriticalCycle) {
  const CliResult r = cli({"info", "-"}, kDemo);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("tasks:            2"), std::string::npos);
  EXPECT_NE(r.out.find("iteration bound:  3/2"), std::string::npos);
  EXPECT_NE(r.out.find("a -> b -> a"), std::string::npos);
}

TEST(Cli, BoundPrintsTheRational) {
  const CliResult r = cli({"bound", "-"}, kDemo);
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out, "3/2\n");
}

TEST(Cli, FilesAndStdinAreInterchangeable) {
  const std::string path = temp_file("demo.csdfg", kDemo);
  EXPECT_EQ(cli({"bound", path}).out, cli({"bound", "-"}, kDemo).out);
}

TEST(Cli, MissingFileIsAFailure) {
  const CliResult r = cli({"bound", "/nonexistent/file.csdfg"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, RetimeEmitsAParsableGraphWithShorterPeriod) {
  const std::string text = serialize_csdfg(paper_example6());
  const CliResult r = cli({"retime", "-"}, text);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("clock period 3"), std::string::npos);
  // The emitted body (after the comment line) parses back.
  const Csdfg back = parse_csdfg(r.out);
  EXPECT_EQ(back.node_count(), 6u);
}

TEST(Cli, DotEmitsGraphviz) {
  const CliResult r = cli({"dot", "-"}, kDemo);
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digraph \"demo\""), std::string::npos);
}

TEST(Cli, DotEmitsTopologies) {
  const CliResult r = cli({"dot", "--arch", "ring 4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("graph \"ring(4)\""), std::string::npos);
  EXPECT_NE(r.out.find("p0 -- p1"), std::string::npos);
  EXPECT_EQ(cli({"dot"}).code, 2);
}

TEST(Cli, ScheduleEndToEnd) {
  const CliResult r =
      cli({"schedule", "-", "--arch", "mesh 2 2"}, kDemo);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[valid]"), std::string::npos);
  EXPECT_NE(r.out.find("| cs "), std::string::npos);
}

TEST(Cli, ScheduleRequiresArch) {
  const CliResult r = cli({"schedule", "-"}, kDemo);
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--arch"), std::string::npos);
}

TEST(Cli, SchedulePolicyAndPassesAreHonored) {
  const CliResult strict = cli(
      {"schedule", "-", "--arch", "complete 4", "--policy", "strict",
       "--passes", "2", "--quiet"},
      kDemo);
  EXPECT_EQ(strict.code, 0) << strict.err;
  const CliResult startup = cli(
      {"schedule", "-", "--arch", "complete 4", "--policy", "startup",
       "--quiet"},
      kDemo);
  EXPECT_EQ(startup.code, 0);
  const CliResult modulo = cli(
      {"schedule", "-", "--arch", "complete 4", "--policy", "modulo",
       "--quiet"},
      kDemo);
  EXPECT_EQ(modulo.code, 0) << modulo.err;
  EXPECT_NE(modulo.out.find("[valid]"), std::string::npos);
  const CliResult bad = cli(
      {"schedule", "-", "--arch", "complete 4", "--policy", "sideways"},
      kDemo);
  EXPECT_EQ(bad.code, 2);
}

TEST(Cli, ScheduleValidateSimulateRoundTrip) {
  // schedule --emit-* produces artifacts that validate and simulate.
  const std::string paper = serialize_csdfg(paper_example6());
  const CliResult sched = cli({"schedule", "-", "--arch", "mesh 2 2",
                               "--quiet", "--emit-schedule", "--emit-graph"},
                              paper);
  ASSERT_EQ(sched.code, 0) << sched.err;
  // Split the output: graph part starts at "graph ", schedule at
  // "schedule ".
  const auto gpos = sched.out.find("graph ");
  const auto spos = sched.out.find("schedule ");
  ASSERT_NE(gpos, std::string::npos);
  ASSERT_NE(spos, std::string::npos);
  const std::string gfile =
      temp_file("rt.csdfg", sched.out.substr(gpos, spos - gpos));
  const std::string sfile = temp_file("rt.sched", sched.out.substr(spos));

  const CliResult val =
      cli({"validate", gfile, sfile, "--arch", "mesh 2 2"});
  EXPECT_EQ(val.code, 0) << val.out << val.err;
  EXPECT_NE(val.out.find("valid"), std::string::npos);

  const CliResult sim = cli({"simulate", gfile, sfile, "--arch", "mesh 2 2",
                             "--iterations", "16", "--gantt", "12"});
  EXPECT_EQ(sim.code, 0) << sim.err;
  EXPECT_NE(sim.out.find("late arrivals:   0"), std::string::npos);
  EXPECT_NE(sim.out.find("pe1 |"), std::string::npos);

  const CliResult self = cli({"simulate", gfile, sfile, "--arch", "mesh 2 2",
                              "--self-timed", "--contention"});
  EXPECT_EQ(self.code, 0) << self.err;
  EXPECT_NE(self.out.find("self-timed"), std::string::npos);
}

TEST(Cli, ValidateFlagsABrokenSchedule) {
  const std::string gfile = temp_file("bad.csdfg", kDemo);
  // b placed before its producer's data can arrive (a ends at 1, volume 2
  // over 1 hop -> b may start at 4 earliest on another PE of a pair).
  const std::string sfile = temp_file(
      "bad.sched", "schedule 6 2\nplace a 1 1\nplace b 2 2\n");
  const CliResult r = cli({"validate", gfile, sfile, "--arch",
                           "linear_array 2"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("a->b"), std::string::npos);
}

TEST(Cli, HeterogeneousSpeedsFlowThrough) {
  const CliResult r = cli({"schedule", "-", "--arch", "linear_array 2",
                           "--speeds", "1,2", "--quiet", "--emit-schedule"},
                          kDemo);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("speeds 1 2"), std::string::npos);
  const CliResult bad = cli({"schedule", "-", "--arch", "linear_array 2",
                             "--speeds", "1,2,3"},
                            kDemo);
  EXPECT_EQ(bad.code, 2);
}

TEST(Cli, UnknownOptionRejected) {
  const CliResult r =
      cli({"schedule", "-", "--arch", "mesh 2 2", "--turbo"}, kDemo);
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--turbo"), std::string::npos);
}

TEST(Cli, EqualsFormOptionsAreAccepted) {
  const CliResult r = cli(
      {"schedule", "-", "--arch=complete 4", "--policy=strict",
       "--passes=2", "--quiet"},
      kDemo);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("[valid]"), std::string::npos);
  const CliResult bad =
      cli({"schedule", "-", "--arch=complete 4", "--passes=soon"}, kDemo);
  EXPECT_EQ(bad.code, 2);
  EXPECT_NE(bad.err.find("--passes"), std::string::npos);
}

TEST(Cli, TwoStdinArgumentsRejected) {
  const CliResult r = cli({"validate", "-", "-", "--arch", "mesh 2 2"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("stdin"), std::string::npos);
}

// ------------------------------------------------------- exit-code contract
//
// The contract documented in cli.hpp, pinned here: 0 = success, 1 =
// operational failure (bad input, invalid/uncertified result, --werror),
// 2 = usage error (the command line itself is malformed).

TEST(CliExitCodes, ZeroMeansSuccess) {
  EXPECT_EQ(cli({"bound", "-"}, kDemo).code, 0);
}

TEST(CliExitCodes, OperationalFailuresAreOne) {
  // Unreadable input file.
  EXPECT_EQ(cli({"bound", "/nonexistent/file.csdfg"}).code, 1);
  // Unparsable graph text.
  EXPECT_EQ(cli({"bound", "-"}, "graph g\nnode a\n").code, 1);
  // A schedule the validator rejects (validate prints, then fails).
  const std::string gfile = temp_file("ec.csdfg", kDemo);
  const std::string sfile = temp_file(
      "ec.sched", "schedule 6 2\nplace a 1 1\nplace b 2 2\n");
  EXPECT_EQ(cli({"validate", gfile, sfile, "--arch", "linear_array 2"}).code,
            1);
  // --werror promotes lint warnings (here CCS-G007, isolated node) to
  // failure; without it they report but succeed.
  const char* lonely =
      "graph g\nnode a 1\nnode b 1\nnode c 1\nedge a b 1\nedge b a 1\n";
  EXPECT_EQ(cli({"lint", "-"}, lonely).code, 0);
  EXPECT_EQ(cli({"lint", "-", "--werror"}, lonely).code, 1);
}

TEST(CliExitCodes, UsageErrorsAreTwo) {
  EXPECT_EQ(cli({}).code, 2);                                  // no command
  EXPECT_EQ(cli({"frobnicate"}).code, 2);                      // unknown cmd
  EXPECT_EQ(cli({"schedule", "-"}, kDemo).code, 2);            // missing arg
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2", "--turbo"},
                kDemo).code, 2);                               // unknown flag
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2",
                 "--budget-passes", "-1"}, kDemo).code, 2);     // bad value
}

// ------------------------------------------------------------------ budgets

TEST(Cli, ScheduleBudgetReportsTheStop) {
  const CliResult r = cli({"schedule", "-", "--arch", "mesh 2 2",
                           "--budget-passes", "1", "--quiet"},
                          kDemo);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("budget: stopped by max-passes after 1 pass(es)"),
            std::string::npos)
      << r.out;
}

// ------------------------------------------------------------------- stress

std::string paper6_text() {
  static const std::string text = serialize_csdfg(paper_example6());
  return text;
}

TEST(Cli, StressRequiresAFaultSpec) {
  const CliResult r =
      cli({"stress", "-", "--arch", "mesh 2 2"}, paper6_text());
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--faults"), std::string::npos);
}

TEST(Cli, StressRejectsABadFaultSpec) {
  const std::string faults = temp_file("bad.faults", "explode p0\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults},
      paper6_text());
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("CCS-F001"), std::string::npos);
}

TEST(Cli, StressUnknownTargetIsAFailure) {
  const std::string faults = temp_file("oob.faults", "fail p9\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults},
      paper6_text());
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("CCS-F002"), std::string::npos);
}

TEST(Cli, StressBrokenVerdictFailsWithoutRepair) {
  // Killing every processor but p3 must hit the schedule somewhere.
  const std::string faults =
      temp_file("kill3.faults", "fail p0\nfail p1\nfail p2\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--quiet"},
      paper6_text());
  EXPECT_EQ(r.code, 1) << r.out;
  EXPECT_NE(r.out.find("verdict:  broken"), std::string::npos);
  EXPECT_NE(r.out.find("first failure @iter"), std::string::npos);
}

TEST(Cli, StressDormantFaultIsUnaffected) {
  // The link dies long after the simulated window: verdict unaffected.
  const std::string faults =
      temp_file("dormant.faults", "link p0 p1 @iter 999999\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults,
       "--iterations", "16", "--quiet"},
      paper6_text());
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("verdict:  unaffected"), std::string::npos);
}

TEST(Cli, StressRepairProducesACertifiedSchedule) {
  const std::string faults = temp_file("fail0.faults", "fail p0\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--repair",
       "--emit-schedule"},
      paper6_text());
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("repair ladder:"), std::string::npos);
  EXPECT_NE(r.out.find("[certified]"), std::string::npos);
  EXPECT_NE(r.out.find("pe map:"), std::string::npos);
  // The repaired machine has no p0: the map targets only p1..p3.
  EXPECT_EQ(r.out.find("->p0"), std::string::npos);
  // --emit-schedule appends a parsable table for the reduced machine.
  EXPECT_NE(r.out.find("schedule "), std::string::npos);
}

// ---------------------------------------------------------------- portfolio

TEST(Cli, SchedulePortfolioReportsWinnerAndRoster) {
  const CliResult r = cli({"schedule", "-", "--arch", "mesh 2 2",
                           "--portfolio", "--jobs", "2", "--certify"},
                          paper6_text());
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("portfolio: 24 attempt(s), jobs 2, winner #"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("lower bound"), std::string::npos);
  EXPECT_NE(r.out.find("#0 base:"), std::string::npos);  // per-attempt rows
  EXPECT_NE(r.out.find("[certified]"), std::string::npos);
}

TEST(Cli, SchedulePortfolioIsByteDeterministic) {
  // --quiet: the per-attempt rows print each loser's stop reason, and when
  // a loser gets preempted at jobs>1 depends on thread timing.  The quiet
  // summary (winner identity, serial length, lower bound) and the emitted
  // schedule are covered by the determinism contract.
  const std::vector<std::string> args = {
      "schedule", "-",      "--arch",     "mesh 2 2", "--portfolio",
      "--jobs",   "4",      "--seed",     "11",       "--attempts",
      "30",       "--quiet", "--emit-schedule"};
  const CliResult a = cli(args, paper6_text());
  const CliResult b = cli(args, paper6_text());
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SchedulePortfolioWinnerIsIndependentOfJobs) {
  // Full stdout differs across --jobs only in the literal "jobs N" echo;
  // the emitted schedule (and the winner's identity) must not.
  const auto run = [&](const std::string& jobs) {
    return cli({"schedule", "-", "--arch", "mesh 2 2", "--portfolio",
                "--jobs", jobs, "--quiet", "--emit-schedule"},
               paper6_text());
  };
  const CliResult serial = run("1");
  const CliResult wide = run("8");
  EXPECT_EQ(serial.code, 0) << serial.err;
  const std::size_t a = serial.out.find("schedule ");
  const std::size_t b = wide.out.find("schedule ");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_EQ(serial.out.substr(a), wide.out.substr(b));
}

TEST(Cli, PortfolioFlagsRequireThePortfolioFlag) {
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2", "--jobs", "2"},
                kDemo).code, 2);
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2", "--seed", "1"},
                kDemo).code, 2);
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2", "--attempts", "4"},
                kDemo).code, 2);
  EXPECT_EQ(cli({"schedule", "-", "--arch", "mesh 2 2", "--portfolio",
                 "--jobs", "-3"}, kDemo).code, 2);
}

TEST(Cli, PortfolioRejectsNonCompactionPolicies) {
  for (const char* policy : {"startup", "modulo"}) {
    const CliResult r = cli({"schedule", "-", "--arch", "mesh 2 2",
                             "--portfolio", "--policy", policy},
                            kDemo);
    EXPECT_EQ(r.code, 2) << policy;
  }
}

// ------------------------------------------------- budget flags everywhere

TEST(Cli, StressRepairAcceptsTheBudgetFlags) {
  // The budget grammar is uniform: everywhere a compaction runs, the three
  // budget flags parse.  stress --repair compacts on the reduced machine.
  const std::string faults = temp_file("bfail0.faults", "fail p0\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--repair",
       "--budget-passes", "40", "--budget-ms", "60000", "--patience", "20",
       "--quiet"},
      paper6_text());
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("repair ladder:"), std::string::npos);
}

TEST(Cli, CertifyReplayAcceptsTheBudgetFlags) {
  // A trace recorded under a budget only replays cleanly when the replay
  // is given the same budget — the flags must round-trip.
  const std::string trace = ::testing::TempDir() + "/budgeted.trace";
  const std::string graph = temp_file("budgeted.csdfg", paper6_text());
  const CliResult rec = cli({"schedule", graph, "--arch", "mesh 2 2",
                             "--budget-passes", "2", "--trace", trace,
                             "--quiet"});
  ASSERT_EQ(rec.code, 0) << rec.err;
  const CliResult ok = cli({"certify", "--replay", trace, "--graph", graph,
                            "--arch", "mesh 2 2", "--budget-passes", "2"});
  EXPECT_EQ(ok.code, 0) << ok.out << ok.err;
  // Without the budget the replay runs past the recorded stop and the
  // divergence is a finding, not a crash.
  const CliResult divergent = cli({"certify", "--replay", trace, "--graph",
                                   graph, "--arch", "mesh 2 2"});
  EXPECT_EQ(divergent.code, 1) << divergent.out;
}

TEST(Cli, StressRepairOnAnAllDeadMachineIsInfeasible) {
  const std::string faults = temp_file(
      "all.faults", "fail p0\nfail p1\nfail p2\nfail p3\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--repair",
       "--quiet"},
      paper6_text());
  EXPECT_EQ(r.code, 1) << r.out;
  EXPECT_NE(r.out.find("repair:   infeasible"), std::string::npos);
}

// -------------------------------------------------------------- fingerprint

/// Returns the `<hex32>  aut=...  <file>` lines of a fingerprint run.
std::vector<std::string> fingerprint_lines(const std::string& out) {
  std::vector<std::string> lines;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line))
    if (line.find("  aut=") != std::string::npos) lines.push_back(line);
  return lines;
}

TEST(Cli, FingerprintOutputIsByteDeterministic) {
  const std::string a = temp_file("fp_a.csdfg", kDemo);
  const std::string b = temp_file("fp_b.csdfg", paper6_text());
  const CliResult first = cli({"fingerprint", a, b});
  const CliResult second = cli({"fingerprint", a, b});
  EXPECT_EQ(first.code, 0) << first.out;
  EXPECT_EQ(first.out, second.out);
  EXPECT_EQ(first.err, second.err);

  const std::vector<std::string> lines = fingerprint_lines(first.out);
  ASSERT_EQ(lines.size(), 2u) << first.out;
  for (const std::string& line : lines) {
    ASSERT_GE(line.size(), 32u);
    EXPECT_EQ(line.find_first_not_of("0123456789abcdef"), 32u) << line;
  }
  // Distinct workloads keep distinct fingerprints.
  EXPECT_NE(lines[0].substr(0, 32), lines[1].substr(0, 32));
}

TEST(Cli, FingerprintFlagsDuplicateInputsAsN001) {
  const std::string a = temp_file("dup_a.csdfg", kDemo);
  const std::string b = temp_file("dup_b.csdfg", kDemo);
  const CliResult lenient = cli({"fingerprint", a, b});
  EXPECT_EQ(lenient.code, 0) << lenient.out;
  EXPECT_NE(lenient.out.find("CCS-N001"), std::string::npos);
  // The duplicate is a warning: fatal only under --werror.
  const CliResult strict = cli({"fingerprint", a, b, "--werror"});
  EXPECT_EQ(strict.code, 1) << strict.out;
}

TEST(Cli, FingerprintIsomorphicVerdictsAndExitCodes) {
  const std::string a = temp_file("iso_a.csdfg", kDemo);
  // kDemo under different node names: attribute-isomorphic to it.
  const std::string renamed = temp_file(
      "iso_renamed.csdfg",
      "graph demo2\nnode x 1\nnode y 2\nedge x y 0 2\nedge y x 2 1\n");
  const std::string other = temp_file("iso_other.csdfg", paper6_text());

  const CliResult same = cli({"fingerprint", "--isomorphic", a, renamed});
  EXPECT_EQ(same.code, 0) << same.out;
  EXPECT_NE(same.out.find("isomorphic"), std::string::npos);
  EXPECT_EQ(same.out.find("not isomorphic"), std::string::npos) << same.out;

  const CliResult diff = cli({"fingerprint", "--isomorphic", a, other});
  EXPECT_EQ(diff.code, 1) << diff.out;
  EXPECT_NE(diff.out.find("not isomorphic"), std::string::npos);

  const CliResult usage = cli({"fingerprint", "--isomorphic", a});
  EXPECT_EQ(usage.code, 2) << usage.out;
}

// ----------------------------------------------------- stress --portfolio

TEST(Cli, StressPortfolioFlagsAreGated) {
  const std::string faults = temp_file("gate.faults", "fail p0\n");
  const CliResult jobs = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--jobs",
       "2"},
      paper6_text());
  EXPECT_EQ(jobs.code, 2);
  EXPECT_NE(jobs.err.find("--portfolio"), std::string::npos);
  const CliResult attempts = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults,
       "--attempts", "3"},
      paper6_text());
  EXPECT_EQ(attempts.code, 2);
  const CliResult seed = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults, "--seed",
       "7"},
      paper6_text());
  EXPECT_EQ(seed.code, 2);
  EXPECT_NE(seed.err.find("--portfolio"), std::string::npos);
}

TEST(Cli, StressPortfolioBaselineRunsAndReportsTheWinner) {
  const std::string faults =
      temp_file("pdormant.faults", "link p0 p1 @iter 999999\n");
  const CliResult r = cli(
      {"stress", "-", "--arch", "mesh 2 2", "--faults", faults,
       "--portfolio", "--jobs", "2", "--attempts", "4", "--quiet"},
      paper6_text());
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("portfolio: winner"), std::string::npos);
  EXPECT_NE(r.out.find("baseline:"), std::string::npos);
}

// -------------------------------------------------------------------- serve

TEST(Cli, ServeRejectsBadOptionValues) {
  EXPECT_EQ(cli({"serve", "--jobs", "0"}).code, 2);
  EXPECT_EQ(cli({"serve", "--queue-depth", "0"}).code, 2);
  EXPECT_EQ(cli({"serve", "extra-positional"}).code, 2);
  // Ladder thresholds must be ordered.
  EXPECT_EQ(
      cli({"serve", "--full-ms", "10", "--compact-ms", "50"}).code, 2);
  EXPECT_EQ(cli({"serve", "--bogus-flag"}).code, 2);
}

TEST(Cli, ServeAnswersARequestStreamOnStdin) {
  std::string graph_json;
  for (const char c : paper6_text()) {
    if (c == '\n') {
      graph_json += "\\n";
    } else {
      graph_json += c;
    }
  }
  std::string input = "{\"op\":\"solve\",\"id\":\"one\",\"graph\":\"" +
                      graph_json + "\",\"arch\":\"mesh 2 2\"}\n";
  input += "this line is hostile\n";
  input += "{\"op\":\"shutdown\"}\n";
  const CliResult r = cli({"serve"}, input);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"id\":\"one\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.out.find("CCS-E001"), std::string::npos);
  EXPECT_NE(r.out.find("\"op\":\"shutdown\""), std::string::npos);
  // The summary goes to stderr; stdout carries responses only.
  EXPECT_NE(r.err.find("serve_summary"), std::string::npos);
  EXPECT_EQ(r.out.find("serve_summary"), std::string::npos);
}

}  // namespace
}  // namespace ccs
