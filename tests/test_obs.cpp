// Tests of the observability subsystem (src/obs): the JSONL tracer, the
// metrics registry, the zero-overhead null ObsContext, the instrumented
// pipeline, and the CLI --trace/--stats round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certify.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "cli/cli.hpp"
#include "core/cyclo_compaction.hpp"
#include "engine/portfolio.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

// ---------------------------------------------------------------- helpers

/// Minimal structural JSON check: braces/brackets balance outside strings,
/// strings terminate, and the line is a single object.  Good enough to catch
/// broken escaping or a missing close() without a full parser.
bool looks_like_json_object(const std::string& line) {
  if (line.empty() || line.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\')
        ++i;  // skip the escaped character
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) return false;
      if (depth == 0) return i == line.size() - 1;
    }
  }
  return false;
}

/// Extracts the string value of `"key":"..."` (no escapes expected).
std::string string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  return line.substr(start, end - start);
}

/// Extracts the numeric value of `"key":N` as a long long.
long long number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  if (pos == std::string::npos) return -1;
  return std::stoll(line.substr(pos + needle.size()));
}

// ------------------------------------------------------------ JsonWriter

TEST(JsonWriter, EscapesAndCloses) {
  JsonWriter w;
  w.field("s", std::string_view("a\"b\\c\n"))
      .field("n", 42)
      .field("b", true)
      .field("d", 1.5);
  const std::string line = w.close();
  EXPECT_EQ(line, "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":42,\"b\":true,\"d\":1.5}");
  EXPECT_TRUE(looks_like_json_object(line));
}

TEST(JsonWriter, NonFiniteNumbersDegradeToZero) {
  EXPECT_EQ(json_number(0.0 / 0.0), "0");
  EXPECT_EQ(json_number(1.0 / 0.0), "0");
}

// ---------------------------------------------------------------- Tracer

TEST(Tracer, NullSinkIsDisabledAndEmitsNothing) {
  Tracer t;  // no sink
  EXPECT_FALSE(t.enabled());
  t.emit(PassStartEvent{1, 7});
  t.emit(RemapDecisionEvent{});
  EXPECT_EQ(t.events_emitted(), 0u);
}

TEST(Tracer, SequenceNumbersAreMonotonicFromZero) {
  VectorSink sink;
  Tracer t(&sink);
  ASSERT_TRUE(t.enabled());
  t.emit(PassStartEvent{1, 7});
  t.emit(PassEndEvent{1, 6, true, 6});
  t.emit(PassStartEvent{2, 6});
  ASSERT_EQ(sink.lines().size(), 3u);
  for (std::size_t i = 0; i < sink.lines().size(); ++i) {
    EXPECT_TRUE(looks_like_json_object(sink.lines()[i])) << sink.lines()[i];
    EXPECT_EQ(number_field(sink.lines()[i], "seq"),
              static_cast<long long>(i));
  }
  EXPECT_EQ(t.events_emitted(), 3u);
}

TEST(Tracer, EventKindsRoundTrip) {
  VectorSink sink;
  Tracer t(&sink);
  t.emit(StartupEvent{7, 7});
  t.emit(PassStartEvent{1, 7});
  t.emit(RotationEvent{1, {0, 2, 5}});
  t.emit(RemapTargetEvent{6, false});
  RemapDecisionEvent d;
  d.node = 2;
  d.accepted = true;
  d.pe = 1;
  d.cb = 3;
  d.an = 2;
  d.latest = 4;
  d.psl = 6;
  d.slots_scanned = 5;
  d.reason = "placed";
  t.emit(d);
  t.emit(PslPadEvent{2, 8});
  t.emit(RollbackEvent{1, 7, "no-placement-within-previous-length"});
  t.emit(PassEndEvent{1, 6, true, 6});
  SimRunEvent s;
  s.mode = "static";
  s.iterations = 10;
  s.makespan = 50;
  s.steady_ii = 5.0;
  s.messages = 12;
  s.late_arrivals = 0;
  s.deadlocked = false;
  t.emit(s);

  const std::vector<std::string> kinds = {
      "startup_done", "pass_start", "rotation",  "remap_target", "remap_decision",
      "psl_pad",      "rollback",   "pass_end",  "sim_run"};
  ASSERT_EQ(sink.lines().size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_TRUE(looks_like_json_object(sink.lines()[i])) << sink.lines()[i];
    EXPECT_EQ(string_field(sink.lines()[i], "kind"), kinds[i]);
  }
  const std::string& decision = sink.lines()[4];
  EXPECT_EQ(number_field(decision, "an"), 2);
  EXPECT_EQ(number_field(decision, "psl"), 6);
  EXPECT_EQ(number_field(decision, "pe"), 1);
  const std::string& rot = sink.lines()[2];
  EXPECT_NE(rot.find("\"rotated\":[0,2,5]"), std::string::npos) << rot;
}

TEST(Tracer, StreamSinkWritesOneLinePerEvent) {
  std::ostringstream out;
  StreamSink sink(out);
  Tracer t(&sink);
  t.emit(PassStartEvent{1, 7});
  t.emit(PassEndEvent{1, 7, false, 7});
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(looks_like_json_object(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2);
}

// ------------------------------------------------------- MetricsRegistry

TEST(Metrics, CountersGaugesAndTimersAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("an.evaluations");
  m.add("an.evaluations", 4);
  m.set("schedule.best_length", 5.0);
  m.set("schedule.best_length", 4.0);  // gauges overwrite
  m.record_duration("time.remap", std::chrono::nanoseconds(1'500'000));
  m.record_duration("time.remap", std::chrono::nanoseconds(500'000));
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("an.evaluations"), 5);
  EXPECT_EQ(m.gauge("schedule.best_length"), 4.0);
  EXPECT_EQ(m.timer("time.remap").count, 2);
  EXPECT_EQ(m.timer("time.remap").total_ns, 2'000'000);
  EXPECT_EQ(m.counter("never.touched"), 0);
}

TEST(Metrics, MergeAddsCountersAndTimersOverwritesGauges) {
  MetricsRegistry a, b;
  a.add("c", 1);
  b.add("c", 2);
  a.set("g", 1.0);
  b.set("g", 9.0);
  b.record_duration("t", std::chrono::nanoseconds(100));
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3);
  EXPECT_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.timer("t").count, 1);
}

TEST(Metrics, JsonAndTextExports) {
  MetricsRegistry m;
  m.add("remap.placements", 7);
  m.set("sim.steady_ii", 2.5);
  m.record_duration("time.compaction", std::chrono::nanoseconds(3'000'000));
  const std::string json = m.to_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"remap.placements\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sim.steady_ii\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"time.compaction\""), std::string::npos) << json;
  const std::string text = m.to_text();
  EXPECT_NE(text.find("remap.placements"), std::string::npos) << text;
  EXPECT_NE(text.find("counter"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("timer"), std::string::npos) << text;
}

TEST(Metrics, ScopedTimerIsNoOpOnNull) {
  { ScopedTimer t(nullptr, "x"); }  // must not crash
  MetricsRegistry m;
  { ScopedTimer t(&m, "x"); }
  EXPECT_EQ(m.timer("x").count, 1);
}

// ------------------------------------------------------------ ObsContext

TEST(ObsContext, DefaultContextIsInert) {
  const ObsContext obs;
  EXPECT_FALSE(obs.tracing());
  obs.count("anything");            // no-op, must not crash
  { auto t = obs.time("nothing"); }  // no-op timer
  obs.emit(PassStartEvent{1, 1});
}

// ------------------------------------------------- instrumented pipeline

TEST(ObsPipeline, CycloCompactEmitsEventsAndCounters) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  VectorSink sink;
  Tracer tracer(&sink);
  MetricsRegistry metrics;
  const ObsContext obs{&tracer, &metrics};

  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithoutRelaxation;
  const auto res = cyclo_compact(g, mesh, comm, opt, obs);
  EXPECT_LE(res.best_length(), 5);

  // Every pass is bracketed: each pass_start is closed by a pass_end or, for
  // the final stalled strict pass, by a rollback.  At least one
  // remap_decision carries the AN and PSL fields.
  int starts = 0, ends = 0, rollbacks = 0, decisions = 0,
      decisions_with_bound = 0;
  for (const std::string& line : sink.lines()) {
    ASSERT_TRUE(looks_like_json_object(line)) << line;
    const std::string kind = string_field(line, "kind");
    if (kind == "pass_start") ++starts;
    if (kind == "pass_end") ++ends;
    if (kind == "rollback") ++rollbacks;
    if (kind == "remap_decision") {
      ++decisions;
      if (line.find("\"an\":") != std::string::npos &&
          line.find("\"psl\":") != std::string::npos)
        ++decisions_with_bound;
    }
  }
  EXPECT_GT(starts, 0);
  EXPECT_EQ(starts, ends + rollbacks);
  EXPECT_GT(decisions, 0);
  EXPECT_GT(decisions_with_bound, 0);
  EXPECT_EQ(tracer.events_emitted(), sink.lines().size());

  // The metrics registry saw the hot loops.
  EXPECT_GT(metrics.counter("an.evaluations"), 0);
  EXPECT_GT(metrics.counter("remap.slots_scanned"), 0);
  EXPECT_GT(metrics.counter("compaction.passes"), 0);
  EXPECT_GT(metrics.timer("time.compaction").count, 0);
}

TEST(ObsPipeline, InstrumentedRunMatchesPlainRun) {
  // Observability must not perturb the algorithm: identical results with
  // and without an ObsContext.
  const Csdfg g = paper_example19();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  VectorSink sink;
  Tracer tracer(&sink);
  MetricsRegistry metrics;
  const auto plain = cyclo_compact(g, mesh, comm, {});
  const auto traced =
      cyclo_compact(g, mesh, comm, {}, ObsContext{&tracer, &metrics});
  EXPECT_EQ(plain.best_length(), traced.best_length());
  EXPECT_EQ(plain.best_pass, traced.best_pass);
  EXPECT_EQ(plain.length_trace, traced.length_trace);
}

// ------------------------------------------------------- CLI round trip

TEST(ObsCli, ScheduleTraceAndStatsRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_cli_trace.jsonl";
  const std::string stats_path = dir + "/obs_cli_stats.json";
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";

  std::istringstream in;
  std::ostringstream out, err;
  const int code = run_cli({"schedule", graph, "--arch", "mesh 2 2",
                            "--trace", trace_path, "--stats", stats_path},
                           in, out, err);
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("stats:"), std::string::npos);

  // The trace file is well-formed JSONL with a remap_decision event that
  // carries the anticipation value and the projected-schedule-length bound.
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.is_open());
  std::string line;
  int events = 0;
  bool saw_decision_with_bound = false;
  bool saw_startup = false;
  while (std::getline(trace, line)) {
    ASSERT_TRUE(looks_like_json_object(line)) << line;
    EXPECT_EQ(number_field(line, "seq"), events);
    ++events;
    if (string_field(line, "kind") == "startup_done") saw_startup = true;
    if (string_field(line, "kind") == "remap_decision" &&
        line.find("\"an\":") != std::string::npos &&
        line.find("\"psl\":") != std::string::npos)
      saw_decision_with_bound = true;
  }
  EXPECT_GT(events, 0);
  EXPECT_TRUE(saw_startup);
  EXPECT_TRUE(saw_decision_with_bound);

  // The stats file is a JSON document with nonzero pipeline counters.
  std::ifstream stats(stats_path);
  ASSERT_TRUE(stats.is_open());
  std::stringstream buf;
  buf << stats.rdbuf();
  std::string doc = buf.str();
  while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' '))
    doc.pop_back();
  EXPECT_TRUE(looks_like_json_object(doc)) << doc;
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"an.evaluations\""), std::string::npos);
  EXPECT_EQ(doc.find("\"an.evaluations\":0,"), std::string::npos);
}

TEST(ObsCli, StatsDashGoesToStdout) {
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  std::istringstream in;
  std::ostringstream out, err;
  const int code = run_cli(
      {"schedule", graph, "--arch", "mesh 2 2", "--stats", "-"}, in, out, err);
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("\"counters\""), std::string::npos);
}

TEST(ObsCli, UnwritableTracePathFails) {
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  std::istringstream in;
  std::ostringstream out, err;
  const int code =
      run_cli({"schedule", graph, "--arch", "mesh 2 2", "--trace",
               "/nonexistent-dir/trace.jsonl"},
              in, out, err);
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST(ObsCli, SimulateEmitsSimRunEvent) {
  const std::string dir = ::testing::TempDir();
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  const std::string graph_path = dir + "/obs_cli_retimed.csdfg";
  const std::string sched_path = dir + "/obs_cli_sched.txt";
  const std::string trace_path = dir + "/obs_cli_sim.jsonl";

  // Produce the (retimed) graph + schedule artifacts, then simulate them
  // with tracing.  The compacted schedule validates against the retimed
  // graph, so both artifacts come from the same run.
  std::istringstream in1;
  std::ostringstream out1, err1;
  const int code1 = run_cli({"schedule", graph, "--arch", "mesh 2 2",
                             "--emit-graph", "--emit-schedule", "--quiet"},
                            in1, out1, err1);
  ASSERT_EQ(code1, 0) << err1.str();
  const auto graph_pos = out1.str().find("graph ");
  const auto sched_pos = out1.str().find("schedule ", graph_pos);
  ASSERT_NE(graph_pos, std::string::npos) << out1.str();
  ASSERT_NE(sched_pos, std::string::npos) << out1.str();
  {
    std::ofstream gf(graph_path);
    gf << out1.str().substr(graph_pos, sched_pos - graph_pos);
    std::ofstream sf(sched_path);
    sf << out1.str().substr(sched_pos);
  }

  std::istringstream in2;
  std::ostringstream out2, err2;
  const int code2 = run_cli({"simulate", graph_path, sched_path, "--arch",
                             "mesh 2 2", "--trace", trace_path},
                            in2, out2, err2);
  ASSERT_EQ(code2, 0) << err2.str();
  std::ifstream trace(trace_path);
  std::string line;
  bool saw_sim_run = false;
  while (std::getline(trace, line)) {
    ASSERT_TRUE(looks_like_json_object(line)) << line;
    if (string_field(line, "kind") == "sim_run") saw_sim_run = true;
  }
  EXPECT_TRUE(saw_sim_run);
}

// ------------------------------------------------- trace reader + replay

TEST(TraceReader, RoundTripsTracerOutput) {
  VectorSink sink;
  Tracer tracer(&sink);
  tracer.emit(PassStartEvent{1, 7});
  tracer.emit(RotationEvent{1, {2, 5}});
  tracer.emit(RemapDecisionEvent{3, true, 1, 4, 2, 9, 8, 3, "placed"});
  std::string text;
  for (const std::string& line : sink.lines()) text += line + "\n";

  const ParsedTrace parsed = parse_trace_jsonl(text);
  EXPECT_TRUE(parsed.issues.empty());
  ASSERT_EQ(parsed.events.size(), 3u);
  long long seq = -1;
  EXPECT_TRUE(parsed.events[1].number("seq", seq));
  EXPECT_EQ(seq, 1);
  std::string kind;
  EXPECT_TRUE(parsed.events[2].string("kind", kind));
  EXPECT_EQ(kind, "remap_decision");
  const TraceField* rotated = parsed.events[1].find("rotated");
  ASSERT_NE(rotated, nullptr);
  EXPECT_EQ(rotated->kind, TraceField::Kind::kArray);
  EXPECT_EQ(rotated->text, "[2,5]");
  EXPECT_EQ(canonical_trace_event(parsed.events[0]),
            "seq=0;kind=pass_start;pass=1;length=7");
}

TEST(TraceReader, ReportsMalformedLinesWithTheirNumbers) {
  const ParsedTrace parsed = parse_trace_jsonl(
      "{\"seq\":0,\"kind\":\"pass_start\"}\n"
      "\n"
      "{\"seq\":1,\"kind\":\"pass_end\"\n"
      "[1,2,3]\n");
  EXPECT_EQ(parsed.events.size(), 1u);
  ASSERT_EQ(parsed.issues.size(), 2u);
  EXPECT_EQ(parsed.issues[0].line, 3u);
  EXPECT_EQ(parsed.issues[1].line, 4u);
}

/// A recorded scheduling trace of the paper graph, produced in-process.
std::string record_paper_trace(const Csdfg& g, const Topology& topo,
                               const CommModel& comm,
                               const CycloCompactionOptions& opt) {
  VectorSink sink;
  Tracer tracer(&sink);
  const ObsContext obs{&tracer, nullptr};
  (void)cyclo_compact(g, topo, comm, opt, obs);
  std::string text;
  for (const std::string& line : sink.lines()) text += line + "\n";
  return text;
}

TEST(TraceReplay, FaithfulTraceVerifiesAndTamperedTraceIsRejected) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  const CycloCompactionOptions opt;
  const std::string text = record_paper_trace(g, topo, comm, opt);

  DiagnosticBag clean;
  EXPECT_TRUE(audit_trace(text, "<trace>", false, clean));
  EXPECT_TRUE(replay_trace(g, topo, comm, opt, text, "<trace>", clean))
      << render_text(clean);
  EXPECT_TRUE(clean.empty()) << render_text(clean);

  // Tamper with one remap decision: claim a different target step.  The
  // stream still parses and passes the structural audit, but the replay
  // diff pins the exact line.
  std::string tampered = text;
  const auto pos = tampered.find("\"cb\":");
  ASSERT_NE(pos, std::string::npos);
  tampered.insert(pos + 5, "9");  // "cb":N -> "cb":9N
  DiagnosticBag bag;
  EXPECT_FALSE(replay_trace(g, topo, comm, opt, tampered, "<trace>", bag));
  bag.finalize();
  ASSERT_FALSE(bag.empty());
  EXPECT_EQ(bag.diagnostics()[0].code, "CCS-S012");
  EXPECT_NE(bag.diagnostics()[0].message.find("diverges"),
            std::string::npos);

  // Dropping an event is also a divergence.
  const auto cut = text.find('\n');
  DiagnosticBag dropped;
  EXPECT_FALSE(replay_trace(g, topo, comm, opt, text.substr(cut + 1),
                            "<trace>", dropped));

  // A syntactically broken stream is CCS-S013 before any diffing.
  DiagnosticBag broken;
  EXPECT_FALSE(
      replay_trace(g, topo, comm, opt, "...not json\n", "<trace>", broken));
  broken.finalize();
  ASSERT_FALSE(broken.empty());
  EXPECT_EQ(broken.diagnostics()[0].code, "CCS-S013");
}

TEST(TraceReplay, CliReplayModeVerifiesARecordedRun) {
  const std::string dir = ::testing::TempDir();
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  const std::string trace_path = dir + "/replay_cli.jsonl";

  std::istringstream in1;
  std::ostringstream out1, err1;
  ASSERT_EQ(run_cli({"schedule", graph, "--arch", "mesh 2 2", "--quiet",
                     "--trace", trace_path},
                    in1, out1, err1),
            0)
      << err1.str();

  std::istringstream in2;
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli({"certify", "--replay", trace_path, "--graph", graph,
                     "--arch", "mesh 2 2"},
                    in2, out2, err2),
            0)
      << out2.str() << err2.str();

  // Flip one digit in the file and the replay must fail with CCS-S012.
  std::string text;
  {
    std::ifstream f(trace_path);
    std::ostringstream os;
    os << f.rdbuf();
    text = os.str();
  }
  const auto pos = text.find("\"an\":");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + 5, "1");
  {
    std::ofstream f(trace_path);
    f << text;
  }
  std::istringstream in3;
  std::ostringstream out3, err3;
  EXPECT_EQ(run_cli({"certify", "--replay", trace_path, "--graph", graph,
                     "--arch", "mesh 2 2"},
                    in3, out3, err3),
            1);
  EXPECT_NE(out3.str().find("CCS-S012"), std::string::npos) << out3.str();
}

// ------------------------------------------------------ span profiler

TEST(ObsSpanHistogram, BucketsCountAndApproximateQuantiles) {
  SpanHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_ns(0.5), 0u);
  for (int i = 0; i < 19; ++i) h.add(10);
  h.add(900);
  h.add(900);
  EXPECT_EQ(h.count(), 21u);
  EXPECT_EQ(h.total_ns(), 19u * 10u + 2u * 900u);
  EXPECT_EQ(h.max_ns(), 900u);
  // p50 lands in the [8,16) bucket; log2 resolution bounds it by 2x.
  EXPECT_GE(h.quantile_ns(0.5), 10u);
  EXPECT_LE(h.quantile_ns(0.5), 20u);
  // p95 is the outliers' bucket, clamped by the true max.
  EXPECT_GE(h.quantile_ns(0.95), 512u);
  EXPECT_LE(h.quantile_ns(0.95), 900u);

  SpanHistogram other;
  other.add(1u << 20);
  h.merge(other);
  EXPECT_EQ(h.count(), 22u);
  EXPECT_EQ(h.max_ns(), 1u << 20);
}

TEST(ObsSpan, NullProfilerIsInert) {
  const ObsSpan span(nullptr, "never-recorded");
  ObsContext obs;
  const ObsSpan via_context = obs.span("also-never");
  EXPECT_FALSE(obs.profiling());
}

TEST(ObsSpan, NestedScopesRecordDepthAndSelfTime) {
  SpanProfiler profiler;
  {
    const ObsSpan outer(&profiler, "outer");
    {
      const ObsSpan inner(&profiler, "inner");
    }
  }
  const std::vector<SpanRecord> records = profiler.records();
  ASSERT_EQ(records.size(), 2u);
  // Records close innermost-first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0);
  EXPECT_EQ(records[0].tid, records[1].tid);
  EXPECT_GE(records[1].start_ns + records[1].dur_ns,
            records[0].start_ns + records[0].dur_ns);
  // The outer scope's self time excludes the inner scope.
  EXPECT_LE(records[1].self_ns + records[0].dur_ns, records[1].dur_ns);
  const auto stats = profiler.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("inner").durations.count(), 1u);
  EXPECT_EQ(stats.at("outer").durations.count(), 1u);
}

TEST(ObsSpan, FoldAndAbsorbMergeAggregates) {
  SpanProfiler a;
  SpanHistogram local;
  local.add(5);
  local.add(7);
  a.fold("an.eval", local);
  SpanProfiler b;
  {
    const ObsSpan span(&b, "remap");
  }
  b.set_attempt(3);
  {
    const ObsSpan tagged(&b, "tagged");
  }
  a.absorb(b);
  const auto stats = a.stats();
  EXPECT_EQ(stats.at("an.eval").durations.count(), 2u);
  EXPECT_EQ(stats.at("remap").durations.count(), 1u);
  bool saw_attempt_tag = false;
  for (const SpanRecord& r : a.records())
    if (r.name == "tagged") saw_attempt_tag = r.attempt == 3;
  EXPECT_TRUE(saw_attempt_tag);
}

TEST(ObsSpan, ProcessHookInstallsAndRestores) {
  ASSERT_EQ(SpanProfiler::process(), nullptr);
  SpanProfiler profiler;
  SpanProfiler* previous = SpanProfiler::set_process(&profiler);
  EXPECT_EQ(previous, nullptr);
  {
    const ObsSpan span(SpanProfiler::process(), "hooked");
  }
  EXPECT_EQ(SpanProfiler::set_process(previous), &profiler);
  EXPECT_EQ(SpanProfiler::process(), nullptr);
  EXPECT_EQ(profiler.stats().at("hooked").durations.count(), 1u);
}

TEST(ObsSpanPipeline, InstrumentedCompactionRecordsTheTaxonomy) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  SpanProfiler profiler;
  ObsContext obs;
  obs.profiler = &profiler;
  (void)cyclo_compact(g, topo, comm, {}, obs);
  const auto stats = profiler.stats();
  for (const char* name :
       {"startup.list", "compact", "compact.pass", "remap", "remap.target",
        "remap.an", "an.eval"})
    EXPECT_TRUE(stats.count(name) != 0 && stats.at(name).durations.count() > 0)
        << "missing span " << name;
  // Nesting: one "compact" root holds every pass.
  EXPECT_EQ(stats.at("compact").durations.count(), 1u);
  EXPECT_GE(stats.at("compact.pass").durations.count(), 1u);
  EXPECT_GE(stats.at("an.eval").durations.count(),
            stats.at("remap.an").durations.count());
}

TEST(ObsSpanPipeline, ChromeTraceExportIsWellFormed) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  SpanProfiler profiler;
  ObsContext obs;
  obs.profiler = &profiler;
  (void)cyclo_compact(g, topo, comm, {}, obs);
  const std::string doc = chrome_trace_json(profiler);
  std::string one_line = doc;
  for (char& c : one_line)
    if (c == '\n') c = ' ';
  // The whole document is one balanced JSON object with the trace_event
  // scaffolding: a thread_name metadata row and complete ("X") events.
  std::string squashed;
  for (char c : one_line)
    if (c != ' ') squashed += c;
  EXPECT_TRUE(looks_like_json_object(squashed)) << doc.substr(0, 200);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"compact\""), std::string::npos);
  EXPECT_NE(doc.find("\"self_us\""), std::string::npos);
}

// A parallel portfolio run must merge per-worker spans into one consistent
// stream: attempt-tagged, and structurally well-nested per thread — the
// trace audit (CCS-S014) is the oracle.  Runs under TSan in CI
// (tools/check.sh CCSCHED_SANITIZE=thread keeps the Obs suite).
TEST(ObsSpanPortfolio, ParallelSpansMergeWellFormed) {
  const Csdfg g = paper_example19();
  const Topology topo = make_mesh(4, 2);
  const StoreAndForwardModel comm(topo);
  VectorSink sink;
  Tracer tracer(&sink);
  MetricsRegistry metrics;
  SpanProfiler profiler;
  const ObsContext obs{&tracer, &metrics, &profiler};
  PortfolioOptions opt;
  opt.jobs = 8;
  opt.certify_winner = false;
  const PortfolioResult folio = portfolio_compact(g, topo, comm, opt, obs);
  EXPECT_GT(folio.winner.best.length(), 0);

  // Every attempt wrapped in a portfolio.attempt span, tagged.
  const std::vector<SpanRecord> records = profiler.records();
  ASSERT_FALSE(records.empty());
  int attempts_seen = 0;
  for (const SpanRecord& r : records)
    if (r.name == "portfolio.attempt") {
      ++attempts_seen;
      EXPECT_GE(r.attempt, 0);
    }
  EXPECT_GT(attempts_seen, 1);

  // The merged stream splices each attempt's lines verbatim (per-attempt
  // seq spaces), ordered by attempt index.  Group by the attempt tag: each
  // attempt's sub-stream must pass the structural audit — including the
  // CCS-S014 span-nesting and timestamp-monotonicity checks.
  std::map<long long, std::string> by_attempt;
  long long max_attempt_seen = -1;
  for (const std::string& line : sink.lines()) {
    const std::string needle = "\"attempt\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos) continue;  // the caller's own events
    const long long attempt = std::stoll(line.substr(pos + needle.size()));
    EXPECT_GE(attempt, max_attempt_seen) << "attempt streams out of order";
    max_attempt_seen = std::max(max_attempt_seen, attempt);
    by_attempt[attempt] += line + "\n";
  }
  EXPECT_GT(by_attempt.size(), 1u);
  for (const auto& [attempt, text] : by_attempt) {
    DiagnosticBag bag;
    EXPECT_TRUE(audit_trace(text, "<attempt>", false, bag))
        << "attempt " << attempt << '\n'
        << render_text(bag);
    EXPECT_NE(text.find("\"kind\":\"span_begin\""), std::string::npos)
        << "attempt " << attempt;
  }
}

// ------------------------------------------------------ profile CLI

TEST(ObsProfileCli, ScheduleProfileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string profile_path = dir + "/obs_profile.trace.json";
  const std::string stats_path = dir + "/obs_profile_stats.json";
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  std::istringstream in;
  std::ostringstream out, err;
  const int code =
      run_cli({"schedule", graph, "--arch", "mesh 2 2", "--quiet",
               "--profile", profile_path, "--stats", stats_path},
              in, out, err);
  ASSERT_EQ(code, 0) << err.str();

  std::ifstream profile(profile_path);
  ASSERT_TRUE(profile.is_open());
  std::stringstream buf;
  buf << profile.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"remap\""), std::string::npos);
  // The route-table build happens inside the profiled window (the CLI
  // installs the process hook before constructing the architecture).
  EXPECT_NE(doc.find("\"name\":\"route."), std::string::npos) << doc.substr(0, 400);

  // The stats document carries the span histograms next to the counters.
  std::ifstream stats(stats_path);
  ASSERT_TRUE(stats.is_open());
  std::stringstream sbuf;
  sbuf << stats.rdbuf();
  const std::string sdoc = sbuf.str();
  EXPECT_NE(sdoc.find("\"spans\""), std::string::npos);
  for (const char* name : {"remap", "an.eval", "startup.list"})
    EXPECT_NE(sdoc.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  EXPECT_NE(sdoc.find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(sdoc.find("\"p95_ms\""), std::string::npos);
}

TEST(ObsProfileCli, StatsAloneCarriesSpansAndTraceAloneOmitsThem) {
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  // --stats - alone: spans present in the JSON on stdout.
  std::istringstream in1;
  std::ostringstream out1, err1;
  ASSERT_EQ(run_cli({"schedule", graph, "--arch", "mesh 2 2", "--stats", "-"},
                    in1, out1, err1),
            0)
      << err1.str();
  EXPECT_NE(out1.str().find("\"spans\""), std::string::npos);

  // --trace alone: the stream carries no span events, so traces stay
  // byte-deterministic and replayable.
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_no_spans.jsonl";
  std::istringstream in2;
  std::ostringstream out2, err2;
  ASSERT_EQ(run_cli({"schedule", graph, "--arch", "mesh 2 2", "--quiet",
                     "--trace", trace_path},
                    in2, out2, err2),
            0)
      << err2.str();
  std::ifstream trace(trace_path);
  std::stringstream buf;
  buf << trace.rdbuf();
  EXPECT_EQ(buf.str().find("span_begin"), std::string::npos);
}

TEST(ObsProfileCli, TraceAndProfileTogetherEmitAuditableSpans) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/obs_spans.jsonl";
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  std::istringstream in;
  std::ostringstream out, err;
  ASSERT_EQ(run_cli({"schedule", graph, "--arch", "mesh 2 2", "--quiet",
                     "--trace", trace_path, "--profile", "-"},
                    in, out, err),
            0)
      << err.str();
  std::ifstream trace(trace_path);
  std::stringstream buf;
  buf << trace.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"kind\":\"span_begin\""), std::string::npos);
  DiagnosticBag bag;
  EXPECT_TRUE(audit_trace(text, "<trace>", false, bag)) << render_text(bag);
}

// ------------------------------------------------------ report CLI

TEST(ObsReportCli, HotPathReportFromStatsDocument) {
  const std::string dir = ::testing::TempDir();
  const std::string stats_path = dir + "/report_stats.json";
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  std::istringstream in1;
  std::ostringstream out1, err1;
  ASSERT_EQ(run_cli({"schedule", graph, "--arch", "mesh 2 2", "--quiet",
                     "--stats", stats_path},
                    in1, out1, err1),
            0)
      << err1.str();
  std::istringstream in2;
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli({"report", stats_path}, in2, out2, err2), 0) << err2.str();
  EXPECT_NE(out2.str().find("remap"), std::string::npos) << out2.str();
  EXPECT_NE(out2.str().find("self"), std::string::npos) << out2.str();
}

TEST(ObsReportCli, DiffExitCodesGateRegressions) {
  const std::string dir = ::testing::TempDir();
  const std::string before = dir + "/report_before.json";
  const std::string after = dir + "/report_after.json";
  {
    std::ofstream f(before);
    f << "{\"counters\":{\"an.evaluations\":100,\"psl.rejections\":7},"
         "\"gauges\":{\"schedule.best_length\":5}}";
  }
  {
    std::ofstream f(after);
    f << "{\"counters\":{\"an.evaluations\":150,\"psl.rejections\":7},"
         "\"gauges\":{\"schedule.best_length\":5}}";
  }

  // Identical inputs: exit 0.
  std::istringstream in1;
  std::ostringstream out1, err1;
  EXPECT_EQ(run_cli({"report", "--diff", before, before}, in1, out1, err1), 0)
      << out1.str() << err1.str();

  // +50% on a gated counter: exit 1 and the delta is named.
  std::istringstream in2;
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli({"report", "--diff", before, after}, in2, out2, err2), 1);
  EXPECT_NE(out2.str().find("an.evaluations"), std::string::npos)
      << out2.str();

  // A generous threshold waives it.
  std::istringstream in3;
  std::ostringstream out3, err3;
  EXPECT_EQ(run_cli({"report", "--diff", before, after, "--threshold", "60"},
                    in3, out3, err3),
            0)
      << out3.str();

  // Gating only timers ignores the counter regression.
  std::istringstream in4;
  std::ostringstream out4, err4;
  EXPECT_EQ(run_cli({"report", "--diff", before, after, "--gate", "timers"},
                    in4, out4, err4),
            0)
      << out4.str();

  // An improvement in the other direction is not a regression.
  std::istringstream in5;
  std::ostringstream out5, err5;
  EXPECT_EQ(run_cli({"report", "--diff", after, before}, in5, out5, err5), 0)
      << out5.str();
}

TEST(ObsReportCli, DottedGateTokensTargetSpecificMetrics) {
  const std::string dir = ::testing::TempDir();
  const std::string before = dir + "/gate_before.json";
  const std::string after = dir + "/gate_after.json";
  {
    std::ofstream f(before);
    f << "{\"benchmarks\":{\"portfolio_mesh\":{\"bound\":{\"gap\":2},"
         "\"wall_ms\":10}}}";
  }
  {
    std::ofstream f(after);
    // The gap regresses; the (machine-dependent) wall time regresses too.
    f << "{\"benchmarks\":{\"portfolio_mesh\":{\"bound\":{\"gap\":3},"
         "\"wall_ms\":50}}}";
  }

  // A dotted token gates just the paths containing it: the gap regression
  // fails the diff even though nothing else is gated.
  std::istringstream in1;
  std::ostringstream out1, err1;
  EXPECT_EQ(run_cli({"report", "--diff", before, after, "--gate",
                     "bound.gap"},
                    in1, out1, err1),
            1)
      << out1.str();
  EXPECT_NE(out1.str().find("bound.gap"), std::string::npos) << out1.str();

  // The noisy wall-clock path stays ungated under the same token.
  std::istringstream in2;
  std::ostringstream out2, err2;
  {
    std::ofstream f(after);  // gap fixed, wall time still noisy
    f << "{\"benchmarks\":{\"portfolio_mesh\":{\"bound\":{\"gap\":2},"
         "\"wall_ms\":50}}}";
  }
  EXPECT_EQ(run_cli({"report", "--diff", before, after, "--gate",
                     "bound.gap"},
                    in2, out2, err2),
            0)
      << out2.str();
}

TEST(ObsReportCli, RejectsBadUsage) {
  std::istringstream in1;
  std::ostringstream out1, err1;
  EXPECT_EQ(run_cli({"report"}, in1, out1, err1), 2);
  std::istringstream in2;
  std::ostringstream out2, err2;
  EXPECT_EQ(run_cli({"report", "--threshold", "5", "x.json"}, in2, out2, err2),
            2);
  std::istringstream in3;
  std::ostringstream out3, err3;
  EXPECT_EQ(run_cli({"report", "--diff", "a.json", "b.json", "--threshold",
                     "-3"},
                    in3, out3, err3),
            2);
  // A missing file is a runtime failure, not a usage error.
  std::istringstream in4;
  std::ostringstream out4, err4;
  EXPECT_EQ(run_cli({"report", "/nonexistent-dir/metrics.json"}, in4, out4,
                    err4),
            1);
}

}  // namespace
}  // namespace ccs
