// Tests of the ccs::Solver facade (src/engine/solver.hpp) — the stable API
// contract documented in docs/API.md, reached through the umbrella header.
//
// The load-bearing properties:
//  * solve() never throws: every failure mode lands in the diagnostics bag
//    as a CCS-E001 (unusable request) or CCS-E002 (provably no answer)
//    finding with a matching SolveStatus — these tests are what "pins the
//    solver request rules" promised by tests/test_lint.cpp;
//  * the happy path of every mode fills the response fields it advertises;
//  * the bag is always finalized and renderable.

#include "ccsched.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "workloads/library.hpp"

namespace ccs {
namespace {

bool has_code(const DiagnosticBag& bag, const std::string& code) {
  const auto& diags = bag.diagnostics();
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

TEST(SolverApi, VersionMacroIsCurrent) {
  EXPECT_EQ(CCSCHED_API_VERSION, 1);
}

TEST(SolverApi, HelloWorldScheduleIsCertified) {
  // The README / docs/API.md hello-world, verbatim in spirit.
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  ASSERT_TRUE(res.schedule.has_value());
  EXPECT_TRUE(res.certified);
  EXPECT_GT(res.best_length, 0);
  EXPECT_LE(res.best_length, res.startup_length);
  ASSERT_TRUE(res.machine.has_value());
  EXPECT_EQ(res.machine->size(), 4u);
  EXPECT_EQ(solve_status_name(res.status), "ok");
  // The response graph is the retimed one the schedule satisfies.
  const StoreAndForwardModel comm(*res.machine);
  EXPECT_TRUE(validate_schedule(res.graph, *res.schedule, comm).ok());
}

TEST(SolverApi, MalformedArchitectureIsInvalidNotThrown) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "klein-bottle 7";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"))
      << render_text(res.diagnostics);
  EXPECT_EQ(solve_status_name(res.status), "invalid-request");
}

TEST(SolverApi, MissingMachineIsInvalid) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, IllegalGraphIsInvalidNotThrown) {
  Csdfg g("zero-delay-cycle");
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  Solver solver;
  SolveRequest req;
  req.graph = g;
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
  EXPECT_FALSE(res.schedule.has_value());
}

TEST(SolverApi, WrongSpeedsVectorIsInvalid) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.options.startup.pe_speeds = {1, 2};  // 4-PE machine
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, ExplicitTopologyWinsOverArchString) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "this is not a machine";
  req.topology.emplace(make_linear_array(3));
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.machine->size(), 3u);
}

TEST(SolverApi, StartupModeSkipsCompaction) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kStartup;
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.best_length, res.startup_length);
  EXPECT_TRUE(res.certified);
}

TEST(SolverApi, ModuloModeRejectsSpeeds) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kModulo;
  req.options.startup.pe_speeds = {1, 1, 1, 2};
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));

  req.options.startup.pe_speeds.clear();
  const SolveResponse ok = solver.solve(req);
  ASSERT_TRUE(ok.ok()) << render_text(ok.diagnostics);
  EXPECT_TRUE(ok.schedule.has_value());
}

TEST(SolverApi, PortfolioModeReportsProvenance) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 2;
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_TRUE(res.certified);
  ASSERT_FALSE(res.attempts.empty());
  ASSERT_GE(res.winner_attempt, 0);
  ASSERT_LT(static_cast<std::size_t>(res.winner_attempt),
            res.attempts.size());
  EXPECT_EQ(res.attempts[static_cast<std::size_t>(res.winner_attempt)].label,
            res.winner_label);
  EXPECT_EQ(
      res.attempts[static_cast<std::size_t>(res.winner_attempt)].length,
      res.best_length);
  // The request's options field is the portfolio's base configuration, so
  // the facade can never do worse than the serial solve of that config.
  SolveRequest serial = req;
  serial.mode = SolveMode::kSchedule;
  const SolveResponse base = solver.solve(serial);
  ASSERT_TRUE(base.ok());
  EXPECT_LE(res.best_length, base.best_length);
}

TEST(SolverApi, CertifyModeNeedsASchedule) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kCertify;
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, CertifyModeAcceptsAGoodScheduleAndRejectsABrokenOne) {
  Solver solver;
  SolveRequest produce;
  produce.graph = paper_example6();
  produce.arch = "mesh 2 2";
  const SolveResponse made = solver.solve(produce);
  ASSERT_TRUE(made.ok());

  SolveRequest check;
  check.graph = made.graph;  // the retimed graph the schedule satisfies
  check.arch = "mesh 2 2";
  check.mode = SolveMode::kCertify;
  check.schedule = made.schedule;
  const SolveResponse good = solver.solve(check);
  EXPECT_TRUE(good.ok()) << render_text(good.diagnostics);
  EXPECT_TRUE(good.certified);

  // Certifying against the *unretimed* graph (or any wrong graph) must
  // surface CCS-S findings, not throw.
  check.graph = produce.graph;
  const SolveResponse bad = solver.solve(check);
  if (!bad.ok()) {
    EXPECT_EQ(bad.status, SolveStatus::kUncertified);
    EXPECT_FALSE(bad.certified);
    EXPECT_FALSE(bad.diagnostics.empty());
  }
}

TEST(SolverApi, RepairModeWalksTheLadder) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "fail p0\n";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_FALSE(res.repair_rung.empty());
  ASSERT_TRUE(res.machine.has_value());
  EXPECT_LT(res.machine->size(), 4u);  // the dead PE is gone
  EXPECT_EQ(res.pe_map.size(), res.machine->size());
  // The surviving machine never contains the failed PE 0.
  for (const PeId original : res.pe_map) EXPECT_NE(original, 0u);
}

TEST(SolverApi, RepairModeReportsInfeasibilityAsE002) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "fail p0\nfail p1\nfail p2\nfail p3\n";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E002"))
      << render_text(res.diagnostics);
  EXPECT_EQ(solve_status_name(res.status), "infeasible");
}

TEST(SolverApi, RepairModeRejectsAGarbageFaultSpec) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "explode everything\n";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-F001"));
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, BagIsAlwaysFinalizedAndRenderable) {
  // finalize() sorts and dedupes; a second finalize must be a no-op, so a
  // rendered response is stable however the caller got it.
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "no such machine";
  SolveResponse res = solver.solve(req);
  const std::string once = render_text(res.diagnostics);
  res.diagnostics.finalize();
  EXPECT_EQ(render_text(res.diagnostics), once);
  EXPECT_NE(once.find("CCS-E001"), std::string::npos);
}

TEST(SolverApi, SolverForwardsItsObsContext) {
  MetricsRegistry metrics;
  const ObsContext obs{nullptr, &metrics};
  const Solver solver(obs);
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(metrics.counter("compaction.passes"), 0);
}

}  // namespace
}  // namespace ccs
