// Tests of the ccs::Solver facade (src/engine/solver.hpp) — the stable API
// contract documented in docs/API.md, reached through the umbrella header.
//
// The load-bearing properties:
//  * solve() never throws: every failure mode lands in the diagnostics bag
//    as a CCS-E001 (unusable request) or CCS-E002 (provably no answer)
//    finding with a matching SolveStatus — these tests are what "pins the
//    solver request rules" promised by tests/test_lint.cpp;
//  * the happy path of every mode fills the response fields it advertises;
//  * the bag is always finalized and renderable.

#include "ccsched.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "workloads/library.hpp"

namespace ccs {
namespace {

bool has_code(const DiagnosticBag& bag, const std::string& code) {
  const auto& diags = bag.diagnostics();
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

TEST(SolverApi, VersionMacroIsCurrent) {
  EXPECT_EQ(CCSCHED_API_VERSION, 2);
}

TEST(SolverApi, HelloWorldScheduleIsCertified) {
  // The README / docs/API.md hello-world, verbatim in spirit.
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  ASSERT_TRUE(res.schedule.has_value());
  EXPECT_TRUE(res.certified);
  EXPECT_GT(res.best_length, 0);
  EXPECT_LE(res.best_length, res.startup_length);
  ASSERT_TRUE(res.machine.has_value());
  EXPECT_EQ(res.machine->size(), 4u);
  EXPECT_EQ(solve_status_name(res.status), "ok");
  // The response graph is the retimed one the schedule satisfies.
  const StoreAndForwardModel comm(*res.machine);
  EXPECT_TRUE(validate_schedule(res.graph, *res.schedule, comm).ok());
}

TEST(SolverApi, MalformedArchitectureIsInvalidNotThrown) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "klein-bottle 7";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"))
      << render_text(res.diagnostics);
  EXPECT_EQ(solve_status_name(res.status), "invalid-request");
}

TEST(SolverApi, MissingMachineIsInvalid) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, IllegalGraphIsInvalidNotThrown) {
  Csdfg g("zero-delay-cycle");
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  Solver solver;
  SolveRequest req;
  req.graph = g;
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
  EXPECT_FALSE(res.schedule.has_value());
}

TEST(SolverApi, WrongSpeedsVectorIsInvalid) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.options.startup.pe_speeds = {1, 2};  // 4-PE machine
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, ExplicitTopologyWinsOverArchString) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "this is not a machine";
  req.topology.emplace(make_linear_array(3));
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.machine->size(), 3u);
}

TEST(SolverApi, StartupModeSkipsCompaction) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kStartup;
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.best_length, res.startup_length);
  EXPECT_TRUE(res.certified);
}

TEST(SolverApi, ModuloModeRejectsSpeeds) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kModulo;
  req.options.startup.pe_speeds = {1, 1, 1, 2};
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));

  req.options.startup.pe_speeds.clear();
  const SolveResponse ok = solver.solve(req);
  ASSERT_TRUE(ok.ok()) << render_text(ok.diagnostics);
  EXPECT_TRUE(ok.schedule.has_value());
}

TEST(SolverApi, PortfolioModeReportsProvenance) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 2;
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_TRUE(res.certified);
  ASSERT_FALSE(res.attempts.empty());
  ASSERT_GE(res.winner_attempt, 0);
  ASSERT_LT(static_cast<std::size_t>(res.winner_attempt),
            res.attempts.size());
  EXPECT_EQ(res.attempts[static_cast<std::size_t>(res.winner_attempt)].label,
            res.winner_label);
  EXPECT_EQ(
      res.attempts[static_cast<std::size_t>(res.winner_attempt)].length,
      res.best_length);
  // The request's options field is the portfolio's base configuration, so
  // the facade can never do worse than the serial solve of that config.
  SolveRequest serial = req;
  serial.mode = SolveMode::kSchedule;
  const SolveResponse base = solver.solve(serial);
  ASSERT_TRUE(base.ok());
  EXPECT_LE(res.best_length, base.best_length);
}

TEST(SolverApi, CertifyModeNeedsASchedule) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kCertify;
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, CertifyModeAcceptsAGoodScheduleAndRejectsABrokenOne) {
  Solver solver;
  SolveRequest produce;
  produce.graph = paper_example6();
  produce.arch = "mesh 2 2";
  const SolveResponse made = solver.solve(produce);
  ASSERT_TRUE(made.ok());

  SolveRequest check;
  check.graph = made.graph;  // the retimed graph the schedule satisfies
  check.arch = "mesh 2 2";
  check.mode = SolveMode::kCertify;
  check.schedule = made.schedule;
  const SolveResponse good = solver.solve(check);
  EXPECT_TRUE(good.ok()) << render_text(good.diagnostics);
  EXPECT_TRUE(good.certified);

  // Certifying against the *unretimed* graph (or any wrong graph) must
  // surface CCS-S findings, not throw.
  check.graph = produce.graph;
  const SolveResponse bad = solver.solve(check);
  if (!bad.ok()) {
    EXPECT_EQ(bad.status, SolveStatus::kUncertified);
    EXPECT_FALSE(bad.certified);
    EXPECT_FALSE(bad.diagnostics.empty());
  }
}

TEST(SolverApi, RepairModeWalksTheLadder) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "fail p0\n";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_FALSE(res.repair_rung.empty());
  ASSERT_TRUE(res.machine.has_value());
  EXPECT_LT(res.machine->size(), 4u);  // the dead PE is gone
  EXPECT_EQ(res.pe_map.size(), res.machine->size());
  // The surviving machine never contains the failed PE 0.
  for (const PeId original : res.pe_map) EXPECT_NE(original, 0u);
}

TEST(SolverApi, RepairModeReportsInfeasibilityAsE002) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "fail p0\nfail p1\nfail p2\nfail p3\n";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E002"))
      << render_text(res.diagnostics);
  EXPECT_EQ(solve_status_name(res.status), "infeasible");
}

TEST(SolverApi, RepairModeRejectsAGarbageFaultSpec) {
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kRepair;
  req.faults = "explode everything\n";
  const SolveResponse res = solver.solve(req);
  EXPECT_EQ(res.status, SolveStatus::kInvalidRequest);
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-F001"));
  EXPECT_TRUE(has_code(res.diagnostics, "CCS-E001"));
}

TEST(SolverApi, BagIsAlwaysFinalizedAndRenderable) {
  // finalize() sorts and dedupes; a second finalize must be a no-op, so a
  // rendered response is stable however the caller got it.
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "no such machine";
  SolveResponse res = solver.solve(req);
  const std::string once = render_text(res.diagnostics);
  res.diagnostics.finalize();
  EXPECT_EQ(render_text(res.diagnostics), once);
  EXPECT_NE(once.find("CCS-E001"), std::string::npos);
}

TEST(SolverApi, SolverForwardsItsObsContext) {
  MetricsRegistry metrics;
  const ObsContext obs{nullptr, &metrics};
  const Solver solver(obs);
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(metrics.counter("compaction.passes"), 0);
}

// ---------------------------------------------------------------------------
// The canonical-keyed SolveCache (engine/solve_cache.hpp): a certified
// answer to "this problem, renamed" is served through the permutation
// witness and re-certified (CCS-S016) instead of re-solved.

/// `g` with node v moved to position to_new[v]; names ride along so tests
/// can match tasks across the relabeling.
Csdfg relabel(const Csdfg& g, const std::vector<NodeId>& to_new) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> inv(n);
  for (NodeId v = 0; v < n; ++v) inv[to_new[v]] = v;
  Csdfg out(g.name());
  for (NodeId p = 0; p < n; ++p)
    out.add_node(g.node(inv[p]).name, g.node(inv[p]).time);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    out.add_edge(to_new[ed.from], to_new[ed.to], ed.delay, ed.volume);
  }
  return out;
}

std::vector<NodeId> rotated_perm(std::size_t n, std::size_t shift) {
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = (v + shift) % n;
  return perm;
}

TEST(SolverCache, RelabeledResubmissionHitsAndMatchesColdSolve) {
  SolveCache::global().clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse cold = solver.solve(req);
  ASSERT_TRUE(cold.ok()) << render_text(cold.diagnostics);
  ASSERT_TRUE(cold.certified);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.fingerprint.size(), 32u);

  std::mt19937 rng(20260809);
  std::vector<NodeId> perm(req.graph.node_count());
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  SolveRequest renamed = req;
  renamed.graph = relabel(req.graph, perm);
  const SolveResponse hot = solver.solve(renamed);
  ASSERT_TRUE(hot.ok()) << render_text(hot.diagnostics);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_TRUE(hot.certified);
  EXPECT_EQ(hot.fingerprint, cold.fingerprint);
  EXPECT_EQ(hot.best_length, cold.best_length);
  EXPECT_EQ(hot.startup_length, cold.startup_length);
  EXPECT_EQ(hot.lower_bound, cold.lower_bound);
  EXPECT_EQ(hot.gap, cold.gap);
  EXPECT_EQ(hot.optimal, cold.optimal);
  EXPECT_EQ(hot.stop_reason, cold.stop_reason);

  // Bit-identical modulo the witness: every task lands on the same PE at
  // the same step, and carries the same retiming, as its cold twin.
  ASSERT_TRUE(hot.schedule.has_value());
  EXPECT_EQ(hot.schedule->length(), cold.schedule->length());
  for (NodeId v = 0; v < renamed.graph.node_count(); ++v) {
    const NodeId orig = req.graph.node_by_name(renamed.graph.node(v).name);
    EXPECT_EQ(hot.schedule->placement(v).pe,
              cold.schedule->placement(orig).pe);
    EXPECT_EQ(hot.schedule->placement(v).cb,
              cold.schedule->placement(orig).cb);
    EXPECT_EQ(hot.retiming.of(v), cold.retiming.of(orig));
  }

  // Independent first-principles check of the translated table.
  const StoreAndForwardModel comm(*hot.machine);
  DiagnosticBag check;
  EXPECT_TRUE(certify_table(hot.graph, *hot.schedule, comm, "test", check,
                            req.certify_options))
      << render_text(check);

  const SolveCache::Stats stats = SolveCache::global().stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SolverCache, StartupModeRoundTripsWithoutRetiming) {
  SolveCache::global().clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example19();
  req.arch = "ring 4";
  req.mode = SolveMode::kStartup;
  const SolveResponse cold = solver.solve(req);
  ASSERT_TRUE(cold.ok()) << render_text(cold.diagnostics);
  SolveRequest renamed = req;
  renamed.graph = relabel(req.graph, rotated_perm(req.graph.node_count(), 7));
  const SolveResponse hot = solver.solve(renamed);
  ASSERT_TRUE(hot.ok()) << render_text(hot.diagnostics);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_TRUE(hot.certified);
  EXPECT_EQ(hot.retiming.size(), 0u);
  EXPECT_EQ(hot.best_length, cold.best_length);
}

TEST(SolverCache, CorruptEntryIsRejectedAndColdSolveStillAnswers) {
  SolveCache::global().clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse cold = solver.solve(req);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(SolveCache::global().stats().entries, 1u);

  SolveCache::global().corrupt_entries_for_test();
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_FALSE(res.cache_hit);  // the corrupt entry was rejected
  EXPECT_TRUE(res.certified);
  EXPECT_EQ(res.best_length, cold.best_length);
  EXPECT_GE(SolveCache::global().stats().rejected, 1);
}

TEST(SolverCache, CorruptTranslationFailsRecertificationAsS016) {
  SolveCache::global().clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.topology = make_mesh(2, 2);
  const SolveResponse cold = solver.solve(req);
  ASSERT_TRUE(cold.ok());
  SolveCache::global().corrupt_entries_for_test();

  const CanonResult canon = canonicalize(req.graph);
  const std::string key =
      solve_cache_key(canon, *req.topology, options_fingerprint(req));
  const auto entry = SolveCache::global().lookup(key);
  ASSERT_NE(entry, nullptr);
  const StoreAndForwardModel comm(*req.topology);
  SolveResponse out;
  EXPECT_FALSE(translate_cached(*entry, req, canon, comm, out));
  EXPECT_TRUE(has_code(out.diagnostics, "CCS-S016"))
      << render_text(out.diagnostics);
}

TEST(SolverCache, FormMismatchIsRejectedAsFingerprintCollision) {
  // A doctored entry whose key matched but whose canonical form differs is
  // the CCS-N003 case: rejected before translation is attempted.
  SolveRequest req;
  req.graph = paper_example6();
  req.topology = make_mesh(2, 2);
  const CanonResult canon = canonicalize(req.graph);
  SolveCache::Entry entry;
  entry.canonical_form = "n0m0;";  // not this graph
  const StoreAndForwardModel comm(*req.topology);
  SolveResponse out;
  EXPECT_FALSE(translate_cached(entry, req, canon, comm, out));
  EXPECT_TRUE(has_code(out.diagnostics, "CCS-N003"))
      << render_text(out.diagnostics);
}

TEST(SolverCache, WallClockBudgetsAndUncertifiedRequestsBypassTheCache) {
  SolveCache::global().clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.options.budget.deadline_ms = 10'000;
  const SolveResponse timed = solver.solve(req);
  ASSERT_TRUE(timed.ok());
  EXPECT_FALSE(timed.cache_hit);
  EXPECT_TRUE(timed.fingerprint.empty());  // never canonicalized

  SolveRequest uncertified;
  uncertified.graph = paper_example6();
  uncertified.arch = "mesh 2 2";
  uncertified.certify = false;
  const SolveResponse res = solver.solve(uncertified);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.fingerprint.empty());
  EXPECT_EQ(SolveCache::global().stats().entries, 0u);
}

TEST(SolverCache, DisabledCacheBypassesWithoutDroppingEntries) {
  SolveCache& cache = SolveCache::global();
  cache.clear();
  Solver solver;
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  ASSERT_TRUE(solver.solve(req).ok());
  ASSERT_EQ(cache.stats().entries, 1u);
  cache.set_enabled(false);
  const SolveResponse res = solver.solve(req);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.cache_hit);
  EXPECT_EQ(cache.stats().hits, 0);
  cache.set_enabled(true);
  EXPECT_TRUE(solver.solve(req).cache_hit);
}

TEST(SolverCache, ObsCountersRecordMissAndHit) {
  SolveCache::global().clear();
  MetricsRegistry metrics;
  const Solver solver(ObsContext{nullptr, &metrics});
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  ASSERT_TRUE(solver.solve(req).ok());
  EXPECT_EQ(metrics.counter("cache.miss"), 1);
  EXPECT_EQ(metrics.counter("cache.hit"), 0);
  ASSERT_TRUE(solver.solve(req).ok());
  EXPECT_EQ(metrics.counter("cache.hit"), 1);
  EXPECT_EQ(metrics.counter("cache.reject"), 0);
}

TEST(SolverCache, IdenticalResubmissionRidesTheExactReplayPath) {
  // Tier 1: resubmitting byte-identical bytes replays the memoized
  // certified response without canonicalizing or re-certifying; the
  // answer must still be indistinguishable from the translate path's.
  SolveCache::global().clear();
  MetricsRegistry metrics;
  const Solver solver(ObsContext{nullptr, &metrics});
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  const SolveResponse cold = solver.solve(req);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold.certified);
  EXPECT_EQ(metrics.counter("cache.hit.identical"), 0);

  const SolveResponse replay = solver.solve(req);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_TRUE(replay.certified);
  EXPECT_EQ(replay.fingerprint, cold.fingerprint);
  EXPECT_EQ(replay.best_length, cold.best_length);
  EXPECT_EQ(replay.startup_length, cold.startup_length);
  EXPECT_EQ(replay.lower_bound, cold.lower_bound);
  EXPECT_EQ(replay.gap, cold.gap);
  EXPECT_EQ(replay.optimal, cold.optimal);
  EXPECT_EQ(metrics.counter("cache.hit.identical"), 1);

  const SolveCache::Stats stats = SolveCache::global().stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.identical_hits, 1);
  EXPECT_EQ(stats.misses, 1);

  // A *renamed* graph is different bytes: it must take the translate path
  // (full CCS-S016 re-certification), not the replay path.
  SolveRequest renamed = req;
  renamed.graph = Csdfg("paper6-renamed");
  for (NodeId v = 0; v < req.graph.node_count(); ++v)
    renamed.graph.add_node("t" + std::to_string(v), req.graph.node(v).time);
  for (EdgeId e = 0; e < req.graph.edge_count(); ++e) {
    const Edge& edge = req.graph.edge(e);
    renamed.graph.add_edge(edge.from, edge.to, edge.delay, edge.volume);
  }
  const SolveResponse translated = solver.solve(renamed);
  ASSERT_TRUE(translated.ok());
  EXPECT_TRUE(translated.cache_hit);
  EXPECT_TRUE(translated.certified);
  EXPECT_EQ(translated.best_length, cold.best_length);
  const SolveCache::Stats after = SolveCache::global().stats();
  EXPECT_EQ(after.hits, 2);
  EXPECT_EQ(after.identical_hits, 1);  // the rename re-certified instead
}

TEST(SolverCacheConcurrency, ConcurrentSolversShareTheCacheSafely) {
  // Portfolio-worker shape: many threads, each its own Solver, racing over
  // the same problem under different task numberings.  TSan (the CI
  // concurrency job runs this test under -fsanitize=thread) must stay
  // silent, and every response must be certified with the same length.
  SolveCache::global().clear();
  SolveRequest base;
  base.graph = paper_example6();
  base.arch = "mesh 2 2";
  const SolveResponse reference = Solver().solve(base);
  ASSERT_TRUE(reference.ok());

  constexpr std::size_t kThreads = 8;
  std::vector<int> lengths(kThreads * 2, -1);
  std::vector<int> certified(kThreads * 2, 0);  // not vector<bool>: bit races
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t round = 0; round < 2; ++round) {
        Solver solver;
        SolveRequest req = base;
        req.graph = relabel(
            base.graph,
            rotated_perm(base.graph.node_count(),
                         (t + round) % base.graph.node_count()));
        const SolveResponse res = solver.solve(req);
        lengths[t * 2 + round] = res.ok() ? res.best_length : -1;
        certified[t * 2 + round] = res.certified ? 1 : 0;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (std::size_t i = 0; i < kThreads * 2; ++i) {
    EXPECT_EQ(lengths[i], reference.best_length) << i;
    EXPECT_TRUE(certified[i]) << i;
  }
  const SolveCache::Stats stats = SolveCache::global().stats();
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(static_cast<std::size_t>(stats.hits + stats.misses),
            kThreads * 2 + 1);
}

// ---------------------------------------------------------------------------
// The capacity-bounded cache: LRU eviction order, lookup freshening, and
// re-certification of a re-inserted evicted key.

/// Two-task cycle whose fingerprint varies with the execution times.  The
/// name suffix changes the serialized bytes (the tier-1 exact key) without
/// touching the canonical form, so tests can force the translate path.
Csdfg two_task(int t0, int t1, const std::string& suffix = "") {
  Csdfg g("lru");
  g.add_node("a" + suffix, t0);
  g.add_node("b" + suffix, t1);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 2, 1);
  return g;
}

SolveResponse solve_two_task(const Solver& solver, int t0, int t1,
                             std::size_t rotation = 0) {
  SolveRequest req;
  req.graph = rotation == 0 ? two_task(t0, t1)
                            : relabel(two_task(t0, t1),
                                      rotated_perm(2, rotation));
  req.arch = "mesh 2 1";
  return solver.solve(req);
}

TEST(SolverCacheLru, EvictsLeastRecentlyUsedAtCapacity) {
  SolveCache& cache = SolveCache::global();
  cache.clear();
  cache.set_capacity(2);
  MetricsRegistry metrics;
  const Solver solver(ObsContext{nullptr, &metrics});

  ASSERT_TRUE(solve_two_task(solver, 1, 2).ok());  // A
  ASSERT_TRUE(solve_two_task(solver, 2, 3).ok());  // B
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evicted, 0);

  // C lands at capacity: A is the least recently used and must go.
  ASSERT_TRUE(solve_two_task(solver, 3, 4).ok());  // C evicts A
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evicted, 1);
  EXPECT_GE(metrics.counter("cache.evicted"), 1);

  // A renamed resubmission of A misses (it was evicted); B and C, still
  // resident, hit through the translate path.
  const SolveResponse a2 = solve_two_task(solver, 1, 2, 1);
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a2.cache_hit);
  const SolveResponse c2 = solve_two_task(solver, 3, 4, 1);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2.cache_hit);

  cache.set_capacity(SolveCache::kDefaultCapacity);
  cache.clear();
}

TEST(SolverCacheLru, LookupFreshensAgainstEviction) {
  SolveCache& cache = SolveCache::global();
  cache.clear();
  cache.set_capacity(2);
  const Solver solver;

  ASSERT_TRUE(solve_two_task(solver, 1, 2).ok());     // A
  ASSERT_TRUE(solve_two_task(solver, 2, 3).ok());     // B
  ASSERT_TRUE(solve_two_task(solver, 1, 2, 1).ok());  // touch A (translate)
  ASSERT_TRUE(solve_two_task(solver, 3, 4).ok());     // C evicts B, not A

  // Fresh byte representations so the probes exercise the canonical
  // store, not the tier-1 exact replay of lines already seen.
  SolveRequest probe_a;
  probe_a.graph = two_task(1, 2, "z");
  probe_a.arch = "mesh 2 1";
  const SolveResponse a = solver.solve(probe_a);
  EXPECT_TRUE(a.cache_hit) << "freshened entry was evicted";
  SolveRequest probe_b;
  probe_b.graph = two_task(2, 3, "z");
  probe_b.arch = "mesh 2 1";
  const SolveResponse b = solver.solve(probe_b);
  EXPECT_FALSE(b.cache_hit) << "stale entry survived past capacity";

  cache.set_capacity(SolveCache::kDefaultCapacity);
  cache.clear();
}

TEST(SolverCacheLru, ReinsertedEvictedKeyIsRecertifiedOnHit) {
  SolveCache& cache = SolveCache::global();
  cache.clear();
  cache.set_capacity(1);
  const Solver solver;

  ASSERT_TRUE(solve_two_task(solver, 1, 2).ok());  // A
  ASSERT_TRUE(solve_two_task(solver, 2, 3).ok());  // B evicts A
  const SolveResponse again = solve_two_task(solver, 1, 2, 1);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.cache_hit);  // re-solved and re-inserted (evicts B)

  // The re-inserted entry answers a fresh renaming (new bytes, same
  // canonical form) through the full translate + CCS-S016
  // re-certification path.
  SolveRequest fresh;
  fresh.graph = two_task(1, 2, "x");
  fresh.arch = "mesh 2 1";
  const SolveResponse hot = solver.solve(fresh);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_TRUE(hot.certified);
  EXPECT_EQ(cache.stats().evicted, 2);

  cache.set_capacity(SolveCache::kDefaultCapacity);
  cache.clear();
}

TEST(SolverCacheConcurrency, MixedWorkloadOnOneSolverKeepsCountersExact) {
  // One shared Solver hammered from N threads with a mix of byte-identical,
  // isomorphic, and novel requests.  Every response must be certified or
  // carry diagnostics, and the counter invariant must hold exactly:
  // each cacheable probe records one of hit/miss/rejected per lookup.
  SolveCache::global().clear();
  const Solver solver;
  const Csdfg base = paper_example6();

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 3;
  std::vector<int> sane(kThreads * kRounds, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        SolveRequest req;
        req.arch = "mesh 2 2";
        if (round == 0) {
          req.graph = base;  // byte-identical across threads
        } else if (round == 1) {
          req.graph = relabel(
              base, rotated_perm(base.node_count(),
                                 1 + t % (base.node_count() - 1)));
        } else {
          req.graph = two_task(static_cast<int>(t) + 1,
                               static_cast<int>(t) + 2);  // novel per thread
        }
        const SolveResponse res = solver.solve(req);
        const bool answered = res.ok() && res.certified;
        const bool diagnosed = !res.diagnostics.empty();
        sane[t * kRounds + round] = answered || diagnosed ? 1 : 0;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (std::size_t i = 0; i < sane.size(); ++i)
    EXPECT_TRUE(sane[i]) << "request " << i
                         << " neither certified nor diagnosed";

  const SolveCache::Stats stats = SolveCache::global().stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.rejected, stats.lookups);
  EXPECT_EQ(stats.lookups,
            static_cast<long long>(kThreads * kRounds));
  EXPECT_EQ(stats.rejected, 0);
  SolveCache::global().clear();
}

}  // namespace
}  // namespace ccs
