// Unit tests for the exact iteration bound (max cycle ratio).
#include <gtest/gtest.h>

#include "core/iteration_bound.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

namespace ccs {
namespace {

TEST(IterationBound, AcyclicGraphHasZeroBound) {
  Csdfg g;
  g.add_node("a", 5);
  g.add_node("b", 2);
  g.add_edge(0, 1, 0, 1);
  EXPECT_EQ(iteration_bound(g), (Rational{0, 1}));
}

TEST(IterationBound, DelayedEdgesWithoutCycleStillZero) {
  Csdfg g;
  g.add_node("a", 3);
  g.add_node("b", 4);
  g.add_edge(0, 1, 2, 1);  // delay but no cycle
  EXPECT_EQ(iteration_bound(g), (Rational{0, 1}));
}

TEST(IterationBound, SimpleLoopIsComputationOverDelay) {
  Csdfg g;
  g.add_node("a", 3);
  g.add_node("b", 2);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 2, 1);  // cycle: t=5, d=2
  const Rational b = iteration_bound(g);
  EXPECT_EQ(b, (Rational{5, 2}));
  EXPECT_DOUBLE_EQ(b.value(), 2.5);
}

TEST(IterationBound, SelfLoopBound) {
  Csdfg g;
  g.add_node("a", 4);
  g.add_edge(0, 0, 2, 1);
  EXPECT_EQ(iteration_bound(g), (Rational{2, 1}));
}

TEST(IterationBound, PicksTheMaximumOverCycles) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_node("c", 6);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 1, 1);  // ratio 2/1
  g.add_edge(1, 2, 0, 1);
  g.add_edge(2, 1, 3, 1);  // ratio 7/3
  EXPECT_EQ(iteration_bound(g), (Rational{7, 3}));
}

TEST(IterationBound, PaperExampleSixIsThree) {
  // Cycles of Figure 1(b): A-B-D-A (t=4, d=3 -> 4/3) and E-F-E (t=3, d=1).
  EXPECT_EQ(iteration_bound(paper_example6()), (Rational{3, 1}));
}

TEST(IterationBound, InvariantUnderSlowdownScaling) {
  // c-slowdown multiplies every cycle's delay by c: bound divides by c.
  const Csdfg g = paper_example6();
  const Rational b = iteration_bound(g);
  const Rational b3 = iteration_bound(slowdown(g, 3));
  EXPECT_EQ(b3, (Rational{b.num, b.den * 3}));
  // Scaling times by 3 multiplies the bound by 3.
  const Rational t3 = iteration_bound(scale_times(g, 3));
  EXPECT_EQ(t3, (Rational{b.num * 3, b.den}));
}

TEST(IterationBound, RationalReducedToLowestTerms) {
  Csdfg g;
  g.add_node("a", 4);
  g.add_node("b", 2);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 4, 1);  // 6/4 -> 3/2
  const Rational b = iteration_bound(g);
  EXPECT_EQ(b.num, 3);
  EXPECT_EQ(b.den, 2);
  EXPECT_EQ(b.to_string(), "3/2");
}

TEST(IterationBound, IllegalGraphRejected) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 0, 1);
  EXPECT_THROW((void)iteration_bound(g), GraphError);
}

TEST(IterationBound, KnownBoundsOfLibraryGraphs) {
  // lattice: the AF_1->MB_1->AB_1->MF_2->AF_2 cycle carries one delay: 7/1.
  EXPECT_EQ(iteration_bound(lattice_filter()), (Rational{7, 1}));
  // biquad: w -> a1w -> s1? a1w feeds s1 feeds w; loop w->a1w->s1->w:
  // t = 1+2+1 = 4 over d=1; the d=2 loop w->a2w->w is (1+2+1)/2 = 2.
  EXPECT_EQ(iteration_bound(iir_biquad_cascade(1)), (Rational{4, 1}));
}

TEST(CycleRatioAbove, MatchesBoundSemantics) {
  const Csdfg g = paper_example6();  // bound = 3
  EXPECT_TRUE(has_cycle_ratio_above(g, 2, 1));
  EXPECT_TRUE(has_cycle_ratio_above(g, 29, 10));
  EXPECT_FALSE(has_cycle_ratio_above(g, 3, 1));  // not strictly above
  EXPECT_FALSE(has_cycle_ratio_above(g, 31, 10));
}

}  // namespace
}  // namespace ccs
