// Unit tests for the text interchange formats.
#include <gtest/gtest.h>

#include "io/text_format.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(TextFormat, ParsesAMinimalGraph) {
  const Csdfg g = parse_csdfg(
      "graph demo\n"
      "node A 1\n"
      "node B 2\n"
      "edge A B 0 1\n"
      "edge B A 2 3\n");
  EXPECT_EQ(g.name(), "demo");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge(1).delay, 2);
  EXPECT_EQ(g.edge(1).volume, 3u);
}

TEST(TextFormat, VolumeDefaultsToOne) {
  const Csdfg g = parse_csdfg(
      "node A 1\nnode B 1\nedge A B 0\n");
  EXPECT_EQ(g.edge(0).volume, 1u);
}

TEST(TextFormat, CommentsAndBlankLinesAreIgnored) {
  const Csdfg g = parse_csdfg(
      "# a loop body\n"
      "\n"
      "graph g   # trailing comment\n"
      "node A 1  # the source\n"
      "node B 1\n"
      "edge A B 0 1\n");
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(TextFormat, RoundTripsEveryLibraryGraph) {
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         elliptic_filter(), lattice_filter(),
                         diffeq_solver()}) {
    const Csdfg back = parse_csdfg(serialize_csdfg(g));
    ASSERT_EQ(back.node_count(), g.node_count()) << g.name();
    ASSERT_EQ(back.edge_count(), g.edge_count()) << g.name();
    EXPECT_EQ(back.name(), g.name());
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(back.node(v).name, g.node(v).name);
      EXPECT_EQ(back.node(v).time, g.node(v).time);
    }
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(back.edge(e).from, g.edge(e).from);
      EXPECT_EQ(back.edge(e).to, g.edge(e).to);
      EXPECT_EQ(back.edge(e).delay, g.edge(e).delay);
      EXPECT_EQ(back.edge(e).volume, g.edge(e).volume);
    }
  }
}

TEST(TextFormat, ReportsLineNumbersOnErrors) {
  try {
    (void)parse_csdfg("node A 1\nnode B\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextFormat, RejectsStructuralErrors) {
  EXPECT_THROW((void)parse_csdfg("frobnicate\n"), ParseError);
  EXPECT_THROW((void)parse_csdfg("node A 0\n"), ParseError);  // bad time
  EXPECT_THROW((void)parse_csdfg("node A 1\nedge A Z 0 1\n"), ParseError);
  EXPECT_THROW((void)parse_csdfg("node A 1\ngraph late\n"), ParseError);
  // Zero-delay cycle surfaces as GraphError after parsing.
  EXPECT_THROW((void)parse_csdfg("node A 1\nnode B 1\n"
                                 "edge A B 0 1\nedge B A 0 1\n"),
               GraphError);
}

TEST(TextFormat, ParsesEveryArchitectureKind) {
  EXPECT_EQ(parse_topology("linear_array 8").size(), 8u);
  EXPECT_EQ(parse_topology("ring 6").diameter(), 3u);
  EXPECT_EQ(parse_topology("ring 6 uni").diameter(), 5u);
  EXPECT_EQ(parse_topology("complete 5").diameter(), 1u);
  EXPECT_EQ(parse_topology("mesh 4 2").size(), 8u);
  EXPECT_EQ(parse_topology("torus 3 3").size(), 9u);
  EXPECT_EQ(parse_topology("hypercube 3").size(), 8u);
  EXPECT_EQ(parse_topology("star 5").size(), 5u);
  EXPECT_EQ(parse_topology("binary_tree 7").size(), 7u);
}

TEST(TextFormat, RejectsBadArchitectureSpecs) {
  EXPECT_THROW((void)parse_topology(""), ParseError);
  EXPECT_THROW((void)parse_topology("megastructure 8"), ParseError);
  EXPECT_THROW((void)parse_topology("mesh 4"), ParseError);
  EXPECT_THROW((void)parse_topology("mesh four two"), ParseError);
}

}  // namespace
}  // namespace ccs
