// Unit tests for processor-dimensioning (resource sweep) utilities.
#include <gtest/gtest.h>

#include "core/resources.hpp"

#include "util/error.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(Resources, SweepCoversEveryRealizableCount) {
  const Csdfg g = paper_example6();
  const auto points = processor_sweep(
      g, [](std::size_t p) { return make_linear_array(p); }, 1, 6);
  ASSERT_EQ(points.size(), 6u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].num_pes, i + 1);
    EXPECT_GE(points[i].startup_length, points[i].best_length);
    EXPECT_GE(points[i].best_length, 1);
  }
  // One processor serializes: startup == total computation.
  EXPECT_EQ(points[0].best_length,
            static_cast<int>(g.total_computation()));
}

TEST(Resources, UnrealizableCountsAreSkipped) {
  const Csdfg g = paper_example6();
  const auto points = processor_sweep(
      g,
      [](std::size_t p) {
        if (p != 4 && p != 8)
          throw ArchitectureError("hypercubes only");
        return make_hypercube(p == 4 ? 2 : 3);
      },
      1, 8);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].num_pes, 4u);
  EXPECT_EQ(points[1].num_pes, 8u);
}

TEST(Resources, MinProcessorsFindsTheKnee) {
  const Csdfg g = paper_example6();
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto family = [](std::size_t p) { return make_complete(p); };
  // Serial bound: one PE achieves 8, so target 8 needs exactly 1.
  EXPECT_EQ(min_processors_for_length(g, family, 8, 6, opt),
            std::optional<std::size_t>{1});
  // The iteration bound is 3: some small machine reaches it, and the
  // returned count must actually achieve it.
  const auto p3 = min_processors_for_length(g, family, 3, 6, opt);
  ASSERT_TRUE(p3.has_value());
  EXPECT_GT(*p3, 1u);
  const auto points = processor_sweep(g, family, *p3, *p3, opt);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_LE(points[0].best_length, 3);
  // Nothing reaches 2 (below the iteration bound).
  EXPECT_FALSE(min_processors_for_length(g, family, 2, 6, opt).has_value());
}

TEST(Resources, ArgumentsAreContractChecked) {
  const Csdfg g = paper_example6();
  const auto family = [](std::size_t p) { return make_complete(p); };
  EXPECT_THROW((void)processor_sweep(g, family, 0, 3), ContractViolation);
  EXPECT_THROW((void)processor_sweep(g, family, 4, 3), ContractViolation);
  EXPECT_THROW((void)min_processors_for_length(g, family, 0, 4),
               ContractViolation);
}

}  // namespace
}  // namespace ccs
