// Tests of the parallel portfolio engine (src/engine/portfolio.hpp) and
// the process-wide route cache backing it (src/arch/route_cache.hpp).
//
// The load-bearing properties:
//  * the attempt roster is a pure function of (graph size, options) and
//    attempt 0 is exactly the caller's base configuration;
//  * the winner is never worse than the serial driver, on every shipped
//    workload and architecture;
//  * the winning schedule is bit-identical across --jobs values and across
//    repeated runs (the determinism contract);
//  * preemption through the BudgetStopToken hook never changes the winner;
//  * route tables are shared between structurally equal topologies, are
//    identical to a from-scratch computation, and survive concurrent
//    construction (the ThreadSanitizer target of tools/check.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "arch/comm_model.hpp"
#include "arch/route_cache.hpp"
#include "arch/topology.hpp"
#include "engine/portfolio.hpp"
#include "io/schedule_format.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

std::string winner_fingerprint(const PortfolioResult& r) {
  return serialize_schedule(r.winner.retimed_graph, r.winner.best,
                            &r.winner.retiming);
}

TEST(PortfolioRoster, AttemptZeroIsTheBaseConfiguration) {
  const Csdfg g = paper_example6();
  PortfolioOptions opt;
  opt.base.policy = RemapPolicy::kWithoutRelaxation;
  opt.base.selection = RemapSelection::kAnticipationOnly;
  opt.base.passes = 7;
  const std::vector<AttemptConfig> roster = portfolio_attempts(g, opt);
  ASSERT_FALSE(roster.empty());
  EXPECT_EQ(roster[0].label, "base");
  EXPECT_EQ(roster[0].options.policy, RemapPolicy::kWithoutRelaxation);
  EXPECT_EQ(roster[0].options.selection, RemapSelection::kAnticipationOnly);
  EXPECT_EQ(roster[0].options.passes, 7);
}

TEST(PortfolioRoster, GridCoversTheConfigurationSpaceWithoutDuplicates) {
  const Csdfg g = paper_example6();
  const std::vector<AttemptConfig> roster =
      portfolio_attempts(g, PortfolioOptions{});
  // 2 policies x 2 selections x 3 priorities x 2 pass budgets = 24 cells;
  // the base occupies one of them.
  EXPECT_EQ(roster.size(), 24u);
  std::set<std::tuple<RemapPolicy, RemapSelection, PriorityRule, int>> cells;
  for (const AttemptConfig& a : roster)
    cells.insert({a.options.policy, a.options.selection,
                  a.options.startup.priority, a.options.passes});
  EXPECT_EQ(cells.size(), roster.size()) << "duplicate grid cells";
}

TEST(PortfolioRoster, SeedTailIsDeterministicAndPrefixStable) {
  const Csdfg g = paper_example6();
  PortfolioOptions opt;
  opt.seed = 42;
  opt.attempts = 32;
  const std::vector<AttemptConfig> a = portfolio_attempts(g, opt);
  const std::vector<AttemptConfig> b = portfolio_attempts(g, opt);
  ASSERT_EQ(a.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].label, b[i].label) << "attempt " << i;

  // Growing the roster must not reshuffle the prefix.
  opt.attempts = 40;
  const std::vector<AttemptConfig> c = portfolio_attempts(g, opt);
  ASSERT_EQ(c.size(), 40u);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].label, c[i].label) << "attempt " << i;

  // A different seed perturbs the tail, never the grid.
  opt.seed = 43;
  const std::vector<AttemptConfig> d = portfolio_attempts(g, opt);
  for (std::size_t i = 0; i < 24; ++i)
    EXPECT_EQ(a[i].label, d[i].label) << "grid attempt " << i;
}

TEST(PortfolioRoster, TruncationKeepsAtLeastTheBase) {
  const Csdfg g = paper_example6();
  PortfolioOptions opt;
  opt.attempts = 1;
  const std::vector<AttemptConfig> roster = portfolio_attempts(g, opt);
  ASSERT_EQ(roster.size(), 1u);
  EXPECT_EQ(roster[0].label, "base");
}

TEST(PortfolioEngine, WinnerNeverWorseThanSerialOnLibraryWorkloads) {
  const struct {
    Csdfg graph;
    const char* arch;
  } cases[] = {
      {paper_example6(), "mesh"},
      {paper_example19(), "mesh"},
      {elliptic_filter(), "linear"},
      {iir_biquad_cascade(3), "mesh"},
  };
  for (const auto& c : cases) {
    const Topology topo = std::string(c.arch) == "mesh"
                              ? make_mesh(2, 2)
                              : make_linear_array(4);
    const StoreAndForwardModel comm(topo);
    const CycloCompactionResult serial =
        cyclo_compact(c.graph, topo, comm, {});
    PortfolioOptions opt;
    opt.jobs = 2;
    const PortfolioResult r = portfolio_compact(c.graph, topo, comm, opt);
    EXPECT_LE(r.winner.best.length(), serial.best.length())
        << c.graph.name() << " on " << topo.name();
    EXPECT_EQ(r.serial_length, serial.best.length())
        << "attempt 0 must reproduce the serial driver";
    EXPECT_GE(r.winner.best.length(), r.lower_bound);
  }
}

TEST(PortfolioEngine, WinningScheduleIsBitIdenticalAcrossJobs) {
  const Csdfg g = paper_example19();
  const Topology topo = make_mesh(4, 2);
  const StoreAndForwardModel comm(topo);
  PortfolioOptions opt;
  opt.seed = 7;
  opt.attempts = 28;  // grid + a seed tail

  opt.jobs = 1;
  const PortfolioResult serial = portfolio_compact(g, topo, comm, opt);
  opt.jobs = 8;
  const PortfolioResult wide_a = portfolio_compact(g, topo, comm, opt);
  const PortfolioResult wide_b = portfolio_compact(g, topo, comm, opt);

  EXPECT_EQ(serial.winner_attempt, wide_a.winner_attempt);
  EXPECT_EQ(serial.winner_label, wide_a.winner_label);
  EXPECT_EQ(winner_fingerprint(serial), winner_fingerprint(wide_a));
  EXPECT_EQ(winner_fingerprint(wide_a), winner_fingerprint(wide_b));
  EXPECT_EQ(wide_a.winner_attempt, wide_b.winner_attempt);
  EXPECT_TRUE(wide_a.certified);
  EXPECT_EQ(wide_a.attempts.size(), 28u);
  EXPECT_TRUE(wide_a.attempts[wide_a.winner_attempt].winner);
}

TEST(PortfolioEngine, ProvenanceRowsAlignWithTheRoster) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  PortfolioOptions opt;
  opt.jobs = 1;
  const PortfolioResult r = portfolio_compact(g, topo, comm, opt);
  const std::vector<AttemptConfig> roster = portfolio_attempts(g, opt);
  ASSERT_EQ(r.attempts.size(), roster.size());
  std::size_t winners = 0;
  for (std::size_t i = 0; i < r.attempts.size(); ++i) {
    EXPECT_EQ(r.attempts[i].label, roster[i].label);
    EXPECT_GE(r.attempts[i].length, r.winner.best.length());
    EXPECT_LE(r.attempts[i].length, r.attempts[i].startup_length);
    if (r.attempts[i].winner) ++winners;
  }
  EXPECT_EQ(winners, 1u);
  EXPECT_EQ(r.attempts[r.winner_attempt].length, r.winner.best.length());
}

TEST(PortfolioEngine, MergedObsStreamIsDeterministicAndAttemptTagged) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  PortfolioOptions opt;

  const auto run = [&](int jobs) {
    opt.jobs = jobs;
    VectorSink sink;
    Tracer tracer(&sink);
    MetricsRegistry metrics;
    const ObsContext obs{&tracer, &metrics};
    (void)portfolio_compact(g, topo, comm, opt, obs);
    return sink.lines();
  };
  // At jobs=1 the incumbent evolves deterministically, so the merged
  // stream is byte-stable across reruns.  (At jobs>1 the *winner* is still
  // deterministic, but when a loser gets preempted depends on thread
  // timing — its trace tail is explicitly outside the contract.)
  const std::vector<std::string> a = run(1);
  const std::vector<std::string> b = run(1);
  EXPECT_EQ(a, b) << "merged jobs=1 trace must be byte-stable";
  ASSERT_FALSE(a.empty());
  for (const std::string& line : a)
    EXPECT_NE(line.find("\"attempt\":"), std::string::npos) << line;
  // Every line of a parallel merge is attempt-tagged too, and the merge
  // order is the roster order regardless of completion order.
  const std::vector<std::string> wide = run(4);
  for (const std::string& line : wide)
    EXPECT_NE(line.find("\"attempt\":"), std::string::npos) << line;

  MetricsRegistry metrics;
  const ObsContext obs{nullptr, &metrics};
  opt.jobs = 4;
  (void)portfolio_compact(g, topo, comm, opt, obs);
  EXPECT_EQ(metrics.counter("portfolio.attempts"), 24);
  EXPECT_GT(metrics.counter("compaction.passes"), 0);
  EXPECT_EQ(metrics.gauge("portfolio.jobs"), 4.0);
}

TEST(PortfolioEngine, LowerBoundIsSound) {
  const Csdfg g = paper_example19();
  for (const Topology& topo :
       {make_mesh(2, 2), make_linear_array(4), make_hypercube(3)}) {
    const StoreAndForwardModel comm(topo);
    const CompositeBound bound = compute_bounds(g, topo, comm, {});
    const PortfolioResult r = portfolio_compact(g, topo, comm, {});
    EXPECT_EQ(r.lower_bound, std::max(1, bound.value)) << topo.name();
    EXPECT_GE(r.winner.best.length(), r.lower_bound) << topo.name();
    // The result carries the full per-pass provenance it pruned with.
    EXPECT_EQ(r.bound.value, bound.value) << topo.name();
    EXPECT_FALSE(r.bound.parts.empty()) << topo.name();
  }
}

TEST(PortfolioEngine, UserStopTokenPreemptsEveryAttempt) {
  class AlwaysStop final : public BudgetStopToken {
  public:
    [[nodiscard]] bool stop_requested(int) const override { return true; }
  };
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  PortfolioOptions opt;
  const AlwaysStop stop;
  opt.base.budget.stop = &stop;
  const PortfolioResult r = portfolio_compact(g, topo, comm, opt);
  // Every attempt yields at its first pass boundary with its startup table.
  for (const AttemptOutcome& row : r.attempts) {
    EXPECT_EQ(row.stop_reason, "preempted") << row.label;
    EXPECT_EQ(row.length, row.startup_length) << row.label;
  }
}

// --- Route cache ------------------------------------------------------------

TEST(RouteCache, StructurallyEqualTopologiesShareTables) {
  RouteCache::global().clear();
  const Topology a = make_mesh(3, 3);
  const RouteCache::Stats after_first = RouteCache::global().stats();
  const Topology b = make_mesh(3, 3);
  const RouteCache::Stats after_second = RouteCache::global().stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
  // Same tables, not merely equal ones: distance reads hit shared memory.
  for (PeId u = 0; u < a.size(); ++u)
    for (PeId v = 0; v < a.size(); ++v)
      EXPECT_EQ(a.distance(u, v), b.distance(u, v));
}

TEST(RouteCache, NameDoesNotSplitEntries) {
  RouteCache::global().clear();
  const Topology named(4, {{0, 1}, {1, 2}, {2, 3}}, false, "alpha");
  const Topology renamed(4, {{0, 1}, {1, 2}, {2, 3}}, false, "beta");
  const RouteCache::Stats stats = RouteCache::global().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(named.diameter(), renamed.diameter());
}

TEST(RouteCache, CachedTablesMatchFromScratchComputation) {
  for (const Topology& topo :
       {make_mesh(3, 4), make_hypercube(3), make_ring(7),
        make_ring(6, /*bidirectional=*/false), make_star(9),
        make_binary_tree(10)}) {
    const RouteTables fresh = compute_route_tables(
        topo.size(), topo.directed(), topo.links(), topo.name(),
        RouteCache::kNextHopLimit);
    EXPECT_EQ(fresh.diameter, topo.diameter()) << topo.name();
    for (PeId u = 0; u < topo.size(); ++u) {
      for (PeId v = 0; v < topo.size(); ++v) {
        EXPECT_EQ(fresh.dist(u, v), topo.distance(u, v)) << topo.name();
        const std::vector<PeId> path = topo.shortest_path(u, v);
        EXPECT_EQ(path.size(), topo.distance(u, v) + 1) << topo.name();
        if (u != v) {
          EXPECT_EQ(path[1], fresh.next(u, v)) << topo.name();
        }
      }
    }
  }
}

TEST(RouteCache, LargeStructuresSkipTheNextHopTableButPathsStillWork) {
  const Topology big = make_linear_array(RouteCache::kNextHopLimit + 10);
  const std::vector<PeId> path = big.shortest_path(0, big.size() - 1);
  EXPECT_EQ(path.size(), big.size());
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_EQ(path[i + 1], path[i] + 1);
}

TEST(RouteCache, DisabledCacheStillProducesCorrectTopologies) {
  RouteCache::global().set_enabled(false);
  const Topology a = make_mesh(2, 3);
  RouteCache::global().set_enabled(true);
  const Topology b = make_mesh(2, 3);
  for (PeId u = 0; u < a.size(); ++u)
    for (PeId v = 0; v < a.size(); ++v)
      EXPECT_EQ(a.distance(u, v), b.distance(u, v));
}

TEST(RouteCache, ConcurrentConstructionIsSafeAndConsistent) {
  RouteCache::global().clear();
  constexpr int kThreads = 8;
  std::vector<std::size_t> diameters(kThreads, 0);
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([t, &diameters] {
        const Topology topo = make_torus(4, 4);
        std::size_t sum = 0;
        for (PeId u = 0; u < topo.size(); ++u)
          for (PeId v = 0; v < topo.size(); ++v) sum += topo.distance(u, v);
        diameters[static_cast<std::size_t>(t)] = sum + topo.diameter();
      });
    }
    for (std::thread& t : pool) t.join();
  }
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(diameters[static_cast<std::size_t>(t)], diameters[0]);
  const RouteCache::Stats stats = RouteCache::global().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
}

TEST(RouteCache, DisconnectedStructureStillNamesTheTopology) {
  try {
    const Topology broken(4, {{0, 1}, {2, 3}}, false, "split");
    FAIL() << "disconnected topology must throw";
  } catch (const ArchitectureError& e) {
    EXPECT_NE(std::string(e.what()).find("'split'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("not connected"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ccs
