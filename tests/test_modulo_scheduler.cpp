// Unit tests for communication-aware iterative modulo scheduling.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/iteration_bound.hpp"
#include "core/modulo_scheduler.hpp"
#include "core/validator.hpp"
#include "sim/executor.hpp"
#include "workloads/generator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ModuloTest : public ::testing::Test {
protected:
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(ModuloTest, FoldedScheduleValidates) {
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         lattice_filter(), diffeq_solver(), correlator(3)}) {
    const ModuloScheduleResult r = modulo_schedule(g, mesh_, comm_);
    const auto report = validate_schedule(r.retimed_graph, r.table, comm_);
    EXPECT_TRUE(report.ok()) << g.name() << "\n" << report.to_string();
    EXPECT_EQ(r.table.length(), r.initiation_interval) << g.name();
    EXPECT_TRUE(r.retiming.is_legal_for(g)) << g.name();
  }
}

TEST_F(ModuloTest, RespectsTheIterationBound) {
  for (const Csdfg& g : {paper_example6(), lattice_filter()}) {
    const ModuloScheduleResult r = modulo_schedule(g, mesh_, comm_);
    const Rational b = iteration_bound(g);
    EXPECT_GE(static_cast<double>(r.initiation_interval) + 1e-9, b.value())
        << g.name();
  }
}

TEST_F(ModuloTest, PaperExampleLandsNearTheBoundOnTheMesh) {
  // paper6's bound is 3.  The one-pass heuristic (no ejection) settles at
  // II = 4 on the mesh — one step above the bound that cyclo-compaction
  // attains; pinned here as a characterization and as the baseline datum
  // bench_baselines reports.
  const ModuloScheduleResult r = modulo_schedule(paper_example6(), mesh_,
                                                 comm_);
  EXPECT_GE(r.initiation_interval, 3);
  EXPECT_LE(r.initiation_interval, 4);
}

TEST_F(ModuloTest, FlatStartsAreConsistentWithTheFold) {
  const Csdfg g = paper_example6();
  const ModuloScheduleResult r = modulo_schedule(g, mesh_, comm_);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(
        static_cast<long long>(r.table.cb(v)),
        (r.flat_start[v] - 1) % r.initiation_interval + 1);
    EXPECT_EQ(r.retiming.of(v),
              -((r.flat_start[v] - 1) / r.initiation_interval));
  }
}

TEST_F(ModuloTest, SimulatesAtItsInterval) {
  const Csdfg g = diffeq_solver();
  const ModuloScheduleResult r = modulo_schedule(g, mesh_, comm_);
  ExecutorOptions sim;
  sim.iterations = 24;
  sim.warmup = 4;
  const ExecutionStats s = execute_static(r.retimed_graph, r.table, mesh_,
                                          sim);
  EXPECT_EQ(s.late_arrivals, 0);
  EXPECT_DOUBLE_EQ(s.steady_initiation_interval,
                   static_cast<double>(r.initiation_interval));
}

TEST_F(ModuloTest, SinglePeDegeneratesToSerial) {
  const Topology solo = make_linear_array(1);
  const StoreAndForwardModel m(solo);
  const Csdfg g = paper_example6();
  const ModuloScheduleResult r = modulo_schedule(g, solo, m);
  EXPECT_EQ(r.initiation_interval,
            static_cast<int>(g.total_computation()));
  EXPECT_TRUE(validate_schedule(r.retimed_graph, r.table, m).ok());
}

TEST_F(ModuloTest, ComparableToCycloCompactionOnRandomGraphs) {
  // Neither dominates in theory; both must produce valid schedules, and on
  // these inputs they land within a small factor of each other.
  RandomDfgConfig cfg;
  cfg.num_nodes = 14;
  cfg.num_layers = 4;
  cfg.num_back_edges = 3;
  for (std::uint64_t seed : {21ull, 42ull, 63ull, 84ull}) {
    const Csdfg g = random_csdfg(cfg, seed);
    const ModuloScheduleResult mod = modulo_schedule(g, mesh_, comm_);
    CycloCompactionOptions opt;
    opt.policy = RemapPolicy::kWithRelaxation;
    const auto cyc = cyclo_compact(g, mesh_, comm_, opt);
    EXPECT_TRUE(
        validate_schedule(mod.retimed_graph, mod.table, comm_).ok())
        << seed;
    EXPECT_LE(mod.initiation_interval, 3 * cyc.best_length()) << seed;
    EXPECT_LE(cyc.best_length(), 3 * mod.initiation_interval) << seed;
  }
}

}  // namespace
}  // namespace ccs
