// Tests of the resilience subsystem (src/robust): the fault-spec parser and
// its CCS-F diagnostic corpus, fault binding, injection into the static
// executor, machine reduction, and the schedule-repair degradation ladder.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certify.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"
#include "io/text_format.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault_plan.hpp"
#include "robust/repair.hpp"
#include "sim/executor.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

// ------------------------------------------------------------- spec parsing

FaultSpec parse_ok(const std::string& text) {
  DiagnosticBag bag;
  FaultSpec spec = parse_fault_spec(text, "<test>", bag);
  bag.finalize();
  EXPECT_EQ(bag.count(Severity::kError), 0u) << text;
  return spec;
}

TEST(FaultSpec, ParsesEveryDirectiveKind) {
  const FaultSpec spec = parse_ok(
      "# a comment\n"
      "fail p2 @iter 3\n"
      "fail p0\n"
      "link p0 p1 @iter 5\n"
      "jitter C +2\n"
      "jitter D -1\n");
  ASSERT_EQ(spec.pe_faults.size(), 2u);
  EXPECT_EQ(spec.pe_faults[0].pe, "p2");
  EXPECT_EQ(spec.pe_faults[0].iteration, 3);
  EXPECT_EQ(spec.pe_faults[1].iteration, 0);  // clause omitted
  ASSERT_EQ(spec.link_faults.size(), 1u);
  EXPECT_EQ(spec.link_faults[0].a, "p0");
  EXPECT_EQ(spec.link_faults[0].b, "p1");
  EXPECT_EQ(spec.link_faults[0].iteration, 5);
  ASSERT_EQ(spec.jitters.size(), 2u);
  EXPECT_EQ(spec.jitters[0].delta, 2);
  EXPECT_EQ(spec.jitters[1].delta, -1);
}

TEST(FaultSpec, TolerantOfCrlfAndBom) {
  const FaultSpec spec = parse_ok("\xEF\xBB\xBF" "fail p1\r\nlink p0 p1\r\n");
  EXPECT_EQ(spec.pe_faults.size(), 1u);
  EXPECT_EQ(spec.link_faults.size(), 1u);
}

// The bad-spec corpus pinning CCS-F001 (referenced by
// LintCorpus.CorpusCoversEveryRule in test_lint.cpp): every entry must
// produce at least one CCS-F001 diagnostic and nothing must throw.
TEST(FaultSpec, SyntaxCorpusPinsCcsF001) {
  const std::vector<std::string> corpus = {
      "fail\n",                          // missing PE
      "fail p1 at 3\n",                  // junk instead of @iter
      "fail p1 @iter\n",                 // missing iteration
      "fail p1 @iter -2\n",              // negative iteration
      "fail p1 @iter 99999999999999\n",  // beyond the 1e12 cap
      "fail p1 @iter 3 trailing\n",      // trailing junk
      "link p0\n",                       // one endpoint
      "link p0 p1 @iter x\n",            // non-numeric iteration
      "jitter C\n",                      // missing delta
      "jitter C 2\n",                    // unsigned delta
      "jitter C +9999999999\n",          // delta overflow
      "explode p0\n",                    // unknown directive
  };
  for (const std::string& text : corpus) {
    DiagnosticBag bag;
    const FaultSpec spec = parse_fault_spec(text, "<bad>", bag);
    bag.finalize();
    EXPECT_GE(bag.count(Severity::kError), 1u) << text;
    for (const Diagnostic& d : bag.diagnostics())
      EXPECT_EQ(d.code, "CCS-F001") << text;
    EXPECT_TRUE(spec.empty()) << text;
  }
}

// The binding corpus pinning CCS-F002: structurally valid directives whose
// names do not resolve against the concrete graph + machine.
TEST(FaultSpec, BindingCorpusPinsCcsF002) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const std::vector<std::string> corpus = {
      "fail p9\n",         // PE index out of range
      "fail q1\n",         // not a PE name at all
      "link p0 p3\n",      // both PEs exist but (0,3) is not a mesh link
      "link p0 p7\n",      // endpoint out of range
      "jitter NOPE +1\n",  // unknown task
  };
  for (const std::string& text : corpus) {
    DiagnosticBag bag;
    const FaultSpec spec = parse_fault_spec(text, "<bad>", bag);
    const FaultPlan plan = bind_fault_spec(spec, g, mesh, bag);
    bag.finalize();
    EXPECT_GE(bag.count(Severity::kError), 1u) << text;
    for (const Diagnostic& d : bag.diagnostics())
      EXPECT_EQ(d.code, "CCS-F002") << text;
    EXPECT_TRUE(plan.empty()) << text;
  }
}

TEST(FaultPlan, AccessorsAndDeduplication) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  DiagnosticBag bag;
  const FaultSpec spec = parse_fault_spec(
      "fail p1 @iter 3\nfail p1 @iter 7\nlink p0 p1 @iter 2\n"
      "link p1 p0 @iter 9\njitter C +2\njitter C +1\n",
      "<test>", bag);
  const FaultPlan plan = bind_fault_spec(spec, g, mesh, bag);
  bag.finalize();
  ASSERT_EQ(bag.count(Severity::kError), 0u);

  EXPECT_FALSE(plan.pe_dead(1, 2));
  EXPECT_TRUE(plan.pe_dead(1, 3));   // earliest matching directive wins
  EXPECT_TRUE(plan.pe_dead(1, 100));
  EXPECT_FALSE(plan.pe_dead(0, 100));
  EXPECT_FALSE(plan.link_dead(0, 1, 1));
  EXPECT_TRUE(plan.link_dead(0, 1, 2));
  EXPECT_TRUE(plan.link_dead(1, 0, 2));  // direction agnostic
  EXPECT_EQ(plan.jitter_of(g.node_by_name("C")), 3);  // deltas sum
  EXPECT_EQ(plan.jitter_of(g.node_by_name("A")), 0);

  EXPECT_EQ(plan.dead_pes(), std::vector<PeId>{1});
  const std::vector<std::pair<PeId, PeId>> links = {{0, 1}};
  EXPECT_EQ(plan.dead_links(), links);
}

TEST(FaultPlan, DescribeRoundTripsThroughTheParser) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  DiagnosticBag bag;
  const FaultSpec spec = parse_fault_spec(
      "fail p2 @iter 3\nlink p0 p1 @iter 5\njitter C +2\n", "<t>", bag);
  const FaultPlan plan = bind_fault_spec(spec, g, mesh, bag);
  const std::string text = describe_fault_plan(plan, g);
  DiagnosticBag bag2;
  const FaultSpec again = parse_fault_spec(text, "<rt>", bag2);
  const FaultPlan plan2 = bind_fault_spec(again, g, mesh, bag2);
  bag2.finalize();
  EXPECT_EQ(bag2.count(Severity::kError), 0u);
  EXPECT_EQ(describe_fault_plan(plan2, g), text);
}

// ---------------------------------------------------------------- injection

class InjectionTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
  ScheduleTable startup_ = start_up_schedule(g_, mesh_, comm_);
  NodeId c_ = g_.node_by_name("C");

  ExecutionStats run(const FaultPlan& plan, int iterations = 8) {
    ExecutorOptions opt;
    opt.iterations = iterations;
    opt.warmup = 0;
    opt.faults = &plan;
    return execute_static(g_, startup_, mesh_, opt);
  }
};

TEST_F(InjectionTest, EmptyPlanChangesNothing) {
  const FaultPlan plan;
  const ExecutionStats with = run(plan);
  ExecutorOptions opt;
  opt.iterations = 8;
  opt.warmup = 0;
  const ExecutionStats without = execute_static(g_, startup_, mesh_, opt);
  EXPECT_EQ(with.iteration_finish, without.iteration_finish);
  EXPECT_EQ(with.failed_instances, 0);
  EXPECT_EQ(with.faults_injected, 0);
  EXPECT_EQ(with.first_failure_iteration, -1);
}

TEST_F(InjectionTest, FailStopKillsInstancesFromItsIteration) {
  FaultPlan plan;
  plan.pe_faults.push_back({startup_.pe(c_), 3});
  const ExecutionStats s = run(plan);
  // C has 5 lost iterations (3..7); its consumers starve in cascade.
  EXPECT_EQ(s.failed_instances, 5);
  EXPECT_GT(s.starved_instances, 0);
  EXPECT_EQ(s.first_failure_iteration, 3);
  EXPECT_GT(s.faults_injected, 0);
}

TEST_F(InjectionTest, FailStopAtIterationZeroStarvesTheWholeRun) {
  FaultPlan plan;
  plan.pe_faults.push_back({startup_.pe(c_), 0});
  const ExecutionStats s = run(plan);
  EXPECT_EQ(s.failed_instances, 8);
  EXPECT_EQ(s.first_failure_iteration, 0);
}

TEST_F(InjectionTest, DeadLinksLoseMessagesAndStarveConsumers) {
  // Cut every link incident to C's processor: no operand can reach it.
  FaultPlan plan;
  const PeId pc = startup_.pe(c_);
  for (PeId nb : mesh_.neighbors(pc)) plan.link_faults.push_back({pc, nb, 0});
  const ExecutionStats s = run(plan);
  EXPECT_GT(s.lost_messages, 0);
  EXPECT_GT(s.starved_instances, 0);
  EXPECT_EQ(s.first_failure_iteration, 0);
}

TEST_F(InjectionTest, JitterDelaysArrivalsInATightSchedule) {
  FaultPlan plan;
  plan.jitters.push_back({c_, 2});
  const ExecutionStats s = run(plan);
  // The startup schedule is tight around C, so a +2 jitter must surface as
  // late arrivals downstream; nothing fails outright.
  EXPECT_GT(s.late_arrivals, 0);
  EXPECT_EQ(s.failed_instances, 0);
  EXPECT_EQ(s.faults_injected, 1);
}

TEST_F(InjectionTest, FaultEventsReachTheTracer) {
  FaultPlan plan;
  plan.pe_faults.push_back({startup_.pe(c_), 1});
  plan.jitters.push_back({c_, 1});
  VectorSink sink;
  Tracer tracer(&sink);
  MetricsRegistry metrics;
  ExecutorOptions opt;
  opt.iterations = 4;
  opt.warmup = 0;
  opt.faults = &plan;
  (void)execute_static(g_, startup_, mesh_, opt,
                       ObsContext{&tracer, &metrics});
  int fault_lines = 0;
  for (const std::string& line : sink.lines())
    if (line.find("\"kind\":\"fault\"") != std::string::npos) ++fault_lines;
  EXPECT_EQ(fault_lines, 2);  // one jitter activation + one fail-stop
}

// ---------------------------------------------------------------- reduction

TEST(ReduceMachine, RenumbersSurvivorsContiguously) {
  const Topology mesh = make_mesh(2, 2);
  FaultPlan plan;
  plan.pe_faults.push_back({1, 0});
  const ReducedMachine rm = reduce_machine(mesh, plan);
  EXPECT_TRUE(rm.connected);
  ASSERT_TRUE(rm.topo.has_value());
  EXPECT_EQ(rm.topo->size(), 3u);
  EXPECT_EQ(rm.to_original, (std::vector<PeId>{0, 2, 3}));
  EXPECT_EQ(rm.from_original,
            (std::vector<std::size_t>{0, kNoPe, 1, 2}));
}

TEST(ReduceMachine, CutLinksSurviveAsFewerEdges) {
  const Topology mesh = make_mesh(2, 2);
  FaultPlan plan;
  plan.link_faults.push_back({0, 1, 4});
  const ReducedMachine rm = reduce_machine(mesh, plan);
  ASSERT_TRUE(rm.connected);
  EXPECT_EQ(rm.topo->size(), 4u);
  // p0's only remaining neighbor is p2 (the 0-1 mesh link is gone).
  EXPECT_EQ(rm.topo->neighbors(0), (std::vector<PeId>{2}));
}

TEST(ReduceMachine, DisconnectedSurvivorsAreFlagged) {
  const Topology line = make_linear_array(3);
  FaultPlan plan;
  plan.pe_faults.push_back({1, 0});
  const ReducedMachine rm = reduce_machine(line, plan);
  EXPECT_FALSE(rm.connected);
  EXPECT_FALSE(rm.topo.has_value());
  EXPECT_EQ(rm.survivors(), 2u);
}

TEST(ReduceMachine, AllDeadMeansNoSurvivors) {
  const Topology line = make_linear_array(2);
  FaultPlan plan;
  plan.pe_faults.push_back({0, 0});
  plan.pe_faults.push_back({1, 3});
  const ReducedMachine rm = reduce_machine(line, plan);
  EXPECT_EQ(rm.survivors(), 0u);
  EXPECT_FALSE(rm.connected);
}

// ------------------------------------------------------------------- repair

FaultPlan fail_pe(PeId pe, long long iter = 0) {
  FaultPlan plan;
  plan.pe_faults.push_back({pe, iter});
  return plan;
}

TEST(Repair, SinglePeFailStopRepairsEveryLibraryWorkload) {
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const std::vector<Csdfg> workloads = {
      paper_example6(), paper_example19(),     elliptic_filter(),
      lattice_filter(), iir_biquad_cascade(3), fir_filter(8),
      diffeq_solver(),  correlator(6),
  };
  for (const Csdfg& g : workloads) {
    const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
    const RepairOutcome outcome =
        repair_schedule(g, base, mesh, fail_pe(0));
    EXPECT_TRUE(outcome.success) << g.name() << ": " << outcome.detail;
    EXPECT_NE(outcome.rung, RepairRung::kInfeasible) << g.name();
    ASSERT_TRUE(outcome.schedule.has_value()) << g.name();
    ASSERT_TRUE(outcome.machine.has_value()) << g.name();
    EXPECT_EQ(outcome.machine->size(), 3u) << g.name();
    // No repaired placement may reference the dead processor.
    for (const PeId orig : outcome.to_original) EXPECT_NE(orig, 0u);
    // The accepted table certifies from first principles on the reduced
    // machine — the repair's core guarantee.
    const StoreAndForwardModel reduced_comm(*outcome.machine);
    DiagnosticBag bag;
    EXPECT_TRUE(certify_table(outcome.graph, *outcome.schedule, reduced_comm,
                              g.name() + "/repaired", bag))
        << g.name();
    bag.finalize();
    EXPECT_EQ(bag.count(Severity::kError), 0u) << g.name();
  }
}

TEST(Repair, SinglePeFailStopRepairsEveryExampleDataWorkload) {
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(CCS_EXAMPLES_DATA_DIR)) {
    if (entry.path().extension() != ".csdfg") continue;
    ++seen;
    std::ifstream f(entry.path());
    std::stringstream text;
    text << f.rdbuf();
    const Csdfg g = parse_csdfg(text.str());
    const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
    const RepairOutcome outcome =
        repair_schedule(g, base, mesh, fail_pe(0));
    EXPECT_TRUE(outcome.success)
        << entry.path().filename() << ": " << outcome.detail;
  }
  EXPECT_GE(seen, 2u);  // paper_fig1b + macroblock at minimum
}

TEST(Repair, DeadLinkOnlyPlanKeepsEverySurvivorPlacement) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
  FaultPlan plan;
  plan.link_faults.push_back({0, 1, 0});
  const RepairOutcome outcome = repair_schedule(g, base, mesh, plan);
  ASSERT_TRUE(outcome.success) << outcome.detail;
  EXPECT_TRUE(outcome.orphans.empty());
  EXPECT_EQ(outcome.machine->size(), 4u);
  // Some rung accepted a table for the thinner machine; whichever won, the
  // schedule must be valid there.
  const StoreAndForwardModel reduced_comm(*outcome.machine);
  EXPECT_TRUE(
      validate_schedule(outcome.graph, *outcome.schedule, reduced_comm).ok());
}

TEST(Repair, DisconnectedSurvivorsFallThroughToSerial) {
  const Csdfg g = paper_example6();
  const Topology line = make_linear_array(3);
  const StoreAndForwardModel comm(line);
  const CycloCompactionResult base = cyclo_compact(g, line, comm);
  const RepairOutcome outcome = repair_schedule(g, base, line, fail_pe(1));
  ASSERT_TRUE(outcome.success) << outcome.detail;
  EXPECT_EQ(outcome.rung, RepairRung::kSerial);
  EXPECT_EQ(outcome.machine->size(), 1u);
  EXPECT_EQ(outcome.to_original, std::vector<PeId>{0});  // lowest survivor
}

TEST(Repair, AllProcessorsDeadIsInfeasible) {
  const Csdfg g = paper_example6();
  const Topology pair = make_linear_array(2);
  const StoreAndForwardModel comm(pair);
  const CycloCompactionResult base = cyclo_compact(g, pair, comm);
  FaultPlan plan;
  plan.pe_faults.push_back({0, 0});
  plan.pe_faults.push_back({1, 0});
  const RepairOutcome outcome = repair_schedule(g, base, pair, plan);
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.rung, RepairRung::kInfeasible);
  EXPECT_FALSE(outcome.schedule.has_value());
  EXPECT_FALSE(outcome.detail.empty());
}

TEST(Repair, DeterministicAcrossRuns) {
  const Csdfg g = paper_example19();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
  const RepairOutcome a = repair_schedule(g, base, mesh, fail_pe(2));
  const RepairOutcome b = repair_schedule(g, base, mesh, fail_pe(2));
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.rung, b.rung);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(serialize_schedule(a.graph, *a.schedule, &a.retiming),
            serialize_schedule(b.graph, *b.schedule, &b.retiming));
}

TEST(Repair, EmitsOneAttemptEventPerRungTried) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const CycloCompactionResult base = cyclo_compact(g, mesh, comm);
  VectorSink sink;
  Tracer tracer(&sink);
  MetricsRegistry metrics;
  const RepairOutcome outcome = repair_schedule(
      g, base, mesh, fail_pe(0), {}, ObsContext{&tracer, &metrics});
  ASSERT_TRUE(outcome.success);
  int attempt_lines = 0;
  for (const std::string& line : sink.lines())
    if (line.find("\"kind\":\"repair_attempt\"") != std::string::npos)
      ++attempt_lines;
  EXPECT_EQ(static_cast<std::size_t>(attempt_lines),
            outcome.attempts.size());
  EXPECT_GE(attempt_lines, 1);
}

}  // namespace
}  // namespace ccs
