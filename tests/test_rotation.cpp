// Unit tests for the rotation phase (Definition 4.1 / Lemma 4.1).
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/list_scheduler.hpp"
#include "core/rotation.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class RotationTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
  ScheduleTable startup_ = start_up_schedule(g_, mesh_, comm_);
};

TEST_F(RotationTest, FirstRotationExtractsAAndRetimesIt) {
  Csdfg g = g_;
  ScheduleTable t = startup_;
  Retiming acc(g.node_count());
  const auto rotated = rotate_first_row(g, t, &acc);
  ASSERT_EQ(rotated, std::vector<NodeId>{g_.node_by_name("A")});
  EXPECT_EQ(acc.of(g_.node_by_name("A")), 1);
  // Figure 1(c): D->A drops to 2, A's out-edges gain one delay each.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    const std::string from = g.node(ed.from).name;
    const std::string to = g.node(ed.to).name;
    if (from == "D" && to == "A") {
      EXPECT_EQ(ed.delay, 2);
    }
    if (from == "A") {
      EXPECT_EQ(ed.delay, 1);
    }
  }
  EXPECT_TRUE(g.is_legal());
}

TEST_F(RotationTest, TableShiftsUpAndShrinksByOne) {
  Csdfg g = g_;
  ScheduleTable t = startup_;
  const int before = t.length();
  (void)rotate_first_row(g, t);
  EXPECT_EQ(t.length(), before - 1);
  EXPECT_FALSE(t.is_placed(g_.node_by_name("A")));
  EXPECT_EQ(t.cb(g_.node_by_name("B")), 1);
  EXPECT_EQ(t.cb(g_.node_by_name("C")), 2);
  EXPECT_EQ(t.cb(g_.node_by_name("F")), 6);
}

TEST_F(RotationTest, SecondRotationTakesTheNewFirstRow) {
  Csdfg g = g_;
  ScheduleTable t = startup_;
  (void)rotate_first_row(g, t);
  // Rotation requires a complete table: remap A somewhere first (pe2 at
  // step 5 is free and dependence-safe for this purpose).
  t.place(g_.node_by_name("A"), 1, 5);
  const auto second = rotate_first_row(g, t);
  ASSERT_EQ(second, std::vector<NodeId>{g_.node_by_name("B")});
  // B's incoming A->B had gained a delay in rotation 1; it returns to 0.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (g.node(ed.from).name == "A" && g.node(ed.to).name == "B") {
      EXPECT_EQ(ed.delay, 0);
    }
    if (g.node(ed.from).name == "B") {
      EXPECT_GE(ed.delay, 1);
    }
  }
  EXPECT_TRUE(g.is_legal());
}

TEST_F(RotationTest, RotationPreservesIterationStructure) {
  // Rotation is a retiming: cycle delay sums are invariant.
  Csdfg g = g_;
  ScheduleTable t = startup_;
  const long long total_before = g.total_delay();
  (void)rotate_first_row(g, t);
  // Total delay may change (A has 3 out-edges vs 1 in-edge) but legality
  // and per-cycle sums hold; spot-check the E-F cycle: F->E=1, E->F=0.
  EXPECT_TRUE(g.is_legal());
  EXPECT_EQ(total_before + 2, g.total_delay());  // +3 out, -1 in
}

TEST_F(RotationTest, MultipleStartersRotateTogether) {
  // Put two independent tasks in row 1 and rotate: both extracted.
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId c = g.add_node("c", 1);
  g.add_edge(a, c, 0, 1);
  g.add_edge(b, c, 0, 1);
  g.add_edge(c, a, 1, 1);
  g.add_edge(c, b, 2, 1);
  ScheduleTable t(g, 2);
  t.place(a, 0, 1);
  t.place(b, 1, 1);
  t.place(c, 0, 2);
  Csdfg rg = g;
  const auto rotated = rotate_first_row(rg, t);
  EXPECT_EQ(rotated, (std::vector<NodeId>{a, b}));
  EXPECT_EQ(t.cb(c), 1);
  EXPECT_EQ(t.length(), 1);
  // c->a delay 1 drained to 0; a->c gained 1 (and symmetrically for b).
  EXPECT_EQ(rg.edge(0).delay, 1);  // a->c
  EXPECT_EQ(rg.edge(2).delay, 0);  // c->a
  EXPECT_EQ(rg.edge(3).delay, 1);  // c->b
}

TEST_F(RotationTest, AccumulatedRetimingComposesAcrossRotations) {
  Csdfg g = g_;
  ScheduleTable t = startup_;
  Retiming acc(g.node_count());
  (void)rotate_first_row(g, t, &acc);
  t.place(g_.node_by_name("A"), 1, 5);  // complete the table between passes
  (void)rotate_first_row(g, t, &acc);
  // Applying the accumulated retiming to the *original* graph must equal
  // the doubly-rotated graph.
  Csdfg replay = g_;
  acc.apply(replay);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(replay.edge(e).delay, g.edge(e).delay);
}

TEST_F(RotationTest, EmptyFirstRowIsAPureShift) {
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  g.add_edge(a, a, 1, 1);
  ScheduleTable t(g, 1);
  t.place(a, 0, 2);
  t.set_length(3);
  Csdfg rg = g;
  const auto rotated = rotate_first_row(rg, t);
  EXPECT_TRUE(rotated.empty());
  EXPECT_EQ(t.cb(a), 1);
  EXPECT_EQ(t.length(), 2);
  EXPECT_EQ(rg.edge(0).delay, 1);  // untouched
}

}  // namespace
}  // namespace ccs
