// Unit tests for the cycle-accurate executor: agreement with the algebraic
// validator, self-timed pricing, and link contention.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "sim/executor.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ExecutorTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
  ScheduleTable startup_ = start_up_schedule(g_, mesh_, comm_);
};

TEST_F(ExecutorTest, ValidScheduleHasNoLateArrivals) {
  const ExecutionStats s = execute_static(g_, startup_, mesh_, {});
  EXPECT_EQ(s.late_arrivals, 0);
}

TEST_F(ExecutorTest, StaticModeSustainsExactlyTheTableLength) {
  ExecutorOptions opt;
  opt.iterations = 32;
  opt.warmup = 4;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  EXPECT_DOUBLE_EQ(s.steady_initiation_interval,
                   static_cast<double>(startup_.length()));
}

TEST_F(ExecutorTest, TwoRefereesAgree) {
  // A table the validator rejects must show late arrivals in simulation,
  // and vice versa: move C one step too early.
  ScheduleTable bad = startup_;
  const NodeId C = g_.node_by_name("C");
  bad.remove(C);
  bad.place(C, 1, 2);
  EXPECT_FALSE(validate_schedule(g_, bad, comm_).ok());
  const ExecutionStats s = execute_static(g_, bad, mesh_, {});
  EXPECT_GT(s.late_arrivals, 0);
}

TEST_F(ExecutorTest, SelfTimedNeverSlowerThanAValidStaticSchedule) {
  // Without contention, firing each task as early as possible can only
  // match or beat the static timing, iteration by iteration.
  const ExecutionStats s = execute_self_timed(g_, startup_, mesh_, {});
  const ExecutionStats fixed = execute_static(g_, startup_, mesh_, {});
  for (std::size_t i = 0; i < s.iteration_finish.size(); ++i)
    EXPECT_LE(s.iteration_finish[i], fixed.iteration_finish[i]);
}

TEST_F(ExecutorTest, CompactedScheduleSimulatesAtItsLength) {
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  const ExecutionStats s =
      execute_static(res.retimed_graph, res.best, mesh_, {});
  EXPECT_EQ(s.late_arrivals, 0);
  EXPECT_DOUBLE_EQ(s.steady_initiation_interval,
                   static_cast<double>(res.best_length()));
}

TEST_F(ExecutorTest, MessageAccountingCountsInterPeEdgesOnly) {
  // Startup places everything except C on pe0: only A->C and C->E cross
  // PEs, and only for iterations whose producer iteration exists.
  ExecutorOptions opt;
  opt.iterations = 10;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  EXPECT_EQ(s.total_messages, 2 * 10);
  // Both transfers are 1 hop x volume 1.
  EXPECT_EQ(s.total_traffic, 2 * 10);
}

TEST_F(ExecutorTest, SelfTimedRespectsLoopCarriedDependences) {
  // One task with a delayed self-loop: iteration i may not start before
  // iteration i-1 finished (same PE enforces it too; use the loop delay 2
  // to allow overlap — II is bounded by t/d = 3/2 with two PEs...
  // on a single PE the processor serializes: II = 3).
  Csdfg g;
  const NodeId a = g.add_node("a", 3);
  g.add_edge(a, a, 2, 1);
  const Topology solo = make_linear_array(1);
  ScheduleTable t(g, 1);
  t.place(a, 0, 1);
  ExecutorOptions opt;
  opt.iterations = 20;
  opt.warmup = 5;
  const ExecutionStats s = execute_self_timed(g, t, solo, opt);
  EXPECT_DOUBLE_EQ(s.steady_initiation_interval, 3.0);
}

TEST_F(ExecutorTest, ContentionNeverSpeedsThingsUp) {
  for (const Csdfg& g : {paper_example6(), paper_example19()}) {
    const Topology topo = make_mesh(2, 2);
    const StoreAndForwardModel m(topo);
    const ScheduleTable t = start_up_schedule(g, topo, m);
    ExecutorOptions free;
    ExecutorOptions contended;
    contended.link_contention = true;
    const auto a = execute_self_timed(g, t, topo, free);
    const auto b = execute_self_timed(g, t, topo, contended);
    EXPECT_GE(b.makespan, a.makespan) << g.name();
    EXPECT_GE(b.steady_initiation_interval,
              a.steady_initiation_interval - 1e-9)
        << g.name();
  }
}

TEST_F(ExecutorTest, ContentionSerializesASharedLink) {
  // Two producers on pe0 feed two consumers on pe1 through the single link
  // of a 2-PE line: with contention the second message queues.
  Csdfg g;
  const NodeId p1 = g.add_node("p1", 1);
  const NodeId p2 = g.add_node("p2", 1);
  const NodeId c1 = g.add_node("c1", 1);
  const NodeId c2 = g.add_node("c2", 1);
  g.add_edge(p1, c1, 0, 4);
  g.add_edge(p2, c2, 0, 4);
  g.add_edge(c1, p1, 1, 1);
  g.add_edge(c2, p2, 1, 1);
  const Topology line = make_linear_array(2);
  ScheduleTable t(g, 2);
  t.place(p1, 0, 1);
  t.place(p2, 0, 2);
  t.place(c1, 1, 6);
  t.place(c2, 1, 7);
  t.set_length(12);
  ExecutorOptions free;
  free.iterations = 4;
  free.warmup = 1;
  ExecutorOptions cont = free;
  cont.link_contention = true;
  const auto a = execute_self_timed(g, t, line, free);
  const auto b = execute_self_timed(g, t, line, cont);
  EXPECT_GT(b.makespan, a.makespan);
}

TEST_F(ExecutorTest, OptionsAreContractChecked) {
  ExecutorOptions bad;
  bad.iterations = 0;
  EXPECT_THROW((void)execute_static(g_, startup_, mesh_, bad),
               ContractViolation);
  bad.iterations = 4;
  bad.warmup = 4;
  EXPECT_THROW((void)execute_static(g_, startup_, mesh_, bad),
               ContractViolation);
}

TEST_F(ExecutorTest, SelfTimedDetectsOrderDeadlocks) {
  // pe1 runs [x, y], pe2 runs [w, z]; data y->w and z->x close a cycle
  // through the two program orders: blocking execution can never start.
  Csdfg g;
  const NodeId x = g.add_node("x", 1);
  const NodeId y = g.add_node("y", 1);
  const NodeId w = g.add_node("w", 1);
  const NodeId z = g.add_node("z", 1);
  g.add_edge(y, w, 0, 1);
  g.add_edge(z, x, 0, 1);
  g.add_edge(w, y, 1, 1);  // keep the graph itself legal
  g.add_edge(x, z, 1, 1);
  ASSERT_TRUE(g.is_legal());
  const Topology pair = make_linear_array(2);
  ScheduleTable t(g, 2);
  t.place(x, 0, 1);
  t.place(y, 0, 2);
  t.place(w, 1, 1);
  t.place(z, 1, 2);
  const ExecutionStats s = execute_self_timed(g, t, pair, {});
  EXPECT_TRUE(s.deadlocked);
  EXPECT_EQ(s.makespan, 0);
  // The static referee also rejects this table (z->x arrives late).
  ExecutorOptions opt;
  opt.iterations = 4;
  opt.warmup = 0;
  EXPECT_GT(execute_static(g, t, pair, opt).late_arrivals, 0);
}

TEST_F(ExecutorTest, ValidTablesNeverDeadlock) {
  const ExecutionStats s = execute_self_timed(g_, startup_, mesh_, {});
  EXPECT_FALSE(s.deadlocked);
}

TEST_F(ExecutorTest, IterationFinishTimesAreMonotone) {
  const ExecutionStats s = execute_self_timed(g_, startup_, mesh_, {});
  for (std::size_t i = 1; i < s.iteration_finish.size(); ++i)
    EXPECT_GT(s.iteration_finish[i], s.iteration_finish[i - 1]);
}

}  // namespace
}  // namespace ccs
