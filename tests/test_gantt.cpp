// Unit tests for trace recording and Gantt/CSV rendering.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "sim/gantt.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class GanttTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
  ScheduleTable startup_ = start_up_schedule(g_, mesh_, comm_);
};

TEST_F(GanttTest, TraceRecordsEveryInstance) {
  ExecutorOptions opt;
  opt.iterations = 3;
  opt.warmup = 0;
  opt.record_trace = true;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  EXPECT_EQ(s.trace.size(), 3 * g_.node_count());
  for (const TaskEvent& ev : s.trace) {
    EXPECT_EQ(ev.finish - ev.start + 1, g_.node(ev.node).time);
    EXPECT_EQ(ev.pe, startup_.pe(ev.node));
    // Static mode: start = iteration*L + CB.
    EXPECT_EQ(ev.start, ev.iteration * startup_.length() +
                            startup_.cb(ev.node));
  }
}

TEST_F(GanttTest, TraceIsOffByDefault) {
  const ExecutionStats s = execute_static(g_, startup_, mesh_, {});
  EXPECT_TRUE(s.trace.empty());
}

TEST_F(GanttTest, GanttShowsTasksAtTheirCycles) {
  ExecutorOptions opt;
  opt.iterations = 2;
  opt.warmup = 0;
  opt.record_trace = true;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  const std::string chart = render_gantt(g_, s.trace, 4, 1, 14);
  // pe1 runs A B B D E E F twice; pe2 shows C at cycles 3 and 10.
  EXPECT_NE(chart.find("pe1 |ABBDEEFABBDEEF|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("pe2 |..C......C....|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("pe4 |..............|"), std::string::npos);
}

TEST_F(GanttTest, GanttWindowsClipEvents) {
  ExecutorOptions opt;
  opt.iterations = 2;
  opt.warmup = 0;
  opt.record_trace = true;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  const std::string chart = render_gantt(g_, s.trace, 4, 5, 8);
  EXPECT_NE(chart.find("cycles 5..8"), std::string::npos);
  EXPECT_NE(chart.find("pe1 |EEFA|"), std::string::npos) << chart;
}

TEST_F(GanttTest, CompactedGanttShowsIterationOverlap) {
  // After compaction, an iteration's tasks interleave with the next one's:
  // the chart for one period contains tasks of two different iterations.
  CycloCompactionOptions copt;
  copt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, copt);
  ExecutorOptions opt;
  opt.iterations = 6;
  opt.warmup = 0;
  opt.record_trace = true;
  const ExecutionStats s =
      execute_static(res.retimed_graph, res.best, mesh_, opt);
  const int L = res.best_length();
  // Window over the 3rd period.
  const std::string chart = render_gantt(g_, s.trace, 4, 2 * L + 1, 3 * L);
  EXPECT_NE(chart.find('A'), std::string::npos);
  EXPECT_NE(chart.find('E'), std::string::npos);
}

TEST_F(GanttTest, CsvHasHeaderAndOneRowPerEvent) {
  ExecutorOptions opt;
  opt.iterations = 2;
  opt.warmup = 0;
  opt.record_trace = true;
  const ExecutionStats s = execute_static(g_, startup_, mesh_, opt);
  const std::string csv = trace_to_csv(g_, s.trace);
  EXPECT_NE(csv.find("task,iteration,pe,start,finish\n"), std::string::npos);
  EXPECT_NE(csv.find("A,0,1,1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("C,1,2,10,10\n"), std::string::npos);
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(rows, 1 + 2 * static_cast<long>(g_.node_count()));
}

TEST_F(GanttTest, RouterChoiceChangesContendedTimingOnly) {
  const Topology mesh = make_mesh(2, 4);
  const StoreAndForwardModel comm(mesh);
  const Csdfg g = paper_example19();
  const ScheduleTable t = start_up_schedule(g, mesh, comm);
  const ShortestPathRouter bfs(mesh);
  const XyMeshRouter xy(mesh, 2, 4);

  ExecutorOptions a;
  a.router = &bfs;
  ExecutorOptions b;
  b.router = &xy;
  // Without contention both routers are minimal: identical timing.
  EXPECT_EQ(execute_self_timed(g, t, mesh, a).makespan,
            execute_self_timed(g, t, mesh, b).makespan);
  // Under contention the policies may spread load differently; both must
  // still be deterministic and no faster than contention-free.
  a.link_contention = b.link_contention = true;
  const auto sa = execute_self_timed(g, t, mesh, a);
  const auto sb = execute_self_timed(g, t, mesh, b);
  EXPECT_EQ(sa.makespan, execute_self_timed(g, t, mesh, a).makespan);
  ExecutorOptions free_links;
  EXPECT_GE(sa.makespan, execute_self_timed(g, t, mesh, free_links).makespan);
  EXPECT_GE(sb.makespan, execute_self_timed(g, t, mesh, free_links).makespan);
}

TEST_F(GanttTest, RenderArgumentsAreContractChecked) {
  EXPECT_THROW((void)render_gantt(g_, {}, 0, 1, 5), ContractViolation);
  EXPECT_THROW((void)render_gantt(g_, {}, 2, 5, 1), ContractViolation);
}

}  // namespace
}  // namespace ccs
