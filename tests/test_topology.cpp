// Unit tests for the architecture topologies (Section 2 / Figures 5 and 8).
#include <gtest/gtest.h>

#include <tuple>

#include "arch/topology.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

TEST(Topology, LinearArrayDistancesAreIndexDifferences) {
  const Topology t = make_linear_array(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.diameter(), 7u);
  for (PeId a = 0; a < 8; ++a)
    for (PeId b = 0; b < 8; ++b)
      EXPECT_EQ(t.distance(a, b), a > b ? a - b : b - a);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(3), 2u);
}

TEST(Topology, BidirectionalRingWrapsAround) {
  const Topology t = make_ring(8);
  EXPECT_EQ(t.diameter(), 4u);
  EXPECT_EQ(t.distance(0, 7), 1u);
  EXPECT_EQ(t.distance(0, 4), 4u);
  EXPECT_EQ(t.distance(2, 6), 4u);
  for (PeId p = 0; p < 8; ++p) EXPECT_EQ(t.degree(p), 2u);
}

TEST(Topology, UnidirectionalRingIsAsymmetric) {
  const Topology t = make_ring(5, /*bidirectional=*/false);
  EXPECT_TRUE(t.directed());
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(1, 0), 4u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, CompleteHasUnitDistances) {
  const Topology t = make_complete(8);
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_EQ(t.links().size(), 28u);
  for (PeId a = 0; a < 8; ++a)
    for (PeId b = 0; b < 8; ++b)
      EXPECT_EQ(t.distance(a, b), a == b ? 0u : 1u);
}

TEST(Topology, MeshUsesManhattanDistance) {
  const Topology t = make_mesh(2, 2);  // the paper's Figure 1(a)
  EXPECT_EQ(t.size(), 4u);
  // PE layout: 0 1 / 2 3.  Diagonal pairs are 2 hops apart.
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(0, 2), 1u);
  EXPECT_EQ(t.distance(0, 3), 2u);
  EXPECT_EQ(t.distance(1, 2), 2u);

  const Topology big = make_mesh(4, 2);
  for (PeId a = 0; a < big.size(); ++a)
    for (PeId b = 0; b < big.size(); ++b) {
      const std::size_t ra = a / 2, ca = a % 2, rb = b / 2, cb = b % 2;
      const std::size_t manhattan =
          (ra > rb ? ra - rb : rb - ra) + (ca > cb ? ca - cb : cb - ca);
      EXPECT_EQ(big.distance(a, b), manhattan);
    }
}

TEST(Topology, TorusWrapsBothDimensions) {
  const Topology t = make_torus(4, 4);
  EXPECT_EQ(t.distance(0, 3), 1u);   // row wrap
  EXPECT_EQ(t.distance(0, 12), 1u);  // column wrap
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, HypercubeDistanceIsHammingDistance) {
  const Topology t = make_hypercube(3);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.diameter(), 3u);
  for (PeId a = 0; a < 8; ++a)
    for (PeId b = 0; b < 8; ++b)
      EXPECT_EQ(t.distance(a, b),
                static_cast<std::size_t>(__builtin_popcountll(a ^ b)));
}

TEST(Topology, StarRoutesThroughHub) {
  const Topology t = make_star(6);
  EXPECT_EQ(t.degree(0), 5u);
  EXPECT_EQ(t.distance(1, 5), 2u);
  EXPECT_EQ(t.distance(0, 4), 1u);
  EXPECT_EQ(t.diameter(), 2u);
}

TEST(Topology, BinaryTreeParentChildLinks) {
  const Topology t = make_binary_tree(7);
  EXPECT_EQ(t.distance(0, 3), 2u);  // root -> left -> its left child
  EXPECT_EQ(t.distance(3, 4), 2u);  // siblings via parent
  EXPECT_EQ(t.distance(3, 6), 4u);  // across the root
}

TEST(Topology, ShortestPathMatchesDistanceAndEndpoints) {
  for (const Topology& t :
       {make_mesh(3, 3), make_ring(6), make_hypercube(3), make_star(5)}) {
    for (PeId a = 0; a < t.size(); ++a)
      for (PeId b = 0; b < t.size(); ++b) {
        const auto path = t.shortest_path(a, b);
        ASSERT_EQ(path.size(), t.distance(a, b) + 1) << t.name();
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
          EXPECT_EQ(t.distance(path[i], path[i + 1]), 1u);
      }
  }
}

TEST(Topology, DistanceSatisfiesTriangleInequality) {
  for (const Topology& t : {make_mesh(3, 4), make_binary_tree(10),
                           make_linear_array(9), make_torus(3, 5)}) {
    for (PeId a = 0; a < t.size(); ++a)
      for (PeId b = 0; b < t.size(); ++b)
        for (PeId c = 0; c < t.size(); ++c)
          EXPECT_LE(t.distance(a, c),
                    t.distance(a, b) + t.distance(b, c))
              << t.name();
  }
}

TEST(Topology, UndirectedDistanceIsSymmetric) {
  for (const Topology& t : {make_mesh(3, 3), make_ring(7), make_hypercube(4),
                           make_star(6), make_binary_tree(9)}) {
    for (PeId a = 0; a < t.size(); ++a)
      for (PeId b = 0; b < t.size(); ++b)
        EXPECT_EQ(t.distance(a, b), t.distance(b, a)) << t.name();
  }
}

TEST(Topology, CustomLinksAreDeduplicatedAndNormalized) {
  const Topology t(3, {{0, 1}, {1, 0}, {1, 2}}, false, "dedup");
  EXPECT_EQ(t.links().size(), 2u);
  EXPECT_EQ(t.links()[0], (std::pair<PeId, PeId>{0, 1}));
}

TEST(Topology, RejectsBadConstructions) {
  EXPECT_THROW(Topology(0, {}), ArchitectureError);
  EXPECT_THROW(Topology(2, {{0, 0}}), ArchitectureError);           // self-loop
  EXPECT_THROW(Topology(2, {{0, 5}}), ArchitectureError);           // range
  EXPECT_THROW(Topology(3, {{0, 1}}), ArchitectureError);           // disconnected
  EXPECT_THROW(make_ring(2), ArchitectureError);
  EXPECT_THROW(make_torus(2, 4), ArchitectureError);
  EXPECT_THROW(make_mesh(0, 3), ArchitectureError);
  EXPECT_THROW(make_star(1), ArchitectureError);
}

TEST(Topology, SinglePeTopologyIsValid) {
  const Topology t = make_linear_array(1);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.diameter(), 0u);
  EXPECT_EQ(t.distance(0, 0), 0u);
}

TEST(Topology, NamesDescribeShape) {
  EXPECT_EQ(make_mesh(4, 2).name(), "mesh(4x2)");
  EXPECT_EQ(make_hypercube(3).name(), "hypercube(3)");
  EXPECT_EQ(make_ring(8, false).name(), "uniring(8)");
}

}  // namespace
}  // namespace ccs
