// Unit tests for the schedule interchange format.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ScheduleFormatTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(ScheduleFormatTest, RoundTripsTheStartupSchedule) {
  const ScheduleTable t = start_up_schedule(g_, mesh_, comm_);
  const ScheduleTable back = parse_schedule(g_, serialize_schedule(g_, t));
  EXPECT_EQ(back.length(), t.length());
  EXPECT_EQ(back.num_pes(), t.num_pes());
  for (NodeId v = 0; v < g_.node_count(); ++v) {
    EXPECT_EQ(back.cb(v), t.cb(v));
    EXPECT_EQ(back.pe(v), t.pe(v));
  }
  EXPECT_TRUE(validate_schedule(g_, back, comm_).ok());
}

TEST_F(ScheduleFormatTest, RoundTripsCompactedSchedulesWithPadding) {
  // A PSL-padded table declares a length beyond its occupied span; the
  // format must preserve it.
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 1);
  g.add_edge(v, u, 1, 6);
  ScheduleTable t(g, 4);
  t.place(u, 0, 1);
  t.place(v, 3, 4);
  t.set_length(16);
  const ScheduleTable back = parse_schedule(g, serialize_schedule(g, t));
  EXPECT_EQ(back.length(), 16);
}

TEST_F(ScheduleFormatTest, PreservesThePipelinedFlag) {
  ScheduleTable t(g_, 2, /*pipelined_pes=*/true);
  t.place(g_.node_by_name("B"), 0, 1);
  t.place(g_.node_by_name("E"), 0, 2);
  const std::string text = serialize_schedule(g_, t);
  EXPECT_NE(text.find("pipelined"), std::string::npos);
  const ScheduleTable back = parse_schedule(g_, text);
  EXPECT_TRUE(back.pipelined_pes());
  EXPECT_EQ(back.cb(g_.node_by_name("E")), 2);
}

TEST_F(ScheduleFormatTest, PartialTablesRoundTrip) {
  ScheduleTable t(g_, 4);
  t.place(g_.node_by_name("A"), 2, 3);
  const ScheduleTable back = parse_schedule(g_, serialize_schedule(g_, t));
  EXPECT_EQ(back.placed_count(), 1u);
  EXPECT_EQ(back.pe(g_.node_by_name("A")), 2u);
}

TEST_F(ScheduleFormatTest, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_schedule(g_, "place A 1 1\n"), ParseError);
  EXPECT_THROW((void)parse_schedule(g_, "schedule 5 0\n"), ParseError);
  EXPECT_THROW((void)parse_schedule(g_, "schedule 5 2\nplace Z 1 1\n"),
               ParseError);
  EXPECT_THROW((void)parse_schedule(g_, "schedule 5 2\nplace A 3 1\n"),
               ParseError);
  EXPECT_THROW((void)parse_schedule(g_, "schedule 5 2\nplace A 1 0\n"),
               ParseError);
  EXPECT_THROW(
      (void)parse_schedule(g_, "schedule 5 2\nplace A 1 1\nplace A 2 2\n"),
      ParseError);
  EXPECT_THROW(
      (void)parse_schedule(g_, "schedule 5 2\nplace A 1 1\nplace C 1 1\n"),
      ParseError);
  // Declared length shorter than the span of B (2 cycles from cb 5).
  EXPECT_THROW((void)parse_schedule(g_, "schedule 5 2\nplace B 1 5\n"),
               ParseError);
  EXPECT_THROW((void)parse_schedule(g_, "frobnicate\n"), ParseError);
}

TEST_F(ScheduleFormatTest, CommentsAreIgnored) {
  const ScheduleTable t = parse_schedule(g_,
                                         "# saved by ccsched\n"
                                         "schedule 3 2\n"
                                         "place A 1 1  # the source\n");
  EXPECT_EQ(t.length(), 3);
  EXPECT_EQ(t.cb(g_.node_by_name("A")), 1);
}

}  // namespace
}  // namespace ccs
