// Unit tests for the workload transforms (slowdown, time/volume scaling).
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

namespace ccs {
namespace {

TEST(Transforms, SlowdownMultipliesDelaysOnly) {
  const Csdfg g = paper_example6();
  const Csdfg s = slowdown(g, 3);
  ASSERT_EQ(s.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(s.edge(e).delay, 3 * g.edge(e).delay);
    EXPECT_EQ(s.edge(e).volume, g.edge(e).volume);
  }
  for (NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(s.node(v).time, g.node(v).time);
  EXPECT_TRUE(s.is_legal());
  EXPECT_EQ(s.name(), "paper6_slow3");
}

TEST(Transforms, ScaleTimesMultipliesNodeTimesOnly) {
  const Csdfg g = lattice_filter();
  const Csdfg s = scale_times(g, 3);
  EXPECT_EQ(s.total_computation(), 3 * g.total_computation());
  EXPECT_EQ(s.total_delay(), g.total_delay());
  // The paper's Table 11 band: 35 -> 105.
  EXPECT_EQ(s.total_computation(), 105);
}

TEST(Transforms, ScaleVolumesMultipliesVolumesOnly) {
  const Csdfg g = paper_example6();
  const Csdfg s = scale_volumes(g, 4);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(s.edge(e).volume, 4 * g.edge(e).volume);
    EXPECT_EQ(s.edge(e).delay, g.edge(e).delay);
  }
}

TEST(Transforms, SlowdownPreservesZeroDelayStructure) {
  const Csdfg g = paper_example19();
  const Csdfg s = slowdown(g, 2);
  EXPECT_EQ(compute_dag_timing(s).critical_path,
            compute_dag_timing(g).critical_path);
}

TEST(Transforms, IdentityFactorsAreNoOps) {
  const Csdfg g = paper_example6();
  for (const Csdfg& t :
       {slowdown(g, 1), scale_times(g, 1), scale_volumes(g, 1)}) {
    EXPECT_EQ(t.total_computation(), g.total_computation());
    EXPECT_EQ(t.total_delay(), g.total_delay());
  }
}

TEST(Transforms, RejectBadFactors) {
  const Csdfg g = paper_example6();
  EXPECT_THROW((void)slowdown(g, 0), GraphError);
  EXPECT_THROW((void)scale_times(g, -1), GraphError);
  EXPECT_THROW((void)scale_volumes(g, 0), GraphError);
}

TEST(Transforms, ComposeForTable11Preparation) {
  // The Table 11 configuration: both transforms, either order.
  const Csdfg a = scale_times(slowdown(elliptic_filter(), 3), 3);
  const Csdfg b = slowdown(scale_times(elliptic_filter(), 3), 3);
  EXPECT_EQ(a.total_computation(), 126);
  EXPECT_EQ(b.total_computation(), 126);
  EXPECT_EQ(a.total_delay(), b.total_delay());
  EXPECT_TRUE(a.is_legal());
}

}  // namespace
}  // namespace ccs
