// Unit tests for the benchmark graph library.
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(Workloads, PaperExample6MatchesFigure1b) {
  const Csdfg g = paper_example6();
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.node(g.node_by_name("B")).time, 2);
  EXPECT_EQ(g.node(g.node_by_name("E")).time, 2);
  EXPECT_EQ(g.node(g.node_by_name("A")).time, 1);
  // d(D->A) = 3, d(F->E) = 1, all others 0; c(B->E) = c(D->F) = 2,
  // c(D->A) = 3.
  int d_sum = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) d_sum += g.edge(e).delay;
  EXPECT_EQ(d_sum, 4);
  EXPECT_EQ(g.total_computation(), 8);
}

TEST(Workloads, PaperExample19HasThePublishedTimes) {
  const Csdfg g = paper_example19();
  EXPECT_EQ(g.node_count(), 19u);
  for (const char* two : {"C", "F", "J", "L", "P"})
    EXPECT_EQ(g.node(g.node_by_name(two)).time, 2) << two;
  int ones = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    ones += g.node(v).time == 1;
  EXPECT_EQ(ones, 14);
  EXPECT_EQ(g.total_computation(), 24);
  EXPECT_TRUE(g.is_legal());
}

TEST(Workloads, EllipticFilterHasBenchmarkShape) {
  const Csdfg g = elliptic_filter();
  EXPECT_EQ(g.node_count(), 34u);
  int adds = 0, muls = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (g.node(v).time == 1) ++adds;
    if (g.node(v).time == 2) ++muls;
  }
  EXPECT_EQ(adds, 26);
  EXPECT_EQ(muls, 8);
  EXPECT_EQ(g.total_computation(), 42);  // the paper's 126 = 3 x 42
  int state_edges = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    state_edges += g.edge(e).delay > 0;
  EXPECT_EQ(state_edges, 8);
  EXPECT_TRUE(g.is_legal());
  // Strongly recurrent: a finite iteration bound well above 1.
  EXPECT_GT(iteration_bound(g).value(), 1.0);
}

TEST(Workloads, LatticeFilterHasBenchmarkShape) {
  const Csdfg g = lattice_filter();
  EXPECT_EQ(g.node_count(), 25u);
  EXPECT_EQ(g.total_computation(), 35);  // the paper's 105 = 3 x 35
  EXPECT_TRUE(g.is_legal());
  EXPECT_EQ(iteration_bound(g), (Rational{7, 1}));
}

TEST(Workloads, BiquadCascadeScalesWithSections) {
  const Csdfg one = iir_biquad_cascade(1);
  const Csdfg three = iir_biquad_cascade(3);
  EXPECT_EQ(one.node_count(), 10u);   // x + 9 per section
  EXPECT_EQ(three.node_count(), 28u);
  EXPECT_TRUE(three.is_legal());
  // Cascading cannot lower the bound (same per-section recurrences).
  EXPECT_EQ(iteration_bound(one), iteration_bound(three));
  EXPECT_THROW((void)iir_biquad_cascade(0), ContractViolation);
}

TEST(Workloads, FirFilterIsAcyclicButDelayed) {
  const Csdfg g = fir_filter(6);
  EXPECT_EQ(g.node_count(), 12u);  // x + 6 muls + 5 adds
  EXPECT_EQ(iteration_bound(g), (Rational{0, 1}));
  EXPECT_GT(g.total_delay(), 0);
  EXPECT_THROW((void)fir_filter(1), ContractViolation);
}

TEST(Workloads, DiffeqSolverShape) {
  const Csdfg g = diffeq_solver();
  EXPECT_EQ(g.node_count(), 12u);
  int muls = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) muls += g.node(v).time == 2;
  EXPECT_EQ(muls, 6);
  EXPECT_TRUE(g.is_legal());
  // The u-recurrence u1 <- s1 <- m3 <- m2 <- u1 bounds the rate.
  EXPECT_GE(iteration_bound(g).value(), 2.0);
}

TEST(Workloads, AllLibraryGraphsHaveConsistentDagTimings) {
  for (const Csdfg& g :
       {paper_example6(), paper_example19(), elliptic_filter(),
        lattice_filter(), iir_biquad_cascade(2), fir_filter(4),
        diffeq_solver()}) {
    const DagTiming t = compute_dag_timing(g);
    EXPECT_GE(t.critical_path, 1) << g.name();
    EXPECT_LE(t.critical_path, g.total_computation()) << g.name();
  }
}

}  // namespace
}  // namespace ccs
