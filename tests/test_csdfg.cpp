// Unit tests for the CSDFG data structure (Section 2 definitions).
#include <gtest/gtest.h>

#include "core/csdfg.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

Csdfg two_node_loop() {
  Csdfg g("loop");
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 2);
  g.add_edge(a, b, 0, 1);
  g.add_edge(b, a, 1, 2);
  return g;
}

TEST(Csdfg, BuildsNodesAndEdges) {
  const Csdfg g = two_node_loop();
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(0).name, "a");
  EXPECT_EQ(g.node(1).time, 2);
  EXPECT_EQ(g.edge(1).delay, 1);
  EXPECT_EQ(g.edge(1).volume, 2u);
  EXPECT_EQ(g.name(), "loop");
}

TEST(Csdfg, AdjacencyIsInInsertionOrder) {
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const NodeId c = g.add_node("c", 1);
  const EdgeId e1 = g.add_edge(a, b, 0);
  const EdgeId e2 = g.add_edge(a, c, 0);
  const EdgeId e3 = g.add_edge(b, c, 1);
  ASSERT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.out_edges(a)[0], e1);
  EXPECT_EQ(g.out_edges(a)[1], e2);
  ASSERT_EQ(g.in_edges(c).size(), 2u);
  EXPECT_EQ(g.in_edges(c)[0], e2);
  EXPECT_EQ(g.in_edges(c)[1], e3);
  EXPECT_TRUE(g.in_edges(a).empty());
}

TEST(Csdfg, SynthesizesEmptyNames) {
  Csdfg g;
  g.add_node("", 1);
  EXPECT_EQ(g.node(0).name, "v0");
}

TEST(Csdfg, NodeByNameFindsAndRejects) {
  const Csdfg g = two_node_loop();
  EXPECT_EQ(g.node_by_name("b"), 1u);
  EXPECT_THROW((void)g.node_by_name("zz"), GraphError);
  Csdfg dup;
  dup.add_node("x", 1);
  dup.add_node("x", 1);
  EXPECT_THROW((void)dup.node_by_name("x"), GraphError);
}

TEST(Csdfg, RejectsInvalidNodesAndEdges) {
  Csdfg g;
  EXPECT_THROW(g.add_node("bad", 0), GraphError);
  EXPECT_THROW(g.add_node("bad", -3), GraphError);
  const NodeId a = g.add_node("a", 1);
  EXPECT_THROW(g.add_edge(a, 7, 0, 1), GraphError);   // endpoint range
  EXPECT_THROW(g.add_edge(a, a, -1, 1), GraphError);  // negative delay
  EXPECT_THROW(g.add_edge(a, a, 0, 1), GraphError);   // zero-delay self-loop
  EXPECT_THROW(g.add_edge(a, a, 1, 0), GraphError);   // zero volume
  EXPECT_NO_THROW(g.add_edge(a, a, 1, 1));            // delayed self-loop ok
}

TEST(Csdfg, SetDelayEnforcesInvariants) {
  Csdfg g = two_node_loop();
  g.set_delay(1, 4);
  EXPECT_EQ(g.edge(1).delay, 4);
  EXPECT_THROW(g.set_delay(1, -1), GraphError);
  Csdfg s;
  const NodeId a = s.add_node("a", 1);
  const EdgeId self = s.add_edge(a, a, 2, 1);
  EXPECT_THROW(s.set_delay(self, 0), GraphError);
}

TEST(Csdfg, TotalsAggregate) {
  const Csdfg g = two_node_loop();
  EXPECT_EQ(g.total_computation(), 3);
  EXPECT_EQ(g.total_delay(), 1);
}

TEST(Csdfg, LegalityDetectsZeroDelayCycles) {
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 0, 1);
  EXPECT_TRUE(g.is_legal());
  g.add_edge(b, a, 0, 1);  // zero-delay cycle a->b->a
  EXPECT_FALSE(g.is_legal());
  EXPECT_THROW(g.require_legal(), GraphError);
  // Giving the back edge a delay restores legality.
  g.set_delay(1, 1);
  EXPECT_TRUE(g.is_legal());
  EXPECT_NO_THROW(g.require_legal());
}

TEST(Csdfg, LegalityHandlesLongerCycles) {
  Csdfg g;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i), 1);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 2, 0);
  g.add_edge(2, 3, 0);
  g.add_edge(3, 0, 0);
  EXPECT_FALSE(g.is_legal());
  g.set_delay(3, 2);
  EXPECT_TRUE(g.is_legal());
}

TEST(Csdfg, ParallelEdgesAreAllowed) {
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  g.add_edge(a, b, 0, 1);
  g.add_edge(a, b, 2, 3);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_edges(a).size(), 2u);
}

TEST(Csdfg, AccessorsAreContractChecked) {
  const Csdfg g = two_node_loop();
  EXPECT_THROW((void)g.node(5), ContractViolation);
  EXPECT_THROW((void)g.edge(5), ContractViolation);
  EXPECT_THROW((void)g.out_edges(5), ContractViolation);
}

}  // namespace
}  // namespace ccs
