// Tests of the schedule certifier (src/analysis/certify.hpp): the
// bad_schedules mutation corpus, the run-level audits (retiming legality,
// Theorem 4.4 monotonicity, claim bookkeeping), the unfold cross-check,
// trace auditing, and the `ccsched certify` CLI surface.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/certify.hpp"
#include "analysis/rules.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "cli/cli.hpp"
#include "core/cyclo_compaction.hpp"
#include "io/schedule_format.hpp"
#include "io/text_format.hpp"
#include "workloads/generator.hpp"

namespace ccs {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(CCS_EXAMPLES_DATA_DIR) + "/bad_schedules/" + name;
}

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args,
              const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  const int code = run_cli(args, in, out, err);
  return {code, out.str(), err.str()};
}

Csdfg corpus_graph() {
  return parse_csdfg(slurp_file(corpus_path("graph.csdfg")));
}

/// Certifies a schedule text against the corpus graph on linear_array 2.
DiagnosticBag certify_text(const std::string& sched_text,
                           const std::string& label = "<schedule>") {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  DiagnosticBag bag;
  const RawSchedule raw = parse_raw_schedule(sched_text, label, bag);
  (void)certify_schedule(g, raw, topo, comm, {}, bag);
  bag.finalize();
  return bag;
}

constexpr const char* kValidSchedule =
    "schedule 5 2\n"
    "place a 1 1\n"
    "place b 1 3\n"
    "place c 1 4\n"
    "place d 1 5\n";

// ---------------------------------------------------------------------------
// The mutation corpus: every file fires exactly its own code.

const char* const kCorpus[] = {
    "s001_bogus_directive.sched", "s002_missing_task.sched",
    "s003_out_of_table.sched",    "s004_overlapping_tasks.sched",
    "s005_issue_conflict.sched",  "s006_broken_dependence.sched",
    "s007_psl_overrun.sched",     "s008_illegal_retiming.sched",
};

std::string expected_code(const std::string& file) {
  // "s004_..." -> "CCS-S004"
  return "CCS-S" + file.substr(1, 3);
}

TEST(CertifyCorpus, EveryFileFiresExactlyItsOwnCode) {
  for (const std::string file : kCorpus) {
    const DiagnosticBag bag = certify_text(slurp_file(corpus_path(file)), file);
    ASSERT_FALSE(bag.empty()) << file;
    for (const Diagnostic& d : bag.diagnostics())
      EXPECT_EQ(d.code, expected_code(file)) << file << ": " << d.message;
    EXPECT_TRUE(bag.fails(false)) << file;
  }
}

TEST(CertifyCorpus, ValidReferenceCertifiesClean) {
  const DiagnosticBag bag = certify_text(kValidSchedule);
  EXPECT_TRUE(bag.empty()) << render_text(bag);
}

TEST(CertifyCorpus, CorpusAndUnitTestsCoverEveryScheduleRule) {
  std::set<std::string> covered;
  for (const std::string file : kCorpus) covered.insert(expected_code(file));
  // Run-level and trace-level codes are pinned by the unit tests below.
  // CCS-S016 (cached-translation re-certification) is pinned end to end in
  // test_solver.cpp and test_canon.cpp via SolveCache::corrupt_entries_for_test.
  for (const char* code : {"CCS-S009", "CCS-S010", "CCS-S011", "CCS-S012",
                           "CCS-S013", "CCS-S014", "CCS-S015", "CCS-S016"})
    covered.insert(code);
  for (const LintRule& r : all_rules()) {
    if (r.code.rfind("CCS-S", 0) != 0) continue;
    EXPECT_TRUE(covered.count(std::string(r.code)))
        << r.code << " has neither a corpus file nor a unit test";
  }
}

// ---------------------------------------------------------------------------
// CCS-S015: the sound-bound cross-check (analysis/bounds.hpp).  A truly
// clean schedule can never trip it — the local composite is sound for the
// graph's exact delay placement — so the diagnostic is pinned through the
// exposed entry point with a claimed length no real schedule can have.

TEST(CertifyBoundCrossCheck, ImpossiblyShortLengthIsS015) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  DiagnosticBag bag;
  // The corpus graph's local composite on linear_array 2 is 4 (CCS-B004:
  // critical cycle a->b->c->a), so a claimed clean length of 3 is a proof
  // that the bound engine or the certifier is broken.
  EXPECT_FALSE(cross_check_schedule_bound(g, /*length=*/3, {1, 1},
                                          /*pipelined=*/false, comm,
                                          SourceSpan{"<probe>", 0}, bag));
  bag.finalize();
  ASSERT_EQ(bag.size(), 1u);
  EXPECT_EQ(bag.diagnostics()[0].code, "CCS-S015");
  // The finding names the dominant pass and carries its witness so the
  // reader can re-derive the violated bound by hand.
  EXPECT_NE(bag.diagnostics()[0].message.find("CCS-B004"),
            std::string::npos)
      << bag.diagnostics()[0].message;
  EXPECT_TRUE(bag.fails(false));
}

TEST(CertifyBoundCrossCheck, FeasibleLengthIsClean) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  DiagnosticBag bag;
  // Length 5 is achievable (kValidSchedule), so the cross-check is quiet;
  // length 4 sits exactly on the bound and must also pass (the bound is a
  // floor, not a strict one).
  EXPECT_TRUE(cross_check_schedule_bound(g, 5, {1, 1}, false, comm,
                                         SourceSpan{"<probe>", 0}, bag));
  EXPECT_TRUE(cross_check_schedule_bound(g, 4, {1, 1}, false, comm,
                                         SourceSpan{"<probe>", 0}, bag));
  bag.finalize();
  EXPECT_TRUE(bag.empty()) << render_text(bag);
}

// ---------------------------------------------------------------------------
// File-path details: spans, resolution problems, machine mismatch.

TEST(CertifySchedule, AnchorsFindingsToTheOffendingLine) {
  const DiagnosticBag bag =
      certify_text(slurp_file(corpus_path("s004_overlapping_tasks.sched")),
                   "overlap.sched");
  ASSERT_EQ(bag.size(), 1u);
  EXPECT_EQ(bag.diagnostics()[0].span.file, "overlap.sched");
  EXPECT_EQ(bag.diagnostics()[0].span.line, 6u);  // the `place d 1 2` line
}

TEST(CertifySchedule, ResolutionProblemsAreS001) {
  const DiagnosticBag bag = certify_text(
      "schedule 5 2\n"
      "place a 1 1\n"
      "place ghost 1 3\n"   // unknown task
      "place a 2 1\n"       // placed twice
      "place b 9 3\n"       // pe out of range
      "place c 1 4\n"
      "place d 1 5\n");
  std::size_t s001 = 0;
  for (const Diagnostic& d : bag.diagnostics()) s001 += d.code == "CCS-S001";
  EXPECT_EQ(s001, 3u) << render_text(bag);
  // b was skipped by the bad pe, so completeness also fires.
  bool missing_b = false;
  for (const Diagnostic& d : bag.diagnostics())
    missing_b |= d.code == "CCS-S002" &&
                 d.message.find("'b'") != std::string::npos;
  EXPECT_TRUE(missing_b) << render_text(bag);
}

TEST(CertifySchedule, ProcessorCountMustMatchTheArchitecture) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(3);
  const StoreAndForwardModel comm(topo);
  DiagnosticBag bag;
  const RawSchedule raw =
      parse_raw_schedule(kValidSchedule, "<schedule>", bag);
  EXPECT_FALSE(certify_schedule(g, raw, topo, comm, {}, bag));
  bag.finalize();
  ASSERT_EQ(bag.size(), 1u) << render_text(bag);
  EXPECT_EQ(bag.diagnostics()[0].code, "CCS-S001");
  EXPECT_NE(bag.diagnostics()[0].message.find("declares 2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Run-level audits.

CycloCompactionResult compact_paper(RemapPolicy policy, const Csdfg& g,
                                    const Topology& topo,
                                    const CommModel& comm) {
  CycloCompactionOptions opt;
  opt.policy = policy;
  return cyclo_compact(g, topo, comm, opt);
}

TEST(CertifyRun, CleanRunCertifies) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  for (const RemapPolicy policy :
       {RemapPolicy::kWithRelaxation, RemapPolicy::kWithoutRelaxation}) {
    const CycloCompactionResult res = compact_paper(policy, g, topo, comm);
    DiagnosticBag bag;
    EXPECT_TRUE(certify_compaction_run(g, res, comm, policy, "<run>", {}, bag))
        << render_text(bag);
    EXPECT_TRUE(bag.empty()) << render_text(bag);
  }
}

TEST(CertifyRun, TamperedLengthTraceIsNonMonotone) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  CycloCompactionResult res =
      compact_paper(RemapPolicy::kWithoutRelaxation, g, topo, comm);
  ASSERT_FALSE(res.length_trace.empty());
  res.length_trace.front() = res.startup_length() + 2;
  DiagnosticBag bag;
  EXPECT_FALSE(certify_compaction_run(
      g, res, comm, RemapPolicy::kWithoutRelaxation, "<run>", {}, bag));
  bag.finalize();
  bool s009 = false;
  for (const Diagnostic& d : bag.diagnostics()) s009 |= d.code == "CCS-S009";
  EXPECT_TRUE(s009) << render_text(bag);
  // The same tampering is tolerated under the relaxation policy (though the
  // claim bookkeeping may still complain if it shifts the minimum).
  DiagnosticBag relaxed;
  (void)certify_compaction_run(g, res, comm, RemapPolicy::kWithRelaxation,
                               "<run>", {}, relaxed);
  for (const Diagnostic& d : relaxed.diagnostics())
    EXPECT_NE(d.code, "CCS-S009") << d.message;
}

TEST(CertifyRun, TamperedBestClaimsAreS010) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  CycloCompactionResult res =
      compact_paper(RemapPolicy::kWithRelaxation, g, topo, comm);
  res.best_pass += 7;
  DiagnosticBag bag;
  EXPECT_FALSE(certify_compaction_run(
      g, res, comm, RemapPolicy::kWithRelaxation, "<run>", {}, bag));
  bag.finalize();
  bool s010 = false;
  for (const Diagnostic& d : bag.diagnostics()) s010 |= d.code == "CCS-S010";
  EXPECT_TRUE(s010) << render_text(bag);
}

TEST(CertifyRun, TamperedRetimingIsCaught) {
  const Csdfg g = corpus_graph();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  CycloCompactionResult res =
      compact_paper(RemapPolicy::kWithRelaxation, g, topo, comm);
  // Pull enough retiming out of task a to drive some original edge delay
  // negative (a has an in-edge with finite delay).
  res.retiming.set(0, res.retiming.of(0) + 100);
  DiagnosticBag bag;
  EXPECT_FALSE(certify_compaction_run(
      g, res, comm, RemapPolicy::kWithRelaxation, "<run>", {}, bag));
  bag.finalize();
  bool coded = false;
  for (const Diagnostic& d : bag.diagnostics())
    coded |= d.code == "CCS-S008" || d.code == "CCS-S010";
  EXPECT_TRUE(coded) << render_text(bag);
}

// ---------------------------------------------------------------------------
// Property sweep: everything the scheduler emits certifies clean, through
// both the in-memory and the file round-trip paths.

TEST(CertifySweep, SchedulerOutputAlwaysCertifies) {
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomDfgConfig cfg;
    cfg.num_nodes = 12;
    cfg.num_layers = 3;
    cfg.num_back_edges = 3;
    cfg.max_time = 3;
    cfg.max_volume = 3;
    cfg.max_delay = 3;
    const Csdfg g = random_csdfg(cfg, seed);
    for (const RemapPolicy policy :
         {RemapPolicy::kWithRelaxation, RemapPolicy::kWithoutRelaxation}) {
      const CycloCompactionResult res = compact_paper(policy, g, topo, comm);
      DiagnosticBag bag;
      EXPECT_TRUE(
          certify_compaction_run(g, res, comm, policy, "<sweep>", {}, bag))
          << "seed " << seed << '\n'
          << render_text(bag);

      // File round-trip: serialize with retime provenance, re-parse raw,
      // certify against the retimed graph.
      const std::string text =
          serialize_schedule(res.retimed_graph, res.best, &res.retiming);
      DiagnosticBag file_bag;
      const RawSchedule raw =
          parse_raw_schedule(text, "<round-trip>", file_bag);
      EXPECT_TRUE(certify_schedule(res.retimed_graph, raw, topo, comm, {},
                                   file_bag))
          << "seed " << seed << '\n'
          << render_text(file_bag);
    }
  }
}

// ---------------------------------------------------------------------------
// Trace audits (structural; the replay path is covered in test_obs.cpp).

TEST(CertifyTrace, StructuralAuditCatchesGapsAndUnknownKinds) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"pass_start\",\"pass\":1,\"length\":5}\n"
      "{\"seq\":2,\"kind\":\"warp_drive\"}\n"
      "not json at all\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  std::size_t s013 = 0;
  for (const Diagnostic& d : bag.diagnostics()) s013 += d.code == "CCS-S013";
  EXPECT_EQ(s013, 3u) << render_text(bag);  // gap + unknown kind + bad JSON
}

TEST(CertifyTrace, BestLengthBookkeepingIsVerified) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"pass_start\",\"pass\":1,\"length\":6}\n"
      "{\"seq\":1,\"kind\":\"pass_end\",\"pass\":1,\"length\":5,"
      "\"improved\":true,\"best_length\":4}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  ASSERT_EQ(bag.size(), 1u) << render_text(bag);
  EXPECT_EQ(bag.diagnostics()[0].code, "CCS-S010");
}

TEST(CertifyTrace, StrictPolicyRejectsGrowth) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"pass_start\",\"pass\":1,\"length\":5}\n"
      "{\"seq\":1,\"kind\":\"pass_end\",\"pass\":1,\"length\":7,"
      "\"improved\":false,\"best_length\":5}\n";
  DiagnosticBag strict;
  EXPECT_FALSE(audit_trace(trace, "<trace>", true, strict));
  strict.finalize();
  bool s009 = false;
  for (const Diagnostic& d : strict.diagnostics()) s009 |= d.code == "CCS-S009";
  EXPECT_TRUE(s009) << render_text(strict);
  DiagnosticBag relaxed;
  EXPECT_TRUE(audit_trace(trace, "<trace>", false, relaxed))
      << render_text(relaxed);
}

// ---------------------------------------------------------------------------
// Span structure audits (CCS-S014).  Span events ride the same stream as
// pipeline events; the audit checks per-thread begin/end nesting and
// timestamp monotonicity without replaying the wall-clock values.

std::size_t count_code(const DiagnosticBag& bag, const std::string& code) {
  std::size_t n = 0;
  for (const Diagnostic& d : bag.diagnostics()) n += d.code == code;
  return n;
}

TEST(CertifyTrace, WellFormedSpansAuditClean) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"compact\",\"tid\":0,"
      "\"depth\":0,\"ts_ns\":10}\n"
      "{\"seq\":1,\"kind\":\"span_begin\",\"name\":\"compact.pass\","
      "\"tid\":0,\"depth\":1,\"ts_ns\":20}\n"
      "{\"seq\":2,\"kind\":\"span_end\",\"name\":\"compact.pass\",\"tid\":0,"
      "\"depth\":1,\"ts_ns\":30,\"dur_ns\":10}\n"
      "{\"seq\":3,\"kind\":\"span_end\",\"name\":\"compact\",\"tid\":0,"
      "\"depth\":0,\"ts_ns\":40,\"dur_ns\":30}\n";
  DiagnosticBag bag;
  EXPECT_TRUE(audit_trace(trace, "<trace>", false, bag)) << render_text(bag);
}

TEST(CertifyTrace, UnterminatedSpanScopeIsFlagged) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"compact\",\"tid\":0,"
      "\"depth\":0,\"ts_ns\":10}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  EXPECT_EQ(count_code(bag, "CCS-S014"), 1u) << render_text(bag);
}

TEST(CertifyTrace, OutOfOrderSpanTimestampIsFlagged) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"remap\",\"tid\":2,"
      "\"depth\":0,\"ts_ns\":100}\n"
      "{\"seq\":1,\"kind\":\"span_end\",\"name\":\"remap\",\"tid\":2,"
      "\"depth\":0,\"ts_ns\":50,\"dur_ns\":5}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  EXPECT_GE(count_code(bag, "CCS-S014"), 1u) << render_text(bag);
}

TEST(CertifyTrace, SpanEndOnUnknownThreadTagIsFlagged) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_end\",\"name\":\"remap\",\"tid\":7,"
      "\"depth\":0,\"ts_ns\":50,\"dur_ns\":5}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  EXPECT_EQ(count_code(bag, "CCS-S014"), 1u) << render_text(bag);
}

TEST(CertifyTrace, MisnestedSpanNameIsFlagged) {
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"compact\",\"tid\":0,"
      "\"depth\":0,\"ts_ns\":10}\n"
      "{\"seq\":1,\"kind\":\"span_begin\",\"name\":\"remap\",\"tid\":0,"
      "\"depth\":1,\"ts_ns\":20}\n"
      "{\"seq\":2,\"kind\":\"span_end\",\"name\":\"compact\",\"tid\":0,"
      "\"depth\":1,\"ts_ns\":30,\"dur_ns\":10}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  EXPECT_GE(count_code(bag, "CCS-S014"), 1u) << render_text(bag);
}

TEST(CertifyTrace, SpanEventMissingFieldsIsFlagged) {
  // No tid / ts_ns, and a negative thread tag: both malformed.
  const std::string trace =
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"compact\"}\n"
      "{\"seq\":1,\"kind\":\"span_begin\",\"name\":\"remap\",\"tid\":-1,"
      "\"ts_ns\":10}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(trace, "<trace>", false, bag));
  bag.finalize();
  EXPECT_EQ(count_code(bag, "CCS-S014"), 2u) << render_text(bag);
}

// ---------------------------------------------------------------------------
// CLI surface.

TEST(CertifyCli, CorpusFailsInEveryFormatWithItsCode) {
  for (const std::string file : kCorpus) {
    for (const char* format : {"text", "jsonl", "sarif"}) {
      const CliResult r =
          cli({"certify", corpus_path(file), "--graph",
               corpus_path("graph.csdfg"), "--arch", "linear_array 2",
               "--format", format});
      EXPECT_EQ(r.code, 1) << file << ' ' << format << '\n' << r.err;
      EXPECT_NE(r.out.find(expected_code(file)), std::string::npos)
          << file << ' ' << format << '\n'
          << r.out;
    }
  }
}

TEST(CertifyCli, CleanScheduleReportsNoFindings) {
  const CliResult r = cli({"certify", "-", "--graph",
                           corpus_path("graph.csdfg"), "--arch",
                           "linear_array 2"},
                          kValidSchedule);
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("certified: no findings"), std::string::npos);
}

TEST(CertifyCli, SarifNamesTheCertifyDriver) {
  const CliResult r = cli({"certify", "-", "--graph",
                           corpus_path("graph.csdfg"), "--arch",
                           "linear_array 2", "--format", "sarif"},
                          kValidSchedule);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"name\":\"ccsched-certify\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"version\":\"2.1.0\""), std::string::npos);
}

TEST(CertifyCli, UsageErrorsAreCode2) {
  EXPECT_EQ(cli({"certify"}).code, 2);                          // no --graph
  EXPECT_EQ(cli({"certify", "x", "--graph", "y"}).code, 2);     // no --arch
  EXPECT_EQ(cli({"certify", "x", "--graph", corpus_path("graph.csdfg"),
                 "--arch", "linear_array 2", "--format", "yaml"})
                .code,
            2);
}

TEST(CertifyCli, ScheduleCertifyFlagCertifiesItsOwnOutput) {
  const std::string graph =
      std::string(CCS_EXAMPLES_DATA_DIR) + "/paper_fig1b.csdfg";
  for (const char* policy : {"relax", "strict", "startup", "modulo"}) {
    const CliResult r = cli({"schedule", graph, "--arch", "mesh 2 2",
                             "--policy", policy, "--quiet", "--certify"});
    EXPECT_EQ(r.code, 0) << policy << '\n' << r.err;
    EXPECT_NE(r.out.find("[certified]"), std::string::npos) << r.out;
  }
}

TEST(CertifyCli, SimulateCertifyFlagAcceptsAValidTable) {
  const std::string gfile = corpus_path("graph.csdfg");
  const CliResult sched = cli({"certify", "-", "--graph", gfile, "--arch",
                               "linear_array 2"},
                              kValidSchedule);
  ASSERT_EQ(sched.code, 0);
  // A valid table passes --certify and the simulation runs.
  std::ostringstream sfile_content;
  const std::string dir = ::testing::TempDir();
  const std::string sfile = dir + "/certify_sim.sched";
  {
    std::ofstream f(sfile);
    f << kValidSchedule;
  }
  const CliResult sim = cli({"simulate", gfile, sfile, "--arch",
                             "linear_array 2", "--iterations", "8",
                             "--certify"});
  EXPECT_EQ(sim.code, 0) << sim.err;
}

}  // namespace
}  // namespace ccs
