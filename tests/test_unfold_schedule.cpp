// Unit tests for unfold-and-compact (fractional initiation intervals).
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/iteration_bound.hpp"
#include "core/unfold_schedule.hpp"
#include "core/validator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class UnfoldScheduleTest : public ::testing::Test {
protected:
  Topology cc_ = make_complete(8);
  StoreAndForwardModel comm_{cc_};
  CycloCompactionOptions opt_ = [] {
    CycloCompactionOptions o;
    o.policy = RemapPolicy::kWithRelaxation;
    return o;
  }();
};

TEST_F(UnfoldScheduleTest, FactorOneMatchesPlainCompaction) {
  const Csdfg g = paper_example6();
  const auto r = unfold_and_compact(g, 1, cc_, comm_, opt_);
  const auto plain = cyclo_compact(g, cc_, comm_, opt_);
  EXPECT_EQ(r.run.best_length(), plain.best_length());
  EXPECT_DOUBLE_EQ(r.rate(), static_cast<double>(plain.best_length()));
}

TEST_F(UnfoldScheduleTest, SchedulesAreValidForTheUnfoldedGraph) {
  for (int f : {2, 3}) {
    const auto r =
        unfold_and_compact(paper_example6(), f, cc_, comm_, opt_);
    EXPECT_TRUE(
        validate_schedule(r.run.retimed_graph, r.run.best, comm_).ok())
        << "f=" << f;
    EXPECT_EQ(r.factor, f);
    EXPECT_EQ(r.unfolded.graph.node_count(), 6u * static_cast<unsigned>(f));
  }
}

TEST_F(UnfoldScheduleTest, RateNeverBeatsTheIterationBound) {
  const Csdfg g = paper_example6();  // bound 3
  for (int f : {1, 2, 3, 4}) {
    const auto r = unfold_and_compact(g, f, cc_, comm_, opt_);
    EXPECT_GE(r.rate() + 1e-9, iteration_bound(g).value()) << "f=" << f;
  }
}

TEST_F(UnfoldScheduleTest, UnfoldingCanBreakTheIntegralityFloor) {
  // A two-task loop with bound 3/2: any single-iteration schedule needs
  // L >= 2, but unfolding by 2 can reach rate 3/2.
  Csdfg g("frac");
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 2);
  g.add_edge(a, b, 0, 1);
  g.add_edge(b, a, 2, 1);
  EXPECT_EQ(iteration_bound(g), (Rational{3, 2}));

  const auto f1 = unfold_and_compact(g, 1, cc_, comm_, opt_);
  EXPECT_GE(f1.run.best_length(), 2);

  const auto f2 = unfold_and_compact(g, 2, cc_, comm_, opt_);
  EXPECT_LE(f2.rate(), f1.rate() + 1e-9);
  // The unfolded bound doubles, so the best reachable length is 3 = 2*1.5.
  EXPECT_GE(f2.run.best_length(), 3);
}

TEST_F(UnfoldScheduleTest, CopyMapIsUsableForInstanceLookup) {
  const auto r = unfold_and_compact(paper_example6(), 2, cc_, comm_, opt_);
  const Csdfg& ug = r.unfolded.graph;
  for (NodeId v = 0; v < 6; ++v) {
    for (std::size_t i = 0; i < 2; ++i) {
      const NodeId copy = r.unfolded.copy_of[v][i];
      EXPECT_LT(copy, ug.node_count());
      EXPECT_TRUE(r.run.best.is_placed(copy));
    }
  }
}

}  // namespace
}  // namespace ccs
