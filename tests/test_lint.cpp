// Tests of the static analysis subsystem (src/analysis): the diagnostics
// engine, the lint pass framework, the malformed-graph corpus under
// examples/data/bad/, and the `ccsched lint` CLI command.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/canon.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "analysis/rules.hpp"
#include "cli/cli.hpp"
#include "io/text_format.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

std::string bad_path(const std::string& name) {
  return std::string(CCS_EXAMPLES_DATA_DIR) + "/bad/" + name;
}

std::string good_path(const std::string& name) {
  return std::string(CCS_EXAMPLES_DATA_DIR) + "/" + name;
}

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Runs the full lint pipeline (lenient parse + passes) over a file.
DiagnosticBag lint_file(const std::string& path, const char* arch,
                        const std::vector<int>& speeds = {}) {
  DiagnosticBag bag;
  const ParsedCsdfg parsed = parse_csdfg_with_spans(slurp_file(path), path, bag);
  std::optional<Topology> topo;
  LintOptions options;
  if (arch != nullptr) {
    topo = parse_topology(arch);
    options.topology = &*topo;
  }
  options.pe_speeds = speeds;
  run_lint_passes({parsed.graph, parsed.spans, options}, bag);
  bag.finalize();
  return bag;
}

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult cli(const std::vector<std::string>& args,
              const std::string& stdin_text = "") {
  std::istringstream in(stdin_text);
  std::ostringstream out, err;
  const int code = run_cli(args, in, out, err);
  return {code, out.str(), err.str()};
}

// ---------------------------------------------------------------------------
// The malformed-graph corpus: one file per lint code, each firing exactly
// its own diagnostic at the documented line (0 = whole file).

struct CorpusCase {
  const char* file;
  const char* code;
  std::size_t line;
  const char* arch;     // nullptr = graph-only lint
  const char* speeds;   // nullptr = homogeneous
};

const CorpusCase kCorpus[] = {
    {"p001_syntax_error.csdfg", "CCS-P001", 3, nullptr, nullptr},
    {"p002_unknown_node.csdfg", "CCS-P002", 6, nullptr, nullptr},
    {"p003_misplaced_graph.csdfg", "CCS-P003", 6, nullptr, nullptr},
    {"g001_zero_delay_cycle.csdfg", "CCS-G001", 5, nullptr, nullptr},
    {"g002_zero_delay_self_loop.csdfg", "CCS-G002", 6, nullptr, nullptr},
    {"g003_non_positive_time.csdfg", "CCS-G003", 3, nullptr, nullptr},
    {"g004_non_positive_volume.csdfg", "CCS-G004", 5, nullptr, nullptr},
    {"g005_negative_delay.csdfg", "CCS-G005", 5, nullptr, nullptr},
    {"g006_duplicate_edge.csdfg", "CCS-G006", 7, nullptr, nullptr},
    {"g007_isolated_node.csdfg", "CCS-G007", 5, nullptr, nullptr},
    {"g008_delay_starved.csdfg", "CCS-G008", 6, nullptr, nullptr},
    {"a001_insufficient_processors.csdfg", "CCS-A001", 0, "linear_array 2",
     nullptr},
    {"a002_oversized_communication.csdfg", "CCS-A002", 5, "mesh 2 2",
     nullptr},
    {"a003_speed_list_mismatch.csdfg", "CCS-A003", 0, "complete 3", "1,2"},
};

std::vector<int> parse_speed_list(const char* csv) {
  std::vector<int> speeds;
  if (csv == nullptr) return speeds;
  std::istringstream ls(csv);
  std::string tok;
  while (std::getline(ls, tok, ',')) speeds.push_back(std::stoi(tok));
  return speeds;
}

TEST(LintCorpus, EachFileFiresExactlyItsCode) {
  for (const CorpusCase& c : kCorpus) {
    const DiagnosticBag bag =
        lint_file(bad_path(c.file), c.arch, parse_speed_list(c.speeds));
    ASSERT_EQ(bag.size(), 1u) << c.file << '\n' << render_text(bag);
    EXPECT_EQ(bag.diagnostics()[0].code, c.code) << c.file;
    EXPECT_EQ(bag.diagnostics()[0].span.line, c.line) << c.file;
    EXPECT_EQ(bag.diagnostics()[0].span.file, bad_path(c.file));
  }
}

TEST(LintCorpus, CorpusCoversEveryRule) {
  std::set<std::string> covered;
  for (const CorpusCase& c : kCorpus) covered.insert(c.code);
  for (const LintRule& r : all_rules()) {
    // Schedule-certification rules (CCS-S###) are pinned by the
    // bad_schedules corpus in test_certify.cpp, fault-spec rules
    // (CCS-F###) by the bad-spec corpus in test_robust.cpp, solver
    // request rules (CCS-E###) by test_solver.cpp, and bound notes
    // (CCS-B###) by test_bounds.cpp — none come from lint inputs.
    // Canonical-form rules (CCS-N###) are corpus-level: N001/N003 compare
    // graphs *across* files (audit_corpus) and N002 is a note, which would
    // break the every-bad-file-fails---werror invariant.  They are pinned
    // by the dedicated tests below and in test_canon.cpp instead.
    if (r.code.rfind("CCS-S", 0) == 0 || r.code.rfind("CCS-F", 0) == 0 ||
        r.code.rfind("CCS-E", 0) == 0 || r.code.rfind("CCS-B", 0) == 0 ||
        r.code.rfind("CCS-N", 0) == 0)
      continue;
    EXPECT_TRUE(covered.count(std::string(r.code)))
        << r.code << " has no corpus file";
  }
}

TEST(LintCorpus, ShippedGoodExamplesLintClean) {
  for (const char* file : {"paper_fig1b.csdfg", "macroblock.csdfg"}) {
    const DiagnosticBag bag = lint_file(good_path(file), "mesh 2 2");
    EXPECT_TRUE(bag.empty()) << file << '\n' << render_text(bag);
  }
}

// ---------------------------------------------------------------------------
// CLI: exit codes, --werror, and the three output formats.

TEST(LintCli, EveryCorpusFileFailsUnderWerrorInAllFormats) {
  for (const CorpusCase& c : kCorpus) {
    for (const char* format : {"text", "jsonl", "sarif"}) {
      std::vector<std::string> args{"lint", bad_path(c.file), "--werror",
                                    "--format", format};
      if (c.arch != nullptr) {
        args.emplace_back("--arch");
        args.emplace_back(c.arch);
      }
      if (c.speeds != nullptr) {
        args.emplace_back("--speeds");
        args.emplace_back(c.speeds);
      }
      const CliResult r = cli(args);
      EXPECT_EQ(r.code, 1) << c.file << " --format " << format << '\n'
                           << r.out << r.err;
      EXPECT_NE(r.out.find(c.code), std::string::npos)
          << c.file << " --format " << format << '\n'
          << r.out;
    }
  }
}

TEST(LintCli, TextFormatPointsAtTheOffendingLine) {
  const CliResult r = cli({"lint", bad_path("g001_zero_delay_cycle.csdfg")});
  EXPECT_EQ(r.code, 1);  // errors fail even without --werror
  EXPECT_NE(r.out.find("g001_zero_delay_cycle.csdfg:5: error:"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("[CCS-G001]"), std::string::npos);
}

TEST(LintCli, WarningsPassWithoutWerrorAndFailWithIt) {
  const std::string path = bad_path("g007_isolated_node.csdfg");
  EXPECT_EQ(cli({"lint", path}).code, 0);
  EXPECT_EQ(cli({"lint", path, "--werror"}).code, 1);
}

TEST(LintCli, CleanGraphProducesNoOutputAndExitsZero) {
  const CliResult r =
      cli({"lint", good_path("macroblock.csdfg"), "--arch", "mesh 2 2",
           "--werror"});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_EQ(r.out, "");
}

TEST(LintCli, RejectsUnknownFormatAndOrphanSpeeds) {
  EXPECT_EQ(cli({"lint", "-", "--format", "xml"}, "node a 1\n").code, 2);
  EXPECT_EQ(cli({"lint", "-", "--speeds", "1,2"}, "node a 1\n").code, 2);
}

TEST(LintCli, ReadsStdin) {
  const CliResult r = cli({"lint", "-"}, "node a 1\nedge a a 0 1\n");
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("<stdin>:2"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("CCS-G002"), std::string::npos);
}

TEST(LintCli, SchedulePreflightWarnsOnStderrWithoutFailing) {
  const std::string starved =
      "graph s\nnode a 5\nnode b 5\nedge a b 0 1\nedge b a 1 1\n";
  const CliResult r =
      cli({"schedule", "-", "--arch", "complete 2", "--quiet"}, starved);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("CCS-G008"), std::string::npos) << r.err;
  EXPECT_EQ(r.out.find("CCS-G008"), std::string::npos);  // stdout stays clean
}

// ---------------------------------------------------------------------------
// Renderers.

DiagnosticBag two_findings() {
  DiagnosticBag bag;
  bag.add("CCS-G007", {"g.csdfg", 4}, "node 'x' has no incident edges");
  bag.add("CCS-G001", {"g.csdfg", 2}, "zero-delay cycle a -> a");
  bag.finalize();
  return bag;
}

TEST(Renderers, TextSortsByLineAndSummarizes) {
  const std::string text = render_text(two_findings());
  const auto first = text.find("g.csdfg:2: error:");
  const auto second = text.find("g.csdfg:4: warning:");
  ASSERT_NE(first, std::string::npos) << text;
  ASSERT_NE(second, std::string::npos) << text;
  EXPECT_LT(first, second);
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 note(s)"),
            std::string::npos);
}

TEST(Renderers, EmptyBagRendersNothing) {
  const DiagnosticBag bag;
  EXPECT_EQ(render_text(bag), "");
  EXPECT_EQ(render_jsonl(bag), "");
}

TEST(Renderers, JsonlEmitsOneObjectPerLine) {
  const std::string jsonl = render_jsonl(two_findings());
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"code\":\"CCS-G00"), std::string::npos);
    EXPECT_NE(line.find("\"line\":"), std::string::npos);
  }
  EXPECT_EQ(count, 2u);
}

TEST(DiagnosticBag, FinalizeDedupesExactDuplicates) {
  DiagnosticBag bag;
  bag.add("CCS-G007", {"g.csdfg", 4}, "node 'x' has no incident edges");
  bag.add("CCS-G007", {"g.csdfg", 4}, "node 'x' has no incident edges");
  bag.finalize();
  EXPECT_EQ(bag.size(), 1u);
}

TEST(DiagnosticBag, FailureRules) {
  DiagnosticBag warn_only;
  warn_only.add("CCS-G007", {"g", 1}, "w");
  EXPECT_FALSE(warn_only.fails(false));
  EXPECT_TRUE(warn_only.fails(true));
  DiagnosticBag with_error;
  with_error.add("CCS-G001", {"g", 1}, "e");
  EXPECT_TRUE(with_error.fails(false));
}

// ---------------------------------------------------------------------------
// SARIF: syntactic JSON validity plus the 2.1.0 schema shape.

/// Minimal recursive-descent JSON syntax checker (objects, arrays, strings
/// with escapes, numbers, literals).  Returns true iff `text` is one valid
/// JSON value with nothing but whitespace after it.
class JsonChecker {
public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Sarif, DocumentIsValidJsonWithTheSchemaShape) {
  const CliResult r = cli({"lint", bad_path("g001_zero_delay_cycle.csdfg"),
                           "--format", "sarif"});
  EXPECT_EQ(r.code, 1);
  EXPECT_TRUE(JsonChecker(r.out).valid()) << r.out;
  // Top-level shape.
  EXPECT_NE(r.out.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(r.out.find("\"$schema\":\"https://json.schemastore.org/"
                       "sarif-2.1.0.json\""),
            std::string::npos);
  // The driver advertises the full rule catalogue.
  EXPECT_NE(r.out.find("\"name\":\"ccsched-lint\""), std::string::npos);
  for (const LintRule& rule : all_rules())
    EXPECT_NE(r.out.find("\"id\":\"" + std::string(rule.code) + "\""),
              std::string::npos)
        << rule.code;
  // The result references the rule and the physical location.
  EXPECT_NE(r.out.find("\"ruleId\":\"CCS-G001\""), std::string::npos);
  EXPECT_NE(r.out.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(r.out.find("\"physicalLocation\""), std::string::npos);
  EXPECT_NE(r.out.find("\"startLine\":5"), std::string::npos);
}

TEST(Sarif, EmptyBagStillEmitsAValidRun) {
  const CliResult r = cli({"lint", good_path("paper_fig1b.csdfg"),
                           "--format", "sarif"});
  EXPECT_EQ(r.code, 0);
  EXPECT_TRUE(JsonChecker(r.out).valid()) << r.out;
  EXPECT_NE(r.out.find("\"results\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule catalogue invariants.

TEST(Rules, CodesAreUniqueAndLookupsRoundTrip) {
  std::set<std::string> codes;
  for (const LintRule& r : all_rules()) {
    EXPECT_TRUE(codes.insert(std::string(r.code)).second)
        << "duplicate " << r.code;
    const LintRule* found = find_rule(r.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->code, r.code);
    EXPECT_EQ(all_rules()[rule_index(r.code)].code, r.code);
    EXPECT_FALSE(r.summary.empty());
    EXPECT_FALSE(r.remedy.empty());
  }
  EXPECT_EQ(find_rule("CCS-X999"), nullptr);
  EXPECT_EQ(rule_index("CCS-X999"), all_rules().size());
}

TEST(Rules, EveryRegisteredPassHasACatalogueEntry) {
  for (const LintPass* pass : lint_passes())
    EXPECT_NE(find_rule(pass->rule().code), nullptr);
}

// ---------------------------------------------------------------------------
// Structured ParseError (the pair the diagnostics engine consumes).

TEST(ParseErrors, CarryTheStructuredLineMessagePair) {
  try {
    (void)parse_csdfg("node A 1\nnode B\n");
    FAIL() << "should have thrown";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.detail(), "node: expected <name> <time>");
    EXPECT_STREQ(e.what(), "line 2: node: expected <name> <time>");
  }
}

TEST(ParseErrors, ArchitectureMessagesEchoTheFullSpec) {
  for (const char* spec : {"mesh 4", "mesh four two", "megastructure 8",
                           "linear_array -3"}) {
    try {
      (void)parse_topology(spec);
      FAIL() << "should have thrown for '" << spec << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("'" + std::string(spec) + "'"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ParseErrors, LenientParseRecoversAMaximalGraph) {
  // One bad node time (clamped), one unresolvable edge (skipped): the
  // remaining structure must survive for downstream passes.
  DiagnosticBag bag;
  const ParsedCsdfg parsed = parse_csdfg_with_spans(
      "graph partial\nnode a 0\nnode b 1\nedge a b 1 1\nedge a z 0 1\n",
      "partial.csdfg", bag);
  bag.finalize();
  EXPECT_EQ(bag.size(), 2u) << render_text(bag);
  EXPECT_EQ(parsed.graph.node_count(), 2u);
  EXPECT_EQ(parsed.graph.edge_count(), 1u);
  EXPECT_EQ(parsed.graph.node(0).time, 1);  // clamped
  EXPECT_EQ(parsed.spans.graph_line, 1u);
  EXPECT_EQ(parsed.spans.node_lines, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(parsed.spans.edge_lines, (std::vector<std::size_t>{4}));
}

// ---------------------------------------------------------------------------
// The canonical-form rules (CCS-N###, analysis/canon.hpp).

TEST(CanonAudit, ShippedCorpusHasExactlyTheAnnotatedDuplicates) {
  // The CCS-N001 sweep over the workload library plus every good example
  // file.  Exactly two duplicates exist, both deliberate and annotated in
  // the files themselves: the shipped example files paper_fig1b/paper_fig7
  // are the library builders paper_example6/paper_example19, serialized.
  const Csdfg lib6 = paper_example6();
  const Csdfg lib19 = paper_example19();
  const Csdfg elliptic = elliptic_filter();
  const Csdfg lattice = lattice_filter();
  const Csdfg biquad = iir_biquad_cascade(2);
  const Csdfg fir = fir_filter(6);
  const Csdfg diffeq = diffeq_solver();
  const Csdfg corr = correlator(4);
  const Csdfg fig1b = parse_csdfg(slurp_file(good_path("paper_fig1b.csdfg")));
  const Csdfg fig7 = parse_csdfg(slurp_file(good_path("paper_fig7.csdfg")));
  const Csdfg macroblock =
      parse_csdfg(slurp_file(good_path("macroblock.csdfg")));

  DiagnosticBag bag;
  audit_corpus({{"paper_example6", &lib6},
                {"paper_example19", &lib19},
                {"elliptic_filter", &elliptic},
                {"lattice_filter", &lattice},
                {"iir_biquad_cascade(2)", &biquad},
                {"fir_filter(6)", &fir},
                {"diffeq_solver", &diffeq},
                {"correlator(4)", &corr},
                {"paper_fig1b.csdfg", &fig1b},
                {"paper_fig7.csdfg", &fig7},
                {"macroblock.csdfg", &macroblock}},
               bag);
  bag.finalize();
  ASSERT_EQ(bag.size(), 2u) << render_text(bag);
  EXPECT_EQ(bag.diagnostics()[0].code, "CCS-N001");
  EXPECT_EQ(bag.diagnostics()[0].span.file, "paper_fig1b.csdfg");
  EXPECT_NE(bag.diagnostics()[0].message.find("'paper_example6'"),
            std::string::npos)
      << bag.diagnostics()[0].message;
  EXPECT_EQ(bag.diagnostics()[1].code, "CCS-N001");
  EXPECT_EQ(bag.diagnostics()[1].span.file, "paper_fig7.csdfg");
  EXPECT_NE(bag.diagnostics()[1].message.find("'paper_example19'"),
            std::string::npos)
      << bag.diagnostics()[1].message;
}

TEST(LintPasses, AutomorphismGroupNoteFiresOnSymmetricGraph) {
  DiagnosticBag bag;
  const ParsedCsdfg parsed = parse_csdfg_with_spans(
      "graph twins\nnode a 1\nnode b 1\nedge a b 1 1\nedge b a 1 1\n",
      "twins.csdfg", bag);
  run_lint_passes({parsed.graph, parsed.spans, {}}, bag);
  bag.finalize();
  bool found = false;
  for (const Diagnostic& d : bag.diagnostics()) {
    if (d.code != "CCS-N002") continue;
    found = true;
    EXPECT_EQ(d.severity, Severity::kNote);
    EXPECT_NE(d.message.find("{a,b}"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("2 attribute-preserving"), std::string::npos)
        << d.message;
  }
  EXPECT_TRUE(found) << render_text(bag);
  // A note never fails the exit code, even under --werror.
  EXPECT_FALSE(DiagnosticBag{}.fails(true));
}

TEST(LintPasses, AutomorphismGroupStaysQuietOnAsymmetricGraphs) {
  const DiagnosticBag bag = lint_file(good_path("paper_fig1b.csdfg"), nullptr);
  for (const Diagnostic& d : bag.diagnostics())
    EXPECT_NE(d.code, "CCS-N002") << d.message;
}

}  // namespace
}  // namespace ccs
