// Tests of run budgets (core/budget.hpp): the property sweep the resilience
// subsystem depends on — a budgeted run is never worse than the start-up
// schedule, bit-identical across reruns, and announces why it stopped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/budget.hpp"
#include "core/cyclo_compaction.hpp"
#include "io/schedule_format.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

/// A clock that advances a fixed step on every reading: deadline budgets
/// fire at an exactly reproducible pass boundary.
class TickingClock final : public BudgetClock {
public:
  explicit TickingClock(long long step) : step_(step) {}
  [[nodiscard]] long long now_ms() const override { return now_ += step_; }

private:
  long long step_;
  mutable long long now_ = 0;
};

struct Bench {
  Csdfg g = paper_example19();
  Topology mesh = make_mesh(2, 2);
  StoreAndForwardModel comm{mesh};
};

std::string table_text(const CycloCompactionResult& r) {
  return serialize_schedule(r.retimed_graph, r.best, &r.retiming);
}

TEST(Budget, InactiveByDefault) {
  EXPECT_FALSE(RunBudget{}.active());
  RunBudget b;
  b.patience = 2;
  EXPECT_TRUE(b.active());
}

TEST(Budget, BudgetedRunNeverLongerThanTheStartupSchedule) {
  Bench bench;
  for (const int max_passes : {1, 2, 5, 17}) {
    CycloCompactionOptions opt;
    opt.budget.max_passes = max_passes;
    const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
    EXPECT_LE(res.best_length(), res.startup_length()) << max_passes;
  }
}

TEST(Budget, MaxPassesStopsExactlyThereAndSaysSo) {
  Bench bench;
  CycloCompactionOptions opt;
  opt.budget.max_passes = 2;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  EXPECT_EQ(res.length_trace.size(), 2u);
  EXPECT_EQ(res.stop_reason, "max-passes");
}

TEST(Budget, PatienceStopsAfterAStreakWithoutImprovement) {
  Bench bench;
  CycloCompactionOptions opt;
  opt.budget.patience = 1;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  EXPECT_EQ(res.stop_reason, "patience");
  // The pass right after the last improvement is where the streak ends.
  EXPECT_EQ(static_cast<int>(res.length_trace.size()), res.best_pass + 1);
}

TEST(Budget, DeadlineOnAnInjectedClockIsDeterministic) {
  Bench bench;
  const auto run = [&] {
    TickingClock clock(10);  // every reading advances 10ms
    CycloCompactionOptions opt;
    opt.budget.deadline_ms = 25;
    opt.budget.clock = &clock;
    return cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.stop_reason, "deadline");
  EXPECT_EQ(a.length_trace, b.length_trace);
  EXPECT_EQ(table_text(a), table_text(b));
}

TEST(Budget, RerunsAreBitIdentical) {
  Bench bench;
  CycloCompactionOptions opt;
  opt.budget.max_passes = 3;
  opt.budget.patience = 2;
  const auto a = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  const auto b = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.best_pass, b.best_pass);
  EXPECT_EQ(a.length_trace, b.length_trace);
  EXPECT_EQ(table_text(a), table_text(b));
}

TEST(Budget, UnbudgetedRunLeavesStopReasonEmpty) {
  Bench bench;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, {});
  EXPECT_TRUE(res.stop_reason.empty());
}

TEST(Budget, ExhaustionEmitsATraceEventWithTheReason) {
  Bench bench;
  for (const std::string reason : {"max-passes", "patience"}) {
    VectorSink sink;
    Tracer tracer(&sink);
    MetricsRegistry metrics;
    CycloCompactionOptions opt;
    if (reason == "max-passes")
      opt.budget.max_passes = 1;
    else
      opt.budget.patience = 1;
    const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt,
                                   ObsContext{&tracer, &metrics});
    EXPECT_EQ(res.stop_reason, reason);
    bool found = false;
    for (const std::string& line : sink.lines())
      if (line.find("\"kind\":\"budget_exhausted\"") != std::string::npos &&
          line.find("\"reason\":\"" + reason + "\"") != std::string::npos)
        found = true;
    EXPECT_TRUE(found) << reason;
    EXPECT_EQ(metrics.counter("compaction.budget_stops"), 1);
  }
}

TEST(Budget, StopTokenAloneMakesTheBudgetActive) {
  RunBudget b;
  class Never final : public BudgetStopToken {
  public:
    [[nodiscard]] bool stop_requested(int) const override { return false; }
  };
  const Never token;
  EXPECT_FALSE(b.active());
  b.stop = &token;
  EXPECT_TRUE(b.active());
}

TEST(Budget, StopTokenPreemptsAtTheFirstPassBoundary) {
  // The portfolio engine's preemption hook: a token that always asks to
  // stop must yield the start-up schedule with stop_reason "preempted"
  // before a single pass runs.
  class AlwaysStop final : public BudgetStopToken {
  public:
    [[nodiscard]] bool stop_requested(int) const override { return true; }
  };
  Bench bench;
  const AlwaysStop token;
  CycloCompactionOptions opt;
  opt.budget.stop = &token;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  EXPECT_EQ(res.stop_reason, "preempted");
  EXPECT_TRUE(res.length_trace.empty());
  EXPECT_EQ(res.best_length(), res.startup_length());
}

TEST(Budget, StopTokenSeesTheCurrentBest) {
  // A threshold token stops the run as soon as the incumbent is good
  // enough — the current best length is what the hook receives.
  class Threshold final : public BudgetStopToken {
  public:
    explicit Threshold(int limit) : limit_(limit) {}
    [[nodiscard]] bool stop_requested(int current_best) const override {
      return current_best <= limit_;
    }

  private:
    int limit_;
  };
  Bench bench;
  const auto serial = cyclo_compact(bench.g, bench.mesh, bench.comm, {});
  const Threshold token(serial.best_length());
  CycloCompactionOptions opt;
  opt.budget.stop = &token;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt);
  EXPECT_EQ(res.stop_reason, "preempted");
  EXPECT_EQ(res.best_length(), serial.best_length());
}

TEST(Budget, DeadlineEventCarriesItsReasonToo) {
  Bench bench;
  TickingClock clock(50);
  VectorSink sink;
  Tracer tracer(&sink);
  CycloCompactionOptions opt;
  opt.budget.deadline_ms = 25;
  opt.budget.clock = &clock;
  const auto res = cyclo_compact(bench.g, bench.mesh, bench.comm, opt,
                                 ObsContext{&tracer, nullptr});
  EXPECT_EQ(res.stop_reason, "deadline");
  bool found = false;
  for (const std::string& line : sink.lines())
    if (line.find("\"reason\":\"deadline\"") != std::string::npos)
      found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ccs
