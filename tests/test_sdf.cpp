// Unit tests for the SDF front end: repetition vectors, single-rate
// expansion, deadlock and consistency detection, end-to-end scheduling.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "sdf/sdf.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

/// The textbook sample-rate converter: A fires 3 tokens, B consumes 2.
SdfGraph rate_converter() {
  SdfGraph sdf("conv");
  const ActorId a = sdf.add_actor("A", 1);
  const ActorId b = sdf.add_actor("B", 2);
  sdf.add_channel(a, b, 3, 2);
  sdf.add_channel(b, a, 2, 3, /*initial_tokens=*/6);
  return sdf;
}

TEST(Sdf, BuilderValidates) {
  SdfGraph sdf;
  const ActorId a = sdf.add_actor("a", 1);
  EXPECT_THROW(sdf.add_actor("bad", 0), GraphError);
  EXPECT_THROW(sdf.add_channel(a, 7, 1, 1), GraphError);
  EXPECT_THROW(sdf.add_channel(a, a, 0, 1), GraphError);
  EXPECT_THROW(sdf.add_channel(a, a, 1, 1, -1), GraphError);
  EXPECT_THROW(sdf.add_channel(a, a, 1, 1, 0, 0), GraphError);
}

TEST(Sdf, RepetitionVectorOfTheRateConverter) {
  // q(A)*3 == q(B)*2 -> smallest q = (2, 3).
  const auto q = repetition_vector(rate_converter());
  EXPECT_EQ(q, (std::vector<long long>{2, 3}));
}

TEST(Sdf, RepetitionVectorOfAChain) {
  SdfGraph sdf("chain");
  const ActorId a = sdf.add_actor("a", 1);
  const ActorId b = sdf.add_actor("b", 1);
  const ActorId c = sdf.add_actor("c", 1);
  sdf.add_channel(a, b, 2, 3);
  sdf.add_channel(b, c, 1, 4);
  // q(a)*2 = q(b)*3; q(b)*1 = q(c)*4 -> q = (6, 4, 1).
  EXPECT_EQ(repetition_vector(sdf), (std::vector<long long>{6, 4, 1}));
}

TEST(Sdf, SingleRateGraphsHaveUnitRepetitions) {
  SdfGraph sdf("unit");
  const ActorId a = sdf.add_actor("a", 1);
  const ActorId b = sdf.add_actor("b", 1);
  sdf.add_channel(a, b, 1, 1);
  sdf.add_channel(b, a, 1, 1, 1);
  EXPECT_EQ(repetition_vector(sdf), (std::vector<long long>{1, 1}));
  const SdfExpansion x = expand_sdf(sdf);
  EXPECT_EQ(x.graph.node_count(), 2u);
  EXPECT_EQ(x.graph.edge_count(), 2u);
}

TEST(Sdf, InconsistentRatesAreRejected) {
  SdfGraph sdf("bad");
  const ActorId a = sdf.add_actor("a", 1);
  const ActorId b = sdf.add_actor("b", 1);
  sdf.add_channel(a, b, 2, 1);      // q(a)*2 = q(b)
  sdf.add_channel(a, b, 1, 1);      // q(a)   = q(b): contradiction
  EXPECT_THROW((void)repetition_vector(sdf), GraphError);
}

TEST(Sdf, DisconnectedGraphsAreRejected) {
  SdfGraph sdf("parts");
  (void)sdf.add_actor("a", 1);
  (void)sdf.add_actor("b", 1);
  EXPECT_THROW((void)repetition_vector(sdf), GraphError);
}

TEST(Sdf, ExpansionCopiesAndTokenEdges) {
  const SdfExpansion x = expand_sdf(rate_converter());
  EXPECT_EQ(x.graph.node_count(), 5u);  // 2 copies of A + 3 of B
  EXPECT_EQ(x.graph.node(x.copy_of[0][1]).name, "A.1");
  EXPECT_TRUE(x.graph.is_legal());
  // Balance: 6 tokens flow each way per iteration; bundled edges carry
  // the summed volume.
  std::size_t volume_ab = 0;
  for (EdgeId e = 0; e < x.graph.edge_count(); ++e) {
    const Edge& ed = x.graph.edge(e);
    const bool from_a = x.graph.node(ed.from).name[0] == 'A';
    const bool to_b = x.graph.node(ed.to).name[0] == 'B';
    if (from_a && to_b) volume_ab += ed.volume;
  }
  EXPECT_EQ(volume_ab, 6u);
}

TEST(Sdf, InitialTokensBecomeDelays) {
  // a -> b single-rate with 2 initial tokens: b's firing k consumes the
  // token a produced two firings (= two iterations) earlier.
  SdfGraph sdf("delayline");
  const ActorId a = sdf.add_actor("a", 1);
  const ActorId b = sdf.add_actor("b", 1);
  sdf.add_channel(a, b, 1, 1, /*initial_tokens=*/2);
  sdf.add_channel(b, a, 1, 1);
  const SdfExpansion x = expand_sdf(sdf);
  bool found = false;
  for (EdgeId e = 0; e < x.graph.edge_count(); ++e) {
    const Edge& ed = x.graph.edge(e);
    if (x.graph.node(ed.from).name == "a.0" &&
        x.graph.node(ed.to).name == "b.0") {
      EXPECT_EQ(ed.delay, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sdf, DeadlockIsDetectedAtExpansion) {
  // A cycle with no initial tokens anywhere cannot fire.
  SdfGraph sdf("stuck");
  const ActorId a = sdf.add_actor("a", 1);
  const ActorId b = sdf.add_actor("b", 1);
  sdf.add_channel(a, b, 1, 1);
  sdf.add_channel(b, a, 1, 1);  // no initial tokens
  try {
    (void)expand_sdf(sdf);
    FAIL() << "expected deadlock";
  } catch (const GraphError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Sdf, MultiRateDeadlockNeedsEnoughTokens) {
  // The converter loop needs >= some tokens on the return channel; with
  // only 1 it deadlocks, with 6 it runs.
  SdfGraph starved("starved");
  const ActorId a = starved.add_actor("A", 1);
  const ActorId b = starved.add_actor("B", 2);
  starved.add_channel(a, b, 3, 2);
  starved.add_channel(b, a, 2, 3, /*initial_tokens=*/1);
  EXPECT_THROW((void)expand_sdf(starved), GraphError);
  EXPECT_NO_THROW((void)expand_sdf(rate_converter()));
}

TEST(Sdf, ExpandedGraphSchedulesEndToEnd) {
  const SdfExpansion x = expand_sdf(rate_converter());
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(x.graph, mesh, comm, opt);
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm).ok());
  EXPECT_LE(res.best_length(), res.startup_length());
}

TEST(Sdf, ThreeStageMultiratePipeline) {
  // 44.1k -> 48k style two-step converter closed by a feedback channel.
  SdfGraph sdf("resampler");
  const ActorId src = sdf.add_actor("src", 1);
  const ActorId up = sdf.add_actor("up", 2);
  const ActorId down = sdf.add_actor("down", 1);
  sdf.add_channel(src, up, 2, 1);
  sdf.add_channel(up, down, 3, 4);
  sdf.add_channel(down, src, 2, 3, /*initial_tokens=*/12);
  const auto q = repetition_vector(sdf);
  // q(src)*2 = q(up); q(up)*3 = q(down)*4; q(down)*2 = q(src)*3
  // -> (2, 4, 3).
  EXPECT_EQ(q, (std::vector<long long>{2, 4, 3}));
  const SdfExpansion x = expand_sdf(sdf);
  EXPECT_EQ(x.graph.node_count(), 9u);
  EXPECT_TRUE(x.graph.is_legal());
}

}  // namespace
}  // namespace ccs
