// Tests of the static bound engine (src/analysis/bounds.hpp): soundness of
// every CCS-B pass against ground truth (exhaustive search) and against
// every schedule the heuristics produce, witness re-derivation, the
// heterogeneous work-conservation fix, and pinned optimality certificates.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/rules.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/critical_cycle.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/exhaustive.hpp"
#include "engine/portfolio.hpp"
#include "engine/solver.hpp"
#include "workloads/generator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

/// The machines the sweeps run on: small enough to keep the suite fast,
/// diverse enough to exercise hop distances (linear array), symmetry
/// (complete), and the paper's mesh.
std::vector<Topology> sweep_machines() {
  std::vector<Topology> machines;
  machines.push_back(make_linear_array(2));
  machines.push_back(make_linear_array(4));
  machines.push_back(make_mesh(2, 2));
  machines.push_back(make_ring(4));
  machines.push_back(make_complete(4));
  return machines;
}

/// The library workloads the sweeps cover (name, graph).
std::vector<std::pair<std::string, Csdfg>> sweep_workloads() {
  std::vector<std::pair<std::string, Csdfg>> w;
  w.emplace_back("paper_example6", paper_example6());
  w.emplace_back("paper_example19", paper_example19());
  w.emplace_back("elliptic_filter", elliptic_filter());
  w.emplace_back("lattice_filter", lattice_filter());
  w.emplace_back("iir_biquad_cascade2", iir_biquad_cascade(2));
  w.emplace_back("fir_filter6", fir_filter(6));
  w.emplace_back("diffeq_solver", diffeq_solver());
  w.emplace_back("correlator3", correlator(3));
  return w;
}

/// A staggered heterogeneous speed vector for `n` processors: {1,2,1,2,...}.
std::vector<int> staggered_speeds(std::size_t n) {
  std::vector<int> s(n, 1);
  for (std::size_t i = 1; i < n; i += 2) s[i] = 2;
  return s;
}

/// The pre-bounds-engine portfolio floor: max of the ceil'd iteration
/// bound, homogeneous work conservation, and the longest task.  The
/// composite must never be worse than this.
int naive_lower_bound(const Csdfg& g, std::size_t num_pes) {
  int naive = 1;
  const CycleWitness cycle = critical_cycle(g);
  if (cycle.total_delay > 0)
    naive = std::max(naive, static_cast<int>((cycle.total_time +
                                              cycle.total_delay - 1) /
                                             cycle.total_delay));
  const long long work = g.total_computation();
  const auto pes = static_cast<long long>(num_pes);
  naive = std::max(naive, static_cast<int>((work + pes - 1) / pes));
  for (NodeId v = 0; v < g.node_count(); ++v)
    naive = std::max(naive, g.node(v).time);
  return naive;
}

/// Finds the registered pass that reports under `code`.
const BoundPass* pass_for(std::string_view code) {
  for (const BoundPass* pass : bound_passes())
    if (pass->rule().code == code) return pass;
  return nullptr;
}

/// Checks the composite's internal contract and re-derives every witness.
void check_composite(const CompositeBound& bound, const Csdfg& g,
                     const BoundMachine& machine, const std::string& label) {
  EXPECT_GE(bound.value, 1) << label;
  EXPECT_GE(bound.local_value, bound.value) << label;
  ASSERT_FALSE(bound.parts.empty()) << label;
  const BoundResult* dom = bound.part(bound.dominant);
  ASSERT_NE(dom, nullptr) << label;
  EXPECT_EQ(dom->value, bound.value) << label;
  EXPECT_TRUE(dom->invariant) << label;
  const BoundResult* dom_local = bound.part(bound.dominant_local);
  ASSERT_NE(dom_local, nullptr) << label;
  EXPECT_EQ(dom_local->value, bound.local_value) << label;
  for (const BoundResult& part : bound.parts) {
    const BoundPass* pass = pass_for(part.code);
    ASSERT_NE(pass, nullptr) << label << ": " << part.code;
    EXPECT_TRUE(pass->reverify(g, machine, part))
        << label << ": " << part.code << " witness does not re-derive "
        << part.value << " (" << part.witness << ")";
    EXPECT_FALSE(part.witness.empty()) << label << ": " << part.code;
  }
}

BoundMachine homogeneous_machine(std::size_t num_pes, const CommModel& comm,
                                 bool pipelined = false) {
  BoundMachine m;
  m.num_pes = num_pes;
  m.pipelined = pipelined;
  m.comm = &comm;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ground truth: on instances small enough for exhaustive search, even the
// LOCAL composite (which fixes the delay placement, exactly what the
// exhaustive scheduler does) never exceeds the true optimum.

TEST(BoundSoundness, LocalCompositeNeverBeatsExhaustiveOptimum) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 5;
  cfg.num_layers = 2;
  cfg.num_back_edges = 2;
  cfg.max_time = 2;
  cfg.max_volume = 2;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Csdfg g = random_csdfg(cfg, seed);
    for (std::size_t pes : {2u, 3u}) {
      const Topology topo = make_linear_array(pes);
      const StoreAndForwardModel comm(topo);
      const auto opt = optimal_schedule(g, topo, comm);
      ASSERT_TRUE(opt.has_value()) << "seed " << seed << " P=" << pes;
      const BoundMachine machine = homogeneous_machine(pes, comm);
      const CompositeBound bound = compute_bounds(g, machine);
      EXPECT_LE(bound.local_value, opt->length())
          << "seed " << seed << " P=" << pes << " dominant "
          << bound.dominant_local;
      check_composite(bound, g, machine,
                      "seed " + std::to_string(seed));
    }
  }
}

TEST(BoundSoundness, PaperExamplesMatchExhaustiveExactly) {
  // Figure 1(b) on the paper's 2x2 mesh: the composite floor must hold
  // against the true optimum of the as-given graph.
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  const auto opt = optimal_schedule(g, topo, comm);
  ASSERT_TRUE(opt.has_value());
  const CompositeBound bound =
      compute_bounds(g, homogeneous_machine(topo.size(), comm));
  EXPECT_LE(bound.local_value, opt->length());
  EXPECT_GE(bound.value, 3);  // the B-chain cycle forces ceil(6/2) = 3
}

// ---------------------------------------------------------------------------
// Heuristic sweep: the INVARIANT composite holds for every schedule
// cyclo-compaction produces (it retimes first), across the library
// workloads, the machine zoo, pipelined mode, and heterogeneous speeds.

TEST(BoundSoundness, InvariantCompositeHoldsForCycloCompaction) {
  for (const auto& [name, g] : sweep_workloads()) {
    for (const Topology& topo : sweep_machines()) {
      const StoreAndForwardModel comm(topo);
      for (int config = 0; config < 3; ++config) {
        CycloCompactionOptions opt;
        opt.passes = 8;  // soundness holds for any pass budget
        if (config == 1) opt.startup.pipelined_pes = true;
        if (config == 2) opt.startup.pe_speeds = staggered_speeds(topo.size());
        const std::string label = name + " on " + topo.name() + " config " +
                                  std::to_string(config);
        const CompositeBound bound = compute_bounds(g, topo, comm, opt);
        const CycloCompactionResult run = cyclo_compact(g, topo, comm, opt);
        EXPECT_LE(bound.value, run.best_length())
            << label << " dominant " << bound.dominant;
        EXPECT_LE(bound.value, run.startup_length()) << label;
        check_composite(bound, g, machine_view(topo, comm, opt), label);
      }
    }
  }
}

TEST(BoundSoundness, InvariantCompositeHoldsForThePortfolio) {
  const Csdfg g = paper_example19();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  PortfolioOptions popt;
  popt.jobs = 1;
  const PortfolioResult r = portfolio_compact(g, topo, comm, popt);
  EXPECT_GE(r.winner.best_length(), r.lower_bound);
  EXPECT_EQ(r.lower_bound, std::max(1, r.bound.value));
  for (const AttemptOutcome& a : r.attempts) {
    if (a.length > 0) {
      EXPECT_GE(a.length, r.lower_bound) << a.label;
    }
  }
}

// ---------------------------------------------------------------------------
// The composite dominates the old floor, and communication awareness makes
// it strictly better on the paper's 19-task workload.

TEST(BoundComposite, NeverWorseThanTheNaiveFloor) {
  for (const auto& [name, g] : sweep_workloads()) {
    for (const Topology& topo : sweep_machines()) {
      const StoreAndForwardModel comm(topo);
      const CompositeBound bound =
          compute_bounds(g, homogeneous_machine(topo.size(), comm));
      EXPECT_GE(bound.value, naive_lower_bound(g, topo.size()))
          << name << " on " << topo.name();
    }
  }
}

TEST(BoundComposite, CommunicationRaisesThePaperWorkloadFloor) {
  // On every one of the paper's machines the 19-task graph's naive floor
  // is 3 (iteration bound and ceil(24/8)); CCS-B004 proves 4 by pricing
  // the critical cycle's cheapest two transfers into its delay windows.
  const Csdfg g = paper_example19();
  std::vector<Topology> paper_machines;
  paper_machines.push_back(make_mesh(4, 2));
  paper_machines.push_back(make_linear_array(8));
  paper_machines.push_back(make_ring(8));
  paper_machines.push_back(make_complete(8));
  paper_machines.push_back(make_hypercube(3));
  for (const Topology& topo : paper_machines) {
    const StoreAndForwardModel comm(topo);
    const CompositeBound bound =
        compute_bounds(g, homogeneous_machine(topo.size(), comm));
    const int naive = naive_lower_bound(g, topo.size());
    EXPECT_GT(bound.value, naive) << topo.name();
    EXPECT_EQ(bound.value, 4) << topo.name();
    EXPECT_EQ(bound.dominant, "CCS-B004") << topo.name();
  }
}

// ---------------------------------------------------------------------------
// CCS-B002: the heterogeneous work-conservation fix.  The old homogeneous
// ceil(T/P) is unsound-in-spirit on slow machines (it understates) — the
// speed-aware form charges each processor its own throughput.

TEST(BoundWorkConservation, HeterogeneousBeatsNaiveCeil) {
  // paper_example6 has total work 8.  On {1, 4} the naive ceil(8/2) = 4,
  // but floor(L/1) + floor(L/4) >= 8 first holds at L = 7.
  const Csdfg g = paper_example6();
  const Topology topo = make_linear_array(2);
  const StoreAndForwardModel comm(topo);
  BoundMachine machine = homogeneous_machine(2, comm);
  machine.speeds = {1, 4};
  const CompositeBound bound = compute_bounds(g, machine);
  const BoundResult* work = bound.part("CCS-B002");
  ASSERT_NE(work, nullptr);
  EXPECT_GE(work->value, 7);
  EXPECT_GT(work->value, 4);  // strictly better than ceil(T/P)
}

TEST(BoundWorkConservation, HomogeneousReducesToCeil) {
  const Csdfg g = paper_example19();  // T = 24
  const Topology topo = make_complete(8);
  const StoreAndForwardModel comm(topo);
  const CompositeBound bound =
      compute_bounds(g, homogeneous_machine(8, comm));
  const BoundResult* work = bound.part("CCS-B002");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->value, 3);  // ceil(24/8), longest task 2
}

// ---------------------------------------------------------------------------
// Pass applicability: pipelined-only and communication-only passes appear
// exactly when their machine features do.

TEST(BoundPasses, ApplicabilityTracksTheMachine) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);

  const CompositeBound plain =
      compute_bounds(g, homogeneous_machine(4, comm));
  EXPECT_EQ(plain.part("CCS-B003"), nullptr);  // not pipelined
  EXPECT_NE(plain.part("CCS-B001"), nullptr);
  EXPECT_NE(plain.part("CCS-B002"), nullptr);
  EXPECT_NE(plain.part("CCS-B004"), nullptr);
  EXPECT_NE(plain.part("CCS-B006"), nullptr);

  const CompositeBound piped =
      compute_bounds(g, homogeneous_machine(4, comm, /*pipelined=*/true));
  const BoundResult* issue = piped.part("CCS-B003");
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->value, 2);  // ceil(6 tasks / 4 PEs)

  BoundMachine no_comm;
  no_comm.num_pes = 4;
  const CompositeBound silent = compute_bounds(g, no_comm);
  // Without a comm model B005's delay windows are unknowable; B004 still
  // applies but prices transfers at zero (conservative, still sound).
  EXPECT_EQ(silent.part("CCS-B005"), nullptr);
  EXPECT_NE(silent.part("CCS-B004"), nullptr);
  EXPECT_NE(silent.part("CCS-B001"), nullptr);
}

TEST(BoundPasses, TamperedWitnessFailsReverify) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  const BoundMachine machine = homogeneous_machine(4, comm);
  const CompositeBound bound = compute_bounds(g, machine);
  for (const BoundResult& part : bound.parts) {
    BoundResult forged = part;
    forged.value += 1;  // claim one more step than the witness proves
    EXPECT_FALSE(pass_for(part.code)->reverify(g, machine, forged))
        << part.code;
  }
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing: report_bounds speaks catalogue CCS-B codes and
// never fails a bag (notes only).

TEST(BoundReport, EmitsOneNotePerPartAndNeverFails) {
  const Csdfg g = paper_example6();
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  const CompositeBound bound =
      compute_bounds(g, homogeneous_machine(4, comm));
  DiagnosticBag bag;
  report_bounds(bound, SourceSpan{"<graph>", 0}, bag);
  bag.finalize();
  EXPECT_EQ(bag.size(), bound.parts.size());
  EXPECT_FALSE(bag.fails(/*werror=*/true));
  for (const Diagnostic& d : bag.diagnostics())
    EXPECT_EQ(d.code.rfind("CCS-B", 0), 0u) << d.code;
}

// ---------------------------------------------------------------------------
// Optimality certificates: pinned (workload, machine) pairs where the
// solver proves its answer optimal — gap 0 on a certified schedule.

TEST(BoundOptimality, SolverCertifiesPaperFig1bOptimal) {
  SolveRequest req;
  req.graph = paper_example6();
  req.arch = "mesh 2 2";
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 1;
  const SolveResponse res = Solver{}.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.lower_bound, 3);
  EXPECT_EQ(res.best_length, 3);
  EXPECT_EQ(res.gap, 0);
  EXPECT_TRUE(res.optimal);
}

TEST(BoundOptimality, SolverCertifiesPaperFig7OnLinearArray4Optimal) {
  // 24 units of work over 4 PEs: CCS-B002 proves 6, and the portfolio
  // finds a certified 6-step schedule — provably optimal.
  SolveRequest req;
  req.graph = paper_example19();
  req.arch = "linear_array 4";
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 1;
  const SolveResponse res = Solver{}.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.lower_bound, 6);
  EXPECT_EQ(res.best_length, 6);
  EXPECT_EQ(res.gap, 0);
  EXPECT_TRUE(res.optimal);
}

TEST(BoundOptimality, GapIsReportedWhenNotClosed) {
  // The paper's flagship pair: 19 tasks on the 4x2 mesh.  The portfolio's
  // best is 6 against a proven floor of 4 — a reported, honest gap.
  SolveRequest req;
  req.graph = paper_example19();
  req.arch = "mesh 4 2";
  req.mode = SolveMode::kPortfolio;
  req.portfolio.jobs = 1;
  const SolveResponse res = Solver{}.solve(req);
  ASSERT_TRUE(res.ok()) << render_text(res.diagnostics);
  EXPECT_EQ(res.lower_bound, 4);
  EXPECT_EQ(res.gap, res.best_length - 4);
  EXPECT_GT(res.gap, 0);
  EXPECT_FALSE(res.optimal);
}

}  // namespace ccs
