// Unit tests for DOT export and the paper-style schedule renderer.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/list_scheduler.hpp"
#include "io/dot.hpp"
#include "io/table_printer.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(Dot, GraphExportContainsNodesAndAnnotatedEdges) {
  const std::string dot = to_dot(paper_example6());
  EXPECT_NE(dot.find("digraph \"paper6\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"A (1)\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"B (2)\""), std::string::npos);
  // D->A carries 3 delays and volume 3.
  EXPECT_NE(dot.find("d=3 c=3"), std::string::npos);
  // Unit-volume zero-delay edges carry no label.
  EXPECT_EQ(dot.find("c=1"), std::string::npos);
}

TEST(Dot, ScheduleOverlayAnnotatesPlacements) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const ScheduleTable t = start_up_schedule(g, mesh, comm);
  const std::string dot = to_dot(g, t);
  EXPECT_NE(dot.find("@pe1 cs1"), std::string::npos);  // A
  EXPECT_NE(dot.find("@pe2 cs3"), std::string::npos);  // C
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, PartialScheduleDashesUnplacedTasks) {
  const Csdfg g = paper_example6();
  ScheduleTable t(g, 2);
  t.place(0, 0, 1);
  const std::string dot = to_dot(g, t);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, TopologyExportUsesUndirectedEdgesWhenApt) {
  const std::string mesh = to_dot(make_mesh(2, 2));
  EXPECT_NE(mesh.find("graph \"mesh(2x2)\""), std::string::npos);
  EXPECT_NE(mesh.find("p0 -- p1"), std::string::npos);
  const std::string uni = to_dot(make_ring(3, /*bidirectional=*/false));
  EXPECT_NE(uni.find("digraph"), std::string::npos);
  EXPECT_NE(uni.find("p0 -> p1"), std::string::npos);
}

TEST(TablePrinter, RendersThePaperStartupTable) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  const ScheduleTable t = start_up_schedule(g, mesh, comm);
  const std::string s = render_schedule(g, t);
  // Header and the 7 control-step rows.
  EXPECT_NE(s.find("| cs "), std::string::npos);
  EXPECT_NE(s.find("| pe1 "), std::string::npos);
  EXPECT_NE(s.find("| 7 "), std::string::npos);
  // B occupies two consecutive rows on pe1.
  const auto first_b = s.find("| B ");
  ASSERT_NE(first_b, std::string::npos);
  EXPECT_NE(s.find("| B ", first_b + 1), std::string::npos);
}

TEST(TablePrinter, MultiCycleTasksRepeatAcrossRows) {
  Csdfg g;
  const NodeId a = g.add_node("long", 3);
  g.add_edge(a, a, 1, 1);
  ScheduleTable t(g, 1);
  t.place(a, 0, 2);
  const std::string s = render_schedule(g, t);
  int occurrences = 0;
  std::size_t pos = 0;
  while ((pos = s.find("long", pos)) != std::string::npos) {
    ++occurrences;
    pos += 4;
  }
  EXPECT_EQ(occurrences, 3);
}

TEST(TablePrinter, SummaryLine) {
  const Csdfg g = paper_example6();
  ScheduleTable t(g, 4);
  t.place(0, 0, 1);
  EXPECT_EQ(summarize_schedule(t), "length=1 pes=4 tasks=1/6");
}

}  // namespace
}  // namespace ccs
