// Unit tests for the schedule table data structure.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ScheduleTableTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();  // A,C,D,F: t=1; B,E: t=2
  NodeId A_ = g_.node_by_name("A"), B_ = g_.node_by_name("B"),
         C_ = g_.node_by_name("C"), D_ = g_.node_by_name("D"),
         E_ = g_.node_by_name("E"), F_ = g_.node_by_name("F");
};

TEST_F(ScheduleTableTest, PlaceAndQuery) {
  ScheduleTable t(g_, 4);
  EXPECT_EQ(t.length(), 0);
  EXPECT_FALSE(t.complete());
  t.place(A_, 0, 1);
  t.place(B_, 0, 2);
  EXPECT_TRUE(t.is_placed(A_));
  EXPECT_EQ(t.cb(B_), 2);
  EXPECT_EQ(t.ce(B_), 3);  // t(B)=2
  EXPECT_EQ(t.pe(B_), 0u);
  EXPECT_EQ(t.length(), 3);
  EXPECT_EQ(t.occupied_length(), 3);
  EXPECT_EQ(t.placed_count(), 2u);
}

TEST_F(ScheduleTableTest, MultiCycleTasksOccupyTheirSpan) {
  ScheduleTable t(g_, 2);
  t.place(B_, 1, 3);  // occupies (pe1, cs3..4)
  EXPECT_FALSE(t.is_free(1, 3, 3));
  EXPECT_FALSE(t.is_free(1, 4, 4));
  EXPECT_TRUE(t.is_free(1, 2, 2));
  EXPECT_TRUE(t.is_free(1, 5, 9));
  EXPECT_TRUE(t.is_free(0, 3, 4));
  EXPECT_EQ(t.occupant(1, 4), std::optional<NodeId>{B_});
  EXPECT_EQ(t.occupant(1, 5), std::nullopt);
}

TEST_F(ScheduleTableTest, PipelinedPesOccupyOnlyIssueSlot) {
  ScheduleTable t(g_, 2, /*pipelined_pes=*/true);
  t.place(B_, 0, 3);
  EXPECT_FALSE(t.is_free(0, 3, 3));
  EXPECT_TRUE(t.is_free(0, 4, 4));  // pipelined: next task may issue at 4
  EXPECT_EQ(t.ce(B_), 4);           // CE still reflects execution time
  EXPECT_EQ(t.length(), 4);
}

TEST_F(ScheduleTableTest, FirstFreeSkipsOccupiedSpans) {
  ScheduleTable t(g_, 1);
  t.place(B_, 0, 2);  // occupies 2..3
  EXPECT_EQ(t.first_free(0, 1, 1), 1);
  EXPECT_EQ(t.first_free(0, 2, 1), 4);
  // A 2-cycle task starting at 1 would collide at 2: first fit is 4.
  EXPECT_EQ(t.first_free(0, 1, 2), 4);
  EXPECT_EQ(t.first_free(0, 7, 2), 7);
}

TEST_F(ScheduleTableTest, PlacePreconditionsAreChecked) {
  ScheduleTable t(g_, 2);
  t.place(A_, 0, 1);
  EXPECT_THROW(t.place(A_, 1, 1), ContractViolation);  // already placed
  EXPECT_THROW(t.place(C_, 0, 1), ContractViolation);  // occupied
  EXPECT_THROW(t.place(C_, 5, 1), ContractViolation);  // PE range
  EXPECT_THROW(t.place(C_, 0, 0), ContractViolation);  // cb >= 1
}

TEST_F(ScheduleTableTest, RemoveFreesTheSlot) {
  ScheduleTable t(g_, 2);
  t.place(B_, 0, 1);
  t.remove(B_);
  EXPECT_FALSE(t.is_placed(B_));
  EXPECT_TRUE(t.is_free(0, 1, 2));
  EXPECT_EQ(t.placed_count(), 0u);
  // Length is not shrunk by removal (callers renormalize explicitly).
  EXPECT_EQ(t.length(), 2);
  t.place(C_, 0, 1);  // slot reusable
  EXPECT_EQ(t.cb(C_), 1);
}

TEST_F(ScheduleTableTest, NodesStartingAtFiltersByCb) {
  ScheduleTable t(g_, 3);
  t.place(A_, 0, 1);
  t.place(C_, 1, 1);
  t.place(B_, 2, 2);
  EXPECT_EQ(t.nodes_starting_at(1), (std::vector<NodeId>{A_, C_}));
  EXPECT_EQ(t.nodes_starting_at(2), (std::vector<NodeId>{B_}));
  EXPECT_TRUE(t.nodes_starting_at(3).empty());  // B continues but starts at 2
}

TEST_F(ScheduleTableTest, ShiftUpRenumbersEverything) {
  ScheduleTable t(g_, 2);
  t.place(A_, 0, 2);
  t.place(B_, 1, 3);
  t.set_length(5);
  t.shift_up();
  EXPECT_EQ(t.cb(A_), 1);
  EXPECT_EQ(t.cb(B_), 2);
  EXPECT_EQ(t.length(), 4);
  EXPECT_EQ(t.occupant(1, 2), std::optional<NodeId>{B_});
  EXPECT_EQ(t.occupant(1, 4), std::nullopt);
}

TEST_F(ScheduleTableTest, ShiftUpRequiresEmptyFirstRow) {
  ScheduleTable t(g_, 2);
  t.place(A_, 0, 1);
  EXPECT_THROW(t.shift_up(), ContractViolation);
}

TEST_F(ScheduleTableTest, CompactLeadingRemovesAllLeadingEmptyRows) {
  ScheduleTable t(g_, 2);
  t.place(B_, 0, 4);
  t.place(C_, 1, 5);
  t.set_length(7);
  EXPECT_EQ(t.compact_leading(), 3);
  EXPECT_EQ(t.cb(B_), 1);
  EXPECT_EQ(t.cb(C_), 2);
  EXPECT_EQ(t.length(), 4);
  // Idempotent once a task starts at row 1.
  EXPECT_EQ(t.compact_leading(), 0);
}

TEST_F(ScheduleTableTest, SetLengthValidatesAgainstOccupancy) {
  ScheduleTable t(g_, 2);
  t.place(B_, 0, 2);  // occupied through 3
  t.set_length(10);
  EXPECT_EQ(t.length(), 10);
  t.set_length(3);
  EXPECT_EQ(t.length(), 3);
  EXPECT_THROW(t.set_length(2), ContractViolation);
}

TEST_F(ScheduleTableTest, PlacementsListsPlacedTasksAscending) {
  ScheduleTable t(g_, 2);
  t.place(D_, 0, 1);
  t.place(A_, 1, 1);
  const auto p = t.placements();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].first, A_);
  EXPECT_EQ(p[1].first, D_);
  EXPECT_EQ(p[1].second.pe, 0u);
}

TEST_F(ScheduleTableTest, TimeAccessorsMatchGraph) {
  ScheduleTable t(g_, 2);
  EXPECT_EQ(t.time(B_), 2);
  EXPECT_EQ(t.time(F_), 1);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_EQ(t.num_pes(), 2u);
}

}  // namespace
}  // namespace ccs
