// Unit tests for the zero-delay-DAG algorithms feeding the start-up
// scheduler (ASAP/ALAP/mobility of Definition 3.4).
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(GraphAlgo, TopologicalOrderRespectsZeroDelayEdgesOnly) {
  const Csdfg g = paper_example6();
  const auto order = zero_delay_topological_order(g);
  ASSERT_EQ(order.size(), 6u);
  std::vector<std::size_t> pos(6);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).delay == 0) {
      EXPECT_LT(pos[g.edge(e).from], pos[g.edge(e).to]);
    }
  }
}

TEST(GraphAlgo, TopologicalOrderIsDeterministicLowestIdFirst) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_node("c", 1);  // all three are roots
  const auto order = zero_delay_topological_order(g);
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2}));
}

TEST(GraphAlgo, TopologicalOrderThrowsOnZeroDelayCycle) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 0);
  g.add_edge(1, 0, 0);
  EXPECT_THROW((void)zero_delay_topological_order(g), GraphError);
}

TEST(GraphAlgo, DagTimingOfPaperExample) {
  // Zero-delay critical path of Figure 1(b): A,B,E,F = 1+2+2+1 = 6.
  const Csdfg g = paper_example6();
  const DagTiming t = compute_dag_timing(g);
  EXPECT_EQ(t.critical_path, 6);
  const NodeId A = g.node_by_name("A"), B = g.node_by_name("B"),
               C = g.node_by_name("C"), D = g.node_by_name("D"),
               E = g.node_by_name("E"), F = g.node_by_name("F");
  EXPECT_EQ(t.asap_cb[A], 1);
  EXPECT_EQ(t.asap_cb[B], 2);
  EXPECT_EQ(t.asap_cb[C], 2);
  EXPECT_EQ(t.asap_cb[E], 4);
  EXPECT_EQ(t.asap_cb[F], 6);
  // A, B, E, F are on the critical path: zero mobility.
  EXPECT_EQ(t.mobility(A), 0);
  EXPECT_EQ(t.mobility(B), 0);
  EXPECT_EQ(t.mobility(E), 0);
  EXPECT_EQ(t.mobility(F), 0);
  // C can slide: ALAP(C) = 3 (must end before E at 4).
  EXPECT_EQ(t.alap_cb[C], 3);
  EXPECT_EQ(t.mobility(C), 1);
  // D must end before F at 6: ALAP(D) = 5, ASAP(D) = 4.
  EXPECT_EQ(t.asap_cb[D], 4);
  EXPECT_EQ(t.alap_cb[D], 5);
  EXPECT_EQ(t.mobility(D), 1);
}

TEST(GraphAlgo, AlapNeverBelowAsap) {
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         elliptic_filter(), lattice_filter()}) {
    const DagTiming t = compute_dag_timing(g);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_LE(t.asap_cb[v], t.alap_cb[v]) << g.name();
      EXPECT_GE(t.asap_cb[v], 1) << g.name();
      EXPECT_LE(t.alap_cb[v] + g.node(v).time - 1, t.critical_path)
          << g.name();
    }
  }
}

TEST(GraphAlgo, ZeroDelayRootsIgnoreDelayedInEdges) {
  const Csdfg g = paper_example6();
  // A's only incoming edge (D->A) carries delay 3; E has F->E with delay 1
  // but also zero-delay in-edges.
  const auto roots = zero_delay_roots(g);
  EXPECT_EQ(roots, std::vector<NodeId>{g.node_by_name("A")});
}

TEST(GraphAlgo, MultiRootGraphs) {
  const Csdfg g = paper_example19();
  const auto roots = zero_delay_roots(g);
  // Reconstructed Figure 7: A, C, D, E, F are sources of the DAG view.
  EXPECT_EQ(roots.size(), 5u);
}

TEST(GraphAlgo, ReachabilityFollowsZeroDelayEdges) {
  const Csdfg g = paper_example6();
  const NodeId A = g.node_by_name("A"), F = g.node_by_name("F"),
               C = g.node_by_name("C"), D = g.node_by_name("D");
  EXPECT_TRUE(zero_delay_reachable(g, A, F));
  EXPECT_FALSE(zero_delay_reachable(g, F, A));  // D->A has delay
  EXPECT_FALSE(zero_delay_reachable(g, C, D));
  EXPECT_TRUE(zero_delay_reachable(g, C, C));  // trivially reachable
}

}  // namespace
}  // namespace ccs
