// Unit and property tests for prologue/epilogue realization — the proof
// that rotation (retiming) preserves the loop's semantics end to end.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/prologue.hpp"
#include "util/contracts.hpp"
#include "workloads/generator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class PrologueTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(PrologueTest, SingleRotationMakesAThePrologue) {
  // The paper, end of Section 2: after retiming A once, "the instruction A
  // becomes the prologue".
  Retiming r(g_.node_count());
  r.add(g_.node_by_name("A"), 1);
  const LoopRealization real(g_, r);
  EXPECT_EQ(real.depth(), 1);
  EXPECT_EQ(real.prologue(),
            (std::vector<TaskInstance>{{g_.node_by_name("A"), 0}}));
  // Epilogue of a 10-iteration run: everyone except A runs once more.
  const auto epi = real.epilogue(10);
  EXPECT_EQ(epi.size(), 5u);
  for (const TaskInstance& inst : epi) {
    EXPECT_EQ(inst.iteration, 9);
    EXPECT_NE(inst.node, g_.node_by_name("A"));
  }
  EXPECT_EQ(real.steady_iterations(10), 9);
}

TEST_F(PrologueTest, NormalizationIgnoresUniformShift) {
  Retiming r(g_.node_count());
  for (NodeId v = 0; v < g_.node_count(); ++v) r.set(v, 5);
  r.add(g_.node_by_name("A"), 1);
  const LoopRealization real(g_, r);
  EXPECT_EQ(real.depth(), 1);
  EXPECT_EQ(real.advance(g_.node_by_name("A")), 1);
  EXPECT_EQ(real.advance(g_.node_by_name("B")), 0);
}

TEST_F(PrologueTest, IdentityRetimingHasEmptyPrologue) {
  const LoopRealization real(g_, Retiming(g_.node_count()));
  EXPECT_EQ(real.depth(), 0);
  EXPECT_TRUE(real.prologue().empty());
  EXPECT_TRUE(real.epilogue(4).empty());
  EXPECT_EQ(real.steady_iterations(4), 4);
}

TEST_F(PrologueTest, FlattenedRunIsALegalSerialExecution) {
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  const LoopRealization real(g_, res.retiming);
  const long long N = real.depth() + 12;
  const auto seq = real.flatten(g_, res.best, N);
  EXPECT_EQ(seq.size(), static_cast<std::size_t>(N) * g_.node_count());
  EXPECT_EQ(check_flattening(g_, seq, N), "");
}

TEST_F(PrologueTest, CheckerCatchesBrokenSequences) {
  Retiming r(g_.node_count());
  r.add(g_.node_by_name("A"), 1);
  const LoopRealization real(g_, r);
  CycloCompactionOptions opt;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  auto seq = real.flatten(g_, res.startup, 5);
  // Duplicate an instance.
  auto dup = seq;
  dup.push_back(dup.front());
  EXPECT_NE(check_flattening(g_, dup, 5), "");
  // Drop an instance.
  auto missing = seq;
  missing.pop_back();
  EXPECT_NE(check_flattening(g_, missing, 5), "");
  // Swap a dependent pair: B of iteration 0 before A of iteration 0... the
  // flatten puts (A,0) in the prologue at position 0; move it to the end.
  auto reordered = seq;
  std::rotate(reordered.begin(), reordered.begin() + 1, reordered.end());
  EXPECT_NE(check_flattening(g_, reordered, 5), "");
}

TEST_F(PrologueTest, RealizationRejectsIllegalRetiming) {
  Retiming r(g_.node_count());
  r.add(g_.node_by_name("B"), 1);  // A->B carries no delay
  EXPECT_THROW(LoopRealization(g_, r), ContractViolation);
}

TEST_F(PrologueTest, FlattenAcrossTheLibraryAndRandomGraphs) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 14;
  cfg.num_layers = 4;
  cfg.num_back_edges = 3;
  std::vector<Csdfg> graphs{paper_example19(), lattice_filter(),
                            diffeq_solver()};
  for (std::uint64_t seed : {9ull, 99ull, 999ull})
    graphs.push_back(random_csdfg(cfg, seed));

  for (const Csdfg& g : graphs) {
    CycloCompactionOptions opt;
    opt.policy = RemapPolicy::kWithRelaxation;
    const auto res = cyclo_compact(g, mesh_, comm_, opt);
    const LoopRealization real(g, res.retiming);
    const long long N = real.depth() + 8;
    const auto seq = real.flatten(g, res.best, N);
    EXPECT_EQ(check_flattening(g, seq, N), "") << g.name();
    // Sizes reconcile: prologue + steady*|V| + epilogue = N*|V|.
    EXPECT_EQ(real.prologue().size() + real.epilogue(N).size() +
                  static_cast<std::size_t>(real.steady_iterations(N)) *
                      g.node_count(),
              static_cast<std::size_t>(N) * g.node_count())
        << g.name();
  }
}

}  // namespace
}  // namespace ccs
