// Unit tests for the remapping phase: the anticipation function AN
// (Lemma 4.2, pinned to the paper's worked numbers), the successor bound,
// try_remap, and the two policies of Definition 4.2.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/remap.hpp"
#include "core/retiming.hpp"
#include "core/validator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class RemapTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(RemapTest, AnticipationMatchesThePaperWorkedExample) {
  // Section 4's example: C rotated with its producer A on "PE2" finishing
  // at control step 6 of a length-6 table, edge A->C now carrying one
  // delay; target length 5.  AN = CE(A) + M + 1 - 1*5 = M + 2.
  Csdfg g = g_;
  Retiming r(g.node_count());
  r.add(g.node_by_name("A"), 1);
  r.apply(g);  // A->C: delay 1
  ScheduleTable t(g, 4);
  const NodeId A = g.node_by_name("A"), C = g.node_by_name("C");
  t.place(A, 1, 6);  // index 1 = the paper's PE2
  // Mesh ids: 0 1 / 2 3.  dist(1,0)=1, dist(1,3)=1, dist(1,2)=2, self 0.
  EXPECT_EQ(anticipation(g, t, comm_, C, 0, 5), 3);  // paper: AN_PE1 = 3
  EXPECT_EQ(anticipation(g, t, comm_, C, 3, 5), 3);  // paper: AN_PE3 = 3
  EXPECT_EQ(anticipation(g, t, comm_, C, 2, 5), 4);  // paper: AN_PE4 = 4
  EXPECT_EQ(anticipation(g, t, comm_, C, 1, 5), 2);  // same PE: CE+1-5
}

TEST_F(RemapTest, AnticipationClampsToStepOne) {
  // Large k*L swamps the producer term: the earliest step is still 1.
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 5, 1);
  ScheduleTable t(g, 2);
  t.place(u, 0, 1);
  EXPECT_EQ(anticipation(g, t, comm_, v, 0, 10), 1);
}

TEST_F(RemapTest, AnticipationIgnoresUnplacedProducersAndSelfLoops) {
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 9);
  g.add_edge(v, v, 1, 9);
  ScheduleTable t(g, 2);  // u unplaced
  EXPECT_EQ(anticipation(g, t, comm_, v, 0, 4), 1);
}

TEST_F(RemapTest, AnticipationIsTheFirstValidStep) {
  // Placing v exactly at AN satisfies the master constraint; one earlier
  // violates it.  This ties Lemma 4.2 to the validator.
  Csdfg g;
  const NodeId u = g.add_node("u", 2);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 1, 3);
  g.add_edge(v, u, 1, 1);
  for (PeId pe = 0; pe < 4; ++pe) {
    ScheduleTable t(g, 4);
    t.place(u, 0, 2);
    const int target = 6;
    const int an = anticipation(g, t, comm_, v, pe, target);
    ASSERT_GE(an, 1);
    t.place(v, pe, an);
    t.set_length(std::max(t.occupied_length(), target));
    const auto ok = validate_schedule(g, t, comm_);
    // Only the u->v edge is of interest; v->u may demand more length, so
    // check min_feasible_length instead of full validity at AN-1.
    EXPECT_TRUE(ok.ok() || min_feasible_length(g, t, comm_) > target)
        << "pe=" << pe;
    if (an > 1) {
      ScheduleTable early(g, 4);
      early.place(u, 0, 2);
      early.place(v, pe, an - 1);
      early.set_length(std::max(early.occupied_length(), target));
      bool uv_violated = false;
      for (const auto& viol : validate_schedule(g, early, comm_).violations)
        uv_violated |= viol.message.find("u->v") != std::string::npos;
      EXPECT_TRUE(uv_violated) << "pe=" << pe;
    }
  }
}

TEST_F(RemapTest, LatestStartHonorsPlacedSuccessors) {
  // v -> w zero-delay with w placed at cb 5: on w's PE, v must end by 4.
  Csdfg g;
  const NodeId v = g.add_node("v", 2);
  const NodeId w = g.add_node("w", 1);
  g.add_edge(v, w, 0, 1);
  g.add_edge(w, v, 1, 1);
  ScheduleTable t(g, 4);
  t.place(w, 0, 5);
  // Same PE: CB(v) <= CB(w) - t(v) = 3.
  EXPECT_EQ(latest_start(g, t, comm_, v, 0, 10), 3);
  // One hop away (volume 1): one step earlier.
  EXPECT_EQ(latest_start(g, t, comm_, v, 1, 10), 2);
  // Two hops (mesh diagonal 3 -> 0): earlier still.
  EXPECT_EQ(latest_start(g, t, comm_, v, 3, 10), 1);
}

TEST_F(RemapTest, LatestStartDefaultsToTableEnd) {
  Csdfg g;
  const NodeId v = g.add_node("v", 3);
  g.add_edge(v, v, 1, 1);
  ScheduleTable t(g, 2);
  EXPECT_EQ(latest_start(g, t, comm_, v, 0, 10), 8);  // 10 - 3 + 1
}

TEST_F(RemapTest, TryRemapPlacesIntoFreedSlots) {
  // Rotate A out of the paper's startup schedule by hand and remap it.
  Csdfg g = g_;
  Retiming r(g.node_count());
  const NodeId A = g.node_by_name("A");
  r.add(A, 1);
  r.apply(g);
  ScheduleTable t(g, 4);
  t.place(g.node_by_name("B"), 0, 1);
  t.place(g.node_by_name("C"), 1, 2);
  t.place(g.node_by_name("D"), 0, 3);
  t.place(g.node_by_name("E"), 0, 4);
  t.place(g.node_by_name("F"), 0, 6);
  t.set_length(6);
  const RemapResult res =
      try_remap(g, t, comm_, {A}, 6, RemapSelection::kBidirectional);
  ASSERT_TRUE(res.success);
  EXPECT_TRUE(t.complete());
  EXPECT_LE(res.length, 6);
  EXPECT_TRUE(validate_schedule(g, t, comm_).ok());
}

TEST_F(RemapTest, WithoutRelaxationNeverExceedsPreviousLength) {
  Csdfg g = g_;
  Retiming r(g.node_count());
  const NodeId A = g.node_by_name("A");
  r.add(A, 1);
  r.apply(g);
  ScheduleTable shifted(g, 4);
  shifted.place(g.node_by_name("B"), 0, 1);
  shifted.place(g.node_by_name("C"), 1, 2);
  shifted.place(g.node_by_name("D"), 0, 3);
  shifted.place(g.node_by_name("E"), 0, 4);
  shifted.place(g.node_by_name("F"), 0, 6);
  shifted.set_length(6);
  const auto out = remap_rotated(g, shifted, comm_, {A}, 7,
                                 RemapPolicy::kWithoutRelaxation);
  ASSERT_TRUE(out.has_value());
  EXPECT_LE(out->length(), 7);
  EXPECT_TRUE(validate_schedule(g, *out, comm_).ok());
}

TEST_F(RemapTest, RelaxationSucceedsWhereStrictPolicyCannot) {
  // A bulky producer-consumer pair on a long line: any placement of v needs
  // more steps than the previous length allowed.
  const Topology line = make_linear_array(2);
  const StoreAndForwardModel m(line);
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 8);   // 8 steps of transport if split across PEs
  g.add_edge(v, u, 1, 1);
  ScheduleTable shifted(g, 2);
  shifted.place(u, 0, 1);   // u occupies pe0/cs1; v was rotated out
  shifted.set_length(1);
  const auto strict = remap_rotated(g, shifted, m, {v}, 2,
                                    RemapPolicy::kWithoutRelaxation);
  // v on pe0 needs cs2 (fits in target 2!), so strict succeeds here; check
  // the tighter case: previous length 1.
  const auto strict1 = remap_rotated(g, shifted, m, {v}, 1,
                                     RemapPolicy::kWithoutRelaxation);
  EXPECT_FALSE(strict1.has_value());
  const auto relaxed = remap_rotated(g, shifted, m, {v}, 1,
                                     RemapPolicy::kWithRelaxation);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_GT(relaxed->length(), 1);
  EXPECT_TRUE(validate_schedule(g, *relaxed, m).ok());
  ASSERT_TRUE(strict.has_value());
  EXPECT_TRUE(validate_schedule(g, *strict, m).ok());
}

TEST_F(RemapTest, AnticipationOnlySelectionStillValidatesViaPsl) {
  // The paper's literal procedure (predecessor side only) must still emit
  // valid tables: rotated nodes have no zero-delay out-edges, so successor
  // slack is always purchasable with PSL padding.
  Csdfg g = g_;
  Retiming r(g.node_count());
  const NodeId A = g.node_by_name("A");
  r.add(A, 1);
  r.apply(g);
  ScheduleTable shifted(g, 4);
  shifted.place(g.node_by_name("B"), 0, 1);
  shifted.place(g.node_by_name("C"), 1, 2);
  shifted.place(g.node_by_name("D"), 0, 3);
  shifted.place(g.node_by_name("E"), 0, 4);
  shifted.place(g.node_by_name("F"), 0, 6);
  shifted.set_length(6);
  const auto out = remap_rotated(g, shifted, comm_, {A}, 7,
                                 RemapPolicy::kWithRelaxation,
                                 RemapSelection::kAnticipationOnly);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(validate_schedule(g, *out, comm_).ok());
}

}  // namespace
}  // namespace ccs
