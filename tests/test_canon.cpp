// Tests of the canonical-labeling engine (src/analysis/canon.hpp): the
// permutation property sweep over every bundled workload (random
// relabelings hash identically and every emitted witness reverifies),
// fingerprint sensitivity to single-attribute mutations, witness-tampering
// detection, automorphism/orbit pins, the corpus duplicate audit, and the
// canonical topology key the RouteCache and SolveCache share.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <numeric>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/canon.hpp"
#include "analysis/diagnostics.hpp"
#include "arch/route_cache.hpp"
#include "arch/topology.hpp"
#include "io/text_format.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

std::string data_path(const std::string& name) {
  return std::string(CCS_EXAMPLES_DATA_DIR) + "/" + name;
}

std::string slurp_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Rebuilds `g` with node v inserted at position `to_new[v]` and the edge
/// list shuffled by `rng` — the "same problem, renamed" transformation the
/// canonical form must be blind to.  Node names ride along so tests can
/// match tasks across the relabeling.
Csdfg relabel(const Csdfg& g, const std::vector<NodeId>& to_new,
              std::mt19937& rng) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> inv(n);
  for (NodeId v = 0; v < n; ++v) inv[to_new[v]] = v;
  Csdfg out(g.name() + "_relabeled");
  for (NodeId p = 0; p < n; ++p)
    out.add_node(g.node(inv[p]).name, g.node(inv[p]).time);
  std::vector<EdgeId> order(g.edge_count());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  for (const EdgeId e : order) {
    const Edge& ed = g.edge(e);
    out.add_edge(to_new[ed.from], to_new[ed.to], ed.delay, ed.volume);
  }
  return out;
}

std::vector<NodeId> random_perm(std::size_t n, std::mt19937& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

/// Every bundled workload: the library builders plus the shipped example
/// files, strictly parsed.
std::vector<std::pair<std::string, Csdfg>> bundled_workloads() {
  std::vector<std::pair<std::string, Csdfg>> all;
  all.emplace_back("paper_example6", paper_example6());
  all.emplace_back("paper_example19", paper_example19());
  all.emplace_back("elliptic_filter", elliptic_filter());
  all.emplace_back("lattice_filter", lattice_filter());
  all.emplace_back("iir_biquad_cascade(2)", iir_biquad_cascade(2));
  all.emplace_back("fir_filter(6)", fir_filter(6));
  all.emplace_back("diffeq_solver", diffeq_solver());
  all.emplace_back("correlator(4)", correlator(4));
  for (const char* file :
       {"paper_fig1b.csdfg", "paper_fig7.csdfg", "macroblock.csdfg"})
    all.emplace_back(file, parse_csdfg(slurp_file(data_path(file))));
  return all;
}

// ---------------------------------------------------------------------------
// The canonical-invariance sweep: the acceptance property of this PR.

TEST(Canon, RandomRelabelingsOfEveryWorkloadHashIdentically) {
  std::mt19937 rng(20260809);
  for (const auto& [label, g] : bundled_workloads()) {
    const CanonResult base = canonicalize(g);
    EXPECT_TRUE(base.complete) << label;
    EXPECT_TRUE(reverify(g, base)) << label;
    for (int round = 0; round < 5; ++round) {
      const Csdfg renamed = relabel(g, random_perm(g.node_count(), rng), rng);
      const CanonResult again = canonicalize(renamed);
      EXPECT_EQ(fingerprint_hex(base.fingerprint),
                fingerprint_hex(again.fingerprint))
          << label << " round " << round;
      EXPECT_TRUE(reverify(renamed, again)) << label << " round " << round;
      EXPECT_TRUE(isomorphic(g, base, renamed, again))
          << label << " round " << round;
      EXPECT_EQ(base.automorphism_count, again.automorphism_count) << label;
    }
  }
}

TEST(Canon, GraphFingerprintHelperMatchesCanonicalize) {
  const Csdfg g = paper_example6();
  EXPECT_EQ(graph_fingerprint(g),
            fingerprint_hex(canonicalize(g).fingerprint));
  EXPECT_EQ(graph_fingerprint(g).size(), 32u);
}

TEST(Canon, EmptyGraphCanonicalizes) {
  const Csdfg g("empty");
  const CanonResult canon = canonicalize(g);
  EXPECT_TRUE(canon.perm.empty());
  EXPECT_EQ(canon.automorphism_count, 1ull);
  EXPECT_TRUE(reverify(g, canon));
}

// ---------------------------------------------------------------------------
// Sensitivity: any single-attribute mutation must change the fingerprint.

TEST(Canon, SingleAttributeMutationsChangeFingerprint) {
  const Csdfg g = paper_example6();
  const std::string base = graph_fingerprint(g);

  {  // one extra delay on the first edge
    Csdfg mutated = g;
    mutated.set_delay(0, g.edge(0).delay + 1);
    EXPECT_NE(graph_fingerprint(mutated), base);
  }
  {  // one execution time bumped
    Csdfg mutated("m");
    for (NodeId v = 0; v < g.node_count(); ++v)
      mutated.add_node(g.node(v).name, g.node(v).time + (v == 0 ? 1 : 0));
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      mutated.add_edge(ed.from, ed.to, ed.delay, ed.volume);
    }
    EXPECT_NE(graph_fingerprint(mutated), base);
  }
  {  // one edge direction flipped
    Csdfg mutated("m");
    for (NodeId v = 0; v < g.node_count(); ++v)
      mutated.add_node(g.node(v).name, g.node(v).time);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      if (e == 0)
        mutated.add_edge(ed.to, ed.from, ed.delay + 1, ed.volume);
      else
        mutated.add_edge(ed.from, ed.to, ed.delay, ed.volume);
    }
    EXPECT_NE(graph_fingerprint(mutated), base);
  }
  {  // one volume bumped
    Csdfg mutated("m");
    for (NodeId v = 0; v < g.node_count(); ++v)
      mutated.add_node(g.node(v).name, g.node(v).time);
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& ed = g.edge(e);
      mutated.add_edge(ed.from, ed.to, ed.delay,
                       ed.volume + (e == 0 ? 1 : 0));
    }
    EXPECT_NE(graph_fingerprint(mutated), base);
  }
}

TEST(Canon, NameChangesDoNotChangeFingerprint) {
  const Csdfg g = paper_example6();
  Csdfg renamed("totally_different_name");
  for (NodeId v = 0; v < g.node_count(); ++v)
    renamed.add_node("task" + std::to_string(v), g.node(v).time);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    renamed.add_edge(ed.from, ed.to, ed.delay, ed.volume);
  }
  EXPECT_EQ(graph_fingerprint(renamed), graph_fingerprint(g));
}

// ---------------------------------------------------------------------------
// Witness tampering.

TEST(Canon, TamperedWitnessIsRejected) {
  const Csdfg g = paper_example19();
  CanonResult canon = canonicalize(g);
  ASSERT_TRUE(reverify(g, canon));

  CanonResult swapped = canon;
  std::swap(swapped.perm[0], swapped.perm[1]);
  EXPECT_FALSE(reverify(g, swapped));  // |Aut| = 1: any swap breaks it

  CanonResult truncated = canon;
  truncated.perm.pop_back();
  EXPECT_FALSE(reverify(g, truncated));

  CanonResult non_bijective = canon;
  non_bijective.perm[0] = non_bijective.perm[1];
  EXPECT_FALSE(reverify(g, non_bijective));

  CanonResult wrong_hash = canon;
  wrong_hash.fingerprint[0] ^= 1;
  EXPECT_FALSE(reverify(g, wrong_hash));
}

// ---------------------------------------------------------------------------
// Automorphism counting and orbits.

TEST(Canon, FanOutAutomorphismsAndOrbits) {
  // src -> {f1..f4}, all times and edge attributes equal: |Aut| = 4!.
  Csdfg g("fan");
  const NodeId src = g.add_node("src", 1);
  for (int i = 1; i <= 4; ++i)
    g.add_edge(src, g.add_node("f" + std::to_string(i), 2), 0, 1);
  const CanonResult canon = canonicalize(g);
  EXPECT_TRUE(canon.complete);
  EXPECT_EQ(canon.automorphism_count, 24ull);
  EXPECT_EQ(orbit_summary(g, canon), "{f1,f2,f3,f4}");
  EXPECT_TRUE(reverify(g, canon));
}

TEST(Canon, TwinIsolatedTasksFormOneOrbit) {
  Csdfg g("twins");
  g.add_node("a", 3);
  g.add_node("b", 3);
  g.add_node("c", 5);
  const CanonResult canon = canonicalize(g);
  EXPECT_EQ(canon.automorphism_count, 2ull);
  EXPECT_EQ(orbit_summary(g, canon), "{a,b}");
}

TEST(Canon, AsymmetricWorkloadsHaveTrivialGroup) {
  for (const char* file : {"paper_fig1b.csdfg", "paper_fig7.csdfg"}) {
    const Csdfg g = parse_csdfg(slurp_file(data_path(file)));
    const CanonResult canon = canonicalize(g);
    EXPECT_EQ(canon.automorphism_count, 1ull) << file;
    EXPECT_EQ(orbit_summary(g, canon), "") << file;
  }
}

// ---------------------------------------------------------------------------
// The corpus audit (CCS-N001 / CCS-N003).

TEST(Canon, AuditCorpusFlagsRelabeledDuplicate) {
  std::mt19937 rng(7);
  const Csdfg a = paper_example6();
  const Csdfg b = relabel(a, random_perm(a.node_count(), rng), rng);
  const Csdfg c = paper_example19();
  DiagnosticBag bag;
  audit_corpus({{"first", &a}, {"distinct", &c}, {"renamed-copy", &b}}, bag);
  bag.finalize();
  ASSERT_EQ(bag.size(), 1u) << render_text(bag);
  const Diagnostic& d = bag.diagnostics()[0];
  EXPECT_EQ(d.code, "CCS-N001");
  EXPECT_EQ(d.span.file, "renamed-copy");
  EXPECT_NE(d.message.find("'first'"), std::string::npos) << d.message;
}

TEST(Canon, AuditCorpusCleanOnDistinctWorkloads) {
  const auto all = bundled_workloads();
  // The shipped example files duplicate their library builders by design;
  // audit only the library half here (the cross-check with the files is
  // pinned in test_lint.cpp).
  DiagnosticBag bag;
  std::vector<CorpusEntry> corpus;
  for (std::size_t i = 0; i + 3 < all.size(); ++i)
    corpus.push_back({all[i].first, &all[i].second});
  audit_corpus(corpus, bag);
  bag.finalize();
  EXPECT_TRUE(bag.empty()) << render_text(bag);
}

// ---------------------------------------------------------------------------
// The canonical topology key (shared by RouteCache and SolveCache).

TEST(CanonicalTopologyKey, EqualStructuresDifferentNamesShareKeys) {
  const Topology mesh_a = make_mesh(2, 2);
  // The same structure, built directly under a different name.
  const Topology custom(mesh_a.size(), mesh_a.links(), mesh_a.directed(),
                        "handmade");
  EXPECT_NE(mesh_a.name(), custom.name());
  EXPECT_EQ(canonical_topology_key(mesh_a.size(), mesh_a.directed(),
                                   mesh_a.links()),
            canonical_topology_key(custom.size(), custom.directed(),
                                   custom.links()));
}

TEST(CanonicalTopologyKey, DirectednessAndRenumberingKeepDistinctKeys) {
  const std::vector<std::pair<std::size_t, std::size_t>> links{{0, 1}, {1, 2}};
  EXPECT_NE(canonical_topology_key(3, true, links),
            canonical_topology_key(3, false, links));
  // Renumbered machines are NOT the same machine: PE ids are observable.
  const std::vector<std::pair<std::size_t, std::size_t>> renumbered{{0, 2},
                                                                    {1, 2}};
  EXPECT_NE(canonical_topology_key(3, false, links),
            canonical_topology_key(3, false, renumbered));
  EXPECT_EQ(canonical_topology_key(3, false, links).rfind("topo1:", 0), 0u);
}

TEST(CanonicalTopologyKey, RouteCacheHitBehaviorUnchanged) {
  ASSERT_EQ(RouteCache::kNextHopLimit, 256u);
  RouteCache& cache = RouteCache::global();
  cache.clear();
  const Topology a = make_mesh(3, 3);
  const auto before = cache.stats();
  const Topology b = make_mesh(3, 3);  // same structure, fresh build
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  // The shared tables agree with a fresh uncached computation.
  const RouteTables fresh = compute_route_tables(
      a.size(), a.directed(), a.links(), a.name(), RouteCache::kNextHopLimit);
  EXPECT_EQ(a.distance(0, a.size() - 1), fresh.dist(0, a.size() - 1));
}

}  // namespace
}  // namespace ccs
