// Unit tests for the buffer-cost analysis.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/buffers.hpp"
#include "core/cyclo_compaction.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class BufferTest : public ::testing::Test {
protected:
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(BufferTest, SingleEdgeLifetimeMath) {
  // u(t=1)@pe0/1, v(t=1)@pe0/4, edge delay 0: life = 4 - 1 - 0 = 3 of an
  // L=5 table -> 1 buffer.  With delay 2: life = 2*5 + 3 = 13 -> 3 buffers.
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  const EdgeId e = g.add_edge(u, v, 0, 1);
  ScheduleTable t(g, 4);
  t.place(u, 0, 1);
  t.place(v, 0, 4);
  t.set_length(5);
  EXPECT_EQ(buffer_requirements(g, t, comm_).buffers[e], 1);

  g.set_delay(e, 2);
  const BufferReport r = buffer_requirements(g, t, comm_);
  EXPECT_EQ(r.buffers[e], 3);
  EXPECT_EQ(r.total, 3);
  EXPECT_EQ(r.max_edge, 3);
}

TEST_F(BufferTest, TransitTimeCountsAsLive) {
  // Cross-PE consumer: the value exists from production to consumption,
  // transit included, so the peak reflects the full k*L + CB - CE window.
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 1, 3);
  ScheduleTable t(g, 4);
  t.place(u, 0, 1);
  t.place(v, 1, 4);  // one hop, volume 3 -> M = 3, satisfied with L = 4
  t.set_length(4);
  // life = 1*4 + 4 - 1 = 7 -> ceil(7/4) = 2 live values at the peak.
  EXPECT_EQ(buffer_requirements(g, t, comm_).buffers[0], 2);
}

TEST_F(BufferTest, StartupSchedulesMatchHandCount) {
  const Csdfg g = paper_example6();
  const ScheduleTable t = start_up_schedule(g, mesh_, comm_);
  const BufferReport r = buffer_requirements(g, t, comm_);
  // Every zero-delay edge holds at most one live value on this table; the
  // D->A edge (delay 3) holds 3, F->E (delay 1) holds 1.
  long long expected_total = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    expected_total += std::max(1, g.edge(e).delay);
  EXPECT_EQ(r.total, expected_total);
  EXPECT_EQ(r.max_edge, 3);
}

TEST_F(BufferTest, CompactionTradesBuffersForLength) {
  // The central observation the ablation bench quantifies: the compacted
  // schedule is shorter but holds at least as many live values in total.
  const Csdfg g = paper_example6();
  const ScheduleTable startup = start_up_schedule(g, mesh_, comm_);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g, mesh_, comm_, opt);
  const long long before = buffer_requirements(g, startup, comm_).total;
  const long long after =
      buffer_requirements(res.retimed_graph, res.best, comm_).total;
  EXPECT_LT(res.best_length(), startup.length());
  EXPECT_GE(after, before);
}

TEST_F(BufferTest, LowerBoundHolsAcrossValidSchedules) {
  for (const Csdfg& g :
       {paper_example6(), paper_example19(), lattice_filter()}) {
    CycloCompactionOptions opt;
    opt.policy = RemapPolicy::kWithRelaxation;
    const auto res = cyclo_compact(g, mesh_, comm_, opt);
    EXPECT_GE(buffer_requirements(g, res.startup, comm_).total,
              buffer_lower_bound(g))
        << g.name();
    EXPECT_GE(
        buffer_requirements(res.retimed_graph, res.best, comm_).total,
        buffer_lower_bound(res.retimed_graph))
        << g.name();
  }
}

TEST_F(BufferTest, BrokenScheduleIsRejected) {
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 1);
  ScheduleTable t(g, 2);
  t.place(v, 0, 1);
  t.place(u, 0, 2);  // consumer before producer: negative lifetime
  EXPECT_THROW((void)buffer_requirements(g, t, comm_), ContractViolation);
}

}  // namespace
}  // namespace ccs
