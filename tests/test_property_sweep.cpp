// Property-based sweeps: for a grid of (workload seed, architecture,
// remapping policy) the whole pipeline must uphold its invariants —
//
//   P1  start-up and compacted schedules pass the algebraic validator;
//   P2  the cycle-accurate static simulation sees zero late arrivals
//       (the two independent referees agree);
//   P3  cyclo-compaction never returns worse than start-up, and without
//       relaxation the per-pass trace is monotone (Theorem 4.4);
//   P4  no schedule beats the iteration bound;
//   P5  rotation is a legal retiming at every pass (implied: the retimed
//       graph stays legal and the accumulated retiming reproduces it);
//   P6  self-timed execution of a valid table sustains at most its length.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/buffers.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/prologue.hpp"
#include "core/iteration_bound.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"
#include "sim/executor.hpp"
#include "workloads/generator.hpp"

namespace ccs {
namespace {

enum class Arch { kComplete, kLinear, kRing, kMesh, kHypercube, kStar };

Topology make_arch(Arch a) {
  switch (a) {
    case Arch::kComplete: return make_complete(8);
    case Arch::kLinear: return make_linear_array(8);
    case Arch::kRing: return make_ring(8);
    case Arch::kMesh: return make_mesh(4, 2);
    case Arch::kHypercube: return make_hypercube(3);
    case Arch::kStar: return make_star(8);
  }
  throw std::logic_error("unreachable");
}

using Param = std::tuple<std::uint64_t, Arch, RemapPolicy>;

class PipelineSweep : public ::testing::TestWithParam<Param> {
protected:
  Csdfg make_graph(std::uint64_t seed) {
    RandomDfgConfig cfg;
    cfg.num_nodes = 18;
    cfg.num_layers = 4;
    cfg.num_back_edges = 4;
    cfg.max_time = 3;
    cfg.max_volume = 3;
    cfg.max_delay = 3;
    return random_csdfg(cfg, seed);
  }
};

TEST_P(PipelineSweep, EndToEndInvariantsHold) {
  const auto [seed, arch, policy] = GetParam();
  const Csdfg g = make_graph(seed);
  const Topology topo = make_arch(arch);
  const StoreAndForwardModel comm(topo);

  CycloCompactionOptions opt;
  opt.policy = policy;
  const CycloCompactionResult res = cyclo_compact(g, topo, comm, opt);

  // P1: both schedules validate.
  const auto startup_report = validate_schedule(g, res.startup, comm);
  EXPECT_TRUE(startup_report.ok()) << startup_report.to_string();
  const auto best_report =
      validate_schedule(res.retimed_graph, res.best, comm);
  EXPECT_TRUE(best_report.ok()) << best_report.to_string();

  // P2: the independent referee agrees.
  ExecutorOptions sim;
  sim.iterations = 24;
  sim.warmup = 4;
  EXPECT_EQ(execute_static(g, res.startup, topo, sim).late_arrivals, 0);
  EXPECT_EQ(
      execute_static(res.retimed_graph, res.best, topo, sim).late_arrivals,
      0);

  // P3: improvement is monotone in the sense of Theorem 4.4.
  EXPECT_LE(res.best_length(), res.startup_length());
  if (policy == RemapPolicy::kWithoutRelaxation) {
    int prev = res.startup_length();
    for (const int len : res.length_trace) {
      EXPECT_LE(len, prev);
      prev = len;
    }
  }

  // P4: the iteration bound is a hard floor.
  const Rational bound = iteration_bound(g);
  EXPECT_GE(static_cast<double>(res.best_length()) + 1e-9, bound.value());

  // P5: the reported retiming reproduces the retimed graph and is legal.
  EXPECT_TRUE(res.retiming.is_legal_for(g));
  Csdfg replay = g;
  res.retiming.apply(replay);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(replay.edge(e).delay, res.retimed_graph.edge(e).delay);
  EXPECT_TRUE(res.retimed_graph.is_legal());

  // P7: the buffer analysis is defined on every valid table and respects
  // the graph-intrinsic lower bound.
  {
    const BufferReport buf =
        buffer_requirements(res.retimed_graph, res.best, comm);
    EXPECT_GE(buf.total, buffer_lower_bound(res.retimed_graph));
    EXPECT_GE(buf.max_edge, 1);
  }

  // P8: schedules round-trip through the interchange format.
  {
    const ScheduleTable back = parse_schedule(
        res.retimed_graph, serialize_schedule(res.retimed_graph, res.best));
    EXPECT_EQ(back.length(), res.best.length());
    EXPECT_TRUE(validate_schedule(res.retimed_graph, back, comm).ok());
  }

  // P9: the prologue/steady/epilogue realization replays the ORIGINAL loop
  // semantics exactly.
  {
    const LoopRealization real(g, res.retiming);
    const long long N = real.depth() + 6;
    EXPECT_EQ(check_flattening(g, real.flatten(g, res.best, N), N), "");
  }

  // P6: self-timed execution never falls behind the static cadence —
  // every iteration finishes no later than its static finish time.  (The
  // windowed rate can transiently exceed L while the pipeline fills, so
  // the rigorous comparison is makespan against makespan.)
  const ExecutionStats st =
      execute_self_timed(res.retimed_graph, res.best, topo, sim);
  const ExecutionStats stat =
      execute_static(res.retimed_graph, res.best, topo, sim);
  ASSERT_EQ(st.iteration_finish.size(), stat.iteration_finish.size());
  for (std::size_t i = 0; i < st.iteration_finish.size(); ++i)
    EXPECT_LE(st.iteration_finish[i], stat.iteration_finish[i]);
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& param_info) {
  const auto [seed, arch, policy] = param_info.param;
  std::string name = "seed" + std::to_string(seed);
  switch (arch) {
    case Arch::kComplete: name += "_complete"; break;
    case Arch::kLinear: name += "_linear"; break;
    case Arch::kRing: name += "_ring"; break;
    case Arch::kMesh: name += "_mesh"; break;
    case Arch::kHypercube: name += "_hypercube"; break;
    case Arch::kStar: name += "_star"; break;
  }
  name += policy == RemapPolicy::kWithRelaxation ? "_relax" : "_strict";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55, 66, 77, 88),
        ::testing::Values(Arch::kComplete, Arch::kLinear, Arch::kRing,
                          Arch::kMesh, Arch::kHypercube, Arch::kStar),
        ::testing::Values(RemapPolicy::kWithoutRelaxation,
                          RemapPolicy::kWithRelaxation)),
    sweep_name);

// A second, smaller sweep exercising the paper's literal anticipation-only
// remapping: it must stay valid too (its successor slack is bought with PSL
// padding).
class AnticipationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnticipationSweep, LiteralProcedureStaysValid) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 14;
  cfg.num_layers = 4;
  cfg.num_back_edges = 3;
  const Csdfg g = random_csdfg(cfg, GetParam());
  const Topology topo = make_mesh(2, 2);
  const StoreAndForwardModel comm(topo);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  opt.selection = RemapSelection::kAnticipationOnly;
  const auto res = cyclo_compact(g, topo, comm, opt);
  const auto report = validate_schedule(res.retimed_graph, res.best, comm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_LE(res.best_length(), res.startup_length());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnticipationSweep,
                         ::testing::Values(3, 14, 159, 2653, 58979));

}  // namespace
}  // namespace ccs
