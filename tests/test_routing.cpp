// Unit tests for the routing policies (BFS, XY mesh, e-cube).
#include <gtest/gtest.h>

#include "arch/routing.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

void expect_minimal_walk(const Topology& topo, const Router& router) {
  for (PeId a = 0; a < topo.size(); ++a) {
    for (PeId b = 0; b < topo.size(); ++b) {
      const auto path = router.route(a, b);
      ASSERT_EQ(path.size(), topo.distance(a, b) + 1)
          << router.name() << " " << a << "->" << b;
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_EQ(topo.distance(path[i], path[i + 1]), 1u)
            << router.name() << " hop " << i;
    }
  }
}

TEST(Routing, ShortestPathRouterIsMinimalEverywhere) {
  for (const Topology& topo :
       {make_mesh(3, 4), make_ring(7), make_hypercube(3), make_star(6)}) {
    const ShortestPathRouter router(topo);
    expect_minimal_walk(topo, router);
  }
}

TEST(Routing, XyRouterIsMinimalAndColumnFirst) {
  const Topology mesh = make_mesh(3, 4);
  const XyMeshRouter router(mesh, 3, 4);
  expect_minimal_walk(mesh, router);
  // From (0,0)=0 to (2,3)=11: the X phase visits 1, 2, 3 before any row
  // move.
  const auto path = router.route(0, 11);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
  EXPECT_EQ(path[3], 3u);
  EXPECT_EQ(path[4], 7u);
  EXPECT_EQ(path[5], 11u);
}

TEST(Routing, XyAndBfsDisagreeOnIntermediateHops) {
  // Both are minimal, but from 5 to 0 on a 2x4 mesh BFS's lowest-id
  // tie-break goes up first (5,1,0) while XY corrects the column first
  // (5,4,0) — the difference the contention model feels.
  const Topology mesh = make_mesh(2, 4);
  const ShortestPathRouter bfs(mesh);
  const XyMeshRouter xy(mesh, 2, 4);
  const auto pb = bfs.route(5, 0);
  const auto px = xy.route(5, 0);
  EXPECT_EQ(pb, (std::vector<PeId>{5, 1, 0}));
  EXPECT_EQ(px, (std::vector<PeId>{5, 4, 0}));
}

TEST(Routing, EcubeFlipsBitsLowToHigh) {
  const Topology cube = make_hypercube(3);
  const EcubeRouter router(cube, 3);
  expect_minimal_walk(cube, router);
  const auto path = router.route(0, 7);
  EXPECT_EQ(path, (std::vector<PeId>{0, 1, 3, 7}));
  const auto back = router.route(7, 0);
  EXPECT_EQ(back, (std::vector<PeId>{7, 6, 4, 0}));
}

TEST(Routing, ConstructorsValidateTheTopology) {
  const Topology mesh = make_mesh(2, 4);
  EXPECT_THROW(XyMeshRouter(mesh, 4, 2), ArchitectureError);  // transposed
  EXPECT_THROW(XyMeshRouter(make_ring(8), 2, 4), ArchitectureError);
  EXPECT_THROW(EcubeRouter(make_ring(8), 3), ArchitectureError);
  EXPECT_THROW(EcubeRouter(make_hypercube(3), 4), ArchitectureError);
  EXPECT_NO_THROW(XyMeshRouter(mesh, 2, 4));
  EXPECT_NO_THROW(EcubeRouter(make_hypercube(4), 4));
}

TEST(Routing, SelfRouteIsTrivial) {
  const Topology mesh = make_mesh(2, 2);
  const XyMeshRouter router(mesh, 2, 2);
  EXPECT_EQ(router.route(3, 3), std::vector<PeId>{3});
}

}  // namespace
}  // namespace ccs
