// The serve loop (src/serve): admission control, the degradation ladder,
// fault containment, drain semantics, and response-order determinism.
// Suite names contain "Serve" so the TSan job's ctest filter picks every
// test up (tools/check.sh) — the soak test below is the data-race hammer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "engine/solve_cache.hpp"
#include "io/serve_codec.hpp"
#include "serve/service.hpp"

namespace ccs {
namespace {

const char* kGraphA =
    "graph a\nnode x 1\nnode y 2\nedge x y 0 2\nedge y x 2 1\n";
const char* kGraphB =  // attribute-isomorphic relabeling of kGraphA
    "graph b\nnode p 1\nnode q 2\nedge p q 0 2\nedge q p 2 1\n";
const char* kGraphC =  // novel: different execution times
    "graph c\nnode x 2\nnode y 3\nedge x y 0 2\nedge y x 2 1\n";

/// Escapes a graph body for embedding in a JSON request line.
std::string jesc(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string solve_line(const std::string& id, const char* graph,
                       const std::string& extra = "") {
  return "{\"op\":\"solve\",\"id\":\"" + id + "\",\"graph\":\"" +
         jesc(graph) + "\",\"arch\":\"mesh 2 1\"" + extra + "}";
}

struct ServeRun {
  ServeSummary summary;
  std::vector<std::string> responses;
  std::string out;
  std::string err;
};

ServeRun run(const std::string& input, const ServeOptions& opts) {
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream err;
  ServeRun r;
  r.summary = run_serve(in, out, err, opts);
  r.out = out.str();
  r.err = err.str();
  std::istringstream lines(r.out);
  std::string line;
  while (std::getline(lines, line)) r.responses.push_back(line);
  return r;
}

/// Field extractor for response lines (responses are flat JSON objects in
/// the same grammar the request parser reads).
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t from = at + needle.size();
  std::size_t to = from;
  if (line[from] == '"') {
    ++from;
    to = line.find('"', from);
  } else {
    to = line.find_first_of(",}", from);
  }
  return line.substr(from, to - from);
}

TEST(ServeRung, PickerMapsThresholds) {
  ServeOptions o;
  o.full_ms = 200;
  o.compact_ms = 50;
  o.list_ms = 5;
  EXPECT_EQ(pick_serve_rung(1000, o), ServeRung::kFull);
  EXPECT_EQ(pick_serve_rung(200, o), ServeRung::kFull);
  EXPECT_EQ(pick_serve_rung(199, o), ServeRung::kCompact);
  EXPECT_EQ(pick_serve_rung(50, o), ServeRung::kCompact);
  EXPECT_EQ(pick_serve_rung(49, o), ServeRung::kList);
  EXPECT_EQ(pick_serve_rung(5, o), ServeRung::kList);
  EXPECT_EQ(pick_serve_rung(4, o), ServeRung::kBound);
  EXPECT_EQ(pick_serve_rung(0, o), ServeRung::kBound);
  EXPECT_EQ(serve_rung_name(ServeRung::kFull), "");
  EXPECT_EQ(serve_rung_name(ServeRung::kCompact), "compact");
  EXPECT_EQ(serve_rung_name(ServeRung::kList), "list-schedule");
  EXPECT_EQ(serve_rung_name(ServeRung::kBound), "bound-only");
}

TEST(Serve, AnswersEveryLineInOrder) {
  SolveCache::global().clear();
  ServeOptions o;
  const ServeRun r = run(solve_line("a", kGraphA) + "\n" +
                             "not json at all\n" +
                             solve_line("b", kGraphC) + "\n",
                         o);
  ASSERT_EQ(r.responses.size(), 3u);
  EXPECT_EQ(field(r.responses[0], "id"), "a");
  EXPECT_EQ(field(r.responses[0], "status"), "ok");
  EXPECT_EQ(field(r.responses[0], "certified"), "true");
  EXPECT_EQ(field(r.responses[1], "status"), "error");
  EXPECT_EQ(field(r.responses[1], "code"), "CCS-E001");
  EXPECT_EQ(field(r.responses[2], "id"), "b");
  EXPECT_EQ(r.summary.answered, 3);
  EXPECT_EQ(r.summary.parse_errors, 1);
  EXPECT_EQ(r.summary.stop_cause, "eof");
}

TEST(Serve, SingleJobStreamIsByteDeterministic) {
  std::string input;
  input += solve_line("a", kGraphA) + "\n";
  input += "{\"op\":\"bogus\"}\n";
  input += solve_line("b", kGraphB) + "\n";
  input += solve_line("c", kGraphC) + "\n";
  input += "{\"op\":\"solve\",\"id\":\"d\"}\n";  // missing graph/arch
  ServeOptions o;
  o.jobs = 1;
  SolveCache::global().clear();
  const ServeRun first = run(input, o);
  SolveCache::global().clear();
  const ServeRun second = run(input, o);
  EXPECT_EQ(first.out, second.out);
  EXPECT_EQ(first.summary.answered, 5);
}

TEST(Serve, ExpiredDeadlineRejectedBeforeAnyWork) {
  ServeOptions o;
  const ServeRun r = run(
      solve_line("dead", kGraphA, ",\"deadline_ms\":-3") + "\n", o);
  ASSERT_EQ(r.responses.size(), 1u);
  EXPECT_EQ(field(r.responses[0], "status"), "rejected");
  EXPECT_EQ(field(r.responses[0], "code"), "CCS-E003");
  EXPECT_EQ(r.summary.deadline_rejects, 1);
  EXPECT_EQ(r.summary.admitted, 0);
}

TEST(Serve, DeadlineSpentWhileQueuedRejectsAtDequeue) {
  ServeOptions o;
  o.jobs = 1;
  // The sleep op holds the single worker far past the second request's
  // allowance, so it ages out in the queue.
  const ServeRun r =
      run("{\"op\":\"sleep\",\"id\":\"hog\",\"sleep_ms\":150}\n" +
              solve_line("late", kGraphA, ",\"deadline_ms\":30") + "\n",
          o);
  ASSERT_EQ(r.responses.size(), 2u);
  EXPECT_EQ(field(r.responses[0], "op"), "sleep");
  EXPECT_EQ(field(r.responses[1], "status"), "rejected");
  EXPECT_EQ(field(r.responses[1], "code"), "CCS-E003");
  EXPECT_EQ(r.summary.deadline_rejects, 1);
}

TEST(Serve, LadderDegradesWithRemainingAllowance) {
  // A manual clock that never advances makes the remaining allowance at
  // dequeue exactly the request's deadline_ms — the rung choice becomes a
  // pure function of the request, bit-for-bit reproducible.
  ManualBudgetClock clock;
  ServeOptions o;
  o.clock = &clock;
  o.full_ms = 200;
  o.compact_ms = 50;
  o.list_ms = 5;
  SolveCache::global().clear();
  SolveCache::global().set_enabled(false);  // no cross-request fast path
  std::string input;
  input += solve_line("full", kGraphA, ",\"deadline_ms\":500") + "\n";
  input += solve_line("compact", kGraphA,
                      ",\"deadline_ms\":100,\"mode\":\"portfolio\"") +
           "\n";
  input += solve_line("list", kGraphA, ",\"deadline_ms\":20") + "\n";
  input += solve_line("bound", kGraphA, ",\"deadline_ms\":3") + "\n";
  const ServeRun r = run(input, o);
  SolveCache::global().set_enabled(true);
  ASSERT_EQ(r.responses.size(), 4u);
  EXPECT_EQ(field(r.responses[0], "degraded"), "");
  EXPECT_EQ(field(r.responses[0], "status"), "ok");
  EXPECT_EQ(field(r.responses[1], "degraded"), "compact");
  EXPECT_EQ(field(r.responses[1], "status"), "ok");
  EXPECT_EQ(field(r.responses[2], "degraded"), "list-schedule");
  EXPECT_EQ(field(r.responses[2], "status"), "ok");
  EXPECT_EQ(field(r.responses[3], "degraded"), "bound-only");
  EXPECT_EQ(field(r.responses[3], "status"), "uncertified");
  EXPECT_NE(field(r.responses[3], "lower_bound"), "0");
  EXPECT_EQ(r.summary.degraded, 3);
}

TEST(Serve, CacheFastPathBeatsTightDeadline) {
  ManualBudgetClock clock;
  ServeOptions o;
  o.clock = &clock;
  SolveCache::global().clear();
  // First request publishes the certified answer; the second's 2ms
  // allowance would only afford the bound-only rung, but the cache probe
  // returns the full certified schedule in microseconds.
  std::string input;
  input += solve_line("warm", kGraphA) + "\n";
  input += solve_line("tight", kGraphA, ",\"deadline_ms\":2") + "\n";
  const ServeRun r = run(input, o);
  ASSERT_EQ(r.responses.size(), 2u);
  EXPECT_EQ(field(r.responses[1], "status"), "ok");
  EXPECT_EQ(field(r.responses[1], "cache_hit"), "true");
  EXPECT_EQ(field(r.responses[1], "degraded"), "");
  EXPECT_EQ(field(r.responses[1], "certified"), "true");
  EXPECT_EQ(r.summary.cache_hits, 1);
}

TEST(Serve, FullQueueShedsWithStructuredOverload) {
  ServeOptions o;
  o.jobs = 1;
  o.queue_depth = 1;
  std::string input = "{\"op\":\"sleep\",\"id\":\"hog\",\"sleep_ms\":200}\n";
  input += solve_line("q1", kGraphA) + "\n";
  input += solve_line("q2", kGraphA) + "\n";
  input += solve_line("q3", kGraphA) + "\n";
  const ServeRun r = run(input, o);
  ASSERT_EQ(r.responses.size(), 4u);
  EXPECT_GE(r.summary.shed, 1);
  EXPECT_EQ(r.summary.answered, 4);
  int overloaded = 0;
  for (const std::string& line : r.responses)
    if (field(line, "status") == "overloaded") ++overloaded;
  EXPECT_EQ(overloaded, static_cast<int>(r.summary.shed));
}

TEST(Serve, ShutdownOpStopsAdmission) {
  ServeOptions o;
  std::string input = solve_line("a", kGraphA) + "\n";
  input += "{\"op\":\"shutdown\",\"id\":\"bye\"}\n";
  input += solve_line("never", kGraphA) + "\n";
  const ServeRun r = run(input, o);
  ASSERT_EQ(r.responses.size(), 2u);
  EXPECT_EQ(field(r.responses[1], "op"), "shutdown");
  EXPECT_EQ(r.summary.stop_cause, "shutdown-op");
  EXPECT_EQ(r.summary.lines, 2);
}

TEST(Serve, DrainDeadlinePreemptsAndRefuses) {
  ServeOptions o;
  o.jobs = 1;
  o.queue_depth = 8;
  o.drain_ms = 30;
  // EOF arrives with the worker asleep and two requests queued; the drain
  // allowance is far shorter than the sleep, so the sleeper is preempted
  // and the queued requests get structured draining refusals.
  std::string input = "{\"op\":\"sleep\",\"id\":\"hog\",\"sleep_ms\":500}\n";
  input += solve_line("q1", kGraphA) + "\n";
  input += solve_line("q2", kGraphA) + "\n";
  const ServeRun r = run(input, o);
  ASSERT_EQ(r.responses.size(), 3u);
  EXPECT_EQ(r.summary.answered, 3);
  EXPECT_GE(r.summary.drain_refusals, 1);
  EXPECT_EQ(field(r.responses[1], "status"), "rejected");
}

TEST(Serve, StatsOpReportsServiceAndCacheCounters) {
  SolveCache::global().clear();
  ServeOptions o;
  std::string input = solve_line("a", kGraphA) + "\n";
  input += solve_line("b", kGraphA) + "\n";
  input += "{\"op\":\"stats\",\"id\":\"st\"}\n";
  const ServeRun r = run(input, o);
  ASSERT_EQ(r.responses.size(), 3u);
  EXPECT_EQ(field(r.responses[2], "op"), "stats");
  EXPECT_EQ(field(r.responses[2], "cache_entries"), "1");
  EXPECT_EQ(field(r.responses[2], "serve_cache_hits"), "1");
}

TEST(Serve, OversizedLineRefusedUnparsed) {
  ServeOptions o;
  o.max_line_bytes = 256;
  std::string huge = solve_line("big", kGraphA);
  huge.insert(huge.size() - 1, ",\"pad\":\"" + std::string(512, 'x') + "\"");
  const ServeRun r = run(huge + "\n", o);
  ASSERT_EQ(r.responses.size(), 1u);
  EXPECT_EQ(field(r.responses[0], "status"), "error");
  EXPECT_EQ(field(r.responses[0], "code"), "CCS-E001");
  EXPECT_NE(r.responses[0].find("cap"), std::string::npos);
}

// The acceptance soak: >= 1000 mixed requests through 4 workers with a
// deliberately tiny cache capacity (bounded memory), zero unanswered
// lines, and every response either a result, a degraded answer, or a
// structured refusal.  Under CCSCHED_SANITIZE=thread this doubles as the
// serve-loop data-race hammer.
TEST(ServeSoak, ThousandMixedRequestsAllAnswered) {
  SolveCache::global().clear();
  SolveCache::global().set_capacity(8);
  ServeOptions o;
  o.jobs = 4;
  o.queue_depth = 64;
  std::string input;
  int lines = 0;
  for (int i = 0; i < 250; ++i) {
    input += solve_line("s" + std::to_string(i),
                        i % 3 == 0 ? kGraphA : (i % 3 == 1 ? kGraphB
                                                           : kGraphC)) +
             "\n";
    input += solve_line("d" + std::to_string(i), kGraphA,
                        ",\"deadline_ms\":" +
                            std::to_string(i % 5 == 0 ? -1 : 40)) +
             "\n";
    input += "{\"op\":\"solve\",\"id\":\"junk" + std::to_string(i) +
             "\",\"graph\":\"graph oops\",\"arch\":\"mesh 2 1\"}\n";
    input += "{not json " + std::to_string(i) + "\n";
    lines += 4;
  }
  const ServeRun r = run(input, o);
  EXPECT_EQ(r.summary.lines, lines);
  EXPECT_EQ(r.summary.answered, lines);
  EXPECT_EQ(static_cast<int>(r.responses.size()), lines);
  for (const std::string& line : r.responses) {
    const std::string status = field(line, "status");
    EXPECT_TRUE(status == "ok" || status == "uncertified" ||
                status == "error" || status == "rejected" ||
                status == "overloaded")
        << line;
  }
  // The capped cache stayed at its bound no matter how many distinct
  // fingerprints flowed through.
  EXPECT_LE(SolveCache::global().stats().entries, 8u);
  SolveCache::global().set_capacity(SolveCache::kDefaultCapacity);
  SolveCache::global().clear();
}

TEST(ServeCodec, RendersDeterministicResponseLines) {
  ServeResponseFields f;
  f.id = "x";
  f.seq = 7;
  f.status = "ok";
  f.has_result = true;
  f.certified = true;
  f.best_length = 4;
  f.lower_bound = 4;
  f.gap = 0;
  f.optimal = true;
  f.diagnostics.emplace_back("CCS-S001", "fine");
  const std::string line = render_serve_response(f);
  EXPECT_EQ(line,
            "{\"id\":\"x\",\"seq\":7,\"status\":\"ok\",\"degraded\":\"\","
            "\"cache_hit\":false,\"certified\":true,\"length\":4,"
            "\"startup\":0,\"lower_bound\":4,\"gap\":0,\"optimal\":true,"
            "\"diagnostics\":[{\"code\":\"CCS-S001\",\"message\":\"fine\"}]"
            "}");
}

TEST(ServeCodec, ParsesAndValidatesRequests) {
  const ServeParse ok = parse_serve_request(
      "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"mesh 2 1\","
      "\"deadline_ms\":250,\"mode\":\"portfolio\",\"jobs\":2}",
      4096);
  ASSERT_TRUE(ok.ok);
  EXPECT_TRUE(ok.request.has_deadline);
  EXPECT_EQ(ok.request.deadline_ms, 250);
  EXPECT_EQ(ok.request.mode, "portfolio");
  EXPECT_EQ(ok.request.jobs, 2);

  EXPECT_TRUE(parse_serve_request("   ", 4096).blank);
  EXPECT_FALSE(parse_serve_request("{\"op\":\"evil\"}", 4096).ok);
  EXPECT_FALSE(parse_serve_request(
                   "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"m\","
                   "\"deadline_ms\":99999999999999}",
                   4096)
                   .ok);
  EXPECT_FALSE(parse_serve_request(
                   "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"m\","
                   "\"deadline_ms\":1.5}",
                   4096)
                   .ok);
  EXPECT_FALSE(
      parse_serve_request("{\"op\":\"solve\",\"arch\":\"m\"}", 4096).ok);
}

}  // namespace
}  // namespace ccs
