// Unit tests for critical-cycle extraction.
#include <gtest/gtest.h>

#include "core/critical_cycle.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

namespace ccs {
namespace {

/// The witness must be a closed walk of `g` whose ratio equals the bound.
void expect_valid_witness(const Csdfg& g) {
  const CycleWitness c = critical_cycle(g);
  const Rational b = iteration_bound(g);
  if (b.num == 0) {
    EXPECT_TRUE(c.edges.empty());
    return;
  }
  ASSERT_FALSE(c.edges.empty()) << g.name();
  EXPECT_EQ(c.ratio(), b) << g.name();
  for (std::size_t i = 0; i < c.edges.size(); ++i) {
    const Edge& cur = g.edge(c.edges[i]);
    const Edge& next = g.edge(c.edges[(i + 1) % c.edges.size()]);
    EXPECT_EQ(cur.to, next.from) << g.name() << " hop " << i;
  }
  // Simple cycle: no node repeats as an edge source.
  std::vector<NodeId> sources;
  for (const EdgeId e : c.edges) sources.push_back(g.edge(e).from);
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(std::adjacent_find(sources.begin(), sources.end()),
            sources.end())
      << g.name();
}

TEST(CriticalCycle, PaperExampleWitnessIsTheEFLoop) {
  const Csdfg g = paper_example6();
  const CycleWitness c = critical_cycle(g);
  EXPECT_EQ(c.ratio(), (Rational{3, 1}));
  EXPECT_EQ(c.total_time, 3);
  EXPECT_EQ(c.total_delay, 1);
  // The only ratio-3 cycle is E->F->E.
  EXPECT_EQ(c.edges.size(), 2u);
  const std::string desc = describe_cycle(g, c);
  EXPECT_NE(desc.find("E"), std::string::npos);
  EXPECT_NE(desc.find("F"), std::string::npos);
  EXPECT_NE(desc.find("ratio 3"), std::string::npos);
}

TEST(CriticalCycle, SelfLoopWitness) {
  Csdfg g;
  g.add_node("a", 4);
  g.add_edge(0, 0, 2, 1);
  const CycleWitness c = critical_cycle(g);
  ASSERT_EQ(c.edges.size(), 1u);
  EXPECT_EQ(c.ratio(), (Rational{2, 1}));
}

TEST(CriticalCycle, AcyclicGraphsHaveNoWitness) {
  const CycleWitness c = critical_cycle(fir_filter(4));
  EXPECT_TRUE(c.edges.empty());
  EXPECT_EQ(describe_cycle(fir_filter(4), c), "(acyclic)");
}

TEST(CriticalCycle, FractionalRatioWitness) {
  Csdfg g;
  g.add_node("a", 3);
  g.add_node("b", 2);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 2, 1);
  const CycleWitness c = critical_cycle(g);
  EXPECT_EQ(c.ratio(), (Rational{5, 2}));
  EXPECT_EQ(c.edges.size(), 2u);
}

TEST(CriticalCycle, WitnessesAcrossTheLibrary) {
  for (const Csdfg& g :
       {paper_example6(), paper_example19(), elliptic_filter(),
        lattice_filter(), iir_biquad_cascade(2), diffeq_solver(),
        slowdown(paper_example6(), 3)}) {
    expect_valid_witness(g);
  }
}

TEST(CriticalCycle, PicksTheWorstOfSeveralCycles) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_node("c", 9);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 1, 1);  // ratio 2
  g.add_edge(1, 2, 0, 1);
  g.add_edge(2, 1, 2, 1);  // ratio (1+9)/2 = 5
  const CycleWitness c = critical_cycle(g);
  EXPECT_EQ(c.ratio(), (Rational{5, 1}));
  EXPECT_EQ(c.total_delay, 2);
}

}  // namespace
}  // namespace ccs
