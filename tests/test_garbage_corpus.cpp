// Hostile-input corpus: every text parser in the repo must survive
// truncated, binary, oversized, and structurally absurd inputs by reporting
// diagnostics (or a structured ParseError, for the strict layers) — never
// by crashing, hanging, or allocating absurd amounts of memory.  The corpus
// is fully deterministic (a fixed-seed LCG, no std::random_device), so a
// failure reproduces bit-for-bit; tools/check.sh runs it under ASan/UBSan.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/canon.hpp"
#include "analysis/certify.hpp"
#include "analysis/diagnostics.hpp"
#include "io/schedule_format.hpp"
#include "io/serve_codec.hpp"
#include "io/text_format.hpp"
#include "robust/fault_plan.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"

namespace ccs {
namespace {

/// Feeds one hostile input to every lenient parser and the strict topology
/// parser; the only acceptable outcomes are diagnostics and ParseError.
void expect_survives(const std::string& text, const std::string& label) {
  {
    DiagnosticBag bag;
    const auto parsed = parse_csdfg_with_spans(text, label, bag);
    bag.finalize();
    // Whatever graph the lenient parser salvages, canonical labeling must
    // terminate on it and hand back a permutation witness that reverifies.
    const CanonResult canon = canonicalize(parsed.graph);
    EXPECT_TRUE(reverify(parsed.graph, canon)) << label;
  }
  {
    DiagnosticBag bag;
    (void)parse_raw_schedule(text, label, bag);
    bag.finalize();
  }
  {
    DiagnosticBag bag;
    (void)parse_fault_spec(text, label, bag);
    bag.finalize();
  }
  try {
    (void)parse_topology(text);
  } catch (const Error&) {
    // ParseError/ArchitectureError with a structured message: acceptable.
  }
  {
    // The trace auditor (including the span-structure checks) must report
    // CCS-S013/S014 findings on hostile JSONL, never crash.
    DiagnosticBag bag;
    (void)audit_trace(text, label, false, bag);
    bag.finalize();
  }
}

TEST(GarbageCorpus, TruncatedFiles) {
  const std::vector<std::string> corpus = {
      "",
      "graph",
      "graph g\nnode a",
      "graph g\nnode a 1\nedge a",
      "schedule",
      "schedule 4",
      "schedule 4 2\nplace a",
      "fail",
      "link p0",
      "jitter C",
  };
  for (const std::string& text : corpus) expect_survives(text, "<trunc>");
}

TEST(GarbageCorpus, HostileSpanEventStreams) {
  // Structurally absurd span JSONL must produce findings, not crashes:
  // huge depths/timestamps, duplicate ends, interleaved threads, and a
  // span_begin flood with no ends.
  const std::vector<std::string> corpus = {
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"x\",\"tid\":"
      "99999999999999999999,\"ts_ns\":1}\n",
      "{\"seq\":0,\"kind\":\"span_end\",\"name\":\"\",\"tid\":0,"
      "\"ts_ns\":-99999999999999999999}\n",
      "{\"seq\":0,\"kind\":\"span_begin\",\"name\":\"a\",\"tid\":0,"
      "\"ts_ns\":5}\n"
      "{\"seq\":1,\"kind\":\"span_end\",\"name\":\"a\",\"tid\":0,"
      "\"ts_ns\":6}\n"
      "{\"seq\":2,\"kind\":\"span_end\",\"name\":\"a\",\"tid\":0,"
      "\"ts_ns\":7}\n",
  };
  for (const std::string& text : corpus) {
    DiagnosticBag bag;
    (void)audit_trace(text, "<span-garbage>", false, bag);
    bag.finalize();
  }
  std::string flood;
  for (int i = 0; i < 1000; ++i)
    flood += "{\"seq\":" + std::to_string(i) +
             ",\"kind\":\"span_begin\",\"name\":\"s\",\"tid\":" +
             std::to_string(i % 7) + ",\"ts_ns\":" + std::to_string(i) +
             "}\n";
  DiagnosticBag bag;
  EXPECT_FALSE(audit_trace(flood, "<span-flood>", false, bag));
  bag.finalize();
  EXPECT_GE(bag.count(Severity::kError), 7u);  // one per thread tag
}

TEST(GarbageCorpus, CrlfAndBomInputsParseLikePlainLf) {
  // Not just survival: a BOM'd CRLF file must mean the same thing.
  DiagnosticBag bag;
  const ParsedCsdfg dos = parse_csdfg_with_spans(
      "\xEF\xBB\xBF" "graph g\r\nnode a 1\r\nnode b 1\r\nedge a b 1\r\n",
      "<dos>", bag);
  bag.finalize();
  EXPECT_EQ(bag.count(Severity::kError), 0u);
  EXPECT_EQ(dos.graph.node_count(), 2u);
  EXPECT_EQ(dos.graph.edge_count(), 1u);
  EXPECT_EQ(dos.graph.name(), "g");

  DiagnosticBag bag2;
  const RawSchedule raw =
      parse_raw_schedule("\xEF\xBB\xBFschedule 4 2\r\nplace a 1 1\r\n",
                         "<dos>", bag2);
  bag2.finalize();
  EXPECT_EQ(bag2.count(Severity::kError), 0u);
  EXPECT_TRUE(raw.has_directive);
  ASSERT_EQ(raw.places.size(), 1u);
  EXPECT_EQ(raw.places[0].task, "a");
}

TEST(GarbageCorpus, TenMegabyteSingleLine) {
  std::string line(10u * 1024u * 1024u, 'x');
  expect_survives(line, "<long>");
  // Same bytes as a graph payload: one diagnostic, not ten million.
  DiagnosticBag bag;
  (void)parse_csdfg_with_spans("graph g\n" + line, "<long>", bag);
  bag.finalize();
  EXPECT_LE(bag.count(Severity::kError), 4u);
}

TEST(GarbageCorpus, EmbeddedNulBytes) {
  std::string text = "graph g\nnode a 1\n";
  text += '\0';
  text += "node b 1\nedge a b 1\n";
  expect_survives(text, "<nul>");
  std::string binary;
  for (int i = 0; i < 512; ++i) binary += static_cast<char>(i % 256);
  expect_survives(binary, "<binary>");
}

TEST(GarbageCorpus, DeeplyDuplicatedSections) {
  std::string graphs, schedules;
  for (int i = 0; i < 2000; ++i) {
    graphs += "graph g" + std::to_string(i) + "\n";
    schedules += "schedule 4 2\n";
  }
  DiagnosticBag bag;
  (void)parse_csdfg_with_spans(graphs, "<dup>", bag);
  bag.finalize();
  EXPECT_GE(bag.count(Severity::kError), 1u);

  DiagnosticBag bag2;
  const RawSchedule raw = parse_raw_schedule(schedules, "<dup>", bag2);
  bag2.finalize();
  EXPECT_TRUE(raw.has_directive);
  EXPECT_EQ(bag2.count(Severity::kError), 1999u);  // one per duplicate
}

TEST(GarbageCorpus, AllocationBombsAreParseErrorsNotAllocations) {
  // Strict schedule parser: the declared table would be gigabytes.
  const Csdfg g = parse_csdfg("graph g\nnode a 1\nedge a a 1\n");
  EXPECT_THROW((void)parse_schedule(g, std::string("schedule 2000000000 2\n")),
               ParseError);
  EXPECT_THROW(
      (void)parse_schedule(g, std::string("schedule 4 9999999\n")),
      ParseError);
  EXPECT_THROW((void)parse_schedule(
                   g, std::string("schedule 4 2\nplace a 1 2000000000\n")),
               ParseError);

  // Lenient layer: the same bombs become CCS-S001 diagnostics.
  for (const std::string text :
       {"schedule 2000000000 2\n", "schedule 4 9999999\n",
        "schedule 4 2\nplace a 1 2000000000\nplace a 99999999 1\n"}) {
    DiagnosticBag bag;
    (void)parse_raw_schedule(text, "<bomb>", bag);
    bag.finalize();
    EXPECT_GE(bag.count(Severity::kError), 1u) << text;
    for (const Diagnostic& d : bag.diagnostics())
      EXPECT_EQ(d.code, "CCS-S001") << text;
  }

  // Topology factories: a hostile machine size is rejected before the
  // O(P^2) distance matrix exists.
  for (const std::string spec :
       {"complete 1000000", "mesh 100000 100000", "mesh 0 5",
        "hypercube 40", "ring 99999999999999999999", "linear_array -3",
        "star 2000"}) {
    EXPECT_THROW((void)parse_topology(spec), ParseError) << spec;
  }
}

TEST(GarbageCorpus, HugeNumericFieldsInEveryGrammar) {
  expect_survives("graph g\nnode a 99999999999999999999\n", "<num>");
  expect_survives("graph g\nnode a 1\nedge a a 99999999999999999999\n",
                  "<num>");
  expect_survives("fail p99999999999999999999\n", "<num>");
  expect_survives("fail p1 @iter 99999999999999999999\n", "<num>");
  expect_survives("jitter C +99999999999999999999\n", "<num>");
  expect_survives("schedule 99999999999999999999 1\n", "<num>");
}

TEST(GarbageCorpus, DeterministicRandomBytesNeverCrashAnyParser) {
  // A tiny LCG (constants from Numerical Recipes) — fixed seed, so every
  // run feeds the parsers the exact same 256 garbage documents.
  std::uint32_t state = 0xC55C5EEDu;
  const auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state;
  };
  for (int doc = 0; doc < 256; ++doc) {
    std::string text;
    const std::size_t len = next() % 4096;
    text.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint32_t r = next();
      // Bias toward structure: mix raw bytes with grammar keywords so the
      // fuzz reaches past the first tokenizer branch.
      switch (r % 12) {
        case 0: text += "graph "; break;
        case 1: text += "node "; break;
        case 2: text += "edge "; break;
        case 3: text += "schedule "; break;
        case 4: text += "place "; break;
        case 5: text += "fail p"; break;
        case 6: text += "link p"; break;
        case 7: text += "jitter "; break;
        case 8: text += '\n'; break;
        case 9: text += std::to_string(static_cast<int>(r % 1000) - 500);
                break;
        default: text += static_cast<char>(r % 256); break;
      }
    }
    expect_survives(text, "<fuzz" + std::to_string(doc) + ">");
  }
}

// The resident serve loop faces the same hostile world as the batch
// parsers, but a crash there kills every queued request — so each hostile
// line must come back as a structured error response and the loop must
// keep answering afterwards.
TEST(GarbageCorpus, HostileServeRequestLinesGetStructuredErrors) {
  std::vector<std::string> lines;
  // Truncated JSON: object never closes.
  lines.push_back("{\"op\":\"solve\",\"graph\":\"graph g");
  // Not JSON at all.
  lines.push_back("graph g node a 1");
  // Embedded NUL bytes inside an otherwise plausible line.
  {
    std::string nul_line = "{\"op\":\"solve\",\"id\":\"n\",\"graph\":\"g\"}";
    nul_line[12] = '\0';
    nul_line[20] = '\0';
    lines.push_back(nul_line);
  }
  // Absurd deadline: beyond the accepted range.
  lines.push_back(
      "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"mesh 2 1\","
      "\"deadline_ms\":99999999999999999}");
  // Unknown op.
  lines.push_back("{\"op\":\"destroy\"}");
  // Deterministic binary garbage (same LCG as the parser fuzz above).
  {
    std::uint32_t state = 0x5E55EEDu;
    std::string bin;
    for (int i = 0; i < 512; ++i) {
      state = state * 1664525u + 1013904223u;
      char c = static_cast<char>(state % 256);
      if (c == '\n') c = '?';  // keep it a single hostile line
      bin += c;
    }
    lines.push_back(bin);
  }

  std::string input;
  for (const auto& line : lines) input += line + "\n";

  std::istringstream in(input);
  std::ostringstream out, err;
  ServeOptions opts;
  opts.jobs = 2;
  const ServeSummary summary = run_serve(in, out, err, opts);

  EXPECT_EQ(summary.lines, lines.size());
  EXPECT_EQ(summary.answered, lines.size());
  EXPECT_EQ(summary.parse_errors, lines.size());

  std::size_t responses = 0;
  std::istringstream replies(out.str());
  std::string reply;
  while (std::getline(replies, reply)) {
    ++responses;
    EXPECT_NE(reply.find("\"status\":\"error\""), std::string::npos) << reply;
    EXPECT_NE(reply.find("CCS-E001"), std::string::npos) << reply;
  }
  EXPECT_EQ(responses, lines.size());
}

// A single ~10 MB line must be refused by the length cap before any JSON
// parsing touches it, and the loop must go on to answer the next request.
TEST(GarbageCorpus, TenMegabyteLineIsRefusedByTheCap) {
  std::string huge = "{\"op\":\"solve\",\"graph\":\"";
  huge.append(10u * 1024u * 1024u, 'a');
  huge += "\"}";

  std::string input = huge + "\n";
  input += "{\"op\":\"shutdown\"}\n";

  std::istringstream in(input);
  std::ostringstream out, err;
  ServeOptions opts;  // default max_line_bytes: 1 MiB
  const ServeSummary summary = run_serve(in, out, err, opts);

  EXPECT_EQ(summary.lines, 2u);
  EXPECT_EQ(summary.answered, 2u);

  std::istringstream replies(out.str());
  std::string first;
  ASSERT_TRUE(std::getline(replies, first));
  EXPECT_NE(first.find("\"status\":\"error\""), std::string::npos) << first;
  EXPECT_NE(first.find("CCS-E001"), std::string::npos) << first;
  std::string second;
  ASSERT_TRUE(std::getline(replies, second));
  EXPECT_NE(second.find("\"op\":\"shutdown\""), std::string::npos) << second;
}

// parse_serve_request itself (below the service layer) must classify the
// same hostile shapes without throwing.
TEST(GarbageCorpus, ServeCodecSurvivesHostileLines) {
  const std::vector<std::string> corpus = {
      "{",
      "}",
      "{\"op\":",
      "{\"op\":\"solve\"}",                       // missing graph/arch
      "{\"op\":\"solve\",\"graph\":\"g\"}",        // missing arch
      "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"mesh 2 1\","
      "\"deadline_ms\":\"soon\"}",                 // non-integral deadline
      "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"mesh 2 1\","
      "\"mode\":\"warp\"}",                        // unknown mode
      "{\"op\":\"solve\",\"graph\":\"g\",\"arch\":\"mesh 2 1\","
      "\"jobs\":-4}",                              // out-of-range jobs
      std::string("\0\0\0", 3),
  };
  for (const auto& line : corpus) {
    const ServeParse parsed = parse_serve_request(line, 1u << 20);
    EXPECT_FALSE(parsed.ok) << line;
    EXPECT_FALSE(parsed.blank) << line;
    EXPECT_FALSE(parsed.code.empty()) << line;
  }
  // Sanity: a well-formed request still parses after all that.
  const ServeParse good = parse_serve_request(
      "{\"op\":\"solve\",\"graph\":\"graph g\\nnode a 1\","
      "\"arch\":\"mesh 2 1\"}",
      1u << 20);
  EXPECT_TRUE(good.ok);
}

}  // namespace
}  // namespace ccs
