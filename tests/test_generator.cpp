// Unit and property tests for the random CSDFG generator.
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "util/error.hpp"
#include "workloads/generator.hpp"

namespace ccs {
namespace {

TEST(Generator, DeterministicInSeed) {
  RandomDfgConfig cfg;
  const Csdfg a = random_csdfg(cfg, 123);
  const Csdfg b = random_csdfg(cfg, 123);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).from, b.edge(e).from);
    EXPECT_EQ(a.edge(e).to, b.edge(e).to);
    EXPECT_EQ(a.edge(e).delay, b.edge(e).delay);
    EXPECT_EQ(a.edge(e).volume, b.edge(e).volume);
  }
  for (NodeId v = 0; v < a.node_count(); ++v)
    EXPECT_EQ(a.node(v).time, b.node(v).time);
}

TEST(Generator, DifferentSeedsProduceDifferentGraphs) {
  RandomDfgConfig cfg;
  const Csdfg a = random_csdfg(cfg, 1);
  const Csdfg b = random_csdfg(cfg, 2);
  bool differs = a.edge_count() != b.edge_count();
  for (EdgeId e = 0; !differs && e < a.edge_count(); ++e)
    differs = a.edge(e).from != b.edge(e).from ||
              a.edge(e).to != b.edge(e).to || a.edge(e).delay != b.edge(e).delay;
  EXPECT_TRUE(differs);
}

TEST(Generator, RespectsConfiguredBounds) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 40;
  cfg.num_layers = 8;
  cfg.max_time = 4;
  cfg.max_volume = 5;
  cfg.max_delay = 2;
  cfg.num_back_edges = 6;
  const Csdfg g = random_csdfg(cfg, 7);
  EXPECT_EQ(g.node_count(), 40u);
  int back = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_GE(g.edge(e).volume, 1u);
    EXPECT_LE(g.edge(e).volume, 5u);
    EXPECT_GE(g.edge(e).delay, 0);
    EXPECT_LE(g.edge(e).delay, 2);
    back += g.edge(e).delay > 0;
  }
  EXPECT_EQ(back, 6);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_GE(g.node(v).time, 1);
    EXPECT_LE(g.node(v).time, 4);
  }
}

// Property sweep: every generated graph is legal and structurally sane.
class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, GeneratedGraphsAreLegalAndConnectedByLayers) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 25;
  cfg.num_layers = 5;
  cfg.num_back_edges = 4;
  const Csdfg g = random_csdfg(cfg, GetParam());
  EXPECT_TRUE(g.is_legal());
  EXPECT_NO_THROW((void)zero_delay_topological_order(g));
  // Every node beyond the first layer has at least one zero-delay producer.
  const auto roots = zero_delay_roots(g);
  EXPECT_LT(roots.size(), g.node_count());
  const DagTiming t = compute_dag_timing(g);
  EXPECT_GE(t.critical_path, static_cast<int>(cfg.num_layers));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

TEST(Generator, RejectsNonsenseConfigs) {
  RandomDfgConfig cfg;
  cfg.num_nodes = 1;
  EXPECT_THROW((void)random_csdfg(cfg, 1), GraphError);
  cfg = {};
  cfg.num_layers = 0;
  EXPECT_THROW((void)random_csdfg(cfg, 1), GraphError);
  cfg = {};
  cfg.num_nodes = 3;
  cfg.num_layers = 5;
  EXPECT_THROW((void)random_csdfg(cfg, 1), GraphError);
  cfg = {};
  cfg.extra_edge_prob = 1.5;
  EXPECT_THROW((void)random_csdfg(cfg, 1), GraphError);
  cfg = {};
  cfg.max_time = 0;
  EXPECT_THROW((void)random_csdfg(cfg, 1), GraphError);
}

}  // namespace
}  // namespace ccs
