// Tests for the Leiserson–Saxe correlator — the canonical retiming story
// reproduced end to end on this library's machinery.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/critical_cycle.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "core/retiming.hpp"
#include "core/validator.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(Correlator, StructureMatchesTheClassicExample) {
  const Csdfg g = correlator(3);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(g.total_delay(), 3);  // the three chain registers
  EXPECT_TRUE(g.is_legal());
  EXPECT_THROW((void)correlator(0), ContractViolation);
}

TEST(Correlator, OriginalClockPeriodIsTheAdderChain) {
  // Zero-delay critical path: c3 -> a3 -> a2 -> a1 -> host
  //                         = 3 + 7 + 7 + 7 + 1 = 25
  // (Leiserson-Saxe report 24 with a zero-weight host; ours must weigh 1).
  EXPECT_EQ(clock_period(correlator(3)), 25);
}

TEST(Correlator, MinPeriodRetimingCollapsesTheChain) {
  // LS reach period 13 with a zero-weight host; with the host weighing 1
  // the same retimings land at 13 or 14.  The iteration bound floors it:
  // cycle host->c1->a1->host: t = 11 over d = 1.
  const Csdfg g = correlator(3);
  EXPECT_EQ(iteration_bound(g), (Rational{11, 1}));
  const MinPeriodResult r = min_period_retiming(g);
  EXPECT_GE(r.period, 11);
  EXPECT_LE(r.period, 14);
  Csdfg retimed = g;
  r.retiming.apply(retimed);
  EXPECT_EQ(clock_period(retimed), r.period);
}

TEST(Correlator, CriticalCycleIsTheShortHostLoop) {
  const CycleWitness c = critical_cycle(correlator(3));
  EXPECT_EQ(c.ratio(), (Rational{11, 1}));
  EXPECT_EQ(c.total_delay, 1);
  EXPECT_EQ(c.edges.size(), 3u);  // host -> c1 -> a1 -> host
}

TEST(Correlator, BoundIsTapIndependentBeyondOne) {
  // Every host->ck->ak->...->host cycle adds 10 time and 1 delay per tap:
  // ratio (1 + 3k + 7k)/k = 10 + 1/k, maximized at k = 1.
  for (std::size_t taps : {1u, 2u, 4u, 6u})
    EXPECT_EQ(iteration_bound(correlator(taps)), (Rational{11, 1})) << taps;
}

TEST(Correlator, CycloCompactionApproachesTheBound) {
  const Csdfg g = correlator(3);
  const Topology cc = make_complete(4);
  const StoreAndForwardModel comm(cc);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g, cc, comm, opt);
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm).ok());
  EXPECT_GE(res.best_length(), 11);   // the iteration bound
  EXPECT_LE(res.best_length(), 2 * 11);  // and within 2x of it
  EXPECT_LT(res.best_length(), res.startup_length());
}

}  // namespace
}  // namespace ccs
