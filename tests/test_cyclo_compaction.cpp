// Integration-level tests of the full cyclo-compaction algorithm
// (Section 4), including the paper's walkthrough and Theorem 4.4.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/iteration_bound.hpp"
#include "core/validator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class CycloTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(CycloTest, PaperWalkthroughSevenToFive) {
  // Figures 2-3: start-up length 7; cyclo-compaction reaches 5 within a few
  // passes (the paper reports 5 after its third iteration).
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithoutRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  EXPECT_EQ(res.startup_length(), 7);
  EXPECT_LE(res.best_length(), 5);
  EXPECT_LE(res.best_pass, 3);
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm_).ok());
  EXPECT_TRUE(validate_schedule(g_, res.startup, comm_).ok());
}

TEST_F(CycloTest, RelaxationReachesTheIterationBoundHere) {
  // This graph's iteration bound is 3 (cycle E-F); with relaxation the
  // compactor finds a length-3 table on the 2x2 mesh.
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  EXPECT_EQ(res.best_length(), 3);
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm_).ok());
}

TEST_F(CycloTest, Theorem44MonotoneWithoutRelaxation) {
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithoutRelaxation;
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         lattice_filter(), diffeq_solver()}) {
    const auto res = cyclo_compact(g, mesh_, comm_, opt);
    int prev = res.startup_length();
    for (const int len : res.length_trace) {
      EXPECT_LE(len, prev) << g.name();
      prev = len;
    }
  }
}

TEST_F(CycloTest, BestNeverExceedsStartup) {
  for (auto policy :
       {RemapPolicy::kWithoutRelaxation, RemapPolicy::kWithRelaxation}) {
    CycloCompactionOptions opt;
    opt.policy = policy;
    const auto res = cyclo_compact(paper_example19(), mesh_, comm_, opt);
    EXPECT_LE(res.best_length(), res.startup_length());
  }
}

TEST_F(CycloTest, ScheduleLengthRespectsTheIterationBound) {
  // No static cyclic schedule can beat ceil(iteration bound).
  for (const Csdfg& g :
       {paper_example6(), paper_example19(), lattice_filter()}) {
    CycloCompactionOptions opt;
    opt.policy = RemapPolicy::kWithRelaxation;
    const auto res = cyclo_compact(g, mesh_, comm_, opt);
    const Rational b = iteration_bound(g);
    EXPECT_GE(static_cast<double>(res.best_length()) + 1e-9, b.value())
        << g.name();
  }
}

TEST_F(CycloTest, RetimingGluesGraphToSchedule) {
  // The reported retiming applied to the input graph must reproduce the
  // retimed graph the best schedule validates against.
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  Csdfg replay = g_;
  res.retiming.apply(replay);
  ASSERT_EQ(replay.edge_count(), res.retimed_graph.edge_count());
  for (EdgeId e = 0; e < replay.edge_count(); ++e)
    EXPECT_EQ(replay.edge(e).delay, res.retimed_graph.edge(e).delay);
}

TEST_F(CycloTest, ExplicitPassCountIsHonored) {
  CycloCompactionOptions opt;
  opt.passes = 2;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  EXPECT_LE(res.length_trace.size(), 2u);
}

TEST_F(CycloTest, TraceRecordsEveryPass) {
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  opt.passes = 10;
  const auto res = cyclo_compact(g_, mesh_, comm_, opt);
  EXPECT_EQ(res.length_trace.size(), 10u);
}

TEST_F(CycloTest, StalledStrictPassRepeatsPreviousValueAndEndsTrace) {
  // The documented length_trace contract: a pass that stalls (a
  // without-relaxation rollback) repeats the previous value and ends the
  // trace.  Sweep graph x topology; every config that ends early must obey
  // the contract, and at least one must actually stall so the test has
  // teeth (empirically all of these do).
  int stalls_seen = 0;
  const Topology topos[] = {make_linear_array(2), make_mesh(2, 2),
                            make_complete(4)};
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         lattice_filter(), diffeq_solver()}) {
    for (const Topology& topo : topos) {
      const StoreAndForwardModel comm(topo);
      CycloCompactionOptions opt;
      opt.policy = RemapPolicy::kWithoutRelaxation;
      opt.passes = 3 * static_cast<int>(g.node_count());
      const auto res = cyclo_compact(g, topo, comm, opt);
      const auto& trace = res.length_trace;
      ASSERT_FALSE(trace.empty()) << g.name() << " on " << topo.name();
      if (static_cast<int>(trace.size()) == opt.passes) continue;  // no stall
      ++stalls_seen;
      // The stalled pass contributed one final repeated entry: equal to the
      // entry before it, or to the start-up length when pass 1 stalled.
      const int previous = trace.size() >= 2 ? trace[trace.size() - 2]
                                             : res.startup_length();
      EXPECT_EQ(trace.back(), previous) << g.name() << " on " << topo.name();
    }
  }
  EXPECT_GT(stalls_seen, 0);
}

TEST_F(CycloTest, BestPassIndexesTheMinimumOfTheTrace) {
  // best_pass is the 1-based pass at which `best` was first reached, so
  // length_trace[best_pass - 1] must equal best_length() and be the first
  // occurrence of the trace's minimum; best_pass == 0 means no pass ever
  // improved on the start-up schedule.
  for (auto policy :
       {RemapPolicy::kWithoutRelaxation, RemapPolicy::kWithRelaxation}) {
    for (const Csdfg& g :
         {paper_example6(), paper_example19(), diffeq_solver()}) {
      CycloCompactionOptions opt;
      opt.policy = policy;
      const auto res = cyclo_compact(g, mesh_, comm_, opt);
      const auto& trace = res.length_trace;
      if (res.best_pass == 0) {
        EXPECT_EQ(res.best_length(), res.startup_length()) << g.name();
        for (const int len : trace) EXPECT_GE(len, res.startup_length());
        continue;
      }
      ASSERT_LE(static_cast<std::size_t>(res.best_pass), trace.size())
          << g.name();
      EXPECT_EQ(trace[static_cast<std::size_t>(res.best_pass) - 1],
                res.best_length())
          << g.name();
      const int minimum = *std::min_element(trace.begin(), trace.end());
      EXPECT_EQ(res.best_length(), minimum) << g.name();
      for (int i = 0; i < res.best_pass - 1; ++i)
        EXPECT_GT(trace[static_cast<std::size_t>(i)], minimum) << g.name();
    }
  }
}

TEST_F(CycloTest, SinglePeCompactionCannotBeatSerialExecution) {
  const Topology solo = make_linear_array(1);
  const StoreAndForwardModel m(solo);
  const auto res = cyclo_compact(g_, solo, m);
  EXPECT_EQ(res.best_length(), static_cast<int>(g_.total_computation()));
}

TEST_F(CycloTest, PaperExample19AcrossAllFiveArchitectures) {
  // Tables 1-10 shape: start-up 12-15, compacted roughly half; the
  // completely connected machine does at least as well as the linear array.
  const Csdfg g = paper_example19();
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  int cc_best = 0, lin_best = 0;
  const Topology archs[] = {make_complete(8), make_linear_array(8),
                            make_ring(8), make_mesh(4, 2), make_hypercube(3)};
  for (const Topology& topo : archs) {
    const StoreAndForwardModel m(topo);
    const auto res = cyclo_compact(g, topo, m, opt);
    EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, m).ok())
        << topo.name();
    EXPECT_LT(res.best_length(), res.startup_length()) << topo.name();
    if (topo.name() == "complete(8)") cc_best = res.best_length();
    if (topo.name() == "linear_array(8)") lin_best = res.best_length();
  }
  // The compactor is a heuristic: allow one step of slack in the topology
  // ordering (both machines land within a step of the best found).
  EXPECT_LE(cc_best, lin_best + 1);
}

TEST_F(CycloTest, PipelinedPesCompactAtLeastAsWell) {
  CycloCompactionOptions plain;
  CycloCompactionOptions piped;
  piped.startup.pipelined_pes = true;
  const auto a = cyclo_compact(g_, mesh_, comm_, plain);
  const auto b = cyclo_compact(g_, mesh_, comm_, piped);
  EXPECT_LE(b.best_length(), a.best_length());
}

}  // namespace
}  // namespace ccs
