// Unit tests for the schedule validator: the master edge constraint,
// resource exclusivity, and PSL (min_feasible_length), including failure
// injection.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/validator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class ValidatorTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
  NodeId A_ = g_.node_by_name("A"), B_ = g_.node_by_name("B"),
         C_ = g_.node_by_name("C"), D_ = g_.node_by_name("D"),
         E_ = g_.node_by_name("E"), F_ = g_.node_by_name("F");

  /// The paper's start-up schedule (Figure 2a / 6b): length 7, C on PE2.
  ScheduleTable paper_startup() {
    ScheduleTable t(g_, 4);
    t.place(A_, 0, 1);
    t.place(B_, 0, 2);
    t.place(C_, 1, 3);
    t.place(D_, 0, 4);
    t.place(E_, 0, 5);
    t.place(F_, 0, 7);
    return t;
  }
};

TEST_F(ValidatorTest, PaperStartupScheduleIsValid) {
  const ScheduleTable t = paper_startup();
  const auto report = validate_schedule(g_, t, comm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidatorTest, UnplacedTaskReported) {
  ScheduleTable t(g_, 4);
  t.place(A_, 0, 1);
  const auto report = validate_schedule(g_, t, comm_);
  EXPECT_FALSE(report.ok());
  int unplaced = 0;
  for (const auto& v : report.violations)
    if (v.kind == Violation::Kind::kUnplacedTask) ++unplaced;
  EXPECT_EQ(unplaced, 5);
}

TEST_F(ValidatorTest, IntraIterationCommViolationDetected) {
  // C on PE2 one step after A ends: arrival needs 1 hop x volume 1 = 1
  // extra step, so CB(C)=2 is one too early.
  ScheduleTable t = paper_startup();
  t.remove(C_);
  t.place(C_, 1, 2);
  const auto report = validate_schedule(g_, t, comm_);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations)
    found |= v.kind == Violation::Kind::kDependence &&
             v.message.find("A->C") != std::string::npos;
  EXPECT_TRUE(found) << report.to_string();
}

TEST_F(ValidatorTest, SymmetricPlacementIsEquallyValid) {
  // The paper notes C could go to PE2 or PE4 at step 3 (both one hop from
  // PE1).  Our mesh ids: pe2 = index 1, pe4 = index 2 — the mirror slot
  // must validate identically.
  ScheduleTable t = paper_startup();
  t.remove(C_);
  t.place(C_, 2, 3);
  const auto report = validate_schedule(g_, t, comm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(ValidatorTest, DeferringAProducerBreaksItsConsumer) {
  // Pushing C to step 4 satisfies A->C with room to spare but starves
  // C->E (E starts at 5, one hop of transport still pending).
  ScheduleTable t = paper_startup();
  t.remove(C_);
  t.place(C_, 1, 4);
  const auto report = validate_schedule(g_, t, comm_);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations)
    found |= v.message.find("C->E") != std::string::npos;
  EXPECT_TRUE(found) << report.to_string();
}

TEST_F(ValidatorTest, ResourceOverlapDetected) {
  // The table guards placements against its own time bookkeeping, so an
  // overlap can only be smuggled in via a graph whose execution times
  // disagree with the table's: stretch E to 3 steps (5..7 on pe0) so it
  // collides with F at step 7.
  const ScheduleTable t = paper_startup();
  Csdfg stretched("paper6_longE");
  for (NodeId v = 0; v < g_.node_count(); ++v)
    stretched.add_node(g_.node(v).name,
                       g_.node(v).name == "E" ? 3 : g_.node(v).time);
  for (EdgeId e = 0; e < g_.edge_count(); ++e)
    stretched.add_edge(g_.edge(e).from, g_.edge(e).to, g_.edge(e).delay,
                       g_.edge(e).volume);
  const auto report = validate_schedule(stretched, t, comm_);
  bool found = false;
  for (const auto& v : report.violations)
    found |= v.kind == Violation::Kind::kResourceConflict &&
             v.message.find("step 7") != std::string::npos;
  EXPECT_TRUE(found) << report.to_string();
}

TEST_F(ValidatorTest, DependenceOnlyViolationsAreClassifiedAsSuch) {
  // Every task at step 1 on its own PE: resources and bounds are fine, all
  // zero-delay dependences are broken.
  ScheduleTable bad(g_, 4);
  bad.place(B_, 0, 1);
  bad.place(E_, 1, 1);
  bad.place(A_, 2, 1);
  bad.place(C_, 3, 1);
  bad.place(D_, 2, 2);
  bad.place(F_, 3, 2);
  const auto report = validate_schedule(g_, bad, comm_);
  EXPECT_FALSE(report.ok());
  for (const auto& v : report.violations)
    EXPECT_EQ(v.kind, Violation::Kind::kDependence) << v.message;
}

TEST_F(ValidatorTest, PipelinedIssueConflictsAreLegalOverlaps) {
  Csdfg g;
  const NodeId x = g.add_node("x", 3);
  const NodeId y = g.add_node("y", 3);
  g.add_edge(x, y, 2, 1);
  ScheduleTable t(g, 1, /*pipelined_pes=*/true);
  t.place(x, 0, 1);
  t.place(y, 0, 2);  // overlapping execution, distinct issue slots
  t.set_length(4);
  const Topology solo = make_linear_array(1);
  const StoreAndForwardModel m(solo);
  EXPECT_TRUE(validate_schedule(g, t, m).ok());
}

TEST_F(ValidatorTest, OutOfTableDetected) {
  // The table itself guards CE <= length, so smuggle the breach in through
  // a graph whose F takes 2 steps while the table believes 1: F then runs
  // through step 8 of a 7-step table.
  ScheduleTable t = paper_startup();
  Csdfg longer = paper_example6();
  Csdfg g2("paper6_longF");
  for (NodeId v = 0; v < longer.node_count(); ++v)
    g2.add_node(longer.node(v).name,
                longer.node(v).name == "F" ? 2 : longer.node(v).time);
  for (EdgeId e = 0; e < longer.edge_count(); ++e)
    g2.add_edge(longer.edge(e).from, longer.edge(e).to, longer.edge(e).delay,
                longer.edge(e).volume);
  const auto report = validate_schedule(g2, t, comm_);
  bool found = false;
  for (const auto& v : report.violations)
    found |= v.kind == Violation::Kind::kOutOfTable;
  EXPECT_TRUE(found) << report.to_string();
}

TEST_F(ValidatorTest, LoopCarriedConstraintDependsOnLength) {
  // F -> E carries one delay: CB(E) + L >= CE(F) + M + 1.  With everything
  // on one PE and L = 7 the paper schedule satisfies it; squeezing the same
  // placements into a shorter declared length must eventually fail.
  ScheduleTable t = paper_startup();
  EXPECT_TRUE(validate_schedule(g_, t, comm_).ok());
  EXPECT_EQ(min_feasible_length(g_, t, comm_), 7);  // occupied length rules
}

TEST_F(ValidatorTest, MinFeasibleLengthPadsForLoopCarriedComm) {
  // Two tasks on opposite corners of the mesh joined by a delayed, bulky
  // edge: the cyclic constraint forces padding beyond the occupied length.
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 1);
  g.add_edge(v, u, 1, 6);  // volume 6 across 2 hops = 12 steps of transport
  ScheduleTable t(g, 4);
  t.place(u, 0, 1);
  t.place(v, 3, 4);  // 2 hops from pe0; v at cs4 >= 1 + 2x1 + 1 = 4: ok
  // occupied length 4; v->u needs CB(u) + L >= CE(v) + 12 + 1 = 17 -> L >= 16.
  EXPECT_EQ(min_feasible_length(g, t, comm_), 16);
  t.set_length(16);
  EXPECT_TRUE(validate_schedule(g, t, comm_).ok());
  t.set_length(15);
  EXPECT_FALSE(validate_schedule(g, t, comm_).ok());
}

TEST_F(ValidatorTest, MinFeasibleLengthMinusOneOnBrokenZeroDelayEdge) {
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 1);
  ScheduleTable t(g, 2);
  t.place(v, 0, 1);
  t.place(u, 0, 2);  // consumer before producer: no length can fix this
  EXPECT_EQ(min_feasible_length(g, t, comm_), -1);
}

TEST_F(ValidatorTest, HigherDelayDividesThePadding) {
  Csdfg g;
  const NodeId u = g.add_node("u", 1);
  const NodeId v = g.add_node("v", 1);
  g.add_edge(u, v, 0, 1);
  g.add_edge(v, u, 3, 6);  // same transport, amortized over 3 iterations
  ScheduleTable t(g, 4);
  t.place(u, 0, 1);
  t.place(v, 3, 4);
  // ceil((4 + 12 + 1 - 1)/3) = ceil(16/3) = 6.
  EXPECT_EQ(min_feasible_length(g, t, comm_), 6);
}

TEST_F(ValidatorTest, IllegalGraphFlagged) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 0, 1);
  ScheduleTable t(g, 1);
  t.place(0, 0, 1);
  t.place(1, 0, 2);
  const auto report = validate_schedule(g, t, comm_);
  bool found = false;
  for (const auto& v : report.violations)
    found |= v.kind == Violation::Kind::kIllegalGraph;
  EXPECT_TRUE(found);
}

TEST_F(ValidatorTest, ReportToStringJoinsMessages) {
  ScheduleTable t(g_, 4);
  const auto report = validate_schedule(g_, t, comm_);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not in the table"), std::string::npos);
}

}  // namespace
}  // namespace ccs
