// ccsched — differential tests for the incremental RemapEngine (API v2).
//
// The contract under test: the kIncremental backend (bitset slot tests,
// delta-maintained AN caches) is placement-for-placement identical to the
// kNaive referee (the preserved v1 code path) on every library workload,
// every paper machine, and every driver configuration.  The suite drives
// both backends through whole cyclo-compaction runs (certifying the result
// from first principles) and through randomized lockstep
// rotate/remap/commit/rollback sequences that stress the delta updates.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/certify.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/list_scheduler.hpp"
#include "core/remap_engine.hpp"
#include "core/validator.hpp"
#include "util/contracts.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

struct Machine {
  const char* name;
  Topology topo;
};

std::vector<Machine> paper_machines() {
  std::vector<Machine> machines;
  machines.push_back({"complete8", make_complete(8)});
  machines.push_back({"linear8", make_linear_array(8)});
  machines.push_back({"ring8", make_ring(8)});
  machines.push_back({"mesh4x2", make_mesh(4, 2)});
  machines.push_back({"hypercube3", make_hypercube(3)});
  return machines;
}

std::vector<std::pair<std::string, Csdfg>> library_workloads() {
  std::vector<std::pair<std::string, Csdfg>> w;
  w.emplace_back("paper6", paper_example6());
  w.emplace_back("paper19", paper_example19());
  w.emplace_back("elliptic", elliptic_filter());
  w.emplace_back("lattice", lattice_filter());
  w.emplace_back("biquad3", iir_biquad_cascade(3));
  w.emplace_back("fir8", fir_filter(8));
  w.emplace_back("diffeq", diffeq_solver());
  w.emplace_back("correlator5", correlator(5));
  return w;
}

/// Driver configuration for differential seed s: distinct (policy,
/// selection, startup priority) corners so the parity claim is exercised
/// beyond the default path.
CycloCompactionOptions seed_options(int seed) {
  CycloCompactionOptions opt;
  switch (seed % 3) {
    case 0:
      opt.policy = RemapPolicy::kWithRelaxation;
      opt.selection = RemapSelection::kBidirectional;
      opt.startup.priority = PriorityRule::kCommunicationSensitive;
      break;
    case 1:
      opt.policy = RemapPolicy::kWithoutRelaxation;
      opt.selection = RemapSelection::kBidirectional;
      opt.startup.priority = PriorityRule::kMobilityOnly;
      break;
    default:
      opt.policy = RemapPolicy::kWithRelaxation;
      opt.selection = RemapSelection::kAnticipationOnly;
      opt.startup.priority = PriorityRule::kFifo;
      break;
  }
  return opt;
}

/// Placement-for-placement equality: same grid coordinates for every task
/// and the same advertised length.  Deliberately not ScheduleTable::
/// operator== — the engine materializes tables with normalized column
/// capacity, which is representation, not meaning.
void expect_same_schedule(const ScheduleTable& a, const ScheduleTable& b,
                          const std::string& what) {
  ASSERT_EQ(a.node_count(), b.node_count()) << what;
  EXPECT_EQ(a.length(), b.length()) << what;
  for (NodeId v = 0; v < a.node_count(); ++v) {
    ASSERT_EQ(a.is_placed(v), b.is_placed(v)) << what << " node " << v;
    if (!a.is_placed(v)) continue;
    EXPECT_EQ(a.cb(v), b.cb(v)) << what << " node " << v;
    EXPECT_EQ(a.ce(v), b.ce(v)) << what << " node " << v;
    EXPECT_EQ(a.pe(v), b.pe(v)) << what << " node " << v;
  }
}

void expect_same_graph_delays(const Csdfg& a, const Csdfg& b,
                              const std::string& what) {
  ASSERT_EQ(a.edge_count(), b.edge_count()) << what;
  for (EdgeId e = 0; e < a.edge_count(); ++e)
    EXPECT_EQ(a.edge(e).delay, b.edge(e).delay) << what << " edge " << e;
}

class BackendParity : public ::testing::TestWithParam<std::size_t> {};

// The tentpole acceptance check: both backends, run through whole
// cyclo-compaction drivers across every library workload x paper machine x
// three configuration seeds, produce bit-identical schedules, traces, and
// retimings, and the incremental winner certifies clean from first
// principles (CCS-S).
TEST_P(BackendParity, CycloCompactionIsPlacementIdentical) {
  const Machine machine = paper_machines()[GetParam()];
  const StoreAndForwardModel comm(machine.topo);
  for (const auto& [wname, g] : library_workloads()) {
    for (int seed = 0; seed < 3; ++seed) {
      const std::string what =
          wname + "/" + machine.name + "/seed" + std::to_string(seed);
      CycloCompactionOptions fast = seed_options(seed);
      fast.remap_backend = RemapBackend::kIncremental;
      CycloCompactionOptions referee = fast;
      referee.remap_backend = RemapBackend::kNaive;

      const CycloCompactionResult a =
          cyclo_compact(g, machine.topo, comm, fast);
      const CycloCompactionResult b =
          cyclo_compact(g, machine.topo, comm, referee);

      EXPECT_EQ(a.backend, "incremental") << what;
      EXPECT_EQ(b.backend, "naive") << what;
      expect_same_schedule(a.best, b.best, what + " best");
      expect_same_schedule(a.startup, b.startup, what + " startup");
      expect_same_graph_delays(a.retimed_graph, b.retimed_graph, what);
      EXPECT_TRUE(a.retiming == b.retiming) << what;
      EXPECT_EQ(a.length_trace, b.length_trace) << what;
      EXPECT_EQ(a.best_pass, b.best_pass) << what;
      EXPECT_EQ(a.stop_reason, b.stop_reason) << what;

      // The Lemma 4.2 evaluation count is backend-independent by design
      // (the cache changes the cost of an evaluation, not the number).
      EXPECT_EQ(a.remap_stats.an_evaluations, b.remap_stats.an_evaluations)
          << what;
      // Backend-specific counters stay in their lanes.
      EXPECT_EQ(b.remap_stats.an_cache_hits, 0) << what;
      EXPECT_EQ(b.remap_stats.bitset_probes, 0) << what;
      EXPECT_EQ(a.remap_stats.bitset_probes, a.remap_stats.slots_scanned)
          << what;

      DiagnosticBag bag;
      EXPECT_TRUE(certify_compaction_run(g, a, comm, fast.policy, what, {},
                                         bag))
          << what << "\n";
      bag.finalize();
      EXPECT_TRUE(bag.empty()) << what;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, BackendParity,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const auto& param_info) {
                           return std::string(
                               paper_machines()[param_info.param].name);
                         });

/// Tiny deterministic xorshift so the lockstep sequences are reproducible
/// (the suite must not depend on libc rand).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// The delta-update property test: an incremental engine and a naive engine
// driven in lockstep through randomized rotate / remap / commit-or-rollback
// sequences agree on every observable after every operation.  Rollbacks are
// taken on purpose mid-run so the snapshot restore path (placements,
// bitsets, delays, retiming, origin) is exercised, not just the happy path.
TEST(RemapEngineDelta, LockstepRandomizedSequencesMatchNaive) {
  const auto machines = paper_machines();
  for (const auto& [wname, g] : library_workloads()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Machine& machine = machines[(seed + wname.size()) %
                                        machines.size()];
      const StoreAndForwardModel comm(machine.topo);
      const std::string what =
          wname + "/" + machine.name + "/seed" + std::to_string(seed);
      Rng rng{seed * 0x9e3779b97f4a7c15ull + wname.size()};

      const ScheduleTable startup = start_up_schedule(g, machine.topo, comm);
      RemapEngine fast(g, comm, RemapBackend::kIncremental);
      RemapEngine referee(g, comm, RemapBackend::kNaive);
      fast.bind(startup);
      referee.bind(startup);

      const RemapPolicy policy = (seed % 2) != 0
                                     ? RemapPolicy::kWithRelaxation
                                     : RemapPolicy::kWithoutRelaxation;
      for (int pass = 0; pass < 24; ++pass) {
        const int previous = fast.length();
        ASSERT_EQ(previous, referee.length()) << what << " pass " << pass;

        const std::vector<NodeId> ra = fast.rotate();
        const std::vector<NodeId> rb = referee.rotate();
        ASSERT_EQ(ra, rb) << what << " pass " << pass;

        const std::optional<int> la =
            fast.remap(ra, previous, policy, RemapSelection::kBidirectional);
        const std::optional<int> lb = referee.remap(
            rb, previous, policy, RemapSelection::kBidirectional);
        ASSERT_EQ(la.has_value(), lb.has_value()) << what << " pass " << pass;

        if (!la) {
          fast.rollback();
          referee.rollback();
          expect_same_schedule(fast.table(), referee.table(),
                               what + " rolled-back failure");
          break;
        }
        EXPECT_EQ(*la, *lb) << what << " pass " << pass;

        // ~1 in 4 successful passes is discarded to stress the snapshot
        // restore; both engines must take the same branch.
        if (rng.next() % 4 == 0) {
          fast.rollback();
          referee.rollback();
        } else {
          fast.commit();
          referee.commit();
        }
        const std::string step = what + " pass " + std::to_string(pass);
        expect_same_schedule(fast.table(), referee.table(), step);
        expect_same_graph_delays(fast.graph(), referee.graph(), step);
        EXPECT_TRUE(fast.retiming() == referee.retiming()) << step;
        EXPECT_EQ(fast.stats().an_evaluations,
                  referee.stats().an_evaluations)
            << step;

        // The working schedule is always valid for the working graph —
        // the engine never commits (or restores) an inconsistent state.
        const ValidationReport report =
            validate_schedule(fast.graph(), fast.table(), comm);
        EXPECT_TRUE(report.ok()) << step;
      }
    }
  }
}

TEST(RemapEngineApi, BackendNamesRoundTrip) {
  EXPECT_EQ(remap_backend_name(RemapBackend::kIncremental), "incremental");
  EXPECT_EQ(remap_backend_name(RemapBackend::kNaive), "naive");
  EXPECT_EQ(parse_remap_backend("incremental"), RemapBackend::kIncremental);
  EXPECT_EQ(parse_remap_backend("naive"), RemapBackend::kNaive);
  EXPECT_EQ(parse_remap_backend("v1"), std::nullopt);
  EXPECT_EQ(parse_remap_backend(""), std::nullopt);
}

TEST(RemapEngineApi, LifecycleContractsAreEnforced) {
  const Csdfg g = paper_example6();
  const Topology mesh = make_mesh(2, 2);
  const StoreAndForwardModel comm(mesh);
  RemapEngine engine(g, comm);
  EXPECT_FALSE(engine.bound());
  EXPECT_THROW((void)engine.rotate(), ContractViolation);
  EXPECT_THROW((void)engine.remap({}, 1, RemapPolicy::kWithRelaxation,
                                  RemapSelection::kBidirectional),
               ContractViolation);
  EXPECT_THROW((void)engine.table(), ContractViolation);

  engine.bind(start_up_schedule(g, mesh, comm));
  EXPECT_TRUE(engine.bound());
  expect_same_schedule(engine.table(), start_up_schedule(g, mesh, comm),
                       "bind round-trip");
}

// The incremental backend's reason to exist: on the paper's 19-node
// workload the bitset word probes undercut the naive backend's cell walk
// by a wide margin while producing the same schedule.  The hard >= 5x gate
// lives in bench_portfolio's quality gate; here the test pins the
// direction so a regression cannot hide between bench runs.
TEST(RemapEngineStats, IncrementalScansFewerSlotsOnPaper19) {
  const Csdfg g = paper_example19();
  const Topology mesh = make_mesh(4, 2);
  const StoreAndForwardModel comm(mesh);

  CycloCompactionOptions fast;
  fast.remap_backend = RemapBackend::kIncremental;
  CycloCompactionOptions referee = fast;
  referee.remap_backend = RemapBackend::kNaive;

  const CycloCompactionResult a = cyclo_compact(g, mesh, comm, fast);
  const CycloCompactionResult b = cyclo_compact(g, mesh, comm, referee);
  expect_same_schedule(a.best, b.best, "paper19/mesh4x2");
  EXPECT_GT(a.remap_stats.slots_scanned, 0);
  EXPECT_GT(b.remap_stats.slots_scanned,
            4 * a.remap_stats.slots_scanned)
      << "incremental " << a.remap_stats.slots_scanned << " vs naive "
      << b.remap_stats.slots_scanned;
  EXPECT_GT(a.remap_stats.an_cache_hits, 0);
}

}  // namespace
}  // namespace ccs
