// Unit tests for the baseline schedulers the paper compares against.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/baselines.hpp"
#include "core/retiming.hpp"
#include "core/validator.hpp"
#include "sim/executor.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class BaselineTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(BaselineTest, ObliviousListScheduleIsCompleteButCommBlind) {
  const ScheduleTable t = oblivious_list_schedule(g_, mesh_);
  EXPECT_TRUE(t.complete());
  // Blind to transport: C lands one step earlier than the aware schedule
  // allows, so the true-model validator rejects the table.
  EXPECT_FALSE(validate_schedule(g_, t, comm_).ok());
  // Under a free network it is a perfectly good schedule.
  EXPECT_TRUE(validate_schedule(g_, t, ZeroCommModel{}).ok());
}

TEST_F(BaselineTest, ObliviousRotationCompactsUnderZeroModel) {
  const auto res = rotation_scheduling_no_comm(g_, mesh_);
  EXPECT_LE(res.best_length(), res.startup_length());
  EXPECT_TRUE(
      validate_schedule(res.retimed_graph, res.best, ZeroCommModel{}).ok());
}

TEST_F(BaselineTest, SelfTimedPricingPenalizesObliviousPlacements) {
  // The honest comparison of Section 1's survey: an oblivious schedule,
  // executed with real transport, sustains a worse initiation interval than
  // its own (fictitious) length claims.
  const auto res = rotation_scheduling_no_comm(g_, mesh_);
  const ExecutionStats honest =
      execute_self_timed(res.retimed_graph, res.best, mesh_, {});
  EXPECT_GE(honest.steady_initiation_interval,
            static_cast<double>(res.best_length()));
}

TEST_F(BaselineTest, RetimeThenScheduleIsValidUnderTrueModel) {
  const auto res = retime_then_schedule(g_, mesh_, comm_);
  EXPECT_TRUE(res.table.complete());
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.table, comm_).ok());
  EXPECT_EQ(res.min_period, min_period_retiming(g_).period);
  EXPECT_EQ(clock_period(res.retimed_graph), res.min_period);
}

TEST_F(BaselineTest, RetimeThenScheduleHelpsOnSerialGraphs) {
  // The elliptic filter's DAG view is a pure chain; min-period retiming
  // breaks it up, so one communication-aware list pass gets a shorter
  // startup than scheduling the original graph.
  const Topology cc = make_complete(8);
  const StoreAndForwardModel m(cc);
  const Csdfg g = elliptic_filter();
  const auto baseline = retime_then_schedule(g, cc, m);
  const ScheduleTable plain = start_up_schedule(g, cc, m);
  EXPECT_LT(baseline.table.length(), plain.length());
}

}  // namespace
}  // namespace ccs
