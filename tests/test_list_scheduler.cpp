// Unit tests for the start-up scheduler (Section 3.1), pinned to the
// paper's worked example.
#include <gtest/gtest.h>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/list_scheduler.hpp"
#include "core/validator.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

class StartUpTest : public ::testing::Test {
protected:
  Csdfg g_ = paper_example6();
  Topology mesh_ = make_mesh(2, 2);
  StoreAndForwardModel comm_{mesh_};
};

TEST_F(StartUpTest, ReproducesThePaperScheduleExactly) {
  // Figure 2(a)/6(b): A@(pe1,1), B@(pe1,2-3), C@(pe2,3), D@(pe1,4),
  // E@(pe1,5-6), F@(pe1,7); length 7.
  const ScheduleTable t = start_up_schedule(g_, mesh_, comm_);
  EXPECT_EQ(t.length(), 7);
  auto at = [&](const char* n) { return t.placement(g_.node_by_name(n)); };
  EXPECT_EQ(at("A").pe, 0u);
  EXPECT_EQ(at("A").cb, 1);
  EXPECT_EQ(at("B").pe, 0u);
  EXPECT_EQ(at("B").cb, 2);
  EXPECT_EQ(at("C").pe, 1u);  // PE2: the comm-feasible early slot
  EXPECT_EQ(at("C").cb, 3);
  EXPECT_EQ(at("D").pe, 0u);
  EXPECT_EQ(at("D").cb, 4);
  EXPECT_EQ(at("E").pe, 0u);
  EXPECT_EQ(at("E").cb, 5);
  EXPECT_EQ(at("F").pe, 0u);
  EXPECT_EQ(at("F").cb, 7);
}

TEST_F(StartUpTest, ScheduleIsValidUnderTheCommModel) {
  const ScheduleTable t = start_up_schedule(g_, mesh_, comm_);
  const auto report = validate_schedule(g_, t, comm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(StartUpTest, CompleteArchitectureSchedulesShorterOrEqual) {
  // The completely connected machine can only help: every inter-PE distance
  // is 1 vs up to 2 on the mesh.
  const Topology cc = make_complete(4);
  const StoreAndForwardModel cc_comm(cc);
  const int mesh_len = start_up_schedule(g_, mesh_, comm_).length();
  const int cc_len = start_up_schedule(g_, cc, cc_comm).length();
  EXPECT_LE(cc_len, mesh_len);
}

TEST_F(StartUpTest, SinglePeSerializesEverything) {
  const Topology solo = make_linear_array(1);
  const StoreAndForwardModel m(solo);
  const ScheduleTable t = start_up_schedule(g_, solo, m);
  EXPECT_EQ(t.length(), static_cast<int>(g_.total_computation()));
  EXPECT_TRUE(validate_schedule(g_, t, m).ok());
}

TEST_F(StartUpTest, ObliviousModeIgnoresTransport) {
  // With communication ignored, C may sit at (pe2, cs2) — one step earlier
  // than the communication-aware schedule allows.
  StartUpOptions opt;
  opt.comm_aware = false;
  const ScheduleTable t = start_up_schedule(g_, mesh_, ZeroCommModel{}, opt);
  EXPECT_EQ(t.cb(g_.node_by_name("C")), 2);
  EXPECT_LE(t.length(), 7);
}

TEST_F(StartUpTest, PipelinedPesOverlapExecutions) {
  // With pipelined PEs a 2-cycle task blocks only its issue slot, so the
  // schedule can only get shorter or stay equal.
  StartUpOptions pip;
  pip.pipelined_pes = true;
  const int plain = start_up_schedule(g_, mesh_, comm_).length();
  const int piped = start_up_schedule(g_, mesh_, comm_, pip).length();
  EXPECT_LE(piped, plain);
}

TEST_F(StartUpTest, EveryPriorityRuleYieldsAValidSchedule) {
  for (auto rule : {PriorityRule::kCommunicationSensitive,
                    PriorityRule::kMobilityOnly, PriorityRule::kFifo}) {
    StartUpOptions opt;
    opt.priority = rule;
    const ScheduleTable t = start_up_schedule(g_, mesh_, comm_, opt);
    EXPECT_TRUE(validate_schedule(g_, t, comm_).ok());
  }
}

TEST_F(StartUpTest, LargerExampleSchedulesOnAllPaperArchitectures) {
  const Csdfg g = paper_example19();
  const Topology archs[] = {make_complete(8), make_linear_array(8),
                            make_ring(8), make_mesh(4, 2), make_hypercube(3)};
  int previous = 0;
  for (const Topology& topo : archs) {
    const StoreAndForwardModel m(topo);
    const ScheduleTable t = start_up_schedule(g, topo, m);
    EXPECT_TRUE(validate_schedule(g, t, m).ok()) << topo.name();
    EXPECT_TRUE(t.complete()) << topo.name();
    // Start-up lengths land in the paper's 12-15 band for this example.
    EXPECT_GE(t.length(), 10) << topo.name();
    EXPECT_LE(t.length(), 18) << topo.name();
    (void)previous;
  }
}

TEST_F(StartUpTest, EmptyGraphYieldsEmptySchedule) {
  Csdfg empty("none");
  const ScheduleTable t = start_up_schedule(empty, mesh_, comm_);
  EXPECT_EQ(t.length(), 0);
  EXPECT_TRUE(t.complete());
}

TEST_F(StartUpTest, DelayOnlyGraphParallelizesFreely) {
  // Two tasks joined solely by a loop-carried edge are independent within
  // an iteration and must land in parallel at step 1.
  Csdfg g;
  const NodeId a = g.add_node("a", 2);
  const NodeId b = g.add_node("b", 2);
  g.add_edge(a, b, 1, 1);
  const ScheduleTable t = start_up_schedule(g, mesh_, comm_);
  EXPECT_EQ(t.cb(a), 1);
  EXPECT_EQ(t.cb(b), 1);
  EXPECT_NE(t.pe(a), t.pe(b));
  // PSL padding still accounts for the loop-carried transport.
  EXPECT_TRUE(validate_schedule(g, t, comm_).ok());
}

}  // namespace
}  // namespace ccs
