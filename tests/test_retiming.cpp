// Unit tests for the retiming engine (paper sign convention) and the
// Leiserson–Saxe minimum-period substrate.
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "core/retiming.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

namespace ccs {
namespace {

TEST(Retiming, PaperConventionMovesDelaysDownstream) {
  // Figure 1(b) -> Figure 1(c): retiming A by 1 takes one delay from D->A
  // and pushes one onto each of A->B, A->C, A->E.
  Csdfg g = paper_example6();
  const NodeId A = g.node_by_name("A");
  Retiming r(g.node_count());
  r.add(A, 1);
  EXPECT_TRUE(r.is_legal_for(g));
  r.apply(g);
  auto delay = [&](const char* u, const char* v) {
    for (EdgeId e = 0; e < g.edge_count(); ++e)
      if (g.node(g.edge(e).from).name == u && g.node(g.edge(e).to).name == v)
        return g.edge(e).delay;
    ADD_FAILURE() << "no edge " << u << "->" << v;
    return -1;
  };
  EXPECT_EQ(delay("D", "A"), 2);
  EXPECT_EQ(delay("A", "B"), 1);
  EXPECT_EQ(delay("A", "C"), 1);
  EXPECT_EQ(delay("A", "E"), 1);
  EXPECT_EQ(delay("F", "E"), 1);  // untouched
  EXPECT_TRUE(g.is_legal());
}

TEST(Retiming, IllegalRetimingDetectedAndAtomic) {
  Csdfg g = paper_example6();
  const Csdfg original = g;
  Retiming r(g.node_count());
  r.add(g.node_by_name("B"), 1);  // A->B has no delay to draw
  EXPECT_FALSE(r.is_legal_for(g));
  EXPECT_THROW(r.apply(g), GraphError);
  // apply is atomic: no delay was modified.
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(g.edge(e).delay, original.edge(e).delay);
}

TEST(Retiming, RetimedDelayFormula) {
  Csdfg g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 1);
  const EdgeId e = g.add_edge(a, b, 2, 1);
  Retiming r(2);
  r.set(a, 3);
  r.set(b, 1);
  EXPECT_EQ(r.retimed_delay(g, e), 2 + 3 - 1);
}

TEST(Retiming, CompositionEqualsSequentialApplication) {
  Csdfg g = paper_example6();
  Retiming r1(g.node_count()), r2(g.node_count());
  r1.add(g.node_by_name("A"), 1);
  r2.add(g.node_by_name("A"), 1);  // second rotation of A would need D->A>=1
  r2.add(g.node_by_name("B"), 1);

  Csdfg sequential = g;
  r1.apply(sequential);
  r2.apply(sequential);

  Csdfg composed = g;
  (r1 + r2).apply(composed);

  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(sequential.edge(e).delay, composed.edge(e).delay);
}

TEST(Retiming, UniformRetimingIsIdentity) {
  Csdfg g = paper_example6();
  const Csdfg original = g;
  Retiming r(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) r.set(v, 7);
  r.apply(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_EQ(g.edge(e).delay, original.edge(e).delay);
}

TEST(Retiming, PreservesIterationBound) {
  // Retiming redistributes delays around cycles without changing cycle
  // totals, so the iteration bound is invariant.
  Csdfg g = paper_example6();
  const Rational before = iteration_bound(g);
  Retiming r(g.node_count());
  r.add(g.node_by_name("A"), 1);
  r.apply(g);
  EXPECT_EQ(iteration_bound(g), before);
}

TEST(ClockPeriod, IsZeroDelayCriticalPath) {
  EXPECT_EQ(clock_period(paper_example6()), 6);
  Csdfg g = paper_example6();
  Retiming r(g.node_count());
  r.add(g.node_by_name("A"), 1);
  r.apply(g);
  // With A's outputs registered, the longest zero-delay path is B,E,F = 5.
  EXPECT_EQ(clock_period(g), 5);
}

TEST(MinPeriod, ClassicTwoNodePipeline) {
  // a(10) -> b(10) with the loop closed by 2 delays: period 10 achievable
  // by moving one delay between the two.
  Csdfg g;
  g.add_node("a", 10);
  g.add_node("b", 10);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 2, 1);
  const MinPeriodResult r = min_period_retiming(g);
  EXPECT_EQ(r.period, 10);
  Csdfg retimed = g;
  r.retiming.apply(retimed);
  EXPECT_EQ(clock_period(retimed), 10);
}

TEST(MinPeriod, PaperExampleReachesFour) {
  // Iteration bound of Figure 1(b) is 3 but delays are integral; the best
  // achievable clock period: retime A (period 5) and further?  Verify the
  // algorithm and that the result is legal and consistent.
  const Csdfg g = paper_example6();
  const MinPeriodResult r = min_period_retiming(g);
  EXPECT_TRUE(r.retiming.is_legal_for(g));
  Csdfg retimed = g;
  r.retiming.apply(retimed);
  EXPECT_EQ(clock_period(retimed), r.period);
  EXPECT_LE(r.period, clock_period(g));
  // No legal retiming can beat ceil(iteration bound) on any cycle-bound
  // graph: E-F-E has t=3 over d=1, so period >= 3.
  EXPECT_GE(r.period, 3);
}

TEST(MinPeriod, NeverWorseThanIdentityAcrossLibrary) {
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         elliptic_filter(), lattice_filter(),
                         iir_biquad_cascade(2), diffeq_solver()}) {
    const MinPeriodResult r = min_period_retiming(g);
    EXPECT_TRUE(r.retiming.is_legal_for(g)) << g.name();
    Csdfg retimed = g;
    r.retiming.apply(retimed);
    EXPECT_TRUE(retimed.is_legal()) << g.name();
    EXPECT_EQ(clock_period(retimed), r.period) << g.name();
    EXPECT_LE(r.period, clock_period(g)) << g.name();
    // Period can never beat the heaviest node or the iteration bound.
    int max_t = 0;
    for (NodeId v = 0; v < g.node_count(); ++v)
      max_t = std::max(max_t, g.node(v).time);
    EXPECT_GE(r.period, max_t) << g.name();
    const Rational b = iteration_bound(g);
    EXPECT_GE(static_cast<double>(r.period) + 1e-9, b.value()) << g.name();
  }
}

TEST(MinPeriod, SlowdownEnablesShorterPeriods) {
  // c-slowing a graph divides its iteration bound by c, letting min-period
  // retiming pipeline deeper: the retimed period must not increase.
  const Csdfg g = elliptic_filter();
  const int p1 = min_period_retiming(g).period;
  const int p3 = min_period_retiming(slowdown(g, 3)).period;
  EXPECT_LE(p3, p1);
}

TEST(MinPeriod, RejectsIllegalGraphs) {
  Csdfg g;
  g.add_node("a", 1);
  g.add_node("b", 1);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 0, 0, 1);
  EXPECT_THROW((void)min_period_retiming(g), GraphError);
}

}  // namespace
}  // namespace ccs
