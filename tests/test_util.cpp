// Unit tests for the utility layer: contracts, Matrix, Rng, TextTable.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/contracts.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

namespace ccs {
namespace {

TEST(Contracts, ExpectsThrowsContractViolationWithLocation) {
  try {
    CCS_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresAndAssertUseDistinctKinds) {
  EXPECT_THROW(CCS_ENSURES(false), ContractViolation);
  EXPECT_THROW(CCS_ASSERT(false), ContractViolation);
  try {
    CCS_ENSURES(false);
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(CCS_EXPECTS(true));
  EXPECT_NO_THROW(CCS_ENSURES(2 + 2 == 4));
  EXPECT_NO_THROW(CCS_ASSERT(true));
}

TEST(Matrix, StoresAndRetrievesRowMajor) {
  Matrix<int> m(2, 3, -1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(0, 0) = 1;
  m(1, 2) = 7;
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(1, 2), 7);
  EXPECT_EQ(m(0, 1), -1);
}

TEST(Matrix, BoundsAreContractChecked) {
  Matrix<int> m(2, 2);
  EXPECT_THROW((void)m(2, 0), ContractViolation);
  EXPECT_THROW((void)m(0, 2), ContractViolation);
}

TEST(Matrix, FillAndEquality) {
  Matrix<int> a(2, 2, 0), b(2, 2, 0);
  EXPECT_EQ(a, b);
  a.fill(5);
  EXPECT_NE(a, b);
  b.fill(5);
  EXPECT_EQ(a, b);
}

TEST(Matrix, EmptyMatrixIsEmpty) {
  Matrix<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform_int(0, 1 << 20) != b.uniform_int(0, 1 << 20)) ++differing;
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int x = r.uniform_int(3, 5);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 5);
    saw_lo |= x == 3;
    saw_hi |= x == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng r(9);
  for (int i = 0; i < 200; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremesAreDeterministic) {
  Rng r(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, InvalidArgumentsAreContractChecked) {
  Rng r(1);
  EXPECT_THROW((void)r.uniform_int(5, 3), ContractViolation);
  EXPECT_THROW((void)r.bernoulli(1.5), ContractViolation);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"cs", "pe1"});
  t.add_row({"1", "A"});
  t.add_row({"10", "BB"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| cs "), std::string::npos);
  EXPECT_NE(s.find("| 10 "), std::string::npos);
  // All lines share one width.
  std::vector<std::size_t> widths;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    widths.push_back(nl - pos);
    pos = nl + 1;
  }
  EXPECT_TRUE(std::all_of(widths.begin(), widths.end(),
                          [&](std::size_t w) { return w == widths[0]; }));
}

TEST(TextTable, ShortRowsRenderEmptyCells) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
}

}  // namespace
}  // namespace ccs
