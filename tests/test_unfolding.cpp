// Unit tests for the unfolding transform.
#include <gtest/gtest.h>

#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "core/unfolding.hpp"
#include "util/error.hpp"
#include "workloads/library.hpp"

namespace ccs {
namespace {

TEST(Unfolding, FactorOneIsIsomorphicCopy) {
  const Csdfg g = paper_example6();
  const Unfolded u = unfold(g, 1);
  ASSERT_EQ(u.graph.node_count(), g.node_count());
  ASSERT_EQ(u.graph.edge_count(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(u.graph.edge(e).delay, g.edge(e).delay);
    EXPECT_EQ(u.graph.edge(e).volume, g.edge(e).volume);
  }
}

TEST(Unfolding, EdgeRedistributionRule) {
  // Edge with delay 3 unfolded by 2: copy i feeds copy (i+3) mod 2 with
  // delay floor((i+3)/2): i=0 -> v#1 d=1;  i=1 -> v#0 d=2.
  Csdfg g;
  g.add_node("u", 1);
  g.add_node("v", 1);
  g.add_edge(0, 1, 3, 2);
  const Unfolded un = unfold(g, 2);
  ASSERT_EQ(un.graph.edge_count(), 2u);
  const Edge e0 = un.graph.edge(0);
  EXPECT_EQ(e0.from, un.copy_of[0][0]);
  EXPECT_EQ(e0.to, un.copy_of[1][1]);
  EXPECT_EQ(e0.delay, 1);
  EXPECT_EQ(e0.volume, 2u);
  const Edge e1 = un.graph.edge(1);
  EXPECT_EQ(e1.from, un.copy_of[0][1]);
  EXPECT_EQ(e1.to, un.copy_of[1][0]);
  EXPECT_EQ(e1.delay, 2);
}

TEST(Unfolding, ZeroDelayEdgesStayIntraIteration) {
  Csdfg g;
  g.add_node("u", 1);
  g.add_node("v", 1);
  g.add_edge(0, 1, 0, 1);
  const Unfolded un = unfold(g, 3);
  for (EdgeId e = 0; e < un.graph.edge_count(); ++e) {
    EXPECT_EQ(un.graph.edge(e).delay, 0);
    // u#i -> v#i.
    const Edge& ed = un.graph.edge(e);
    EXPECT_EQ(un.graph.node(ed.from).name.back(),
              un.graph.node(ed.to).name.back());
  }
}

TEST(Unfolding, TotalDelayIsConserved) {
  // Sum over copies of floor((i+d)/f) for i = 0..f-1 equals d.
  for (int f : {2, 3, 4}) {
    const Csdfg g = paper_example6();
    const Unfolded u = unfold(g, f);
    EXPECT_EQ(u.graph.total_delay(), g.total_delay()) << "f=" << f;
    EXPECT_EQ(u.graph.total_computation(), f * g.total_computation());
  }
}

TEST(Unfolding, PreservesLegalityAcrossLibrary) {
  for (const Csdfg& g : {paper_example6(), paper_example19(),
                         elliptic_filter(), lattice_filter(),
                         diffeq_solver()}) {
    for (int f : {2, 3}) {
      const Unfolded u = unfold(g, f);
      EXPECT_TRUE(u.graph.is_legal()) << g.name() << " f=" << f;
    }
  }
}

TEST(Unfolding, IterationBoundScalesByFactor) {
  // The unfolded graph computes f original iterations per unfolded
  // iteration, so its bound is f times the original (classic result).
  const Csdfg g = paper_example6();  // bound 3
  const Rational b2 = iteration_bound(unfold(g, 2).graph);
  EXPECT_EQ(b2, (Rational{6, 1}));
  const Rational b3 = iteration_bound(unfold(g, 3).graph);
  EXPECT_EQ(b3, (Rational{9, 1}));
}

TEST(Unfolding, CopyNamesAreIndexed) {
  const Unfolded u = unfold(paper_example6(), 2);
  EXPECT_EQ(u.graph.node(u.copy_of[0][0]).name, "A.0");
  EXPECT_EQ(u.graph.node(u.copy_of[0][1]).name, "A.1");
}

TEST(Unfolding, RejectsBadFactor) {
  EXPECT_THROW((void)unfold(paper_example6(), 0), GraphError);
  EXPECT_THROW((void)unfold(paper_example6(), -2), GraphError);
}

}  // namespace
}  // namespace ccs
