// End-to-end integration tests: the full pipeline over the benchmark
// library and the paper's architectures, and the text-format CLI loop
// (parse -> schedule -> render -> serialize).
#include <gtest/gtest.h>

#include <map>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/baselines.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "io/table_printer.hpp"
#include "io/text_format.hpp"
#include "sim/executor.hpp"
#include "workloads/library.hpp"
#include "workloads/transforms.hpp"

namespace ccs {
namespace {

TEST(Integration, LibraryGraphsTimesFiveArchitectures) {
  const Csdfg graphs[] = {paper_example6(), paper_example19(),
                          lattice_filter(), iir_biquad_cascade(2),
                          diffeq_solver(), fir_filter(5)};
  const char* specs[] = {"complete 8", "linear_array 8", "ring 8", "mesh 4 2",
                         "hypercube 3"};
  for (const Csdfg& g : graphs) {
    for (const char* spec : specs) {
      const Topology topo = parse_topology(spec);
      const StoreAndForwardModel comm(topo);
      CycloCompactionOptions opt;
      opt.policy = RemapPolicy::kWithRelaxation;
      const auto res = cyclo_compact(g, topo, comm, opt);
      ASSERT_TRUE(validate_schedule(res.retimed_graph, res.best, comm).ok())
          << g.name() << " on " << spec;
      EXPECT_LE(res.best_length(), res.startup_length());
      EXPECT_EQ(
          execute_static(res.retimed_graph, res.best, topo, {}).late_arrivals,
          0)
          << g.name() << " on " << spec;
    }
  }
}

TEST(Integration, Table11ConfigurationBehavesLikeThePaper) {
  // Elliptic + lattice with slowdown 3 (Table 11 configuration).  Checks
  // the headline qualitative claims on a reduced architecture set (the
  // full sweep lives in bench_table11_filters):
  //   (a) relaxation >= strict improvement everywhere,
  //   (b) the completely connected machine compacts at least as well as
  //       the linear array under relaxation.
  std::map<std::string, int> relax_best, strict_best;
  for (const char* spec : {"complete 8", "linear_array 8"}) {
    const Topology topo = parse_topology(spec);
    const StoreAndForwardModel comm(topo);
    const Csdfg g = scale_times(slowdown(elliptic_filter(), 3), 3);
    for (auto policy :
         {RemapPolicy::kWithRelaxation, RemapPolicy::kWithoutRelaxation}) {
      CycloCompactionOptions opt;
      opt.policy = policy;
      const auto res = cyclo_compact(g, topo, comm, opt);
      ASSERT_TRUE(validate_schedule(res.retimed_graph, res.best, comm).ok());
      // Start-up length is the paper's 126 band (the DAG view is a chain).
      EXPECT_GE(res.startup_length(), 100);
      EXPECT_LE(res.startup_length(), 140);
      (policy == RemapPolicy::kWithRelaxation ? relax_best
                                              : strict_best)[spec] =
          res.best_length();
    }
  }
  for (const auto& [spec, best] : relax_best)
    EXPECT_LE(best, strict_best[spec]) << spec;
  // Both architectures compact to the 33-step iteration-bound floor (the
  // paper's Table 11 reports 35 for the completely connected machine), so
  // the topology ordering is asserted with one step of heuristic slack.
  EXPECT_LE(relax_best["complete 8"], relax_best["linear_array 8"] + 1);
}

TEST(Integration, CommAwareBeatsObliviousUnderHonestPricing) {
  // The paper's core claim: architecture-aware compaction wins once the
  // oblivious schedule pays its real communication bill.
  const Csdfg g = paper_example19();
  const Topology topo = make_linear_array(8);
  const StoreAndForwardModel comm(topo);

  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const auto aware = cyclo_compact(g, topo, comm, opt);
  const auto oblivious = rotation_scheduling_no_comm(g, topo);

  ExecutorOptions sim;
  sim.iterations = 48;
  sim.warmup = 8;
  const double aware_ii =
      execute_self_timed(aware.retimed_graph, aware.best, topo, sim)
          .steady_initiation_interval;
  const double oblivious_ii =
      execute_self_timed(oblivious.retimed_graph, oblivious.best, topo, sim)
          .steady_initiation_interval;
  EXPECT_LE(aware_ii, oblivious_ii + 1e-9);
}

TEST(Integration, TextFormatDrivesTheFullPipeline) {
  // Simulates the CLI loop: a graph written in the text format is
  // scheduled, rendered, and re-serialized without loss.
  const std::string source =
      "graph pipeline\n"
      "node in 1\nnode fir1 2\nnode fir2 2\nnode dec 1\nnode out 1\n"
      "edge in fir1 0 2\n"
      "edge fir1 fir2 0 2\n"
      "edge fir2 dec 0 1\n"
      "edge dec out 0 1\n"
      "edge out in 2 1\n"
      "edge dec fir1 1 1\n";
  const Csdfg g = parse_csdfg(source);
  const Topology topo = parse_topology("ring 4");
  const StoreAndForwardModel comm(topo);
  const auto res = cyclo_compact(g, topo, comm, {});
  EXPECT_TRUE(validate_schedule(res.retimed_graph, res.best, comm).ok());
  const std::string rendered = render_schedule(res.retimed_graph, res.best);
  EXPECT_NE(rendered.find("fir1"), std::string::npos);
  const Csdfg round = parse_csdfg(serialize_csdfg(res.retimed_graph));
  EXPECT_EQ(round.total_delay(), res.retimed_graph.total_delay());
}

TEST(Integration, ArchitectureOrderingUnderHeavyTraffic) {
  // With bulky volumes the topology ordering sharpens: diameter-1 machines
  // must not lose to the linear array on the same workload.
  const Csdfg g = scale_volumes(paper_example19(), 2);
  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  const Topology cc = make_complete(8);
  const Topology line = make_linear_array(8);
  const StoreAndForwardModel mc(cc), ml(line);
  const int best_cc = cyclo_compact(g, cc, mc, opt).best_length();
  const int best_line = cyclo_compact(g, line, ml, opt).best_length();
  EXPECT_LE(best_cc, best_line);
}

}  // namespace
}  // namespace ccs
