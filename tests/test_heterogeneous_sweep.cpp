// Property sweep for the heterogeneous extension: the P1-P9 style
// invariants must hold on machines with mixed speed factors too.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/buffers.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"
#include "sim/executor.hpp"
#include "workloads/generator.hpp"

namespace ccs {
namespace {

using Param = std::tuple<std::uint64_t, int>;  // (seed, profile index)

std::vector<int> profile(int index, std::size_t pes) {
  std::vector<int> speeds(pes, 1);
  switch (index) {
    case 0:  // uniform fast
      break;
    case 1:  // alternating 1/2
      for (std::size_t p = 1; p < pes; p += 2) speeds[p] = 2;
      break;
    case 2:  // one fast PE in a slow sea
      speeds.assign(pes, 3);
      speeds[0] = 1;
      break;
    default:
      std::abort();
  }
  return speeds;
}

class HeterogeneousSweep : public ::testing::TestWithParam<Param> {};

TEST_P(HeterogeneousSweep, PipelineInvariantsHold) {
  const auto [seed, prof] = GetParam();
  RandomDfgConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_layers = 4;
  cfg.num_back_edges = 4;
  const Csdfg g = random_csdfg(cfg, seed);
  const Topology topo = make_mesh(2, 3);
  const StoreAndForwardModel comm(topo);

  CycloCompactionOptions opt;
  opt.policy = RemapPolicy::kWithRelaxation;
  opt.startup.pe_speeds = profile(prof, topo.size());
  const auto res = cyclo_compact(g, topo, comm, opt);

  // Validity, both referees.
  const auto report = validate_schedule(res.retimed_graph, res.best, comm);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ExecutorOptions sim;
  sim.iterations = 16;
  sim.warmup = 2;
  EXPECT_EQ(
      execute_static(res.retimed_graph, res.best, topo, sim).late_arrivals,
      0);

  // Improvement and monotone best.
  EXPECT_LE(res.best_length(), res.startup_length());

  // Self-timed never behind static, per iteration.
  const auto st = execute_self_timed(res.retimed_graph, res.best, topo, sim);
  const auto fixed = execute_static(res.retimed_graph, res.best, topo, sim);
  ASSERT_FALSE(st.deadlocked);
  for (std::size_t i = 0; i < st.iteration_finish.size(); ++i)
    EXPECT_LE(st.iteration_finish[i], fixed.iteration_finish[i]);

  // Buffers and the interchange format keep working.
  EXPECT_GE(buffer_requirements(res.retimed_graph, res.best, comm).total,
            buffer_lower_bound(res.retimed_graph));
  const ScheduleTable back = parse_schedule(
      res.retimed_graph, serialize_schedule(res.retimed_graph, res.best));
  EXPECT_TRUE(validate_schedule(res.retimed_graph, back, comm).ok());
  for (PeId p = 0; p < topo.size(); ++p)
    EXPECT_EQ(back.pe_speed(p), res.best.pe_speed(p));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HeterogeneousSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(5, 10, 15, 20, 25,
                                                        30),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_profile" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace ccs
