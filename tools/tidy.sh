#!/usr/bin/env bash
# Runs clang-tidy (configuration in .clang-tidy) over the ccsched sources
# using the compile_commands.json of a build tree.
#
# Usage: tools/tidy.sh [build-dir] [file...]
#   build-dir  defaults to ./build; configured with compile commands export
#              if it does not exist yet.
#   file...    specific sources to check; defaults to every .cpp under src/.
#
# Exits 0 with a notice when clang-tidy is not installed, so callers (CI,
# pre-commit hooks) can invoke it unconditionally: environments without the
# tool skip the gate instead of failing it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "tidy.sh: clang-tidy not found; skipping static analysis" >&2
  echo "tidy.sh: install clang-tidy or set CLANG_TIDY to enable this gate" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(find "${repo_root}/src" -name '*.cpp' | sort)
fi

echo "tidy.sh: ${tidy_bin} over ${#files[@]} file(s)"
"${tidy_bin}" -p "${build_dir}" --quiet "${files[@]}"
