#!/usr/bin/env bash
# Configures, builds, and runs the test suite under sanitizers (the
# CCSCHED_SANITIZE CMake option), so every change — the observability
# instrumentation and the portfolio worker pool included — is checked.
#
# Usage: tools/check.sh [build-dir]   (default: build-sanitize[-<set>])
# Environment: CCSCHED_SANITIZE (or legacy SANITIZERS) picks the set:
#   address,undefined   the default — leak/UB-check the full suite + gates
#   thread              ThreadSanitizer over the concurrency surface (the
#                       portfolio engine, route cache, solver, budgets, obs);
#                       TSan cannot combine with ASan, and its ~10x slowdown
#                       makes the full CLI gates pointless, so this variant
#                       runs the filtered ctest only.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers="${CCSCHED_SANITIZE:-${SANITIZERS:-address,undefined}}"
default_dir="${repo_root}/build-sanitize"
if [ "${sanitizers}" != "address,undefined" ]; then
  default_dir="${repo_root}/build-sanitize-${sanitizers//,/-}"
fi
build_dir="${1:-${default_dir}}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCCSCHED_SANITIZE="${sanitizers}"
cmake --build "${build_dir}" -j

if [[ ",${sanitizers}," == *",thread,"* ]]; then
  # The determinism tests in this filter run the worker pool at jobs up to 8
  # and hammer the route cache from concurrent constructors — the races TSan
  # exists to catch.  TSan needs a generous timeout.
  ctest --test-dir "${build_dir}" --output-on-failure --timeout 300 \
    -j "$(nproc)" -R 'Portfolio|RouteCache|Solver|Budget|Obs|Serve|Remap'
  # Profiled portfolio smoke: span recording under 8 workers (per-attempt
  # profilers, attempt-ordered absorb) must be TSan-clean end to end.
  tsan_tmp="$(mktemp -d)"
  "${build_dir}/tools/ccsched" schedule \
    "${repo_root}/examples/data/paper_fig7.csdfg" --arch "mesh 4 2" \
    --portfolio --jobs 8 --quiet --profile "${tsan_tmp}/profile.json" \
    > /dev/null
  grep -q '"traceEvents"' "${tsan_tmp}/profile.json"
  rm -rf "${tsan_tmp}"
  echo "profiled portfolio smoke: TSan-clean"
  exit 0
fi

ctest --test-dir "${build_dir}" --output-on-failure --timeout 60 -j "$(nproc)"

# Lint smoke gate: every shipped good graph must be diagnostic-free under
# --werror, and every file in the malformed corpus must be rejected.  The
# a00x corpus files only misbehave relative to an architecture, so the gate
# supplies the spec each file documents in its header comment.
ccsched="${build_dir}/tools/ccsched"
echo "== lint smoke gate =="
for graph in "${repo_root}"/examples/data/*.csdfg; do
  arch="mesh 2 2"
  case "$(basename "${graph}")" in
    # The 19-node paper workload targets the paper's 8-PE machines; on the
    # 4-PE gate machine its ASAP width trips CCS-A001 by design.
    paper_fig7.csdfg) arch="mesh 4 2" ;;
  esac
  "${ccsched}" lint "${graph}" --arch "${arch}" --werror
  echo "clean: ${graph}"
done
for graph in "${repo_root}"/examples/data/bad/*.csdfg; do
  args=()
  case "$(basename "${graph}")" in
    a001_*) args=(--arch "linear_array 2") ;;
    a002_*) args=(--arch "mesh 2 2") ;;
    a003_*) args=(--arch "complete 3" --speeds 1,2) ;;
  esac
  if "${ccsched}" lint "${graph}" "${args[@]}" --werror >/dev/null; then
    echo "error: ${graph} should have been rejected" >&2
    exit 1
  fi
  echo "rejected as expected: ${graph}"
done

# Fingerprint smoke gate (docs/DIAGNOSTICS.md, CCS-N rules): the canonical
# identity of every shipped graph must be byte-deterministic across runs,
# the shipped files must contain no unannotated isomorphic duplicates, and
# the --isomorphic verdict must agree with itself (reflexive) and reject a
# genuinely different workload.
echo "== fingerprint smoke gate =="
fp_tmp="$(mktemp -d)"
"${ccsched}" fingerprint "${repo_root}"/examples/data/*.csdfg \
  > "${fp_tmp}/fp1.txt"
"${ccsched}" fingerprint "${repo_root}"/examples/data/*.csdfg \
  > "${fp_tmp}/fp2.txt"
cmp "${fp_tmp}/fp1.txt" "${fp_tmp}/fp2.txt" || {
  echo "error: fingerprint output is not byte-deterministic" >&2
  exit 1
}
if grep -q 'CCS-N001' "${fp_tmp}/fp1.txt"; then
  echo "error: unexpected duplicate among shipped graph files" >&2
  cat "${fp_tmp}/fp1.txt" >&2
  exit 1
fi
"${ccsched}" fingerprint --isomorphic \
  "${repo_root}"/examples/data/paper_fig1b.csdfg \
  "${repo_root}"/examples/data/paper_fig1b.csdfg > /dev/null
if "${ccsched}" fingerprint --isomorphic \
    "${repo_root}"/examples/data/paper_fig1b.csdfg \
    "${repo_root}"/examples/data/paper_fig7.csdfg > /dev/null; then
  echo "error: distinct workloads reported isomorphic" >&2
  exit 1
fi
rm -rf "${fp_tmp}"
echo "fingerprints deterministic, no duplicates, isomorphism verdicts sane"

# Analyze smoke gate (docs/ALGORITHM.md, CCS-B rules): the static bound
# report must succeed on every shipped graph, emit at least the iteration
# bound pass, and agree with itself under --werror (bounds are notes, never
# failures).  The witness audit inside `analyze` re-derives every value, so
# a pass/witness mismatch fails here before any schedule is produced.
echo "== analyze smoke gate =="
analyze_out="$(mktemp)"
for graph in "${repo_root}"/examples/data/*.csdfg; do
  arch="mesh 2 2"
  case "$(basename "${graph}")" in
    paper_fig7.csdfg) arch="mesh 4 2" ;;
  esac
  "${ccsched}" analyze "${graph}" --arch "${arch}" --werror \
    > "${analyze_out}" 2>&1 || {
      echo "error: analyze failed on ${graph}" >&2
      cat "${analyze_out}" >&2
      exit 1
    }
  if ! grep -q "composite lower bound" "${analyze_out}"; then
    echo "error: analyze printed no composite bound for ${graph}" >&2
    exit 1
  fi
  echo "analyzed: ${graph}"
done
rm -f "${analyze_out}"

# Certify gate (docs/DIAGNOSTICS.md, CCS-S rules).  Two directions:
#  1. every schedule the pipeline produces over the shipped graphs must
#     certify clean — in-process (--certify) and again after a file
#     round trip through --emit-graph/--emit-schedule;
#  2. every mutation in examples/data/bad_schedules must be rejected with
#     exactly the CCS-S code its name promises, in text and SARIF alike.
echo "== certify gate =="
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
for graph in "${repo_root}"/examples/data/*.csdfg; do
  for policy in relax strict startup modulo; do
    "${ccsched}" schedule "${graph}" --arch "mesh 2 2" --policy "${policy}" \
      --certify --quiet --emit-graph --emit-schedule > "${workdir}/art.txt"
    sed -n '/^graph /,/^schedule /p' "${workdir}/art.txt" | sed '$d' \
      > "${workdir}/rt.csdfg"
    sed -n '/^schedule /,$p' "${workdir}/art.txt" > "${workdir}/rt.sched"
    "${ccsched}" certify "${workdir}/rt.sched" --graph "${workdir}/rt.csdfg" \
      --arch "mesh 2 2" > /dev/null
    echo "certified (${policy}): ${graph}"
  done
done
bad_sched_dir="${repo_root}/examples/data/bad_schedules"
for sched in "${bad_sched_dir}"/s*.sched; do
  code="CCS-S$(basename "${sched}" | cut -c2-4)"
  for format in text sarif; do
    if "${ccsched}" certify "${sched}" --graph "${bad_sched_dir}/graph.csdfg" \
        --arch "linear_array 2" --format "${format}" > "${workdir}/out.txt"; then
      echo "error: ${sched} should have been rejected (${format})" >&2
      exit 1
    fi
    if ! grep -q "${code}" "${workdir}/out.txt"; then
      echo "error: ${sched} (${format}) did not report ${code}" >&2
      cat "${workdir}/out.txt" >&2
      exit 1
    fi
  done
  echo "rejected with ${code}: ${sched}"
done

# Remap backend gate (docs/API.md "v1 -> v2"): the incremental engine and
# the naive v1 referee must render byte-identical schedules on the paper
# workloads — the shell-level echo of the differential test suite.  And the
# deprecated v1 shims must stay consumable warning-clean by downstream code
# built with -Wall -Wextra -Werror (the [[deprecated]] attributes only
# arm under CCSCHED_WARN_DEPRECATED, where the warning must actually fire).
echo "== remap backend gate =="
for graph in "${repo_root}"/examples/data/paper_fig1b.csdfg \
             "${repo_root}"/examples/data/paper_fig7.csdfg; do
  arch="mesh 2 2"
  case "$(basename "${graph}")" in paper_fig7.csdfg) arch="mesh 4 2" ;; esac
  for policy in relax strict; do
    "${ccsched}" schedule "${graph}" --arch "${arch}" --policy "${policy}" \
      --remap-backend incremental > "${workdir}/inc.out"
    "${ccsched}" schedule "${graph}" --arch "${arch}" --policy "${policy}" \
      --remap-backend naive > "${workdir}/nai.out"
    cmp "${workdir}/inc.out" "${workdir}/nai.out" || {
      echo "error: backends diverge on ${graph} (${policy})" >&2
      exit 1
    }
  done
  echo "backends identical: ${graph}"
done
cat > "${workdir}/shim_user.cpp" <<'EOF'
#include "core/remap.hpp"
int use(const ccs::Csdfg& g, const ccs::ScheduleTable& t,
        const ccs::CommModel& m) {
  return ccs::anticipation(g, t, m, 0, 0, 4) +
         ccs::latest_start(g, t, m, 0, 0, 4);
}
EOF
cxx="${CXX:-c++}"
"${cxx}" -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
  -I "${repo_root}/src" "${workdir}/shim_user.cpp" || {
  echo "error: deprecated shims are not warning-clean downstream" >&2
  exit 1
}
if ! "${cxx}" -std=c++20 -fsyntax-only -Wall -Wextra \
    -DCCSCHED_WARN_DEPRECATED -I "${repo_root}/src" \
    "${workdir}/shim_user.cpp" 2> "${workdir}/shim_warn.txt"; then
  echo "error: shim TU failed to compile under CCSCHED_WARN_DEPRECATED" >&2
  cat "${workdir}/shim_warn.txt" >&2
  exit 1
fi
grep -q "deprecated" "${workdir}/shim_warn.txt" || {
  echo "error: CCSCHED_WARN_DEPRECATED produced no deprecation warning" >&2
  exit 1
}
echo "remap backend + shim hygiene gates passed"

# Stress gate (docs/ROBUSTNESS.md): a single-PE fail-stop must walk the
# repair ladder to a certified schedule on every shipped workload, and the
# worked failover example must end certified — all under the sanitizers.
echo "== stress gate =="
printf 'fail p0\n' > "${workdir}/fail0.faults"
for graph in "${repo_root}"/examples/data/*.csdfg; do
  "${ccsched}" stress "${graph}" --arch "mesh 2 2" \
    --faults "${workdir}/fail0.faults" --repair --quiet > /dev/null
  echo "repaired after fail p0: ${graph}"
done
"${ccsched}" stress "${repo_root}/examples/data/paper_fig1b.csdfg" \
  --arch "mesh 2 2" --faults "${repo_root}/examples/data/failover.faults" \
  --repair --quiet > /dev/null
echo "failover walkthrough repaired"

# Profile gate (docs/OBSERVABILITY.md): a profiled portfolio run must
# produce a loadable Chrome trace with span histograms in the stats, the
# hot-path report must render, and `report --diff` must exit 0 on identical
# inputs and 1 on a regression — those exit codes are the CI contract, so
# they are asserted explicitly rather than left to `set -e`.
echo "== profile gate =="
"${ccsched}" schedule "${repo_root}/examples/data/paper_fig7.csdfg" \
  --arch "mesh 4 2" --portfolio --jobs 4 --quiet \
  --profile "${workdir}/profile.json" --stats "${workdir}/stats.json" \
  > /dev/null
grep -q '"traceEvents"' "${workdir}/profile.json"
grep -q '"thread_name"' "${workdir}/profile.json"
grep -q '"spans"' "${workdir}/stats.json"
"${ccsched}" report "${workdir}/stats.json" > /dev/null
rc=0
"${ccsched}" report --diff "${workdir}/stats.json" "${workdir}/stats.json" \
  > /dev/null || rc=$?
if [ "${rc}" -ne 0 ]; then
  echo "error: identical stats reported a regression (exit ${rc})" >&2
  exit 1
fi
printf '{"counters":{"an.evaluations":100}}\n' > "${workdir}/before.json"
printf '{"counters":{"an.evaluations":200}}\n' > "${workdir}/after.json"
rc=0
"${ccsched}" report --diff "${workdir}/before.json" "${workdir}/after.json" \
  > /dev/null || rc=$?
if [ "${rc}" -ne 1 ]; then
  echo "error: injected +100% regression exited ${rc}, want 1" >&2
  exit 1
fi
# A dotted --gate token must fail on a grown optimality gap and ignore the
# (machine-dependent) timing paths next to it — the contract the
# bench-portfolio job's bound.gap diff relies on.
printf '{"benchmarks":{"bg":{"bound":{"gap":1},"cpu_time":10}}}\n' \
  > "${workdir}/gap_before.json"
printf '{"benchmarks":{"bg":{"bound":{"gap":2},"cpu_time":90}}}\n' \
  > "${workdir}/gap_after.json"
rc=0
"${ccsched}" report --diff "${workdir}/gap_before.json" \
  "${workdir}/gap_after.json" --gate bound.gap > /dev/null || rc=$?
if [ "${rc}" -ne 1 ]; then
  echo "error: grown bound.gap exited ${rc} under --gate bound.gap, want 1" >&2
  exit 1
fi
printf '{"benchmarks":{"bg":{"bound":{"gap":1},"cpu_time":90}}}\n' \
  > "${workdir}/gap_after.json"
rc=0
"${ccsched}" report --diff "${workdir}/gap_before.json" \
  "${workdir}/gap_after.json" --gate bound.gap > /dev/null || rc=$?
if [ "${rc}" -ne 0 ]; then
  echo "error: timing-only drift exited ${rc} under --gate bound.gap, want 0" >&2
  exit 1
fi
echo "profile + report gates passed"

# Serve smoke gate (docs/SERVE.md): the resident loop must answer every
# line of a mixed request file (valid solves, garbage, an expired
# deadline) and exit 0; a jobs=1 stream must be byte-for-byte
# deterministic across two cold runs; and a depth-1 queue behind a sleep
# hog must shed with a structured `overloaded` response.
echo "== serve smoke gate =="
fig_graph="$(sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' \
  "${repo_root}/examples/data/paper_fig1b.csdfg" | awk '{printf "%s\\n", $0}')"
{
  printf '{"op":"solve","id":"r1","graph":"%s","arch":"mesh 2 2"}\n' \
    "${fig_graph}"
  printf '{"op":"solve","id":"r2","graph":"%s","arch":"mesh 2 2"}\n' \
    "${fig_graph}"
  printf 'this line is not a request\n'
  printf '{"op":"solve","id":"late","graph":"%s","arch":"mesh 2 2","deadline_ms":-5}\n' \
    "${fig_graph}"
  printf '{"op":"stats"}\n'
  printf '{"op":"shutdown"}\n'
} > "${workdir}/serve_smoke.jsonl"
"${ccsched}" serve < "${workdir}/serve_smoke.jsonl" \
  > "${workdir}/serve1.out" 2> "${workdir}/serve1.err"
"${ccsched}" serve < "${workdir}/serve_smoke.jsonl" \
  > "${workdir}/serve2.out" 2> /dev/null
cmp "${workdir}/serve1.out" "${workdir}/serve2.out" || {
  echo "error: jobs=1 serve output is not byte-deterministic" >&2
  exit 1
}
[ "$(wc -l < "${workdir}/serve1.out")" -eq 6 ] || {
  echo "error: serve answered $(wc -l < "${workdir}/serve1.out") of 6 lines" >&2
  exit 1
}
grep -q '"id":"r2".*"cache_hit":true' "${workdir}/serve1.out"
grep -q 'CCS-E001' "${workdir}/serve1.out"
grep -q '"id":"late".*"status":"rejected".*CCS-E003' "${workdir}/serve1.out"
grep -q '"kind":"serve_summary"' "${workdir}/serve1.err"
if grep -q 'serve_summary' "${workdir}/serve1.out"; then
  echo "error: summary leaked onto the response stream" >&2
  exit 1
fi
{
  printf '{"op":"sleep","sleep_ms":400}\n'
  for i in 1 2 3 4; do
    printf '{"op":"solve","id":"b%s","graph":"%s","arch":"mesh 2 2"}\n' \
      "${i}" "${fig_graph}"
  done
} > "${workdir}/serve_burst.jsonl"
"${ccsched}" serve --queue-depth 1 < "${workdir}/serve_burst.jsonl" \
  > "${workdir}/serve_burst.out" 2> /dev/null
grep -q '"status":"overloaded"' "${workdir}/serve_burst.out" || {
  echo "error: depth-1 queue under a sleep hog never shed" >&2
  exit 1
}
echo "serve smoke gate passed"
