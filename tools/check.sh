#!/usr/bin/env bash
# Configures, builds, and runs the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the CCSCHED_SANITIZE CMake option), so every
# change — the observability instrumentation included — is leak/UB-checked.
#
# Usage: tools/check.sh [build-dir]        (default: build-sanitize)
# Environment: SANITIZERS=address,undefined to pick a different set.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-sanitize}"
sanitizers="${SANITIZERS:-address,undefined}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCCSCHED_SANITIZE="${sanitizers}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
