// ccsched — umbrella header: the public library surface in one include.
//
//     #include "ccsched.hpp"
//
//     ccs::Solver solver;
//     ccs::SolveRequest req;
//     req.graph = ccs::parse_csdfg(graph_text);
//     req.arch = "mesh 2 2";
//     ccs::SolveResponse res = solver.solve(req);
//
// The Solver facade (engine/solver.hpp) is the supported entry point;
// everything else pulled in here — the algorithm layers, the machine
// model, certification, repair, simulation, observability, I/O — is the
// toolkit the facade is built from and remains available for callers that
// need finer control.  Direct multi-header include patterns are
// deprecated in favor of this umbrella; see docs/API.md for the stability
// contract.
//
// CCSCHED_API_VERSION identifies the request/response contract: fields
// may be *added* within a version, but only a version bump may remove one
// or change its meaning.  Compile-time dispatch:
//
//     #if CCSCHED_API_VERSION >= 1
//       ... Solver-based code ...
//     #endif
//
// Version 2 (the RemapEngine release): the free-function remap surface in
// core/remap.hpp is deprecated in favor of ccs::RemapEngine
// (core/remap_engine.hpp), and SolveResponse gained the additive
// remap_slots_scanned / an_evaluations / engine_backend fields.  See the
// "v1 -> v2 migration" section of docs/API.md.
#pragma once

#define CCSCHED_API_VERSION 2

// Error types thrown by the toolkit layers (the Solver itself never
// throws; it folds failures into SolveResponse::diagnostics).
#include "util/error.hpp"

// Machine model.
#include "arch/comm_model.hpp"
#include "arch/route_cache.hpp"
#include "arch/routing.hpp"
#include "arch/topology.hpp"

// Graphs and the scheduling algorithms.
#include "core/budget.hpp"
#include "core/csdfg.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/iteration_bound.hpp"
#include "core/list_scheduler.hpp"
#include "core/modulo_scheduler.hpp"
#include "core/prologue.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"
#include "core/validator.hpp"

// Static analysis, certification, diagnostics.
#include "analysis/canon.hpp"
#include "analysis/certify.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/lint.hpp"
#include "analysis/rules.hpp"

// Faults and repair.
#include "robust/fault_plan.hpp"
#include "robust/repair.hpp"

// Simulation.
#include "sim/executor.hpp"
#include "sim/gantt.hpp"

// Observability.
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

// Text formats and rendering.
#include "io/dot.hpp"
#include "io/schedule_format.hpp"
#include "io/table_printer.hpp"
#include "io/text_format.hpp"

// The engine: portfolio search + the Solver facade.
#include "engine/portfolio.hpp"
#include "engine/solve_cache.hpp"
#include "engine/solver.hpp"
