#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string_view>

#include "obs/json.hpp"
#include "util/text_table.hpp"

namespace ccs {

namespace {

// ---------------------------------------------------------------- parser
//
// A tiny recursive-descent JSON reader, just strict enough for the
// documents this layer itself writes.  No exceptions: errors set a message
// and unwind via the `ok` flag.  Depth-limited so hostile input cannot
// blow the stack.

constexpr int kMaxDepth = 64;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonReader {
public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    const bool ok = value(out, 0);
    if (!ok) {
      error = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = at("trailing data after the JSON document");
      return false;
    }
    return true;
  }

private:
  std::string at(const std::string& what) {
    std::ostringstream os;
    os << what << " (byte " << pos_ << ")";
    return os.str();
  }

  bool fail(const std::string& what) {
    if (error_.empty()) error_ = at(what);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0)
      return fail("unrecognized token");
    pos_ += word.size();
    return true;
  }

  bool string_token(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected a string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Code points beyond ASCII are not needed for metric names;
          // decode the escape length and substitute.
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          pos_ += 4;
          out += '?';
          break;
        default: return fail("invalid escape sequence");
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_token(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') return literal("null");
    return number(out);
  }

  bool number(JsonValue& out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return fail("expected a value");
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_token(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element, depth + 1)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --------------------------------------------------------------- flatten

void flatten(const JsonValue& v, const std::string& prefix,
             FlatMetrics& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNumber:
      if (!prefix.empty()) out.values[prefix] = v.number;
      return;
    case JsonValue::Kind::kBool:
      if (!prefix.empty()) out.values[prefix] = v.boolean ? 1.0 : 0.0;
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.object)
        flatten(member, prefix.empty() ? key : prefix + "." + key, out);
      return;
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        const JsonValue& element = v.array[i];
        std::string segment = std::to_string(i);
        // Arrays of named objects (google-benchmark "benchmarks") key by
        // name, so runs with reordered entries still line up in a diff.
        if (element.kind == JsonValue::Kind::kObject) {
          const JsonValue* name = element.find("name");
          if (name != nullptr && name->kind == JsonValue::Kind::kString &&
              !name->string.empty())
            segment = name->string;
        }
        flatten(element, prefix.empty() ? segment : prefix + "." + segment,
                out);
      }
      return;
    default:
      return;  // strings/null carry no numeric signal
  }
}

/// Chrome-trace profiles aggregate per span name instead of flattening
/// events positionally (a timeline diff per event index is meaningless).
void flatten_trace_events(const JsonValue& events, FlatMetrics& out) {
  struct Agg {
    double count = 0, total_us = 0, self_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const JsonValue& e : events.array) {
    if (e.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->string != "X") continue;  // skip metadata rows
    const JsonValue* name = e.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) continue;
    Agg& agg = by_name[name->string];
    agg.count += 1;
    const JsonValue* dur = e.find("dur");
    if (dur != nullptr && dur->kind == JsonValue::Kind::kNumber)
      agg.total_us += dur->number;
    const JsonValue* args = e.find("args");
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      const JsonValue* self = args->find("self_us");
      if (self != nullptr && self->kind == JsonValue::Kind::kNumber)
        agg.self_us += self->number;
    }
  }
  for (const auto& [name, agg] : by_name) {
    out.values["profile." + name + ".count"] = agg.count;
    out.values["profile." + name + ".total_ms"] = agg.total_us / 1e3;
    out.values["profile." + name + ".self_ms"] = agg.self_us / 1e3;
  }
}

/// "timers.time.remap.total_ms" -> category "timers", rest
/// "time.remap.total_ms".
std::string_view category_of(std::string_view path) {
  const std::size_t dot = path.find('.');
  return dot == std::string_view::npos ? path : path.substr(0, dot);
}

std::string format_value(double v) {
  // Integers print bare; everything else like the JSON exporters.
  if (std::abs(v) < 1e15 && v == std::floor(v)) {
    std::ostringstream os;
    os << static_cast<long long>(v);
    return os.str();
  }
  return json_number(v);
}

std::string format_pct(double pct) {
  // Percentages are read by humans scanning a table: one decimal place.
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << pct;
  return os.str();
}

}  // namespace

bool flatten_metrics_json(const std::string& text, FlatMetrics& out,
                          std::string& error) {
  JsonValue root;
  JsonReader reader(text);
  if (!reader.parse(root, error)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    error = "expected a top-level JSON object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events != nullptr && events->kind == JsonValue::Kind::kArray) {
    flatten_trace_events(*events, out);
    return true;
  }
  flatten(root, "", out);
  return true;
}

std::string render_hot_path_report(const FlatMetrics& m) {
  struct Row {
    std::string name;
    double self_ms = 0, total_ms = 0, count = 0, p95_ms = -1;
  };
  std::vector<Row> rows;

  const auto lookup = [&m](const std::string& key, double fallback) {
    const auto it = m.values.find(key);
    return it != m.values.end() ? it->second : fallback;
  };

  for (const char* source : {"profile.", "spans."}) {
    if (!rows.empty()) break;
    const std::string prefix(source);
    const std::string suffix = ".self_ms";
    for (const auto& [key, value] : m.values) {
      if (key.rfind(prefix, 0) != 0 || key.size() <= suffix.size() ||
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      const std::string base =
          key.substr(0, key.size() - suffix.size());  // prefix + span name
      Row row;
      row.name = base.substr(prefix.size());
      row.self_ms = value;
      row.total_ms = lookup(base + ".total_ms", 0.0);
      row.count = lookup(base + ".count", 0.0);
      row.p95_ms = lookup(base + ".p95_ms", -1.0);
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty()) {
    // No span attribution: fall back to the coarse stage timers.
    const std::string prefix = "timers.";
    const std::string suffix = ".total_ms";
    for (const auto& [key, value] : m.values) {
      if (key.rfind(prefix, 0) != 0 || key.size() <= suffix.size() ||
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      const std::string base = key.substr(0, key.size() - suffix.size());
      Row row;
      row.name = base.substr(prefix.size());
      row.self_ms = value;  // timers have no nesting: self == total
      row.total_ms = value;
      row.count = lookup(base + ".count", 0.0);
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty())
    return "no span or timer data in this document; record one with "
           "--profile or --stats\n";

  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.self_ms > b.self_ms;
  });

  double grand_self = 0;
  for (const Row& r : rows) grand_self += r.self_ms;

  TextTable t;
  t.set_header({"span", "self ms", "self %", "total ms", "count", "p95 ms"});
  for (const Row& r : rows) {
    const double share =
        grand_self > 0 ? 100.0 * r.self_ms / grand_self : 0.0;
    t.add_row({r.name, json_number(r.self_ms), format_pct(share),
               json_number(r.total_ms), format_value(r.count),
               r.p95_ms < 0 ? std::string("-") : json_number(r.p95_ms)});
  }
  std::ostringstream os;
  os << "hot path (by self time):\n" << t.to_string();
  return os.str();
}

DiffResult diff_metrics(const FlatMetrics& before, const FlatMetrics& after,
                        const DiffOptions& options) {
  std::vector<std::string> gated_categories;
  {
    std::istringstream ls(options.gate);
    std::string tok;
    while (std::getline(ls, tok, ','))
      if (!tok.empty()) gated_categories.push_back(tok);
  }
  const auto gated = [&](std::string_view path) {
    for (const std::string& cat : gated_categories) {
      if (cat == "all") return true;
      // A dotted token targets specific metrics wherever they sit in the
      // tree ("bound.gap" gates benchmarks.*.bound.gap.*); a plain token
      // stays a whole top-level category ("counters").
      const bool hit = cat.find('.') != std::string::npos
                           ? path.find(cat) != std::string_view::npos
                           : category_of(path) == cat;
      if (hit) return true;
    }
    return false;
  };

  DiffResult result;
  auto bi = before.values.begin();
  auto ai = after.values.begin();
  const auto push = [&](const std::string& name, double b, double a) {
    if (b == a) return;
    MetricDelta d;
    d.name = name;
    d.before = b;
    d.after = a;
    d.pct = b != 0.0 ? 100.0 * (a - b) / std::abs(b)
                     : (a > 0.0 ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity());
    d.gated = gated(name);
    d.regression = d.gated && a > b && d.pct >= options.threshold_pct;
    result.regressed |= d.regression;
    result.deltas.push_back(std::move(d));
  };
  while (bi != before.values.end() || ai != after.values.end()) {
    if (ai == after.values.end() ||
        (bi != before.values.end() && bi->first < ai->first)) {
      push(bi->first, bi->second, 0.0);  // removed
      ++bi;
    } else if (bi == before.values.end() || ai->first < bi->first) {
      push(ai->first, 0.0, ai->second);  // added
      ++ai;
    } else {
      push(bi->first, bi->second, ai->second);
      ++bi;
      ++ai;
    }
  }
  return result;
}

std::string render_diff(const DiffResult& diff, const DiffOptions& options) {
  std::ostringstream os;
  if (diff.deltas.empty()) {
    os << "no metric changes\n";
    return os.str();
  }
  TextTable t;
  t.set_header({"metric", "before", "after", "delta %", ""});
  for (const MetricDelta& d : diff.deltas) {
    std::string pct;
    if (std::isinf(d.pct)) {
      pct = d.pct > 0 ? "new" : "gone";
    } else {
      pct = format_pct(d.pct);
    }
    t.add_row({d.name, format_value(d.before), format_value(d.after), pct,
               d.regression ? "REGRESSION" : (d.gated ? "" : "ungated")});
  }
  os << t.to_string();
  std::size_t regressions = 0;
  for (const MetricDelta& d : diff.deltas)
    if (d.regression) ++regressions;
  if (regressions > 0) {
    os << "verdict: " << regressions << " regression(s) at threshold "
       << json_number(options.threshold_pct) << "%\n";
  } else {
    os << "verdict: no regressions at threshold "
       << json_number(options.threshold_pct) << "%\n";
  }
  return os.str();
}

}  // namespace ccs
