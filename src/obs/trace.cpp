#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace ccs {

void StreamSink::write(std::string_view line) { os_ << line << '\n'; }

namespace {

/// Every event line starts with the sequence number and its kind so stream
/// consumers can dispatch without a schema.  A non-negative attempt index
/// (portfolio workers) rides along right after the kind.
JsonWriter header(std::uint64_t seq, int attempt, std::string_view kind) {
  JsonWriter w;
  w.field("seq", static_cast<unsigned long long>(seq)).field("kind", kind);
  if (attempt >= 0) w.field("attempt", attempt);
  return w;
}

}  // namespace

void Tracer::emit_raw(std::string_view line) {
  if (!sink_) return;
  ++seq_;
  sink_->write(line);
}

void Tracer::emit(const PassStartEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "pass_start")
                   .field("pass", e.pass)
                   .field("length", e.length)
                   .close());
}

void Tracer::emit(const RotationEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "rotation")
                   .field("pass", e.pass)
                   .field("rotated", e.rotated)
                   .close());
}

void Tracer::emit(const RemapTargetEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "remap_target")
                   .field("target", e.target)
                   .field("relaxed", e.relaxed)
                   .close());
}

void Tracer::emit(const RemapDecisionEvent& e) {
  if (!sink_) return;
  JsonWriter w = header(seq_++, attempt_, "remap_decision");
  w.field("node", e.node).field("accepted", e.accepted);
  if (e.accepted) w.field("pe", e.pe).field("cb", e.cb);
  w.field("an", e.an)
      .field("latest", e.latest)
      .field("psl", e.psl)
      .field("slots_scanned", e.slots_scanned)
      .field("reason", e.reason);
  sink_->write(w.close());
}

void Tracer::emit(const PslPadEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "psl_pad")
                   .field("needed", e.needed)
                   .field("length", e.length)
                   .close());
}

void Tracer::emit(const RollbackEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "rollback")
                   .field("pass", e.pass)
                   .field("length", e.length)
                   .field("reason", e.reason)
                   .close());
}

void Tracer::emit(const PassEndEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "pass_end")
                   .field("pass", e.pass)
                   .field("length", e.length)
                   .field("improved", e.improved)
                   .field("best_length", e.best_length)
                   .close());
}

void Tracer::emit(const StartupEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "startup_done")
                   .field("length", e.length)
                   .field("control_steps", e.control_steps)
                   .close());
}

void Tracer::emit(const SimRunEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "sim_run")
                   .field("mode", e.mode)
                   .field("iterations", e.iterations)
                   .field("makespan", e.makespan)
                   .field("steady_ii", e.steady_ii)
                   .field("messages", e.messages)
                   .field("late_arrivals", e.late_arrivals)
                   .field("deadlocked", e.deadlocked)
                   .close());
}

void Tracer::emit(const FaultEvent& e) {
  if (!sink_) return;
  JsonWriter w = header(seq_++, attempt_, "fault");
  w.field("fault", e.fault);
  if (e.fault == "link_down") {
    w.field("pe", e.pe).field("pe2", e.pe2);
  } else if (e.fault == "jitter") {
    w.field("node", e.node);
  } else {
    w.field("pe", e.pe);
  }
  w.field("iteration", e.iteration).field("detail", e.detail);
  sink_->write(w.close());
}

void Tracer::emit(const RepairEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "repair_attempt")
                   .field("rung", e.rung)
                   .field("success", e.success)
                   .field("length", e.length)
                   .field("detail", e.detail)
                   .close());
}

void Tracer::emit(const BudgetEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "budget_exhausted")
                   .field("reason", e.reason)
                   .field("pass", e.pass)
                   .field("best_length", e.best_length)
                   .close());
}

void Tracer::emit(const SpanBeginEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "span_begin")
                   .field("name", e.name)
                   .field("tid", e.tid)
                   .field("depth", e.depth)
                   .field("ts_ns", static_cast<unsigned long long>(e.ts_ns))
                   .close());
}

void Tracer::emit(const SpanEndEvent& e) {
  if (!sink_) return;
  sink_->write(header(seq_++, attempt_, "span_end")
                   .field("name", e.name)
                   .field("tid", e.tid)
                   .field("depth", e.depth)
                   .field("ts_ns", static_cast<unsigned long long>(e.ts_ns))
                   .field("dur_ns", static_cast<unsigned long long>(e.dur_ns))
                   .close());
}

}  // namespace ccs
