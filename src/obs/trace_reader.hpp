// ccsched — reading trace streams back in.
//
// The tracer (obs/trace.hpp) is write-only by design: the scheduler emits
// JSON Lines and never looks back.  The certifier, however, must *audit*
// a recorded stream — check sequence numbers, re-derive pass summaries,
// and diff a replayed run against the file — so this header provides the
// inverse: a lenient parser for the flat JSON objects the tracer writes.
//
// Scope is deliberately narrow.  Trace lines are flat objects whose values
// are strings, numbers, booleans, or arrays of numbers (the `rotated`
// field); nothing nests.  The reader accepts exactly that grammar, records
// anything else as a TraceParseIssue with its line number, and keeps
// going.  It lives in src/obs so the layering stays acyclic: analysis
// depends on obs, never the reverse — the reader reports plain issue
// structs and leaves diagnostic codes to the certifier.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

/// One key/value pair of a trace event, in stream order.
struct TraceField {
  enum class Kind { kString, kNumber, kBool, kArray };
  std::string key;
  Kind kind = Kind::kString;
  /// Canonical text of the value: the unescaped characters for strings,
  /// the literal spelling for numbers and booleans, and "[a,b,...]" with
  /// no spaces for arrays.  Two equal values always canonicalize equally.
  std::string text;
};

/// One parsed trace line.
struct TraceEvent {
  std::size_t line = 0;  ///< 1-based line in the stream.
  std::vector<TraceField> fields;

  /// First field named `key`, or nullptr.
  [[nodiscard]] const TraceField* find(std::string_view key) const;
  /// Reads field `key` as a number into `out`; false when absent or not
  /// an integral number.
  [[nodiscard]] bool number(std::string_view key, long long& out) const;
  /// Reads field `key` as a string into `out`; false when absent or not a
  /// string.
  [[nodiscard]] bool string(std::string_view key, std::string& out) const;
};

/// A line the reader could not parse as a flat trace object.
struct TraceParseIssue {
  std::size_t line = 0;
  std::string message;
};

/// A fully scanned stream: the events that parsed, plus every issue.
struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::vector<TraceParseIssue> issues;
};

/// Parses a JSONL trace stream.  Blank lines are skipped; each remaining
/// line must be one flat JSON object.  Never throws — malformed lines
/// land in `issues` and the scan continues.
[[nodiscard]] ParsedTrace parse_trace_jsonl(const std::string& text);

/// Canonical one-line rendering of an event — "key=value;key=value;..."
/// in stream order, with string values escaped.  Two events compare equal
/// iff their canonical forms do; the certifier diffs replayed streams on
/// this form so the report quotes something readable.
[[nodiscard]] std::string canonical_trace_event(const TraceEvent& e);

}  // namespace ccs
