#include "obs/span.hpp"

#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace ccs {

namespace {

/// One epoch per process: every profiler timestamps against the same origin,
/// so per-worker record streams merge onto a single consistent timeline.
std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<SpanProfiler*> g_process_profiler{nullptr};

/// The calling thread's innermost open span (the nesting stack's top).
thread_local ObsSpan* tls_open_span = nullptr;

}  // namespace

int span_thread_index() noexcept {
  static std::atomic<int> next{0};
  thread_local const int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::uint64_t span_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

std::uint64_t SpanHistogram::quantile_ns(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bins_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Bucket b holds durations in [2^(b-1), 2^b - 1]; report the upper
      // bound, clamped by the true maximum.
      const std::uint64_t upper =
          b >= 63 ? max_ns_ : ((std::uint64_t{1} << b) - 1);
      return upper < max_ns_ ? upper : max_ns_;
    }
  }
  return max_ns_;
}

void SpanProfiler::record(SpanRecord&& r) {
  const std::scoped_lock lock(mu_);
  SpanStat& stat = stats_[r.name];
  stat.durations.add(r.dur_ns);
  stat.self_ns += r.self_ns;
  if (records_.size() < kMaxRecords) {
    records_.push_back(std::move(r));
  } else {
    ++dropped_;
  }
}

void SpanProfiler::fold(std::string_view name, const SpanHistogram& hist) {
  if (hist.count() == 0) return;
  const std::scoped_lock lock(mu_);
  const auto it = stats_.find(name);
  SpanStat& stat = it != stats_.end()
                       ? it->second
                       : stats_.emplace(std::string(name), SpanStat{})
                             .first->second;
  stat.durations.merge(hist);
  stat.self_ns += hist.total_ns();
}

void SpanProfiler::absorb(const SpanProfiler& other) {
  // Copy the other side out under its own lock first; never hold both.
  std::vector<SpanRecord> theirs = other.records();
  auto their_stats = other.stats();
  const std::size_t their_dropped = other.dropped();

  const std::scoped_lock lock(mu_);
  for (SpanRecord& r : theirs) {
    if (records_.size() < kMaxRecords) {
      records_.push_back(std::move(r));
    } else {
      ++dropped_;
    }
  }
  for (auto& [name, stat] : their_stats) {
    SpanStat& mine = stats_[name];
    mine.durations.merge(stat.durations);
    mine.self_ns += stat.self_ns;
  }
  dropped_ += their_dropped;
}

std::vector<SpanRecord> SpanProfiler::records() const {
  const std::scoped_lock lock(mu_);
  return records_;
}

std::map<std::string, SpanStat, std::less<>> SpanProfiler::stats() const {
  const std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t SpanProfiler::dropped() const {
  const std::scoped_lock lock(mu_);
  return dropped_;
}

bool SpanProfiler::empty() const {
  const std::scoped_lock lock(mu_);
  return records_.empty() && stats_.empty();
}

SpanProfiler* SpanProfiler::process() noexcept {
  return g_process_profiler.load(std::memory_order_acquire);
}

SpanProfiler* SpanProfiler::set_process(SpanProfiler* profiler) noexcept {
  return g_process_profiler.exchange(profiler, std::memory_order_acq_rel);
}

ObsSpan::ObsSpan(SpanProfiler* profiler, std::string_view name,
                 Tracer* tracer)
    : profiler_(profiler), tracer_(tracer) {
  if (profiler_ == nullptr) return;
  name_ = std::string(name);
  tid_ = span_thread_index();
  parent_ = tls_open_span;
  depth_ = parent_ != nullptr ? parent_->depth_ + 1 : 0;
  tls_open_span = this;
  start_ns_ = span_now_ns();
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->emit(SpanBeginEvent{name_, tid_, depth_, start_ns_});
}

ObsSpan::~ObsSpan() {
  if (profiler_ == nullptr) return;
  const std::uint64_t end_ns = span_now_ns();
  const std::uint64_t dur = end_ns - start_ns_;
  const std::uint64_t self = dur > child_ns_ ? dur - child_ns_ : 0;
  tls_open_span = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += dur;
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->emit(SpanEndEvent{name_, tid_, depth_, end_ns, dur});
  SpanRecord r;
  r.name = std::move(name_);
  r.start_ns = start_ns_;
  r.dur_ns = dur;
  r.self_ns = self;
  r.tid = tid_;
  r.attempt = profiler_->attempt();
  r.depth = depth_;
  profiler_->record(std::move(r));
}

}  // namespace ccs
