#include "obs/trace_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "obs/json.hpp"

namespace ccs {

const TraceField* TraceEvent::find(std::string_view key) const {
  for (const TraceField& f : fields)
    if (f.key == key) return &f;
  return nullptr;
}

bool TraceEvent::number(std::string_view key, long long& out) const {
  const TraceField* f = find(key);
  if (f == nullptr || f->kind != TraceField::Kind::kNumber) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(f->text.c_str(), &end, 10);
  if (errno != 0 || end == f->text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool TraceEvent::string(std::string_view key, std::string& out) const {
  const TraceField* f = find(key);
  if (f == nullptr || f->kind != TraceField::Kind::kString) return false;
  out = f->text;
  return true;
}

namespace {

/// Cursor over one line.  Parsing never throws: every helper returns false
/// and leaves an explanation in `error` instead.
struct Scanner {
  std::string_view s;
  std::size_t pos = 0;
  std::string error;

  void skip_ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0)
      ++pos;
  }

  bool eat(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  [[nodiscard]] bool fail(std::string what) {
    if (error.empty()) error = std::move(what);
    return false;
  }

  /// JSON string literal -> unescaped characters.
  bool string_literal(std::string& out) {
    if (!eat('"')) return fail("expected '\"'");
    out.clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= s.size()) break;
      const char esc = s[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The writer only emits \u00XX for control bytes; decode the
          // low byte and ignore the (always-zero) high byte.
          if (pos + 4 > s.size()) return fail("truncated \\u escape");
          const std::string hex(s.substr(pos, 4));
          pos += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return fail("bad \\u escape");
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          return fail("unknown escape '\\" + std::string(1, esc) + "'");
      }
    }
    return fail("unterminated string");
  }

  /// Number literal, kept as its literal spelling.
  bool number_literal(std::string& out) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
            s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
            s[pos] == '-' || s[pos] == '+')) {
      digits |= std::isdigit(static_cast<unsigned char>(s[pos])) != 0;
      ++pos;
    }
    if (!digits) return fail("expected a number");
    out = std::string(s.substr(start, pos - start));
    return true;
  }

  /// string | number | true | false | [numbers...]
  bool value(TraceField& f) {
    skip_ws();
    if (pos >= s.size()) return fail("expected a value");
    const char c = s[pos];
    if (c == '"') {
      f.kind = TraceField::Kind::kString;
      return string_literal(f.text);
    }
    if (c == 't' || c == 'f') {
      const std::string_view word = c == 't' ? "true" : "false";
      if (s.substr(pos, word.size()) != word) return fail("expected a value");
      pos += word.size();
      f.kind = TraceField::Kind::kBool;
      f.text = word;
      return true;
    }
    if (c == '[') {
      ++pos;
      f.kind = TraceField::Kind::kArray;
      f.text = "[";
      skip_ws();
      if (eat(']')) {
        f.text += ']';
        return true;
      }
      while (true) {
        std::string n;
        if (!number_literal(n)) return fail("arrays may hold only numbers");
        if (f.text.size() > 1) f.text += ',';
        f.text += n;
        if (eat(']')) break;
        if (!eat(',')) return fail("expected ',' or ']' in array");
      }
      f.text += ']';
      return true;
    }
    f.kind = TraceField::Kind::kNumber;
    return number_literal(f.text);
  }

  bool object(std::vector<TraceField>& fields) {
    if (!eat('{')) return fail("expected '{'");
    skip_ws();
    if (eat('}')) return finish();
    while (true) {
      TraceField f;
      if (!string_literal(f.key)) return fail("expected a field name");
      if (!eat(':')) return fail("expected ':'");
      if (!value(f)) return false;
      fields.push_back(std::move(f));
      if (eat('}')) break;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
    return finish();
  }

  bool finish() {
    skip_ws();
    if (pos != s.size()) return fail("trailing characters after object");
    return true;
  }
};

}  // namespace

ParsedTrace parse_trace_jsonl(const std::string& text) {
  ParsedTrace out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    bool blank = true;
    for (const char c : line)
      blank &= std::isspace(static_cast<unsigned char>(c)) != 0;
    if (blank) continue;
    Scanner sc;
    sc.s = line;
    TraceEvent e;
    e.line = lineno;
    if (sc.object(e.fields)) {
      out.events.push_back(std::move(e));
    } else {
      out.issues.push_back(TraceParseIssue{
          lineno, sc.error.empty() ? "malformed line" : sc.error});
    }
  }
  return out;
}

std::string canonical_trace_event(const TraceEvent& e) {
  std::string out;
  for (const TraceField& f : e.fields) {
    if (!out.empty()) out += ';';
    out += f.key;
    out += '=';
    out += f.kind == TraceField::Kind::kString ? json_escape(f.text) : f.text;
  }
  return out;
}

}  // namespace ccs
