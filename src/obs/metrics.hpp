// ccsched — the metrics registry.
//
// A registry of named counters, gauges, and monotonic-clock timers that the
// scheduling pipeline populates when a caller asks for one (ObsContext).
// Counters accumulate hot-path tallies (AN evaluations, PSL rejections,
// slots scanned, validate calls); timers bracket whole stages (startup,
// compaction, remap attempts, simulation) via RAII.  The registry exports
// itself as one JSON document (machine consumption: CLI --stats, the bench
// BENCH_*.json outputs) or as an aligned text table (util/text_table, for
// the CLI's `stats` section).
//
// The registry is a plain value type: no globals, no threads, deterministic
// iteration order (sorted by name).  Metric names are dotted lowercase
// ("an.evaluations", "time.startup"); the full catalogue lives in
// docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <string_view>

namespace ccs {

class MetricsRegistry {
public:
  /// Accumulated RAII-timer state for one name.
  struct TimerStat {
    long long count = 0;
    long long total_ns = 0;
  };

  /// Exported summary of one profiler span name (obs/span.hpp): counts and
  /// millisecond totals plus the approximate histogram quantiles.  Written
  /// by export_span_stats (obs/profile.hpp) after the run.
  struct SpanSummary {
    long long count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double max_ms = 0.0;
  };

  using CounterMap = std::map<std::string, long long, std::less<>>;
  using GaugeMap = std::map<std::string, double, std::less<>>;
  using TimerMap = std::map<std::string, TimerStat, std::less<>>;
  using SpanMap = std::map<std::string, SpanSummary, std::less<>>;

  /// Adds `delta` to counter `name` (created at 0 on first use).
  void add(std::string_view name, long long delta = 1);

  /// Sets gauge `name` to `value` (last write wins).
  void set(std::string_view name, double value);

  /// Folds one measured duration into timer `name`.
  void record_duration(std::string_view name, std::chrono::nanoseconds d);

  /// Current counter value; 0 when never touched.
  [[nodiscard]] long long counter(std::string_view name) const;

  /// Current gauge value; 0.0 when never set.
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Accumulated timer state; zeroes when never used.
  [[nodiscard]] TimerStat timer(std::string_view name) const;

  /// Sets the exported summary for span `name` (last write wins — span
  /// summaries come from one profiler snapshot, already aggregated; merge
  /// profilers with SpanProfiler::absorb *before* exporting).
  void set_span(std::string_view name, const SpanSummary& summary);

  /// Exported span summary; zeroes when never set.
  [[nodiscard]] SpanSummary span(std::string_view name) const;

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const TimerMap& timers() const noexcept { return timers_; }
  [[nodiscard]] const SpanMap& spans() const noexcept { return spans_; }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && timers_.empty() &&
           spans_.empty();
  }

  /// Adds every counter/timer of `other` into this registry; gauges and
  /// span summaries are overwritten.  Aggregates per-run registries into
  /// one report.
  void merge(const MetricsRegistry& other);

  void clear();

  /// One JSON document:
  ///   {"counters":{...},"gauges":{...},
  ///    "timers":{"name":{"count":N,"total_ms":X}},
  ///    "spans":{"name":{"count":N,"total_ms":X,"self_ms":X,
  ///                     "p50_ms":X,"p95_ms":X,"max_ms":X}}}
  /// The "spans" member appears only when at least one summary was set, so
  /// profile-free stats documents keep their historical shape.
  [[nodiscard]] std::string to_json() const;

  /// Aligned text table (metric | type | value), one row per metric.
  [[nodiscard]] std::string to_text() const;

private:
  CounterMap counters_;
  GaugeMap gauges_;
  TimerMap timers_;
  SpanMap spans_;
};

/// Measures a scope on the monotonic clock and folds the elapsed time into a
/// registry timer on destruction.  A null registry makes it a no-op, so call
/// sites need no branch:
///
///   ScopedTimer t(obs.metrics, "time.startup");
class ScopedTimer {
public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : registry_(registry),
        name_(registry ? std::string(name) : std::string()),
        start_(registry ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point()) {}
  ~ScopedTimer() {
    if (registry_)
      registry_->record_duration(name_,
                                 std::chrono::steady_clock::now() - start_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ccs
