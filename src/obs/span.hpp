// ccsched — hierarchical span profiling for the scheduling pipeline.
//
// A span is one timed scope of pipeline work ("compact.pass", "remap.target",
// "portfolio.attempt") opened and closed by the RAII ObsSpan guard.  Spans
// nest: each thread keeps an implicit stack, so a closed span knows its depth
// and how much of its wall time was spent in child spans — the exporter can
// therefore attribute *self* time, which is what a hot-path breakdown needs.
//
// Design rules (the same contract as obs/trace.hpp):
//  * Zero overhead when disabled.  A null SpanProfiler makes ObsSpan a
//    no-op: one pointer test in the constructor, one in the destructor, no
//    clock reads, no allocation.
//  * Closed spans fold into fixed log2-bucket histograms (SpanHistogram):
//    recording is lock-protected but allocation-free in steady state, and
//    per-evaluation hot loops (AN bounds) accumulate into a *local*
//    histogram and fold it into the profiler once per call.
//  * Thread identity is a dense process-wide index (span_thread_index), not
//    the opaque std::thread::id, so exporters get small stable track ids.
//  * All timestamps share one process-wide monotonic epoch, so records from
//    per-worker profilers merged via absorb() stay on one timeline.
//
// The export formats (Chrome trace_event JSON, per-span stats) live in
// obs/profile.hpp; the model is documented in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

class Tracer;

/// Dense 0-based index of the calling thread, assigned on first use and
/// stable for the thread's lifetime.  Process-wide, so profiler merges never
/// collide two threads onto one track.
[[nodiscard]] int span_thread_index() noexcept;

/// Nanoseconds since the process-wide profiling epoch (the first call in
/// the process), read from the monotonic clock.
[[nodiscard]] std::uint64_t span_now_ns() noexcept;

/// One closed span, ready for export.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  ///< Offset from the process profiling epoch.
  std::uint64_t dur_ns = 0;    ///< Wall time of the whole scope.
  std::uint64_t self_ns = 0;   ///< dur_ns minus time spent in child spans.
  int tid = 0;                 ///< span_thread_index() of the opening thread.
  int attempt = -1;            ///< Portfolio attempt tag; -1 outside one.
  int depth = 0;               ///< Nesting depth on the opening thread.
};

/// Fixed-size power-of-two duration histogram: 64 log2 buckets, so add()
/// never allocates and merge() is a vector sum.  Quantiles are approximate
/// (resolved to the bucket's upper bound), which is exactly good enough for
/// a p50/p95 hot-path summary.
class SpanHistogram {
public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t ns) noexcept {
    int b = 0;
    for (std::uint64_t v = ns; v != 0; v >>= 1) ++b;
    if (b >= kBuckets) b = kBuckets - 1;
    ++bins_[static_cast<std::size_t>(b)];
    ++count_;
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  void merge(const SpanHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) bins_[b] += other.bins_[b];
    count_ += other.count_;
    total_ns_ += other.total_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }

  /// Approximate q-quantile (q in [0, 1]) as the upper bound of the bucket
  /// holding the q-th sample; 0 when empty.  Never exceeds max_ns().
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept;

private:
  std::array<std::uint64_t, kBuckets> bins_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Aggregated per-name statistics: the duration histogram plus accumulated
/// self time.
struct SpanStat {
  SpanHistogram durations;
  std::uint64_t self_ns = 0;
};

/// Collects closed spans and per-name aggregates.  Thread-safe: workers and
/// the process-global hook may record concurrently; every mutation takes the
/// internal mutex (spans are scope-grained, not per-iteration-grained, so
/// the lock is cold).  Not copyable or movable — pass pointers.
class SpanProfiler {
public:
  /// Full record streams are capped so a pathological run cannot exhaust
  /// memory; aggregates keep counting past the cap and dropped() reports
  /// how many timeline entries were discarded.
  static constexpr std::size_t kMaxRecords = 1u << 20;

  SpanProfiler() = default;
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Tags every span closed against this profiler with a portfolio attempt
  /// index; negative (the default) clears the tag.
  void set_attempt(int attempt) noexcept {
    attempt_.store(attempt, std::memory_order_relaxed);
  }
  [[nodiscard]] int attempt() const noexcept {
    return attempt_.load(std::memory_order_relaxed);
  }

  /// Folds one closed span into the timeline and the per-name aggregate.
  void record(SpanRecord&& r);

  /// Folds a locally-accumulated histogram (hot loops: one fold per call,
  /// not per evaluation).  Leaf work: self time equals total time.
  void fold(std::string_view name, const SpanHistogram& hist);

  /// Appends `other`'s records and aggregates.  The portfolio engine calls
  /// this in attempt order after the workers join, so the merged timeline
  /// and stats are independent of completion order.
  void absorb(const SpanProfiler& other);

  /// Snapshots for the exporters (obs/profile.hpp) and tests.
  [[nodiscard]] std::vector<SpanRecord> records() const;
  [[nodiscard]] std::map<std::string, SpanStat, std::less<>> stats() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] bool empty() const;

  /// Process-global profiler hook for layers that predate ObsContext
  /// threading (RouteCache, the certifier): set_process() installs a
  /// profiler (returning the previous one, for RAII restore), process()
  /// reads it.  Null by default, so uninstrumented processes pay one
  /// relaxed atomic load per site.
  static SpanProfiler* process() noexcept;
  static SpanProfiler* set_process(SpanProfiler* profiler) noexcept;

private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::map<std::string, SpanStat, std::less<>> stats_;
  std::size_t dropped_ = 0;
  std::atomic<int> attempt_{-1};
};

/// RAII span scope.  Construction with a null profiler is fully inert; with
/// a live profiler the guard reads the monotonic clock, pushes itself on the
/// calling thread's span stack, and on destruction records a SpanRecord
/// (and, when a tracer was supplied, emits span_begin/span_end trace
/// events).  Spans must be closed on the thread that opened them.
class ObsSpan {
public:
  ObsSpan(SpanProfiler* profiler, std::string_view name,
          Tracer* tracer = nullptr);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

private:
  SpanProfiler* profiler_;
  Tracer* tracer_;
  ObsSpan* parent_ = nullptr;
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  int tid_ = 0;
  int depth_ = 0;
};

}  // namespace ccs
