#include "obs/metrics.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "util/text_table.hpp"

namespace ccs {

void MetricsRegistry::add(std::string_view name, long long delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::record_duration(std::string_view name,
                                      std::chrono::nanoseconds d) {
  const auto it = timers_.find(name);
  TimerStat& stat = it != timers_.end()
                        ? it->second
                        : timers_.emplace(std::string(name), TimerStat{})
                              .first->second;
  stat.count += 1;
  stat.total_ns += d.count();
}

long long MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

MetricsRegistry::TimerStat MetricsRegistry::timer(
    std::string_view name) const {
  const auto it = timers_.find(name);
  return it != timers_.end() ? it->second : TimerStat{};
}

void MetricsRegistry::set_span(std::string_view name,
                               const SpanSummary& summary) {
  const auto it = spans_.find(name);
  if (it != spans_.end()) {
    it->second = summary;
  } else {
    spans_.emplace(std::string(name), summary);
  }
}

MetricsRegistry::SpanSummary MetricsRegistry::span(
    std::string_view name) const {
  const auto it = spans_.find(name);
  return it != spans_.end() ? it->second : SpanSummary{};
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, value] : other.gauges_) set(name, value);
  for (const auto& [name, stat] : other.timers_) {
    TimerStat& mine = timers_[name];
    mine.count += stat.count;
    mine.total_ns += stat.total_ns;
  }
  for (const auto& [name, summary] : other.spans_) set_span(name, summary);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  spans_.clear();
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream counters, gauges, timers;
  counters << '{';
  bool first = true;
  for (const auto& [name, value] : counters_) {
    counters << (first ? "" : ",") << '"' << json_escape(name)
             << "\":" << value;
    first = false;
  }
  counters << '}';

  gauges << '{';
  first = true;
  for (const auto& [name, value] : gauges_) {
    gauges << (first ? "" : ",") << '"' << json_escape(name)
           << "\":" << json_number(value);
    first = false;
  }
  gauges << '}';

  timers << '{';
  first = true;
  for (const auto& [name, stat] : timers_) {
    timers << (first ? "" : ",") << '"' << json_escape(name)
           << "\":{\"count\":" << stat.count << ",\"total_ms\":"
           << json_number(static_cast<double>(stat.total_ns) / 1e6) << '}';
    first = false;
  }
  timers << '}';

  JsonWriter w;
  w.raw_field("counters", counters.str())
      .raw_field("gauges", gauges.str())
      .raw_field("timers", timers.str());
  if (!spans_.empty()) {
    std::ostringstream spans;
    spans << '{';
    first = true;
    for (const auto& [name, s] : spans_) {
      spans << (first ? "" : ",") << '"' << json_escape(name)
            << "\":{\"count\":" << s.count
            << ",\"total_ms\":" << json_number(s.total_ms)
            << ",\"self_ms\":" << json_number(s.self_ms)
            << ",\"p50_ms\":" << json_number(s.p50_ms)
            << ",\"p95_ms\":" << json_number(s.p95_ms)
            << ",\"max_ms\":" << json_number(s.max_ms) << '}';
      first = false;
    }
    spans << '}';
    w.raw_field("spans", spans.str());
  }
  return w.close();
}

std::string MetricsRegistry::to_text() const {
  TextTable t;
  t.set_header({"metric", "type", "value"});
  for (const auto& [name, value] : counters_)
    t.add_row({name, "counter", std::to_string(value)});
  for (const auto& [name, value] : gauges_)
    t.add_row({name, "gauge", json_number(value)});
  for (const auto& [name, stat] : timers_) {
    std::ostringstream cell;
    cell << json_number(static_cast<double>(stat.total_ns) / 1e6) << " ms / "
         << stat.count << " calls";
    t.add_row({name, "timer", cell.str()});
  }
  for (const auto& [name, s] : spans_) {
    std::ostringstream cell;
    cell << "self " << json_number(s.self_ms) << " ms / total "
         << json_number(s.total_ms) << " ms / " << s.count << " spans (p50 "
         << json_number(s.p50_ms) << " ms, p95 " << json_number(s.p95_ms)
         << " ms)";
    t.add_row({name, "span", cell.str()});
  }
  return t.to_string();
}

}  // namespace ccs
