#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace ccs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

void JsonWriter::sep(std::string_view key) {
  if (!first_) out_ << ',';
  first_ = false;
  out_ << '"' << json_escape(key) << "\":";
}

JsonWriter& JsonWriter::field(std::string_view key, long long v) {
  sep(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, unsigned long long v) {
  sep(key);
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, double v) {
  sep(key);
  out_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool v) {
  sep(key);
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view v) {
  sep(key);
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key,
                              const std::vector<std::size_t>& v) {
  sep(key);
  out_ << '[';
  for (std::size_t i = 0; i < v.size(); ++i) out_ << (i ? "," : "") << v[i];
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view key, std::string_view json) {
  sep(key);
  out_ << json;
  return *this;
}

}  // namespace ccs
