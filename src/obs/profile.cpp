#include "obs/profile.hpp"

#include <set>
#include <sstream>

#include "obs/json.hpp"

namespace ccs {

std::string chrome_trace_json(const SpanProfiler& profiler) {
  const std::vector<SpanRecord> records = profiler.records();

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  // Metadata rows: a process name plus one thread name per track, so the
  // Perfetto/chrome://tracing UI labels each worker's lane.
  std::set<int> tids;
  for (const SpanRecord& r : records) tids.insert(r.tid);
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"ccsched\"}}";
  for (const int tid : tids) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"thread-" << tid << "\"}}";
  }

  for (const SpanRecord& r : records) {
    sep();
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"ph\":\"X\",\"ts\":"
       << json_number(static_cast<double>(r.start_ns) / 1e3)
       << ",\"dur\":" << json_number(static_cast<double>(r.dur_ns) / 1e3)
       << ",\"pid\":1,\"tid\":" << r.tid << ",\"args\":{\"depth\":" << r.depth
       << ",\"self_us\":"
       << json_number(static_cast<double>(r.self_ns) / 1e3);
    if (r.attempt >= 0) os << ",\"attempt\":" << r.attempt;
    os << "}}";
  }
  os << "]";
  if (profiler.dropped() > 0)
    os << ",\"ccsched_dropped_spans\":" << profiler.dropped();
  os << "}";
  return os.str();
}

void export_span_stats(const SpanProfiler& profiler,
                       MetricsRegistry& registry) {
  const auto to_ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  for (const auto& [name, stat] : profiler.stats()) {
    MetricsRegistry::SpanSummary s;
    s.count = static_cast<long long>(stat.durations.count());
    s.total_ms = to_ms(stat.durations.total_ns());
    s.self_ms = to_ms(stat.self_ns);
    s.p50_ms = to_ms(stat.durations.quantile_ns(0.50));
    s.p95_ms = to_ms(stat.durations.quantile_ns(0.95));
    s.max_ms = to_ms(stat.durations.max_ns());
    registry.set_span(name, s);
  }
}

}  // namespace ccs
