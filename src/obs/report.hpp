// ccsched — run-report rendering and regression diffing.
//
// The `ccsched report` CLI mode consumes the JSON documents the rest of the
// observability layer produces — `--stats` metric snapshots, `--profile`
// Chrome-trace timelines, and google-benchmark `BENCH_*.json` outputs — and
// turns them into (a) a self-time-sorted hot-path breakdown and (b) a
// machine-gateable diff of two runs with per-metric deltas and a regression
// threshold.  CI fails a change by exit code, not by eyeballing charts.
//
// Every document is first *flattened* into dotted numeric paths:
//   {"counters":{"an.evaluations":9}}    -> counters.an.evaluations = 9
//   {"timers":{"t":{"total_ms":1.5}}}    -> timers.t.total_ms = 1.5
//   {"benchmarks":[{"name":"BM_X", ...}]} -> benchmarks.BM_X.real_time = ...
//   {"traceEvents":[...]}                 -> profile.<span>.self_ms = ...
// (arrays of named objects key by their "name"; trace events aggregate per
// span name).  The diff then works on the union of paths, so stats files
// and bench files gate through the same machinery.
//
// The parser never throws on malformed input: it reports one error string
// and returns false, which the CLI maps to an operational failure.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ccs {

/// A flattened metrics document: dotted numeric paths only (booleans count
/// as 0/1; strings are dropped).
struct FlatMetrics {
  std::map<std::string, double> values;
};

/// Parses `text` (stats JSON, BENCH_*.json, or a Chrome-trace profile) into
/// flat metric paths.  Returns false and fills `error` on malformed JSON.
[[nodiscard]] bool flatten_metrics_json(const std::string& text,
                                        FlatMetrics& out, std::string& error);

/// Self-time-sorted hot-path table.  Prefers profiler data (profile.* /
/// spans.* paths), falls back to stage timers, and says so when the
/// document carries no time attribution at all.
[[nodiscard]] std::string render_hot_path_report(const FlatMetrics& m);

/// One metric's before/after comparison.
struct MetricDelta {
  std::string name;
  double before = 0.0;
  double after = 0.0;
  double pct = 0.0;        ///< Relative change in percent (after vs before).
  bool gated = false;      ///< The metric's category is being gated.
  bool regression = false; ///< Gated and grew by at least the threshold.
};

struct DiffOptions {
  /// Minimum relative growth (percent) of a gated metric that counts as a
  /// regression.
  double threshold_pct = 5.0;
  /// Comma-separated list of gate tokens; "all" gates every path.  A plain
  /// token gates a whole top-level category ("counters"); a token with a
  /// dot gates every path containing it as a substring ("bound.gap" gates
  /// benchmarks.*.bound.gap.* wherever it sits).  Times are
  /// machine-dependent, so CI diffs of deterministic runs typically gate
  /// "counters" only.
  std::string gate = "counters,timers,spans,benchmarks,profile";
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  ///< Changed/added/removed paths only.
  bool regressed = false;           ///< Any delta crossed the threshold.
};

[[nodiscard]] DiffResult diff_metrics(const FlatMetrics& before,
                                      const FlatMetrics& after,
                                      const DiffOptions& options);

/// Human-readable diff table plus a one-line verdict.
[[nodiscard]] std::string render_diff(const DiffResult& diff,
                                      const DiffOptions& options);

}  // namespace ccs
