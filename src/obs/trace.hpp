// ccsched — structured event tracing for the scheduling pipeline.
//
// The cyclo-compaction loop (rotate -> remap -> PSL check) makes thousands
// of small decisions per run; this tracer turns them into a stream of typed
// events serialized as JSON Lines (one object per line).  Consumers replay
// the stream to answer "why did pass 7 stall?" or "which AN bound pushed
// task F off processor 2?" without re-running the scheduler under a
// debugger.
//
// Design rules:
//  * Zero overhead when disabled.  A default-constructed Tracer has no sink
//    (the null sink); every emit is a single-branch no-op, and the
//    instrumented call sites additionally gate any event-only computation on
//    Tracer::enabled() / ObsContext::tracing().
//  * Events are plain structs with value semantics — tests construct and
//    inspect them directly; the JSON encoding is an output detail.
//  * Node/processor identifiers are raw indices (std::size_t), matching
//    NodeId/PeId, so the layer has no dependency on src/core or src/arch.
//  * Events carry a monotonically increasing sequence number ("seq").
//    Low-level events (remap decisions, PSL checks) carry no pass field;
//    pass_start/pass_end events bracket them in the stream.
//
// The event schema is documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

/// Destination of serialized trace lines.  Implementations receive one
/// complete JSON object per call, without a trailing newline.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void write(std::string_view line) = 0;
};

/// Appends each line (plus '\n') to a std::ostream — the JSONL file sink.
class StreamSink final : public TraceSink {
public:
  /// Non-owning: `os` must outlive the sink.
  explicit StreamSink(std::ostream& os) : os_(os) {}
  void write(std::string_view line) override;

private:
  std::ostream& os_;
};

/// Collects lines in memory; the test-friendly sink.
class VectorSink final : public TraceSink {
public:
  void write(std::string_view line) override { lines_.emplace_back(line); }
  [[nodiscard]] const std::vector<std::string>& lines() const noexcept {
    return lines_;
  }

private:
  std::vector<std::string> lines_;
};

// --- Typed events -----------------------------------------------------------

/// A rotate-remap pass begins; `length` is the table length entering it.
struct PassStartEvent {
  int pass = 0;  ///< 1-based pass number.
  int length = 0;
};

/// The rotation deallocated the first row.
struct RotationEvent {
  int pass = 0;
  std::vector<std::size_t> rotated;  ///< Node ids freed by the rotation.
};

/// The remapper starts an attempt at one target length.
struct RemapTargetEvent {
  int target = 0;
  bool relaxed = false;  ///< Target exceeds the pre-pass length.
};

/// One per-node placement decision inside a remap attempt.
struct RemapDecisionEvent {
  std::size_t node = 0;
  bool accepted = false;
  std::size_t pe = 0;     ///< Chosen processor (accepted only).
  int cb = 0;             ///< Chosen start step (accepted only).
  int an = 0;             ///< Anticipation bound AN(v, pe) at the slot.
  int latest = 0;         ///< Successor-side latest start at the slot.
  int psl = 0;            ///< PSL bound implied by v's loop-carried edges.
  int slots_scanned = 0;  ///< Candidate processors examined.
  std::string reason;     ///< "placed" or "no-feasible-slot".
};

/// The PSL check after a complete placement.  `needed` < 0 flags an
/// intra-iteration violation (no length works); otherwise the table is
/// padded to max(occupied, needed) = `length`.
struct PslPadEvent {
  int needed = 0;
  int length = 0;
};

/// A without-relaxation pass found no placement within the previous length
/// and is abandoned (the compaction loop ends).
struct RollbackEvent {
  int pass = 0;
  int length = 0;  ///< The length the schedule keeps.
  std::string reason;
};

/// A rotate-remap pass committed.
struct PassEndEvent {
  int pass = 0;
  int length = 0;        ///< Length after the pass.
  bool improved = false; ///< This pass set a new best.
  int best_length = 0;   ///< Best length so far (Q in the algorithm).
};

/// The start-up list scheduler finished.
struct StartupEvent {
  int length = 0;
  int control_steps = 0;  ///< Control steps scanned until completion.
};

/// One simulator run completed (static or self-timed mode).
struct SimRunEvent {
  std::string mode;  ///< "static" or "self-timed".
  long long iterations = 0;
  long long makespan = 0;
  double steady_ii = 0.0;
  long long messages = 0;
  long long late_arrivals = 0;
  bool deadlocked = false;
};

/// A fault from an injected FaultPlan (src/robust) bit during execution.
/// Emitted once per fault when it first takes effect, not per instance.
struct FaultEvent {
  std::string fault;          ///< "fail_stop", "link_down", or "jitter".
  std::size_t pe = 0;         ///< Failed PE (fail_stop) / link endpoint A.
  std::size_t pe2 = 0;        ///< Link endpoint B (link_down only).
  std::size_t node = 0;       ///< Jittered task (jitter only).
  long long iteration = 0;    ///< First affected iteration (0-based).
  std::string detail;         ///< Human-readable description.
};

/// One rung of the schedule-repair degradation ladder was attempted.
struct RepairEvent {
  std::string rung;    ///< "remap", "recompact_relax", "recompact_strict",
                       ///< "list_schedule", or "serial".
  bool success = false;  ///< The rung produced a certified schedule.
  int length = 0;        ///< Schedule length the rung achieved (success only).
  std::string detail;    ///< Why the rung failed / what it produced.
};

/// A run budget stopped cyclo-compaction before its pass limit: the driver
/// returns the best-so-far schedule.
struct BudgetEvent {
  std::string reason;   ///< "max-passes", "deadline", or "patience".
  int pass = 0;         ///< Pass at which the budget fired (1-based).
  int best_length = 0;  ///< Best length at the stop.
};

/// A profiler span opened (obs/span.hpp).  Emitted only when a span
/// profiler is active alongside the tracer; timestamps are monotonic
/// nanoseconds from the process profiling epoch, so these events are
/// excluded from deterministic replay (analysis/certify.cpp).
struct SpanBeginEvent {
  std::string name;
  int tid = 0;    ///< span_thread_index() of the opening thread.
  int depth = 0;  ///< Nesting depth on that thread.
  std::uint64_t ts_ns = 0;
};

/// The matching span closed.  `ts_ns` is the close timestamp; `dur_ns` the
/// wall time of the whole scope.
struct SpanEndEvent {
  std::string name;
  int tid = 0;
  int depth = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
};

// --- Tracer -----------------------------------------------------------------

/// Serializes typed events to a sink as JSON Lines.  Default-constructed
/// tracers are disabled (the null sink): emit() returns immediately and
/// nothing is counted.
class Tracer {
public:
  Tracer() = default;
  /// Non-owning: `sink` must outlive the tracer.
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }

  /// Events written so far (0 for a disabled tracer).
  [[nodiscard]] std::uint64_t events_emitted() const noexcept { return seq_; }

  /// Tags every subsequent event line with an "attempt" field — the
  /// portfolio engine gives each worker its own tracer tagged with the
  /// attempt index, so merged streams stay attributable.  Negative clears
  /// the tag (the default; serial traces stay byte-identical to before).
  void set_attempt(int attempt) noexcept { attempt_ = attempt; }
  [[nodiscard]] int attempt() const noexcept { return attempt_; }

  /// Forwards an already-serialized event line to the sink unchanged.  The
  /// portfolio engine uses this to splice per-attempt sub-traces into the
  /// parent stream in deterministic attempt order; each spliced line keeps
  /// its own per-attempt seq.  Counts toward events_emitted().
  void emit_raw(std::string_view line);

  void emit(const PassStartEvent& e);
  void emit(const RotationEvent& e);
  void emit(const RemapTargetEvent& e);
  void emit(const RemapDecisionEvent& e);
  void emit(const PslPadEvent& e);
  void emit(const RollbackEvent& e);
  void emit(const PassEndEvent& e);
  void emit(const StartupEvent& e);
  void emit(const SimRunEvent& e);
  void emit(const FaultEvent& e);
  void emit(const RepairEvent& e);
  void emit(const BudgetEvent& e);
  void emit(const SpanBeginEvent& e);
  void emit(const SpanEndEvent& e);

private:
  TraceSink* sink_ = nullptr;
  std::uint64_t seq_ = 0;
  int attempt_ = -1;
};

}  // namespace ccs
