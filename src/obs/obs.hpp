// ccsched — the observability context handed through the pipeline.
//
// Every instrumented entry point (cyclo_compact, remap_rotated,
// start_up_schedule, execute_static/execute_self_timed) takes a trailing
// `const ObsContext& obs = {}`: non-owning pointers to a Tracer, a
// MetricsRegistry, and a SpanProfiler.  The default context is fully
// disabled — hot paths pay one pointer test per instrumentation site and
// nothing else, so the uninstrumented configurations measured in bench/ are
// unaffected.
//
// Ownership stays with the caller (CLI, bench harness, tests); the context
// is trivially copyable and may be passed by value or reference.
#pragma once

#include <string_view>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace ccs {

struct ObsContext {
  Tracer* tracer = nullptr;            ///< Non-owning; nullptr = no tracing.
  MetricsRegistry* metrics = nullptr;  ///< Non-owning; nullptr = no metrics.
  SpanProfiler* profiler = nullptr;    ///< Non-owning; nullptr = no spans.

  /// True when events will actually be written — gate any event-only
  /// computation (e.g. per-decision PSL bounds) on this.
  [[nodiscard]] bool tracing() const noexcept {
    return tracer != nullptr && tracer->enabled();
  }

  /// True when spans will actually be recorded — gate any profiling-only
  /// clock reads (e.g. the per-evaluation AN histogram) on this.
  [[nodiscard]] bool profiling() const noexcept { return profiler != nullptr; }

  /// Counter increment; no-op without a registry.
  void count(std::string_view name, long long delta = 1) const {
    if (metrics != nullptr) metrics->add(name, delta);
  }

  /// RAII stage timer; no-op without a registry.
  [[nodiscard]] ScopedTimer time(std::string_view name) const {
    return {metrics, name};
  }

  /// RAII profiling span; fully inert without a profiler.  Span begin/end
  /// trace events ride along only when the profiler *and* the tracer are
  /// active, so profile-free traces stay byte-identical to before.
  [[nodiscard]] ObsSpan span(std::string_view name) const {
    return {profiler, name, profiler != nullptr ? tracer : nullptr};
  }

  /// Event emission; no-op without an enabled tracer.
  template <class Event>
  void emit(const Event& e) const {
    if (tracer != nullptr) tracer->emit(e);
  }
};

}  // namespace ccs
