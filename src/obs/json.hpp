// ccsched — minimal JSON emission for the observability layer.
//
// The tracer and the metrics registry both serialize to JSON (JSON Lines for
// events, one document for a metrics snapshot).  The library has no external
// dependencies, so this header provides the few pieces both need: string
// escaping and a tiny append-only object writer.  Output is deterministic
// (insertion order) and locale-independent.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

/// Escapes `s` for placement inside a JSON string literal (quotes excluded).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Builds one flat JSON object field by field.
///
/// Usage:
///   JsonWriter w;
///   w.field("kind", "pass_start").field("pass", 3);
///   std::string line = w.close();   // {"kind":"pass_start","pass":3}
class JsonWriter {
public:
  JsonWriter() { out_ << '{'; }

  JsonWriter& field(std::string_view key, long long v);
  JsonWriter& field(std::string_view key, unsigned long long v);
  JsonWriter& field(std::string_view key, int v) {
    return field(key, static_cast<long long>(v));
  }
  JsonWriter& field(std::string_view key, std::size_t v) {
    return field(key, static_cast<unsigned long long>(v));
  }
  JsonWriter& field(std::string_view key, double v);
  JsonWriter& field(std::string_view key, bool v);
  JsonWriter& field(std::string_view key, std::string_view v);
  /// Guards against the const char* -> bool standard conversion outranking
  /// the string_view overload.
  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }
  JsonWriter& field(std::string_view key, const std::vector<std::size_t>& v);
  /// Inserts `json` verbatim as the value (caller guarantees validity).
  JsonWriter& raw_field(std::string_view key, std::string_view json);

  /// Finishes the object and returns it.  The writer must not be reused.
  [[nodiscard]] std::string close() {
    out_ << '}';
    return out_.str();
  }

private:
  void sep(std::string_view key);

  std::ostringstream out_;
  bool first_ = true;
};

/// Renders a double as a valid JSON number (no locale, no trailing garbage).
[[nodiscard]] std::string json_number(double v);

}  // namespace ccs
