// ccsched — span profile exporters.
//
// Two consumers of a SpanProfiler's data (obs/span.hpp):
//
//  * chrome_trace_json renders the full span timeline as a Chrome
//    `trace_event` JSON document — complete ("X") events with microsecond
//    timestamps, one track per recorded thread — loadable directly in
//    chrome://tracing or https://ui.perfetto.dev.
//  * export_span_stats folds the per-name aggregates (count, total, self
//    time, approximate p50/p95, max) into a MetricsRegistry's "spans"
//    section, so `--stats` documents and text tables carry the hot-path
//    histogram summary next to the counters and stage timers.
//
// Both are snapshot-based: call them after the instrumented run finishes
// (and after per-worker profilers were absorbed).  docs/OBSERVABILITY.md
// documents the output formats.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ccs {

/// The profiler's timeline as one Chrome trace_event JSON document
/// ({"traceEvents":[...]}).  Deterministic given the records: events keep
/// recording order, thread-name metadata rows are sorted by tid.
[[nodiscard]] std::string chrome_trace_json(const SpanProfiler& profiler);

/// Writes one SpanSummary per span name into `registry` (overwriting any
/// previous summary of the same name).  Milliseconds, like timer exports.
void export_span_stats(const SpanProfiler& profiler,
                       MetricsRegistry& registry);

}  // namespace ccs
