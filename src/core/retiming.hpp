// ccsched — retiming of CSDFGs.
//
// Retiming (Leiserson & Saxe, "Retiming synchronous circuitry") redistributes
// the loop-carried delays of a cyclic graph without changing its behaviour.
// The paper's rotation phase (Def. 4.1) *is* a retiming: rotating a node set
// J draws one delay from every edge entering J and pushes one onto every edge
// leaving J.
//
// Sign convention (the paper's, Section 2): r(v) counts delays taken from the
// incoming edges of v and moved to its outgoing edges, so a retimed edge
// u -> v carries
//     d_r(e) = d(e) + r(u) - r(v).
// (This is the mirror image of Leiserson–Saxe's convention; the min-period
// algorithm below accounts for the flip.)
#pragma once

#include <vector>

#include "core/csdfg.hpp"

namespace ccs {

/// A retiming function r : V -> Z under the paper's sign convention.
class Retiming {
public:
  /// Identity retiming for a graph with `node_count` nodes.
  explicit Retiming(std::size_t node_count) : r_(node_count, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return r_.size(); }

  /// r(v): delays moved from v's incoming edges to its outgoing edges.
  [[nodiscard]] long long of(NodeId v) const;

  /// Sets r(v).
  void set(NodeId v, long long value);

  /// Adds `amount` to r(v) — rotation increments by one.
  void add(NodeId v, long long amount = 1);

  /// Delay edge `e` of `g` would carry after this retiming:
  /// d(e) + r(from) - r(to).  May be negative for an illegal retiming.
  [[nodiscard]] long long retimed_delay(const Csdfg& g, EdgeId e) const;

  /// True iff every retimed delay is non-negative (legal retiming).
  [[nodiscard]] bool is_legal_for(const Csdfg& g) const;

  /// Applies the retiming to `g`, rewriting every edge delay.  Atomic:
  /// throws GraphError and leaves `g` unchanged if any retimed delay would
  /// be negative.
  void apply(Csdfg& g) const;

  /// Pointwise sum of two retimings (applying `a` then `b` equals applying
  /// a+b to the original graph).
  [[nodiscard]] friend Retiming operator+(const Retiming& a,
                                          const Retiming& b) {
    Retiming sum(a.size());
    for (NodeId v = 0; v < a.size(); ++v) sum.r_[v] = a.of(v) + b.of(v);
    return sum;
  }

  [[nodiscard]] bool operator==(const Retiming&) const = default;

private:
  std::vector<long long> r_;
};

/// The clock period of a CSDFG: the maximum total computation time along any
/// zero-delay path (what a synchronous implementation of one iteration
/// requires; equals the zero-delay-DAG critical path).
[[nodiscard]] int clock_period(const Csdfg& g);

/// Result of min-period retiming.
struct MinPeriodResult {
  Retiming retiming;  ///< A legal retiming achieving `period`.
  int period = 0;     ///< The minimum achievable clock period.
};

/// Leiserson–Saxe minimum-period retiming, adapted to node-weighted CSDFGs
/// and the paper's sign convention.  Computes the W/D path matrices
/// (Floyd–Warshall over (delay, -time) lexicographic weights), binary
/// searches the achievable period over the distinct D values, and solves the
/// resulting difference constraints with Bellman–Ford.
///
/// O(V^3 + V·E·log V).  Used both as a substrate (rotation is incremental
/// retiming) and as the "retime-then-schedule" baseline in the benches.
///
/// Throws GraphError if `g` is illegal.
[[nodiscard]] MinPeriodResult min_period_retiming(const Csdfg& g);

}  // namespace ccs
