#include "core/unfolding.hpp"

#include <string>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

Unfolded unfold(const Csdfg& g, int factor) {
  if (factor < 1) throw GraphError("unfolding factor must be >= 1");
  const auto f = static_cast<std::size_t>(factor);

  Unfolded out{Csdfg(g.name() + "_unfold" + std::to_string(factor)), {}};
  out.copy_of.assign(g.node_count(), std::vector<NodeId>(f));

  for (NodeId v = 0; v < g.node_count(); ++v) {
    for (std::size_t i = 0; i < f; ++i) {
      out.copy_of[v][i] = out.graph.add_node(
          g.node(v).name + "." + std::to_string(i), g.node(v).time);
    }
  }
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    for (std::size_t i = 0; i < f; ++i) {
      const std::size_t shifted = i + static_cast<std::size_t>(e.delay);
      out.graph.add_edge(out.copy_of[e.from][i],
                         out.copy_of[e.to][shifted % f],
                         static_cast<int>(shifted / f), e.volume);
    }
  }
  CCS_ENSURES(out.graph.node_count() == g.node_count() * f);
  CCS_ENSURES(out.graph.edge_count() == g.edge_count() * f);
  return out;
}

}  // namespace ccs
