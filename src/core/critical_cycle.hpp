// ccsched — extracting the critical cycle.
//
// iteration_bound() reports the throughput limit; this module reports the
// *witness*: a simple cycle whose computation/delay ratio attains the
// bound.  The critical cycle is the designer's actionable diagnostic — the
// recurrence to shorten, the delays to deepen (c-slowdown), or the tasks
// to speed up — and the CLI's `info` command prints it.
#pragma once

#include <vector>

#include "core/csdfg.hpp"
#include "core/iteration_bound.hpp"

namespace ccs {

/// A simple cycle with its totals.
struct CycleWitness {
  std::vector<EdgeId> edges;  ///< In cycle order; edge i's head feeds i+1.
  long long total_time = 0;   ///< Sum of node times around the cycle.
  long long total_delay = 0;  ///< Sum of edge delays around the cycle.

  /// The cycle's time/delay ratio as an exact rational.
  [[nodiscard]] Rational ratio() const;
};

/// Finds a simple cycle of `g` attaining the iteration bound.  Returns an
/// empty witness (no edges) for acyclic graphs.  Deterministic.
///
/// Method: with B = p/q from iteration_bound(), the edge weights
/// q*t(u) - p*d(e) make every cycle non-positive and the critical cycle
/// exactly zero; a zero-weight cycle is then recovered by walking
/// predecessor links of a Bellman–Ford run.  Throws GraphError if `g` is
/// illegal.
[[nodiscard]] CycleWitness critical_cycle(const Csdfg& g);

/// Human-readable rendering: "A -> B -> A (t=4, d=3, ratio 4/3)".
[[nodiscard]] std::string describe_cycle(const Csdfg& g,
                                         const CycleWitness& cycle);

}  // namespace ccs
