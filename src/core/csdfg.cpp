#include "core/csdfg.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

NodeId Csdfg::add_node(std::string name, int time) {
  if (time < 1) {
    std::ostringstream os;
    os << "node '" << name << "': computation time must be >= 1, got " << time;
    throw GraphError(os.str());
  }
  if (name.empty()) name = "v" + std::to_string(nodes_.size());
  nodes_.push_back(Node{std::move(name), time});
  out_.emplace_back();
  in_.emplace_back();
  return nodes_.size() - 1;
}

EdgeId Csdfg::add_edge(NodeId from, NodeId to, int delay, std::size_t volume) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    std::ostringstream os;
    os << "edge endpoint out of range: (" << from << "," << to
       << ") with node count " << nodes_.size();
    throw GraphError(os.str());
  }
  if (delay < 0) {
    std::ostringstream os;
    os << "edge " << nodes_[from].name << "->" << nodes_[to].name
       << ": delay must be >= 0, got " << delay;
    throw GraphError(os.str());
  }
  if (volume < 1) {
    std::ostringstream os;
    os << "edge " << nodes_[from].name << "->" << nodes_[to].name
       << ": data volume must be >= 1";
    throw GraphError(os.str());
  }
  if (from == to && delay == 0) {
    std::ostringstream os;
    os << "zero-delay self-loop on node '" << nodes_[from].name
       << "' is unsatisfiable";
    throw GraphError(os.str());
  }
  edges_.push_back(Edge{from, to, delay, volume});
  const EdgeId id = edges_.size() - 1;
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

const Node& Csdfg::node(NodeId v) const {
  CCS_EXPECTS(v < nodes_.size());
  return nodes_[v];
}

const Edge& Csdfg::edge(EdgeId e) const {
  CCS_EXPECTS(e < edges_.size());
  return edges_[e];
}

std::span<const EdgeId> Csdfg::out_edges(NodeId v) const {
  CCS_EXPECTS(v < nodes_.size());
  return out_[v];
}

std::span<const EdgeId> Csdfg::in_edges(NodeId v) const {
  CCS_EXPECTS(v < nodes_.size());
  return in_[v];
}

NodeId Csdfg::node_by_name(const std::string& name) const {
  NodeId found = nodes_.size();
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].name == name) {
      if (found != nodes_.size())
        throw GraphError("node name '" + name + "' is ambiguous");
      found = v;
    }
  }
  if (found == nodes_.size())
    throw GraphError("no node named '" + name + "'");
  return found;
}

void Csdfg::set_delay(EdgeId e, int delay) {
  CCS_EXPECTS(e < edges_.size());
  if (delay < 0) {
    std::ostringstream os;
    os << "retimed delay on edge " << nodes_[edges_[e].from].name << "->"
       << nodes_[edges_[e].to].name << " would be negative (" << delay << ")";
    throw GraphError(os.str());
  }
  if (edges_[e].from == edges_[e].to && delay == 0)
    throw GraphError("retiming would create a zero-delay self-loop on '" +
                     nodes_[edges_[e].from].name + "'");
  edges_[e].delay = delay;
}

long long Csdfg::total_computation() const noexcept {
  long long sum = 0;
  for (const auto& n : nodes_) sum += n.time;
  return sum;
}

long long Csdfg::total_delay() const noexcept {
  long long sum = 0;
  for (const auto& e : edges_) sum += e.delay;
  return sum;
}

bool Csdfg::is_legal() const {
  // Kahn's algorithm restricted to zero-delay edges: the graph is legal iff
  // the zero-delay subgraph is acyclic.
  std::vector<std::size_t> indeg(nodes_.size(), 0);
  for (const auto& e : edges_)
    if (e.delay == 0) ++indeg[e.to];
  std::vector<NodeId> ready;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::size_t removed = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++removed;
    for (EdgeId eid : out_[v]) {
      const Edge& e = edges_[eid];
      if (e.delay == 0 && --indeg[e.to] == 0) ready.push_back(e.to);
    }
  }
  return removed == nodes_.size();
}

void Csdfg::require_legal() const {
  if (!is_legal())
    throw GraphError("CSDFG '" + name_ +
                     "' has a cycle with zero total delay (illegal: an "
                     "iteration would depend on its own future)");
}

}  // namespace ccs
