// ccsched — schedule validation.
//
// The single master constraint (DESIGN.md §2) that a static cyclic schedule
// of length L must satisfy for every edge e : u -> v with delay k:
//
//     CB(v) + k*L  >=  CE(u) + M(PE(u), PE(v), c(e)) + 1
//
// Iteration i occupies absolute steps [i*L+1, (i+1)*L]; u's result leaves at
// the end of step CE(u), takes M steps of store-and-forward transport when
// the endpoints differ, and v of iteration i+k may start no earlier than the
// following step.  With k=0 this is the intra-iteration dependence rule; with
// k>=1 it is the inter-iteration rule from which the paper's AN (Lemma 4.2)
// and PSL (Lemma 4.3) are derived.
//
// The validator re-derives everything from first principles (it never trusts
// the scheduler's bookkeeping) and is used as the referee in tests, benches,
// and examples.
#pragma once

#include <string>
#include <vector>

#include "arch/comm_model.hpp"
#include "core/csdfg.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// One broken rule, with a human-readable diagnosis.
struct Violation {
  enum class Kind {
    kUnplacedTask,       ///< A task is missing from the table.
    kOutOfTable,         ///< CB < 1 or CE > length().
    kResourceConflict,   ///< Two tasks overlap on a non-pipelined PE.
    kIssueConflict,      ///< Two tasks share an issue slot on a pipelined PE.
    kDependence,         ///< The master edge constraint fails.
    kIllegalGraph,       ///< The graph has a zero-delay cycle.
  };
  Kind kind;
  std::string message;
};

/// Outcome of validating a schedule.
struct ValidationReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// All messages joined with newlines (empty when ok()).
  [[nodiscard]] std::string to_string() const;
};

/// Validates `table` as a complete static cyclic schedule of `g` under
/// communication model `comm`.  Returns every violation found (never throws
/// on an invalid schedule — failure injection tests depend on the full
/// report).  The report is deterministic: violations are sorted by
/// (kind, message) and exact duplicates are dropped.
[[nodiscard]] ValidationReport validate_schedule(const Csdfg& g,
                                                 const ScheduleTable& table,
                                                 const CommModel& comm);

/// The smallest legal cyclic length for the given placements: the maximum of
/// occupied_length() and, over every inter-iteration edge (k >= 1),
/// ceil((CE(u) + M + 1 - CB(v)) / k) — the PSL bound of Lemma 4.3 in the
/// +1-consistent form (DESIGN.md §2 and §5).  Intra-iteration (k = 0) edges
/// do not depend on L; if one is violated no length works and the function
/// returns -1.  All tasks must be placed.
[[nodiscard]] int min_feasible_length(const Csdfg& g,
                                      const ScheduleTable& table,
                                      const CommModel& comm);

}  // namespace ccs
