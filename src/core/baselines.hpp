// ccsched — the baseline schedulers the paper compares against.
//
// * Communication-oblivious list scheduling: the classic algorithm the
//   paper's Section 1 survey attributes to most prior work — identical
//   machinery with communication priced at zero.
// * Communication-oblivious rotation scheduling (Chao, LaPaugh & Sha, DAC
//   1993, the paper's reference [2]): cyclo-compaction with a zero
//   communication model — rotation + remapping that "does not consider the
//   communication between processors".
// * Retime-then-schedule: Leiserson–Saxe minimum-period retiming followed by
//   one communication-aware start-up schedule — loop pipelining applied once
//   up front instead of incrementally.
//
// Oblivious baselines generally emit tables that are invalid under the real
// communication model; compare them through the self-timed simulator
// (sim/executor.hpp), which charges the communication they actually incur.
#pragma once

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Classic list scheduling that ignores communication delays.  The returned
/// table honors intra-iteration precedence and resources but not transport
/// time; evaluate it with the self-timed simulator.
[[nodiscard]] ScheduleTable oblivious_list_schedule(const Csdfg& g,
                                                    const Topology& topo);

/// Rotation scheduling [2]: cyclo-compaction driven by a zero communication
/// model (with relaxation, default passes).  Returns the full result; the
/// best table minimizes *computation-only* length.
[[nodiscard]] CycloCompactionResult rotation_scheduling_no_comm(
    const Csdfg& g, const Topology& topo);

/// Result of the retime-then-schedule baseline.
struct RetimeThenScheduleResult {
  Csdfg retimed_graph;   ///< The min-period retimed graph.
  ScheduleTable table;   ///< Communication-aware start-up schedule of it.
  int min_period = 0;    ///< The period the retiming achieved.
};

/// Minimum-period retiming followed by one communication-aware start-up
/// schedule.  The returned table is valid under `comm`.
[[nodiscard]] RetimeThenScheduleResult retime_then_schedule(
    const Csdfg& g, const Topology& topo, const CommModel& comm);

}  // namespace ccs
