#include "core/exhaustive.hpp"

#include <algorithm>

#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "core/remap_engine.hpp"
#include "util/contracts.hpp"

namespace ccs {

namespace {

struct BudgetExceeded {};

class Search {
public:
  Search(const Csdfg& g, const CommModel& comm, std::vector<NodeId> order,
         long long budget)
      : g_(&g), comm_(&comm), order_(std::move(order)), budget_(budget) {}

  bool feasible(ScheduleTable& table, int length) {
    length_ = length;
    return place_from(table, 0);
  }

private:
  const Csdfg* g_;
  const CommModel* comm_;
  std::vector<NodeId> order_;
  long long budget_;
  long long visited_ = 0;
  int length_ = 0;

  bool place_from(ScheduleTable& table, std::size_t idx) {
    if (idx == order_.size()) return true;
    const NodeId v = order_[idx];
    for (PeId pe = 0; pe < table.num_pes(); ++pe) {
      const int lo = RemapEngine::anticipation(*g_, table, *comm_, v, pe, length_);
      const int hi = RemapEngine::latest_start(*g_, table, *comm_, v, pe, length_);
      const int span = table.pipelined_pes() ? 1 : table.time_on(v, pe);
      for (int cb = lo; cb <= hi; ++cb) {
        if (++visited_ > budget_) throw BudgetExceeded{};
        if (!table.is_free(pe, cb, cb + span - 1)) continue;
        table.place(v, pe, cb);
        if (place_from(table, idx + 1)) return true;
        table.remove(v);
      }
    }
    return false;
  }
};

}  // namespace

std::optional<ScheduleTable> optimal_schedule(const Csdfg& g,
                                              const Topology& topo,
                                              const CommModel& comm,
                                              const ExhaustiveOptions& options) {
  g.require_legal();
  CCS_EXPECTS(g.node_count() >= 1);

  // Floors: the heaviest task, the per-processor work bound, and the
  // iteration bound.
  long long floor_len = 1;
  for (NodeId v = 0; v < g.node_count(); ++v)
    floor_len = std::max<long long>(floor_len, g.node(v).time);
  floor_len = std::max<long long>(
      floor_len, (g.total_computation() + static_cast<long long>(topo.size()) - 1) /
                     static_cast<long long>(topo.size()));
  const Rational bound = iteration_bound(g);
  floor_len =
      std::max<long long>(floor_len, (bound.num + bound.den - 1) / bound.den);
  // Self-loops: k*L >= t(v) + M'(=0 same PE) requires L >= ceil(t/k).
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    if (ed.from == ed.to)
      floor_len = std::max<long long>(
          floor_len, (g.node(ed.from).time + ed.delay - 1) / ed.delay);
  }

  long long cap = options.max_length;
  if (cap <= 0) {
    // A serial schedule on one PE always exists; its padded length bounds
    // the optimum.
    cap = g.total_computation();
    for (EdgeId e = 0; e < g.edge_count(); ++e)
      if (g.edge(e).delay >= 1)
        cap = std::max<long long>(
            cap, (g.total_computation() + g.edge(e).delay - 1) /
                     g.edge(e).delay);
  }

  const auto order = zero_delay_topological_order(g);
  for (long long L = floor_len; L <= cap; ++L) {
    ScheduleTable table(g, topo.size());
    table.set_length(static_cast<int>(L));
    Search search(g, comm, order, options.max_search_nodes);
    try {
      if (search.feasible(table, static_cast<int>(L))) {
        table.set_length(static_cast<int>(L));
        return table;
      }
    } catch (const BudgetExceeded&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace ccs
