// ccsched — the rotation phase (Definition 4.1).
//
// Rotating the schedule deallocates the tasks that start in the table's
// first row and retimes the graph by drawing one delay from every edge
// entering that set and pushing one onto every edge leaving it; the rest of
// the table shifts one control step earlier (the paper's "moving row 1 to
// position L+1" followed by renumbering).  In a valid schedule every edge
// entering a first-row task from outside carries at least one delay, so the
// rotation is always a legal retiming (the argument behind Lemma 4.1).
#pragma once

#include <vector>

#include "core/csdfg.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Rotates the first row of `table`:
///  1. J = tasks with CB == 1 (returned),
///  2. removes them from the table,
///  3. applies the retiming r(J) += 1 to `g` (throws GraphError, leaving both
///     arguments untouched, if the schedule was invalid in a way that makes
///     the retiming illegal),
///  4. shifts the remaining tasks one step earlier (length decreases by 1).
///
/// If `accumulated` is non-null the rotation's retiming is added to it.
/// Precondition: the table is complete and length() >= 1.
std::vector<NodeId> rotate_first_row(Csdfg& g, ScheduleTable& table,
                                     Retiming* accumulated = nullptr);

}  // namespace ccs
