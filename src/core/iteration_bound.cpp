#include "core/iteration_bound.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

std::string Rational::to_string() const {
  std::ostringstream os;
  os << num;
  if (den != 1) os << '/' << den;
  return os.str();
}

bool has_cycle_ratio_above(const Csdfg& g, long long p, long long q) {
  CCS_EXPECTS(q > 0);
  const std::size_t n = g.node_count();
  if (n == 0) return false;

  // Longest-path Bellman–Ford from a virtual source connected to all nodes
  // with weight 0; a relaxation still possible after n passes certifies a
  // positive cycle, i.e. a cycle with q*sum(t) - p*sum(d) > 0, i.e. ratio
  // sum(t)/sum(d) > p/q.
  std::vector<long long> dist(n, 0);
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
      const Edge& e = g.edge(eid);
      const long long w = q * static_cast<long long>(g.node(e.from).time) -
                          p * static_cast<long long>(e.delay);
      if (dist[e.from] + w > dist[e.to]) {
        dist[e.to] = dist[e.from] + w;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

Rational iteration_bound(const Csdfg& g) {
  g.require_legal();
  if (g.node_count() == 0) return Rational{0, 1};

  if (!has_cycle_ratio_above(g, 0, 1)) {
    // Every cycle has positive computation time, so "ratio > 0" fails only
    // when there is no cycle at all: the graph is acyclic.
    return Rational{0, 1};
  }

  // B is T_C / D_C for some simple cycle C, so its denominator is at most
  // min(total delay, |V| * max edge delay).  For each candidate denominator
  // q, the smallest p with NOT(B > p/q) gives the least fraction >= B with
  // that denominator; the minimum over q is exactly B (attained when q is a
  // multiple of B's reduced denominator).
  const long long total_t = g.total_computation();
  long long max_edge_delay = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    max_edge_delay =
        std::max(max_edge_delay, static_cast<long long>(g.edge(e).delay));
  const long long max_den =
      std::min(g.total_delay(),
               static_cast<long long>(g.node_count()) * max_edge_delay);
  CCS_ASSERT(max_den >= 1);

  Rational best{total_t + 1, 1};  // strictly above any possible bound
  for (long long q = 1; q <= max_den; ++q) {
    // Binary search the least p in [1, total_t * q] with !above(p, q).
    long long lo = 1, hi = total_t * q;
    // above(hi, q) is false: no cycle ratio exceeds total_t.
    while (lo < hi) {
      const long long mid = (lo + hi) / 2;
      if (has_cycle_ratio_above(g, mid, q))
        lo = mid + 1;
      else
        hi = mid;
    }
    const Rational cand{lo, q};
    if (cand < best) best = cand;
  }
  const long long gcd = std::gcd(best.num, best.den);
  CCS_ENSURES(best.num >= 1 && best.num <= total_t);
  return Rational{best.num / gcd, best.den / gcd};
}

}  // namespace ccs
