// ccsched — loop unfolding (unrolling) of CSDFGs.
//
// Unfolding by factor f replaces the loop body with f consecutive iterations:
// every task v becomes copies v_0 .. v_{f-1}, and an edge u -> v with delay d
// becomes f edges u_i -> v_{(i+d) mod f} carrying delay floor((i+d)/f).  It
// is the standard companion transform to retiming: unfolding exposes
// inter-iteration parallelism that a single-iteration static schedule cannot,
// at the cost of an f-times larger schedule table.  The library provides it
// as a substrate and uses it in the benches to cross-check the iteration
// bound (which is invariant per original iteration under unfolding).
#pragma once

#include <vector>

#include "core/csdfg.hpp"

namespace ccs {

/// Result of unfolding a CSDFG.
struct Unfolded {
  Csdfg graph;  ///< The unfolded graph with f * node_count(original) nodes.
  /// copy_of[v_original][i] is the NodeId of copy i in `graph`.
  std::vector<std::vector<NodeId>> copy_of;
};

/// Unfolds `g` by `factor` (>= 1).  Copy i of node v is named
/// "<name>.<i>" (a separator that survives the text format, whose `#`
/// starts comments).  Preserves legality: the unfolded graph of a legal CSDFG is
/// legal.  Data volumes are copied unchanged.
[[nodiscard]] Unfolded unfold(const Csdfg& g, int factor);

}  // namespace ccs
