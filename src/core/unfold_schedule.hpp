// ccsched — unfold-and-compact: fractional initiation intervals.
//
// A static schedule of the loop body achieves an integral period L.  When
// the iteration bound is fractional (e.g. 4/3), the classic route to a
// rate-optimal static schedule (Chao & Sha, the paper's reference [3]) is
// to unfold the graph by a factor f and schedule f iterations per table:
// the per-original-iteration rate becomes L_f / f, which can drop below
// the best single-iteration L.  This module composes the library's
// unfolding transform with cyclo-compaction and reports the achieved rate,
// making the paper's "future work" direction measurable (bench_unfolding).
#pragma once

#include "core/cyclo_compaction.hpp"
#include "core/unfolding.hpp"

namespace ccs {

/// Result of scheduling an f-unfolded loop body.
struct UnfoldedScheduleResult {
  int factor = 1;              ///< Unfolding factor f.
  Unfolded unfolded;           ///< The unfolded graph and its copy map.
  CycloCompactionResult run;   ///< Cyclo-compaction of the unfolded graph.

  /// Table steps per ORIGINAL iteration: best length / f.
  [[nodiscard]] double rate() const {
    return static_cast<double>(run.best_length()) / factor;
  }
};

/// Unfolds `g` by `factor` (>= 1) and cyclo-compacts the result on the
/// given machine.  The returned schedule is a valid static schedule of the
/// unfolded graph; rate() is its per-original-iteration cost.
[[nodiscard]] UnfoldedScheduleResult unfold_and_compact(
    const Csdfg& g, int factor, const Topology& topo, const CommModel& comm,
    const CycloCompactionOptions& options = {});

/// The flat schedule a cyclic table *induces* on an unfolded graph: copy j
/// of task v runs at (PE(v), CB(v) + j*L), and the table spans factor*L
/// steps.  A cyclic table is a valid schedule of g iff its induced flat
/// schedule is a valid schedule of unfold(g, factor) — the certifier's
/// translation-validation cross-check (CCS-S011).  Preconditions: `table`
/// is complete, in-table (occupied_length() <= length()), conflict-free,
/// and `unfolded` came from unfold(g, factor) for the table's graph.
[[nodiscard]] ScheduleTable unfold_table(const ScheduleTable& table,
                                         const Unfolded& unfolded,
                                         int factor);

}  // namespace ccs
