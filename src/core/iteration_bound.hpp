// ccsched — the iteration bound of a cyclic data-flow graph.
//
// The iteration bound B(G) = max over cycles C of (sum of t over C) /
// (sum of d over C) is the fundamental throughput limit of a cyclic DFG: no
// schedule, on any number of processors with any communication system, can
// sustain one iteration per fewer than B(G) time units.  The benches report
// it as the architecture-independent floor against which cyclo-compaction's
// schedule lengths are judged.
#pragma once

#include <compare>
#include <string>

#include "core/csdfg.hpp"

namespace ccs {

/// An exact non-negative rational p/q in lowest terms.
struct Rational {
  long long num = 0;
  long long den = 1;

  [[nodiscard]] double value() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] friend std::strong_ordering operator<=>(const Rational& a,
                                                        const Rational& b) {
    return a.num * b.den <=> b.num * a.den;
  }
  [[nodiscard]] friend bool operator==(const Rational& a, const Rational& b) {
    return (a <=> b) == std::strong_ordering::equal;
  }
};

/// Computes the iteration bound of `g` exactly.
///
/// Method: the bound is the maximum cycle ratio of the edge-weighted graph
/// with value(e) = t(source(e)) and cost(e) = d(e).  A candidate ratio
/// lambda = p/q is feasible (lambda >= B) iff the graph with edge weights
/// q*t(u) - p*d(e) has no positive cycle (checked by Bellman–Ford).  Since B
/// is a ratio of (sum t over a simple cycle) / (sum d over that cycle), its
/// denominator is at most total_delay(); a binary search over the
/// Stern–Brocot tree of such fractions terminates with the exact value.
///
/// Acyclic graphs have bound 0/1.  Throws GraphError if `g` is illegal (a
/// zero-delay cycle would make the bound infinite).
[[nodiscard]] Rational iteration_bound(const Csdfg& g);

/// True iff some cycle of the graph with edge weight q*t(u) - p*d(e) is
/// strictly positive — i.e. the iteration bound exceeds p/q.  Exposed for
/// testing.
[[nodiscard]] bool has_cycle_ratio_above(const Csdfg& g, long long p,
                                         long long q);

}  // namespace ccs
