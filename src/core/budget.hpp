// ccsched — run budgets: cooperative cancellation for open-ended searches.
//
// Cyclo-compaction runs a fixed number of rotate-remap passes, but a
// production caller cannot afford "fixed" to mean "minutes": a serving
// deadline, a repair path racing a failover, or a CI job all need the
// driver to stop early and hand back the best schedule found so far.  A
// RunBudget expresses three independent stop conditions checked at pass
// boundaries (the passes themselves are short; finer-grained cancellation
// would buy nothing and cost determinism):
//
//  * max_passes — a hard cap below the configured pass count;
//  * deadline_ms — wall-clock, measured on an *injectable* clock so tests
//    and replay stay deterministic (the default steady clock is only used
//    when no clock is supplied);
//  * patience — stop after this many consecutive passes without a new
//    best length (the paper's examples converge within a handful of
//    passes; the rest is wasted work).
//
// Budgeted runs are never worse than unbudgeted ones in correctness terms:
// the driver always returns the best-so-far schedule, which is valid and
// no longer than the start-up schedule (Theorem 4.4 / best-so-far
// bookkeeping).  With a ManualBudgetClock (or no deadline) the run is
// bit-for-bit deterministic: same graph, options, and budget give the same
// schedule and the same trace.
#pragma once

#include <chrono>

namespace ccs {

/// Clock abstraction for deadline budgets.  Injectable so budgeted runs
/// can be made deterministic (tests drive a ManualBudgetClock).
class BudgetClock {
public:
  virtual ~BudgetClock() = default;
  /// Milliseconds since an arbitrary fixed origin; must be monotone.
  [[nodiscard]] virtual long long now_ms() const = 0;
};

/// The real monotonic clock (used when a deadline is set but no clock is
/// injected).  Nondeterministic by nature — prefer an injected clock
/// anywhere reproducibility matters.
class SteadyBudgetClock final : public BudgetClock {
public:
  [[nodiscard]] long long now_ms() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// A hand-cranked clock for tests: time advances only when told to, so a
/// deadline budget fires at an exactly reproducible pass.
class ManualBudgetClock final : public BudgetClock {
public:
  [[nodiscard]] long long now_ms() const override { return now_; }
  void advance(long long ms) { now_ += ms; }
  void set(long long ms) { now_ = ms; }

private:
  long long now_ = 0;
};

/// Cooperative external stop signal, checked at the same pass boundaries as
/// the budget conditions.  This is how work *outside* the run preempts it:
/// the portfolio engine's shared incumbent tells a worker its attempt can no
/// longer win, a serving layer signals shutdown.  Implementations receive
/// the caller's current best schedule length so they can decide with full
/// information, and must tolerate being called from the running thread while
/// other threads update the underlying state (the portfolio token locks).
class BudgetStopToken {
public:
  virtual ~BudgetStopToken() = default;
  /// True when the run should stop now and return its best-so-far result.
  /// `current_best` is the length of the caller's best schedule so far.
  [[nodiscard]] virtual bool stop_requested(int current_best) const = 0;
};

/// Stop conditions for cyclo_compact.  Zero values disable a condition;
/// the default budget is fully open (today's behavior).
struct RunBudget {
  /// Hard cap on rotate-remap passes executed (0 = no cap; the options'
  /// pass count still applies).
  int max_passes = 0;
  /// Wall-clock deadline in milliseconds from the start of the run
  /// (0 = none).  Checked at pass boundaries on `clock`, or on a
  /// SteadyBudgetClock when `clock` is null.
  long long deadline_ms = 0;
  /// Stop after this many consecutive passes without improving the best
  /// length (0 = never).
  int patience = 0;
  /// Non-owning deadline clock; must outlive the run.  Null selects the
  /// real steady clock.
  const BudgetClock* clock = nullptr;
  /// Non-owning external stop signal; must outlive the run.  Null means no
  /// external preemption.  Fires the "preempted" stop reason.
  const BudgetStopToken* stop = nullptr;

  /// True when any stop condition is configured.
  [[nodiscard]] bool active() const noexcept {
    return max_passes > 0 || deadline_ms > 0 || patience > 0 ||
           stop != nullptr;
  }
};

}  // namespace ccs
