#include "core/baselines.hpp"

#include "core/list_scheduler.hpp"
#include "core/retiming.hpp"

namespace ccs {

ScheduleTable oblivious_list_schedule(const Csdfg& g, const Topology& topo) {
  ZeroCommModel zero;
  StartUpOptions options;
  options.comm_aware = false;
  return start_up_schedule(g, topo, zero, options);
}

CycloCompactionResult rotation_scheduling_no_comm(const Csdfg& g,
                                                  const Topology& topo) {
  ZeroCommModel zero;
  CycloCompactionOptions options;
  options.policy = RemapPolicy::kWithRelaxation;
  return cyclo_compact(g, topo, zero, options);
}

RetimeThenScheduleResult retime_then_schedule(const Csdfg& g,
                                              const Topology& topo,
                                              const CommModel& comm) {
  const MinPeriodResult mp = min_period_retiming(g);
  Csdfg retimed = g;
  mp.retiming.apply(retimed);
  ScheduleTable table = start_up_schedule(retimed, topo, comm);
  return {std::move(retimed), std::move(table), mp.period};
}

}  // namespace ccs
