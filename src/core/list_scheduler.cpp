#include "core/list_scheduler.hpp"

#include <algorithm>
#include <vector>

#include "core/graph_algo.hpp"
#include "core/validator.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

namespace {

/// True when every zero-delay predecessor of v is already placed.
bool is_ready(const Csdfg& g, const ScheduleTable& table, NodeId v) {
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0 && !table.is_placed(e.from)) return false;
  }
  return true;
}

/// Placement snapshot of one scheduled zero-delay predecessor, hoisted out
/// of the per-processor probe loop.
struct PredSnapshot {
  int ce;
  PeId pe;
  std::size_t volume;
};

}  // namespace

ScheduleTable start_up_schedule(const Csdfg& g, const Topology& topo,
                                const CommModel& comm,
                                const StartUpOptions& options,
                                const ObsContext& obs) {
  g.require_legal();
  const ScopedTimer timer(obs.metrics, "time.startup");
  const ObsSpan list_span = obs.span("startup.list");
  CCS_EXPECTS(options.pe_speeds.empty() ||
              options.pe_speeds.size() == topo.size());
  ScheduleTable table =
      options.pe_speeds.empty()
          ? ScheduleTable(g, topo.size(), options.pipelined_pes)
          : ScheduleTable(g, options.pe_speeds, options.pipelined_pes);
  if (g.node_count() == 0) return table;

  const DagTiming timing = compute_dag_timing(g);

  // Upper bound on the control steps the loop may need: executing every task
  // serially on one PE (at the worst slowdown) and paying the network
  // diameter for every edge.
  int max_speed = 1;
  for (PeId p = 0; p < topo.size(); ++p)
    max_speed = std::max(max_speed, table.pe_speed(p));
  long long budget = g.total_computation() * max_speed;
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid)
    budget += static_cast<long long>(topo.diameter()) *
              static_cast<long long>(g.edge(eid).volume);
  budget += 1;

  long long candidate_slots = 0;
  int steps_scanned = 0;
  for (int cs = 1; !table.complete(); ++cs) {
    if (cs > budget)
      throw ScheduleError(
          "start-up scheduling failed to converge (internal error)");
    steps_scanned = cs;

    // Ready list for this control step, ordered by descending priority with
    // node id as the deterministic tie-break.
    std::vector<NodeId> ready;
    for (NodeId v = 0; v < g.node_count(); ++v)
      if (!table.is_placed(v) && is_ready(g, table, v)) ready.push_back(v);
    std::stable_sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      const long long pa =
          priority_value(options.priority, g, table, timing, a, cs);
      const long long pb =
          priority_value(options.priority, g, table, timing, b, cs);
      if (pa != pb) return pa > pb;
      return a < b;
    });

    std::vector<PredSnapshot> preds;
    for (NodeId v : ready) {
      // cm(p_j) = max_i { CE(u_i) + M(PE(u_i), p_j, c(e_i)) } over the
      // scheduled zero-delay predecessors; v may start at cs on p_j only if
      // cm < cs (the algorithm's validity test) and the slot is free.
      //
      // The predecessor placements cannot change while v probes processors,
      // so their (CE, PE, volume) triples are snapshotted once per node
      // instead of re-read from the table P times.  Communication costs are
      // non-negative, so max CE(u_i) lower-bounds cm on *every* processor:
      // when it already reaches cs the whole probe loop is provably futile
      // and is skipped (same placements, fewer startup.candidate_slots).
      preds.clear();
      long long min_cm = 0;
      for (EdgeId eid : g.in_edges(v)) {
        const Edge& e = g.edge(eid);
        if (e.delay != 0) continue;
        const int ce = table.ce(e.from);
        preds.push_back({ce, table.pe(e.from), e.volume});
        min_cm = std::max(min_cm, static_cast<long long>(ce));
      }
      if (min_cm >= cs) continue;
      bool placed = false;
      long long best_cm = 0;
      int best_finish = 0;
      PeId best_pe = 0;
      for (PeId pj = 0; pj < topo.size(); ++pj) {
        ++candidate_slots;
        const int span = options.pipelined_pes ? 1 : table.time_on(v, pj);
        long long cm = 0;
        for (const PredSnapshot& u : preds) {
          const long long m =
              options.comm_aware ? comm.cost(u.pe, pj, u.volume) : 0;
          cm = std::max(cm, static_cast<long long>(u.ce) + m);
        }
        if (cm < cs && table.is_free(pj, cs, cs + span - 1)) {
          // Prefer the earliest completion (heterogeneity-aware; identical
          // spans reduce this to the paper's min-cm rule), then min cm,
          // then the lowest-numbered processor.
          const int finish = cs + table.time_on(v, pj) - 1;
          if (!placed || finish < best_finish ||
              (finish == best_finish && cm < best_cm)) {
            placed = true;
            best_cm = cm;
            best_finish = finish;
            best_pe = pj;
          }
        }
      }
      if (placed) table.place(v, best_pe, cs);
      // Nodes that cannot be placed stay in the ready pool for the next
      // control step (the algorithm's dlist).
    }
  }

  // Raise the length to the PSL bound so the table is valid as a cyclic
  // schedule including its loop-carried edges.  Intra-iteration edges were
  // honored above, so the bound exists (comm-aware mode only; the
  // comm-oblivious baseline intentionally returns its raw table).
  if (options.comm_aware) {
    const int needed = min_feasible_length(g, table, comm);
    CCS_ASSERT(needed >= 0);
    if (needed > table.length()) table.set_length(needed);
  }
  if (obs.metrics != nullptr) {
    obs.metrics->add("startup.control_steps", steps_scanned);
    obs.metrics->add("startup.candidate_slots", candidate_slots);
  }
  obs.emit(StartupEvent{table.length(), steps_scanned});
  return table;
}

}  // namespace ccs
