// ccsched — scheduling priority functions.
//
// Definition 3.6 of the paper tailors list scheduling's priority to the
// communication-sensitive setting:
//
//   PF(v) = max_i { m_i - (cs_cur - (CE(u_i)+1)) } - MB(v)
//
// over the already-scheduled zero-delay predecessors u_i of v with data
// volumes m_i: a pending transfer's volume is discounted by how long v has
// already been deferred past its producer, and high mobility (Def. 3.4, the
// slack before v would stretch the critical path) lowers urgency.  Higher PF
// schedules first.
//
// Alternative rules (mobility-only, FIFO) are provided for the priority
// ablation bench (experiment A2 in DESIGN.md).
#pragma once

#include "core/csdfg.hpp"
#include "core/graph_algo.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Which priority the start-up scheduler uses to order its ready list.
enum class PriorityRule {
  kCommunicationSensitive,  ///< The paper's PF (Def. 3.6).  Default.
  kMobilityOnly,            ///< Classic list scheduling: -mobility.
  kFifo,                    ///< Ready-list arrival order (node id).
};

/// Evaluates PF(v) (Def. 3.6) at current control step `cs_cur` given the
/// partial schedule `table` (used for CE of scheduled predecessors) and the
/// DAG timing `timing` (used for mobility).  Predecessors joined by
/// loop-carried (delay > 0) edges are outside the current iteration and do
/// not contribute; a node with no contributing predecessor gets a zero
/// communication term.
[[nodiscard]] long long priority_pf(const Csdfg& g, const ScheduleTable& table,
                                    const DagTiming& timing, NodeId v,
                                    int cs_cur);

/// Evaluates the selected rule; larger values schedule first.  kFifo returns
/// the negated node id so that earlier-inserted nodes win.
[[nodiscard]] long long priority_value(PriorityRule rule, const Csdfg& g,
                                       const ScheduleTable& table,
                                       const DagTiming& timing, NodeId v,
                                       int cs_cur);

}  // namespace ccs
