#include "core/retiming.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "core/graph_algo.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace ccs {

long long Retiming::of(NodeId v) const {
  CCS_EXPECTS(v < r_.size());
  return r_[v];
}

void Retiming::set(NodeId v, long long value) {
  CCS_EXPECTS(v < r_.size());
  r_[v] = value;
}

void Retiming::add(NodeId v, long long amount) {
  CCS_EXPECTS(v < r_.size());
  r_[v] += amount;
}

long long Retiming::retimed_delay(const Csdfg& g, EdgeId e) const {
  CCS_EXPECTS(r_.size() == g.node_count());
  const Edge& edge = g.edge(e);
  return edge.delay + r_[edge.from] - r_[edge.to];
}

bool Retiming::is_legal_for(const Csdfg& g) const {
  CCS_EXPECTS(r_.size() == g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (retimed_delay(g, e) < 0) return false;
  return true;
}

void Retiming::apply(Csdfg& g) const {
  CCS_EXPECTS(r_.size() == g.node_count());
  std::vector<int> new_delay(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const long long d = retimed_delay(g, e);
    if (d < 0) {
      const Edge& edge = g.edge(e);
      throw GraphError("illegal retiming: edge " + g.node(edge.from).name +
                       "->" + g.node(edge.to).name +
                       " would carry delay " + std::to_string(d));
    }
    if (d > std::numeric_limits<int>::max())
      throw GraphError("retimed delay overflows int");
    new_delay[e] = static_cast<int>(d);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) g.set_delay(e, new_delay[e]);
}

int clock_period(const Csdfg& g) { return compute_dag_timing(g).critical_path; }

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max() / 4;

/// Difference-constraint system solved by Bellman–Ford: find x with
/// x[b] - x[a] <= w for every constraint, or report infeasible.
struct DifferenceConstraints {
  struct C {
    NodeId a, b;
    long long w;
  };
  std::size_t n;
  std::vector<C> cs;

  /// Returns a feasible assignment, or std::nullopt-like empty vector with
  /// `feasible=false`.
  bool solve(std::vector<long long>& x) const {
    x.assign(n, 0);  // virtual source with 0-weight edges to all nodes
    for (std::size_t pass = 0; pass + 1 < n + 1; ++pass) {
      bool changed = false;
      for (const C& c : cs) {
        if (x[c.a] + c.w < x[c.b]) {
          x[c.b] = x[c.a] + c.w;
          changed = true;
        }
      }
      if (!changed) return true;
    }
    for (const C& c : cs)
      if (x[c.a] + c.w < x[c.b]) return false;  // negative cycle
    return true;
  }
};

}  // namespace

MinPeriodResult min_period_retiming(const Csdfg& g) {
  g.require_legal();
  const std::size_t n = g.node_count();
  if (n == 0) return {Retiming(0), 0};

  // W(u,v): minimum total delay over nonempty paths u ~> v.
  // D(u,v): maximum total computation time (including both endpoints) over
  // minimum-delay paths u ~> v.  Computed by Floyd–Warshall over the
  // lexicographic weight (delay, -accumulated_time).
  Matrix<long long> W(n, n, kInf);
  Matrix<long long> D(n, n, std::numeric_limits<long long>::min() / 4);

  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    const long long w = e.delay;
    const long long d = g.node(e.from).time + g.node(e.to).time;
    if (w < W(e.from, e.to) || (w == W(e.from, e.to) && d > D(e.from, e.to))) {
      W(e.from, e.to) = w;
      D(e.from, e.to) = d;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (W(i, k) >= kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (W(k, j) >= kInf) continue;
        const long long w = W(i, k) + W(k, j);
        // Paths i~>k and k~>j both count t(k); subtract one copy.
        const long long d = D(i, k) + D(k, j) - g.node(k).time;
        if (w < W(i, j) || (w == W(i, j) && d > D(i, j))) {
          W(i, j) = w;
          D(i, j) = d;
        }
      }
    }
  }

  // Candidate periods: the distinct finite D values, plus the heaviest
  // single node (no period can be smaller).
  long long max_node_time = 0;
  for (NodeId v = 0; v < n; ++v)
    max_node_time = std::max(max_node_time, static_cast<long long>(g.node(v).time));
  std::set<long long> candidate_set{max_node_time};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (W(i, j) < kInf && D(i, j) >= max_node_time)
        candidate_set.insert(D(i, j));
  std::vector<long long> candidates(candidate_set.begin(),
                                    candidate_set.end());

  // Feasibility of period c: a legal retiming exists with
  //   r(v) - r(u) <= d(e)            for every edge u->v (legality), and
  //   r(v) - r(u) <= W(u,v) - 1      whenever D(u,v) > c
  // (the sign-flipped Leiserson–Saxe conditions; see header).
  auto build = [&](long long c) {
    DifferenceConstraints sys;
    sys.n = n;
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
      const Edge& e = g.edge(eid);
      sys.cs.push_back({e.from, e.to, e.delay});
    }
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = 0; v < n; ++v)
        if (u != v && W(u, v) < kInf && D(u, v) > c)
          sys.cs.push_back({u, v, W(u, v) - 1});
    return sys;
  };

  std::vector<long long> x;
  std::size_t lo = 0, hi = candidates.size() - 1;
  // The largest candidate is always feasible (it is at least the identity
  // retiming's period bound: with no D > c constraints, r = 0 works).
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (build(candidates[mid]).solve(x))
      hi = mid;
    else
      lo = mid + 1;
  }

  const long long best = candidates[lo];
  const bool ok = build(best).solve(x);
  CCS_ASSERT(ok);

  Retiming r(n);
  for (NodeId v = 0; v < n; ++v) r.set(v, x[v]);
  CCS_ENSURES(r.is_legal_for(g));

  Csdfg retimed = g;
  r.apply(retimed);
  const int achieved = clock_period(retimed);
  CCS_ENSURES(achieved <= best);
  return {r, achieved};
}

}  // namespace ccs
