#include "core/resources.hpp"

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

std::vector<SweepPoint> processor_sweep(const Csdfg& g,
                                        const TopologyFamily& family,
                                        std::size_t min_pes,
                                        std::size_t max_pes,
                                        const CycloCompactionOptions& options) {
  CCS_EXPECTS(min_pes >= 1 && min_pes <= max_pes);
  std::vector<SweepPoint> points;
  for (std::size_t p = min_pes; p <= max_pes; ++p) {
    std::optional<Topology> topo;
    try {
      topo.emplace(family(p));
    } catch (const ArchitectureError&) {
      continue;  // family cannot realize this count (e.g. 2^k only)
    }
    const StoreAndForwardModel comm(*topo);
    const auto res = cyclo_compact(g, *topo, comm, options);
    points.push_back({p, res.startup_length(), res.best_length()});
  }
  return points;
}

std::optional<std::size_t> min_processors_for_length(
    const Csdfg& g, const TopologyFamily& family, int target_length,
    std::size_t max_pes, const CycloCompactionOptions& options) {
  CCS_EXPECTS(target_length >= 1);
  for (const SweepPoint& point :
       processor_sweep(g, family, 1, max_pes, options)) {
    if (point.best_length <= target_length) return point.num_pes;
  }
  return std::nullopt;
}

}  // namespace ccs
