// ccsched — buffer (register) cost of a static cyclic schedule.
//
// Retiming buys schedule length with storage: every delay a rotation pushes
// onto an edge is a value that must be buffered across iterations.  This
// module computes, from first principles, how many values are live on each
// edge of a scheduled CSDFG:
//
// The token produced by u's iteration i exists from absolute step
// i*L + CE(u) until v's iteration i+k consumes it at (i+k)*L + CB(v) —
// wherever it sits meanwhile (producer buffer, network, consumer buffer):
//   life(e) = k*L + CB(v) - CE(u)       (>= M+1 >= 1 on a valid schedule).
// Production events repeat every L steps, so the peak number of live
// tokens on the edge is ceil(life(e) / L).  Since CB(v) - CE(u) > -L on
// any table, peak >= max(1, k): every loop-carried delay really is a
// stored value (buffer_lower_bound below).
//
// The ablation bench (bench_buffers) traces schedule length against total
// buffer cost across cyclo-compaction passes: the paper optimizes length
// only; this quantifies what that costs in storage.
#pragma once

#include <vector>

#include "arch/comm_model.hpp"
#include "core/csdfg.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Per-edge and aggregate buffer requirements of a valid schedule.
struct BufferReport {
  /// buffers[e] = peak live tokens on edge e (>= 1).
  std::vector<long long> buffers;
  /// Sum over edges.
  long long total = 0;
  /// max over edges (the deepest single FIFO).
  long long max_edge = 0;
};

/// Computes the report for a complete schedule of `g` under `comm`.  The
/// schedule must be valid (every lifetime positive); a ContractViolation
/// signals a broken table.
[[nodiscard]] BufferReport buffer_requirements(const Csdfg& g,
                                               const ScheduleTable& table,
                                               const CommModel& comm);

/// Lower bound independent of the schedule: sum over edges of
/// max(1, d(e)) — every loop-carried delay is a stored value, and every
/// edge holds its in-flight value at least momentarily.  Useful as the
/// baseline in the ablation.
[[nodiscard]] long long buffer_lower_bound(const Csdfg& g);

}  // namespace ccs
