#include "core/cyclo_compaction.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace ccs {

CycloCompactionResult cyclo_compact(const Csdfg& g, const Topology& topo,
                                    const CommModel& comm,
                                    const CycloCompactionOptions& options,
                                    const ObsContext& obs) {
  g.require_legal();
  const ScopedTimer timer(obs.metrics, "time.compaction");
  const ObsSpan run_span = obs.span("compact");

  ScheduleTable startup =
      start_up_schedule(g, topo, comm, options.startup, obs);

  const int passes = options.passes > 0
                         ? options.passes
                         : 3 * static_cast<int>(std::max<std::size_t>(
                                   1, g.node_count()));

  // The engine owns the working graph, retiming, and placements; each pass
  // is rotate / remap / commit, and a failed pass rolls back wholesale.
  RemapEngine engine(g, comm, options.remap_backend);
  engine.bind(startup);

  CycloCompactionResult result{g,  Retiming(g.node_count()),
                               startup, startup,
                               {}, 0,
                               {}, {},
                               std::string(remap_backend_name(engine.backend()))};

  // Budget bookkeeping: all three stop conditions are evaluated at pass
  // boundaries so a budgeted run is a deterministic prefix of the
  // unbudgeted one (given a deterministic clock).
  const RunBudget& budget = options.budget;
  const SteadyBudgetClock fallback_clock;
  const BudgetClock* clock =
      budget.clock != nullptr ? budget.clock : &fallback_clock;
  const long long start_ms =
      budget.deadline_ms > 0 ? clock->now_ms() : 0;
  int stale_passes = 0;  // Consecutive passes without a new best.

  const auto budget_stop = [&](int pass) -> const char* {
    if (budget.max_passes > 0 && pass > budget.max_passes)
      return "max-passes";
    if (budget.deadline_ms > 0 &&
        clock->now_ms() - start_ms >= budget.deadline_ms)
      return "deadline";
    if (budget.patience > 0 && stale_passes >= budget.patience)
      return "patience";
    if (budget.stop != nullptr &&
        budget.stop->stop_requested(result.best.length()))
      return "preempted";
    return nullptr;
  };

  for (int pass = 1; pass <= passes; ++pass) {
    if (const char* reason = budget_stop(pass)) {
      result.stop_reason = reason;
      obs.count("compaction.budget_stops");
      obs.emit(BudgetEvent{reason, pass, result.best.length()});
      break;
    }
    const int previous_length = engine.length();
    if (previous_length <= 0) break;
    const ObsSpan pass_span = obs.span("compact.pass");
    obs.count("compaction.passes");
    obs.emit(PassStartEvent{pass, previous_length});

    const std::vector<NodeId> rotated = engine.rotate();
    if (obs.metrics != nullptr)
      obs.metrics->add("rotation.nodes",
                       static_cast<long long>(rotated.size()));
    if (obs.tracing()) obs.emit(RotationEvent{pass, rotated});

    const std::optional<int> remapped =
        engine.remap(rotated, previous_length, options.policy,
                     options.selection, obs);
    if (!remapped) {
      // Without relaxation a pass that cannot keep the length is abandoned;
      // the configuration would repeat forever, so the loop ends (the paper:
      // "the remapping phase does not occur in this case").
      engine.rollback();
      result.length_trace.push_back(previous_length);
      obs.count("compaction.rollbacks");
      obs.emit(RollbackEvent{pass, previous_length,
                             "no-placement-within-previous-length"});
      break;
    }

    engine.commit();
    result.length_trace.push_back(*remapped);

    const bool improved = *remapped < result.best.length();
    if (improved) {
      result.best = engine.table();
      result.retimed_graph = engine.graph();
      result.retiming = engine.retiming();
      result.best_pass = pass;
      stale_passes = 0;
      obs.count("compaction.improved_passes");
    } else {
      ++stale_passes;
    }
    obs.emit(
        PassEndEvent{pass, *remapped, improved, result.best.length()});
  }

  result.remap_stats = engine.stats();
  CCS_ENSURES(result.best.length() <= startup.length());
  return result;
}

}  // namespace ccs
