#include "core/rotation.hpp"

#include "util/contracts.hpp"

namespace ccs {

std::vector<NodeId> rotate_first_row(Csdfg& g, ScheduleTable& table,
                                     Retiming* accumulated) {
  CCS_EXPECTS(table.complete());
  CCS_EXPECTS(table.length() >= 1);
  CCS_EXPECTS(table.node_count() == g.node_count());

  const std::vector<NodeId> rotated = table.nodes_starting_at(1);

  Retiming r(g.node_count());
  for (NodeId v : rotated) r.add(v, 1);
  r.apply(g);  // throws (graph unchanged) if illegal — table also untouched

  for (NodeId v : rotated) table.remove(v);
  table.shift_up();

  if (accumulated) *accumulated = *accumulated + r;
  return rotated;
}

}  // namespace ccs
