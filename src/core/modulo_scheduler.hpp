// ccsched — communication-aware iterative modulo scheduling.
//
// The paper's Section 1 cites software pipelining [1, 8] as the classic
// alternative to rotation-style loop pipelining.  This module implements
// the canonical form of that alternative — iterative modulo scheduling
// (Rau-style) — adapted to the CSDFG model with store-and-forward
// communication, so the two schools can be compared on equal terms
// (bench_baselines):
//
//  * candidate initiation intervals II = max(ceil(bound), resource floor)
//    upward;
//  * tasks get ABSOLUTE start times s(v) in topological order:
//      s(v) >= s(u) + t_eff(u) + M(PE(u), PE(v), c) - k*II   per edge,
//    processors are reserved modulo II;
//  * a flat (absolute-time) schedule folds into the library's cyclic
//    table: CB(v) = ((s(v)-1) mod II) + 1 with the fold count becoming a
//    retiming advance, so the result is validated by the same
//    validate_schedule as every other schedule.
//
// The algorithm is a one-pass height-priority heuristic (no backtracking
// ejection); when an II cannot be completed the next II is tried, so it
// always terminates with a valid schedule.
#pragma once

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Result of modulo scheduling.
struct ModuloScheduleResult {
  /// The achieved initiation interval (== table.length()).
  int initiation_interval = 0;
  /// Retiming that folds the flat schedule into one table period
  /// (paper sign convention), applied to produce `retimed_graph`.
  Retiming retiming;
  /// The graph the folded table validates against.
  Csdfg retimed_graph;
  /// The folded cyclic schedule table.
  ScheduleTable table;
  /// Flat (absolute) start times the scheduler chose, for inspection.
  std::vector<long long> flat_start;
};

/// Runs communication-aware iterative modulo scheduling of `g` on the
/// machine.  Deterministic; throws GraphError if `g` is illegal and
/// ScheduleError if no II up to the serial bound admits a schedule (which
/// cannot happen for legal inputs — the serial II always works).
[[nodiscard]] ModuloScheduleResult modulo_schedule(const Csdfg& g,
                                                   const Topology& topo,
                                                   const CommModel& comm);

}  // namespace ccs
