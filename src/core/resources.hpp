// ccsched — resource-dimensioning utilities.
//
// The paper notes its results apply to "high level synthesis of multi-chip
// systems", where the designer's question is inverted: not "how fast on
// this machine" but "how small a machine still meets the rate".  These
// helpers sweep a topology family over processor counts and answer both
// directions with cyclo-compaction as the evaluation engine.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/cyclo_compaction.hpp"

namespace ccs {

/// A topology family: maps a processor count to a concrete machine (e.g.
/// make_linear_array, or a lambda building make_mesh(p/2, 2)).  May throw
/// ArchitectureError for counts it cannot realize; those points are
/// skipped by the sweep.
using TopologyFamily = std::function<Topology(std::size_t)>;

/// One point of a processor sweep.
struct SweepPoint {
  std::size_t num_pes = 0;
  int startup_length = 0;
  int best_length = 0;
};

/// Compacts `g` on family(p) for every p in [min_pes, max_pes] (points the
/// family cannot build are skipped).  Deterministic.
[[nodiscard]] std::vector<SweepPoint> processor_sweep(
    const Csdfg& g, const TopologyFamily& family, std::size_t min_pes,
    std::size_t max_pes, const CycloCompactionOptions& options = {});

/// The smallest processor count in [1, max_pes] whose compacted schedule
/// meets `target_length`, or nullopt if none does.  Monotonicity is not
/// guaranteed for a heuristic, so the scan is exhaustive from small to
/// large and returns the first hit.
[[nodiscard]] std::optional<std::size_t> min_processors_for_length(
    const Csdfg& g, const TopologyFamily& family, int target_length,
    std::size_t max_pes, const CycloCompactionOptions& options = {});

}  // namespace ccs
