// ccsched — structural algorithms on CSDFGs.
//
// The start-up scheduler (Section 3) and the priority function PF (Def. 3.6)
// need the zero-delay-DAG view of a CSDFG: ignore every edge carrying a
// loop-carried delay, leaving the intra-iteration dependence structure.  This
// module provides topological ordering, ASAP/ALAP control steps, the critical
// path, and node mobility (Def. 3.4) over that view.
#pragma once

#include <vector>

#include "core/csdfg.hpp"

namespace ccs {

/// ASAP/ALAP timing of the zero-delay DAG (resource- and
/// communication-unconstrained).  Control steps are 1-based, matching the
/// paper's schedule tables.
struct DagTiming {
  /// Earliest start step of each node.
  std::vector<int> asap_cb;
  /// Latest start step of each node such that the critical path length is
  /// not exceeded.
  std::vector<int> alap_cb;
  /// Length of the critical path in control steps (the minimum possible
  /// schedule length with unlimited processors and free communication).
  int critical_path = 0;

  /// Mobility of node v (Def. 3.4 specialized to the start of scheduling):
  /// alap_cb[v] - asap_cb[v].  A node with zero mobility is on the critical
  /// path.
  [[nodiscard]] int mobility(NodeId v) const {
    return alap_cb[v] - asap_cb[v];
  }
};

/// Topological order of the zero-delay subgraph.  Deterministic: among ready
/// nodes the lowest id is emitted first.  Throws GraphError if the zero-delay
/// subgraph has a cycle (the CSDFG is illegal).
[[nodiscard]] std::vector<NodeId> zero_delay_topological_order(
    const Csdfg& g);

/// Computes ASAP/ALAP start steps and the critical path of the zero-delay
/// DAG using computation times only (communication-free, as in Def. 3.4 —
/// mobility measures schedule slack, not network slack).
[[nodiscard]] DagTiming compute_dag_timing(const Csdfg& g);

/// Nodes with no zero-delay incoming edges (the roots the list scheduler
/// seeds its ready list with).
[[nodiscard]] std::vector<NodeId> zero_delay_roots(const Csdfg& g);

/// True iff `v` is reachable from `u` using zero-delay edges only.
[[nodiscard]] bool zero_delay_reachable(const Csdfg& g, NodeId u, NodeId v);

/// True iff the undirected view of `g` (ALL edges, delayed or not) is
/// connected.  Empty and single-node graphs count as connected.  The cut
/// bound of the analysis subsystem needs this: on a connected graph any
/// schedule that uses both sides of a processor cut must split at least
/// one dependence edge across it.
[[nodiscard]] bool weakly_connected(const Csdfg& g);

}  // namespace ccs
