#include "core/remap_engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/validator.hpp"
#include "util/contracts.hpp"

namespace ccs {

RemapBackend default_remap_backend() noexcept {
#ifdef CCSCHED_REMAP_BACKEND_NAIVE
  return RemapBackend::kNaive;
#else
  return RemapBackend::kIncremental;
#endif
}

std::string_view remap_backend_name(RemapBackend backend) noexcept {
  switch (backend) {
    case RemapBackend::kIncremental:
      return "incremental";
    case RemapBackend::kNaive:
      return "naive";
  }
  return "incremental";
}

std::optional<RemapBackend> parse_remap_backend(
    std::string_view name) noexcept {
  if (name == "incremental") return RemapBackend::kIncremental;
  if (name == "naive") return RemapBackend::kNaive;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// The preserved v1 procedures (the naive referee).
// ---------------------------------------------------------------------------

int RemapEngine::anticipation(const Csdfg& g, const ScheduleTable& table,
                              const CommModel& comm, NodeId v, PeId pe,
                              int target_length) {
  CCS_EXPECTS(v < g.node_count());
  CCS_EXPECTS(pe < table.num_pes());
  long long earliest = 1;
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.from == v) continue;  // self-loop: constrains PSL, not the slot
    if (!table.is_placed(e.from)) continue;
    const long long m = comm.cost(table.pe(e.from), pe, e.volume);
    const long long bound = table.ce(e.from) + m + 1 -
                            static_cast<long long>(e.delay) * target_length;
    earliest = std::max(earliest, bound);
  }
  CCS_ENSURES(earliest <= std::numeric_limits<int>::max());
  return static_cast<int>(earliest);
}

int RemapEngine::latest_start(const Csdfg& g, const ScheduleTable& table,
                              const CommModel& comm, NodeId v, PeId pe,
                              int target_length) {
  CCS_EXPECTS(v < g.node_count());
  CCS_EXPECTS(pe < table.num_pes());
  long long latest = target_length - table.time_on(v, pe) + 1;
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.to == v) continue;  // self-loop
    if (!table.is_placed(e.to)) continue;
    const long long m = comm.cost(pe, table.pe(e.to), e.volume);
    // CB(w) + k*Lt >= CB(v) + t(v) - 1 + m + 1   =>   CB(v) <= bound.
    const long long bound = table.cb(e.to) +
                            static_cast<long long>(e.delay) * target_length -
                            m - table.time_on(v, pe);
    latest = std::min(latest, bound);
  }
  latest = std::min<long long>(latest, std::numeric_limits<int>::max());
  latest = std::max<long long>(latest, std::numeric_limits<int>::min() + 1);
  return static_cast<int>(latest);
}

namespace {

/// Total communication volume-cost between v (hypothetically on `pe`) and
/// its placed neighbors — the deterministic tie-break that prefers slots
/// keeping chatty neighbors close.
long long neighbor_comm(const Csdfg& g, const ScheduleTable& table,
                        const CommModel& comm, NodeId v, PeId pe) {
  long long total = 0;
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.from != v && table.is_placed(e.from))
      total += comm.cost(table.pe(e.from), pe, e.volume);
  }
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.to != v && table.is_placed(e.to))
      total += comm.cost(pe, table.pe(e.to), e.volume);
  }
  return total;
}

/// The PSL bound contributed by v's own delay-carrying edges if v sits at
/// (pe, cb): the smallest cyclic length under which every loop-carried
/// communication between v and its placed neighbors (and v's self-loops)
/// fits — ceil((CE + M + 1 - CB) / k) per edge, Lemma 4.3 restricted to v.
/// Trace-only (the remap_decision "psl" field); never on the untraced path.
int node_psl_bound(const Csdfg& g, const ScheduleTable& table,
                   const CommModel& comm, NodeId v, PeId pe, int cb) {
  const int ce_v = cb + table.time_on(v, pe) - 1;
  long long bound = 0;
  const auto fold = [&bound](long long numerator, long long delay) {
    if (numerator <= 0) return;
    bound = std::max(bound, (numerator + delay - 1) / delay);
  };
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0) continue;
    if (e.from == v) {
      fold(ce_v + 1 - cb, e.delay);  // self-loop: M(pe, pe) = 0
    } else if (table.is_placed(e.from)) {
      fold(table.ce(e.from) + comm.cost(table.pe(e.from), pe, e.volume) + 1 -
               cb,
           e.delay);
    }
  }
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0 || e.to == v) continue;
    if (table.is_placed(e.to))
      fold(ce_v + comm.cost(pe, table.pe(e.to), e.volume) + 1 -
               table.cb(e.to),
           e.delay);
  }
  return static_cast<int>(
      std::min<long long>(bound, std::numeric_limits<int>::max()));
}

/// The worst communication cost any single edge of `g` can incur on a
/// machine with `num_pes` processors under `comm` — used to bound the
/// with-relaxation target search.
long long worst_edge_cost(const Csdfg& g, const CommModel& comm,
                          std::size_t num_pes) {
  long long worst = 0;
  std::size_t max_volume = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    max_volume = std::max(max_volume, g.edge(e).volume);
  for (PeId a = 0; a < num_pes; ++a)
    for (PeId b = 0; b < num_pes; ++b)
      worst = std::max(worst, static_cast<long long>(comm.cost(a, b, max_volume)));
  return worst;
}

/// Replica of ScheduleTable::first_free that counts every occupancy probe —
/// one per grid cell inspected — into `probes`.  Placement-identical to the
/// uncounted original; this is the v2 definition of `remap.slots_scanned`
/// on the naive backend (the incremental backend counts bitset words for
/// the same query, so the two counters are directly comparable speedups).
int counted_first_free(const ScheduleTable& table, PeId pe, int earliest,
                       int duration, long long& probes) {
  const int span = table.pipelined_pes() ? 1 : duration * table.pe_speed(pe);
  int cs = std::max(1, earliest);
  for (;;) {
    bool free = true;
    for (int s = cs; s < cs + span; ++s) {
      ++probes;
      if (table.occupant(pe, s).has_value()) {
        free = false;
        break;
      }
    }
    if (free) return cs;
    ++cs;
  }
}

}  // namespace

RemapResult RemapEngine::try_remap(const Csdfg& g, ScheduleTable& table,
                                   const CommModel& comm,
                                   const std::vector<NodeId>& rotated,
                                   int target_length, RemapSelection selection,
                                   const ObsContext& obs, RemapStats* tally) {
  // Place long tasks first; ties broken by node id for determinism.
  std::vector<NodeId> order = rotated;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.node(a).time != g.node(b).time)
      return g.node(a).time > g.node(b).time;
    return a < b;
  });

  // Hot-loop tallies are accumulated locally and flushed once per call so
  // the per-slot cost with metrics enabled stays a register increment.  The
  // per-evaluation AN histogram follows the same rule: a local fixed-bucket
  // accumulator, folded into the profiler once per call, so profiling never
  // takes a lock inside the slot scan.
  long long an_evaluations = 0;
  long long slots_scanned = 0;
  const bool profiled = obs.profiling();
  const ObsSpan an_span = obs.span("remap.an");
  SpanHistogram an_hist;
  const auto flush_profile = [&] {
    if (profiled) obs.profiler->fold("an.eval", an_hist);
  };
  const auto flush_tally = [&] {
    if (tally != nullptr) {
      tally->an_evaluations += an_evaluations;
      tally->slots_scanned += slots_scanned;
    }
  };

  for (NodeId v : order) {
    CCS_ASSERT(!table.is_placed(v));
    bool found = false;
    int best_cb = 0;
    long long best_comm = 0;
    PeId best_pe = 0;
    int best_lo = 0;
    int best_hi = 0;

    for (PeId pe = 0; pe < table.num_pes(); ++pe) {
      int lo;
      if (profiled) {
        const std::uint64_t t0 = span_now_ns();
        lo = anticipation(g, table, comm, v, pe, target_length);
        an_hist.add(span_now_ns() - t0);
      } else {
        lo = anticipation(g, table, comm, v, pe, target_length);
      }
      ++an_evaluations;
      const int hi = selection == RemapSelection::kBidirectional
                         ? latest_start(g, table, comm, v, pe, target_length)
                         : target_length - table.time_on(v, pe) + 1;
      if (lo > hi) continue;
      const int cb =
          counted_first_free(table, pe, lo, g.node(v).time, slots_scanned);
      if (cb > hi) continue;
      const long long cc = neighbor_comm(g, table, comm, v, pe);
      if (!found || cb < best_cb || (cb == best_cb && cc < best_comm)) {
        found = true;
        best_cb = cb;
        best_comm = cc;
        best_pe = pe;
        best_lo = lo;
        best_hi = hi;
      }
    }
    if (!found) {
      flush_profile();
      flush_tally();
      if (obs.metrics != nullptr) {
        obs.metrics->add("an.evaluations", an_evaluations);
        obs.metrics->add("remap.slots_scanned", slots_scanned);
        obs.count("remap.placement_failures");
      }
      if (obs.tracing()) {
        RemapDecisionEvent ev;
        ev.node = v;
        ev.accepted = false;
        ev.slots_scanned = static_cast<int>(table.num_pes());
        ev.reason = "no-feasible-slot";
        obs.emit(ev);
      }
      return {false, table.length()};
    }
    if (obs.tracing()) {
      RemapDecisionEvent ev;
      ev.node = v;
      ev.accepted = true;
      ev.pe = best_pe;
      ev.cb = best_cb;
      ev.an = best_lo;
      ev.latest = best_hi;
      ev.psl = node_psl_bound(g, table, comm, v, best_pe, best_cb);
      ev.slots_scanned = static_cast<int>(table.num_pes());
      ev.reason = "placed";
      obs.emit(ev);
    }
    table.place(v, best_pe, best_cb);
    obs.count("remap.placements");
  }
  flush_profile();
  flush_tally();
  if (obs.metrics != nullptr) {
    obs.metrics->add("an.evaluations", an_evaluations);
    obs.metrics->add("remap.slots_scanned", slots_scanned);
  }

  // The remap may have vacated the leading rows; pull everything up (a
  // uniform shift preserves every constraint).
  table.set_length(std::max(table.length(), table.occupied_length()));
  table.compact_leading();

  // PSL padding: the smallest cyclic length satisfying every loop-carried
  // communication ("the algorithm will assign empty control steps to
  // compensate the communication requirements").
  const int needed = min_feasible_length(g, table, comm);
  obs.count("psl.evaluations");
  if (needed < 0) {
    // An intra-iteration constraint is broken — only reachable with
    // kAnticipationOnly, whose successor dependences are unchecked.
    obs.count("psl.rejections");
    obs.emit(PslPadEvent{needed, table.length()});
    return {false, table.length()};
  }
  table.set_length(std::max(table.occupied_length(), needed));
  obs.emit(PslPadEvent{needed, table.length()});
  return {true, table.length()};
}

std::optional<ScheduleTable> RemapEngine::remap_rotated(
    const Csdfg& g, const ScheduleTable& table, const CommModel& comm,
    const std::vector<NodeId>& rotated, int previous_length,
    RemapPolicy policy, RemapSelection selection, const ObsContext& obs,
    RemapStats* tally) {
  CCS_EXPECTS(previous_length >= 1);
  const ScopedTimer timer(obs.metrics, "time.remap");
  const ObsSpan remap_span = obs.span("remap");

  const int first_target = std::max(1, previous_length - 1);
  int last_target = previous_length;
  if (policy == RemapPolicy::kWithRelaxation) {
    // A generous sufficient target: the whole shifted table, every rotated
    // task serialized after it, and one worst-case transfer of slack.  If
    // even this fails, the input table was not a valid schedule.
    long long cap = previous_length + 1 +
                    worst_edge_cost(g, comm, table.num_pes());
    int max_speed = 1;
    for (PeId p = 0; p < table.num_pes(); ++p)
      max_speed = std::max(max_speed, table.pe_speed(p));
    for (NodeId v : rotated) cap += g.node(v).time * max_speed;
    last_target =
        static_cast<int>(std::min<long long>(cap, std::numeric_limits<int>::max() / 2));
  }

  for (int target = first_target; target <= last_target; ++target) {
    ScheduleTable attempt = table;
    if (attempt.length() > target) continue;
    const ObsSpan target_span = obs.span("remap.target");
    obs.count("remap.target_attempts");
    obs.emit(RemapTargetEvent{target, target > previous_length});
    RemapResult r = try_remap(g, attempt, comm, rotated, target, selection,
                              obs, tally);
    if (!r.success) continue;
    if (policy == RemapPolicy::kWithoutRelaxation &&
        r.length > previous_length) {
      // The placement succeeded but the PSL padding overshot the budget.
      obs.count("psl.rejections");
      continue;
    }
    return attempt;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Engine lifecycle.
// ---------------------------------------------------------------------------

RemapEngine::RemapEngine(const Csdfg& g, const CommModel& comm,
                         RemapBackend backend)
    : comm_(&comm),
      backend_(backend),
      base_graph_(g),
      num_nodes_(g.node_count()),
      graph_(g),
      retiming_(g.node_count()) {
  times_.resize(num_nodes_);
  for (NodeId v = 0; v < num_nodes_; ++v) times_[v] = g.node(v).time;
  // Volumes are immutable, so the edge -> volume-index map is build-once;
  // the flat cost table itself waits for bind() (it needs the PE count).
  vols_.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) vols_.push_back(g.edge(e).volume);
  std::sort(vols_.begin(), vols_.end());
  vols_.erase(std::unique(vols_.begin(), vols_.end()), vols_.end());
  evol_idx_.resize(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto it =
        std::lower_bound(vols_.begin(), vols_.end(), g.edge(e).volume);
    evol_idx_[e] = static_cast<std::size_t>(it - vols_.begin());
  }
  placed_.assign(num_nodes_, 0);
  wpe_.assign(num_nodes_, 0);
  wcb_.assign(num_nodes_, 0);
  an_static_.resize(num_nodes_);
  lat_static_.resize(num_nodes_);
  ncomm_static_.resize(num_nodes_);
  dyn_an_.resize(num_nodes_);
  dyn_lat_.resize(num_nodes_);
  dyn_comm_.resize(num_nodes_);
}

void RemapEngine::bind(const ScheduleTable& table) {
  CCS_EXPECTS(table.node_count() == num_nodes_);
  CCS_EXPECTS(table.complete());
  num_pes_ = table.num_pes();
  pipelined_ = table.pipelined_pes();
  speeds_.resize(num_pes_);
  for (PeId p = 0; p < num_pes_; ++p) speeds_[p] = table.pe_speed(p);
  // Flat cost table: one entry per (volume, from, to).  CommModel::cost is
  // not volume-linear in general (cut-through adds a per-hop term), so the
  // table is keyed by the distinct volumes actually present.
  cost_.assign(vols_.size() * num_pes_ * num_pes_, 0);
  for (std::size_t vi = 0; vi < vols_.size(); ++vi)
    for (PeId a = 0; a < num_pes_; ++a)
      for (PeId b = 0; b < num_pes_; ++b)
        cost_[(vi * num_pes_ + a) * num_pes_ + b] = comm_->cost(a, b, vols_[vi]);
  // Reset the working graph to the construction delays.
  for (EdgeId e = 0; e < graph_.edge_count(); ++e)
    if (graph_.edge(e).delay != base_graph_.edge(e).delay)
      graph_.set_delay(e, base_graph_.edge(e).delay);
  retiming_ = Retiming(num_nodes_);
  import_table(table);
  bound_ = true;
  commit();
}

void RemapEngine::import_table(const ScheduleTable& table) {
  origin_ = 0;
  length_ = table.length();
  bits_.assign(num_pes_, {});
  for (NodeId v = 0; v < num_nodes_; ++v) {
    placed_[v] = table.is_placed(v) ? 1 : 0;
    if (!placed_[v]) continue;
    const Placement p = table.placement(v);
    wpe_[v] = p.pe;
    wcb_[v] = p.cb;
    set_bits(p.pe, p.cb, span_of(v, p.pe), true);
  }
}

std::vector<NodeId> RemapEngine::rotate() {
  CCS_EXPECTS(bound_);
  CCS_EXPECTS(complete());
  CCS_EXPECTS(length_ >= 1);
  std::vector<NodeId> rotated;
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (placed_[v] != 0 && lcb(v) == 1) rotated.push_back(v);
  Retiming r(num_nodes_);
  for (NodeId v : rotated) r.add(v, 1);
  r.apply(graph_);  // throws GraphError atomically; engine untouched
  for (NodeId v : rotated) unplace_working(v);
  origin_ += 1;
  length_ -= 1;
  retiming_ = retiming_ + r;
  return rotated;
}

std::optional<int> RemapEngine::remap(const std::vector<NodeId>& rotated,
                                      int previous_length, RemapPolicy policy,
                                      RemapSelection selection,
                                      const ObsContext& obs) {
  CCS_EXPECTS(bound_);
  CCS_EXPECTS(previous_length >= 1);
  if (backend_ == RemapBackend::kNaive)
    return remap_naive(rotated, previous_length, policy, selection, obs);
  return remap_incremental(rotated, previous_length, policy, selection, obs);
}

void RemapEngine::commit() {
  CCS_EXPECTS(bound_);
  committed_.placed = placed_;
  committed_.pe = wpe_;
  committed_.cb_phys = wcb_;
  committed_.bits = bits_;
  committed_.delays.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e)
    committed_.delays[e] = graph_.edge(e).delay;
  committed_.retiming = retiming_;
  committed_.origin = origin_;
  committed_.length = length_;
}

void RemapEngine::rollback() {
  CCS_EXPECTS(bound_);
  placed_ = committed_.placed;
  wpe_ = committed_.pe;
  wcb_ = committed_.cb_phys;
  bits_ = committed_.bits;
  for (EdgeId e = 0; e < graph_.edge_count(); ++e)
    if (graph_.edge(e).delay != committed_.delays[e])
      graph_.set_delay(e, committed_.delays[e]);
  retiming_ = committed_.retiming;
  origin_ = committed_.origin;
  length_ = committed_.length;
}

ScheduleTable RemapEngine::table() const {
  CCS_EXPECTS(bound_);
  CCS_EXPECTS(complete());
  ScheduleTable t(graph_, speeds_, pipelined_);
  for (NodeId v = 0; v < num_nodes_; ++v) t.place(v, wpe_[v], lcb(v));
  t.set_length(length_);
  return t;
}

// ---------------------------------------------------------------------------
// Geometry.
// ---------------------------------------------------------------------------

int RemapEngine::span_of(NodeId v, PeId pe) const noexcept {
  return pipelined_ ? 1 : times_[v] * speeds_[pe];
}

int RemapEngine::time_on(NodeId v, PeId pe) const noexcept {
  return times_[v] * speeds_[pe];
}

int RemapEngine::lcb(NodeId v) const noexcept { return wcb_[v] - origin_; }

int RemapEngine::lce(NodeId v) const noexcept {
  return lcb(v) + time_on(v, wpe_[v]) - 1;
}

bool RemapEngine::complete() const noexcept {
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (placed_[v] == 0) return false;
  return true;
}

int RemapEngine::occupied_logical() const noexcept {
  int max_ce = 0;
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (placed_[v] != 0) max_ce = std::max(max_ce, lce(v));
  return max_ce;
}

CommCost RemapEngine::cost_at(std::size_t vol_idx, PeId from,
                              PeId to) const noexcept {
  return cost_[(vol_idx * num_pes_ + from) * num_pes_ + to];
}

void RemapEngine::set_bits(PeId pe, int cb_phys, int span, bool value) {
  CCS_ASSERT(cb_phys >= 1);
  auto& words = bits_[pe];
  const std::size_t first = static_cast<std::size_t>(cb_phys - 1);
  const std::size_t last = first + static_cast<std::size_t>(span) - 1;
  if (value && last / 64 >= words.size()) words.resize(last / 64 + 1, 0);
  for (std::size_t b = first; b <= last; ++b) {
    if (b / 64 >= words.size()) break;  // clearing past the tail: already 0
    const std::uint64_t mask = std::uint64_t{1} << (b % 64);
    if (value)
      words[b / 64] |= mask;
    else
      words[b / 64] &= ~mask;
  }
}

void RemapEngine::place_working(NodeId v, PeId pe, int cb_logical) {
  CCS_ASSERT(placed_[v] == 0);
  CCS_ASSERT(cb_logical >= 1);
  const int pcb = cb_logical + origin_;
  placed_[v] = 1;
  wpe_[v] = pe;
  wcb_[v] = pcb;
  set_bits(pe, pcb, span_of(v, pe), true);
  // Mirror ScheduleTable::place: length grows by the *execution* span even
  // on pipelined PEs (only the issue step is occupied, but CE counts).
  length_ = std::max(length_, cb_logical + time_on(v, pe) - 1);
}

void RemapEngine::unplace_working(NodeId v) {
  CCS_ASSERT(placed_[v] != 0);
  set_bits(wpe_[v], wcb_[v], span_of(v, wpe_[v]), false);
  placed_[v] = 0;
}

int RemapEngine::bitset_first_free(PeId pe, int earliest, int span,
                                   long long& probes) const {
  const auto& words = bits_[pe];
  const long long nbits = static_cast<long long>(words.size()) * 64;
  const long long start =
      static_cast<long long>(std::max(1, earliest)) + origin_ - 1;
  long long run_begin = start;  // candidate slot, as a bit index
  long long pos = start;        // next bit to examine
  for (;;) {
    if (pos - run_begin >= span || pos >= nbits) {
      // Either the free run is long enough, or everything past the stored
      // words is free — run_begin works either way.
      return static_cast<int>(run_begin + 1 - origin_);
    }
    ++probes;
    const std::uint64_t word = words[static_cast<std::size_t>(pos >> 6)];
    const int off = static_cast<int>(pos & 63);
    std::uint64_t window = word >> off;  // bit 0 of window == bit `pos`
    long long base = pos;
    while (window != 0) {
      const int z = std::countr_zero(window);
      const long long occ = base + z;  // next occupied bit
      if (occ - run_begin >= span)
        return static_cast<int>(run_begin + 1 - origin_);
      run_begin = occ + 1;
      base = occ + 1;
      const int shift = z + 1;
      window = shift >= 64 ? 0 : window >> shift;
    }
    pos = ((pos >> 6) + 1) << 6;  // continue at the next word boundary
  }
}

// ---------------------------------------------------------------------------
// Incremental caches.
// ---------------------------------------------------------------------------

void RemapEngine::build_static_caches(const std::vector<NodeId>& rotated,
                                      RemapSelection selection) {
  constexpr long long kNegInf = std::numeric_limits<long long>::min() / 4;
  constexpr long long kPosInf = std::numeric_limits<long long>::max() / 4;
  const auto group = [this](std::vector<KGroup>& groups, long long k,
                            long long init) -> KGroup& {
    for (KGroup& gr : groups)
      if (gr.k == k) return gr;
    groups.push_back(KGroup{k, std::vector<long long>(num_pes_, init)});
    return groups.back();
  };
  for (NodeId v : rotated) {
    an_static_[v].clear();
    lat_static_[v].clear();
    ncomm_static_[v].assign(num_pes_, 0);
    dyn_an_[v].clear();
    dyn_lat_[v].clear();
    dyn_comm_[v].clear();
    for (EdgeId eid : graph_.in_edges(v)) {
      const Edge& e = graph_.edge(eid);
      if (e.from == v) continue;          // self-loop
      if (placed_[e.from] == 0) continue; // rotated peer: handled as a delta
      const std::size_t vol = evol_idx_[eid];
      const long long head = lce(e.from) + 1;
      KGroup& gr = group(an_static_[v], e.delay, kNegInf);
      for (PeId p = 0; p < num_pes_; ++p) {
        const CommCost m = cost_at(vol, wpe_[e.from], p);
        gr.per_pe[p] = std::max(gr.per_pe[p], head + m);
        ncomm_static_[v][p] += m;
      }
    }
    for (EdgeId eid : graph_.out_edges(v)) {
      const Edge& e = graph_.edge(eid);
      if (e.to == v) continue;
      if (placed_[e.to] == 0) continue;
      const std::size_t vol = evol_idx_[eid];
      KGroup* gr = selection == RemapSelection::kBidirectional
                       ? &group(lat_static_[v], e.delay, kPosInf)
                       : nullptr;
      for (PeId p = 0; p < num_pes_; ++p) {
        const CommCost m = cost_at(vol, p, wpe_[e.to]);
        if (gr != nullptr)
          gr->per_pe[p] = std::min(gr->per_pe[p], lcb(e.to) - m);
        ncomm_static_[v][p] += m;
      }
    }
  }
}

long long RemapEngine::eval_an(NodeId v, PeId pe,
                               long long target) const noexcept {
  long long earliest = 1;
  for (const KGroup& gr : an_static_[v])
    earliest = std::max(earliest, gr.per_pe[pe] - gr.k * target);
  for (const DynAn& d : dyn_an_[v])
    earliest =
        std::max(earliest, d.base + cost_at(d.vol, d.pe, pe) - d.k * target);
  return earliest;
}

long long RemapEngine::eval_latest(NodeId v, PeId pe,
                                   long long target) const noexcept {
  const long long ton = time_on(v, pe);
  long long latest = target - ton + 1;
  for (const KGroup& gr : lat_static_[v])
    latest = std::min(latest, gr.per_pe[pe] + gr.k * target - ton);
  for (const DynLat& d : dyn_lat_[v])
    latest =
        std::min(latest, d.cb + d.k * target - cost_at(d.vol, pe, d.pe) - ton);
  latest = std::min<long long>(latest, std::numeric_limits<int>::max());
  latest = std::max<long long>(latest, std::numeric_limits<int>::min() + 1);
  return latest;
}

long long RemapEngine::eval_neighbor_comm(NodeId v, PeId pe) const noexcept {
  long long total = ncomm_static_[v][pe];
  for (const DynComm& d : dyn_comm_[v])
    total += d.incoming ? cost_at(d.vol, d.pe, pe) : cost_at(d.vol, pe, d.pe);
  return total;
}

int RemapEngine::node_psl_bound_soa(NodeId v, PeId pe, int cb) const {
  const int ce_v = cb + time_on(v, pe) - 1;
  long long bound = 0;
  const auto fold = [&bound](long long numerator, long long delay) {
    if (numerator <= 0) return;
    bound = std::max(bound, (numerator + delay - 1) / delay);
  };
  for (EdgeId eid : graph_.in_edges(v)) {
    const Edge& e = graph_.edge(eid);
    if (e.delay == 0) continue;
    if (e.from == v) {
      fold(ce_v + 1 - cb, e.delay);  // self-loop: M(pe, pe) = 0
    } else if (placed_[e.from] != 0) {
      fold(lce(e.from) + cost_at(evol_idx_[eid], wpe_[e.from], pe) + 1 - cb,
           e.delay);
    }
  }
  for (EdgeId eid : graph_.out_edges(v)) {
    const Edge& e = graph_.edge(eid);
    if (e.delay == 0 || e.to == v) continue;
    if (placed_[e.to] != 0)
      fold(ce_v + cost_at(evol_idx_[eid], pe, wpe_[e.to]) + 1 - lcb(e.to),
           e.delay);
  }
  return static_cast<int>(
      std::min<long long>(bound, std::numeric_limits<int>::max()));
}

int RemapEngine::min_feasible_soa() const {
  // Mirror of min_feasible_length (Lemma 4.3) over the SoA state.
  long long needed = occupied_logical();
  for (EdgeId eid = 0; eid < graph_.edge_count(); ++eid) {
    const Edge& e = graph_.edge(eid);
    const long long ce_u = lce(e.from);
    const long long cb_v = lcb(e.to);
    const long long m = cost_at(evol_idx_[eid], wpe_[e.from], wpe_[e.to]);
    const long long slack = ce_u + m + 1 - cb_v;
    const long long k = e.delay;
    if (k == 0) {
      if (slack > 0) return -1;
    } else if (slack > 0) {
      needed = std::max(needed, (slack + k - 1) / k);
    }
  }
  CCS_ENSURES(needed <= std::numeric_limits<int>::max());
  return static_cast<int>(needed);
}

// ---------------------------------------------------------------------------
// The backends.
// ---------------------------------------------------------------------------

std::optional<int> RemapEngine::remap_naive(const std::vector<NodeId>& rotated,
                                            int previous_length,
                                            RemapPolicy policy,
                                            RemapSelection selection,
                                            const ObsContext& obs) {
  // Materialize the working state as a table and delegate to the preserved
  // v1 pass — the referee path the incremental backend is certified against.
  ScheduleTable shifted(graph_, speeds_, pipelined_);
  for (NodeId v = 0; v < num_nodes_; ++v)
    if (placed_[v] != 0) shifted.place(v, wpe_[v], lcb(v));
  shifted.set_length(std::max(shifted.length(), length_));
  std::optional<ScheduleTable> result =
      remap_rotated(graph_, shifted, *comm_, rotated, previous_length, policy,
                    selection, obs, &stats_);
  if (!result.has_value()) return std::nullopt;
  import_table(*result);
  return length_;
}

std::optional<int> RemapEngine::remap_incremental(
    const std::vector<NodeId>& rotated, int previous_length,
    RemapPolicy policy, RemapSelection selection, const ObsContext& obs) {
  const ScopedTimer timer(obs.metrics, "time.remap");
  const ObsSpan remap_span = obs.span("remap");

  // Place long tasks first; ties broken by node id for determinism.
  std::vector<NodeId> order = rotated;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (times_[a] != times_[b]) return times_[a] > times_[b];
    return a < b;
  });
  build_static_caches(rotated, selection);

  const int first_target = std::max(1, previous_length - 1);
  int last_target = previous_length;
  if (policy == RemapPolicy::kWithRelaxation) {
    // Same generous sufficient target as the v1 pass.
    long long cap =
        previous_length + 1 + worst_edge_cost(graph_, *comm_, num_pes_);
    int max_speed = 1;
    for (PeId p = 0; p < num_pes_; ++p)
      max_speed = std::max(max_speed, speeds_[p]);
    for (NodeId v : rotated) cap += graph_.node(v).time * max_speed;
    last_target = static_cast<int>(
        std::min<long long>(cap, std::numeric_limits<int>::max() / 2));
  }

  const int base_origin = origin_;
  const int base_length = length_;
  const auto unwind = [&] {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it)
      unplace_working(*it);
    undo_.clear();
    origin_ = base_origin;
    length_ = base_length;
  };

  for (int target = first_target; target <= last_target; ++target) {
    if (length_ > target) continue;
    const ObsSpan target_span = obs.span("remap.target");
    obs.count("remap.target_attempts");
    obs.emit(RemapTargetEvent{target, target > previous_length});

    undo_.clear();
    for (NodeId v : rotated) {
      dyn_an_[v].clear();
      dyn_lat_[v].clear();
      dyn_comm_[v].clear();
    }
    // Per-PE first-free memo, valid for the duration of one target attempt.
    // Within an attempt occupancy only ever fills, so first_free(pe, lo, s)
    // is monotone in lo and a cached answer (lo0 -> cb0 for span s) stays
    // exact for every query with the same span and lo in [lo0, cb0] until a
    // placement lands on that PE.  Memo hits answer with zero occupancy
    // probes, which is where most of the slots_scanned reduction comes from
    // on short schedules (one word already covers the whole table).
    struct FreeMemo {
      int lo = 0;
      int cb = -1;
      int span = -1;
    };
    std::vector<FreeMemo> free_memo(num_pes_);
    const auto memo_first_free = [&](PeId pe, int lo, int span,
                                     long long& probes) {
      FreeMemo& m = free_memo[pe];
      if (m.span == span && lo >= m.lo && lo <= m.cb) return m.cb;
      const int cb = bitset_first_free(pe, lo, span, probes);
      m = FreeMemo{lo, cb, span};
      return cb;
    };
    long long an_evaluations = 0;
    long long word_probes = 0;
    const bool profiled = obs.profiling();
    const ObsSpan an_span = obs.span("remap.an");
    SpanHistogram an_hist;
    const auto flush_tallies = [&] {
      if (profiled) obs.profiler->fold("an.eval", an_hist);
      stats_.an_evaluations += an_evaluations;
      stats_.an_cache_hits += an_evaluations;
      stats_.slots_scanned += word_probes;
      stats_.bitset_probes += word_probes;
      if (obs.metrics != nullptr) {
        obs.metrics->add("an.evaluations", an_evaluations);
        obs.metrics->add("remap.slots_scanned", word_probes);
        obs.metrics->add("remap.an_cache_hit", an_evaluations);
        obs.metrics->add("remap.bitset_probe", word_probes);
      }
    };

    bool placed_all = true;
    for (NodeId v : order) {
      CCS_ASSERT(placed_[v] == 0);
      bool found = false;
      int best_cb = 0;
      long long best_comm = 0;
      PeId best_pe = 0;
      int best_lo = 0;
      int best_hi = 0;

      for (PeId pe = 0; pe < num_pes_; ++pe) {
        long long lo_bound;
        if (profiled) {
          const std::uint64_t t0 = span_now_ns();
          lo_bound = eval_an(v, pe, target);
          an_hist.add(span_now_ns() - t0);
        } else {
          lo_bound = eval_an(v, pe, target);
        }
        ++an_evaluations;
        CCS_ASSERT(lo_bound <= std::numeric_limits<int>::max());
        const int lo = static_cast<int>(lo_bound);
        // A slot on this PE starts at first_free(lo) >= lo; once a winner
        // with best_cb < lo exists this PE cannot beat it on the primary
        // key, and best_cb only ever decreases — skip the probes.
        if (found && lo > best_cb) continue;
        const int hi =
            selection == RemapSelection::kBidirectional
                ? static_cast<int>(eval_latest(v, pe, target))
                : target - time_on(v, pe) + 1;
        if (lo > hi) continue;
        const int cb = memo_first_free(pe, lo, span_of(v, pe), word_probes);
        if (cb > hi) continue;
        const long long cc = eval_neighbor_comm(v, pe);
        if (!found || cb < best_cb || (cb == best_cb && cc < best_comm)) {
          found = true;
          best_cb = cb;
          best_comm = cc;
          best_pe = pe;
          best_lo = lo;
          best_hi = hi;
        }
      }
      if (!found) {
        flush_tallies();
        if (obs.metrics != nullptr) obs.count("remap.placement_failures");
        if (obs.tracing()) {
          RemapDecisionEvent ev;
          ev.node = v;
          ev.accepted = false;
          ev.slots_scanned = static_cast<int>(num_pes_);
          ev.reason = "no-feasible-slot";
          obs.emit(ev);
        }
        placed_all = false;
        break;
      }
      if (obs.tracing()) {
        RemapDecisionEvent ev;
        ev.node = v;
        ev.accepted = true;
        ev.pe = best_pe;
        ev.cb = best_cb;
        ev.an = best_lo;
        ev.latest = best_hi;
        ev.psl = node_psl_bound_soa(v, best_pe, best_cb);
        ev.slots_scanned = static_cast<int>(num_pes_);
        ev.reason = "placed";
        obs.emit(ev);
      }
      place_working(v, best_pe, best_cb);
      free_memo[best_pe] = FreeMemo{};  // occupancy changed on this PE only
      undo_.push_back(v);
      obs.count("remap.placements");
      // Delta updates: placing v changes the cached bounds of exactly the
      // unplaced (i.e. still-rotated) endpoints of v's own edges — no other
      // node's AN / latest / comm tie-break can move (docs/ALGORITHM.md).
      const long long v_ce = lce(v);
      const long long v_cb = lcb(v);
      for (EdgeId eid : graph_.out_edges(v)) {
        const Edge& e = graph_.edge(eid);
        if (e.to == v || placed_[e.to] != 0) continue;
        dyn_an_[e.to].push_back(
            DynAn{v_ce + 1, e.delay, best_pe, evol_idx_[eid]});
        dyn_comm_[e.to].push_back(DynComm{best_pe, evol_idx_[eid], true});
      }
      for (EdgeId eid : graph_.in_edges(v)) {
        const Edge& e = graph_.edge(eid);
        if (e.from == v || placed_[e.from] != 0) continue;
        if (selection == RemapSelection::kBidirectional)
          dyn_lat_[e.from].push_back(
              DynLat{v_cb, e.delay, best_pe, evol_idx_[eid]});
        dyn_comm_[e.from].push_back(DynComm{best_pe, evol_idx_[eid], false});
      }
    }
    if (!placed_all) {
      unwind();
      continue;
    }
    flush_tallies();

    // Leading compaction: with every task placed, shifting is just an
    // origin bump of (min CB - 1).
    length_ = std::max(length_, occupied_logical());
    if (num_nodes_ > 0) {
      int min_cb = std::numeric_limits<int>::max();
      for (NodeId v = 0; v < num_nodes_; ++v)
        min_cb = std::min(min_cb, lcb(v));
      const int removed = min_cb - 1;
      if (removed > 0) {
        origin_ += removed;
        length_ -= removed;
      }
    }

    const int needed = min_feasible_soa();
    obs.count("psl.evaluations");
    if (needed < 0) {
      obs.count("psl.rejections");
      obs.emit(PslPadEvent{needed, length_});
      unwind();
      continue;
    }
    length_ = std::max(occupied_logical(), needed);
    obs.emit(PslPadEvent{needed, length_});
    if (policy == RemapPolicy::kWithoutRelaxation &&
        length_ > previous_length) {
      obs.count("psl.rejections");
      unwind();
      continue;
    }
    undo_.clear();
    return length_;
  }
  return std::nullopt;
}

}  // namespace ccs
