#include "core/buffers.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ccs {

BufferReport buffer_requirements(const Csdfg& g, const ScheduleTable& table,
                                 const CommModel& comm) {
  CCS_EXPECTS(table.complete());
  const long long L = table.length();
  CCS_EXPECTS(L >= 1);

  BufferReport report;
  report.buffers.resize(g.edge_count());
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    const long long k = e.delay;
    const long long ce_u = table.ce(e.from);
    const long long cb_v = table.cb(e.to);
    const CommCost m = comm.cost(table.pe(e.from), table.pe(e.to), e.volume);
    const long long life = k * L + cb_v - ce_u;
    CCS_EXPECTS(life >= m + 1);  // otherwise the schedule is invalid
    const long long peak = (life + L - 1) / L;
    report.buffers[eid] = peak;
    report.total += peak;
    report.max_edge = std::max(report.max_edge, peak);
  }
  return report;
}

long long buffer_lower_bound(const Csdfg& g) {
  long long bound = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    bound += std::max(1, g.edge(e).delay);
  return bound;
}

}  // namespace ccs
