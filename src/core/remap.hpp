// ccsched — the remapping phase (Definitions 4.2/4.3, Lemmas 4.2/4.3).
//
// After a rotation the deallocated tasks must be put back.  For a rotated
// task v and each candidate processor p_j the anticipation function
//
//   AN(v, p_j) = max(1, max_i { CE(u_i) + M(PE(u_i), p_j, c(e_i)) + 1
//                               - k_i * L_target })
//
// (Lemma 4.2, rewritten from the master constraint at the target length) is
// the first control step at which v may start on p_j without breaking any
// placed predecessor dependence.  Placed *successors* bound the placement
// from above through the same constraint; the projected schedule length
// PSL (Lemma 4.3) then determines how many empty steps, if any, must pad the
// table so every loop-carried communication fits.
//
// Two policies (Def. 4.2):
//  * without relaxation — the pass must end at most as long as it started
//    (Theorem 4.4's monotonicity); otherwise the caller rolls back;
//  * with relaxation — intermediate growth is allowed; the driver keeps the
//    best table seen.
#pragma once

#include <optional>
#include <vector>

#include "arch/comm_model.hpp"
#include "core/csdfg.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"

namespace ccs {

/// Remapping policy of Definition 4.2.
enum class RemapPolicy {
  kWithoutRelaxation,  ///< Never end a pass longer than it started.
  kWithRelaxation,     ///< Allow intermediate growth (best-so-far elsewhere).
};

/// How the remapper picks among feasible (processor, step) slots.
enum class RemapSelection {
  /// Predecessor bound + successor bound + slot availability — every slot
  /// offered is feasible for the already-placed neighbors (default).
  kBidirectional,
  /// The paper's literal procedure: predecessor-side AN only; successor
  /// violations surface as a larger PSL afterwards.  Kept for the ablation
  /// bench (A1/A2 in DESIGN.md).
  kAnticipationOnly,
};

/// Anticipation function AN(v, pe) at target length `target_length` given
/// the current partial table: the earliest start step on `pe` respecting
/// every *placed* predecessor of v (Lemma 4.2; unplaced predecessors and
/// self-loops do not constrain the start step).  Always >= 1.
[[nodiscard]] int anticipation(const Csdfg& g, const ScheduleTable& table,
                               const CommModel& comm, NodeId v, PeId pe,
                               int target_length);

/// Latest start step of v on `pe` such that every *placed* successor of v
/// still satisfies the master constraint at `target_length`, and v itself
/// fits inside the table (CE <= target_length).  May be < 1, meaning no
/// feasible step exists on that processor.
[[nodiscard]] int latest_start(const Csdfg& g, const ScheduleTable& table,
                               const CommModel& comm, NodeId v, PeId pe,
                               int target_length);

/// Result of one remapping attempt.
struct RemapResult {
  bool success = false;  ///< Every rotated task was placed.
  int length = 0;        ///< Final table length (occupied + PSL padding).
};

/// Tries to place every task of `rotated` into `table` with all CE within
/// `target_length`, then pads the table to the PSL bound.  On success the
/// table is complete with length() == result.length; on failure the table is
/// left partially filled (callers work on a copy).  Placement order: larger
/// execution time first, node id as tie-break.  Slot choice: smallest start
/// step, then smallest total communication to placed neighbors, then lowest
/// processor id.  `obs` (optional) receives one remap_decision event per
/// task plus a psl_pad event, and the an.evaluations / remap.slots_scanned /
/// psl.* counters.
[[nodiscard]] RemapResult try_remap(const Csdfg& g, ScheduleTable& table,
                                    const CommModel& comm,
                                    const std::vector<NodeId>& rotated,
                                    int target_length,
                                    RemapSelection selection,
                                    const ObsContext& obs = {});

/// One full remapping pass per Definition 4.2: tries target lengths
/// `previous_length - 1`, then `previous_length`, then (with relaxation
/// only) successively longer targets until placement succeeds.  Returns the
/// successful table, or std::nullopt when the policy is without-relaxation
/// and no target <= previous_length admits a placement whose padded length
/// stays <= previous_length.
///
/// `table` must be the post-rotation (shifted) table; it is not modified.
[[nodiscard]] std::optional<ScheduleTable> remap_rotated(
    const Csdfg& g, const ScheduleTable& table, const CommModel& comm,
    const std::vector<NodeId>& rotated, int previous_length,
    RemapPolicy policy, RemapSelection selection = RemapSelection::kBidirectional,
    const ObsContext& obs = {});

}  // namespace ccs
