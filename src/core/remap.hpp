// ccsched — the v1 remapping surface (DEPRECATED since API v2).
//
// The free functions below predate ccs::RemapEngine (core/remap_engine.hpp)
// and are kept as thin, behavior-identical wrappers over the engine's
// preserved v1 procedures so downstream code keeps compiling.  New code
// should construct a RemapEngine and use its bind/rotate/remap/commit
// lifecycle — it maintains the anticipation bounds and occupancy state
// incrementally instead of recomputing them per probe.  See the "v1 -> v2
// migration" section of docs/API.md.
//
// The wrappers compile warning-clean by default.  Define
// CCSCHED_WARN_DEPRECATED to have every use flagged with [[deprecated]]
// (the CI shim gate builds both ways).
#pragma once

#include <optional>
#include <vector>

#include "core/remap_engine.hpp"

#ifdef CCSCHED_WARN_DEPRECATED
#define CCSCHED_DEPRECATED_V1(msg) [[deprecated(msg)]]
#else
#define CCSCHED_DEPRECATED_V1(msg)
#endif

namespace ccs {

/// Anticipation function AN(v, pe) at target length `target_length` given
/// the current partial table: the earliest start step on `pe` respecting
/// every *placed* predecessor of v (Lemma 4.2; unplaced predecessors and
/// self-loops do not constrain the start step).  Always >= 1.
CCSCHED_DEPRECATED_V1("use ccs::RemapEngine (docs/API.md, v1 -> v2)")
[[nodiscard]] inline int anticipation(const Csdfg& g,
                                      const ScheduleTable& table,
                                      const CommModel& comm, NodeId v, PeId pe,
                                      int target_length) {
  return RemapEngine::anticipation(g, table, comm, v, pe, target_length);
}

/// Latest start step of v on `pe` such that every *placed* successor of v
/// still satisfies the master constraint at `target_length`, and v itself
/// fits inside the table (CE <= target_length).  May be < 1, meaning no
/// feasible step exists on that processor.
CCSCHED_DEPRECATED_V1("use ccs::RemapEngine (docs/API.md, v1 -> v2)")
[[nodiscard]] inline int latest_start(const Csdfg& g,
                                      const ScheduleTable& table,
                                      const CommModel& comm, NodeId v, PeId pe,
                                      int target_length) {
  return RemapEngine::latest_start(g, table, comm, v, pe, target_length);
}

/// Tries to place every task of `rotated` into `table` with all CE within
/// `target_length`, then pads the table to the PSL bound.  On success the
/// table is complete with length() == result.length; on failure the table is
/// left partially filled (callers work on a copy).  Placement order: larger
/// execution time first, node id as tie-break.  Slot choice: smallest start
/// step, then smallest total communication to placed neighbors, then lowest
/// processor id.  `obs` (optional) receives one remap_decision event per
/// task plus a psl_pad event, and the an.evaluations / remap.slots_scanned /
/// psl.* counters.
CCSCHED_DEPRECATED_V1("use ccs::RemapEngine (docs/API.md, v1 -> v2)")
[[nodiscard]] inline RemapResult try_remap(const Csdfg& g,
                                           ScheduleTable& table,
                                           const CommModel& comm,
                                           const std::vector<NodeId>& rotated,
                                           int target_length,
                                           RemapSelection selection,
                                           const ObsContext& obs = {}) {
  return RemapEngine::try_remap(g, table, comm, rotated, target_length,
                                selection, obs);
}

/// One full remapping pass per Definition 4.2: tries target lengths
/// `previous_length - 1`, then `previous_length`, then (with relaxation
/// only) successively longer targets until placement succeeds.  Returns the
/// successful table, or std::nullopt when the policy is without-relaxation
/// and no target <= previous_length admits a placement whose padded length
/// stays <= previous_length.
///
/// `table` must be the post-rotation (shifted) table; it is not modified.
CCSCHED_DEPRECATED_V1("use ccs::RemapEngine (docs/API.md, v1 -> v2)")
[[nodiscard]] inline std::optional<ScheduleTable> remap_rotated(
    const Csdfg& g, const ScheduleTable& table, const CommModel& comm,
    const std::vector<NodeId>& rotated, int previous_length,
    RemapPolicy policy,
    RemapSelection selection = RemapSelection::kBidirectional,
    const ObsContext& obs = {}) {
  return RemapEngine::remap_rotated(g, table, comm, rotated, previous_length,
                                    policy, selection, obs);
}

}  // namespace ccs
