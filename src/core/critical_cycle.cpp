#include "core/critical_cycle.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/contracts.hpp"

namespace ccs {

Rational CycleWitness::ratio() const {
  if (total_delay == 0) return Rational{0, 1};
  const long long g = std::gcd(total_time, total_delay);
  return Rational{total_time / g, total_delay / g};
}

CycleWitness critical_cycle(const Csdfg& g) {
  const Rational bound = iteration_bound(g);
  if (bound.num == 0) return {};  // acyclic

  const long long p = bound.num, q = bound.den;
  const std::size_t n = g.node_count();
  auto weight = [&](EdgeId eid) {
    const Edge& e = g.edge(eid);
    return q * static_cast<long long>(g.node(e.from).time) -
           p * static_cast<long long>(e.delay);
  };

  // Longest paths from a virtual source; converges because no cycle is
  // positive at ratio B.
  std::vector<long long> dist(n, 0);
  for (std::size_t pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
      const Edge& e = g.edge(eid);
      if (dist[e.from] + weight(eid) > dist[e.to]) {
        dist[e.to] = dist[e.from] + weight(eid);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Tight subgraph: every critical cycle's edges satisfy
  // dist[to] == dist[from] + w, and every cycle of tight edges is critical.
  std::vector<std::vector<EdgeId>> tight(n);
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    if (dist[e.from] + weight(eid) == dist[e.to])
      tight[e.from].push_back(eid);
  }

  // Iterative DFS for a cycle in the tight subgraph.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<EdgeId> via(n, 0);      // tight edge used to enter the node
  std::vector<NodeId> parent(n, 0);   // DFS tree parent

  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    // (node, next edge index) stack.
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      if (idx < tight[u].size()) {
        const EdgeId eid = tight[u][idx++];
        const NodeId w = g.edge(eid).to;
        if (color[w] == Color::kGray) {
          // Found a cycle: unwind from u back to w.
          CycleWitness cycle;
          std::vector<EdgeId> rev{eid};
          NodeId cur = u;
          while (cur != w) {
            rev.push_back(via[cur]);
            cur = parent[cur];
          }
          std::reverse(rev.begin(), rev.end());
          cycle.edges = rev;
          for (EdgeId ce : cycle.edges) {
            cycle.total_time += g.node(g.edge(ce).from).time;
            cycle.total_delay += g.edge(ce).delay;
          }
          CCS_ENSURES(cycle.ratio() == bound);
          return cycle;
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          via[w] = eid;
          parent[w] = u;
          stack.push_back({w, 0});
        }
      } else {
        color[u] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  CCS_ASSERT(false);  // a cyclic graph always has a tight cycle
  return {};
}

std::string describe_cycle(const Csdfg& g, const CycleWitness& cycle) {
  if (cycle.edges.empty()) return "(acyclic)";
  std::ostringstream os;
  for (const EdgeId eid : cycle.edges)
    os << g.node(g.edge(eid).from).name << " -> ";
  os << g.node(g.edge(cycle.edges.front()).from).name;
  os << " (t=" << cycle.total_time << ", d=" << cycle.total_delay
     << ", ratio " << cycle.ratio().to_string() << ")";
  return os.str();
}

}  // namespace ccs
