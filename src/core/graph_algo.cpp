#include "core/graph_algo.hpp"

#include <algorithm>
#include <queue>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

std::vector<NodeId> zero_delay_topological_order(const Csdfg& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> indeg(n, 0);
  for (NodeId v = 0; v < n; ++v)
    for (EdgeId eid : g.in_edges(v))
      if (g.edge(eid).delay == 0) ++indeg[v];

  // Min-heap on node id for a deterministic order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(v);

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (EdgeId eid : g.out_edges(v)) {
      const Edge& e = g.edge(eid);
      if (e.delay == 0 && --indeg[e.to] == 0) ready.push(e.to);
    }
  }
  if (order.size() != n)
    throw GraphError("CSDFG '" + g.name() +
                     "' has a zero-delay cycle; no topological order exists");
  return order;
}

DagTiming compute_dag_timing(const Csdfg& g) {
  const auto order = zero_delay_topological_order(g);
  const std::size_t n = g.node_count();

  DagTiming t;
  t.asap_cb.assign(n, 1);
  for (NodeId v : order) {
    for (EdgeId eid : g.out_edges(v)) {
      const Edge& e = g.edge(eid);
      if (e.delay != 0) continue;
      t.asap_cb[e.to] =
          std::max(t.asap_cb[e.to], t.asap_cb[v] + g.node(v).time);
    }
  }

  t.critical_path = 0;
  for (NodeId v = 0; v < n; ++v)
    t.critical_path =
        std::max(t.critical_path, t.asap_cb[v] + g.node(v).time - 1);

  t.alap_cb.assign(n, 0);
  for (NodeId v = 0; v < n; ++v)
    t.alap_cb[v] = t.critical_path - g.node(v).time + 1;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (EdgeId eid : g.out_edges(v)) {
      const Edge& e = g.edge(eid);
      if (e.delay != 0) continue;
      t.alap_cb[v] = std::min(t.alap_cb[v], t.alap_cb[e.to] - g.node(v).time);
    }
  }

  for (NodeId v = 0; v < n; ++v) CCS_ENSURES(t.alap_cb[v] >= t.asap_cb[v]);
  return t;
}

std::vector<NodeId> zero_delay_roots(const Csdfg& g) {
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    bool has_zero_in = false;
    for (EdgeId eid : g.in_edges(v))
      if (g.edge(eid).delay == 0) {
        has_zero_in = true;
        break;
      }
    if (!has_zero_in) roots.push_back(v);
  }
  return roots;
}

bool weakly_connected(const Csdfg& g) {
  if (g.node_count() <= 1) return true;
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    const auto visit = [&](NodeId y) {
      if (!seen[y]) {
        seen[y] = true;
        ++reached;
        stack.push_back(y);
      }
    };
    for (EdgeId eid : g.out_edges(x)) visit(g.edge(eid).to);
    for (EdgeId eid : g.in_edges(x)) visit(g.edge(eid).from);
  }
  return reached == g.node_count();
}

bool zero_delay_reachable(const Csdfg& g, NodeId u, NodeId v) {
  CCS_EXPECTS(u < g.node_count() && v < g.node_count());
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeId> stack{u};
  seen[u] = true;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    if (x == v) return true;
    for (EdgeId eid : g.out_edges(x)) {
      const Edge& e = g.edge(eid);
      if (e.delay == 0 && !seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  return false;
}

}  // namespace ccs
