// ccsched — realizing a retimed schedule as prologue + steady state +
// epilogue.
//
// Section 2 of the paper: "A prologue is the set of instructions that must
// be executed to provide the necessary data for the iterative process after
// it has been successfully retimed ...  An epilogue is the other extreme."
// Under the paper's sign convention, a task v with (normalized) retiming
// r(v) has been advanced r(v) iterations: steady-state iteration i of the
// retimed loop executes original iteration i + r(v) of v.  Running N
// original iterations therefore needs
//
//   prologue:   instances (v, 0 .. r(v)-1)            for every v,
//   steady:     N - max(r) retimed iterations,
//   epilogue:   instances (v, N-max(r)+r(v) .. N-1)   for every v.
//
// This module computes those instance sets, flattens a bounded run into a
// dependency-respecting instruction sequence, and verifies the flattening
// against the ORIGINAL graph — the end-to-end proof that rotation preserved
// the loop's semantics.
#pragma once

#include <vector>

#include "core/csdfg.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// One task instance: task `node` of ORIGINAL iteration `iteration`.
struct TaskInstance {
  NodeId node = 0;
  long long iteration = 0;

  [[nodiscard]] bool operator==(const TaskInstance&) const = default;
};

/// The prologue/steady/epilogue decomposition induced by a retiming.
class LoopRealization {
public:
  /// Builds the realization of `retiming` (any legal retiming of a graph
  /// with `g.node_count()` nodes; the stored form is normalized so that
  /// min r = 0, which does not change the retimed graph).
  LoopRealization(const Csdfg& g, const Retiming& retiming);

  /// Normalized advancement of each task (min over tasks is 0).
  [[nodiscard]] long long advance(NodeId v) const;

  /// max over tasks of advance() — the pipeline depth the prologue fills.
  [[nodiscard]] long long depth() const noexcept { return depth_; }

  /// Prologue instances, ordered task-major by ascending iteration;
  /// executing them in a topological-by-iteration order supplies every
  /// operand the steady state's first iteration consumes.
  [[nodiscard]] std::vector<TaskInstance> prologue() const;

  /// Epilogue instances for a run of `total_iterations` original
  /// iterations (>= depth()).
  [[nodiscard]] std::vector<TaskInstance> epilogue(
      long long total_iterations) const;

  /// Number of steady-state (retimed) iterations in a run of
  /// `total_iterations` original iterations (>= depth()).
  [[nodiscard]] long long steady_iterations(long long total_iterations) const;

  /// Flattens a complete run of `total_iterations` original iterations
  /// into one instruction sequence: prologue (by original iteration, then
  /// zero-delay topological order), steady-state iterations (by retimed
  /// iteration, then the table's control-step order), epilogue (same order
  /// as prologue).  Every original instance (v, 0..N-1) appears exactly
  /// once.
  [[nodiscard]] std::vector<TaskInstance> flatten(
      const Csdfg& original, const ScheduleTable& steady_table,
      long long total_iterations) const;

private:
  std::vector<long long> advance_;
  long long depth_ = 0;
};

/// Verifies that `sequence` is a legal serial execution of
/// `total_iterations` iterations of `original`: every instance appears
/// exactly once and every dependence edge u -e-> v with delay d has
/// (u, i-d) sequenced before (v, i) whenever i-d >= 0.  Returns an empty
/// string on success, else a diagnostic.
[[nodiscard]] std::string check_flattening(
    const Csdfg& original, const std::vector<TaskInstance>& sequence,
    long long total_iterations);

}  // namespace ccs
