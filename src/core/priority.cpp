#include "core/priority.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace ccs {

long long priority_pf(const Csdfg& g, const ScheduleTable& table,
                      const DagTiming& timing, NodeId v, int cs_cur) {
  CCS_EXPECTS(v < g.node_count());
  long long comm_term = 0;
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay != 0) continue;  // loop-carried: previous iteration
    if (!table.is_placed(e.from)) continue;
    const long long ce_u = table.ce(e.from);
    // m - (cs_cur - (CE(u)+1)): the transfer volume discounted by how long
    // v has already waited past its producer.
    comm_term = std::max(comm_term, static_cast<long long>(e.volume) -
                                        (cs_cur - (ce_u + 1)));
  }
  const long long mobility = timing.alap_cb[v] - cs_cur;
  return comm_term - mobility;
}

long long priority_value(PriorityRule rule, const Csdfg& g,
                         const ScheduleTable& table, const DagTiming& timing,
                         NodeId v, int cs_cur) {
  switch (rule) {
    case PriorityRule::kCommunicationSensitive:
      return priority_pf(g, table, timing, v, cs_cur);
    case PriorityRule::kMobilityOnly:
      return -static_cast<long long>(timing.alap_cb[v] - cs_cur);
    case PriorityRule::kFifo:
      return -static_cast<long long>(v);
  }
  CCS_ASSERT(false);
  return std::numeric_limits<long long>::min();
}

}  // namespace ccs
