#include "core/schedule.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace ccs {

namespace {
constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();
}  // namespace

ScheduleTable::ScheduleTable(const Csdfg& g, std::size_t num_pes,
                             bool pipelined_pes)
    : ScheduleTable(g, std::vector<int>(num_pes, 1), pipelined_pes) {}

ScheduleTable::ScheduleTable(const Csdfg& g, std::vector<int> pe_speeds,
                             bool pipelined_pes)
    : num_pes_(pe_speeds.size()),
      pipelined_(pipelined_pes),
      speeds_(std::move(pe_speeds)) {
  CCS_EXPECTS(num_pes_ >= 1);
  for (const int s : speeds_) CCS_EXPECTS(s >= 1);
  times_.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v)
    times_.push_back(g.node(v).time);
  where_.assign(g.node_count(), std::nullopt);
  grid_.assign(num_pes_, {});
}

int ScheduleTable::occupied_length() const noexcept {
  int max_ce = 0;
  for (NodeId v = 0; v < where_.size(); ++v)
    if (where_[v])
      max_ce = std::max(
          max_ce, where_[v]->cb + times_[v] * speeds_[where_[v]->pe] - 1);
  return max_ce;
}

void ScheduleTable::set_length(int length) {
  CCS_EXPECTS(length >= occupied_length());
  length_ = length;
}

int ScheduleTable::time(NodeId v) const {
  CCS_EXPECTS(v < times_.size());
  return times_[v];
}

int ScheduleTable::pe_speed(PeId pe) const {
  CCS_EXPECTS(pe < num_pes_);
  return speeds_[pe];
}

int ScheduleTable::time_on(NodeId v, PeId pe) const {
  CCS_EXPECTS(v < times_.size());
  CCS_EXPECTS(pe < num_pes_);
  return times_[v] * speeds_[pe];
}

bool ScheduleTable::is_placed(NodeId v) const {
  CCS_EXPECTS(v < where_.size());
  return where_[v].has_value();
}

Placement ScheduleTable::placement(NodeId v) const {
  CCS_EXPECTS(v < where_.size());
  CCS_EXPECTS(where_[v].has_value());
  return *where_[v];
}

int ScheduleTable::ce(NodeId v) const {
  const Placement p = placement(v);
  return p.cb + times_[v] * speeds_[p.pe] - 1;
}

bool ScheduleTable::is_free(PeId pe, int from, int to) const {
  CCS_EXPECTS(pe < num_pes_);
  CCS_EXPECTS(from >= 1 && from <= to);
  const auto& col = grid_[pe];
  for (int cs = from; cs <= to; ++cs) {
    const auto idx = static_cast<std::size_t>(cs - 1);
    if (idx < col.size() && col[idx] != kFree) return false;
  }
  return true;
}

int ScheduleTable::first_free(PeId pe, int earliest, int duration) const {
  CCS_EXPECTS(pe < num_pes_);
  CCS_EXPECTS(duration >= 1);
  const int span = pipelined_ ? 1 : duration * speeds_[pe];
  int cs = std::max(1, earliest);
  while (!is_free(pe, cs, cs + span - 1)) ++cs;
  return cs;
}

std::optional<NodeId> ScheduleTable::occupant(PeId pe, int cs) const {
  CCS_EXPECTS(pe < num_pes_);
  CCS_EXPECTS(cs >= 1);
  const auto& col = grid_[pe];
  const auto idx = static_cast<std::size_t>(cs - 1);
  if (idx < col.size() && col[idx] != kFree) return col[idx];
  return std::nullopt;
}

void ScheduleTable::ensure_rows(PeId pe, int cs) {
  auto& col = grid_[pe];
  if (col.size() < static_cast<std::size_t>(cs))
    col.resize(static_cast<std::size_t>(cs), kFree);
}

void ScheduleTable::place(NodeId v, PeId pe, int cb) {
  CCS_EXPECTS(v < where_.size());
  CCS_EXPECTS(!where_[v].has_value());
  CCS_EXPECTS(pe < num_pes_);
  CCS_EXPECTS(cb >= 1);
  const int span = occupied_span(v, pe);
  CCS_EXPECTS(is_free(pe, cb, cb + span - 1));

  ensure_rows(pe, cb + span - 1);
  for (int cs = cb; cs < cb + span; ++cs)
    grid_[pe][static_cast<std::size_t>(cs - 1)] = v;
  where_[v] = Placement{pe, cb};
  ++placed_;
  length_ = std::max(length_, cb + times_[v] * speeds_[pe] - 1);
}

void ScheduleTable::remove(NodeId v) {
  CCS_EXPECTS(v < where_.size());
  CCS_EXPECTS(where_[v].has_value());
  const Placement p = *where_[v];
  const int span = occupied_span(v, p.pe);
  for (int cs = p.cb; cs < p.cb + span; ++cs)
    grid_[p.pe][static_cast<std::size_t>(cs - 1)] = kFree;
  where_[v] = std::nullopt;
  --placed_;
}

std::vector<NodeId> ScheduleTable::nodes_starting_at(int cs) const {
  CCS_EXPECTS(cs >= 1);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < where_.size(); ++v)
    if (where_[v] && where_[v]->cb == cs) out.push_back(v);
  return out;
}

void ScheduleTable::shift_up() {
  CCS_EXPECTS(length_ >= 1);
  CCS_EXPECTS(nodes_starting_at(1).empty());
  for (NodeId v = 0; v < where_.size(); ++v) {
    if (!where_[v]) continue;
    CCS_ASSERT(where_[v]->cb >= 2);
    where_[v]->cb -= 1;
  }
  for (auto& col : grid_) {
    if (!col.empty()) col.erase(col.begin());
  }
  length_ -= 1;
}

int ScheduleTable::compact_leading() {
  int removed = 0;
  while (length_ >= 1 && nodes_starting_at(1).empty() && placed_ > 0) {
    shift_up();
    ++removed;
  }
  return removed;
}

std::vector<std::pair<NodeId, Placement>> ScheduleTable::placements() const {
  std::vector<std::pair<NodeId, Placement>> out;
  for (NodeId v = 0; v < where_.size(); ++v)
    if (where_[v]) out.emplace_back(v, *where_[v]);
  return out;
}

}  // namespace ccs
