// ccsched — start-up scheduling (Section 3.1 of the paper).
//
// A modified list scheduler produces the initial static schedule that
// cyclo-compaction then shortens.  It works on the zero-delay DAG view of
// the CSDFG ("the input ... with no feedback edges"): readiness and ordering
// follow intra-iteration dependences only, while every candidate placement is
// checked against the communication model — a consumer on processor p_j may
// start only after max_i { CE(u_i) + M(PE(u_i), p_j, c(e_i)) } (the
// algorithm's `cm < cs` test).
//
// After all tasks are placed, the table length is raised to the PSL bound
// (min_feasible_length) so that the returned schedule is valid as a *cyclic*
// schedule, including its loop-carried edges.
#pragma once

#include <vector>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/priority.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"

namespace ccs {

/// Configuration of the start-up scheduler.
struct StartUpOptions {
  /// Ready-list ordering; the paper's PF by default.
  PriorityRule priority = PriorityRule::kCommunicationSensitive;
  /// When false, placement feasibility ignores communication delays — the
  /// comm-oblivious list scheduling baseline (the resulting table generally
  /// violates the communication constraints; price it with the self-timed
  /// simulator, never with validate_schedule).
  bool comm_aware = true;
  /// Model pipelined processing elements (tasks occupy only their issue
  /// step).
  bool pipelined_pes = false;
  /// Heterogeneous machine: per-PE slowdown factors (>= 1).  Empty means
  /// homogeneous.  When non-empty, the size must equal the topology's
  /// processor count.
  std::vector<int> pe_speeds;
};

/// Runs the start-up scheduling algorithm of Section 3.1 on `g` for the
/// machine described by `comm` (whose topology supplies the processor
/// count).  Deterministic.  Throws GraphError if `g` is illegal.  `obs`
/// (optional) records the time.startup timer, startup.* counters, and one
/// startup_done event.
[[nodiscard]] ScheduleTable start_up_schedule(const Csdfg& g,
                                              const Topology& topo,
                                              const CommModel& comm,
                                              const StartUpOptions& options = {},
                                              const ObsContext& obs = {});

}  // namespace ccs
