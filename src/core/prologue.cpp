#include "core/prologue.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/graph_algo.hpp"
#include "util/contracts.hpp"

namespace ccs {

LoopRealization::LoopRealization(const Csdfg& g, const Retiming& retiming) {
  CCS_EXPECTS(retiming.size() == g.node_count());
  CCS_EXPECTS(retiming.is_legal_for(g));
  advance_.resize(g.node_count());
  long long lo = advance_.empty() ? 0 : retiming.of(0);
  for (NodeId v = 0; v < g.node_count(); ++v)
    lo = std::min(lo, retiming.of(v));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    advance_[v] = retiming.of(v) - lo;
    depth_ = std::max(depth_, advance_[v]);
  }
}

long long LoopRealization::advance(NodeId v) const {
  CCS_EXPECTS(v < advance_.size());
  return advance_[v];
}

std::vector<TaskInstance> LoopRealization::prologue() const {
  std::vector<TaskInstance> out;
  for (long long iter = 0; iter < depth_; ++iter)
    for (NodeId v = 0; v < advance_.size(); ++v)
      if (iter < advance_[v]) out.push_back({v, iter});
  return out;
}

std::vector<TaskInstance> LoopRealization::epilogue(
    long long total_iterations) const {
  CCS_EXPECTS(total_iterations >= depth_);
  const long long steady = total_iterations - depth_;
  std::vector<TaskInstance> out;
  for (long long iter = steady; iter < total_iterations; ++iter)
    for (NodeId v = 0; v < advance_.size(); ++v)
      if (iter >= steady + advance_[v]) out.push_back({v, iter});
  return out;
}

long long LoopRealization::steady_iterations(long long total_iterations) const {
  CCS_EXPECTS(total_iterations >= depth_);
  return total_iterations - depth_;
}

std::vector<TaskInstance> LoopRealization::flatten(
    const Csdfg& original, const ScheduleTable& steady_table,
    long long total_iterations) const {
  CCS_EXPECTS(original.node_count() == advance_.size());
  CCS_EXPECTS(steady_table.complete());
  CCS_EXPECTS(total_iterations >= depth_);

  // Zero-delay topological order of the original graph sequences the
  // prologue/epilogue blocks; the steady state follows the table's
  // control-step order.
  const auto topo = zero_delay_topological_order(original);

  std::vector<TaskInstance> out;
  // Prologue: iteration-major, topological within an iteration.
  for (long long iter = 0; iter < depth_; ++iter)
    for (NodeId v : topo)
      if (iter < advance_[v]) out.push_back({v, iter});

  // Steady state: retimed-iteration-major, CB-major within an iteration.
  std::vector<NodeId> cb_order(original.node_count());
  for (NodeId v = 0; v < original.node_count(); ++v) cb_order[v] = v;
  std::stable_sort(cb_order.begin(), cb_order.end(), [&](NodeId a, NodeId b) {
    if (steady_table.cb(a) != steady_table.cb(b))
      return steady_table.cb(a) < steady_table.cb(b);
    return a < b;
  });
  const long long steady = total_iterations - depth_;
  for (long long t = 0; t < steady; ++t)
    for (NodeId v : cb_order) out.push_back({v, t + advance_[v]});

  // Epilogue: iteration-major, topological within an iteration.
  for (long long iter = steady; iter < total_iterations; ++iter)
    for (NodeId v : topo)
      if (iter >= steady + advance_[v]) out.push_back({v, iter});

  CCS_ENSURES(out.size() ==
              static_cast<std::size_t>(total_iterations) *
                  original.node_count());
  return out;
}

std::string check_flattening(const Csdfg& original,
                             const std::vector<TaskInstance>& sequence,
                             long long total_iterations) {
  std::map<std::pair<NodeId, long long>, std::size_t> position;
  for (std::size_t pos = 0; pos < sequence.size(); ++pos) {
    const TaskInstance& inst = sequence[pos];
    if (inst.node >= original.node_count())
      return "instance references unknown task";
    if (inst.iteration < 0 || inst.iteration >= total_iterations) {
      std::ostringstream os;
      os << "instance (" << original.node(inst.node).name << ","
         << inst.iteration << ") outside the run";
      return os.str();
    }
    if (!position.insert({{inst.node, inst.iteration}, pos}).second) {
      std::ostringstream os;
      os << "instance (" << original.node(inst.node).name << ","
         << inst.iteration << ") executed twice";
      return os.str();
    }
  }
  if (position.size() !=
      static_cast<std::size_t>(total_iterations) * original.node_count())
    return "some instances were never executed";

  for (EdgeId eid = 0; eid < original.edge_count(); ++eid) {
    const Edge& e = original.edge(eid);
    for (long long i = e.delay; i < total_iterations; ++i) {
      const auto producer = position.find({e.from, i - e.delay});
      const auto consumer = position.find({e.to, i});
      CCS_ASSERT(producer != position.end() && consumer != position.end());
      if (producer->second >= consumer->second) {
        std::ostringstream os;
        os << "dependence violated: (" << original.node(e.from).name << ","
           << i - e.delay << ") must precede (" << original.node(e.to).name
           << "," << i << ")";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace ccs
