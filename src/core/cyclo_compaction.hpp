// ccsched — the cyclo-compaction scheduling algorithm (Section 4).
//
// Algorithm Cyclo-Compact(G, z):
//   S <- Start-Up-Schedule(G); Q <- S
//   repeat z times:
//     (G, S) <- Rotate-Remap(G, S)      // rotation (implicit retiming)
//                                       // + communication-sensitive remap
//     if length(S) < length(Q): Q <- S
//   return Q
//
// Each pass deallocates the first row of the table, retimes the graph
// accordingly (loop pipelining), and remaps the freed tasks to the slots the
// anticipation function suggests.  Without relaxation the pass length never
// grows (Theorem 4.4); with relaxation intermediate growth is allowed and
// the best table seen is returned — the paper's recommended configuration
// ("the remapping scheme with relaxation yields the better result").
#pragma once

#include <vector>

#include <string>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/budget.hpp"
#include "core/csdfg.hpp"
#include "core/list_scheduler.hpp"
#include "core/remap_engine.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"

namespace ccs {

/// Configuration of the cyclo-compaction driver.
struct CycloCompactionOptions {
  /// Remapping policy (Def. 4.2); the paper's experiments favor relaxation.
  RemapPolicy policy = RemapPolicy::kWithRelaxation;
  /// Slot selection; kBidirectional is the default refinement, while
  /// kAnticipationOnly reproduces the paper's literal procedure.
  RemapSelection selection = RemapSelection::kBidirectional;
  /// Number of rotate-remap passes z; 0 selects the default 3 * |V|
  /// (every task is rotated a few times — the examples in the paper converge
  /// within a handful of passes).
  int passes = 0;
  /// Start-up scheduler configuration.
  StartUpOptions startup;
  /// Cooperative stop conditions (core/budget.hpp).  Checked at pass
  /// boundaries; a budget stop returns the best-so-far schedule and sets
  /// CycloCompactionResult::stop_reason.  The default budget never fires.
  RunBudget budget;
  /// Which RemapEngine backend executes the rotate-remap passes.  Both
  /// backends are placement-for-placement identical (the differential test
  /// and the certifier enforce it); kNaive is the preserved v1 referee.
  RemapBackend remap_backend = default_remap_backend();
};

/// Everything a caller needs to audit a cyclo-compaction run.
struct CycloCompactionResult {
  /// The retimed graph corresponding to `best` (delays as after the winning
  /// pass; the prologue/epilogue realize the retiming at run time).
  Csdfg retimed_graph;
  /// Total retiming from the input graph to `retimed_graph`.
  Retiming retiming;
  /// The shortest valid schedule found (Q in the algorithm).
  ScheduleTable best;
  /// The start-up schedule the compaction began from.
  ScheduleTable startup;
  /// Schedule length after each pass (index 0 = after pass 1).  A pass that
  /// stalls (without-relaxation rollback) repeats the previous value and
  /// ends the trace.
  std::vector<int> length_trace;
  /// Pass index (1-based) at which `best` was first reached; 0 when the
  /// start-up schedule was never improved.
  int best_pass = 0;
  /// Why the run stopped before its configured pass count: "max-passes",
  /// "deadline", or "patience" when a budget fired, or "preempted" when an
  /// external BudgetStopToken asked the run to yield (a budget_exhausted
  /// event carries the same reason); empty when every pass ran or a
  /// without-relaxation rollback ended the loop.
  std::string stop_reason;
  /// Remap cost accounting accumulated over every pass (docs/API.md):
  /// occupancy probes, AN evaluations, and the incremental backend's cache
  /// hit / bitset word counts (both zero on the naive backend).
  RemapStats remap_stats{};
  /// Name of the backend that produced `best` ("incremental" / "naive").
  std::string backend;

  [[nodiscard]] int startup_length() const { return startup.length(); }
  [[nodiscard]] int best_length() const { return best.length(); }
};

/// Runs start-up scheduling followed by z rotate-remap passes of
/// cyclo-compaction on machine `topo` under `comm`.  Deterministic; throws
/// GraphError if `g` is illegal.  Every schedule returned (startup and best)
/// satisfies validate_schedule.
///
/// `obs` (optional) streams the run: pass_start / rotation / remap_target /
/// remap_decision / psl_pad / rollback / pass_end / budget_exhausted events
/// plus the
/// compaction.* counters and the time.compaction / time.startup /
/// time.remap timers (docs/OBSERVABILITY.md).  The default context is
/// disabled and costs nothing.
[[nodiscard]] CycloCompactionResult cyclo_compact(
    const Csdfg& g, const Topology& topo, const CommModel& comm,
    const CycloCompactionOptions& options = {}, const ObsContext& obs = {});

}  // namespace ccs
