#include "core/modulo_scheduler.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

namespace {

/// One modulo-scheduling attempt at a fixed II.  Returns flat start times
/// (1-based absolute) or nullopt when some task cannot be placed.
std::optional<std::vector<long long>> try_ii(const Csdfg& g,
                                             const Topology& topo,
                                             const CommModel& comm, int ii,
                                             std::vector<PeId>& pe_of) {
  const std::size_t n = g.node_count();
  const auto order = zero_delay_topological_order(g);

  // Modulo reservation table: slot (pe, phase) -> occupied.
  std::vector<std::vector<bool>> reserved(
      topo.size(), std::vector<bool>(static_cast<std::size_t>(ii), false));
  std::vector<long long> start(n, 0);
  std::vector<bool> placed(n, false);
  pe_of.assign(n, 0);

  auto phase = [ii](long long s, int offset) {
    return static_cast<std::size_t>((s - 1 + offset) % ii);
  };

  for (const NodeId v : order) {
    const int t = g.node(v).time;
    if (t > ii) return std::nullopt;  // task cannot fit one period

    bool found = false;
    long long best_s = 0;
    PeId best_pe = 0;
    for (PeId pe = 0; pe < topo.size(); ++pe) {
      // Earliest start on `pe` from the already-placed predecessors.
      long long ready = 1;
      for (EdgeId eid : g.in_edges(v)) {
        const Edge& e = g.edge(eid);
        if (e.from == v || !placed[e.from]) continue;
        const long long m = comm.cost(pe_of[e.from], pe, e.volume);
        ready = std::max(ready, start[e.from] + g.node(e.from).time + m -
                                    static_cast<long long>(e.delay) * ii);
      }
      // Scan one full period of phases for a free reservation.  The span
      // may not wrap the period boundary: the folded cyclic table places
      // a task at contiguous steps CB..CB+t-1 <= II.
      for (int probe = 0; probe < ii; ++probe) {
        const long long s = ready + probe;
        bool free = static_cast<int>(phase(s, 0)) + t <= ii;
        for (int j = 0; j < t && free; ++j)
          free = !reserved[pe][phase(s, j)];
        if (free) {
          if (!found || s < best_s) {
            found = true;
            best_s = s;
            best_pe = pe;
          }
          break;
        }
      }
    }
    if (!found) return std::nullopt;

    for (int j = 0; j < t; ++j) reserved[best_pe][phase(best_s, j)] = true;
    start[v] = best_s;
    pe_of[v] = best_pe;
    placed[v] = true;
  }

  // Verify every constraint, including loop-carried edges whose producer
  // was placed after the consumer in topological order.
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    const long long m = comm.cost(pe_of[e.from], pe_of[e.to], e.volume);
    if (start[e.to] < start[e.from] + g.node(e.from).time + m -
                          static_cast<long long>(e.delay) * ii)
      return std::nullopt;
  }
  return start;
}

}  // namespace

ModuloScheduleResult modulo_schedule(const Csdfg& g, const Topology& topo,
                                     const CommModel& comm) {
  g.require_legal();
  const std::size_t n = g.node_count();
  CCS_EXPECTS(n >= 1);

  // II floors: the iteration bound, the per-processor work bound, and the
  // longest task.
  const Rational bound = iteration_bound(g);
  long long floor_ii = (bound.num + bound.den - 1) / bound.den;
  floor_ii = std::max(floor_ii,
                      (g.total_computation() +
                       static_cast<long long>(topo.size()) - 1) /
                          static_cast<long long>(topo.size()));
  for (NodeId v = 0; v < n; ++v)
    floor_ii = std::max(floor_ii, static_cast<long long>(g.node(v).time));
  floor_ii = std::max<long long>(floor_ii, 1);

  // Greedy placement can fragment the reservation table, so allow slack
  // beyond the serial II before falling back to the explicit serial
  // schedule below.
  const long long cap = 2 * g.total_computation() + 1;

  for (long long ii = floor_ii; ii <= cap + 1; ++ii) {
    std::vector<PeId> pe_of;
    std::optional<std::vector<long long>> flat;
    if (ii <= cap) {
      flat = try_ii(g, topo, comm, static_cast<int>(ii), pe_of);
    } else {
      // Guaranteed fallback: every task serial on processor 0 at
      // II = total computation (identity retiming; always valid).
      ii = g.total_computation();
      flat.emplace(n, 0);
      pe_of.assign(n, 0);
      long long clock = 1;
      for (const NodeId v : zero_delay_topological_order(g)) {
        (*flat)[v] = clock;
        clock += g.node(v).time;
      }
    }
    if (!flat) continue;

    // Fold: CB = ((s-1) mod II) + 1; the fold count becomes a retiming
    // advance under the paper's convention (see header).
    Retiming r(n);
    for (NodeId v = 0; v < n; ++v)
      r.set(v, -(((*flat)[v] - 1) / ii));
    Csdfg retimed = g;
    r.apply(retimed);

    ScheduleTable table(retimed, topo.size());
    table.set_length(static_cast<int>(ii));
    for (NodeId v = 0; v < n; ++v)
      table.place(v, pe_of[v],
                  static_cast<int>(((*flat)[v] - 1) % ii) + 1);
    table.set_length(static_cast<int>(ii));

    return {static_cast<int>(ii), r, std::move(retimed), std::move(table),
            std::move(*flat)};
  }
  throw ScheduleError("modulo scheduling failed up to the serial II");
}

}  // namespace ccs
