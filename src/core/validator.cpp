#include "core/validator.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

#include "util/contracts.hpp"

namespace ccs {

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i].message;
  }
  return os.str();
}

ValidationReport validate_schedule(const Csdfg& g, const ScheduleTable& table,
                                   const CommModel& comm) {
  ValidationReport report;
  auto add = [&](Violation::Kind kind, const std::string& msg) {
    report.violations.push_back({kind, msg});
  };

  if (!g.is_legal())
    add(Violation::Kind::kIllegalGraph,
        "graph '" + g.name() + "' has a zero-delay cycle");

  const int L = table.length();

  // 1. Every task placed, inside the table.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!table.is_placed(v)) {
      add(Violation::Kind::kUnplacedTask,
          "task '" + g.node(v).name + "' is not in the table");
      continue;
    }
    const int cb = table.cb(v);
    const int ce = cb + g.node(v).time * table.pe_speed(table.pe(v)) - 1;
    if (cb < 1 || ce > L) {
      std::ostringstream os;
      os << "task '" << g.node(v).name << "' occupies steps [" << cb << ","
         << ce << "] outside table of length " << L;
      add(Violation::Kind::kOutOfTable, os.str());
    }
  }

  // 2. Resource exclusivity, recomputed from placements (the table's grid is
  //    not trusted).
  std::map<std::pair<PeId, int>, NodeId> occupancy;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!table.is_placed(v)) continue;
    const Placement p = table.placement(v);
    const int span =
        table.pipelined_pes() ? 1 : g.node(v).time * table.pe_speed(p.pe);
    for (int cs = p.cb; cs < p.cb + span; ++cs) {
      auto [it, inserted] = occupancy.insert({{p.pe, cs}, v});
      if (!inserted) {
        std::ostringstream os;
        os << "tasks '" << g.node(it->second).name << "' and '"
           << g.node(v).name << "' both occupy PE" << p.pe + 1 << " at step "
           << cs;
        add(table.pipelined_pes() ? Violation::Kind::kIssueConflict
                                  : Violation::Kind::kResourceConflict,
            os.str());
      }
    }
  }

  // 3. The master edge constraint.
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    if (!table.is_placed(e.from) || !table.is_placed(e.to)) continue;
    const long long k = e.delay;
    const long long ce_u = table.cb(e.from) +
                           g.node(e.from).time *
                               table.pe_speed(table.pe(e.from)) -
                           1;
    const long long cb_v = table.cb(e.to);
    const CommCost m = comm.cost(table.pe(e.from), table.pe(e.to), e.volume);
    if (cb_v + k * L < ce_u + m + 1) {
      std::ostringstream os;
      os << "edge " << g.node(e.from).name << "->" << g.node(e.to).name
         << " (delay " << k << ", volume " << e.volume << "): CB(v)+k*L = "
         << cb_v + k * L << " < CE(u)+M+1 = " << ce_u + m + 1 << " with M="
         << m << ", L=" << L;
      add(Violation::Kind::kDependence, os.str());
    }
  }

  // Deterministic report: order by (kind, message) and drop duplicates, so
  // callers can diff reports across runs and diagnostic bridges emit stable
  // output regardless of map iteration details above.
  const auto key = [](const Violation& v) {
    return std::tie(v.kind, v.message);
  };
  std::sort(report.violations.begin(), report.violations.end(),
            [&](const Violation& a, const Violation& b) {
              return key(a) < key(b);
            });
  report.violations.erase(
      std::unique(report.violations.begin(), report.violations.end(),
                  [&](const Violation& a, const Violation& b) {
                    return key(a) == key(b);
                  }),
      report.violations.end());

  return report;
}

int min_feasible_length(const Csdfg& g, const ScheduleTable& table,
                        const CommModel& comm) {
  CCS_EXPECTS(table.complete());
  long long needed = table.occupied_length();
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    const long long k = e.delay;
    const long long ce_u = table.cb(e.from) +
                           g.node(e.from).time *
                               table.pe_speed(table.pe(e.from)) -
                           1;
    const long long cb_v = table.cb(e.to);
    const CommCost m = comm.cost(table.pe(e.from), table.pe(e.to), e.volume);
    const long long slack = ce_u + m + 1 - cb_v;
    if (k == 0) {
      if (slack > 0) return -1;  // violated independently of L
    } else {
      // ceil(slack / k), only binding when positive.
      const long long bound = slack > 0 ? (slack + k - 1) / k : 0;
      needed = std::max(needed, bound);
    }
  }
  CCS_ENSURES(needed <= std::numeric_limits<int>::max());
  return static_cast<int>(needed);
}

}  // namespace ccs
