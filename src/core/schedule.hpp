// ccsched — the static cyclic schedule table.
//
// A schedule is a table of L control steps (rows, 1-based) by P processors
// (columns): one iteration of the loop body, repeated every L steps
// (Section 2: "a clock cycle is equivalent to one control step in the static
// schedule").  A task v placed at (CB(v), PE(v)) occupies its processor for
// control steps CB(v) .. CE(v) = CB(v)+t(v)-1; with pipelined processors
// (Section 2's "pipeline design" remark) only the issue step is occupied.
//
// The table supports the operations the paper's algorithms need: placement /
// removal, first-fit queries, extraction of the first row (rotation), the
// uniform upward shift that renumbers control steps after a rotation, and
// length adjustment (PSL may append empty steps).
#pragma once

#include <optional>
#include <vector>

#include "arch/topology.hpp"
#include "core/csdfg.hpp"

namespace ccs {

/// Where a task sits in the table.
struct Placement {
  PeId pe = 0;  ///< Executing processor.
  int cb = 0;   ///< First control step (1-based).
};

/// A (partial) static schedule of one CSDFG iteration on P processors.
///
/// Processors may be heterogeneous: each PE carries an integer speed
/// divisor (1 = nominal), and a task with base time t placed on a PE with
/// speed factor s executes for t*s control steps.  The paper assumes
/// homogeneous machines; the heterogeneous extension threads through the
/// whole pipeline (list scheduler, remapper, validator, simulator).
class ScheduleTable {
public:
  /// Creates an empty table for the tasks of `g` on `num_pes` homogeneous
  /// processors.  Task execution times are captured at construction (they
  /// never change; edge delays do, and the table is independent of those).
  /// When `pipelined_pes` is true a task occupies only its issue step.
  ScheduleTable(const Csdfg& g, std::size_t num_pes,
                bool pipelined_pes = false);

  /// Heterogeneous machine: pe_speeds[p] >= 1 is the slowdown factor of
  /// processor p (1 = nominal speed).  The processor count is
  /// pe_speeds.size().
  ScheduleTable(const Csdfg& g, std::vector<int> pe_speeds,
                bool pipelined_pes = false);

  [[nodiscard]] std::size_t num_pes() const noexcept { return num_pes_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return times_.size();
  }
  [[nodiscard]] bool pipelined_pes() const noexcept { return pipelined_; }

  /// Current schedule length L (control steps per iteration).  Grows
  /// automatically on placement; can be set explicitly (PSL padding) via
  /// set_length.
  [[nodiscard]] int length() const noexcept { return length_; }

  /// Smallest length covering every placed task (max CE, or 0 if empty).
  [[nodiscard]] int occupied_length() const noexcept;

  /// Sets the schedule length; must be >= occupied_length().
  void set_length(int length);

  /// Base execution time of task v as captured from the graph.
  [[nodiscard]] int time(NodeId v) const;

  /// Speed (slowdown) factor of processor `pe`; 1 on homogeneous machines.
  [[nodiscard]] int pe_speed(PeId pe) const;

  /// Effective execution time of v on `pe`: time(v) * pe_speed(pe).
  [[nodiscard]] int time_on(NodeId v, PeId pe) const;

  [[nodiscard]] bool is_placed(NodeId v) const;

  /// Number of placed tasks.
  [[nodiscard]] std::size_t placed_count() const noexcept { return placed_; }

  /// True when every task of the graph is placed.
  [[nodiscard]] bool complete() const noexcept {
    return placed_ == times_.size();
  }

  /// Placement of v; task must be placed.
  [[nodiscard]] Placement placement(NodeId v) const;

  /// First control step of v (CB); task must be placed.
  [[nodiscard]] int cb(NodeId v) const { return placement(v).cb; }

  /// Last control step of v (CE = CB + time_on(v, PE(v)) - 1); task must
  /// be placed.
  [[nodiscard]] int ce(NodeId v) const;

  /// Processor of v; task must be placed.
  [[nodiscard]] PeId pe(NodeId v) const { return placement(v).pe; }

  /// True iff processor `pe` has no occupant in steps [from, to].
  [[nodiscard]] bool is_free(PeId pe, int from, int to) const;

  /// The earliest control step >= `earliest` at which a task of duration
  /// `duration` fits on processor `pe` (ignoring any length limit — the
  /// caller decides whether the resulting CE is acceptable).
  [[nodiscard]] int first_free(PeId pe, int earliest, int duration) const;

  /// Occupant of (pe, cs), if any.
  [[nodiscard]] std::optional<NodeId> occupant(PeId pe, int cs) const;

  /// Places task v at (pe, cb).  Preconditions: v unplaced, cb >= 1, the
  /// processor is free over the occupied span.  Extends length() if needed.
  void place(NodeId v, PeId pe, int cb);

  /// Removes task v from the table (length is left unchanged).
  void remove(NodeId v);

  /// Tasks with CB == cs, ascending by node id.
  [[nodiscard]] std::vector<NodeId> nodes_starting_at(int cs) const;

  /// Shifts every placed task one control step earlier and shrinks the
  /// length by one.  Precondition: no task starts at step 1 (the rotation
  /// has already removed the first row) and length() >= 1.
  void shift_up();

  /// Repeatedly shift_up() while the first row has no task starting in it;
  /// returns the number of steps removed.  Trailing empty steps are NOT
  /// trimmed here (the length may be held above occupied_length() by PSL).
  int compact_leading();

  /// All placements as (node, placement) pairs for placed tasks, ascending
  /// node id.  Convenient for validators and printers.
  [[nodiscard]] std::vector<std::pair<NodeId, Placement>> placements() const;

  [[nodiscard]] bool operator==(const ScheduleTable&) const = default;

private:
  std::size_t num_pes_;
  bool pipelined_;
  std::vector<int> times_;
  std::vector<int> speeds_;
  std::vector<std::optional<Placement>> where_;
  /// grid_[pe][cs-1] = occupant node id, or npos when free.
  std::vector<std::vector<std::size_t>> grid_;
  int length_ = 0;
  std::size_t placed_ = 0;

  [[nodiscard]] int occupied_span(NodeId v, PeId pe) const {
    return pipelined_ ? 1 : times_[v] * speeds_[pe];
  }
  void ensure_rows(PeId pe, int cs);
};

}  // namespace ccs
