#include "core/unfold_schedule.hpp"

#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace ccs {

UnfoldedScheduleResult unfold_and_compact(const Csdfg& g, int factor,
                                          const Topology& topo,
                                          const CommModel& comm,
                                          const CycloCompactionOptions& options) {
  Unfolded unfolded = unfold(g, factor);
  CycloCompactionResult run = cyclo_compact(unfolded.graph, topo, comm, options);
  return {factor, std::move(unfolded), std::move(run)};
}

ScheduleTable unfold_table(const ScheduleTable& table, const Unfolded& unfolded,
                           int factor) {
  CCS_EXPECTS(factor >= 1);
  CCS_EXPECTS(table.complete());
  CCS_EXPECTS(table.occupied_length() <= table.length());
  CCS_EXPECTS(unfolded.copy_of.size() == table.node_count());

  std::vector<int> speeds(table.num_pes(), 1);
  for (PeId p = 0; p < table.num_pes(); ++p) speeds[p] = table.pe_speed(p);
  ScheduleTable flat(unfolded.graph, std::move(speeds), table.pipelined_pes());

  const int L = table.length();
  for (const auto& [v, p] : table.placements())
    for (int j = 0; j < factor; ++j)
      flat.place(unfolded.copy_of[v][static_cast<std::size_t>(j)], p.pe,
                 p.cb + j * L);
  flat.set_length(factor * L);
  return flat;
}

}  // namespace ccs
