#include "core/unfold_schedule.hpp"

#include <utility>

namespace ccs {

UnfoldedScheduleResult unfold_and_compact(const Csdfg& g, int factor,
                                          const Topology& topo,
                                          const CommModel& comm,
                                          const CycloCompactionOptions& options) {
  Unfolded unfolded = unfold(g, factor);
  CycloCompactionResult run = cyclo_compact(unfolded.graph, topo, comm, options);
  return {factor, std::move(unfolded), std::move(run)};
}

}  // namespace ccs
