// ccsched — the incremental remap engine (API v2).
//
// The remapping phase (Definitions 4.2/4.3, Lemmas 4.2/4.3) is the hot path
// of cyclo-compaction: for every rotated task v, every candidate processor
// p_j and every target length the anticipation function
//
//   AN(v, p_j) = max(1, max_i { CE(u_i) + M(PE(u_i), p_j, c(e_i)) + 1
//                               - k_i * L_target })
//
// bounds the earliest feasible start step.  The v1 surface (core/remap.hpp)
// recomputed AN from scratch for every (node, processor, target) probe and
// walked the schedule grid cell by cell for every slot test.  RemapEngine
// keeps the state those probes consult *incrementally*:
//
//  * per-PE occupancy bitsets (one word per 64 control steps) make the
//    slot-free test a handful of word probes instead of a cell walk;
//  * per-node predecessor contributions to AN are cached once per remap
//    call, grouped by edge delay so a target change is a multiply-add, and
//    delta-updated as rotated tasks are placed — only a rotated node's own
//    edges can change a cached bound (docs/ALGORITHM.md derives this from
//    Lemma 4.2);
//  * flat SoA arrays (start step, PE, CE) replace the map-shaped table in
//    the scheduler inner loop, with an origin offset so the post-rotation
//    uniform shift is a single integer increment.
//
// Lifecycle (the api_redesign core):
//
//     RemapEngine engine(g, comm);           // backend defaults per build
//     engine.bind(startup_table);            // import a complete schedule
//     for (pass ...) {
//       auto rotated = engine.rotate();      // Def. 4.1 + retiming r(J)+=1
//       auto len = engine.remap(rotated, previous, policy, selection, obs);
//       if (len) engine.commit(); else { engine.rollback(); break; }
//     }
//     ScheduleTable best = engine.table();
//
// The naive path stays as the referee: RemapBackend::kNaive routes remap()
// through the preserved v1 code (the statics below) and re-imports the
// result, so the fast path can never silently change results — the two
// backends are placement-for-placement identical and the differential test
// (tests/test_remap_engine.cpp) plus the CCS-S certifier enforce it.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "arch/comm_model.hpp"
#include "core/csdfg.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"

namespace ccs {

/// Remapping policy of Definition 4.2.
enum class RemapPolicy {
  kWithoutRelaxation,  ///< Never end a pass longer than it started.
  kWithRelaxation,     ///< Allow intermediate growth (best-so-far elsewhere).
};

/// How the remapper picks among feasible (processor, step) slots.
enum class RemapSelection {
  /// Predecessor bound + successor bound + slot availability — every slot
  /// offered is feasible for the already-placed neighbors (default).
  kBidirectional,
  /// The paper's literal procedure: predecessor-side AN only; successor
  /// violations surface as a larger PSL afterwards.  Kept for the ablation
  /// bench (A1/A2 in DESIGN.md).
  kAnticipationOnly,
};

/// Result of one remapping attempt.
struct RemapResult {
  bool success = false;  ///< Every rotated task was placed.
  int length = 0;        ///< Final table length (occupied + PSL padding).
};

/// Which implementation backs a RemapEngine.
enum class RemapBackend {
  /// Bitset slot tests + delta-maintained AN caches (the default).
  kIncremental,
  /// The preserved v1 code path — the referee the fast path is certified
  /// against.  Placement-for-placement identical to kIncremental.
  kNaive,
};

/// The build's default backend: kIncremental unless the tree was configured
/// with -DCCSCHED_REMAP_BACKEND=naive.
[[nodiscard]] RemapBackend default_remap_backend() noexcept;

/// Stable name ("incremental" / "naive") for reports and SolveResponse.
[[nodiscard]] std::string_view remap_backend_name(RemapBackend backend) noexcept;

/// Parses a backend name; nullopt on anything else.
[[nodiscard]] std::optional<RemapBackend> parse_remap_backend(
    std::string_view name) noexcept;

/// Remap cost accounting, accumulated across every remap() call of one
/// engine (and mirrored into the remap.* counters when an ObsContext with
/// metrics is supplied).  `slots_scanned` counts occupancy probes — grid
/// cells inspected on the naive backend, 64-step bitset words on the
/// incremental one — so the ratio between backends is the slot-test
/// speedup.  `an_cache_hits` counts AN evaluations answered from the
/// delta-maintained cache (always 0 on the naive backend);
/// `bitset_probes` counts bitset word fetches (always 0 on naive).
struct RemapStats {
  long long slots_scanned = 0;
  long long an_evaluations = 0;
  long long an_cache_hits = 0;
  long long bitset_probes = 0;
};

/// The incremental remap engine.  One engine serves one (graph, machine)
/// compaction run: bind() imports the start-up schedule, then each pass is
/// rotate() / remap() / commit()-or-rollback().  All views (table(),
/// graph(), retiming(), length()) reflect the *working* state; rollback()
/// restores the last committed state wholesale.
///
/// Not thread-safe; give each portfolio attempt its own engine.
class RemapEngine {
 public:
  /// Captures the graph (structure + current delays) and the communication
  /// model.  The model must outlive the engine.
  RemapEngine(const Csdfg& g, const CommModel& comm,
              RemapBackend backend = default_remap_backend());

  /// Imports a complete schedule of the construction graph: machine shape
  /// (PE count, speeds, pipelining) and every placement.  Resets the
  /// engine's graph delays and retiming to the construction state and
  /// commits.  May be called again to restart from a different table.
  void bind(const ScheduleTable& table);

  /// Rotates the first row (Definition 4.1): returns the tasks with
  /// CB == 1 (ascending id), removes them, applies the retiming
  /// r(J) += 1 to the working graph, and shifts every remaining task one
  /// step earlier.  Throws GraphError (engine untouched) if the retiming
  /// would be illegal.  Mirrors rotate_first_row exactly.
  std::vector<NodeId> rotate();

  /// One full remapping pass per Definition 4.2 over the working state:
  /// tries target lengths previous_length - 1, previous_length, then (with
  /// relaxation) successively longer targets.  On success the working
  /// state holds the new complete schedule and its length is returned; on
  /// failure returns nullopt with the working state back at the
  /// post-rotation base.  Emits the same events / counters / spans as the
  /// v1 remap_rotated, plus remap.an_cache_hit / remap.bitset_probe.
  [[nodiscard]] std::optional<int> remap(const std::vector<NodeId>& rotated,
                                         int previous_length,
                                         RemapPolicy policy,
                                         RemapSelection selection,
                                         const ObsContext& obs = {});

  /// Accepts the working state as the new committed state.
  void commit();

  /// Discards the working state and restores the last committed one
  /// (placements, length, graph delays, retiming).
  void rollback();

  /// True once bind() has run.
  [[nodiscard]] bool bound() const noexcept { return bound_; }
  [[nodiscard]] RemapBackend backend() const noexcept { return backend_; }
  [[nodiscard]] const RemapStats& stats() const noexcept { return stats_; }

  /// Working schedule length.
  [[nodiscard]] int length() const noexcept { return length_; }

  /// Working graph (delays as rotated so far).
  [[nodiscard]] const Csdfg& graph() const noexcept { return graph_; }

  /// Total retiming from the construction graph to graph().
  [[nodiscard]] const Retiming& retiming() const noexcept { return retiming_; }

  /// Materializes the working state as a ScheduleTable (requires every
  /// task placed, i.e. after a successful remap()/bind()).
  [[nodiscard]] ScheduleTable table() const;

  // --- The preserved v1 procedures (the naive referee). -------------------
  //
  // These are the exact pre-engine implementations; the deprecated free
  // functions in core/remap.hpp forward here.  `tally`, when non-null,
  // accumulates the RemapStats the engine reports for the naive backend.

  /// Anticipation function AN(v, pe) at `target_length` (Lemma 4.2).
  [[nodiscard]] static int anticipation(const Csdfg& g,
                                        const ScheduleTable& table,
                                        const CommModel& comm, NodeId v,
                                        PeId pe, int target_length);

  /// Latest start step of v on `pe` under every placed successor.
  [[nodiscard]] static int latest_start(const Csdfg& g,
                                        const ScheduleTable& table,
                                        const CommModel& comm, NodeId v,
                                        PeId pe, int target_length);

  /// Places every task of `rotated` into `table` at `target_length`.
  [[nodiscard]] static RemapResult try_remap(
      const Csdfg& g, ScheduleTable& table, const CommModel& comm,
      const std::vector<NodeId>& rotated, int target_length,
      RemapSelection selection, const ObsContext& obs = {},
      RemapStats* tally = nullptr);

  /// One full v1 remapping pass (Definition 4.2) over a table copy.
  [[nodiscard]] static std::optional<ScheduleTable> remap_rotated(
      const Csdfg& g, const ScheduleTable& table, const CommModel& comm,
      const std::vector<NodeId>& rotated, int previous_length,
      RemapPolicy policy,
      RemapSelection selection = RemapSelection::kBidirectional,
      const ObsContext& obs = {}, RemapStats* tally = nullptr);

 private:
  /// A cached bound contribution group: every placed static neighbor with
  /// the same edge delay k, folded per candidate processor.
  struct KGroup {
    long long k = 0;
    std::vector<long long> per_pe;  ///< max (AN) / min (latest) fold.
  };
  /// Delta entry from a rotated predecessor placed mid-attempt.
  struct DynAn {
    long long base = 0;  ///< CE(u) + 1 at the placement.
    long long k = 0;
    PeId pe = 0;
    std::size_t vol = 0;  ///< Volume index into cost_.
  };
  /// Delta entry from a rotated successor placed mid-attempt.
  struct DynLat {
    long long cb = 0;  ///< CB(w) at the placement.
    long long k = 0;
    PeId pe = 0;
    std::size_t vol = 0;
  };
  /// Delta entry for the neighbor-communication tie-break.
  struct DynComm {
    PeId pe = 0;
    std::size_t vol = 0;
    bool incoming = false;  ///< True: placed node is a predecessor.
  };
  /// Everything rollback() restores.
  struct Snapshot {
    std::vector<unsigned char> placed;
    std::vector<PeId> pe;
    std::vector<int> cb_phys;
    std::vector<std::vector<std::uint64_t>> bits;
    std::vector<int> delays;
    Retiming retiming{0};
    int origin = 0;
    int length = 0;
  };

  // Geometry helpers (logical step = physical step - origin_).
  [[nodiscard]] int span_of(NodeId v, PeId pe) const noexcept;
  [[nodiscard]] int time_on(NodeId v, PeId pe) const noexcept;
  [[nodiscard]] int lcb(NodeId v) const noexcept;  ///< Logical CB.
  [[nodiscard]] int lce(NodeId v) const noexcept;  ///< Logical CE.
  [[nodiscard]] bool complete() const noexcept;
  [[nodiscard]] int occupied_logical() const noexcept;
  [[nodiscard]] CommCost cost_at(std::size_t vol_idx, PeId from,
                                 PeId to) const noexcept;

  void import_table(const ScheduleTable& table);
  void place_working(NodeId v, PeId pe, int cb_logical);
  void unplace_working(NodeId v);
  void set_bits(PeId pe, int cb_phys, int span, bool value);

  /// First logical step >= earliest with `span` free steps on `pe`,
  /// counting one probe per bitset word examined.
  [[nodiscard]] int bitset_first_free(PeId pe, int earliest, int span,
                                      long long& probes) const;

  [[nodiscard]] std::optional<int> remap_incremental(
      const std::vector<NodeId>& rotated, int previous_length,
      RemapPolicy policy, RemapSelection selection, const ObsContext& obs);
  [[nodiscard]] std::optional<int> remap_naive(
      const std::vector<NodeId>& rotated, int previous_length,
      RemapPolicy policy, RemapSelection selection, const ObsContext& obs);

  void build_static_caches(const std::vector<NodeId>& rotated,
                           RemapSelection selection);
  [[nodiscard]] long long eval_an(NodeId v, PeId pe,
                                  long long target) const noexcept;
  [[nodiscard]] long long eval_latest(NodeId v, PeId pe,
                                      long long target) const noexcept;
  [[nodiscard]] long long eval_neighbor_comm(NodeId v,
                                             PeId pe) const noexcept;
  [[nodiscard]] int node_psl_bound_soa(NodeId v, PeId pe, int cb) const;
  [[nodiscard]] int min_feasible_soa() const;

  // Immutable after construction / bind().
  const CommModel* comm_;
  RemapBackend backend_;
  Csdfg base_graph_;  ///< Construction-time graph (pristine delays).
  std::size_t num_nodes_ = 0;
  std::size_t num_pes_ = 0;
  bool pipelined_ = false;
  bool bound_ = false;
  std::vector<int> times_;
  std::vector<int> speeds_;
  std::vector<std::size_t> evol_idx_;  ///< Edge -> volume index.
  std::vector<std::size_t> vols_;      ///< Sorted-unique edge volumes.
  std::vector<CommCost> cost_;         ///< [vol][from][to] flat.

  // Working state.
  Csdfg graph_;  ///< Delays track the working retiming.
  Retiming retiming_{0};
  std::vector<unsigned char> placed_;
  std::vector<PeId> wpe_;
  std::vector<int> wcb_;  ///< Physical CB; logical = wcb_ - origin_.
  std::vector<std::vector<std::uint64_t>> bits_;  ///< Physical occupancy.
  int origin_ = 0;
  int length_ = 0;

  Snapshot committed_;
  RemapStats stats_;

  // Per-remap-call scratch (sized to the graph, reused across calls).
  std::vector<std::vector<KGroup>> an_static_;
  std::vector<std::vector<KGroup>> lat_static_;
  std::vector<std::vector<long long>> ncomm_static_;
  std::vector<std::vector<DynAn>> dyn_an_;
  std::vector<std::vector<DynLat>> dyn_lat_;
  std::vector<std::vector<DynComm>> dyn_comm_;
  std::vector<NodeId> undo_;
};

}  // namespace ccs
