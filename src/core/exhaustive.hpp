// ccsched — exhaustive optimal scheduling for small instances.
//
// A branch-and-bound search over all (processor, step) placements that
// finds the true minimum static cyclic schedule length for a CSDFG on a
// machine, subject to the same master constraint the validator enforces.
// Exponential, usable to ~10 tasks — its purpose is calibration: the
// optimality-gap tests and the bench compare cyclo-compaction's heuristic
// results against ground truth, which the paper could not do.
//
// The search fixes a candidate length L and asks "is there a valid
// complete table of exactly this length?", trying L = lower bound upward.
// Placement order is the zero-delay topological order; pruning uses the
// per-task earliest start implied by already-placed predecessors.  Note
// that the search explores retimings implicitly ONLY through the given
// delays: it optimizes placement for the graph as handed in (schedule the
// retimed graph from cyclo-compaction to compare end results fairly).
#pragma once

#include <optional>

#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/schedule.hpp"

namespace ccs {

/// Search limits for the exhaustive scheduler.
struct ExhaustiveOptions {
  /// Hard cap on candidate lengths tried (inclusive); 0 derives a cap from
  /// the serial schedule (total computation + worst single transfer).
  int max_length = 0;
  /// Abort a single feasibility probe after this many search nodes
  /// (placement attempts); the probe then counts as "unknown" and the
  /// result is std::nullopt.  Guards against exponential blowup.
  long long max_search_nodes = 2'000'000;
};

/// The minimum-length valid schedule of `g` (with its CURRENT delays) on
/// `topo`/`comm`, or std::nullopt when the node budget was exhausted
/// before an answer was proven.  Deterministic.
[[nodiscard]] std::optional<ScheduleTable> optimal_schedule(
    const Csdfg& g, const Topology& topo, const CommModel& comm,
    const ExhaustiveOptions& options = {});

}  // namespace ccs
