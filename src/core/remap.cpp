#include "core/remap.hpp"

#include <algorithm>
#include <limits>

#include "core/validator.hpp"
#include "util/contracts.hpp"

namespace ccs {

int anticipation(const Csdfg& g, const ScheduleTable& table,
                 const CommModel& comm, NodeId v, PeId pe,
                 int target_length) {
  CCS_EXPECTS(v < g.node_count());
  CCS_EXPECTS(pe < table.num_pes());
  long long earliest = 1;
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.from == v) continue;  // self-loop: constrains PSL, not the slot
    if (!table.is_placed(e.from)) continue;
    const long long m = comm.cost(table.pe(e.from), pe, e.volume);
    const long long bound = table.ce(e.from) + m + 1 -
                            static_cast<long long>(e.delay) * target_length;
    earliest = std::max(earliest, bound);
  }
  CCS_ENSURES(earliest <= std::numeric_limits<int>::max());
  return static_cast<int>(earliest);
}

int latest_start(const Csdfg& g, const ScheduleTable& table,
                 const CommModel& comm, NodeId v, PeId pe,
                 int target_length) {
  CCS_EXPECTS(v < g.node_count());
  CCS_EXPECTS(pe < table.num_pes());
  long long latest = target_length - table.time_on(v, pe) + 1;
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.to == v) continue;  // self-loop
    if (!table.is_placed(e.to)) continue;
    const long long m = comm.cost(pe, table.pe(e.to), e.volume);
    // CB(w) + k*Lt >= CB(v) + t(v) - 1 + m + 1   =>   CB(v) <= bound.
    const long long bound = table.cb(e.to) +
                            static_cast<long long>(e.delay) * target_length -
                            m - table.time_on(v, pe);
    latest = std::min(latest, bound);
  }
  latest = std::min<long long>(latest, std::numeric_limits<int>::max());
  latest = std::max<long long>(latest, std::numeric_limits<int>::min() + 1);
  return static_cast<int>(latest);
}

namespace {

/// Total communication volume-cost between v (hypothetically on `pe`) and
/// its placed neighbors — the deterministic tie-break that prefers slots
/// keeping chatty neighbors close.
long long neighbor_comm(const Csdfg& g, const ScheduleTable& table,
                        const CommModel& comm, NodeId v, PeId pe) {
  long long total = 0;
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.from != v && table.is_placed(e.from))
      total += comm.cost(table.pe(e.from), pe, e.volume);
  }
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.to != v && table.is_placed(e.to))
      total += comm.cost(pe, table.pe(e.to), e.volume);
  }
  return total;
}

/// The PSL bound contributed by v's own delay-carrying edges if v sits at
/// (pe, cb): the smallest cyclic length under which every loop-carried
/// communication between v and its placed neighbors (and v's self-loops)
/// fits — ceil((CE + M + 1 - CB) / k) per edge, Lemma 4.3 restricted to v.
/// Trace-only (the remap_decision "psl" field); never on the untraced path.
int node_psl_bound(const Csdfg& g, const ScheduleTable& table,
                   const CommModel& comm, NodeId v, PeId pe, int cb) {
  const int ce_v = cb + table.time_on(v, pe) - 1;
  long long bound = 0;
  const auto fold = [&bound](long long numerator, long long delay) {
    if (numerator <= 0) return;
    bound = std::max(bound, (numerator + delay - 1) / delay);
  };
  for (EdgeId eid : g.in_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0) continue;
    if (e.from == v) {
      fold(ce_v + 1 - cb, e.delay);  // self-loop: M(pe, pe) = 0
    } else if (table.is_placed(e.from)) {
      fold(table.ce(e.from) + comm.cost(table.pe(e.from), pe, e.volume) + 1 -
               cb,
           e.delay);
    }
  }
  for (EdgeId eid : g.out_edges(v)) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0 || e.to == v) continue;
    if (table.is_placed(e.to))
      fold(ce_v + comm.cost(pe, table.pe(e.to), e.volume) + 1 -
               table.cb(e.to),
           e.delay);
  }
  return static_cast<int>(
      std::min<long long>(bound, std::numeric_limits<int>::max()));
}

/// The worst communication cost any single edge of `g` can incur on a
/// machine with `num_pes` processors under `comm` — used to bound the
/// with-relaxation target search.
long long worst_edge_cost(const Csdfg& g, const CommModel& comm,
                          std::size_t num_pes) {
  long long worst = 0;
  std::size_t max_volume = 1;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    max_volume = std::max(max_volume, g.edge(e).volume);
  for (PeId a = 0; a < num_pes; ++a)
    for (PeId b = 0; b < num_pes; ++b)
      worst = std::max(worst, static_cast<long long>(comm.cost(a, b, max_volume)));
  return worst;
}

}  // namespace

RemapResult try_remap(const Csdfg& g, ScheduleTable& table,
                      const CommModel& comm,
                      const std::vector<NodeId>& rotated, int target_length,
                      RemapSelection selection, const ObsContext& obs) {
  // Place long tasks first; ties broken by node id for determinism.
  std::vector<NodeId> order = rotated;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (g.node(a).time != g.node(b).time)
      return g.node(a).time > g.node(b).time;
    return a < b;
  });

  // Hot-loop tallies are accumulated locally and flushed once per call so
  // the per-slot cost with metrics enabled stays a register increment.  The
  // per-evaluation AN histogram follows the same rule: a local fixed-bucket
  // accumulator, folded into the profiler once per call, so profiling never
  // takes a lock inside the slot scan.
  long long an_evaluations = 0;
  long long slots_scanned = 0;
  const bool profiled = obs.profiling();
  const ObsSpan an_span = obs.span("remap.an");
  SpanHistogram an_hist;
  const auto flush_profile = [&] {
    if (profiled) obs.profiler->fold("an.eval", an_hist);
  };

  for (NodeId v : order) {
    CCS_ASSERT(!table.is_placed(v));
    bool found = false;
    int best_cb = 0;
    long long best_comm = 0;
    PeId best_pe = 0;
    int best_lo = 0;
    int best_hi = 0;

    for (PeId pe = 0; pe < table.num_pes(); ++pe) {
      ++slots_scanned;
      int lo;
      if (profiled) {
        const std::uint64_t t0 = span_now_ns();
        lo = anticipation(g, table, comm, v, pe, target_length);
        an_hist.add(span_now_ns() - t0);
      } else {
        lo = anticipation(g, table, comm, v, pe, target_length);
      }
      ++an_evaluations;
      const int hi = selection == RemapSelection::kBidirectional
                         ? latest_start(g, table, comm, v, pe, target_length)
                         : target_length - table.time_on(v, pe) + 1;
      if (lo > hi) continue;
      const int cb = table.first_free(pe, lo, g.node(v).time);
      if (cb > hi) continue;
      const long long cc = neighbor_comm(g, table, comm, v, pe);
      if (!found || cb < best_cb || (cb == best_cb && cc < best_comm)) {
        found = true;
        best_cb = cb;
        best_comm = cc;
        best_pe = pe;
        best_lo = lo;
        best_hi = hi;
      }
    }
    if (!found) {
      flush_profile();
      if (obs.metrics != nullptr) {
        obs.metrics->add("an.evaluations", an_evaluations);
        obs.metrics->add("remap.slots_scanned", slots_scanned);
        obs.count("remap.placement_failures");
      }
      if (obs.tracing()) {
        RemapDecisionEvent ev;
        ev.node = v;
        ev.accepted = false;
        ev.slots_scanned = static_cast<int>(table.num_pes());
        ev.reason = "no-feasible-slot";
        obs.emit(ev);
      }
      return {false, table.length()};
    }
    if (obs.tracing()) {
      RemapDecisionEvent ev;
      ev.node = v;
      ev.accepted = true;
      ev.pe = best_pe;
      ev.cb = best_cb;
      ev.an = best_lo;
      ev.latest = best_hi;
      ev.psl = node_psl_bound(g, table, comm, v, best_pe, best_cb);
      ev.slots_scanned = static_cast<int>(table.num_pes());
      ev.reason = "placed";
      obs.emit(ev);
    }
    table.place(v, best_pe, best_cb);
    obs.count("remap.placements");
  }
  flush_profile();
  if (obs.metrics != nullptr) {
    obs.metrics->add("an.evaluations", an_evaluations);
    obs.metrics->add("remap.slots_scanned", slots_scanned);
  }

  // The remap may have vacated the leading rows; pull everything up (a
  // uniform shift preserves every constraint).
  table.set_length(std::max(table.length(), table.occupied_length()));
  table.compact_leading();

  // PSL padding: the smallest cyclic length satisfying every loop-carried
  // communication ("the algorithm will assign empty control steps to
  // compensate the communication requirements").
  const int needed = min_feasible_length(g, table, comm);
  obs.count("psl.evaluations");
  if (needed < 0) {
    // An intra-iteration constraint is broken — only reachable with
    // kAnticipationOnly, whose successor dependences are unchecked.
    obs.count("psl.rejections");
    obs.emit(PslPadEvent{needed, table.length()});
    return {false, table.length()};
  }
  table.set_length(std::max(table.occupied_length(), needed));
  obs.emit(PslPadEvent{needed, table.length()});
  return {true, table.length()};
}

std::optional<ScheduleTable> remap_rotated(const Csdfg& g,
                                           const ScheduleTable& table,
                                           const CommModel& comm,
                                           const std::vector<NodeId>& rotated,
                                           int previous_length,
                                           RemapPolicy policy,
                                           RemapSelection selection,
                                           const ObsContext& obs) {
  CCS_EXPECTS(previous_length >= 1);
  const ScopedTimer timer(obs.metrics, "time.remap");
  const ObsSpan remap_span = obs.span("remap");

  const int first_target = std::max(1, previous_length - 1);
  int last_target = previous_length;
  if (policy == RemapPolicy::kWithRelaxation) {
    // A generous sufficient target: the whole shifted table, every rotated
    // task serialized after it, and one worst-case transfer of slack.  If
    // even this fails, the input table was not a valid schedule.
    long long cap = previous_length + 1 +
                    worst_edge_cost(g, comm, table.num_pes());
    int max_speed = 1;
    for (PeId p = 0; p < table.num_pes(); ++p)
      max_speed = std::max(max_speed, table.pe_speed(p));
    for (NodeId v : rotated) cap += g.node(v).time * max_speed;
    last_target =
        static_cast<int>(std::min<long long>(cap, std::numeric_limits<int>::max() / 2));
  }

  for (int target = first_target; target <= last_target; ++target) {
    ScheduleTable attempt = table;
    if (attempt.length() > target) continue;
    const ObsSpan target_span = obs.span("remap.target");
    obs.count("remap.target_attempts");
    obs.emit(RemapTargetEvent{target, target > previous_length});
    RemapResult r = try_remap(g, attempt, comm, rotated, target, selection,
                              obs);
    if (!r.success) continue;
    if (policy == RemapPolicy::kWithoutRelaxation &&
        r.length > previous_length) {
      // The placement succeeded but the PSL padding overshot the budget.
      obs.count("psl.rejections");
      continue;
    }
    return attempt;
  }
  return std::nullopt;
}

}  // namespace ccs
