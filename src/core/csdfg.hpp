// ccsched — communication-sensitive data-flow graphs.
//
// Section 2 of the paper: a CSDFG G = (V, E, d, t, c) is a node- and
// edge-weighted directed graph where
//   * t : V -> Z+  is the computation time of each task,
//   * d : E -> Z>=0 counts the loop-carried delays on a dependence edge
//     (an edge u->v with d(e)=k means iteration j of v consumes the value
//     produced by iteration j-k of u; k=0 is an intra-iteration dependence),
//   * c : E -> Z+  is the data volume shipped when the endpoints execute on
//     different processors.
// A legal CSDFG has strictly positive total delay around every cycle —
// otherwise an iteration would depend on its own future.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ccs {

/// Identifier of a task node; nodes are numbered 0 .. node_count()-1 in
/// insertion order.
using NodeId = std::size_t;

/// Identifier of a dependence edge; edges are numbered 0 .. edge_count()-1 in
/// insertion order.
using EdgeId = std::size_t;

/// A computational task.
struct Node {
  std::string name;  ///< Human-readable label ("A", "mul3", ...).
  int time = 1;      ///< Computation time t(v) in control steps, >= 1.
};

/// A dependence between two tasks.
struct Edge {
  NodeId from = 0;         ///< Producer task u.
  NodeId to = 0;           ///< Consumer task v.
  int delay = 0;           ///< Loop-carried delay count d(e), >= 0.
  std::size_t volume = 1;  ///< Data volume c(e) shipped across PEs, >= 1.
};

/// A communication-sensitive data-flow graph.
///
/// The structure (nodes, edge endpoints, times, volumes) is immutable after
/// insertion; edge *delays* are mutable because retiming — the engine behind
/// the paper's rotation phase — redistributes them.  Use Retiming::apply (or
/// set_delay for tests) to change them; both enforce non-negativity.
///
/// Parallel edges and self-loops with positive delay are permitted (a
/// self-loop models a task depending on its own previous iteration).
class Csdfg {
public:
  Csdfg() = default;

  /// Creates a named graph (name appears in reports and DOT output).
  explicit Csdfg(std::string name) : name_(std::move(name)) {}

  /// Adds a task with computation time `time` (>= 1, enforced).  If `name`
  /// is empty a name is synthesized from the node index.  Returns the new
  /// node's id.
  NodeId add_node(std::string name, int time);

  /// Adds a dependence edge u -> v with `delay` loop-carried delays (>= 0)
  /// and inter-processor data volume `volume` (>= 1).  Zero-delay self-loops
  /// are rejected (they would be an unsatisfiable dependence).  Returns the
  /// new edge's id.
  EdgeId add_edge(NodeId from, NodeId to, int delay, std::size_t volume = 1);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] const Node& node(NodeId v) const;
  [[nodiscard]] const Edge& edge(EdgeId e) const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Ids of edges leaving `v`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId v) const;

  /// Ids of edges entering `v`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId v) const;

  /// Looks up a node by name; throws GraphError if absent or ambiguous.
  [[nodiscard]] NodeId node_by_name(const std::string& name) const;

  /// Overwrites the delay of edge `e` (must stay >= 0; zero-delay self-loops
  /// remain rejected).  Intended for Retiming::apply and for tests.
  void set_delay(EdgeId e, int delay);

  /// Total computation time over all nodes.
  [[nodiscard]] long long total_computation() const noexcept;

  /// Total delay count over all edges.
  [[nodiscard]] long long total_delay() const noexcept;

  /// True iff every cycle carries at least one delay, i.e. the zero-delay
  /// subgraph is acyclic.  (Delays are non-negative, so this is exactly the
  /// paper's "strictly positive delay cycles" legality condition.)
  [[nodiscard]] bool is_legal() const;

  /// Throws GraphError with a diagnostic if !is_legal().
  void require_legal() const;

private:
  std::string name_ = "csdfg";
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace ccs
