// ccsched — per-request deadline accounting for the serve loop.
//
// A serving deadline is a property of the *request*, not of any single
// solve attempt: the clock starts at admission, keeps running while the
// request waits in the queue, and whatever is left when a worker finally
// picks it up is the budget the solver may spend.  RequestDeadline owns
// that bookkeeping on the same injectable BudgetClock the run-budget
// machinery already uses (core/budget.hpp), so tests can crank time by
// hand and replay a queue-expiry or mid-solve timeout deterministically.
//
// The contract mirrors the degradation ladder in docs/SERVE.md:
//
//  * expired() at admission  -> CCS-E003 rejection, no work at all;
//  * expired() at dequeue    -> CCS-E003 rejection (the request aged out
//    while queued — spending solver time on it only hurts its neighbors);
//  * otherwise remaining_ms() picks the ladder rung and budget() hands
//    the solver a RunBudget that stops the run at the request deadline,
//    not at some fresh per-attempt deadline.
#pragma once

#include "core/budget.hpp"

namespace ccs {

/// Snapshot of one request's wall-clock allowance.  Copyable and cheap;
/// the clock pointer is non-owning and must outlive the request.
class RequestDeadline {
public:
  /// `deadline_ms` <= 0 means unlimited (the has_deadline=false case —
  /// callers reject non-positive *explicit* deadlines before building
  /// one of these).  Null `clock` selects the process steady clock.
  RequestDeadline(long long deadline_ms, const BudgetClock* clock);

  [[nodiscard]] bool unlimited() const noexcept { return deadline_ms_ <= 0; }

  /// Milliseconds still available, clamped at 0.  Unlimited deadlines
  /// report kUnlimitedMs.
  [[nodiscard]] long long remaining_ms() const;

  /// True when a limited deadline has fully elapsed.
  [[nodiscard]] bool expired() const { return remaining_ms() <= 0; }

  /// Derives the RunBudget for a solve attempt starting *now*: the
  /// remaining wall-clock allowance on this request's clock, plus the
  /// caller's external stop signal (the serve drain token).  An unlimited
  /// deadline yields a budget with no deadline condition — the stop token
  /// still applies, so a draining service can preempt unbudgeted work.
  [[nodiscard]] RunBudget budget(const BudgetStopToken* stop) const;

  [[nodiscard]] const BudgetClock& clock() const noexcept { return *clock_; }

  static constexpr long long kUnlimitedMs = 1'000'000'000'000;

private:
  long long deadline_ms_ = 0;
  long long admitted_ms_ = 0;
  const BudgetClock* clock_ = nullptr;  // never null after construction
};

}  // namespace ccs
