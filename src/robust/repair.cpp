#include "robust/repair.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "arch/comm_model.hpp"
#include "core/list_scheduler.hpp"
#include "core/remap_engine.hpp"
#include "util/error.hpp"

namespace ccs {

namespace {

/// A rung's candidate: the table plus the graph/retiming it satisfies.
struct Candidate {
  ScheduleTable table;
  Csdfg graph;
  Retiming retiming;
};

/// Projects the original machine's per-PE speeds onto the survivors.
std::vector<int> project_speeds(const std::vector<int>& speeds,
                                const std::vector<PeId>& to_original) {
  if (speeds.empty()) return {};
  std::vector<int> out;
  out.reserve(to_original.size());
  for (PeId p : to_original)
    out.push_back(p < speeds.size() ? speeds[p] : 1);
  return out;
}

/// An empty table for `g` on a machine of `num_pes` survivors.
ScheduleTable empty_table(const Csdfg& g, std::size_t num_pes,
                          const std::vector<int>& speeds, bool pipelined) {
  if (speeds.empty()) return {g, num_pes, pipelined};
  return {g, speeds, pipelined};
}

}  // namespace

ReducedMachine reduce_machine(const Topology& topo, const FaultPlan& plan) {
  ReducedMachine rm;
  std::vector<bool> is_dead(topo.size(), false);
  for (PeId p : plan.dead_pes())
    if (p < topo.size()) is_dead[p] = true;

  rm.from_original.assign(topo.size(), kNoPe);
  for (PeId p = 0; p < topo.size(); ++p) {
    if (is_dead[p]) continue;
    rm.from_original[p] = rm.to_original.size();
    rm.to_original.push_back(p);
  }
  if (rm.to_original.empty()) return rm;

  std::set<std::pair<PeId, PeId>> cut;
  for (const auto& [a, b] : plan.dead_links()) cut.insert({a, b});

  std::vector<std::pair<PeId, PeId>> links;
  for (const auto& [a, b] : topo.links()) {
    if (is_dead[a] || is_dead[b]) continue;
    if (cut.count({std::min(a, b), std::max(a, b)}) != 0) continue;
    links.emplace_back(rm.from_original[a], rm.from_original[b]);
  }

  try {
    rm.topo.emplace(rm.to_original.size(), std::move(links), topo.directed(),
                    topo.name() + "/reduced");
    rm.connected = true;
  } catch (const ArchitectureError&) {
    // The survivors do not form a connected machine; only the serial rung
    // can save this plan.
    rm.topo.reset();
    rm.connected = false;
  }
  return rm;
}

std::string_view repair_rung_name(RepairRung rung) {
  switch (rung) {
    case RepairRung::kRemap: return "remap";
    case RepairRung::kRecompactRelax: return "recompact-relax";
    case RepairRung::kRecompactStrict: return "recompact-strict";
    case RepairRung::kListSchedule: return "list-schedule";
    case RepairRung::kSerial: return "serial";
    case RepairRung::kInfeasible: return "infeasible";
  }
  return "infeasible";
}

RepairOutcome repair_schedule(const Csdfg& g,
                              const CycloCompactionResult& baseline,
                              const Topology& topo, const FaultPlan& plan,
                              const RepairOptions& options,
                              const ObsContext& obs) {
  g.require_legal();
  const ScopedTimer timer(obs.metrics, "time.repair");
  const ObsSpan repair_span = obs.span("repair");

  RepairOutcome out;
  out.graph = g;
  out.retiming = Retiming(g.node_count());

  const ReducedMachine rm = reduce_machine(topo, plan);

  // Orphans: tasks whose baseline placement died with its processor (plus,
  // defensively, anything the baseline never placed).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (!baseline.best.is_placed(v)) {
      out.orphans.push_back(v);
      continue;
    }
    const PeId p = baseline.best.pe(v);
    if (p >= rm.from_original.size() || rm.from_original[p] == kNoPe)
      out.orphans.push_back(v);
  }

  const auto record = [&](RepairRung rung, bool ok, int length,
                          const std::string& detail) {
    obs.count("repair.attempts");
    obs.emit(RepairEvent{std::string(repair_rung_name(rung)), ok, length,
                         detail});
    out.attempts.push_back(std::string(repair_rung_name(rung)) + ": " +
                           detail);
  };

  const auto accept = [&](RepairRung rung, Candidate cand,
                          const Topology& machine,
                          std::vector<PeId> to_original, std::string detail) {
    record(rung, true, cand.table.length(), detail);
    out.rung = rung;
    out.success = true;
    out.schedule = std::move(cand.table);
    out.machine = machine;
    out.to_original = std::move(to_original);
    out.graph = std::move(cand.graph);
    out.retiming = std::move(cand.retiming);
    out.detail = std::move(detail);
    obs.count("repair.successes");
  };

  // Certifies a candidate from first principles; on failure appends a rung
  // attempt line carrying the error count.
  const auto certify_failure_detail = [](const DiagnosticBag& bag) {
    std::ostringstream os;
    os << "candidate failed certification (" << bag.count(Severity::kError)
       << " error(s))";
    return os.str();
  };

  if (rm.connected) {
    const StoreAndForwardModel comm(*rm.topo);
    const std::vector<int> speeds =
        project_speeds(options.pe_speeds, rm.to_original);

    // --- rung 0: keep the survivors, remap only the orphans ---------------
    {
      const ObsSpan rung_span = obs.span("repair.remap");
      ScheduleTable base = empty_table(baseline.retimed_graph,
                                       rm.topo->size(), speeds,
                                       options.pipelined_pes);
      std::vector<bool> orphaned(g.node_count(), false);
      for (NodeId v : out.orphans) orphaned[v] = true;
      for (NodeId v = 0; v < g.node_count(); ++v) {
        if (orphaned[v]) continue;
        base.place(v, rm.from_original[baseline.best.pe(v)],
                   baseline.best.cb(v));
      }
      base.set_length(std::max(baseline.best.length(),
                               base.occupied_length()));

      bool rung_recorded = false;
      const int start_target = base.length();
      for (int slack = 0; slack <= options.max_remap_slack; ++slack) {
        ScheduleTable attempt = base;
        const RemapResult r = RemapEngine::try_remap(
            baseline.retimed_graph, attempt, comm, out.orphans,
            start_target + slack, RemapSelection::kBidirectional, obs);
        if (!r.success) continue;

        DiagnosticBag bag;
        Candidate cand{std::move(attempt), baseline.retimed_graph,
                       baseline.retiming};
        if (certify_table(cand.graph, cand.table, comm, "repair/remap", bag,
                          options.certify)) {
          std::ostringstream os;
          os << "re-placed " << out.orphans.size() << " orphan task(s) on "
             << rm.survivors() << " survivor(s), length "
             << cand.table.length();
          accept(RepairRung::kRemap, std::move(cand), *rm.topo,
                 rm.to_original, os.str());
        } else {
          // The violation involves the frozen survivor placements; a longer
          // target cannot fix those, so fall through to recompaction.
          bag.finalize();
          record(RepairRung::kRemap, false, r.length,
                 certify_failure_detail(bag));
        }
        rung_recorded = true;
        break;
      }
      if (!rung_recorded)
        record(RepairRung::kRemap, false, 0,
               "no placement for " + std::to_string(out.orphans.size()) +
                   " orphan(s) within " +
                   std::to_string(options.max_remap_slack) +
                   " steps of slack");
    }

    // --- rungs 1 + 2: recompact from scratch on the reduced machine -------
    const std::pair<RepairRung, RemapPolicy> recompact[] = {
        {RepairRung::kRecompactRelax, RemapPolicy::kWithRelaxation},
        {RepairRung::kRecompactStrict, RemapPolicy::kWithoutRelaxation},
    };
    for (const auto& [rung, policy] : recompact) {
      if (out.success) break;
      const ObsSpan rung_span =
          obs.span(std::string("repair.") +
                   std::string(repair_rung_name(rung)));
      CycloCompactionOptions copts = options.compaction;
      copts.policy = policy;
      copts.startup.pipelined_pes = options.pipelined_pes;
      copts.startup.pe_speeds = speeds;
      const CycloCompactionResult rerun =
          cyclo_compact(g, *rm.topo, comm, copts, obs);

      DiagnosticBag bag;
      Candidate cand{rerun.best, rerun.retimed_graph, rerun.retiming};
      if (certify_table(cand.graph, cand.table, comm,
                        std::string("repair/") +
                            std::string(repair_rung_name(rung)),
                        bag, options.certify)) {
        std::ostringstream os;
        os << "recompacted on " << rm.survivors() << " survivor(s), length "
           << cand.table.length() << " (best pass " << rerun.best_pass << ")";
        accept(rung, std::move(cand), *rm.topo, rm.to_original, os.str());
      } else {
        bag.finalize();
        record(rung, false, cand.table.length(),
               certify_failure_detail(bag));
      }
    }

    // --- rung 3: plain start-up schedule, no compaction -------------------
    if (!out.success) {
      const ObsSpan rung_span = obs.span("repair.list-schedule");
      StartUpOptions sopts = options.compaction.startup;
      sopts.pipelined_pes = options.pipelined_pes;
      sopts.pe_speeds = speeds;
      sopts.comm_aware = true;
      ScheduleTable table = start_up_schedule(g, *rm.topo, comm, sopts, obs);

      DiagnosticBag bag;
      Candidate cand{std::move(table), g, Retiming(g.node_count())};
      if (certify_table(cand.graph, cand.table, comm, "repair/list-schedule",
                        bag, options.certify)) {
        std::ostringstream os;
        os << "start-up schedule on " << rm.survivors()
           << " survivor(s), length " << cand.table.length();
        accept(RepairRung::kListSchedule, std::move(cand), *rm.topo,
               rm.to_original, os.str());
      } else {
        bag.finalize();
        record(RepairRung::kListSchedule, false, cand.table.length(),
               certify_failure_detail(bag));
      }
    }
  } else if (rm.survivors() > 0) {
    out.attempts.push_back(
        "survivors disconnected: only the serial rung is available");
  }

  // --- rung 4: serialize everything on one surviving processor ------------
  if (!out.success && rm.survivors() > 0) {
    const ObsSpan rung_span = obs.span("repair.serial");
    const PeId host = rm.to_original.front();
    const Topology serial(1, {}, false,
                          "serial(p" + std::to_string(host) + ")");
    const StoreAndForwardModel comm(serial);
    std::vector<int> speed;
    if (!options.pe_speeds.empty() && host < options.pe_speeds.size())
      speed = {options.pe_speeds[host]};
    StartUpOptions sopts = options.compaction.startup;
    sopts.pipelined_pes = options.pipelined_pes;
    sopts.pe_speeds = speed;
    sopts.comm_aware = true;
    ScheduleTable table = start_up_schedule(g, serial, comm, sopts, obs);

    DiagnosticBag bag;
    Candidate cand{std::move(table), g, Retiming(g.node_count())};
    if (certify_table(cand.graph, cand.table, comm, "repair/serial", bag,
                      options.certify)) {
      std::ostringstream os;
      os << "all tasks serialized on p" << host << ", length "
         << cand.table.length();
      accept(RepairRung::kSerial, std::move(cand), serial, {host}, os.str());
    } else {
      bag.finalize();
      record(RepairRung::kSerial, false, cand.table.length(),
             certify_failure_detail(bag));
    }
  }

  if (!out.success) {
    out.detail = rm.survivors() == 0
                     ? "every processor fails: no machine survives the plan"
                     : "no rung produced a certifiable schedule";
    obs.count("repair.infeasible");
  }
  return out;
}

}  // namespace ccs
