#include "robust/deadline.hpp"

namespace ccs {

namespace {

const BudgetClock& steady_clock_instance() {
  static const SteadyBudgetClock clock;
  return clock;
}

}  // namespace

RequestDeadline::RequestDeadline(long long deadline_ms,
                                 const BudgetClock* clock)
    : deadline_ms_(deadline_ms),
      clock_(clock != nullptr ? clock : &steady_clock_instance()) {
  admitted_ms_ = clock_->now_ms();
}

long long RequestDeadline::remaining_ms() const {
  if (unlimited()) return kUnlimitedMs;
  const long long spent = clock_->now_ms() - admitted_ms_;
  const long long left = deadline_ms_ - spent;
  return left > 0 ? left : 0;
}

RunBudget RequestDeadline::budget(const BudgetStopToken* stop) const {
  RunBudget b;
  b.stop = stop;
  if (!unlimited()) {
    b.deadline_ms = remaining_ms();
    // The budget measures from the start of the run it governs, so the
    // request clock doubles as the run clock: remaining_ms shrinks as the
    // run spends it.
    b.clock = clock_;
    if (b.deadline_ms <= 0) b.deadline_ms = 1;  // expired -> stop at once
  }
  return b;
}

}  // namespace ccs
