// ccsched — the fault model: what can break, and when.
//
// The paper's static cyclic schedules assume every processor, link, and
// task time behaves exactly as modeled.  The resilience subsystem drops
// that assumption: a FaultPlan describes fail-stop processors, dead links,
// and per-task timing jitter, parsed from a small line-oriented spec:
//
//   # comment
//   fail p2 @iter 3          # PE 2 stops executing from iteration 3 on
//   link p0 p1 @iter 5       # the p0<->p1 link drops from iteration 5 on
//   jitter C +2              # task C runs 2 steps longer than modeled
//
// Iterations are 0-based, matching the simulator; `@iter 0` (or omitting
// the clause) means "from the first iteration".  Processors are named
// `p<index>` with 0-based indices; tasks are named as in the graph file.
//
// Parsing follows the repo's two-layer convention (io/text_format.hpp):
// a lenient spec parser that records every directive with its source line
// and reports syntax problems as CCS-F001 diagnostics, plus a binding
// step that resolves names against a concrete graph + topology and
// reports resolution problems as CCS-F002.  Neither layer ever throws on
// bad input.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"

namespace ccs {

// --- Raw spec (names unresolved) -------------------------------------------

/// One `fail` directive as written.
struct RawPeFault {
  std::string pe;           ///< Processor name, e.g. "p2".
  long long iteration = 0;  ///< First affected iteration (0-based).
  std::size_t line = 0;
};

/// One `link` directive as written.
struct RawLinkFault {
  std::string a, b;         ///< Endpoint names, e.g. "p0" "p1".
  long long iteration = 0;
  std::size_t line = 0;
};

/// One `jitter` directive as written.
struct RawJitter {
  std::string task;   ///< Task name, unresolved.
  int delta = 0;      ///< Signed execution-time delta in control steps.
  std::size_t line = 0;
};

/// A fault spec, structurally parsed but unresolved.
struct FaultSpec {
  std::string file = "<faults>";
  std::vector<RawPeFault> pe_faults;
  std::vector<RawLinkFault> link_faults;
  std::vector<RawJitter> jitters;

  [[nodiscard]] bool empty() const noexcept {
    return pe_faults.empty() && link_faults.empty() && jitters.empty();
  }
};

/// Parses the fault-spec grammar leniently: directives that scan are
/// recorded verbatim; lines that do not are CCS-F001 diagnostics with
/// their source line, then skipped.  Never throws.  `filename` labels
/// the spans.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text,
                                         const std::string& filename,
                                         DiagnosticBag& bag);

// --- Bound plan (resolved against a graph + topology) ----------------------

/// A fail-stop processor: executes nothing from `iteration` on.
struct PeFault {
  PeId pe = 0;
  long long iteration = 0;
};

/// A dead link: carries no message whose transfer begins at or after
/// `iteration` of the consumer, in either direction.
struct LinkFault {
  PeId a = 0, b = 0;
  long long iteration = 0;
};

/// Timing jitter: task `node` executes for max(1, t(v) + delta) steps in
/// every iteration.
struct JitterFault {
  NodeId node = 0;
  int delta = 0;
};

/// A fault plan bound to one (graph, topology) pair, ready for injection
/// into the simulator (sim/executor.hpp) and the repair pass
/// (robust/repair.hpp).
struct FaultPlan {
  std::vector<PeFault> pe_faults;
  std::vector<LinkFault> link_faults;
  std::vector<JitterFault> jitters;

  [[nodiscard]] bool empty() const noexcept {
    return pe_faults.empty() && link_faults.empty() && jitters.empty();
  }

  /// True when `pe` is dead at (0-based) iteration `iter`.
  [[nodiscard]] bool pe_dead(PeId pe, long long iter) const;

  /// True when the (a,b) link is down at iteration `iter` (direction
  /// agnostic — links fail whole).
  [[nodiscard]] bool link_dead(PeId a, PeId b, long long iter) const;

  /// Execution-time delta for `node` (sum over matching jitter lines).
  [[nodiscard]] int jitter_of(NodeId node) const;

  /// Every processor that fails at any point in the plan, ascending,
  /// deduplicated — the terminal machine state the repair pass targets.
  [[nodiscard]] std::vector<PeId> dead_pes() const;

  /// Every link that fails at any point, normalized (a <= b), ascending,
  /// deduplicated.
  [[nodiscard]] std::vector<std::pair<PeId, PeId>> dead_links() const;
};

/// Resolves `spec` against `g` and `topo`: processor names must index a
/// PE of the topology, link endpoints must name an existing link, task
/// names must resolve uniquely in the graph.  Unresolvable directives
/// are CCS-F002 diagnostics and are dropped; everything else lands in
/// the returned plan.  A plan that kills every processor is legal here —
/// the repair pass reports it infeasible.
[[nodiscard]] FaultPlan bind_fault_spec(const FaultSpec& spec, const Csdfg& g,
                                        const Topology& topo,
                                        DiagnosticBag& bag);

/// One line per fault, the spec grammar round-tripped (stable order:
/// fail, link, jitter; by iteration then index).  Diagnostic aid for the
/// CLI's fault report.
[[nodiscard]] std::string describe_fault_plan(const FaultPlan& plan,
                                              const Csdfg& g);

}  // namespace ccs
