#include "robust/fault_plan.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/lines.hpp"

namespace ccs {

namespace {

/// Caps accepted by the spec parser: hostile inputs must not be able to
/// drive downstream loops or allocations to absurd sizes.
constexpr long long kMaxIteration = 1'000'000'000'000LL;
constexpr int kMaxJitter = 1'000'000;

/// Parses the `@iter N` suffix; returns false (with a message) on junk.
bool parse_iter_clause(std::istringstream& ls, long long& iteration,
                       std::string& problem) {
  iteration = 0;
  std::string at;
  if (!(ls >> at)) return true;  // optional clause absent
  if (at != "@iter") {
    problem = "expected '@iter <n>', got '" + at + "'";
    return false;
  }
  if (!(ls >> iteration) || iteration < 0 || iteration > kMaxIteration) {
    problem = "@iter expects an integer in [0, 1e12]";
    return false;
  }
  return true;
}

/// Rejects trailing junk after a fully parsed directive.
bool line_exhausted(std::istringstream& ls, std::string& problem) {
  std::string extra;
  if (ls >> extra) {
    problem = "trailing junk '" + extra + "'";
    return false;
  }
  return true;
}

/// Resolves "p<index>" to a PE of `topo`; npos-like failure via bool.
bool resolve_pe(const std::string& name, const Topology& topo, PeId& out) {
  if (name.size() < 2 || name[0] != 'p') return false;
  long long v = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + (name[i] - '0');
    if (v > static_cast<long long>(topo.size())) return false;
  }
  if (v >= static_cast<long long>(topo.size())) return false;
  out = static_cast<PeId>(v);
  return true;
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text,
                           const std::string& filename, DiagnosticBag& bag) {
  FaultSpec spec;
  spec.file = filename;
  const auto syntax = [&](std::size_t line, std::string message) {
    bag.add("CCS-F001", SourceSpan{filename, line}, std::move(message));
  };

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    normalize_parsed_line(line, lineno == 1);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;

    std::string problem;
    if (keyword == "fail") {
      RawPeFault f;
      f.line = lineno;
      if (!(ls >> f.pe)) {
        syntax(lineno, "fail: expected <pe> [@iter <n>]");
        continue;
      }
      if (!parse_iter_clause(ls, f.iteration, problem) ||
          !line_exhausted(ls, problem)) {
        syntax(lineno, "fail: " + problem);
        continue;
      }
      spec.pe_faults.push_back(std::move(f));
    } else if (keyword == "link") {
      RawLinkFault f;
      f.line = lineno;
      if (!(ls >> f.a >> f.b)) {
        syntax(lineno, "link: expected <peA> <peB> [@iter <n>]");
        continue;
      }
      if (!parse_iter_clause(ls, f.iteration, problem) ||
          !line_exhausted(ls, problem)) {
        syntax(lineno, "link: " + problem);
        continue;
      }
      spec.link_faults.push_back(std::move(f));
    } else if (keyword == "jitter") {
      RawJitter j;
      j.line = lineno;
      std::string delta;
      if (!(ls >> j.task >> delta)) {
        syntax(lineno, "jitter: expected <task> <+n|-n>");
        continue;
      }
      if (delta.empty() || (delta[0] != '+' && delta[0] != '-')) {
        syntax(lineno, "jitter: delta must carry an explicit sign, got '" +
                           delta + "'");
        continue;
      }
      try {
        const long long v = std::stoll(delta);
        if (v > kMaxJitter || v < -kMaxJitter)
          throw std::out_of_range("jitter");
        j.delta = static_cast<int>(v);
      } catch (const std::exception&) {
        syntax(lineno, "jitter: bad delta '" + delta + "'");
        continue;
      }
      if (!line_exhausted(ls, problem)) {
        syntax(lineno, "jitter: " + problem);
        continue;
      }
      spec.jitters.push_back(std::move(j));
    } else {
      syntax(lineno, "unknown directive '" + keyword +
                         "' (expected fail, link, or jitter)");
    }
  }
  return spec;
}

bool FaultPlan::pe_dead(PeId pe, long long iter) const {
  for (const PeFault& f : pe_faults)
    if (f.pe == pe && iter >= f.iteration) return true;
  return false;
}

bool FaultPlan::link_dead(PeId a, PeId b, long long iter) const {
  for (const LinkFault& f : link_faults) {
    const bool match = (f.a == a && f.b == b) || (f.a == b && f.b == a);
    if (match && iter >= f.iteration) return true;
  }
  return false;
}

int FaultPlan::jitter_of(NodeId node) const {
  int delta = 0;
  for (const JitterFault& j : jitters)
    if (j.node == node) delta += j.delta;
  return delta;
}

std::vector<PeId> FaultPlan::dead_pes() const {
  std::set<PeId> dead;
  for (const PeFault& f : pe_faults) dead.insert(f.pe);
  return {dead.begin(), dead.end()};
}

std::vector<std::pair<PeId, PeId>> FaultPlan::dead_links() const {
  std::set<std::pair<PeId, PeId>> dead;
  for (const LinkFault& f : link_faults)
    dead.insert({std::min(f.a, f.b), std::max(f.a, f.b)});
  return {dead.begin(), dead.end()};
}

FaultPlan bind_fault_spec(const FaultSpec& spec, const Csdfg& g,
                          const Topology& topo, DiagnosticBag& bag) {
  FaultPlan plan;
  const auto target = [&](std::size_t line, std::string message) {
    bag.add("CCS-F002", SourceSpan{spec.file, line}, std::move(message));
  };

  for (const RawPeFault& f : spec.pe_faults) {
    PeId pe = 0;
    if (!resolve_pe(f.pe, topo, pe)) {
      target(f.line, "fail: '" + f.pe + "' does not name a PE of " +
                         topo.name() + " (use p0..p" +
                         std::to_string(topo.size() - 1) + ")");
      continue;
    }
    plan.pe_faults.push_back({pe, f.iteration});
  }

  for (const RawLinkFault& f : spec.link_faults) {
    PeId a = 0, b = 0;
    if (!resolve_pe(f.a, topo, a) || !resolve_pe(f.b, topo, b)) {
      target(f.line, "link: endpoints '" + f.a + "' '" + f.b +
                         "' must name PEs of " + topo.name());
      continue;
    }
    bool linked = false;
    for (PeId nb : topo.neighbors(a)) linked |= nb == b;
    if (topo.directed())
      for (PeId nb : topo.neighbors(b)) linked |= nb == a;
    if (!linked) {
      std::ostringstream os;
      os << "link: (" << f.a << "," << f.b << ") is not a link of "
         << topo.name();
      target(f.line, os.str());
      continue;
    }
    plan.link_faults.push_back({a, b, f.iteration});
  }

  for (const RawJitter& j : spec.jitters) {
    NodeId v = 0;
    try {
      v = g.node_by_name(j.task);
    } catch (const GraphError& e) {
      target(j.line, std::string("jitter: ") + e.what());
      continue;
    }
    plan.jitters.push_back({v, j.delta});
  }
  return plan;
}

std::string describe_fault_plan(const FaultPlan& plan, const Csdfg& g) {
  std::ostringstream os;
  for (const PeFault& f : plan.pe_faults)
    os << "fail p" << f.pe << " @iter " << f.iteration << '\n';
  for (const LinkFault& f : plan.link_faults)
    os << "link p" << f.a << " p" << f.b << " @iter " << f.iteration << '\n';
  for (const JitterFault& j : plan.jitters)
    os << "jitter " << g.node(j.node).name << ' '
       << (j.delta >= 0 ? "+" : "") << j.delta << '\n';
  return os.str();
}

}  // namespace ccs
