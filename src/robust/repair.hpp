// ccsched — schedule repair: remapping a broken machine's work onto the
// survivors.
//
// A fail-stop processor or a dead link invalidates a certified cyclic
// schedule.  The repair pass rebuilds one for the *reduced* machine — the
// surviving PEs and links, renumbered contiguously — by walking a
// degradation ladder from cheapest to most conservative:
//
//   rung 0  remap            keep every surviving placement, re-place only
//                            the dead processors' tasks via the anticipation
//                            machinery (core/remap_engine.hpp) at escalating target
//                            lengths;
//   rung 1  recompact-relax  full cyclo-compaction on the reduced machine,
//                            with relaxation (the paper's recommended
//                            configuration);
//   rung 2  recompact-strict cyclo-compaction without relaxation (monotone,
//                            Theorem 4.4 — auditable by the certifier's
//                            CCS-S009 check);
//   rung 3  list-schedule    the plain start-up schedule on the reduced
//                            machine, no compaction at all;
//   rung 4  serial           every task on one surviving processor.  All
//                            communication cost vanishes (M = 0 on-PE), so
//                            this rung succeeds for every legal graph and is
//                            the rung of last resort — also the only rung
//                            available when the survivors are disconnected.
//
// Every rung's candidate is certified from first principles
// (analysis/certify.hpp) before it is accepted; a rung that produces an
// uncertifiable table is reported and the ladder falls through.  Each
// attempt emits a `repair_attempt` trace event (docs/OBSERVABILITY.md).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/certify.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/retiming.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"
#include "robust/fault_plan.hpp"

namespace ccs {

/// Sentinel for "this original PE does not survive".
inline constexpr std::size_t kNoPe = static_cast<std::size_t>(-1);

/// The machine left after a fault plan's terminal state: surviving PEs
/// renumbered 0..n-1, surviving links renumbered to match.
struct ReducedMachine {
  /// The surviving interconnect; nullopt when no PE survives or the
  /// survivors are disconnected (Topology requires connectivity).
  std::optional<Topology> topo;
  /// reduced PE id -> original PE id, ascending (defined even when `topo`
  /// is nullopt, as long as at least one PE survives).
  std::vector<PeId> to_original;
  /// original PE id -> reduced PE id, or kNoPe for dead processors.
  std::vector<std::size_t> from_original;
  /// True when the survivors form a connected (usable) machine.
  bool connected = false;

  [[nodiscard]] std::size_t survivors() const noexcept {
    return to_original.size();
  }
};

/// Computes the reduced machine for the terminal state of `plan` (every
/// `fail` and `link` directive applied, regardless of iteration).  Never
/// throws: a disconnected or empty remainder is reported via the flags.
[[nodiscard]] ReducedMachine reduce_machine(const Topology& topo,
                                            const FaultPlan& plan);

/// The ladder rungs, cheapest first.  kInfeasible is the outcome when no
/// processor survives at all.
enum class RepairRung {
  kRemap = 0,
  kRecompactRelax,
  kRecompactStrict,
  kListSchedule,
  kSerial,
  kInfeasible,
};

/// Stable lower-case rung name ("remap", "recompact-relax",
/// "recompact-strict", "list-schedule", "serial", "infeasible") — used in
/// repair_attempt events and CLI reports.
[[nodiscard]] std::string_view repair_rung_name(RepairRung rung);

/// Knobs of the repair pass.
struct RepairOptions {
  /// Per-PE slowdown factors of the *original* machine (empty means
  /// homogeneous); the repair projects them onto the survivors.
  std::vector<int> pe_speeds;
  /// Pipelined processing elements (issue-step-only occupancy).
  bool pipelined_pes = false;
  /// Options for the recompaction rungs (policy is overridden per rung;
  /// the budget, passes and startup priority are honoured).
  CycloCompactionOptions compaction;
  /// Certification options applied to every rung's candidate.
  CertifyOptions certify;
  /// Rung-0 escalation bound: how many control steps beyond the baseline
  /// length the remap rung may relax its target before falling through.
  int max_remap_slack = 64;
};

/// Everything a caller needs to act on a repair.
struct RepairOutcome {
  /// The rung that produced `schedule`; kInfeasible when none could.
  RepairRung rung = RepairRung::kInfeasible;
  /// True iff `schedule` holds a certified table for `machine`.
  bool success = false;
  /// The repaired cyclic schedule, in *reduced* PE numbering.
  std::optional<ScheduleTable> schedule;
  /// The machine `schedule` runs on (reduced topology, or the 1-PE serial
  /// machine for the last rung).
  std::optional<Topology> machine;
  /// machine PE id -> original PE id.
  std::vector<PeId> to_original;
  /// The graph whose delays `schedule` satisfies (retimed when the winning
  /// rung compacts or reuses the baseline's rotation state).
  Csdfg graph;
  /// Total retiming from the input graph to `graph`.
  Retiming retiming{0};
  /// Tasks displaced by dead processors (baseline placements lost).
  std::vector<NodeId> orphans;
  /// Human-readable outcome: why the winning rung won, or why every rung
  /// failed.
  std::string detail;
  /// One line per rung tried, in order ("remap: ..."), for reports.
  std::vector<std::string> attempts;
};

/// Repairs `baseline` (a cyclo-compaction run of `g` on `topo`) against the
/// terminal machine state of `plan`: walks the degradation ladder on the
/// reduced machine and returns the first rung whose candidate certifies.
///
/// Deterministic.  Never throws on fault-plan content (an all-dead machine
/// yields rung == kInfeasible); throws GraphError only if `g` itself is
/// illegal.  `obs` receives one repair_attempt event per rung tried plus
/// the repair.* counters.
[[nodiscard]] RepairOutcome repair_schedule(const Csdfg& g,
                                            const CycloCompactionResult& baseline,
                                            const Topology& topo,
                                            const FaultPlan& plan,
                                            const RepairOptions& options = {},
                                            const ObsContext& obs = {});

}  // namespace ccs
