#include "arch/topology.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "arch/route_cache.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

Topology::Topology(std::size_t num_pes,
                   std::vector<std::pair<PeId, PeId>> links, bool directed,
                   std::string name)
    : num_pes_(num_pes), directed_(directed), name_(std::move(name)) {
  if (num_pes_ == 0)
    throw ArchitectureError("topology must have at least one PE");

  std::set<std::pair<PeId, PeId>> unique;
  for (auto [a, b] : links) {
    if (a >= num_pes_ || b >= num_pes_) {
      std::ostringstream os;
      os << "link (" << a << "," << b << ") references a PE outside 0.."
         << num_pes_ - 1;
      throw ArchitectureError(os.str());
    }
    if (a == b) {
      std::ostringstream os;
      os << "self-loop link on PE " << a;
      throw ArchitectureError(os.str());
    }
    if (!directed_ && a > b) std::swap(a, b);
    unique.insert({a, b});
  }
  links_.assign(unique.begin(), unique.end());

  adjacency_.assign(num_pes_, {});
  for (auto [a, b] : links_) {
    adjacency_[a].push_back(b);
    if (!directed_) adjacency_[b].push_back(a);
  }
  for (auto& nb : adjacency_) std::sort(nb.begin(), nb.end());

  tables_ = RouteCache::global().tables_for(num_pes_, directed_, links_,
                                            name_);
}

const std::vector<PeId>& Topology::neighbors(PeId pe) const {
  CCS_EXPECTS(pe < num_pes_);
  return adjacency_[pe];
}

std::size_t Topology::distance(PeId from, PeId to) const {
  CCS_EXPECTS(from < num_pes_ && to < num_pes_);
  return tables_->dist(from, to);
}

std::size_t Topology::degree(PeId pe) const {
  CCS_EXPECTS(pe < num_pes_);
  return adjacency_[pe].size();
}

std::vector<PeId> Topology::shortest_path(PeId from, PeId to) const {
  CCS_EXPECTS(from < num_pes_ && to < num_pes_);
  std::vector<PeId> path{from};
  PeId cur = from;
  const bool have_next = tables_->next.rows() > 0;
  while (cur != to) {
    // The cached first-hop table (when the structure is small enough to
    // carry one) and the greedy fallback implement the same rule: the
    // lowest-numbered neighbor that strictly decreases the remaining
    // distance — deterministic across runs and platforms.
    PeId next = cur;
    if (have_next) {
      next = tables_->next(cur, to);
    } else {
      for (PeId nb : adjacency_[cur]) {
        if (tables_->dist(nb, to) + 1 == tables_->dist(cur, to)) {
          next = nb;
          break;
        }
      }
    }
    CCS_ASSERT(next != cur);
    path.push_back(next);
    cur = next;
  }
  CCS_ENSURES(path.size() == tables_->dist(from, to) + 1);
  return path;
}

Topology make_linear_array(std::size_t num_pes) {
  if (num_pes == 0)
    throw ArchitectureError("linear array needs at least one PE");
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId i = 0; i + 1 < num_pes; ++i) links.push_back({i, i + 1});
  std::ostringstream name;
  name << "linear_array(" << num_pes << ")";
  return Topology(num_pes, std::move(links), /*directed=*/false, name.str());
}

Topology make_ring(std::size_t num_pes, bool bidirectional) {
  if (num_pes < 3)
    throw ArchitectureError("ring needs at least three PEs");
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId i = 0; i < num_pes; ++i) links.push_back({i, (i + 1) % num_pes});
  std::ostringstream name;
  name << (bidirectional ? "ring(" : "uniring(") << num_pes << ")";
  return Topology(num_pes, std::move(links), /*directed=*/!bidirectional,
                  name.str());
}

Topology make_complete(std::size_t num_pes) {
  if (num_pes == 0)
    throw ArchitectureError("complete topology needs at least one PE");
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId a = 0; a < num_pes; ++a)
    for (PeId b = a + 1; b < num_pes; ++b) links.push_back({a, b});
  std::ostringstream name;
  name << "complete(" << num_pes << ")";
  return Topology(num_pes, std::move(links), /*directed=*/false, name.str());
}

Topology make_mesh(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0)
    throw ArchitectureError("mesh dimensions must be positive");
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  std::vector<std::pair<PeId, PeId>> links;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) links.push_back({id(r, c), id(r + 1, c)});
    }
  }
  std::ostringstream name;
  name << "mesh(" << rows << "x" << cols << ")";
  return Topology(rows * cols, std::move(links), /*directed=*/false,
                  name.str());
}

Topology make_torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3)
    throw ArchitectureError(
        "torus dimensions must be at least 3x3 (smaller wraps duplicate mesh "
        "links)");
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  std::vector<std::pair<PeId, PeId>> links;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      links.push_back({id(r, c), id(r, (c + 1) % cols)});
      links.push_back({id(r, c), id((r + 1) % rows, c)});
    }
  }
  std::ostringstream name;
  name << "torus(" << rows << "x" << cols << ")";
  return Topology(rows * cols, std::move(links), /*directed=*/false,
                  name.str());
}

Topology make_hypercube(std::size_t dimensions) {
  if (dimensions > 20)
    throw ArchitectureError("hypercube dimension too large");
  const std::size_t n = std::size_t{1} << dimensions;
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId a = 0; a < n; ++a)
    for (std::size_t bit = 0; bit < dimensions; ++bit)
      links.push_back({a, a ^ (std::size_t{1} << bit)});
  std::ostringstream name;
  name << "hypercube(" << dimensions << ")";
  return Topology(n, std::move(links), /*directed=*/false, name.str());
}

Topology make_star(std::size_t num_pes) {
  if (num_pes < 2) throw ArchitectureError("star needs at least two PEs");
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId i = 1; i < num_pes; ++i) links.push_back({PeId{0}, i});
  std::ostringstream name;
  name << "star(" << num_pes << ")";
  return Topology(num_pes, std::move(links), /*directed=*/false, name.str());
}

Topology make_binary_tree(std::size_t num_pes) {
  if (num_pes == 0)
    throw ArchitectureError("binary tree needs at least one PE");
  std::vector<std::pair<PeId, PeId>> links;
  for (PeId i = 0; i < num_pes; ++i) {
    if (2 * i + 1 < num_pes) links.push_back({i, 2 * i + 1});
    if (2 * i + 2 < num_pes) links.push_back({i, 2 * i + 2});
  }
  std::ostringstream name;
  name << "binary_tree(" << num_pes << ")";
  return Topology(num_pes, std::move(links), /*directed=*/false, name.str());
}

}  // namespace ccs
