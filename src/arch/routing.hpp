// ccsched — deterministic routing policies.
//
// The paper's store-and-forward cost model needs only hop counts, but the
// contention-aware executor needs actual paths: which links a message
// occupies decides where traffic collides.  Real machines use
// dimension-order routing — XY on meshes, e-cube on hypercubes — rather
// than an arbitrary shortest path, and the policies differ precisely in
// how they spread load.  This module provides the router abstraction plus
// the three standard deterministic policies; all of them are minimal
// (path length == hop distance), so the analytic cost model is unchanged
// and only contention behaviour differs.
#pragma once

#include <vector>

#include "arch/topology.hpp"

namespace ccs {

/// A deterministic minimal routing policy over a fixed topology.
class Router {
public:
  virtual ~Router() = default;

  /// The link-by-link path from `from` to `to`, inclusive of both
  /// endpoints (size == distance + 1).  Deterministic.
  [[nodiscard]] virtual std::vector<PeId> route(PeId from, PeId to) const = 0;

  /// Identifying name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Default policy: the topology's BFS shortest path (ties toward
/// lower-numbered PEs).  Works on every topology.
class ShortestPathRouter final : public Router {
public:
  /// The topology must outlive the router.
  explicit ShortestPathRouter(const Topology& topo) : topo_(&topo) {}

  [[nodiscard]] std::vector<PeId> route(PeId from, PeId to) const override;
  [[nodiscard]] std::string name() const override { return "shortest_path"; }

private:
  const Topology* topo_;
};

/// XY dimension-order routing on a rows x cols mesh (PE id = row*cols +
/// col): correct the column first, then the row.  Deadlock-free on real
/// hardware, and concentrates traffic differently from BFS tie-breaking.
/// Construction verifies the topology is the matching make_mesh instance.
class XyMeshRouter final : public Router {
public:
  /// Throws ArchitectureError if topo is not a rows x cols mesh.
  XyMeshRouter(const Topology& topo, std::size_t rows, std::size_t cols);

  [[nodiscard]] std::vector<PeId> route(PeId from, PeId to) const override;
  [[nodiscard]] std::string name() const override { return "xy_mesh"; }

private:
  const Topology* topo_;
  std::size_t rows_;
  std::size_t cols_;
};

/// E-cube (dimension-order) routing on a hypercube: flip differing address
/// bits from least significant to most significant.  Construction verifies
/// the topology is the matching make_hypercube instance.
class EcubeRouter final : public Router {
public:
  /// Throws ArchitectureError if topo is not a `dimensions`-cube.
  EcubeRouter(const Topology& topo, std::size_t dimensions);

  [[nodiscard]] std::vector<PeId> route(PeId from, PeId to) const override;
  [[nodiscard]] std::string name() const override { return "ecube"; }

private:
  const Topology* topo_;
  std::size_t dimensions_;
};

}  // namespace ccs
