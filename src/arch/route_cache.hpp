// ccsched — process-wide routing tables, memoized per topology structure.
//
// Every Topology used to run its own all-pairs BFS at construction.  That is
// fine for one machine built once, but the portfolio engine (src/engine/)
// constructs the same architectures over and over — one per attempt, per
// repair rung, per benchmark repetition — and the BFS dominated construction
// for the larger fabrics.  The RouteCache memoizes the result: topologies
// with the same *structure* (PE count, directedness, normalized link list —
// the name is deliberately excluded) share one immutable RouteTables block
// behind a shared_ptr.
//
// Thread-safety contract: the cache itself is mutex-guarded; the tables it
// hands out are immutable after construction, so any number of portfolio
// workers may read them concurrently without synchronization.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/matrix.hpp"

namespace ccs {

/// Immutable per-structure routing data shared read-only across threads.
struct RouteTables {
  /// All-pairs minimum hop counts (BFS from every PE).
  Matrix<std::size_t> dist;
  /// First hop of the deterministic shortest path: next(u, v) is the
  /// lowest-numbered neighbor of u that strictly decreases the distance to
  /// v, and next(u, u) == u.  Empty (0x0) for structures above
  /// RouteCache::kNextHopLimit PEs, where the quadratic-times-degree
  /// precomputation would dwarf the queries it saves; Topology falls back
  /// to the same greedy descent the table encodes.
  Matrix<std::size_t> next;
  /// max over all pairs of dist — the network diameter.
  std::size_t diameter = 0;
};

/// Canonical topology key: the one structural serialization of a machine
/// used everywhere a topology identifies a memo entry — the RouteCache
/// below and the engine's SolveCache (engine/solve_cache.hpp) share it, so
/// there is exactly one hashing scheme to audit.  Every field that can
/// influence routing (and nothing else) is serialized: PE count,
/// directedness, and the normalized link list.  The topology *name* is
/// deliberately excluded — structurally equal machines are the same
/// machine.  Unlike the graph fingerprint (analysis/canon.hpp) this key is
/// NOT isomorphism-invariant: PE numbering is observable (routing tables,
/// schedule placements, speed lists all index PEs), so renumbered machines
/// must keep distinct keys.  `links` must be normalized the way Topology
/// normalizes them (in range, no self-loops, deduplicated, smaller
/// endpoint first when undirected); equal structures then produce equal
/// keys byte for byte.  The "topo1:" prefix versions the format.
[[nodiscard]] std::string canonical_topology_key(
    std::size_t num_pes, bool directed,
    const std::vector<std::pair<std::size_t, std::size_t>>& links);

/// Computes the tables directly, with no caching: BFS from every PE, then
/// (for structures within `next_hop_limit`) the first-hop matrix.  Throws
/// ArchitectureError naming `name` if the structure is not (strongly)
/// connected.  `links` must already be validated and normalized the way
/// Topology normalizes them (in range, no self-loops, deduplicated,
/// smaller endpoint first when undirected).
[[nodiscard]] RouteTables compute_route_tables(
    std::size_t num_pes, bool directed,
    const std::vector<std::pair<std::size_t, std::size_t>>& links,
    const std::string& name, std::size_t next_hop_limit);

/// The process-wide memo.  Topology construction goes through
/// RouteCache::global(); benches can set_enabled(false) to measure the
/// uncached path and clear() between measurements.
class RouteCache {
public:
  /// Structures up to this many PEs also get the O(P^2 · degree) next-hop
  /// matrix; larger ones only cache the distance table.
  static constexpr std::size_t kNextHopLimit = 256;

  /// The singleton shared by every Topology in the process.
  [[nodiscard]] static RouteCache& global();

  /// Returns the (possibly memoized) tables for the given structure,
  /// computing and caching them on first sight.  `name` is used only in the
  /// not-connected error message; structurally equal topologies with
  /// different names share an entry.  When the cache is disabled the tables
  /// are computed fresh on every call and nothing is stored.
  [[nodiscard]] std::shared_ptr<const RouteTables> tables_for(
      std::size_t num_pes, bool directed,
      const std::vector<std::pair<std::size_t, std::size_t>>& links,
      const std::string& name);

  /// Cache effectiveness counters, cumulative since the last clear().
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every memoized entry and zeroes the counters.  Tables already
  /// handed out stay alive through their shared_ptrs.
  void clear();

  /// Turns memoization on or off (on by default).  Disabling does not drop
  /// existing entries; it only bypasses them — benches use this to compare
  /// cached vs. uncached construction.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

private:
  mutable std::mutex mu_;
  bool enabled_ = true;
  long long hits_ = 0;
  long long misses_ = 0;
  std::map<std::string, std::shared_ptr<const RouteTables>> entries_;
};

}  // namespace ccs
