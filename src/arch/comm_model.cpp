#include "arch/comm_model.hpp"

#include "util/contracts.hpp"

namespace ccs {

CommCost StoreAndForwardModel::cost(PeId from, PeId to,
                                    std::size_t volume) const {
  CCS_EXPECTS(from < topo_->size() && to < topo_->size());
  return static_cast<CommCost>(topo_->distance(from, to)) *
         static_cast<CommCost>(volume);
}

FixedLatencyModel::FixedLatencyModel(const Topology& topo, CommCost latency)
    : topo_(&topo), latency_(latency) {
  CCS_EXPECTS(latency >= 0);
}

CommCost FixedLatencyModel::cost(PeId from, PeId to,
                                 std::size_t /*volume*/) const {
  CCS_EXPECTS(from < topo_->size() && to < topo_->size());
  return from == to ? 0 : latency_;
}

CutThroughModel::CutThroughModel(const Topology& topo, CommCost per_hop)
    : topo_(&topo), per_hop_(per_hop) {
  CCS_EXPECTS(per_hop >= 0);
}

CommCost CutThroughModel::cost(PeId from, PeId to, std::size_t volume) const {
  CCS_EXPECTS(from < topo_->size() && to < topo_->size());
  if (from == to) return 0;
  return per_hop_ * static_cast<CommCost>(topo_->distance(from, to)) +
         static_cast<CommCost>(volume);
}

CommCost min_cross_cost(const CommModel& comm, std::size_t num_pes,
                        std::size_t volume) {
  if (num_pes < 2) return 0;
  CommCost best = -1;
  for (PeId from = 0; from < num_pes; ++from)
    for (PeId to = 0; to < num_pes; ++to) {
      if (from == to) continue;
      const CommCost c = comm.cost(from, to, volume);
      if (best < 0 || c < best) best = c;
    }
  return best < 0 ? 0 : best;
}

}  // namespace ccs
