// ccsched — inter-processor communication cost models.
//
// Definition 3.5 of the paper: for a dependency u --(m)--> v with u on
// processor p_i and v on p_j, the communication function M(p_i, p_j) is the
// product of the number of links the data traverses and the data volume m.
// That is the store-and-forward model the paper uses throughout ("we use
// store and forward technique to highlight the communication cost inherent
// in any architecture").  Alternate models (fixed latency, per-hop latency
// plus volume) are provided for the ablation benches.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "arch/topology.hpp"

namespace ccs {

/// Communication cost in control steps (the schedule's time unit).
using CommCost = long long;

/// Abstract communication model: maps (source PE, destination PE, data
/// volume) to a delay in control steps.  All models must return 0 for
/// same-PE transfers.
class CommModel {
public:
  virtual ~CommModel() = default;

  /// Delay, in control steps, for `volume` units of data to travel from
  /// `from` to `to`.  Zero when from == to.
  [[nodiscard]] virtual CommCost cost(PeId from, PeId to,
                                      std::size_t volume) const = 0;

  /// Identifying name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's model (Def. 3.5): cost = hops(from, to) × volume.  Under
/// store-and-forward routing each intermediate PE receives the full message
/// before forwarding it, so each of the `hops` links costs `volume` steps.
class StoreAndForwardModel final : public CommModel {
public:
  /// The model holds a reference to the topology; the topology must outlive
  /// the model.
  explicit StoreAndForwardModel(const Topology& topo) : topo_(&topo) {}

  [[nodiscard]] CommCost cost(PeId from, PeId to,
                              std::size_t volume) const override;
  [[nodiscard]] std::string name() const override {
    return "store_and_forward";
  }

  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

private:
  const Topology* topo_;
};

/// Ablation model: any inter-PE transfer costs a fixed latency regardless of
/// distance or volume — approximates a bus/crossbar with constant arbitration
/// cost and makes every topology behave like the completely connected one.
class FixedLatencyModel final : public CommModel {
public:
  FixedLatencyModel(const Topology& topo, CommCost latency);

  [[nodiscard]] CommCost cost(PeId from, PeId to,
                              std::size_t volume) const override;
  [[nodiscard]] std::string name() const override { return "fixed_latency"; }

private:
  const Topology* topo_;
  CommCost latency_;
};

/// Baseline model: communication is free.  Scheduling against this model
/// reproduces the communication-oblivious algorithms the paper compares
/// against (classic list scheduling; rotation scheduling of Chao, LaPaugh &
/// Sha).  Schedules produced under it are generally *invalid* under a real
/// model — price them with the self-timed simulator.
class ZeroCommModel final : public CommModel {
public:
  [[nodiscard]] CommCost cost(PeId /*from*/, PeId /*to*/,
                              std::size_t /*volume*/) const override {
    return 0;
  }
  [[nodiscard]] std::string name() const override { return "zero"; }
};

/// Ablation model approximating cut-through/wormhole routing: cost =
/// per_hop × hops + volume.  Distance contributes additively rather than
/// multiplicatively, which weakens the architecture dependence that the
/// paper's remapping exploits.
class CutThroughModel final : public CommModel {
public:
  CutThroughModel(const Topology& topo, CommCost per_hop);

  [[nodiscard]] CommCost cost(PeId from, PeId to,
                              std::size_t volume) const override;
  [[nodiscard]] std::string name() const override { return "cut_through"; }

private:
  const Topology* topo_;
  CommCost per_hop_;
};

/// The cheapest possible inter-PE transfer of `volume` units under `comm`
/// on a machine with `num_pes` processors: min over ordered pairs p != q of
/// comm.cost(p, q, volume).  Returns 0 when num_pes < 2 (no transfer can
/// cross PEs).  Every dependence edge whose endpoints land on different
/// processors pays at least this much — the floor the static bound passes
/// (src/analysis/bounds.hpp) charge for unavoidable communication.
[[nodiscard]] CommCost min_cross_cost(const CommModel& comm,
                                      std::size_t num_pes,
                                      std::size_t volume);

}  // namespace ccs
