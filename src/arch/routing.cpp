#include "arch/routing.hpp"

#include <sstream>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

std::vector<PeId> ShortestPathRouter::route(PeId from, PeId to) const {
  return topo_->shortest_path(from, to);
}

XyMeshRouter::XyMeshRouter(const Topology& topo, std::size_t rows,
                           std::size_t cols)
    : topo_(&topo), rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0 || topo.size() != rows * cols)
    throw ArchitectureError("XyMeshRouter: topology size does not match " +
                            std::to_string(rows) + "x" + std::to_string(cols));
  // Verify the full mesh link structure (a transposed mesh or a ring can
  // share the horizontal links, so both directions are checked).
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && topo.distance(r * cols + c, r * cols + c + 1) != 1)
        throw ArchitectureError(
            "XyMeshRouter: topology is not the expected mesh (row links)");
      if (r + 1 < rows &&
          topo.distance(r * cols + c, (r + 1) * cols + c) != 1)
        throw ArchitectureError(
            "XyMeshRouter: topology is not the expected mesh (column links)");
    }
}

std::vector<PeId> XyMeshRouter::route(PeId from, PeId to) const {
  CCS_EXPECTS(from < topo_->size() && to < topo_->size());
  std::vector<PeId> path{from};
  std::size_t r = from / cols_, c = from % cols_;
  const std::size_t tr = to / cols_, tc = to % cols_;
  while (c != tc) {  // X first
    c = c < tc ? c + 1 : c - 1;
    path.push_back(r * cols_ + c);
  }
  while (r != tr) {  // then Y
    r = r < tr ? r + 1 : r - 1;
    path.push_back(r * cols_ + c);
  }
  CCS_ENSURES(path.size() == topo_->distance(from, to) + 1);
  return path;
}

EcubeRouter::EcubeRouter(const Topology& topo, std::size_t dimensions)
    : topo_(&topo), dimensions_(dimensions) {
  if (topo.size() != (std::size_t{1} << dimensions))
    throw ArchitectureError("EcubeRouter: topology size is not 2^" +
                            std::to_string(dimensions));
  for (std::size_t bit = 0; bit < dimensions; ++bit)
    if (topo.distance(0, std::size_t{1} << bit) != 1)
      throw ArchitectureError(
          "EcubeRouter: topology is not the expected hypercube");
}

std::vector<PeId> EcubeRouter::route(PeId from, PeId to) const {
  CCS_EXPECTS(from < topo_->size() && to < topo_->size());
  std::vector<PeId> path{from};
  PeId cur = from;
  for (std::size_t bit = 0; bit < dimensions_; ++bit) {
    const std::size_t mask = std::size_t{1} << bit;
    if ((cur ^ to) & mask) {
      cur ^= mask;
      path.push_back(cur);
    }
  }
  CCS_ENSURES(cur == to);
  CCS_ENSURES(path.size() == topo_->distance(from, to) + 1);
  return path;
}

}  // namespace ccs
