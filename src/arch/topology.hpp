// ccsched — processor interconnect topologies.
//
// Section 2 of the paper evaluates five interconnects: linear array, ring,
// completely connected, 2-D mesh, and n-cube (Figure 5 / Figure 8).  This
// module models a topology as an undirected (optionally directed) graph of
// processing elements (PEs) and precomputes the all-pairs hop-distance table
// that the store-and-forward communication model consumes.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "arch/route_cache.hpp"

namespace ccs {

/// Identifier of a processing element; PEs are numbered 0 .. size()-1.
using PeId = std::size_t;

/// A point-to-point interconnect between processing elements.
///
/// A Topology owns its link structure and shares the all-pairs minimum
/// hop-count and first-hop tables for that structure through the
/// process-wide RouteCache (arch/route_cache.hpp) — structurally equal
/// machines built anywhere in the process, including concurrently on
/// portfolio workers, read the same immutable tables.  Construction
/// verifies that the network is connected: a disconnected machine cannot
/// execute an arbitrary task graph under store-and-forward routing.
class Topology {
public:
  /// Builds a topology over `num_pes` processors from an explicit link list.
  /// Each link {a, b} connects PEs a and b; when `directed` is false (the
  /// default, matching all architectures in the paper) links carry traffic
  /// both ways.
  ///
  /// Throws ArchitectureError if num_pes == 0, a link endpoint is out of
  /// range, a link is a self-loop, or the network is not (strongly)
  /// connected.
  Topology(std::size_t num_pes,
           std::vector<std::pair<PeId, PeId>> links,
           bool directed = false,
           std::string name = "custom");

  /// Number of processing elements.
  [[nodiscard]] std::size_t size() const noexcept { return num_pes_; }

  /// Human-readable topology name ("linear_array(8)", "mesh(4x2)", ...).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// True when links are unidirectional.
  [[nodiscard]] bool directed() const noexcept { return directed_; }

  /// The link list as given at construction (deduplicated, normalized so the
  /// smaller endpoint comes first for undirected topologies).
  [[nodiscard]] const std::vector<std::pair<PeId, PeId>>& links()
      const noexcept {
    return links_;
  }

  /// Neighbors reachable from `pe` over one link.
  [[nodiscard]] const std::vector<PeId>& neighbors(PeId pe) const;

  /// Minimum number of links a message from `from` must traverse to reach
  /// `to`; zero when from == to.
  [[nodiscard]] std::size_t distance(PeId from, PeId to) const;

  /// Maximum over all PE pairs of distance(), i.e. the network diameter.
  [[nodiscard]] std::size_t diameter() const noexcept {
    return tables_->diameter;
  }

  /// Degree of `pe` (out-degree for directed topologies).
  [[nodiscard]] std::size_t degree(PeId pe) const;

  /// One shortest path from `from` to `to`, inclusive of both endpoints
  /// (so path.size() == distance(from,to) + 1).  Deterministic: ties are
  /// broken toward lower-numbered intermediate PEs.
  [[nodiscard]] std::vector<PeId> shortest_path(PeId from, PeId to) const;

private:
  std::size_t num_pes_;
  bool directed_;
  std::string name_;
  std::vector<std::pair<PeId, PeId>> links_;
  std::vector<std::vector<PeId>> adjacency_;
  /// Immutable, shared with every structurally equal Topology in the
  /// process (arch/route_cache.hpp); copies of this Topology share it too.
  std::shared_ptr<const RouteTables> tables_;
};

/// Factory: N processors in a line (Figure 5a); PE i links to PE i+1.
[[nodiscard]] Topology make_linear_array(std::size_t num_pes);

/// Factory: N processors in a cycle (Figure 5b).  `bidirectional` selects
/// undirected channels (the paper's default); a unidirectional ring routes
/// all traffic clockwise.
[[nodiscard]] Topology make_ring(std::size_t num_pes,
                                 bool bidirectional = true);

/// Factory: every PE linked to every other PE (Figure 5c).
[[nodiscard]] Topology make_complete(std::size_t num_pes);

/// Factory: rows×cols 2-D mesh (Figure 5d); no wraparound links.
[[nodiscard]] Topology make_mesh(std::size_t rows, std::size_t cols);

/// Factory: rows×cols 2-D torus (mesh plus wraparound links) — an extension
/// architecture beyond the paper's five, used in the architecture sweep.
[[nodiscard]] Topology make_torus(std::size_t rows, std::size_t cols);

/// Factory: n-dimensional hypercube with 2^dimensions PEs (Figure 5e);
/// PEs whose indices differ in exactly one bit are linked.
[[nodiscard]] Topology make_hypercube(std::size_t dimensions);

/// Factory: star — PE 0 is the hub, all others link only to it.  Extension
/// architecture exercising maximum hub contention in the simulator.
[[nodiscard]] Topology make_star(std::size_t num_pes);

/// Factory: complete binary tree with `num_pes` nodes; PE i links to its
/// children 2i+1 and 2i+2.  Extension architecture.
[[nodiscard]] Topology make_binary_tree(std::size_t num_pes);

}  // namespace ccs
