#include "arch/route_cache.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <sstream>

#include "obs/span.hpp"
#include "util/error.hpp"

namespace ccs {

namespace {

constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

}  // namespace

std::string canonical_topology_key(
    std::size_t num_pes, bool directed,
    const std::vector<std::pair<std::size_t, std::size_t>>& links) {
  std::ostringstream os;
  os << "topo1:" << (directed ? 'd' : 'u') << num_pes;
  for (const auto& [a, b] : links) os << ':' << a << ',' << b;
  return os.str();
}

RouteTables compute_route_tables(
    std::size_t num_pes, bool directed,
    const std::vector<std::pair<std::size_t, std::size_t>>& links,
    const std::string& name, std::size_t next_hop_limit) {
  // Adjacency exactly as Topology builds it: sorted neighbor lists, reverse
  // direction added for undirected structures.
  std::vector<std::vector<std::size_t>> adjacency(num_pes);
  for (const auto& [a, b] : links) {
    adjacency[a].push_back(b);
    if (!directed) adjacency[b].push_back(a);
  }
  for (auto& nb : adjacency) std::sort(nb.begin(), nb.end());

  RouteTables tables;
  tables.dist = Matrix<std::size_t>(num_pes, num_pes, kUnreachable);
  for (std::size_t src = 0; src < num_pes; ++src) {
    tables.dist(src, src) = 0;
    std::deque<std::size_t> frontier{src};
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop_front();
      for (const std::size_t v : adjacency[u]) {
        if (tables.dist(src, v) == kUnreachable) {
          tables.dist(src, v) = tables.dist(src, u) + 1;
          frontier.push_back(v);
        }
      }
    }
  }

  tables.diameter = 0;
  for (std::size_t a = 0; a < num_pes; ++a) {
    for (std::size_t b = 0; b < num_pes; ++b) {
      if (tables.dist(a, b) == kUnreachable) {
        std::ostringstream os;
        os << "topology '" << name << "' is not connected: PE " << b
           << " is unreachable from PE " << a;
        throw ArchitectureError(os.str());
      }
      tables.diameter = std::max(tables.diameter, tables.dist(a, b));
    }
  }

  if (num_pes <= next_hop_limit) {
    // next(u, v): lowest-numbered neighbor of u one hop closer to v — the
    // same tie-break Topology::shortest_path has always used, frozen into a
    // table so path reconstruction is O(path length).
    tables.next = Matrix<std::size_t>(num_pes, num_pes, 0);
    for (std::size_t u = 0; u < num_pes; ++u) {
      for (std::size_t v = 0; v < num_pes; ++v) {
        if (u == v) {
          tables.next(u, v) = u;
          continue;
        }
        for (const std::size_t nb : adjacency[u]) {
          if (tables.dist(nb, v) + 1 == tables.dist(u, v)) {
            tables.next(u, v) = nb;
            break;
          }
        }
      }
    }
  }

  return tables;
}

RouteCache& RouteCache::global() {
  static RouteCache cache;
  return cache;
}

std::shared_ptr<const RouteTables> RouteCache::tables_for(
    std::size_t num_pes, bool directed,
    const std::vector<std::pair<std::size_t, std::size_t>>& links,
    const std::string& name) {
  // The cache predates ObsContext threading (Topology constructors have no
  // obs parameter), so spans come from the process-global profiler hook —
  // one relaxed atomic load when profiling is off.
  const ObsSpan lookup_span(SpanProfiler::process(), "route.lookup");
  {
    const std::scoped_lock lock(mu_);
    if (enabled_) {
      const auto it =
          entries_.find(canonical_topology_key(num_pes, directed, links));
      if (it != entries_.end()) {
        ++hits_;
        return it->second;
      }
    }
  }

  // Compute outside the lock: BFS over a large fabric must not serialize
  // unrelated constructions, and compute_route_tables may throw.
  std::shared_ptr<const RouteTables> tables;
  {
    const ObsSpan build_span(SpanProfiler::process(), "route.build");
    tables = std::make_shared<const RouteTables>(
        compute_route_tables(num_pes, directed, links, name, kNextHopLimit));
  }

  const std::scoped_lock lock(mu_);
  if (!enabled_) return tables;
  ++misses_;
  // Two threads may race to insert the same structure; the first insert
  // wins and both callers end up sharing that entry.
  const auto [it, inserted] = entries_.emplace(
      canonical_topology_key(num_pes, directed, links), std::move(tables));
  return it->second;
}

RouteCache::Stats RouteCache::stats() const {
  const std::scoped_lock lock(mu_);
  return Stats{hits_, misses_, entries_.size()};
}

void RouteCache::clear() {
  const std::scoped_lock lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void RouteCache::set_enabled(bool enabled) {
  const std::scoped_lock lock(mu_);
  enabled_ = enabled;
}

bool RouteCache::enabled() const {
  const std::scoped_lock lock(mu_);
  return enabled_;
}

}  // namespace ccs
