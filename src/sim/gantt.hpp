// ccsched — execution-trace rendering.
//
// Turns the executor's TaskEvent trace into (a) an ASCII Gantt chart, one
// row per processor with a column per cycle (task names abbreviated to one
// character, '.' idle), and (b) a CSV stream for external tooling.  The
// Gantt view makes iteration overlap — the whole point of loop pipelining —
// directly visible: after compaction, instances of consecutive iterations
// interleave on the chart.
#pragma once

#include <string>
#include <vector>

#include "core/csdfg.hpp"
#include "sim/executor.hpp"

namespace ccs {

/// Renders cycles [from_cycle, to_cycle] of `trace` as an ASCII Gantt
/// chart over `num_pes` processors.  Each busy cycle shows the first
/// character of the task's name (uppercased); collisions (only possible on
/// an invalid trace) show '#'; idle cycles show '.'.
[[nodiscard]] std::string render_gantt(const Csdfg& g,
                                       const std::vector<TaskEvent>& trace,
                                       std::size_t num_pes, long long from_cycle,
                                       long long to_cycle);

/// Serializes the trace as CSV: `task,iteration,pe,start,finish` with a
/// header row.  Deterministic (trace order).
[[nodiscard]] std::string trace_to_csv(const Csdfg& g,
                                       const std::vector<TaskEvent>& trace);

}  // namespace ccs
