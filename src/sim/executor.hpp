// ccsched — cycle-accurate execution of static cyclic schedules.
//
// The paper evaluates schedules analytically; this simulator is the
// independent referee the library adds on top.  It executes K iterations of
// a scheduled CSDFG on the target topology under store-and-forward
// messaging (each hop of an m-unit message occupies a link for m cycles) in
// two modes:
//
//  * static    — tasks start exactly where the table says (iteration i's
//                copy of v starts at i*L + CB(v)); every data arrival is
//                checked, and late arrivals are reported.  A schedule passes
//                iff validate_schedule passes — the two referees are
//                independent implementations of the same contract.
//  * self-timed — tasks keep their processor assignment and per-processor
//                order but start as soon as (a) their processor is free and
//                (b) all operands have arrived.  This prices schedules that
//                were built ignoring communication (the paper's baselines):
//                the achieved steady-state initiation interval is the
//                honest cost of their placements.
//
// Optionally links are contended: a link carries one message at a time and
// messages reserve links in deterministic production order.  The paper
// assumes contention-free channels ("the communication channels are multiple
// so that there is no congestion"); the contention switch quantifies what
// that assumption hides (ablation A3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/routing.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/schedule.hpp"
#include "obs/obs.hpp"
#include "robust/fault_plan.hpp"

namespace ccs {

/// Simulation configuration.
struct ExecutorOptions {
  /// Iterations of the loop body to execute (>= 1).
  int iterations = 64;
  /// Leading iterations excluded from the steady-state window (>= 0,
  /// < iterations).
  int warmup = 8;
  /// Model per-link exclusivity (store-and-forward with single-message
  /// links).  Off by default, matching the paper's no-congestion assumption.
  bool link_contention = false;
  /// Routing policy for message paths (matters under contention); nullptr
  /// selects the topology's BFS shortest paths.  Non-owning: the router
  /// must outlive the call and be built over the same topology.
  const Router* router = nullptr;
  /// Record one TaskEvent per executed instance in ExecutionStats::trace
  /// (off by default; traces grow as iterations x tasks).
  bool record_trace = false;
  /// Fault plan to inject (robust/fault_plan.hpp); nullptr or an empty plan
  /// runs fault-free.  Non-owning: the plan must outlive the call.  Faults
  /// are a *static-mode* feature — the static table is the artifact whose
  /// resilience is being probed; execute_self_timed rejects a non-empty
  /// plan (contract check).
  const FaultPlan* faults = nullptr;
};

/// One executed task instance, for Gantt rendering and trace analysis.
struct TaskEvent {
  NodeId node = 0;
  long long iteration = 0;
  PeId pe = 0;
  long long start = 0;   ///< First busy cycle (1-based absolute time).
  long long finish = 0;  ///< Last busy cycle.
};

/// What the simulator observed.
struct ExecutionStats {
  /// Absolute finish cycle of each executed iteration (size = iterations).
  std::vector<long long> iteration_finish;
  /// (finish(last) - finish(warmup)) / (last - warmup): the sustained cycles
  /// per iteration.  Equal to the table length for a tight static schedule.
  double steady_initiation_interval = 0.0;
  /// Finish cycle of the last iteration.
  long long makespan = 0;
  /// Messages transported (inter-PE edges × iterations executed).
  long long total_messages = 0;
  /// Sum over messages of hops × volume (the network work).
  long long total_traffic = 0;
  /// Static mode only: number of (edge, iteration) pairs whose operand
  /// arrived after the scheduled start.  Zero iff the table is feasible.
  long long late_arrivals = 0;
  /// Per-instance events when ExecutorOptions::record_trace is set,
  /// in execution order.
  std::vector<TaskEvent> trace;
  /// Fault injection only: instances not executed because their processor
  /// was fail-stop at their iteration.
  long long failed_instances = 0;
  /// Fault injection only: instances not executed because an operand was
  /// never produced (cascade starvation) or its message was lost on a dead
  /// link.
  long long starved_instances = 0;
  /// Fault injection only: messages dropped on a dead link.
  long long lost_messages = 0;
  /// Distinct fault activations during the run (one per emitted fault
  /// event: each fail-stop PE and dead link at first effect, each jitter
  /// directive up front).
  long long faults_injected = 0;
  /// First iteration at which any instance failed or starved; -1 when the
  /// run was unaffected by the plan.
  long long first_failure_iteration = -1;
  /// Self-timed mode only: the table's per-processor task order and its
  /// zero-delay data dependences form a cycle, so blocking execution can
  /// never make progress.  Only possible for invalid tables (e.g.
  /// adversarial perturbations); all other fields are zero when set.
  bool deadlocked = false;
};

/// Runs the static mode: tasks start exactly as scheduled; reports
/// late_arrivals.  The table must be complete.  Contention is not modeled in
/// static mode (the table was constructed under the no-congestion
/// assumption; late arrivals under contention are a self-timed question).
/// With ExecutorOptions::faults set, fail-stop processors skip their
/// instances, dead links drop messages (starving the consumers), and jitter
/// stretches execution times — each reported through the fault counters and
/// one `fault` trace event per activation.
/// `obs` (optional) records the time.simulate timer, sim.* counters, and
/// one sim_run event.
[[nodiscard]] ExecutionStats execute_static(const Csdfg& g,
                                            const ScheduleTable& table,
                                            const Topology& topo,
                                            const ExecutorOptions& options = {},
                                            const ObsContext& obs = {});

/// Runs the self-timed mode: processor assignment and per-processor task
/// order are taken from the table, start times are earliest-feasible.  The
/// table must be complete.  `obs` as in execute_static.
[[nodiscard]] ExecutionStats execute_self_timed(
    const Csdfg& g, const ScheduleTable& table, const Topology& topo,
    const ExecutorOptions& options = {}, const ObsContext& obs = {});

}  // namespace ccs
