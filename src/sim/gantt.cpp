#include "sim/gantt.hpp"

#include <cctype>
#include <sstream>

#include "util/contracts.hpp"

namespace ccs {

std::string render_gantt(const Csdfg& g, const std::vector<TaskEvent>& trace,
                         std::size_t num_pes, long long from_cycle,
                         long long to_cycle) {
  CCS_EXPECTS(num_pes >= 1);
  CCS_EXPECTS(from_cycle >= 1 && from_cycle <= to_cycle);
  const std::size_t width = static_cast<std::size_t>(to_cycle - from_cycle + 1);
  std::vector<std::string> row(num_pes, std::string(width, '.'));

  for (const TaskEvent& ev : trace) {
    CCS_EXPECTS(ev.pe < num_pes);
    CCS_EXPECTS(ev.node < g.node_count());
    const char mark = static_cast<char>(
        std::toupper(static_cast<unsigned char>(g.node(ev.node).name[0])));
    for (long long t = std::max(ev.start, from_cycle);
         t <= std::min(ev.finish, to_cycle); ++t) {
      char& cell = row[ev.pe][static_cast<std::size_t>(t - from_cycle)];
      cell = cell == '.' ? mark : '#';
    }
  }

  std::ostringstream os;
  os << "cycles " << from_cycle << ".." << to_cycle << '\n';
  for (std::size_t pe = 0; pe < num_pes; ++pe)
    os << "pe" << pe + 1 << " |" << row[pe] << "|\n";
  return os.str();
}

std::string trace_to_csv(const Csdfg& g,
                         const std::vector<TaskEvent>& trace) {
  std::ostringstream os;
  os << "task,iteration,pe,start,finish\n";
  for (const TaskEvent& ev : trace) {
    CCS_EXPECTS(ev.node < g.node_count());
    os << g.node(ev.node).name << ',' << ev.iteration << ',' << ev.pe + 1
       << ',' << ev.start << ',' << ev.finish << '\n';
  }
  return os.str();
}

}  // namespace ccs
