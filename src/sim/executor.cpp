#include "sim/executor.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>

#include "util/contracts.hpp"

namespace ccs {

namespace {

struct LinkClock {
  std::map<std::pair<PeId, PeId>, long long> free_at;

  long long traverse(const std::vector<PeId>& path, long long depart,
                     std::size_t volume, bool contended) {
    long long t = depart;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (contended) {
        auto& slot = free_at[{path[h], path[h + 1]}];
        const long long start = std::max(t, slot);
        slot = start + static_cast<long long>(volume);
        t = slot;
      } else {
        t += static_cast<long long>(volume);
      }
    }
    return t;
  }
};

/// Evaluation order for one self-timed iteration: a linear extension of the
/// zero-delay data edges plus the per-processor CB chains.  On a valid
/// table this is simply CB order; on an arbitrary table the combined
/// constraints may be cyclic — a genuine deadlock under blocking receives —
/// in which case nullopt is returned.
std::optional<std::vector<NodeId>> self_timed_order(
    const Csdfg& g, const ScheduleTable& table) {
  const std::size_t n = g.node_count();
  std::vector<std::vector<NodeId>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  auto add_edge = [&](NodeId a, NodeId b) {
    succ[a].push_back(b);
    ++indeg[b];
  };
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    if (e.delay == 0 && e.from != e.to) add_edge(e.from, e.to);
  }
  // Per-PE chains in CB order.
  std::vector<std::vector<NodeId>> on_pe(table.num_pes());
  for (NodeId v = 0; v < n; ++v) on_pe[table.pe(v)].push_back(v);
  for (auto& chain : on_pe) {
    std::stable_sort(chain.begin(), chain.end(), [&](NodeId a, NodeId b) {
      if (table.cb(a) != table.cb(b)) return table.cb(a) < table.cb(b);
      return a < b;
    });
    for (std::size_t i = 0; i + 1 < chain.size(); ++i)
      add_edge(chain[i], chain[i + 1]);
  }
  // Kahn with (cb, id) priority for determinism.
  auto later = [&](NodeId a, NodeId b) {
    if (table.cb(a) != table.cb(b)) return table.cb(a) > table.cb(b);
    return a > b;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(later)> ready(
      later);
  for (NodeId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(v);
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (NodeId w : succ[v])
      if (--indeg[w] == 0) ready.push(w);
  }
  if (order.size() != n) return std::nullopt;  // deadlock
  return order;
}

enum class Mode { kStatic, kSelfTimed };

ExecutionStats run(const Csdfg& g, const ScheduleTable& table,
                   const Topology& topo, const ExecutorOptions& options,
                   Mode mode, const ObsContext& obs) {
  CCS_EXPECTS(table.complete());
  CCS_EXPECTS(options.iterations >= 1);
  CCS_EXPECTS(options.warmup >= 0 && options.warmup < options.iterations);
  const ScopedTimer timer(obs.metrics, "time.simulate");

  const int K = options.iterations;
  const std::size_t n = g.node_count();
  const int L = table.length();
  const ShortestPathRouter default_router(topo);
  const Router& router = options.router ? *options.router : default_router;

  // Fault injection is a static-mode feature (the callers enforce it); an
  // empty plan behaves exactly like no plan.
  const FaultPlan* faults =
      mode == Mode::kStatic && options.faults != nullptr &&
              !options.faults->empty()
          ? options.faults
          : nullptr;

  ExecutionStats stats;
  stats.iteration_finish.assign(static_cast<std::size_t>(K), 0);

  // Effective execution time under jitter; never below one control step.
  const auto duration_of = [&](NodeId v, PeId pe) {
    int t = table.time_on(v, pe);
    if (faults != nullptr) t = std::max(1, t + faults->jitter_of(v));
    return t;
  };

  // Evaluation order within one iteration.
  std::vector<NodeId> order;
  if (mode == Mode::kSelfTimed) {
    auto maybe = self_timed_order(g, table);
    if (!maybe) {
      stats.deadlocked = true;
      obs.count("sim.deadlocks");
      SimRunEvent ev;
      ev.mode = "self-timed";
      ev.iterations = K;
      ev.deadlocked = true;
      obs.emit(ev);
      return stats;
    }
    order = std::move(*maybe);
  } else {
    // Static starts are fixed; evaluation order is irrelevant to the
    // results, so plain CB order keeps traces readable.
    order.resize(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      if (table.cb(a) != table.cb(b)) return table.cb(a) < table.cb(b);
      return a < b;
    });
  }

  // finish[i*n + v] = absolute cycle at which iteration i of v completes.
  // In static mode every finish is known a priori.
  std::vector<long long> finish(static_cast<std::size_t>(K) * n, 0);
  if (mode == Mode::kStatic) {
    for (int i = 0; i < K; ++i)
      for (NodeId v = 0; v < n; ++v)
        finish[static_cast<std::size_t>(i) * n + v] =
            static_cast<long long>(i) * L + table.cb(v) +
            duration_of(v, table.pe(v)) - 1;
  }

  std::vector<long long> pe_free(topo.size(), 0);
  LinkClock links;

  // instance_ok[i*n + v] = instance (i, v) ran and its output exists.
  // Only fault injection can clear entries.
  std::vector<char> instance_ok(static_cast<std::size_t>(K) * n, 1);
  std::vector<char> pe_fault_reported(topo.size(), 0);
  std::set<std::pair<PeId, PeId>> link_fault_reported;
  const auto mark_failure = [&](int iteration) {
    if (stats.first_failure_iteration < 0)
      stats.first_failure_iteration = iteration;
  };

  // Jitter directives take effect from the first instance: report them up
  // front, once each.
  if (faults != nullptr) {
    for (const JitterFault& j : faults->jitters) {
      ++stats.faults_injected;
      obs.count("sim.faults");
      obs.emit(FaultEvent{"jitter", 0, 0, j.node, 0,
                          "t(" + g.node(j.node).name + ") " +
                              (j.delta >= 0 ? "+" : "") +
                              std::to_string(j.delta)});
    }
  }

  for (int i = 0; i < K; ++i) {
    long long iter_finish = 0;
    for (NodeId v : order) {
      const PeId pv = table.pe(v);

      if (faults != nullptr) {
        // Fail-stop processor: the instance never runs.
        if (faults->pe_dead(pv, i)) {
          instance_ok[static_cast<std::size_t>(i) * n + v] = 0;
          ++stats.failed_instances;
          mark_failure(i);
          if (!pe_fault_reported[pv]) {
            pe_fault_reported[pv] = 1;
            ++stats.faults_injected;
            obs.count("sim.faults");
            obs.emit(FaultEvent{"fail_stop", pv, 0, 0, i,
                                "p" + std::to_string(pv) +
                                    " fail-stop; first lost instance: " +
                                    g.node(v).name});
          }
          continue;
        }
        // Starvation: a missing operand (dead producer upstream) or a
        // message lost on a dead link keeps the instance from running.
        bool starved = false;
        for (EdgeId eid : g.in_edges(v)) {
          const Edge& e = g.edge(eid);
          const int src_iter = i - e.delay;
          if (src_iter < 0) continue;  // initial token, always present
          if (!instance_ok[static_cast<std::size_t>(src_iter) * n + e.from]) {
            starved = true;
            break;
          }
          const PeId pu = table.pe(e.from);
          if (pu == pv) continue;
          const std::vector<PeId> path = router.route(pu, pv);
          for (std::size_t h = 0; h + 1 < path.size(); ++h) {
            if (!faults->link_dead(path[h], path[h + 1], i)) continue;
            ++stats.lost_messages;
            const PeId a = std::min(path[h], path[h + 1]);
            const PeId b = std::max(path[h], path[h + 1]);
            if (link_fault_reported.insert({a, b}).second) {
              ++stats.faults_injected;
              obs.count("sim.faults");
              obs.emit(FaultEvent{"link_down", a, b, 0, i,
                                  "message " + g.node(e.from).name + "->" +
                                      g.node(e.to).name + " lost"});
            }
            starved = true;
            break;
          }
          if (starved) break;
        }
        if (starved) {
          instance_ok[static_cast<std::size_t>(i) * n + v] = 0;
          ++stats.starved_instances;
          mark_failure(i);
          continue;
        }
      }

      // Latest operand arrival across incoming edges.
      long long arrival = 0;
      for (EdgeId eid : g.in_edges(v)) {
        const Edge& e = g.edge(eid);
        const int src_iter = i - e.delay;
        if (src_iter < 0) continue;  // initial token, present from cycle 0
        const long long produced =
            finish[static_cast<std::size_t>(src_iter) * n + e.from];
        const PeId pu = table.pe(e.from);
        long long at = produced;
        if (pu != pv) {
          at = links.traverse(router.route(pu, pv), produced, e.volume,
                              options.link_contention &&
                                  mode == Mode::kSelfTimed);
          stats.total_messages += 1;
          stats.total_traffic +=
              static_cast<long long>(topo.distance(pu, pv)) *
              static_cast<long long>(e.volume);
        }
        arrival = std::max(arrival, at);
      }

      long long start;
      if (mode == Mode::kStatic) {
        start = static_cast<long long>(i) * L + table.cb(v);
        if (arrival + 1 > start) stats.late_arrivals += 1;
      } else {
        start = std::max({pe_free[pv] + 1, arrival + 1, 1LL});
      }
      const long long done = start + duration_of(v, pv) - 1;
      if (mode == Mode::kSelfTimed) {
        finish[static_cast<std::size_t>(i) * n + v] = done;
        pe_free[pv] = done;
      }
      if (options.record_trace)
        stats.trace.push_back({v, i, pv, start, done});
      iter_finish = std::max(iter_finish, done);
    }
    stats.iteration_finish[static_cast<std::size_t>(i)] = iter_finish;
  }

  // With faults an iteration can lose every instance (finish 0), so the
  // makespan is the maximum over iterations, not the last one.
  stats.makespan = *std::max_element(stats.iteration_finish.begin(),
                                     stats.iteration_finish.end());
  if (K - 1 > options.warmup) {
    stats.steady_initiation_interval =
        static_cast<double>(
            stats.iteration_finish.back() -
            stats.iteration_finish[static_cast<std::size_t>(options.warmup)]) /
        static_cast<double>(K - 1 - options.warmup);
  } else {
    stats.steady_initiation_interval =
        static_cast<double>(stats.makespan) / static_cast<double>(K);
  }

  if (obs.metrics != nullptr) {
    obs.metrics->add("sim.instances",
                     static_cast<long long>(K) * static_cast<long long>(n));
    obs.metrics->add("sim.messages", stats.total_messages);
    obs.metrics->add("sim.late_arrivals", stats.late_arrivals);
    obs.metrics->set("sim.steady_ii", stats.steady_initiation_interval);
    if (faults != nullptr) {
      obs.metrics->add("sim.failed_instances", stats.failed_instances);
      obs.metrics->add("sim.starved_instances", stats.starved_instances);
      obs.metrics->add("sim.lost_messages", stats.lost_messages);
    }
  }
  if (obs.tracing()) {
    SimRunEvent ev;
    ev.mode = mode == Mode::kStatic ? "static" : "self-timed";
    ev.iterations = K;
    ev.makespan = stats.makespan;
    ev.steady_ii = stats.steady_initiation_interval;
    ev.messages = stats.total_messages;
    ev.late_arrivals = stats.late_arrivals;
    obs.emit(ev);
  }
  return stats;
}

}  // namespace

ExecutionStats execute_static(const Csdfg& g, const ScheduleTable& table,
                              const Topology& topo,
                              const ExecutorOptions& options,
                              const ObsContext& obs) {
  return run(g, table, topo, options, Mode::kStatic, obs);
}

ExecutionStats execute_self_timed(const Csdfg& g, const ScheduleTable& table,
                                  const Topology& topo,
                                  const ExecutorOptions& options,
                                  const ObsContext& obs) {
  CCS_EXPECTS(options.faults == nullptr || options.faults->empty());
  return run(g, table, topo, options, Mode::kSelfTimed, obs);
}

}  // namespace ccs
