#include "workloads/transforms.hpp"

#include <string>

#include "util/error.hpp"

namespace ccs {

namespace {

/// Rebuilds `g` with per-node and per-edge rewrites (node structure is
/// immutable by design, so transforms copy).
template <typename NodeTimeFn, typename EdgeFn>
Csdfg rebuild(const Csdfg& g, const std::string& suffix, NodeTimeFn node_time,
              EdgeFn edge_rewrite) {
  Csdfg out(g.name() + suffix);
  for (NodeId v = 0; v < g.node_count(); ++v)
    out.add_node(g.node(v).name, node_time(g.node(v)));
  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge e = edge_rewrite(g.edge(eid));
    out.add_edge(e.from, e.to, e.delay, e.volume);
  }
  return out;
}

}  // namespace

Csdfg slowdown(const Csdfg& g, int factor) {
  if (factor < 1) throw GraphError("slowdown factor must be >= 1");
  return rebuild(
      g, "_slow" + std::to_string(factor),
      [](const Node& n) { return n.time; },
      [factor](Edge e) {
        e.delay *= factor;
        return e;
      });
}

Csdfg scale_times(const Csdfg& g, int factor) {
  if (factor < 1) throw GraphError("time scale factor must be >= 1");
  return rebuild(
      g, "_t" + std::to_string(factor),
      [factor](const Node& n) { return n.time * factor; },
      [](Edge e) { return e; });
}

Csdfg scale_volumes(const Csdfg& g, std::size_t factor) {
  if (factor < 1) throw GraphError("volume scale factor must be >= 1");
  return rebuild(
      g, "_v" + std::to_string(factor),
      [](const Node& n) { return n.time; },
      [factor](Edge e) {
        e.volume *= factor;
        return e;
      });
}

}  // namespace ccs
