#include "workloads/library.hpp"

#include <array>
#include <string>

#include "util/contracts.hpp"

namespace ccs {

Csdfg paper_example6() {
  Csdfg g("paper6");
  const NodeId A = g.add_node("A", 1);
  const NodeId B = g.add_node("B", 2);
  const NodeId C = g.add_node("C", 1);
  const NodeId D = g.add_node("D", 1);
  const NodeId E = g.add_node("E", 2);
  const NodeId F = g.add_node("F", 1);
  g.add_edge(A, B, 0, 1);  // e1
  g.add_edge(A, C, 0, 1);  // e2
  g.add_edge(A, E, 0, 1);  // e3
  g.add_edge(B, D, 0, 1);  // e4
  g.add_edge(B, E, 0, 2);  // e5
  g.add_edge(C, E, 0, 1);  // e6
  g.add_edge(D, A, 3, 3);  // e7
  g.add_edge(D, F, 0, 2);  // e8
  g.add_edge(E, F, 0, 1);  // e9
  g.add_edge(F, E, 1, 1);  // e10
  g.require_legal();
  return g;
}

Csdfg paper_example19() {
  Csdfg g("paper19");
  // Node names and execution times are the paper's (Figure 7); the edge
  // structure is the DESIGN.md §5 reconstruction: three pipelined chains
  // (A-B-H-G-M-P, C-I-K-N-O, F-J-L-Q), sources D and E, a reduction tail
  // (R, S), and five loop-carried feedback edges closing the recurrences.
  const NodeId A = g.add_node("A", 1);
  const NodeId B = g.add_node("B", 1);
  const NodeId C = g.add_node("C", 2);
  const NodeId D = g.add_node("D", 1);
  const NodeId E = g.add_node("E", 1);
  const NodeId F = g.add_node("F", 2);
  const NodeId G = g.add_node("G", 1);
  const NodeId H = g.add_node("H", 1);
  const NodeId I = g.add_node("I", 1);
  const NodeId J = g.add_node("J", 2);
  const NodeId K = g.add_node("K", 1);
  const NodeId L = g.add_node("L", 2);
  const NodeId M = g.add_node("M", 1);
  const NodeId N = g.add_node("N", 1);
  const NodeId O = g.add_node("O", 1);
  const NodeId P = g.add_node("P", 2);
  const NodeId Q = g.add_node("Q", 1);
  const NodeId R = g.add_node("R", 1);
  const NodeId S = g.add_node("S", 1);

  // Data volumes are sized so the start-up schedule lands in the paper's
  // 12-15 band and responds to the interconnect, while the feedback delays
  // leave the compactor the pipelining room its tables show (5-7 steps).
  g.add_edge(A, B, 0, 2);
  g.add_edge(B, H, 0, 2);
  g.add_edge(H, G, 0, 4);
  g.add_edge(G, M, 0, 2);
  g.add_edge(M, P, 0, 2);
  g.add_edge(C, I, 0, 2);
  g.add_edge(I, K, 0, 2);
  g.add_edge(K, N, 0, 2);
  g.add_edge(N, O, 0, 2);
  g.add_edge(F, J, 0, 2);
  g.add_edge(J, L, 0, 2);
  g.add_edge(L, Q, 0, 2);
  g.add_edge(D, M, 0, 2);
  g.add_edge(E, R, 0, 2);
  g.add_edge(O, R, 0, 2);
  g.add_edge(Q, R, 0, 2);
  g.add_edge(P, S, 0, 4);
  g.add_edge(R, S, 0, 2);
  // Loop-carried feedback.
  g.add_edge(S, A, 4, 3);
  g.add_edge(Q, G, 3, 1);
  g.add_edge(R, M, 3, 1);
  g.add_edge(O, C, 3, 1);
  g.add_edge(P, F, 2, 1);
  g.require_legal();
  CCS_ENSURES(g.node_count() == 19);
  return g;
}

namespace {

/// One wave-digital-filter adaptor section: 8 additions, 2 multiplications,
/// two intra-section state loops.  `u` is the section input; the section's
/// ladder output (a8) is returned.  When `deferred_input` is true the u
/// edges are loop-carried (d = 1) — used to close the global recurrence
/// into section 0.
NodeId ewf_section(Csdfg& g, int index, NodeId u, bool deferred_input) {
  const std::string p = "s" + std::to_string(index) + ".";
  // The filter's global state register bank: four registers on the
  // recurrence into section 0 keep the big cycle's time/delay ratio near
  // the intra-section recurrences (the real benchmark distributes its
  // registers similarly; a single register would make the 42-unit global
  // cycle the iteration bound and the filter unpipelinable).
  const int du = deferred_input ? 4 : 0;
  const NodeId a1 = g.add_node(p + "a1", 1);
  const NodeId a2 = g.add_node(p + "a2", 1);
  const NodeId m1 = g.add_node(p + "m1", 2);
  const NodeId a3 = g.add_node(p + "a3", 1);
  const NodeId a4 = g.add_node(p + "a4", 1);
  const NodeId m2 = g.add_node(p + "m2", 2);
  const NodeId a5 = g.add_node(p + "a5", 1);
  const NodeId a6 = g.add_node(p + "a6", 1);
  const NodeId a7 = g.add_node(p + "a7", 1);
  const NodeId a8 = g.add_node(p + "a8", 1);
  g.add_edge(u, a1, du, 1);
  g.add_edge(a6, a1, 1, 1);  // state loop 1
  g.add_edge(a1, a2, 0, 1);
  g.add_edge(a8, a2, 1, 1);  // state loop 2
  g.add_edge(a2, m1, 0, 1);
  g.add_edge(m1, a3, 0, 1);
  g.add_edge(a1, a3, 0, 1);
  g.add_edge(a3, a4, 0, 1);
  g.add_edge(u, a4, du, 1);
  g.add_edge(a4, m2, 0, 1);
  g.add_edge(m2, a5, 0, 1);
  g.add_edge(a3, a5, 0, 1);
  g.add_edge(a5, a6, 0, 1);
  g.add_edge(a2, a6, 0, 1);
  g.add_edge(a6, a7, 0, 1);
  g.add_edge(m1, a7, 0, 1);
  g.add_edge(a7, a8, 0, 1);
  g.add_edge(a4, a8, 0, 1);
  return a8;
}

}  // namespace

Csdfg elliptic_filter() {
  Csdfg g("elliptic");
  // Global recurrence: ga2 feeds section 0 through the filter's state
  // register; three adaptor sections in cascade; two output-side scaling
  // multipliers close the wave ladder.
  const NodeId ga2 = g.add_node("ga2", 1);  // created first, wired below
  const NodeId out0 = ewf_section(g, 0, ga2, /*deferred_input=*/true);
  const NodeId out1 = ewf_section(g, 1, out0, false);
  const NodeId out2 = ewf_section(g, 2, out1, false);
  const NodeId gm1 = g.add_node("gm1", 2);
  const NodeId ga1 = g.add_node("ga1", 1);
  const NodeId gm2 = g.add_node("gm2", 2);
  g.add_edge(out2, gm1, 0, 1);
  g.add_edge(gm1, ga1, 0, 1);
  g.add_edge(out0, ga1, 0, 1);
  g.add_edge(ga1, gm2, 0, 1);
  g.add_edge(gm2, ga2, 0, 1);
  g.add_edge(out1, ga2, 0, 1);
  g.require_legal();
  CCS_ENSURES(g.node_count() == 34);
  CCS_ENSURES(g.total_computation() == 42);  // 26 adds + 8 two-cycle muls
  return g;
}

Csdfg lattice_filter() {
  Csdfg g("lattice");
  constexpr int kStages = 5;
  const NodeId x = g.add_node("x", 1);  // input conditioning op (f_5 = x)

  // All-pole IIR lattice: for k = 5..1,
  //   f_{k-1} = f_k - K_k * b_{k-1}[n-1]      (MF_k, AF_k)
  //   b_k     = b_{k-1}[n-1] + K_k * f_{k-1}  (MB_k, AB_k)
  // with b_0 = f_0.  AF_k produces f_{k-1}; AB_k produces b_k.
  std::array<NodeId, kStages + 1> af{};  // af[k] produces f_{k-1}
  std::array<NodeId, kStages + 1> ab{};  // ab[k] produces b_k
  // Stage creation order follows the f-chain: k = 5 down to 1; the b_{k-1}
  // operands are wired afterwards because b_{k-1} for k > 1 is AB_{k-1},
  // created in the second loop.
  for (int k = kStages; k >= 1; --k) {
    const std::string s = std::to_string(k);
    const NodeId mf = g.add_node("MF" + s, 2);
    const NodeId afk = g.add_node("AF" + s, 1);
    const NodeId f_in = (k == kStages) ? x : af[static_cast<std::size_t>(k) + 1];
    g.add_edge(f_in, afk, 0, 1);
    g.add_edge(mf, afk, 0, 1);
    af[static_cast<std::size_t>(k)] = afk;
    // Stash the multiplier id in ab[] temporarily? No: record separately.
    ab[static_cast<std::size_t>(k)] = mf;  // temporary: MF id until b wired
  }
  // Wire the b-side: b_0 = f_0 = AF_1's output.
  std::array<NodeId, kStages + 1> b{};
  b[0] = af[1];
  for (int k = 1; k <= kStages; ++k) {
    const std::string s = std::to_string(k);
    const NodeId mf = ab[static_cast<std::size_t>(k)];
    g.add_edge(b[static_cast<std::size_t>(k) - 1], mf, 1, 1);  // b_{k-1}[n-1]
    const NodeId mb = g.add_node("MB" + s, 2);
    g.add_edge(af[static_cast<std::size_t>(k)], mb, 0, 1);  // K_k * f_{k-1}
    const NodeId abk = g.add_node("AB" + s, 1);
    g.add_edge(b[static_cast<std::size_t>(k) - 1], abk, 1, 1);
    g.add_edge(mb, abk, 0, 1);
    b[static_cast<std::size_t>(k)] = abk;
  }
  // Output ladder y = b_1 + ... + b_5.
  NodeId acc = b[1];
  for (int k = 2; k <= kStages; ++k) {
    const NodeId s = g.add_node("S" + std::to_string(k - 1), 1);
    g.add_edge(acc, s, 0, 1);
    g.add_edge(b[static_cast<std::size_t>(k)], s, 0, 1);
    acc = s;
  }
  g.require_legal();
  CCS_ENSURES(g.node_count() == 25);
  CCS_ENSURES(g.total_computation() == 35);  // 15 adds + 10 two-cycle muls
  return g;
}

Csdfg iir_biquad_cascade(std::size_t sections) {
  CCS_EXPECTS(sections >= 1);
  Csdfg g("biquad_x" + std::to_string(sections));
  const NodeId x = g.add_node("x", 1);
  NodeId in = x;
  for (std::size_t s = 0; s < sections; ++s) {
    const std::string p = "b" + std::to_string(s) + ".";
    // Direct-form II: w = x - a1*w[n-1] - a2*w[n-2];
    //                 y = b0*w + b1*w[n-1] + b2*w[n-2].
    const NodeId a1w = g.add_node(p + "a1w", 2);
    const NodeId a2w = g.add_node(p + "a2w", 2);
    const NodeId s1 = g.add_node(p + "s1", 1);
    const NodeId w = g.add_node(p + "w", 1);
    const NodeId b0w = g.add_node(p + "b0w", 2);
    const NodeId b1w = g.add_node(p + "b1w", 2);
    const NodeId b2w = g.add_node(p + "b2w", 2);
    const NodeId y1 = g.add_node(p + "y1", 1);
    const NodeId y = g.add_node(p + "y", 1);
    g.add_edge(in, s1, 0, 1);
    g.add_edge(a1w, s1, 0, 1);
    g.add_edge(s1, w, 0, 1);
    g.add_edge(a2w, w, 0, 1);
    g.add_edge(w, a1w, 1, 1);
    g.add_edge(w, a2w, 2, 1);
    g.add_edge(w, b0w, 0, 1);
    g.add_edge(w, b1w, 1, 1);
    g.add_edge(w, b2w, 2, 1);
    g.add_edge(b0w, y1, 0, 1);
    g.add_edge(b1w, y1, 0, 1);
    g.add_edge(y1, y, 0, 1);
    g.add_edge(b2w, y, 0, 1);
    in = y;
  }
  g.require_legal();
  return g;
}

Csdfg fir_filter(std::size_t taps) {
  CCS_EXPECTS(taps >= 2);
  Csdfg g("fir" + std::to_string(taps));
  const NodeId x = g.add_node("x", 1);
  NodeId acc = 0;
  for (std::size_t i = 0; i < taps; ++i) {
    const NodeId m = g.add_node("m" + std::to_string(i), 2);
    g.add_edge(x, m, static_cast<int>(i), 1);  // tap line: one delay/stage
    if (i == 0) {
      acc = m;
    } else {
      const NodeId s = g.add_node("s" + std::to_string(i), 1);
      g.add_edge(acc, s, 0, 1);
      g.add_edge(m, s, 0, 1);
      acc = s;
    }
  }
  g.require_legal();
  return g;
}

Csdfg diffeq_solver() {
  Csdfg g("diffeq");
  const NodeId dx = g.add_node("dx", 1);
  const NodeId m1 = g.add_node("m1", 2);  // 3*x
  const NodeId m2 = g.add_node("m2", 2);  // u*dx
  const NodeId m3 = g.add_node("m3", 2);  // 3*x*u*dx
  const NodeId m4 = g.add_node("m4", 2);  // 3*y
  const NodeId m5 = g.add_node("m5", 2);  // 3*y*dx
  const NodeId m6 = g.add_node("m6", 2);  // u*dx (y-update path)
  const NodeId s1 = g.add_node("s1", 1);  // u - m3
  const NodeId u1 = g.add_node("u1", 1);  // s1 - m5
  const NodeId y1 = g.add_node("y1", 1);  // y + m6
  const NodeId x1 = g.add_node("x1", 1);  // x + dx
  const NodeId cmp = g.add_node("cmp", 1);
  g.add_edge(x1, m1, 1, 1);
  g.add_edge(u1, m2, 1, 1);
  g.add_edge(dx, m2, 0, 1);
  g.add_edge(m1, m3, 0, 1);
  g.add_edge(m2, m3, 0, 1);
  g.add_edge(y1, m4, 1, 1);
  g.add_edge(m4, m5, 0, 1);
  g.add_edge(dx, m5, 0, 1);
  g.add_edge(u1, m6, 1, 1);
  g.add_edge(dx, m6, 0, 1);
  g.add_edge(u1, s1, 1, 1);
  g.add_edge(m3, s1, 0, 1);
  g.add_edge(s1, u1, 0, 1);
  g.add_edge(m5, u1, 0, 1);
  g.add_edge(y1, y1, 1, 1);
  g.add_edge(m6, y1, 0, 1);
  g.add_edge(x1, x1, 1, 1);
  g.add_edge(dx, x1, 0, 1);
  g.add_edge(x1, cmp, 0, 1);
  g.require_legal();
  return g;
}

Csdfg correlator(std::size_t taps) {
  CCS_EXPECTS(taps >= 1);
  Csdfg g("correlator" + std::to_string(taps));
  const NodeId host = g.add_node("host", 1);
  std::vector<NodeId> cmp, add;
  for (std::size_t k = 0; k < taps; ++k) {
    cmp.push_back(g.add_node("c" + std::to_string(k + 1), 3));
    add.push_back(g.add_node("a" + std::to_string(k + 1), 7));
  }
  // Delayed comparator chain: host -> c1 -> c2 -> ... (one register each).
  g.add_edge(host, cmp[0], 1, 1);
  for (std::size_t k = 0; k + 1 < taps; ++k)
    g.add_edge(cmp[k], cmp[k + 1], 1, 1);
  // Undelayed adder reduction back to the host.
  for (std::size_t k = 0; k < taps; ++k) g.add_edge(cmp[k], add[k], 0, 1);
  for (std::size_t k = taps - 1; k > 0; --k)
    g.add_edge(add[k], add[k - 1], 0, 1);
  g.add_edge(add[0], host, 0, 1);
  g.require_legal();
  CCS_ENSURES(g.node_count() == 2 * taps + 1);
  return g;
}

}  // namespace ccs
