#include "workloads/generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ccs {

Csdfg random_csdfg(const RandomDfgConfig& config, std::uint64_t seed) {
  if (config.num_nodes < 2) throw GraphError("random_csdfg: num_nodes < 2");
  if (config.num_layers < 1) throw GraphError("random_csdfg: num_layers < 1");
  if (config.num_nodes < config.num_layers)
    throw GraphError("random_csdfg: fewer nodes than layers");
  if (config.max_time < 1 || config.max_volume < 1 || config.max_delay < 1)
    throw GraphError("random_csdfg: max_time/max_volume/max_delay must be >= 1");
  if (config.extra_edge_prob < 0.0 || config.extra_edge_prob > 1.0)
    throw GraphError("random_csdfg: extra_edge_prob outside [0,1]");

  Rng rng(seed);
  Csdfg g("random_s" + std::to_string(seed));

  // Assign nodes to layers: one guaranteed per layer, the rest uniform.
  std::vector<std::size_t> layer_of(config.num_nodes);
  for (std::size_t i = 0; i < config.num_layers; ++i) layer_of[i] = i;
  for (std::size_t i = config.num_layers; i < config.num_nodes; ++i)
    layer_of[i] = rng.uniform_size(0, config.num_layers - 1);
  std::sort(layer_of.begin(), layer_of.end());

  std::vector<std::vector<NodeId>> layers(config.num_layers);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    const NodeId v = g.add_node("n" + std::to_string(i),
                                rng.uniform_int(1, config.max_time));
    layers[layer_of[i]].push_back(v);
  }

  auto volume = [&] { return rng.uniform_size(1, config.max_volume); };

  // Connectivity spine + extra forward edges, all zero-delay.
  for (std::size_t l = 1; l < config.num_layers; ++l) {
    for (NodeId v : layers[l]) {
      const auto& prev = layers[l - 1];
      const NodeId parent = prev[rng.uniform_size(0, prev.size() - 1)];
      g.add_edge(parent, v, 0, volume());
      for (NodeId u : prev) {
        if (u != parent && rng.bernoulli(config.extra_edge_prob))
          g.add_edge(u, v, 0, volume());
      }
    }
  }

  // Loop-carried back edges: from any node to a node in the same or an
  // earlier layer (self-loops allowed); positive delay keeps them legal.
  for (std::size_t k = 0; k < config.num_back_edges; ++k) {
    NodeId from = rng.uniform_size(0, config.num_nodes - 1);
    NodeId to = rng.uniform_size(0, config.num_nodes - 1);
    // Bias toward genuinely backward edges for interesting recurrences.
    if (layer_of[to] > layer_of[from]) std::swap(to, from);
    g.add_edge(from, to, rng.uniform_int(1, config.max_delay), volume());
  }

  g.require_legal();
  CCS_ENSURES(g.node_count() == config.num_nodes);
  return g;
}

}  // namespace ccs
