// ccsched — workload transforms.
//
// Table 11 schedules the filters "with a slow down factor of 3".  Following
// the retiming literature, c-slowdown multiplies every loop-carried delay by
// c (the c-slowed graph processes c interleaved problem instances, giving
// the rotation phase c times the pipelining room).  The paper's reported
// start-up lengths (126 for the elliptic filter = 3 x its total computation
// 42; 105 = 3 x 35 for the lattice filter) additionally correspond to
// expressing computation times in a 3x finer clock, so the Table 11 bench
// applies both scale_times(3) and slowdown(3); see DESIGN.md §5.
#pragma once

#include "core/csdfg.hpp"

namespace ccs {

/// c-slowdown: multiplies every edge delay by `factor` (>= 1).  Node times
/// and volumes are unchanged.  Legality is preserved.
[[nodiscard]] Csdfg slowdown(const Csdfg& g, int factor);

/// Expresses computation times in a `factor`-times finer clock: every node
/// time is multiplied by `factor` (>= 1).  Delays and volumes unchanged.
[[nodiscard]] Csdfg scale_times(const Csdfg& g, int factor);

/// Multiplies every edge's data volume by `factor` (>= 1) — used by the
/// sweeps to vary the computation/communication ratio.
[[nodiscard]] Csdfg scale_volumes(const Csdfg& g, std::size_t factor);

}  // namespace ccs
