// ccsched — seeded random CSDFG generation.
//
// The ablation and scaling benches (A1-A5 in DESIGN.md) sweep over families
// of synthetic loop bodies.  Graphs are generated layered-DAG-first (which
// makes zero-delay legality true by construction) and then closed with
// loop-carried back edges; every quantity is drawn from a deterministic
// seeded stream, so an experiment is identified by its config + seed.
#pragma once

#include <cstdint>

#include "core/csdfg.hpp"
#include "util/rng.hpp"

namespace ccs {

/// Shape parameters of a random CSDFG.
struct RandomDfgConfig {
  std::size_t num_nodes = 20;  ///< >= 2.
  std::size_t num_layers = 5;  ///< >= 1; depth of the zero-delay DAG.
  /// Probability of an extra zero-delay edge between consecutive-layer
  /// pairs beyond the connectivity spine.
  double extra_edge_prob = 0.25;
  std::size_t num_back_edges = 3;  ///< Loop-carried edges (delay >= 1).
  int max_time = 3;                ///< Node times drawn from [1, max_time].
  std::size_t max_volume = 3;      ///< Volumes drawn from [1, max_volume].
  int max_delay = 3;               ///< Back-edge delays from [1, max_delay].
};

/// Generates a legal CSDFG:
///  * nodes are split across `num_layers` layers (each layer non-empty),
///  * every non-first-layer node receives at least one zero-delay edge from
///    the previous layer (the DAG is connected layer to layer),
///  * extra zero-delay edges are added between consecutive layers with
///    probability `extra_edge_prob`,
///  * `num_back_edges` loop-carried edges run from later to earlier layers
///    (or self-loops) with delay in [1, max_delay].
/// Deterministic in (config, seed).  Throws GraphError on nonsensical
/// configs (num_nodes < num_layers, num_nodes < 2, ...).
[[nodiscard]] Csdfg random_csdfg(const RandomDfgConfig& config,
                                 std::uint64_t seed);

}  // namespace ccs
