// ccsched — the benchmark CSDFGs used across the paper's experiments.
//
// * paper_example6   — Figure 1(b) verbatim: the 6-task general-time CSDFG
//   whose scheduling on a 2x2 mesh the paper walks through (7 -> 5 steps).
// * paper_example19  — the 19-task general-time CSDFG of Figure 7.  The scan
//   preserves only the node names and the execution times (t = 2 for C, F,
//   J, L, P); the edge list is reconstructed to be consistent with the
//   printed start-up tables (three pipelined chains, a reduction tail, and
//   five loop-carried feedback edges).  See DESIGN.md §5.
// * elliptic_filter  — a 5th-order elliptic wave-digital filter structure
//   with the community benchmark's op counts (26 additions, 8
//   multiplications; t(add)=1, t(mul)=2) and eight loop-carried state edges.
// * lattice_filter   — a 5-stage all-pole IIR lattice filter (10 mul, 15
//   add) with per-stage state recurrences; total computation 35, matching
//   the paper's reported start-up band after time scaling.
// * iir_biquad_cascade, fir_filter, diffeq_solver — additional realistic
//   workloads for the examples and sweeps.
#pragma once

#include <cstddef>

#include "core/csdfg.hpp"

namespace ccs {

/// Figure 1(b): six tasks, t(B)=t(E)=2, delays d(D->A)=3, d(F->E)=1,
/// volumes c(B->E)=c(D->F)=2, c(D->A)=3, all others 1.
[[nodiscard]] Csdfg paper_example6();

/// Figure 7: nineteen tasks A..S with t(C)=t(F)=t(J)=t(L)=t(P)=2
/// (reconstructed edges; see DESIGN.md §5).
[[nodiscard]] Csdfg paper_example19();

/// 5th-order elliptic wave filter: 34 operations (26 add @ t=1, 8 mul @
/// t=2), 8 state (delay) edges; iteration-bound-limited like the classic
/// HLS benchmark.
[[nodiscard]] Csdfg elliptic_filter();

/// 5-stage all-pole IIR lattice filter: 25 operations (15 add @ t=1, 10 mul
/// @ t=2), one state edge per stage.
[[nodiscard]] Csdfg lattice_filter();

/// Cascade of `sections` direct-form-II IIR biquads (each: 4 add, 5 mul,
/// 2 state edges); sections >= 1.
[[nodiscard]] Csdfg iir_biquad_cascade(std::size_t sections);

/// Transversal FIR filter with `taps` taps: acyclic but delay-rich (the tap
/// line carries one delay per stage); taps >= 2.
[[nodiscard]] Csdfg fir_filter(std::size_t taps);

/// The classic HAL differential-equation solver loop body (second-order
/// Euler step): 6 multiplications (t=2), 4 additions/subtractions and one
/// comparison (t=1), with the loop-carried updates of x, y and dy.
[[nodiscard]] Csdfg diffeq_solver();

/// Leiserson & Saxe's simple correlator (the canonical retiming example,
/// "Retiming synchronous circuitry" Fig. 1), generalized to `taps`
/// comparators (t=3) and adders (t=7) around a host (t=1): the delayed
/// comparator chain feeds an undelayed adder reduction back to the host.
/// Its zero-delay critical path collapses dramatically under min-period
/// retiming.  taps >= 1.
[[nodiscard]] Csdfg correlator(std::size_t taps);

}  // namespace ccs
