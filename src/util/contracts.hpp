// ccsched — contract checking macros.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", I.8 "Prefer Ensures() for expressing postconditions"), the
// library states its contracts explicitly.  Violations throw
// ccs::ContractViolation rather than aborting so that the test suite can
// assert on them (failure-injection tests rely on this), while release builds
// keep the checks enabled — scheduling runs are short and correctness is the
// product.
#pragma once

#include <stdexcept>
#include <string>

namespace ccs {

/// Thrown when a precondition, postcondition, or internal invariant of the
/// library is violated.  Indicates a bug in the caller (for CCS_EXPECTS) or
/// in the library itself (for CCS_ENSURES / CCS_ASSERT).
class ContractViolation : public std::logic_error {
public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failed(const char* kind, const char* expr,
                                  const char* file, int line);
}  // namespace detail

}  // namespace ccs

/// Precondition check: the caller must guarantee `cond`.
#define CCS_EXPECTS(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ccs::detail::contract_failed("precondition", #cond, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

/// Postcondition check: the callee guarantees `cond` on exit.
#define CCS_ENSURES(cond)                                                    \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ccs::detail::contract_failed("postcondition", #cond, __FILE__,       \
                                     __LINE__);                              \
  } while (false)

/// Internal invariant check.
#define CCS_ASSERT(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ccs::detail::contract_failed("invariant", #cond, __FILE__,           \
                                     __LINE__);                              \
  } while (false)
