// ccsched — line normalization shared by every text parser.
//
// All of the repo's text formats (graph, schedule, SDF, fault spec) are
// line-oriented.  Files arrive from any platform and any editor, so every
// parser strips a UTF-8 byte-order mark from the first line and a trailing
// carriage return from every line before tokenizing — CRLF and BOM'd
// inputs must parse identically to plain LF files, never as mysterious
// "unknown directive" diagnostics on otherwise valid lines.
#pragma once

#include <string>

namespace ccs {

/// Normalizes one line in place: strips the UTF-8 BOM when `first_line`,
/// and a trailing '\r' always.
inline void normalize_parsed_line(std::string& line, bool first_line) {
  if (first_line && line.size() >= 3 && line[0] == '\xEF' &&
      line[1] == '\xBB' && line[2] == '\xBF')
    line.erase(0, 3);
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace ccs
