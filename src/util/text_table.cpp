#include "util/text_table.hpp"

#include <algorithm>
#include <sstream>

namespace ccs {

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  if (!header_.empty()) {
    emit(header_);
    for (std::size_t c = 0; c < cols; ++c)
      os << '|' << std::string(width[c] + 2, '-');
    os << "|\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ccs
