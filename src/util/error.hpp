// ccsched — user-facing error type.
//
// Per Core Guidelines I.10, failures to perform a requested task (malformed
// input graphs, unparsable files, infeasible requests) are reported with
// exceptions.  ccs::Error is the base for all such conditions; it is distinct
// from ContractViolation, which flags API misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace ccs {

/// Base class for all recoverable ccsched errors (bad input, infeasible
/// request, parse failure).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// An input CSDFG violates a structural requirement (e.g. a cycle with zero
/// total delay, an edge endpoint out of range, a non-positive execution time).
class GraphError : public Error {
public:
  using Error::Error;
};

/// An architecture description is malformed (disconnected topology, bad
/// dimensions, unknown processor index).
class ArchitectureError : public Error {
public:
  using Error::Error;
};

/// A textual artifact (graph file, architecture spec) failed to parse.
class ParseError : public Error {
public:
  using Error::Error;
};

/// A scheduling request cannot be satisfied (e.g. no feasible placement under
/// the requested policy).
class ScheduleError : public Error {
public:
  using Error::Error;
};

}  // namespace ccs
