// ccsched — user-facing error type.
//
// Per Core Guidelines I.10, failures to perform a requested task (malformed
// input graphs, unparsable files, infeasible requests) are reported with
// exceptions.  ccs::Error is the base for all such conditions; it is distinct
// from ContractViolation, which flags API misuse.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace ccs {

/// Base class for all recoverable ccsched errors (bad input, infeasible
/// request, parse failure).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// An input CSDFG violates a structural requirement (e.g. a cycle with zero
/// total delay, an edge endpoint out of range, a non-positive execution time).
class GraphError : public Error {
public:
  using Error::Error;
};

/// An architecture description is malformed (disconnected topology, bad
/// dimensions, unknown processor index).
class ArchitectureError : public Error {
public:
  using Error::Error;
};

/// A textual artifact (graph file, architecture spec) failed to parse.
///
/// Carries the structured (line, message) pair so the diagnostics engine
/// (src/analysis) can attach a source span; what() renders the classic
/// "line N: message" string for plain-text consumers.
class ParseError : public Error {
public:
  /// Whole-artifact failure with no line attribution (line() == 0).
  explicit ParseError(const std::string& message)
      : Error(message), detail_(message) {}

  /// Failure at 1-based `line` of the parsed artifact.
  ParseError(std::size_t line, const std::string& message)
      : Error("line " + std::to_string(line) + ": " + message),
        line_(line),
        detail_(message) {}

  /// 1-based source line of the failure; 0 when unattributed.
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

  /// The bare message, without the "line N: " prefix what() adds.
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

private:
  std::size_t line_ = 0;
  std::string detail_;
};

/// A scheduling request cannot be satisfied (e.g. no feasible placement under
/// the requested policy).
class ScheduleError : public Error {
public:
  using Error::Error;
};

}  // namespace ccs
