// ccsched — minimal dense row-major matrix.
//
// Used for hop-distance tables, path-weight matrices (Leiserson–Saxe W/D),
// and schedule occupancy grids.  Value-semantic, bounds-checked through
// contracts, no external dependencies.
#pragma once

#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace ccs {

/// Dense row-major matrix with contract-checked element access.
template <typename T>
class Matrix {
public:
  Matrix() = default;

  /// Creates a rows×cols matrix with every element set to `init`.
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    CCS_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    CCS_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Sets every element to `value`.
  void fill(const T& value) {
    for (auto& x : data_) x = value;
  }

  [[nodiscard]] bool operator==(const Matrix&) const = default;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace ccs
