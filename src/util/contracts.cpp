#include "util/contracts.hpp"

#include <sstream>

namespace ccs::detail {

void contract_failed(const char* kind, const char* expr, const char* file,
                     int line) {
  std::ostringstream os;
  os << "ccsched " << kind << " violated: (" << expr << ") at " << file << ':'
     << line;
  throw ContractViolation(os.str());
}

}  // namespace ccs::detail
