// ccsched — plain-text table rendering.
//
// The paper communicates its results as schedule tables (control steps ×
// processors) and summary tables (Table 11).  TextTable renders both kinds in
// aligned ASCII, used by the examples, the benches, and EXPERIMENTS.md
// regeneration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ccs {

/// Builds an aligned, pipe-separated ASCII table.
///
/// Usage:
///   TextTable t;
///   t.set_header({"cs", "pe1", "pe2"});
///   t.add_row({"1", "A", ""});
///   std::string s = t.to_string();
class TextTable {
public:
  /// Sets the header row.  Column count is fixed by the longest row seen.
  void set_header(std::vector<std::string> cells);

  /// Appends a data row.  Rows may have differing lengths; missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with a header underline and single-space padding.
  [[nodiscard]] std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccs
