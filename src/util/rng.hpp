// ccsched — deterministic random number utilities.
//
// All stochastic components of the library (workload generators, randomized
// ablation sweeps) draw from this wrapper so that every experiment is
// reproducible from a single 64-bit seed.  Wall-clock seeding is deliberately
// not offered.
#pragma once

#include <cstdint>
#include <random>

#include "util/contracts.hpp"

namespace ccs {

/// Seeded pseudo-random source.  Thin, value-semantic wrapper over
/// std::mt19937_64 with convenience draws used throughout the workload
/// generators.
class Rng {
public:
  /// Constructs a generator with a fixed seed; the same seed always yields
  /// the same stream on every platform (mt19937_64 is fully specified).
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] int uniform_int(int lo, int hi) {
    CCS_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in the inclusive range [lo, hi].
  [[nodiscard]] std::size_t uniform_size(std::size_t lo, std::size_t hi) {
    CCS_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::size_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p) {
    CCS_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Access to the underlying engine for std::shuffle and distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
  std::mt19937_64 engine_;
};

}  // namespace ccs
