// ccsched — static lower-bound analyses over (graph, machine).
//
// The cyclo-compaction loop (and the portfolio around it) reports "best
// schedule found", but never how far from optimal that is.  This module
// derives a family of *sound* static lower bounds on the length of any
// valid static cyclic schedule of a CSDFG on a concrete machine — each one
// provable directly from the master constraint the validator enforces
// (core/validator.cpp) — and packages every bound as a stable CCS-B
// diagnostic with a witness that re-derives the value.
//
// Two composites matter, because "sound" is relative to what the schedule
// is allowed to do:
//
//  * CompositeBound::value — the max over passes whose derivation survives
//    ANY legal retiming of the graph.  Cyclo-compaction retimes before it
//    schedules, so only these passes may prune portfolio attempts, feed
//    the Solver's {lower_bound, gap, optimal} fields, or claim optimality.
//    Invariant passes only use retiming-invariant quantities: task times,
//    totals, per-cycle delay sums, data volumes, node/edge counts.
//
//  * CompositeBound::local_value — the max over ALL passes, sound for the
//    graph exactly as given (its current delay placement).  The certifier
//    uses it (CCS-S015): a certified table of THIS graph that beats
//    local_value exposes a first-principles bug in either derivation.
//
// Passes (see docs/DIAGNOSTICS.md for the catalogue prose):
//   CCS-B001  ceil'd iteration bound, critical-cycle witness.
//   CCS-B002  speed-aware work conservation per heterogeneous speed class
//             + longest-task floor.
//   CCS-B003  pipelined-issue bound ceil(n/P).
//   CCS-B004  communication-aware critical-cycle bound: the cycle either
//             serializes on one PE or pays >= 2 cheapest transfers per
//             delay window.
//   CCS-B005  topology cut bound (store-and-forward latency form); NOT
//             retiming-invariant (uses per-edge delay windows) — local
//             composite only.
//   CCS-B006  retiming-feasibility bound: s_min × the minimum achievable
//             clock period over all legal retimings (d_r(e) >= 0).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rules.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/cyclo_compaction.hpp"

namespace ccs {

/// The machine a bound is computed against — the same facts the validator
/// checks a table with, decoupled from how the caller obtained them
/// (Topology + options, or an already-built ScheduleTable).
struct BoundMachine {
  /// Number of processing elements, >= 1.
  std::size_t num_pes = 1;
  /// Per-PE slowdown factors (>= 1); empty means homogeneous speed 1.
  /// When non-empty the size must equal num_pes.
  std::vector<int> speeds;
  /// Pipelined PEs: a task occupies only its issue step.
  bool pipelined = false;
  /// Communication model; nullptr makes CCS-B004 price transfers at zero
  /// (conservative, still sound) and disables CCS-B005 entirely (its
  /// per-edge delay windows would be unknowable).
  const CommModel* comm = nullptr;

  /// Slowdown factor of PE `pe` (1 when speeds is empty).
  [[nodiscard]] int speed(std::size_t pe) const {
    return speeds.empty() ? 1 : speeds[pe];
  }
  /// The fastest (smallest) slowdown factor on the machine.
  [[nodiscard]] int min_speed() const;
};

/// Builds the BoundMachine the portfolio/solver analyze against from the
/// caller-facing knobs: topology size, the startup speed list, and the
/// pipelined flag of `options`.
[[nodiscard]] BoundMachine machine_view(const Topology& topo,
                                        const CommModel& comm,
                                        const CycloCompactionOptions& options);

/// One pass's result: a proven lower bound with its derivation.
struct BoundResult {
  /// Catalogue code ("CCS-B001", ...).
  std::string_view code;
  /// The proven floor: every valid schedule has length() >= value.
  int value = 0;
  /// True when the derivation holds for EVERY legal retiming of the graph
  /// (and thus for schedules cyclo-compaction produces after retiming).
  bool invariant = false;
  /// Human-readable derivation, e.g. the critical cycle and its totals.
  std::string witness;
  /// Machine-checkable witness payload; reverify() re-derives `value`
  /// from it.  Layout is pass-specific and documented in bounds.cpp.
  std::vector<long long> data;
};

/// One static lower-bound pass.  Stateless const singleton; run() must be
/// deterministic and assumes a LEGAL graph (callers gate on is_legal()).
class BoundPass {
public:
  BoundPass() = default;
  BoundPass(const BoundPass&) = delete;
  BoundPass& operator=(const BoundPass&) = delete;
  virtual ~BoundPass() = default;

  /// The catalogue entry this pass reports under.
  [[nodiscard]] virtual const LintRule& rule() const = 0;

  /// Computes the bound, or nullopt when the pass does not apply (acyclic
  /// graph for the cycle passes, non-pipelined machine for CCS-B003, no
  /// comm model for the communication passes, ...).
  [[nodiscard]] virtual std::optional<BoundResult> run(
      const Csdfg& g, const BoundMachine& machine) const = 0;

  /// Re-derives `result.value` from its own witness payload against the
  /// same graph and machine; false means the witness does not support the
  /// claimed value (a first-principles bug, surfaced as CCS-S015).
  [[nodiscard]] virtual bool reverify(const Csdfg& g,
                                      const BoundMachine& machine,
                                      const BoundResult& result) const = 0;
};

/// The registered passes, in catalogue (CCS-B code) order.
[[nodiscard]] const std::vector<const BoundPass*>& bound_passes();

/// All applicable bounds over one (graph, machine), plus the two maxima.
struct CompositeBound {
  /// Max over retiming-invariant passes — sound for any schedule of any
  /// legal retiming of the graph.  >= 1 for non-empty graphs.
  int value = 0;
  /// Max over all passes — sound for the graph's exact delay placement.
  /// Always >= value.
  int local_value = 0;
  /// Code of a pass attaining `value` (lowest code wins ties); empty when
  /// no pass applied.
  std::string_view dominant;
  /// Code of a pass attaining `local_value`.
  std::string_view dominant_local;
  /// Every applicable pass's result, in catalogue order.
  std::vector<BoundResult> parts;

  /// The part reported under `code`, or nullptr if the pass did not apply.
  [[nodiscard]] const BoundResult* part(std::string_view code) const;
};

/// Runs every applicable pass.  `g` must be legal (throws GraphError
/// otherwise, via the underlying analyses).  Deterministic.
[[nodiscard]] CompositeBound compute_bounds(const Csdfg& g,
                                            const BoundMachine& machine);

/// Convenience overload: machine_view(topo, comm, options) first.
[[nodiscard]] CompositeBound compute_bounds(
    const Csdfg& g, const Topology& topo, const CommModel& comm,
    const CycloCompactionOptions& options);

/// Emits one kNote diagnostic per part (anchored at `span`), in catalogue
/// order, each carrying the bound value and witness text.  Does not
/// finalize the bag.
void report_bounds(const CompositeBound& composite, const SourceSpan& span,
                   DiagnosticBag& bag);

}  // namespace ccs
