// ccsched — the lint rule catalogue.
//
// Every diagnostic the analysis subsystem can emit carries a *stable* code
// (CCS-P### parse, CCS-G### graph structure, CCS-A### architecture fit,
// CCS-S### schedule certification).
// Codes are append-only API: CI annotations, suppression lists, and the
// SARIF `rules` array all key on them, so a rule may be retired but its
// code is never reused.  docs/DIAGNOSTICS.md is the human-facing catalogue
// and must stay in sync with all_rules().
#pragma once

#include <span>
#include <string_view>

#include "analysis/diagnostics.hpp"

namespace ccs {

/// Static metadata of one lint rule.
struct LintRule {
  std::string_view code;      ///< Stable identifier, e.g. "CCS-G001".
  std::string_view name;      ///< Kebab-case short name for reports.
  Severity severity;          ///< Default severity of every finding.
  std::string_view summary;   ///< One-line description (SARIF shortDescription).
  std::string_view remedy;    ///< How to fix the input (SARIF help text).
};

/// The full catalogue in code order (the SARIF rules array and docs follow
/// this order; rule_index() below is an index into it).
[[nodiscard]] std::span<const LintRule> all_rules();

/// Looks up a rule by code; returns nullptr for unknown codes.
[[nodiscard]] const LintRule* find_rule(std::string_view code);

/// Position of `code` within all_rules(), or npos-like all_rules().size()
/// when unknown (used for the SARIF ruleIndex field).
[[nodiscard]] std::size_t rule_index(std::string_view code);

}  // namespace ccs
