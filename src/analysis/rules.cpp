#include "analysis/rules.hpp"

#include <array>

namespace ccs {

namespace {

constexpr std::array<LintRule, 44> kRules{{
    {"CCS-P001", "syntax-error", Severity::kError,
     "A line of the graph file does not match any directive grammar.",
     "Use `graph <name>`, `node <name> <time>`, or `edge <from> <to> "
     "<delay> [volume]`; `#` starts a comment."},
    {"CCS-P002", "unknown-node", Severity::kError,
     "An edge references a node name that no node directive declares.",
     "Declare the node before the first edge that uses it, or fix the "
     "spelling."},
    {"CCS-P003", "misplaced-graph-directive", Severity::kError,
     "A graph directive is duplicated or appears after the first node.",
     "Keep exactly one `graph <name>` line and put it before every node."},
    {"CCS-G001", "zero-delay-cycle", Severity::kError,
     "A dependence cycle carries zero total delay, so an iteration would "
     "depend on its own future.",
     "Add at least one loop-carried delay (a register) somewhere on the "
     "cycle, or break the cycle."},
    {"CCS-G002", "zero-delay-self-loop", Severity::kError,
     "A node depends on itself within the same iteration, which is "
     "unsatisfiable.",
     "Give the self-loop a delay of at least 1 so it refers to a previous "
     "iteration."},
    {"CCS-G003", "non-positive-time", Severity::kError,
     "A node declares a computation time below 1 control step.",
     "Computation times t(v) must be >= 1; model free tasks with time 1."},
    {"CCS-G004", "non-positive-volume", Severity::kError,
     "An edge declares a data volume below 1.",
     "Data volumes c(e) must be >= 1; omit the volume field to default "
     "to 1."},
    {"CCS-G005", "negative-delay", Severity::kError,
     "An edge declares a negative loop-carried delay.",
     "Delays d(e) count registers and must be >= 0."},
    {"CCS-G006", "duplicate-edge", Severity::kWarning,
     "Two edges connect the same nodes with the same delay; their volumes "
     "do not merge and the duplicate only tightens constraints redundantly.",
     "Remove the duplicate, or combine the transfers into one edge with "
     "the summed volume."},
    {"CCS-G007", "isolated-node", Severity::kWarning,
     "A node has no incident edges; it constrains nothing and is likely a "
     "leftover or a typo.",
     "Connect the node to the dependence structure or delete it."},
    {"CCS-G008", "delay-starved-cycle", Severity::kWarning,
     "The critical cycle carries a single delay and its computation time "
     "reaches the critical path, so the recurrence serializes every "
     "iteration and no retiming or remapping can shorten the schedule.",
     "Deepen the cycle's delays (c-slow the loop) or shorten the tasks on "
     "the critical cycle."},
    {"CCS-A001", "insufficient-processors", Severity::kWarning,
     "The zero-delay DAG offers more simultaneously ready tasks than the "
     "architecture has processors, so the schedule must serialize "
     "parallelism.",
     "Use a wider machine, or accept the serialization if throughput "
     "still meets the iteration bound."},
    {"CCS-A002", "oversized-communication", Severity::kWarning,
     "An edge's data volume is at least the projected schedule length, so "
     "even a single-hop transfer cannot complete within one iteration "
     "period; the endpoints are effectively pinned to one processor.",
     "Reduce the edge's volume, speed up the interconnect model, or keep "
     "both endpoints on the same processor."},
    {"CCS-A003", "speed-list-mismatch", Severity::kError,
     "The heterogeneous speed list does not match the architecture: wrong "
     "processor count or a factor below 1.",
     "Give exactly one integer slowdown factor >= 1 per processor."},
    {"CCS-S001", "schedule-syntax", Severity::kError,
     "A line of the schedule file does not parse, or a directive does not "
     "pair with the graph or architecture being certified.",
     "Use `schedule <length> <pes> [pipelined]`, `speeds ...`, `place "
     "<task> <pe> <cb>`, `retime <task> <r>`; place every task exactly "
     "once on an in-range processor of the certified architecture."},
    {"CCS-S002", "unplaced-task", Severity::kError,
     "A task of the graph has no place directive, so the cyclic schedule "
     "is incomplete.",
     "Add a `place` line for the task; every task executes exactly once "
     "per iteration of a static cyclic schedule."},
    {"CCS-S003", "out-of-table", Severity::kError,
     "A task's occupied steps [CB, CE] extend outside the declared table "
     "of length L.",
     "Start the task at step >= 1 and either move it earlier or declare a "
     "longer schedule length."},
    {"CCS-S004", "resource-conflict", Severity::kError,
     "Two tasks occupy the same processor at the same control step on a "
     "non-pipelined machine.",
     "Move one task to a free slot; a non-pipelined processor executes "
     "one task at a time."},
    {"CCS-S005", "issue-conflict", Severity::kError,
     "Two tasks issue in the same control step on the same pipelined "
     "processor.",
     "Stagger the issue steps; a pipelined processor issues at most one "
     "task per control step."},
    {"CCS-S006", "dependence-violation", Severity::kError,
     "An intra-iteration dependence breaks the master constraint "
     "CB(v) >= CE(u) + M + 1: the consumer starts before the producer's "
     "data can arrive.",
     "Start the consumer later, shorten the communication path, or "
     "co-locate the endpoints so M = 0."},
    {"CCS-S007", "psl-overrun", Severity::kError,
     "A loop-carried dependence cannot complete its communication within "
     "the declared cyclic length: CB(v) + k*L < CE(u) + M + 1 (Lemma "
     "4.3), so the declared length is below the projected schedule "
     "length.",
     "Pad the schedule to the recomputed minimum feasible length the "
     "certifier reports, or shorten the communication path."},
    {"CCS-S008", "illegal-retiming", Severity::kError,
     "The recorded accumulated retiming is not legal: some edge's "
     "un-retimed delay d(e) - r(u) + r(v) is negative, so no legal "
     "rotation sequence can have produced this graph from a legal "
     "original.",
     "Record the retiming of the actual rotation sequence; a rotation may "
     "only draw delays from edges that carry them (Lemma 4.1)."},
    {"CCS-S009", "non-monotone-length", Severity::kError,
     "A without-relaxation cyclo-compaction run reports a pass that "
     "lengthened the schedule, contradicting the monotone non-increasing "
     "guarantee of Theorem 4.4.",
     "Audit the rotate-remap pass that grew the table; without relaxation "
     "a pass that cannot keep the length must roll back instead."},
    {"CCS-S010", "claim-mismatch", Severity::kError,
     "A quantity claimed by the scheduler (best length, best pass, "
     "retimed delays, trace bookkeeping) disagrees with the value the "
     "certifier recomputes from first principles.",
     "Trust the recomputed value; the scheduler's bookkeeping is buggy or "
     "the artifact was edited after the run."},
    {"CCS-S011", "unfold-divergence", Severity::kError,
     "Unfolding the cyclic schedule into explicit iterations produced a "
     "flat schedule that violates the unfolded graph's constraints even "
     "though the cyclic table certified clean.",
     "This indicates a bug in the schedule tooling itself (table, "
     "unfolding transform, or validator); report it."},
    {"CCS-S012", "trace-divergence", Severity::kError,
     "Replaying the pipeline recomputed an event stream that differs from "
     "the recorded trace: the scheduler that wrote the trace behaved "
     "differently from the one replaying it.",
     "Diff the claimed and recomputed events at the reported line; either "
     "the trace was edited or the scheduler changed behaviour."},
    {"CCS-S013", "malformed-trace", Severity::kError,
     "A trace line is not a valid event object: bad JSON, a missing "
     "seq/kind field, or broken sequence numbering.",
     "Regenerate the trace with --trace; traces are JSON Lines with "
     "contiguous seq numbers starting at 0."},
    {"CCS-S014", "malformed-span", Severity::kError,
     "A profiler span event breaks the stream's structure: a scope that "
     "never terminates, a span_end with no matching span_begin or a "
     "mismatched name, an out-of-order timestamp on one thread, or a "
     "missing/negative thread tag.",
     "Regenerate the trace with --trace --profile; span_begin/span_end "
     "pairs must nest per thread with monotone ts_ns values."},
    {"CCS-F001", "fault-spec-syntax", Severity::kError,
     "A line of the fault spec does not match any directive grammar.",
     "Use `fail <pe> [@iter <n>]`, `link <peA> <peB> [@iter <n>]`, or "
     "`jitter <task> <+n|-n>`; `#` starts a comment and iterations are "
     "0-based."},
    {"CCS-F002", "fault-unknown-target", Severity::kError,
     "A fault directive names a target the graph or architecture does not "
     "have: a PE index out of range, a pair of PEs with no link between "
     "them, or an unknown task name.",
     "Name PEs p0..p<P-1> of the --arch machine, fail only links the "
     "topology actually has, and spell task names as the graph file "
     "declares them."},
    {"CCS-E001", "invalid-request", Severity::kError,
     "The solve request cannot be executed as given: an illegal graph, a "
     "malformed architecture or fault spec, or an unsupported option "
     "combination (ccs::Solver, docs/API.md).",
     "Fix the request field named in the message; the wording matches the "
     "exception the underlying component raised."},
    {"CCS-E002", "infeasible-request", Severity::kError,
     "The solve request is well-formed but provably has no certified "
     "answer — e.g. a repair request whose fault plan leaves no usable "
     "machine (ccs::Solver, docs/API.md).",
     "Relax the fault plan or the budgets, or provide a machine with more "
     "survivors; the message carries the infeasibility detail."},
    {"CCS-E003", "deadline-expired", Severity::kError,
     "The request's deadline_ms budget was already spent before any solve "
     "work started — the deadline was non-positive at admission, or the "
     "request aged out while queued (ccsched serve, docs/SERVE.md).",
     "Raise deadline_ms, lower the service load (shallower queue, more "
     "--jobs), or resubmit; the response carries no schedule by design."},
    {"CCS-B001", "bound-iteration", Severity::kNote,
     "Ceil'd iteration bound: no static cyclic schedule can be shorter "
     "than ceil(max over cycles of total time / total delay); the witness "
     "is a critical cycle attaining the ratio.",
     "Informational.  To lower this floor, shorten the recurrence on the "
     "witness cycle or deepen its delays (c-slowdown)."},
    {"CCS-B002", "bound-work-conservation", Severity::kNote,
     "Speed-aware work-conservation bound: the machine's processors, each "
     "at its own slowdown factor, cannot complete the graph's total "
     "computation in fewer control steps; also floors the schedule at the "
     "longest single task on the fastest processor.",
     "Informational.  Add or speed up processors, or shrink task times, "
     "to lower this floor."},
    {"CCS-B003", "bound-pipelined-issue", Severity::kNote,
     "Pipelined-issue bound: with pipelined processors every task still "
     "occupies one issue slot, so the schedule needs at least "
     "ceil(tasks / processors) control steps.",
     "Informational.  Add processors to lower this floor."},
    {"CCS-B004", "bound-critical-cycle-mapping", Severity::kNote,
     "Communication-aware critical-cycle bound: the critical cycle either "
     "runs on one processor (paying its serialized occupancy) or is split "
     "across processors (paying at least two cheapest inter-PE transfers "
     "per iteration window); the better case still floors the length.",
     "Informational.  Shorten the critical cycle, deepen its delays, or "
     "cheapen communication between processors to lower this floor."},
    {"CCS-B005", "bound-topology-cut", Severity::kNote,
     "Topology cut bound for THIS graph's delay placement: for a cut of "
     "the machine into two processor groups, the schedule either fits all "
     "work on one side or splits a dependence edge across processors and "
     "pays its cheapest transfer within the edge's delay window.  Not "
     "invariant under retiming — excluded from the portfolio composite.",
     "Informational.  Balance processor speeds across the cut or cheapen "
     "inter-group links to lower this floor."},
    {"CCS-B006", "bound-retiming-feasibility", Severity::kNote,
     "Retiming-feasibility bound: minimized over every legal retiming "
     "(d_r(e) >= 0), the zero-delay critical path still costs its "
     "serialized time on the fastest processor, and no prologue/epilogue "
     "trick can beat the best achievable clock period.",
     "Informational.  Pipeline the longest zero-delay chain by adding "
     "loop-carried delays to lower this floor."},
    {"CCS-S015", "schedule-beats-sound-bound", Severity::kError,
     "A schedule that passed first-principles certification is SHORTER "
     "than a claimed-sound static lower bound — the bound derivation or "
     "the certifier has a first-principles bug; pruning decisions made "
     "from this bound are unsound.",
     "File a bug: re-run `ccsched analyze` on the graph and machine, "
     "compare each CCS-B witness against the certified table, and fix "
     "whichever derivation is wrong before trusting portfolio pruning."},
    {"CCS-S016", "cached-translation-uncertified", Severity::kError,
     "A schedule served from the canonical solve cache, translated back "
     "through the inverse permutation witness, failed first-principles "
     "re-certification — the cached entry, the witness, or the translation "
     "is corrupt; the hit was discarded.",
     "File a bug: the solve falls back to a cold run automatically, but a "
     "failing translation means the canonical labeling or the cache "
     "storage violated its invariants.  Re-run `ccsched fingerprint` on "
     "both submissions and compare the witnesses."},
    {"CCS-N001", "isomorphic-duplicate-workload", Severity::kWarning,
     "Two workloads in the corpus are attribute-isomorphic: identical "
     "node times, edge delays, and data volumes up to a renaming of the "
     "tasks — every analysis and schedule of one applies verbatim to the "
     "other through the permutation witness.",
     "Deduplicate the corpus (keep one copy and reference it), or "
     "annotate why both copies exist (e.g. a file mirror of a library "
     "workload kept for CLI round-trip tests)."},
    {"CCS-N002", "nontrivial-automorphism-group", Severity::kNote,
     "The graph has nontrivial attribute-preserving automorphisms: "
     "interchangeable tasks make portfolio attempts explore mirrored "
     "placements that differ only by a renaming.",
     "Informational.  The orbit partition in the message lists the "
     "interchangeable task groups; symmetry-aware search may pin one "
     "representative per orbit to skip the duplicate work."},
    {"CCS-N003", "fingerprint-collision", Severity::kError,
     "Two non-isomorphic graphs share a 128-bit canonical fingerprint — "
     "a hash collision that equality-by-fingerprint consumers (the solve "
     "cache, corpus dedup) must never trust silently.",
     "Report the colliding pair.  Every consumer in this repository "
     "verifies candidate matches by exact canonical-form comparison, so "
     "a collision degrades to a cache miss rather than a wrong answer."},
}};

}  // namespace

std::span<const LintRule> all_rules() { return kRules; }

const LintRule* find_rule(std::string_view code) {
  for (const LintRule& r : kRules)
    if (r.code == code) return &r;
  return nullptr;
}

std::size_t rule_index(std::string_view code) {
  for (std::size_t i = 0; i < kRules.size(); ++i)
    if (kRules[i].code == code) return i;
  return kRules.size();
}

}  // namespace ccs
