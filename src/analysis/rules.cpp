#include "analysis/rules.hpp"

#include <array>

namespace ccs {

namespace {

constexpr std::array<LintRule, 14> kRules{{
    {"CCS-P001", "syntax-error", Severity::kError,
     "A line of the graph file does not match any directive grammar.",
     "Use `graph <name>`, `node <name> <time>`, or `edge <from> <to> "
     "<delay> [volume]`; `#` starts a comment."},
    {"CCS-P002", "unknown-node", Severity::kError,
     "An edge references a node name that no node directive declares.",
     "Declare the node before the first edge that uses it, or fix the "
     "spelling."},
    {"CCS-P003", "misplaced-graph-directive", Severity::kError,
     "A graph directive is duplicated or appears after the first node.",
     "Keep exactly one `graph <name>` line and put it before every node."},
    {"CCS-G001", "zero-delay-cycle", Severity::kError,
     "A dependence cycle carries zero total delay, so an iteration would "
     "depend on its own future.",
     "Add at least one loop-carried delay (a register) somewhere on the "
     "cycle, or break the cycle."},
    {"CCS-G002", "zero-delay-self-loop", Severity::kError,
     "A node depends on itself within the same iteration, which is "
     "unsatisfiable.",
     "Give the self-loop a delay of at least 1 so it refers to a previous "
     "iteration."},
    {"CCS-G003", "non-positive-time", Severity::kError,
     "A node declares a computation time below 1 control step.",
     "Computation times t(v) must be >= 1; model free tasks with time 1."},
    {"CCS-G004", "non-positive-volume", Severity::kError,
     "An edge declares a data volume below 1.",
     "Data volumes c(e) must be >= 1; omit the volume field to default "
     "to 1."},
    {"CCS-G005", "negative-delay", Severity::kError,
     "An edge declares a negative loop-carried delay.",
     "Delays d(e) count registers and must be >= 0."},
    {"CCS-G006", "duplicate-edge", Severity::kWarning,
     "Two edges connect the same nodes with the same delay; their volumes "
     "do not merge and the duplicate only tightens constraints redundantly.",
     "Remove the duplicate, or combine the transfers into one edge with "
     "the summed volume."},
    {"CCS-G007", "isolated-node", Severity::kWarning,
     "A node has no incident edges; it constrains nothing and is likely a "
     "leftover or a typo.",
     "Connect the node to the dependence structure or delete it."},
    {"CCS-G008", "delay-starved-cycle", Severity::kWarning,
     "The critical cycle carries a single delay and its computation time "
     "reaches the critical path, so the recurrence serializes every "
     "iteration and no retiming or remapping can shorten the schedule.",
     "Deepen the cycle's delays (c-slow the loop) or shorten the tasks on "
     "the critical cycle."},
    {"CCS-A001", "insufficient-processors", Severity::kWarning,
     "The zero-delay DAG offers more simultaneously ready tasks than the "
     "architecture has processors, so the schedule must serialize "
     "parallelism.",
     "Use a wider machine, or accept the serialization if throughput "
     "still meets the iteration bound."},
    {"CCS-A002", "oversized-communication", Severity::kWarning,
     "An edge's data volume is at least the projected schedule length, so "
     "even a single-hop transfer cannot complete within one iteration "
     "period; the endpoints are effectively pinned to one processor.",
     "Reduce the edge's volume, speed up the interconnect model, or keep "
     "both endpoints on the same processor."},
    {"CCS-A003", "speed-list-mismatch", Severity::kError,
     "The heterogeneous speed list does not match the architecture: wrong "
     "processor count or a factor below 1.",
     "Give exactly one integer slowdown factor >= 1 per processor."},
}};

}  // namespace

std::span<const LintRule> all_rules() { return kRules; }

const LintRule* find_rule(std::string_view code) {
  for (const LintRule& r : kRules)
    if (r.code == code) return &r;
  return nullptr;
}

std::size_t rule_index(std::string_view code) {
  for (std::size_t i = 0; i < kRules.size(); ++i)
    if (kRules[i].code == code) return i;
  return kRules.size();
}

}  // namespace ccs
