// ccsched — structured diagnostics for static analysis.
//
// The lint subsystem (src/analysis/lint.hpp) and the lenient parser
// (io/text_format.hpp) both report findings as Diagnostic values: a stable
// rule code, a severity, a message, and a source span pointing at the
// offending line of the input file.  A DiagnosticBag collects, sorts, and
// dedupes them; renderers turn a finalized bag into human-readable text,
// JSON Lines, or a SARIF 2.1.0 document for CI annotation tooling.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

/// How bad a finding is.  kError findings describe inputs the schedulers
/// reject or mis-handle; kWarning findings are almost certainly mistakes;
/// kNote findings are advisory.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// Lower-case severity name ("note", "warning", "error"); also the SARIF
/// result level.
[[nodiscard]] std::string_view severity_name(Severity s);

/// A location inside a source artifact.  `line` is 1-based; 0 means the
/// finding applies to the artifact as a whole.
struct SourceSpan {
  std::string file = "<input>";
  std::size_t line = 0;
};

/// Maps the elements of a parsed CSDFG back to the lines that declared
/// them, so graph-level lint passes can point at source.  Produced by
/// parse_csdfg_with_spans (io/text_format.hpp).
struct SourceMap {
  std::string file = "<input>";
  std::size_t graph_line = 0;            ///< Line of the graph directive (0 if none).
  std::vector<std::size_t> node_lines;   ///< node_lines[v] declared node v.
  std::vector<std::size_t> edge_lines;   ///< edge_lines[e] declared edge e.

  /// Span of node `v` (whole-file span when out of range).
  [[nodiscard]] SourceSpan node_span(std::size_t v) const;
  /// Span of edge `e` (whole-file span when out of range).
  [[nodiscard]] SourceSpan edge_span(std::size_t e) const;
  /// Span of the artifact as a whole.
  [[nodiscard]] SourceSpan file_span() const { return {file, 0}; }
};

/// One finding.
struct Diagnostic {
  std::string code;      ///< Stable rule code ("CCS-G001", ...).
  Severity severity = Severity::kWarning;
  std::string message;   ///< Human-readable, self-contained description.
  SourceSpan span;       ///< Where the finding anchors.
};

/// Collects diagnostics, then sorts and dedupes them for rendering.
///
/// Passes append in discovery order; finalize() establishes the report
/// order (file, line, code, message) and drops exact duplicates.  The
/// exit-code helpers answer the only two questions callers ask: "are there
/// errors?" and "are there errors once warnings are promoted (--werror)?".
class DiagnosticBag {
public:
  /// Appends a finding whose severity comes from the rule catalogue
  /// (rules.hpp).  Unknown codes are a programming error (contract check).
  void add(std::string_view code, SourceSpan span, std::string message);

  /// Appends a fully specified finding (for engine reuse outside the
  /// catalogue, e.g. tests of the renderers).
  void add(Diagnostic diag);

  /// Sorts by (file, line, code, message) and removes exact duplicates.
  /// Renderers expect a finalized bag; calling finalize() twice is fine.
  void finalize();

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  [[nodiscard]] bool empty() const noexcept { return diags_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return diags_.size(); }

  /// Number of findings at exactly severity `s`.
  [[nodiscard]] std::size_t count(Severity s) const;

  /// True when the bag demands a non-zero exit: any error, or any warning
  /// when `werror` promotes warnings to errors.  Notes never fail.
  [[nodiscard]] bool fails(bool werror) const;

private:
  std::vector<Diagnostic> diags_;
};

/// Renders one line per finding: "file:line: severity: message [code]"
/// (the line number is omitted for whole-file findings).  Ends with a
/// summary line when the bag is non-empty; empty bags render to "".
[[nodiscard]] std::string render_text(const DiagnosticBag& bag);

/// Renders one JSON object per finding, one per line:
/// {"code":...,"severity":...,"message":...,"file":...,"line":N}.
[[nodiscard]] std::string render_jsonl(const DiagnosticBag& bag);

/// Renders a SARIF 2.1.0 document: a single run whose tool.driver lists
/// the full rule catalogue (rules.hpp) and whose results reference it by
/// ruleId/ruleIndex with physicalLocation regions.  Deterministic output.
/// `driver` names the producing tool ("ccsched-lint", "ccsched-certify").
[[nodiscard]] std::string render_sarif(const DiagnosticBag& bag,
                                       std::string_view driver =
                                           "ccsched-lint");

}  // namespace ccs
