#include "analysis/canon.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/error.hpp"

namespace ccs {

namespace {

/// Leaf budget of the individualization search.  Every bundled workload
/// discretizes within a handful of leaves; the cap only exists so a
/// pathologically symmetric hostile input (which the transposition
/// collapse below does not already flatten) degrades to an incomplete —
/// but still deterministic and verifiable — result instead of a hang.
constexpr std::size_t kLeafCap = 2048;

/// splitmix64 finalizer — the same mixer the portfolio's attempt RNG uses.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Two independently seeded 64-bit lanes over the form string.  128 bits
/// keep accidental collisions out of reach for any realistic corpus; the
/// CCS-N003 audit still never trusts equality without comparing forms.
std::array<std::uint64_t, 2> hash128(const std::string& s) {
  std::uint64_t h0 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h1 = 0xc2b2ae3d27d4eb4fULL;
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    h0 = mix64(h0 ^ byte);
    h1 = mix64((h1 ^ byte) * 0x100000001b3ULL);
  }
  return {h0, h1};
}

/// One (delay, volume, neighbor color) triple of a refinement signature.
using SigEdge = std::array<long long, 3>;

/// Exact refinement signature — compared lexicographically, never hashed,
/// so the partition can not be corrupted by hash collisions.
using Sig = std::tuple<std::uint64_t, std::vector<SigEdge>, std::vector<SigEdge>>;

/// Replaces `color` with dense ranks 0..C-1 of the given signatures
/// (equal signatures share a rank).  Returns the class count.
std::size_t rank_by(const std::vector<Sig>& sig,
                    std::vector<std::uint64_t>& color) {
  const std::size_t n = sig.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sig[a] < sig[b]; });
  std::uint64_t rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && sig[order[i]] != sig[order[i - 1]]) ++rank;
    color[order[i]] = rank;
  }
  return n == 0 ? 0 : static_cast<std::size_t>(rank) + 1;
}

/// Iterated color refinement: each round a node's signature is its own
/// color plus the sorted multisets of (delay, volume, neighbor color) over
/// its out- and in-edges.  Refinement only ever splits classes, so the
/// loop runs until the class count stops growing (at most n rounds).  The
/// resulting dense ranks depend only on attributes — never on node ids —
/// which is exactly the invariance the fingerprint needs.
std::size_t refine(const Csdfg& g, std::vector<std::uint64_t>& color) {
  const std::size_t n = g.node_count();
  std::size_t classes = 0;
  {
    // Establish dense ranks of the incoming coloring first (individualized
    // colors arrive scaled, not dense).
    std::vector<Sig> sig(n);
    for (NodeId v = 0; v < n; ++v) std::get<0>(sig[v]) = color[v];
    classes = rank_by(sig, color);
  }
  while (classes < n) {
    std::vector<Sig> sig(n);
    for (NodeId v = 0; v < n; ++v) {
      auto& [own, outs, ins] = sig[v];
      own = color[v];
      for (const EdgeId e : g.out_edges(v)) {
        const Edge& ed = g.edge(e);
        outs.push_back({ed.delay, static_cast<long long>(ed.volume),
                        static_cast<long long>(color[ed.to])});
      }
      for (const EdgeId e : g.in_edges(v)) {
        const Edge& ed = g.edge(e);
        ins.push_back({ed.delay, static_cast<long long>(ed.volume),
                       static_cast<long long>(color[ed.from])});
      }
      std::sort(outs.begin(), outs.end());
      std::sort(ins.begin(), ins.end());
    }
    const std::size_t next = rank_by(sig, color);
    if (next == classes) break;
    classes = next;
  }
  return classes;
}

/// Initial coloring from node attributes alone: (time, out-degree,
/// in-degree) dense-ranked.
std::vector<std::uint64_t> initial_colors(const Csdfg& g) {
  const std::size_t n = g.node_count();
  std::vector<Sig> sig(n);
  for (NodeId v = 0; v < n; ++v) {
    auto& [own, outs, ins] = sig[v];
    own = 0;
    outs.push_back({g.node(v).time,
                    static_cast<long long>(g.out_edges(v).size()),
                    static_cast<long long>(g.in_edges(v).size())});
  }
  std::vector<std::uint64_t> color(n, 0);
  rank_by(sig, color);
  return color;
}

/// True iff swapping u and v (fixing every other node) preserves the
/// attributed edge multiset — i.e. the transposition (u v) is a full-graph
/// automorphism.  Only edges incident to u or v can change, so the check
/// compares those, mapped vs. unmapped, as sorted tuples.
bool transposition_is_automorphism(const Csdfg& g, NodeId u, NodeId v) {
  if (g.node(u).time != g.node(v).time) return false;
  std::vector<EdgeId> incident;
  for (const NodeId x : {u, v}) {
    for (const EdgeId e : g.out_edges(x)) incident.push_back(e);
    for (const EdgeId e : g.in_edges(x)) incident.push_back(e);
  }
  std::sort(incident.begin(), incident.end());
  incident.erase(std::unique(incident.begin(), incident.end()),
                 incident.end());
  const auto swapped = [&](NodeId x) { return x == u ? v : x == v ? u : x; };
  std::vector<std::array<long long, 4>> original, mapped;
  original.reserve(incident.size());
  mapped.reserve(incident.size());
  for (const EdgeId e : incident) {
    const Edge& ed = g.edge(e);
    original.push_back({static_cast<long long>(ed.from),
                        static_cast<long long>(ed.to), ed.delay,
                        static_cast<long long>(ed.volume)});
    mapped.push_back({static_cast<long long>(swapped(ed.from)),
                      static_cast<long long>(swapped(ed.to)), ed.delay,
                      static_cast<long long>(ed.volume)});
  }
  std::sort(original.begin(), original.end());
  std::sort(mapped.begin(), mapped.end());
  return original == mapped;
}

/// Union-find over node ids; orbits are merged for every verified
/// automorphism (collapsed transpositions and equal-form leaf pairs).
struct OrbitForest {
  std::vector<NodeId> parent;

  explicit OrbitForest(std::size_t n) : parent(n) {
    for (NodeId v = 0; v < n; ++v) parent[v] = v;
  }
  NodeId find(NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  void merge(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

struct SearchState {
  const Csdfg& g;
  OrbitForest orbits;
  std::string best_form;
  std::vector<NodeId> best_perm;
  /// Number of labelings reaching best_form: the sum of collapsed-cell
  /// path factors over minimal leaves == |Aut(G)| on a complete search.
  unsigned long long count = 0;
  std::size_t leaves = 0;
  bool capped = false;

  explicit SearchState(const Csdfg& graph)
      : g(graph), orbits(graph.node_count()) {}
};

void leaf(SearchState& st, const std::vector<std::uint64_t>& color,
          unsigned long long path_factor) {
  ++st.leaves;
  const std::size_t n = st.g.node_count();
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = static_cast<NodeId>(color[v]);
  std::string form = canonical_form(st.g, perm);
  if (st.count == 0 || form < st.best_form) {
    // A smaller canonical candidate restarts the tally; orbit merges made
    // so far stay — they came from genuine automorphisms either way.
    st.best_form = std::move(form);
    st.best_perm = std::move(perm);
    st.count = path_factor;
    return;
  }
  if (form == st.best_form) {
    st.count += path_factor;
    // Two labelings with one canonical image differ by an automorphism:
    // sigma maps v to the node best_perm sends to the same index.
    std::vector<NodeId> best_inv(n);
    for (NodeId v = 0; v < n; ++v) best_inv[st.best_perm[v]] = v;
    for (NodeId v = 0; v < n; ++v) st.orbits.merge(v, best_inv[perm[v]]);
  }
}

void search(SearchState& st, std::vector<std::uint64_t> color,
            unsigned long long path_factor) {
  if (st.capped) return;
  const std::size_t classes = refine(st.g, color);
  const std::size_t n = st.g.node_count();
  if (classes == n) {
    leaf(st, color, path_factor);
    return;
  }
  // Target cell: the smallest color whose class is non-singleton, members
  // ascending by node id (the choice set is explored exhaustively, so the
  // member order does not affect the canonical winner).
  std::vector<std::size_t> size(classes, 0);
  for (NodeId v = 0; v < n; ++v) ++size[color[v]];
  std::uint64_t target = 0;
  while (size[target] < 2) ++target;
  std::vector<NodeId> cell;
  for (NodeId v = 0; v < n; ++v)
    if (color[v] == target) cell.push_back(v);

  const auto individualize = [&](NodeId v) {
    std::vector<std::uint64_t> child(n);
    for (NodeId u = 0; u < n; ++u) child[u] = color[u] * 2 + 1;
    child[v] = color[v] * 2;
    return child;
  };

  // Exchangeable cell: when every member swaps with the first by a
  // verified automorphism, the cell's branches are isomorphic images of
  // one another — explore one, multiply the tally by the cell size, and
  // merge the whole cell into one orbit.  This flattens the factorial
  // blowup of identical isolated tasks and exchangeable twins.
  bool exchangeable = true;
  for (std::size_t i = 1; i < cell.size() && exchangeable; ++i)
    exchangeable = transposition_is_automorphism(st.g, cell[0], cell[i]);
  if (exchangeable) {
    for (std::size_t i = 1; i < cell.size(); ++i)
      st.orbits.merge(cell[0], cell[i]);
    search(st, individualize(cell[0]), path_factor * cell.size());
    return;
  }

  for (const NodeId v : cell) {
    if (st.leaves >= kLeafCap) {
      st.capped = true;
      return;
    }
    search(st, individualize(v), path_factor);
  }
}

}  // namespace

std::string canonical_form(const Csdfg& g, const std::vector<NodeId>& perm) {
  const std::size_t n = g.node_count();
  if (perm.size() != n)
    throw GraphError("canonical_form: permutation size does not match graph");
  std::vector<NodeId> inverse(n, n);
  for (NodeId v = 0; v < n; ++v) {
    if (perm[v] >= n || inverse[perm[v]] != n)
      throw GraphError("canonical_form: not a permutation of the nodes");
    inverse[perm[v]] = v;
  }
  std::ostringstream os;
  os << 'n' << n << 'm' << g.edge_count() << ';';
  for (std::size_t i = 0; i < n; ++i) os << 't' << g.node(inverse[i]).time << ';';
  std::vector<std::array<long long, 4>> edges;
  edges.reserve(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Edge& ed = g.edge(e);
    edges.push_back({static_cast<long long>(perm[ed.from]),
                     static_cast<long long>(perm[ed.to]), ed.delay,
                     static_cast<long long>(ed.volume)});
  }
  std::sort(edges.begin(), edges.end());
  for (const auto& [from, to, delay, volume] : edges)
    os << 'e' << from << '>' << to << 'd' << delay << 'c' << volume << ';';
  return os.str();
}

CanonResult canonicalize(const Csdfg& g) {
  const std::size_t n = g.node_count();
  CanonResult result;
  if (n == 0) {
    result.fingerprint = hash128(canonical_form(g, {}));
    return result;
  }
  SearchState st(g);
  search(st, initial_colors(g), 1);
  result.perm = std::move(st.best_perm);
  result.fingerprint = hash128(st.best_form);
  result.automorphism_count = std::max<unsigned long long>(1, st.count);
  result.complete = !st.capped;
  result.orbit.resize(n);
  for (NodeId v = 0; v < n; ++v) result.orbit[v] = st.orbits.find(v);
  return result;
}

std::string fingerprint_hex(const std::array<std::uint64_t, 2>& fingerprint) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex(32, '0');
  for (std::size_t lane = 0; lane < 2; ++lane)
    for (std::size_t i = 0; i < 16; ++i)
      hex[lane * 16 + i] =
          kHex[(fingerprint[lane] >> (60 - 4 * i)) & 0xfULL];
  return hex;
}

std::string graph_fingerprint(const Csdfg& g) {
  return fingerprint_hex(canonicalize(g).fingerprint);
}

bool reverify(const Csdfg& g, const CanonResult& r) {
  if (r.perm.size() != g.node_count()) return false;
  try {
    return hash128(canonical_form(g, r.perm)) == r.fingerprint;
  } catch (const GraphError&) {
    return false;  // Not a permutation — a tampered witness.
  }
}

bool isomorphic(const Csdfg& a, const CanonResult& ca, const Csdfg& b,
                const CanonResult& cb) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count())
    return false;
  if (ca.perm.size() != a.node_count() || cb.perm.size() != b.node_count())
    return false;
  return canonical_form(a, ca.perm) == canonical_form(b, cb.perm);
}

bool isomorphic(const Csdfg& a, const Csdfg& b) {
  return isomorphic(a, canonicalize(a), b, canonicalize(b));
}

std::string orbit_summary(const Csdfg& g, const CanonResult& r) {
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId v = 0; v < r.orbit.size(); ++v)
    groups[r.orbit[v]].push_back(v);
  std::ostringstream os;
  for (const auto& [rep, members] : groups) {
    if (members.size() < 2) continue;
    os << '{';
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i > 0) os << ',';
      os << g.node(members[i]).name;
    }
    os << '}';
  }
  return os.str();
}

void audit_corpus(const std::vector<CorpusEntry>& corpus, DiagnosticBag& bag) {
  struct Item {
    std::size_t index;
    CanonResult canon;
    std::string form;  // filled lazily, for grouped entries only
  };
  std::map<std::string, std::vector<Item>> by_fingerprint;
  std::vector<std::string> keys_in_order;  // first-seen corpus order
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (corpus[i].graph == nullptr) continue;
    Item item{i, canonicalize(*corpus[i].graph), {}};
    std::string key = fingerprint_hex(item.canon.fingerprint);
    if (by_fingerprint.find(key) == by_fingerprint.end())
      keys_in_order.push_back(key);
    by_fingerprint[key].push_back(std::move(item));
  }
  for (const std::string& key : keys_in_order) {
    std::vector<Item>& group = by_fingerprint[key];
    if (group.size() < 2) continue;
    for (Item& item : group)
      item.form = canonical_form(*corpus[item.index].graph, item.canon.perm);
    for (std::size_t j = 1; j < group.size(); ++j) {
      const CorpusEntry& later = corpus[group[j].index];
      // A duplicate is verified against the earliest entry whose *form*
      // matches — hash equality alone is never sufficient evidence.
      const Item* verified = nullptr;
      for (std::size_t i = 0; i < j && verified == nullptr; ++i)
        if (group[i].form == group[j].form) verified = &group[i];
      if (verified != nullptr) {
        std::ostringstream os;
        os << "workload is attribute-isomorphic to '"
           << corpus[verified->index].label << "' (fingerprint " << key
           << "); deduplicate, or annotate why both copies exist";
        bag.add("CCS-N001", SourceSpan{later.label, 0}, os.str());
      } else {
        std::ostringstream os;
        os << "fingerprint collision: shares " << key << " with '"
           << corpus[group[0].index].label
           << "' but the canonical forms differ — the 128-bit hash has "
              "collided; report this corpus";
        bag.add("CCS-N003", SourceSpan{later.label, 0}, os.str());
      }
    }
  }
}

}  // namespace ccs
