// ccsched — canonical labeling of CSDFGs (isomorphism-aware fingerprints).
//
// ROADMAP item 1 (`ccsched serve`) needs to recognize a problem it has
// already solved even when the resubmission numbers its tasks differently:
// production streams of task graphs are dominated by a few thousand
// recurring kernel shapes under arbitrary node numberings.  This module
// computes a *canonical labeling* of a Csdfg — a permutation of its nodes
// that depends only on the graph's attributed structure, never on the
// insertion order — so that two graphs are attribute-isomorphic exactly
// when their canonical forms are byte-identical.
//
// Algorithm: iterated color refinement (1-WL) over node attributes
// (computation time, in/out degree) and edge attributes (delay, volume),
// followed by an individualization-refinement search that splits the
// remaining orbits deterministically.  Cells whose members are pairwise
// exchangeable by a verified transposition automorphism are collapsed
// instead of enumerated, so the common symmetric degeneracies (identical
// isolated tasks, parallel identical chains) cost O(cell) instead of
// O(cell!).
//
// House style (CCS-B bounds, CCS-S certificates): every analysis ships a
// machine-checkable witness that reverify() re-derives from first
// principles.  Here the witness IS the permutation: reverify() applies it,
// re-serializes the node/edge multisets, and re-hashes — a tampered
// permutation that is not an automorphism changes the form and is caught.
//
// The graph *name* is deliberately excluded from the form (two identical
// shapes with different names are the same workload), exactly as the
// RouteCache excludes the topology name from its structural key
// (arch/route_cache.hpp — whose canonical_topology_key() is the machine
// half of the SolveCache key in engine/solve_cache.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/csdfg.hpp"

namespace ccs {

/// Result of canonical labeling: the permutation witness plus everything
/// derived from it.
struct CanonResult {
  /// perm[v] = canonical index of node v; a bijection on 0..n-1 that
  /// depends only on the attributed structure.
  std::vector<NodeId> perm;
  /// 128-bit hash of the canonical serialization (canonical_form below).
  /// Equal for attribute-isomorphic graphs; unequal with overwhelming
  /// probability otherwise — and CCS-N003 audits the residual risk by
  /// comparing forms, never hashes, before trusting a match.
  std::array<std::uint64_t, 2> fingerprint{};
  /// Order of the attribute-preserving automorphism group |Aut(G)| (>= 1).
  /// Exact when `complete`; a proven lower bound otherwise.
  unsigned long long automorphism_count = 1;
  /// Orbit partition of the nodes under the discovered automorphisms:
  /// orbit[v] is the smallest node id in v's orbit, so orbit[v] == v marks
  /// orbit representatives.  Nontrivial orbits are what CCS-N002 surfaces
  /// for symmetry-breaking.
  std::vector<NodeId> orbit;
  /// False when the individualization search hit its internal leaf cap
  /// (pathologically symmetric inputs only); the labeling is still a valid
  /// deterministic function of the *given* labeling, but invariance under
  /// relabeling is no longer guaranteed.  Safe everywhere it is consumed:
  /// the SolveCache verifies candidate hits by exact form comparison.
  bool complete = true;
};

/// Canonically labels `g`.  Deterministic; never throws on any graph the
/// lenient parser can produce (legality is NOT required — refinement does
/// not care about cycles).  O(n + m) per refinement round in the common
/// case; the tie-break search is bounded by an internal leaf cap.
[[nodiscard]] CanonResult canonicalize(const Csdfg& g);

/// The exact byte string the fingerprint hashes: node count, edge count,
/// the canonical-order time sequence, and the sorted multiset of edges as
/// (perm[from], perm[to], delay, volume).  `perm` must be a bijection on
/// g's nodes (checked; throws GraphError otherwise).  Exposed so audits
/// (CCS-N003, the SolveCache hit path) can compare forms byte for byte
/// instead of trusting 128-bit hashes.
[[nodiscard]] std::string canonical_form(const Csdfg& g,
                                         const std::vector<NodeId>& perm);

/// 32-hex-digit lowercase rendering of `fingerprint`.
[[nodiscard]] std::string fingerprint_hex(
    const std::array<std::uint64_t, 2>& fingerprint);

/// Convenience: canonicalize + render.  The stable identity of a workload.
[[nodiscard]] std::string graph_fingerprint(const Csdfg& g);

/// Re-derives the fingerprint from the permutation witness: checks that
/// `r.perm` is a bijection, applies it, re-serializes the node/edge
/// multisets, re-hashes, and compares against `r.fingerprint`.  False
/// means the witness does not support the claimed fingerprint (tampering,
/// or a first-principles bug).  A witness replaced by a different
/// *automorphism* still verifies — any such permutation is an equally
/// valid witness of the same canonical form.
[[nodiscard]] bool reverify(const Csdfg& g, const CanonResult& r);

/// Exact attribute-isomorphism check through already-computed witnesses:
/// true iff canonical_form(a, ca.perm) == canonical_form(b, cb.perm),
/// compared byte for byte (hashes are never trusted here).
[[nodiscard]] bool isomorphic(const Csdfg& a, const CanonResult& ca,
                              const Csdfg& b, const CanonResult& cb);

/// Convenience overload: canonicalizes both sides first.
[[nodiscard]] bool isomorphic(const Csdfg& a, const Csdfg& b);

/// Renders the nontrivial orbits of `r` as "{a,b}{c,d,e}" using node names
/// from `g`, in ascending representative order; empty when the
/// automorphism group is trivial.  Shared by CCS-N002 and the fingerprint
/// CLI so the two render identically.
[[nodiscard]] std::string orbit_summary(const Csdfg& g, const CanonResult& r);

/// One graph of a corpus under audit (CCS-N001 / CCS-N003).
struct CorpusEntry {
  /// Label used in diagnostics ("examples/data/foo.csdfg", "library:fir8").
  std::string label;
  const Csdfg* graph = nullptr;
};

/// Audits a corpus for duplicate shapes: groups the entries by
/// fingerprint, then verifies every grouped pair by exact form comparison.
/// A verified pair is CCS-N001 (isomorphic duplicate, warning); a pair
/// whose fingerprints collide but whose forms differ is CCS-N003
/// (fingerprint collision, error).  Diagnostics anchor at the LATER
/// entry's label (line 0) and name the earlier one, so fixing the corpus
/// means touching the file the finding points at.  Appends to `bag`
/// without finalizing; deterministic in corpus order.
void audit_corpus(const std::vector<CorpusEntry>& corpus, DiagnosticBag& bag);

}  // namespace ccs
