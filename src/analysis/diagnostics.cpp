#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "analysis/rules.hpp"
#include "obs/json.hpp"
#include "util/contracts.hpp"

namespace ccs {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  CCS_ASSERT(false);
  return "error";
}

SourceSpan SourceMap::node_span(std::size_t v) const {
  if (v < node_lines.size()) return {file, node_lines[v]};
  return file_span();
}

SourceSpan SourceMap::edge_span(std::size_t e) const {
  if (e < edge_lines.size()) return {file, edge_lines[e]};
  return file_span();
}

void DiagnosticBag::add(std::string_view code, SourceSpan span,
                        std::string message) {
  const LintRule* rule = find_rule(code);
  CCS_EXPECTS(rule != nullptr);
  diags_.push_back(Diagnostic{std::string(code), rule->severity,
                              std::move(message), std::move(span)});
}

void DiagnosticBag::add(Diagnostic diag) { diags_.push_back(std::move(diag)); }

void DiagnosticBag::finalize() {
  const auto key = [](const Diagnostic& d) {
    return std::tie(d.span.file, d.span.line, d.code, d.message);
  };
  std::stable_sort(diags_.begin(), diags_.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return key(a) < key(b);
                   });
  diags_.erase(std::unique(diags_.begin(), diags_.end(),
                           [&](const Diagnostic& a, const Diagnostic& b) {
                             return key(a) == key(b);
                           }),
               diags_.end());
}

std::size_t DiagnosticBag::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

bool DiagnosticBag::fails(bool werror) const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) return true;
    if (werror && d.severity == Severity::kWarning) return true;
  }
  return false;
}

std::string render_text(const DiagnosticBag& bag) {
  std::ostringstream os;
  for (const Diagnostic& d : bag.diagnostics()) {
    os << d.span.file;
    if (d.span.line > 0) os << ':' << d.span.line;
    os << ": " << severity_name(d.severity) << ": " << d.message << " ["
       << d.code << "]\n";
  }
  if (!bag.empty()) {
    os << bag.count(Severity::kError) << " error(s), "
       << bag.count(Severity::kWarning) << " warning(s), "
       << bag.count(Severity::kNote) << " note(s)\n";
  }
  return os.str();
}

std::string render_jsonl(const DiagnosticBag& bag) {
  std::ostringstream os;
  for (const Diagnostic& d : bag.diagnostics()) {
    JsonWriter w;
    w.field("code", d.code)
        .field("severity", severity_name(d.severity))
        .field("message", d.message)
        .field("file", d.span.file)
        .field("line", d.span.line);
    os << w.close() << '\n';
  }
  return os.str();
}

namespace {

/// {"text": "<escaped>"} — the SARIF multiformatMessageString shape.
std::string sarif_text(std::string_view text) {
  return "{\"text\":\"" + json_escape(text) + "\"}";
}

std::string sarif_rules_array() {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const LintRule& r : all_rules()) {
    if (!first) os << ',';
    first = false;
    JsonWriter w;
    w.field("id", r.code)
        .field("name", r.name)
        .raw_field("shortDescription", sarif_text(r.summary))
        .raw_field("help", sarif_text(r.remedy))
        .raw_field("defaultConfiguration",
                   "{\"level\":\"" + std::string(severity_name(r.severity)) +
                       "\"}");
    os << w.close();
  }
  os << ']';
  return os.str();
}

std::string sarif_location(const SourceSpan& span) {
  std::ostringstream os;
  os << "[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
     << json_escape(span.file) << "\"}";
  if (span.line > 0) os << ",\"region\":{\"startLine\":" << span.line << '}';
  os << "}}]";
  return os.str();
}

std::string sarif_results_array(const DiagnosticBag& bag) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const Diagnostic& d : bag.diagnostics()) {
    if (!first) os << ',';
    first = false;
    JsonWriter w;
    w.field("ruleId", d.code);
    const std::size_t index = rule_index(d.code);
    if (index < all_rules().size()) w.field("ruleIndex", index);
    w.field("level", severity_name(d.severity))
        .raw_field("message", sarif_text(d.message))
        .raw_field("locations", sarif_location(d.span));
    os << w.close();
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string render_sarif(const DiagnosticBag& bag, std::string_view name) {
  JsonWriter driver;
  driver.field("name", name)
      .field("version", "1.0.0")
      .field("informationUri",
             "https://github.com/ccsched/ccsched/blob/main/docs/"
             "DIAGNOSTICS.md")
      .raw_field("rules", sarif_rules_array());

  JsonWriter run;
  run.raw_field("tool", "{\"driver\":" + driver.close() + "}")
      .raw_field("results", sarif_results_array(bag));

  JsonWriter doc;
  doc.field("version", "2.1.0")
      .field("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
      .raw_field("runs", "[" + run.close() + "]");
  return doc.close() + "\n";
}

}  // namespace ccs
