// ccsched — static lint passes over CSDFGs and architecture fit.
//
// The paper's guarantees (Theorem 4.4 monotonicity, the PSL bound of
// Lemma 4.3) hold only for well-formed inputs: a zero-delay cycle, a
// delay-starved critical cycle, or a machine too narrow for the graph
// silently produces garbage schedules or contract violations deep inside
// cyclo_compact.  The passes here diagnose those inputs *before*
// scheduling, with stable codes (rules.hpp) and source spans, so the CLI
// can reject bad inputs with actionable messages — the same discipline
// streaming-dataflow compilers apply to their task graphs.
//
// Two families:
//  * graph passes — structural well-formedness of the CSDFG alone;
//  * architecture passes — fit between the graph and a concrete topology
//    (and optional heterogeneous speed list); these only run when the
//    caller supplies a topology.
#pragma once

#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/rules.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"

namespace ccs {

/// What the architecture passes lint against.  `topology == nullptr`
/// disables them (graph-only lint).
struct LintOptions {
  const Topology* topology = nullptr;
  /// Heterogeneous per-PE slowdown factors as given on the command line;
  /// empty means homogeneous.
  std::vector<int> pe_speeds;
};

/// Everything a pass may inspect.
struct LintInput {
  const Csdfg& graph;
  const SourceMap& spans;
  const LintOptions& options;
};

/// One lint pass: checks a single rule and reports every finding.
///
/// Passes are stateless const singletons; run() must be deterministic and
/// must not throw on any graph that satisfies its declared needs (a pass
/// with needs_legal_graph() may assume the zero-delay subgraph is acyclic,
/// which the runner verifies beforehand).
class LintPass {
public:
  LintPass() = default;
  LintPass(const LintPass&) = delete;
  LintPass& operator=(const LintPass&) = delete;
  virtual ~LintPass() = default;

  /// The catalogue entry this pass enforces.
  [[nodiscard]] virtual const LintRule& rule() const = 0;

  /// True for architecture passes (skipped when no topology is given).
  [[nodiscard]] virtual bool needs_architecture() const { return false; }

  /// True for passes whose analyses (iteration bound, DAG timing) require
  /// a legal graph; the runner skips them when a zero-delay cycle exists.
  [[nodiscard]] virtual bool needs_legal_graph() const { return false; }

  virtual void run(const LintInput& input, DiagnosticBag& bag) const = 0;
};

/// The registered passes, in catalogue order.
[[nodiscard]] const std::vector<const LintPass*>& lint_passes();

/// Runs every applicable pass over `input` into `bag`: graph passes
/// always, architecture passes when a topology is present, legality-
/// dependent passes only when the zero-delay subgraph is acyclic.  Does
/// not finalize the bag (callers may merge parse diagnostics first).
void run_lint_passes(const LintInput& input, DiagnosticBag& bag);

}  // namespace ccs
