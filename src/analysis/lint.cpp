#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "analysis/canon.hpp"
#include "core/critical_cycle.hpp"
#include "core/graph_algo.hpp"
#include "core/iteration_bound.hpp"
#include "util/contracts.hpp"

namespace ccs {

namespace {

const LintRule& rule_or_die(std::string_view code) {
  const LintRule* r = find_rule(code);
  CCS_EXPECTS(r != nullptr);
  return *r;
}

/// CCS-G001: every cycle must carry at least one delay.  Reports one
/// witness cycle (names and the smallest involved source line) rather than
/// the bare boolean require_legal() gives.
class ZeroDelayCyclePass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-G001");
  }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    if (g.is_legal()) return;
    // Iterative DFS over the zero-delay subgraph; the first back edge to a
    // node still on the stack closes a witness cycle.
    enum : char { kWhite, kGray, kBlack };
    std::vector<char> color(g.node_count(), kWhite);
    std::vector<std::size_t> next(g.node_count(), 0);
    std::vector<NodeId> stack;
    std::vector<EdgeId> stack_edges;  // stack_edges[i] enters stack[i + 1].
    for (NodeId root = 0; root < g.node_count(); ++root) {
      if (color[root] != kWhite) continue;
      stack.assign(1, root);
      stack_edges.clear();
      color[root] = kGray;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        bool advanced = false;
        while (next[u] < g.out_edges(u).size()) {
          const EdgeId eid = g.out_edges(u)[next[u]++];
          const Edge& e = g.edge(eid);
          if (e.delay != 0) continue;
          if (color[e.to] == kGray) {
            report_cycle(input, bag, g, stack, stack_edges, e.to, eid);
            return;
          }
          if (color[e.to] == kWhite) {
            color[e.to] = kGray;
            stack.push_back(e.to);
            stack_edges.push_back(eid);
            advanced = true;
            break;
          }
        }
        if (!advanced) {
          color[u] = kBlack;
          stack.pop_back();
          if (!stack_edges.empty()) stack_edges.pop_back();
        }
      }
    }
    CCS_ASSERT(false);  // !is_legal() guarantees the DFS finds a cycle.
  }

private:
  static void report_cycle(const LintInput& input, DiagnosticBag& bag,
                           const Csdfg& g, const std::vector<NodeId>& stack,
                           const std::vector<EdgeId>& stack_edges,
                           NodeId entry, EdgeId closing_edge) {
    std::size_t first = 0;
    while (stack[first] != entry) ++first;
    std::vector<EdgeId> cycle_edges(stack_edges.begin() +
                                        static_cast<std::ptrdiff_t>(first),
                                    stack_edges.end());
    cycle_edges.push_back(closing_edge);
    std::ostringstream cycle;
    std::size_t line = 0;
    for (std::size_t i = first; i < stack.size(); ++i)
      cycle << g.node(stack[i]).name << " -> ";
    cycle << g.node(entry).name;
    for (const EdgeId e : cycle_edges) {
      const SourceSpan span = input.spans.edge_span(e);
      if (line == 0 || (span.line > 0 && span.line < line)) line = span.line;
    }
    bag.add("CCS-G001", {input.spans.file, line},
            "zero-delay cycle " + cycle.str() +
                ": an iteration would depend on its own future");
  }
};

/// CCS-G006: repeated (from, to, delay) triples.
class DuplicateEdgePass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-G006");
  }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    std::map<std::tuple<NodeId, NodeId, int>, EdgeId> seen;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const auto key = std::make_tuple(edge.from, edge.to, edge.delay);
      const auto [it, inserted] = seen.emplace(key, e);
      if (inserted) continue;
      std::ostringstream os;
      os << "duplicate edge " << g.node(edge.from).name << " -> "
         << g.node(edge.to).name << " with delay " << edge.delay
         << " (first declared on line "
         << input.spans.edge_span(it->second).line << ')';
      bag.add("CCS-G006", input.spans.edge_span(e), os.str());
    }
  }
};

/// CCS-G007: nodes with no incident edges.
class IsolatedNodePass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-G007");
  }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    if (g.node_count() < 2) return;  // A single node is a complete program.
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (!g.out_edges(v).empty() || !g.in_edges(v).empty()) continue;
      bag.add("CCS-G007", input.spans.node_span(v),
              "node '" + g.node(v).name +
                  "' has no incident edges; it constrains nothing");
    }
  }
};

/// CCS-N002: the graph has interchangeable tasks (a nontrivial
/// automorphism group); surfaces the orbit partition so symmetry-aware
/// search can pin one representative per orbit (analysis/canon.hpp).
class AutomorphismGroupPass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-N002");
  }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const CanonResult canon = canonicalize(input.graph);
    if (canon.automorphism_count <= 1) return;
    std::ostringstream os;
    os << "the graph has " << canon.automorphism_count
       << (canon.complete ? "" : "+")
       << " attribute-preserving automorphisms; interchangeable task "
          "orbits: "
       << orbit_summary(input.graph, canon);
    bag.add("CCS-N002", input.spans.file_span(), os.str());
  }
};

/// CCS-G008: the critical cycle carries a single delay and its computation
/// time already reaches the critical path — the iteration bound equals the
/// whole recurrence time, so no retiming or remapping can improve the
/// schedule; only deeper delays (c-slowdown) or faster tasks can.
class DelayStarvedCyclePass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-G008");
  }
  [[nodiscard]] bool needs_legal_graph() const override { return true; }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    const CycleWitness cycle = critical_cycle(g);
    if (cycle.edges.empty() || cycle.total_delay != 1) return;
    const DagTiming timing = compute_dag_timing(g);
    if (cycle.total_time < timing.critical_path) return;
    // Point at the edge carrying the cycle's single delay.
    SourceSpan span = input.spans.file_span();
    for (const EdgeId e : cycle.edges)
      if (g.edge(e).delay > 0) span = input.spans.edge_span(e);
    bag.add("CCS-G008", span,
            "delay-starved critical cycle " + describe_cycle(g, cycle) +
                ": a single delay serializes the whole recurrence every "
                "iteration");
  }
};

/// Ceiling division for non-negative values.
long long ceil_div(long long a, long long b) { return (a + b - 1) / b; }

/// CCS-A001: zero-delay DAG width vs. processor count.
class InsufficientProcessorsPass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-A001");
  }
  [[nodiscard]] bool needs_architecture() const override { return true; }
  [[nodiscard]] bool needs_legal_graph() const override { return true; }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    const Topology& topo = *input.options.topology;
    if (g.node_count() == 0) return;
    // Width proxy: the largest set of tasks sharing an ASAP control step.
    const DagTiming timing = compute_dag_timing(g);
    std::map<int, std::size_t> per_step;
    std::size_t width = 0;
    for (NodeId v = 0; v < g.node_count(); ++v)
      width = std::max(width, ++per_step[timing.asap_cb[v]]);
    if (width <= topo.size()) return;
    std::ostringstream os;
    os << "the zero-delay DAG schedules up to " << width
       << " tasks in one control step but " << topo.name() << " has only "
       << topo.size() << " processors";
    bag.add("CCS-A001", input.spans.file_span(), os.str());
  }
};

/// CCS-A002: the hop-distance×volume PSL pre-check.  The projected
/// schedule length is the best any scheduler can hope for:
/// max(zero-delay critical path, ceil(iteration bound), ceil(total t / P)).
/// An edge whose volume reaches it cannot complete even a one-hop transfer
/// within one iteration period (store-and-forward costs hops × volume), so
/// its endpoints are effectively pinned to one processor.
class OversizedCommunicationPass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-A002");
  }
  [[nodiscard]] bool needs_architecture() const override { return true; }
  [[nodiscard]] bool needs_legal_graph() const override { return true; }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const Csdfg& g = input.graph;
    const Topology& topo = *input.options.topology;
    if (topo.size() < 2 || g.node_count() == 0) return;
    const Rational bound = iteration_bound(g);
    const long long projected = std::max<long long>(
        {compute_dag_timing(g).critical_path,
         ceil_div(bound.num, bound.den),
         ceil_div(g.total_computation(),
                  static_cast<long long>(topo.size()))});
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      if (static_cast<long long>(edge.volume) < projected) continue;
      std::ostringstream os;
      os << "edge " << g.node(edge.from).name << " -> "
         << g.node(edge.to).name << ": volume " << edge.volume
         << " cannot cross even one link within the projected schedule "
            "length "
         << projected << "; the endpoints are pinned to one processor";
      bag.add("CCS-A002", input.spans.edge_span(e), os.str());
    }
  }
};

/// CCS-A003: heterogeneous speed list fit.
class SpeedListMismatchPass final : public LintPass {
public:
  [[nodiscard]] const LintRule& rule() const override {
    return rule_or_die("CCS-A003");
  }
  [[nodiscard]] bool needs_architecture() const override { return true; }

  void run(const LintInput& input, DiagnosticBag& bag) const override {
    const std::vector<int>& speeds = input.options.pe_speeds;
    const Topology& topo = *input.options.topology;
    if (speeds.empty()) return;
    if (speeds.size() != topo.size()) {
      std::ostringstream os;
      os << "speed list has " << speeds.size() << " factor(s) but "
         << topo.name() << " has " << topo.size() << " processors";
      bag.add("CCS-A003", input.spans.file_span(), os.str());
    }
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      if (speeds[i] >= 1) continue;
      std::ostringstream os;
      os << "speed factor " << speeds[i] << " for processor " << i + 1
         << " must be >= 1";
      bag.add("CCS-A003", input.spans.file_span(), os.str());
    }
  }
};

}  // namespace

const std::vector<const LintPass*>& lint_passes() {
  static const ZeroDelayCyclePass zero_delay_cycle;
  static const DuplicateEdgePass duplicate_edge;
  static const IsolatedNodePass isolated_node;
  static const DelayStarvedCyclePass delay_starved;
  static const InsufficientProcessorsPass insufficient_processors;
  static const OversizedCommunicationPass oversized_communication;
  static const SpeedListMismatchPass speed_list_mismatch;
  static const AutomorphismGroupPass automorphism_group;
  static const std::vector<const LintPass*> passes{
      &zero_delay_cycle,     &duplicate_edge,
      &isolated_node,        &delay_starved,
      &insufficient_processors, &oversized_communication,
      &speed_list_mismatch,  &automorphism_group,
  };
  return passes;
}

void run_lint_passes(const LintInput& input, DiagnosticBag& bag) {
  const bool legal = input.graph.is_legal();
  const bool has_arch = input.options.topology != nullptr;
  for (const LintPass* pass : lint_passes()) {
    if (pass->needs_architecture() && !has_arch) continue;
    if (pass->needs_legal_graph() && !legal) continue;
    pass->run(input, bag);
  }
}

}  // namespace ccs
