// ccsched — the schedule certifier.
//
// The core validator (core/validator.hpp) referees in-memory tables for
// tests and benches.  The certifier is the *independent* audit layer on
// top: it re-derives every property of a schedule from the master
// constraint
//
//     CB(v) + k*L  >=  CE(u) + M(PE(u), PE(v), c(e)) + 1
//
// without trusting the scheduler's bookkeeping — or even the strict
// parser's, since it works from the raw file representation
// (io/schedule_format.hpp) that survives overlapping placements and
// undersized lengths.  Findings are coded CCS-S### diagnostics
// (rules.hpp, docs/DIAGNOSTICS.md) rendered through the same text / JSONL
// / SARIF pipeline as the linter, with spans pointing at the offending
// `place` / `retime` / `schedule` lines.
//
// Beyond the validator's checks it audits properties only visible at the
// run level: retiming legality (d(e) = d_r(e) - r(u) + r(v) >= 0),
// Theorem 4.4 monotonicity for without-relaxation runs, claimed-vs-
// recomputed result bookkeeping, an unfold-equivalence cross-check
// (a cyclic table is valid iff the flat schedule it induces on the
// f-unfolded graph is), and replay verification of recorded obs/ traces.
//
// Every entry point appends into a DiagnosticBag and returns true iff it
// added no error-severity findings; callers finalize() the bag once and
// render it.
#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "arch/comm_model.hpp"
#include "arch/topology.hpp"
#include "core/csdfg.hpp"
#include "core/cyclo_compaction.hpp"
#include "core/schedule.hpp"
#include "core/validator.hpp"
#include "io/schedule_format.hpp"

namespace ccs {

/// Knobs of the certifier.
struct CertifyOptions {
  /// Unfolding factor for the translation-validation cross-check
  /// (CCS-S011): the certifier rebuilds the schedule on the f-unfolded
  /// graph and validates the result independently.  < 2 disables the
  /// check.  It only runs once every other check passed — on a schedule
  /// already known bad it would re-report the same defects.
  int unfold_factor = 3;
};

/// Certifies a schedule file (raw form) for `g` on the machine described
/// by `topo`/`comm`.  Resolution problems (unknown or doubly placed
/// tasks, processor counts that do not match the architecture) are
/// CCS-S001; everything placeable is then checked against the master
/// constraint (CCS-S002..S007), `retime` provenance is audited
/// (CCS-S008), and a clean schedule is cross-checked by unfolding
/// (CCS-S011).  Returns true iff no error findings were added.
[[nodiscard]] bool certify_schedule(const Csdfg& g, const RawSchedule& raw,
                                    const Topology& topo,
                                    const CommModel& comm,
                                    const CertifyOptions& options,
                                    DiagnosticBag& bag);

/// Certifies an in-memory table (same checks minus file-only ones); spans
/// anchor to `label` as a whole.  Used by `--certify` on the schedule and
/// simulate commands and by the run-level audit below.
[[nodiscard]] bool certify_table(const Csdfg& g, const ScheduleTable& table,
                                 const CommModel& comm,
                                 const std::string& label,
                                 DiagnosticBag& bag,
                                 const CertifyOptions& options = {});

/// Defense-in-depth cross-check behind CCS-S015: a schedule of `length`
/// control steps that certified clean for `g` on the machine described by
/// `pe_speeds` / `pipelined` / `comm` must not beat the claimed-sound
/// local CCS-B composite (analysis/bounds.hpp) — the bound is derived
/// from first principles independently of both the scheduler and the
/// certifier, so a violation means one of the three is wrong.  Runs
/// automatically after every clean certify_schedule / certify_table;
/// exposed so tests can pin the diagnostic without having to break the
/// bound derivation itself.  Returns true iff no finding was added.
[[nodiscard]] bool cross_check_schedule_bound(const Csdfg& g, int length,
                                              const std::vector<int>& pe_speeds,
                                              bool pipelined,
                                              const CommModel& comm,
                                              const SourceSpan& span,
                                              DiagnosticBag& bag);

/// Bridges a core validator report into coded diagnostics anchored at
/// `span`: kUnplacedTask -> CCS-S002, kOutOfTable -> CCS-S003,
/// kResourceConflict -> CCS-S004, kIssueConflict -> CCS-S005,
/// kDependence -> CCS-S006, kIllegalGraph -> CCS-G001.  Returns true iff
/// the report was empty.
bool bridge_validation_report(const ValidationReport& report,
                              const SourceSpan& span, DiagnosticBag& bag);

/// Audits a whole cyclo-compaction run of `original`:
///  * the accumulated retiming is legal for the input graph and
///    reproduces the claimed retimed graph (CCS-S008 / CCS-S010);
///  * without relaxation, the per-pass length trace is monotone
///    non-increasing from the start-up length (Theorem 4.4, CCS-S009);
///  * the claimed best length / best pass agree with the trace
///    (CCS-S010);
///  * both the start-up and best tables certify clean (including the
///    unfold cross-check).
/// `label` names the run in spans.  Returns true iff clean.
[[nodiscard]] bool certify_compaction_run(const Csdfg& original,
                                          const CycloCompactionResult& result,
                                          const CommModel& comm,
                                          RemapPolicy policy,
                                          const std::string& label,
                                          const CertifyOptions& options,
                                          DiagnosticBag& bag);

/// Structural audit of a recorded JSONL trace (no re-run): every line
/// parses as a flat object with contiguous `seq` from 0 and a known
/// `kind` (CCS-S013); `pass_end` bookkeeping (best_length = running
/// minimum, improved flag) holds (CCS-S010); with `strict_monotone`
/// (without-relaxation runs) pass lengths never grow (CCS-S009).
/// Returns true iff clean.
[[nodiscard]] bool audit_trace(const std::string& trace_text,
                               const std::string& file, bool strict_monotone,
                               DiagnosticBag& bag);

/// Replay verification: deterministically re-runs cyclo_compact(g) under
/// `options` with an in-memory tracer and diffs the recorded stream
/// against the replayed one event by event (canonical field order).  Any
/// divergence — edited fields, dropped or injected events — is CCS-S012
/// with the line of first divergence.  `sim_run` events in the recording
/// are ignored (the replay covers the scheduling pipeline, not simulator
/// runs appended to the same file).  Returns true iff the streams match.
[[nodiscard]] bool replay_trace(const Csdfg& g, const Topology& topo,
                                const CommModel& comm,
                                const CycloCompactionOptions& options,
                                const std::string& trace_text,
                                const std::string& file, DiagnosticBag& bag);

}  // namespace ccs
