#include "analysis/certify.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/bounds.hpp"
#include "core/unfold_schedule.hpp"
#include "core/unfolding.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "util/error.hpp"

namespace ccs {

namespace {

/// Tracks whether a certifier entry point added error findings.
class ErrorWatch {
public:
  explicit ErrorWatch(const DiagnosticBag& bag)
      : bag_(&bag), before_(bag.count(Severity::kError)) {}
  [[nodiscard]] bool clean() const {
    return bag_->count(Severity::kError) == before_;
  }

private:
  const DiagnosticBag* bag_;
  std::size_t before_;
};

/// One resolved placement with the span that asserted it.
struct NormPlacement {
  NodeId v = 0;
  std::size_t pe = 0;  ///< 0-based.
  int cb = 0;
  SourceSpan span;
};

/// The certifier's own view of a schedule: nothing here came from
/// ScheduleTable's grid or the strict parser — every derived quantity
/// below is recomputed from these raw facts.
struct NormSchedule {
  int length = 0;
  bool pipelined = false;
  std::vector<int> speeds;            ///< One per processor.
  std::vector<NormPlacement> places;  ///< At most one per task.
  SourceSpan whole;                   ///< The artifact as a whole.
  SourceSpan length_span;             ///< Where the length was declared.
};

std::string step_range(int cb, int ce) {
  std::ostringstream os;
  os << "steps [" << cb << "," << ce << "]";
  return os.str();
}

/// CE(v) for a placement: CB + t(v) * speed(PE) - 1.
int end_step(const Csdfg& g, const NormSchedule& s, const NormPlacement& p) {
  return p.cb + g.node(p.v).time * s.speeds[p.pe] - 1;
}

/// The master-constraint checks shared by the file and table paths:
/// completeness (S002), table bounds (S003), processor exclusivity
/// (S004/S005), and every edge of the graph (S006 intra-iteration,
/// S007 inter-iteration with the Lemma 4.3 bound).
void check_norm(const Csdfg& g, const NormSchedule& s, const CommModel& comm,
                DiagnosticBag& bag) {
  std::vector<std::optional<std::size_t>> at(g.node_count());
  for (std::size_t i = 0; i < s.places.size(); ++i) at[s.places[i].v] = i;

  for (NodeId v = 0; v < g.node_count(); ++v)
    if (!at[v])
      bag.add("CCS-S002", s.whole,
              "task '" + g.node(v).name + "' is not in the table");

  for (const NormPlacement& p : s.places) {
    const int ce = end_step(g, s, p);
    if (p.cb < 1 || ce > s.length) {
      std::ostringstream os;
      os << "task '" << g.node(p.v).name << "' occupies "
         << step_range(p.cb, ce) << " outside the table of length "
         << s.length;
      bag.add("CCS-S003", p.span, os.str());
    }
  }

  std::map<std::pair<std::size_t, int>, std::size_t> occupancy;
  for (std::size_t i = 0; i < s.places.size(); ++i) {
    const NormPlacement& p = s.places[i];
    const int span = s.pipelined ? 1 : g.node(p.v).time * s.speeds[p.pe];
    for (int cs = p.cb; cs < p.cb + span; ++cs) {
      auto [it, inserted] = occupancy.insert({{p.pe, cs}, i});
      if (!inserted) {
        const NormPlacement& other = s.places[it->second];
        std::ostringstream os;
        os << "tasks '" << g.node(other.v).name << "' and '"
           << g.node(p.v).name << "' both "
           << (s.pipelined ? "issue on" : "occupy") << " PE" << p.pe + 1
           << " at step " << cs;
        bag.add(s.pipelined ? "CCS-S005" : "CCS-S004", p.span, os.str());
        break;  // one finding per colliding pair, not per shared step
      }
    }
  }

  for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
    const Edge& e = g.edge(eid);
    if (!at[e.from] || !at[e.to]) continue;
    const NormPlacement& pu = s.places[*at[e.from]];
    const NormPlacement& pv = s.places[*at[e.to]];
    const long long k = e.delay;
    const long long ce_u = end_step(g, s, pu);
    const long long cb_v = pv.cb;
    const CommCost m = comm.cost(pu.pe, pv.pe, e.volume);
    const long long need = ce_u + m + 1;
    if (cb_v + k * s.length >= need) continue;
    std::ostringstream os;
    os << "edge " << g.node(e.from).name << "->" << g.node(e.to).name
       << " (delay " << k << ", volume " << e.volume << "): ";
    if (k == 0) {
      os << "CB(v) = " << cb_v << " < CE(u)+M+1 = " << need << " with M=" << m;
      bag.add("CCS-S006", pv.span, os.str());
    } else {
      const long long bound = (need - cb_v + k - 1) / k;  // Lemma 4.3
      os << "CB(v)+k*L = " << cb_v + k * s.length << " < CE(u)+M+1 = " << need
         << " with M=" << m << ", L=" << s.length
         << "; the cyclic length must be at least " << bound;
      bag.add("CCS-S007", s.length_span, os.str());
    }
  }
}

/// Translation validation (CCS-S011): rebuild the (known-clean) schedule
/// as a ScheduleTable, unfold both graph and table by `factor`, and let
/// the core validator referee the induced flat schedule.  Any violation
/// means certifier and transform disagree — a tooling bug, not an input
/// problem.
void unfold_cross_check(const Csdfg& g, const NormSchedule& s, int factor,
                        const CommModel& comm, DiagnosticBag& bag) {
  if (factor < 2 || s.places.size() != g.node_count()) return;
  ScheduleTable table(g, s.speeds, s.pipelined);
  for (const NormPlacement& p : s.places) table.place(p.v, p.pe, p.cb);
  if (table.occupied_length() > s.length) return;  // S003 already reported
  table.set_length(s.length);

  const Unfolded unfolded = unfold(g, factor);
  const ScheduleTable flat = unfold_table(table, unfolded, factor);
  const ValidationReport report =
      validate_schedule(unfolded.graph, flat, comm);
  if (report.ok()) return;
  std::ostringstream os;
  os << "schedule certifies clean but its induced flat schedule on the "
     << factor << "-unfolded graph does not: "
     << report.violations.front().message;
  bag.add("CCS-S011", s.whole, os.str());
}

/// CCS-S015: a schedule that certified clean must not be SHORTER than any
/// claimed-sound static lower bound of (this graph, this machine) — the
/// local composite is sound for the graph's exact delay placement, so a
/// violation is a first-principles bug in the bound derivation or the
/// certifier itself (src/analysis/bounds.hpp), and portfolio pruning
/// decisions made from the bound cannot be trusted.  Only runs on clean
/// schedules: a table that already failed certification proves nothing
/// about the bounds.
void cross_check_sound_bounds(const Csdfg& g, const NormSchedule& s,
                              const CommModel& comm, DiagnosticBag& bag) {
  (void)cross_check_schedule_bound(g, s.length, s.speeds, s.pipelined, comm,
                                   s.whole, bag);
}

}  // namespace

bool cross_check_schedule_bound(const Csdfg& g, int length,
                                const std::vector<int>& pe_speeds,
                                bool pipelined, const CommModel& comm,
                                const SourceSpan& span, DiagnosticBag& bag) {
  if (!g.is_legal() || pe_speeds.empty()) return true;
  BoundMachine machine;
  machine.num_pes = pe_speeds.size();
  machine.speeds = pe_speeds;
  machine.pipelined = pipelined;
  machine.comm = &comm;
  const CompositeBound bounds = compute_bounds(g, machine);
  if (length >= bounds.local_value) return true;
  std::ostringstream os;
  os << "certified schedule of length " << length
     << " beats the claimed-sound static lower bound " << bounds.local_value
     << " (" << bounds.dominant_local << ")";
  if (const BoundResult* part = bounds.part(bounds.dominant_local))
    os << ": " << part->witness;
  bag.add("CCS-S015", span, os.str());
  return false;
}

bool certify_schedule(const Csdfg& g, const RawSchedule& raw,
                      const Topology& topo, const CommModel& comm,
                      const CertifyOptions& options, DiagnosticBag& bag) {
  // Certifier entry points take no ObsContext (they predate it), so phase
  // spans come from the process-global profiler hook.
  const ObsSpan phase(SpanProfiler::process(), "certify.schedule");
  const ErrorWatch watch(bag);
  const SourceSpan whole{raw.file, 0};
  if (!raw.has_directive) return watch.clean();  // S001 from the parser

  if (raw.num_pes != topo.size()) {
    std::ostringstream os;
    os << "schedule declares " << raw.num_pes
       << " processor(s) but architecture '" << topo.name() << "' has "
       << topo.size();
    bag.add("CCS-S001", SourceSpan{raw.file, raw.schedule_line}, os.str());
  }

  NormSchedule s;
  s.length = raw.length;
  s.pipelined = raw.pipelined;
  s.speeds = raw.speeds.empty() ? std::vector<int>(raw.num_pes, 1)
                                : raw.speeds;
  s.whole = whole;
  s.length_span = SourceSpan{raw.file, raw.schedule_line};

  std::vector<std::optional<std::size_t>> first_place(g.node_count());
  for (const RawPlacement& p : raw.places) {
    const SourceSpan span{raw.file, p.line};
    NodeId v = 0;
    try {
      v = g.node_by_name(p.task);
    } catch (const GraphError&) {
      bag.add("CCS-S001", span, "unknown task '" + p.task + "'");
      continue;
    }
    if (p.pe > raw.num_pes) {
      std::ostringstream os;
      os << "pe " << p.pe << " out of range for " << raw.num_pes
         << " processor(s)";
      bag.add("CCS-S001", span, os.str());
      continue;
    }
    if (first_place[v]) {
      bag.add("CCS-S001", span,
              "task '" + p.task + "' placed twice (first on line " +
                  std::to_string(s.places[*first_place[v]].span.line) + ")");
      continue;
    }
    first_place[v] = s.places.size();
    s.places.push_back(NormPlacement{v, p.pe - 1, p.cb, span});
  }

  // Retime provenance (CCS-S008): the file's graph carries the retimed
  // delays d_r(e) = d(e) + r(u) - r(v), so the original delay is
  // d(e) = d_r(e) - r(u) + r(v) and must be non-negative for the recorded
  // retiming to be legal.
  std::vector<long long> r(g.node_count(), 0);
  std::vector<std::size_t> r_line(g.node_count(), 0);
  std::vector<bool> retimed(g.node_count(), false);
  for (const RawRetime& rt : raw.retimes) {
    const SourceSpan span{raw.file, rt.line};
    NodeId v = 0;
    try {
      v = g.node_by_name(rt.task);
    } catch (const GraphError&) {
      bag.add("CCS-S001", span, "unknown task '" + rt.task + "'");
      continue;
    }
    if (retimed[v]) {
      bag.add("CCS-S001", span, "task '" + rt.task + "' retimed twice");
      continue;
    }
    retimed[v] = true;
    r[v] = rt.r;
    r_line[v] = rt.line;
  }
  if (!raw.retimes.empty()) {
    for (EdgeId eid = 0; eid < g.edge_count(); ++eid) {
      const Edge& e = g.edge(eid);
      const long long original = e.delay - r[e.from] + r[e.to];
      if (original >= 0) continue;
      const std::size_t line =
          r_line[e.from] != 0 ? r_line[e.from] : r_line[e.to];
      std::ostringstream os;
      os << "edge " << g.node(e.from).name << "->" << g.node(e.to).name
         << ": un-retimed delay d(e) - r(u) + r(v) = " << e.delay << " - "
         << r[e.from] << " + " << r[e.to] << " = " << original
         << " is negative; the recorded retiming is illegal";
      bag.add("CCS-S008", SourceSpan{raw.file, line}, os.str());
    }
  }

  check_norm(g, s, comm, bag);
  if (watch.clean()) unfold_cross_check(g, s, options.unfold_factor, comm, bag);
  if (watch.clean()) cross_check_sound_bounds(g, s, comm, bag);
  return watch.clean();
}

bool certify_table(const Csdfg& g, const ScheduleTable& table,
                   const CommModel& comm, const std::string& label,
                   DiagnosticBag& bag, const CertifyOptions& options) {
  const ObsSpan phase(SpanProfiler::process(), "certify.table");
  const ErrorWatch watch(bag);
  NormSchedule s;
  s.length = table.length();
  s.pipelined = table.pipelined_pes();
  s.speeds.resize(table.num_pes());
  for (PeId p = 0; p < table.num_pes(); ++p) s.speeds[p] = table.pe_speed(p);
  s.whole = SourceSpan{label, 0};
  s.length_span = s.whole;
  for (const auto& [v, p] : table.placements())
    s.places.push_back(NormPlacement{v, p.pe, p.cb, s.whole});

  check_norm(g, s, comm, bag);
  if (watch.clean()) unfold_cross_check(g, s, options.unfold_factor, comm, bag);
  if (watch.clean()) cross_check_sound_bounds(g, s, comm, bag);
  return watch.clean();
}

bool bridge_validation_report(const ValidationReport& report,
                              const SourceSpan& span, DiagnosticBag& bag) {
  for (const Violation& v : report.violations) {
    std::string_view code;
    switch (v.kind) {
      case Violation::Kind::kUnplacedTask: code = "CCS-S002"; break;
      case Violation::Kind::kOutOfTable: code = "CCS-S003"; break;
      case Violation::Kind::kResourceConflict: code = "CCS-S004"; break;
      case Violation::Kind::kIssueConflict: code = "CCS-S005"; break;
      case Violation::Kind::kDependence: code = "CCS-S006"; break;
      case Violation::Kind::kIllegalGraph: code = "CCS-G001"; break;
    }
    bag.add(code, span, v.message);
  }
  return report.ok();
}

bool certify_compaction_run(const Csdfg& original,
                            const CycloCompactionResult& result,
                            const CommModel& comm, RemapPolicy policy,
                            const std::string& label,
                            const CertifyOptions& options,
                            DiagnosticBag& bag) {
  const ObsSpan phase(SpanProfiler::process(), "certify.run");
  const ErrorWatch watch(bag);
  const SourceSpan span{label, 0};

  // Retiming: legal for the input graph, and reproduces the claimed
  // retimed graph edge by edge.
  if (result.retiming.size() != original.node_count() ||
      result.retimed_graph.edge_count() != original.edge_count()) {
    bag.add("CCS-S010", span,
            "result shapes do not match the input graph (retiming over " +
                std::to_string(result.retiming.size()) + " task(s), " +
                std::to_string(result.retimed_graph.edge_count()) +
                " retimed edge(s))");
  } else {
    for (EdgeId eid = 0; eid < original.edge_count(); ++eid) {
      const Edge& e = original.edge(eid);
      const long long dr = result.retiming.retimed_delay(original, eid);
      if (dr < 0) {
        std::ostringstream os;
        os << "edge " << original.node(e.from).name << "->"
           << original.node(e.to).name << ": retimed delay d(e)+r(u)-r(v) = "
           << dr << " is negative";
        bag.add("CCS-S008", span, os.str());
      } else if (dr != result.retimed_graph.edge(eid).delay) {
        std::ostringstream os;
        os << "edge " << original.node(e.from).name << "->"
           << original.node(e.to).name << ": claimed retimed delay "
           << result.retimed_graph.edge(eid).delay
           << " but the recorded retiming yields " << dr;
        bag.add("CCS-S010", span, os.str());
      }
    }
  }

  // Theorem 4.4: without relaxation no pass may end longer than it began.
  if (policy == RemapPolicy::kWithoutRelaxation) {
    int prev = result.startup_length();
    for (std::size_t i = 0; i < result.length_trace.size(); ++i) {
      const int len = result.length_trace[i];
      if (len > prev) {
        std::ostringstream os;
        os << "pass " << i + 1 << " ended at length " << len
           << " after entering at " << prev
           << " under the without-relaxation policy (Theorem 4.4)";
        bag.add("CCS-S009", span, os.str());
      }
      prev = len;
    }
  }

  // Claimed best length / best pass vs the recomputed trace minimum.
  int expected_best = result.startup_length();
  int expected_pass = 0;
  for (std::size_t i = 0; i < result.length_trace.size(); ++i) {
    if (result.length_trace[i] < expected_best) {
      expected_best = result.length_trace[i];
      expected_pass = static_cast<int>(i) + 1;
    }
  }
  if (result.best_length() != expected_best) {
    std::ostringstream os;
    os << "claimed best length " << result.best_length()
       << " but the pass trace reaches " << expected_best;
    bag.add("CCS-S010", span, os.str());
  } else if (result.best_pass != expected_pass) {
    std::ostringstream os;
    os << "claimed best pass " << result.best_pass
       << " but the trace first reaches length " << expected_best
       << " at pass " << expected_pass;
    bag.add("CCS-S010", span, os.str());
  }

  (void)certify_table(original, result.startup, comm, label + " (startup)",
                      bag, options);
  (void)certify_table(result.retimed_graph, result.best, comm,
                      label + " (best)", bag, options);
  return watch.clean();
}

namespace {

bool known_trace_kind(std::string_view kind) {
  static const std::set<std::string, std::less<>> kinds = {
      "pass_start", "rotation",    "remap_target", "remap_decision",
      "psl_pad",    "rollback",    "pass_end",     "startup_done",
      "sim_run",    "fault",       "repair_attempt", "budget_exhausted",
      "span_begin", "span_end"};
  return kinds.find(kind) != kinds.end();
}

bool is_span_kind(std::string_view kind) {
  return kind == "span_begin" || kind == "span_end";
}

bool bool_field(const TraceEvent& e, std::string_view key, bool& out) {
  const TraceField* f = e.find(key);
  if (f == nullptr || f->kind != TraceField::Kind::kBool) return false;
  out = f->text == "true";
  return true;
}

}  // namespace

namespace {

/// One open profiler scope on a trace thread, remembered until its
/// span_end arrives (or the stream ends — CCS-S014).
struct OpenSpan {
  std::string name;
  std::size_t line = 0;
};

}  // namespace

bool audit_trace(const std::string& trace_text, const std::string& file,
                 bool strict_monotone, DiagnosticBag& bag) {
  const ObsSpan phase(SpanProfiler::process(), "certify.audit");
  const ErrorWatch watch(bag);
  const ParsedTrace trace = parse_trace_jsonl(trace_text);
  for (const TraceParseIssue& issue : trace.issues)
    bag.add("CCS-S013", SourceSpan{file, issue.line}, issue.message);

  long long expect_seq = 0;
  bool have_best = false;
  long long best = 0;
  long long prev_pass_len = -1;
  // Span structure per thread tag: open-scope stack and last timestamp.
  std::map<long long, std::vector<OpenSpan>> open_spans;
  std::map<long long, long long> last_ts;
  for (const TraceEvent& e : trace.events) {
    const SourceSpan span{file, e.line};
    long long seq = 0;
    if (!e.number("seq", seq)) {
      bag.add("CCS-S013", span, "event has no integral 'seq' field");
    } else if (seq != expect_seq) {
      std::ostringstream os;
      os << "sequence gap: expected seq " << expect_seq << ", found " << seq;
      bag.add("CCS-S013", span, os.str());
      expect_seq = seq + 1;
    } else {
      ++expect_seq;
    }

    std::string kind;
    if (!e.string("kind", kind)) {
      bag.add("CCS-S013", span, "event has no 'kind' field");
      continue;
    }
    if (!known_trace_kind(kind)) {
      bag.add("CCS-S013", span, "unknown event kind '" + kind + "'");
      continue;
    }

    if (is_span_kind(kind)) {
      std::string name;
      long long tid = 0;
      long long ts = 0;
      if (!e.string("name", name) || !e.number("tid", tid) ||
          !e.number("ts_ns", ts)) {
        bag.add("CCS-S014", span,
                kind + " event lacks name/tid/ts_ns fields");
        continue;
      }
      if (tid < 0) {
        std::ostringstream os;
        os << kind << " '" << name << "' carries negative thread tag " << tid;
        bag.add("CCS-S014", span, os.str());
        continue;
      }
      const auto ts_it = last_ts.find(tid);
      if (ts_it != last_ts.end() && ts < ts_it->second) {
        std::ostringstream os;
        os << kind << " '" << name << "' on thread " << tid
           << " has timestamp " << ts << " before the preceding "
           << ts_it->second << " (out of order)";
        bag.add("CCS-S014", span, os.str());
      }
      last_ts[tid] = std::max(ts_it != last_ts.end() ? ts_it->second : ts, ts);
      if (kind == "span_begin") {
        open_spans[tid].push_back(OpenSpan{name, e.line});
      } else {
        const auto open_it = open_spans.find(tid);
        if (open_it == open_spans.end() || open_it->second.empty()) {
          std::ostringstream os;
          os << "span_end '" << name << "' on thread " << tid
             << " has no matching span_begin"
             << (open_it == open_spans.end() ? " (unknown thread tag)" : "");
          bag.add("CCS-S014", span, os.str());
          continue;
        }
        const OpenSpan top = open_it->second.back();
        open_it->second.pop_back();
        if (top.name != name) {
          std::ostringstream os;
          os << "span_end '" << name << "' on thread " << tid
             << " closes scope '" << top.name << "' opened on line "
             << top.line << " (misnested)";
          bag.add("CCS-S014", span, os.str());
        }
      }
      continue;
    }

    if (kind == "pass_start") {
      long long len = 0;
      if (e.number("length", len) && !have_best) {
        best = len;
        have_best = true;
        prev_pass_len = len;
      }
    } else if (kind == "pass_end") {
      long long len = 0;
      long long claimed_best = 0;
      bool improved = false;
      if (!e.number("length", len) ||
          !e.number("best_length", claimed_best) ||
          !bool_field(e, "improved", improved)) {
        bag.add("CCS-S013", span,
                "pass_end event lacks length/best_length/improved fields");
        continue;
      }
      if (have_best) {
        if (strict_monotone && prev_pass_len >= 0 && len > prev_pass_len) {
          std::ostringstream os;
          os << "pass length grew from " << prev_pass_len << " to " << len
             << " in a without-relaxation run (Theorem 4.4)";
          bag.add("CCS-S009", span, os.str());
        }
        const bool expect_improved = len < best;
        const long long new_best = std::min(best, len);
        if (claimed_best != new_best) {
          std::ostringstream os;
          os << "pass_end claims best_length " << claimed_best
             << " but the running minimum is " << new_best;
          bag.add("CCS-S010", span, os.str());
        } else if (improved != expect_improved) {
          std::ostringstream os;
          os << "pass_end claims improved=" << (improved ? "true" : "false")
             << " but length " << len << " vs best " << best << " says "
             << (expect_improved ? "true" : "false");
          bag.add("CCS-S010", span, os.str());
        }
        best = new_best;
        prev_pass_len = len;
      }
    }
  }
  for (const auto& [tid, stack] : open_spans) {
    if (stack.empty()) continue;
    std::ostringstream os;
    os << stack.size() << " span scope(s) on thread " << tid
       << " never terminated; innermost is '" << stack.back().name << "'";
    bag.add("CCS-S014", SourceSpan{file, stack.back().line}, os.str());
  }
  return watch.clean();
}

bool replay_trace(const Csdfg& g, const Topology& topo, const CommModel& comm,
                  const CycloCompactionOptions& options,
                  const std::string& trace_text, const std::string& file,
                  DiagnosticBag& bag) {
  const ObsSpan phase(SpanProfiler::process(), "certify.replay");
  const ErrorWatch watch(bag);
  const ParsedTrace recorded = parse_trace_jsonl(trace_text);
  for (const TraceParseIssue& issue : recorded.issues)
    bag.add("CCS-S013", SourceSpan{file, issue.line}, issue.message);
  if (!watch.clean()) return false;  // a broken stream cannot be diffed

  std::vector<const TraceEvent*> events;
  for (const TraceEvent& e : recorded.events) {
    std::string kind;
    // Events appended to the same file by other stages — simulator runs,
    // fault injection, repair — are outside the scheduling-pipeline replay.
    // Span events carry wall-clock timestamps and can never replay
    // deterministically; audit_trace checks their structure instead.
    if (e.string("kind", kind) &&
        (kind == "sim_run" || kind == "fault" || kind == "repair_attempt" ||
         is_span_kind(kind)))
      continue;
    events.push_back(&e);
  }

  VectorSink sink;
  Tracer tracer(&sink);
  const ObsContext obs{&tracer, nullptr};
  (void)cyclo_compact(g, topo, comm, options, obs);
  std::string replay_text;
  for (const std::string& line : sink.lines()) {
    replay_text += line;
    replay_text += '\n';
  }
  const ParsedTrace replayed = parse_trace_jsonl(replay_text);

  const std::size_t n = std::min(events.size(), replayed.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string rec = canonical_trace_event(*events[i]);
    const std::string rep = canonical_trace_event(replayed.events[i]);
    if (rec == rep) continue;
    std::ostringstream os;
    os << "event " << i << " diverges from the deterministic replay: "
       << "recorded {" << rec << "} vs replayed {" << rep << "}";
    bag.add("CCS-S012", SourceSpan{file, events[i]->line}, os.str());
    return watch.clean();
  }
  if (events.size() != replayed.events.size()) {
    std::ostringstream os;
    os << "recorded trace has " << events.size()
       << " scheduling event(s) but the deterministic replay produced "
       << replayed.events.size();
    const std::size_t line =
        events.size() > n ? events[n]->line
                          : (events.empty() ? 0 : events.back()->line);
    bag.add("CCS-S012", SourceSpan{file, line}, os.str());
  }
  return watch.clean();
}

}  // namespace ccs
